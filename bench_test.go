package flex_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// FLEX paper's evaluation section. Each benchmark regenerates its artifact
// via internal/experiments and reports the paper's headline quantities as
// custom metrics, so `go test -bench=. -benchmem` reproduces every result
// shape in one run.
//
// Scales are kept small so the whole suite completes in minutes; pass
// larger scales through cmd/flexbench for paper-sized runs.

import (
	"testing"

	"github.com/flex-eda/flex/internal/experiments"
)

// benchOpt is the shared scale/filter for the heavier drivers.
var benchOpt = experiments.Options{
	Scale:   0.008,
	Designs: []string{"des_perf_b_md1", "fft_a_md2", "pci_b_a_md2"},
}

func BenchmarkTable1Comparison(b *testing.B) {
	var accT, accD, accI float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		accT, accD, accI = 0, 0, 0
		for _, r := range rows {
			accT += r.AccT
			accD += r.AccD
			accI += r.AccI
		}
		n := float64(len(rows))
		accT, accD, accI = accT/n, accD/n, accI/n
	}
	b.ReportMetric(accT, "Acc(T)x")
	b.ReportMetric(accD, "Acc(D)x")
	b.ReportMetric(accI, "Acc(I)x")
}

func BenchmarkTable2Resources(b *testing.B) {
	var luts int
	for i := 0; i < b.N; i++ {
		t := experiments.Table2()
		luts = len(t.Rows)
	}
	b.ReportMetric(float64(luts), "rows")
}

func BenchmarkFig2aThreadScaling(b *testing.B) {
	opt := experiments.Options{Scale: 0.008, Designs: []string{"des_perf_b_md1"}}
	var s8 float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig2a(opt)
		if err != nil {
			b.Fatal(err)
		}
		s8 = pts[3].Speedup
	}
	b.ReportMetric(s8, "8T-speedupx")
}

func BenchmarkFig2bSyncShare(b *testing.B) {
	opt := experiments.Options{Scale: 0.008}
	var share float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig2b(opt)
		if err != nil {
			b.Fatal(err)
		}
		share = pts[0].SyncShare
	}
	b.ReportMetric(share*100, "sync%")
}

func BenchmarkFig2cParallelism(b *testing.B) {
	opt := experiments.Options{Scale: 0.008}
	var maxBatch float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig2c(opt)
		if err != nil {
			b.Fatal(err)
		}
		maxBatch = float64(pts[0].MaxBatch)
	}
	b.ReportMetric(maxBatch, "max-regions")
}

func BenchmarkFig2gShiftShare(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig2g(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		share = 0
		for _, p := range pts {
			share += p.ShiftShare
		}
		share /= float64(len(pts))
	}
	b.ReportMetric(share*100, "shift%")
}

func BenchmarkFig6gSortOverhead(b *testing.B) {
	opt := experiments.Options{Scale: 0.006, Designs: []string{"fft_a_md2"}}
	var share, passes float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig6g(opt)
		if err != nil {
			b.Fatal(err)
		}
		share = pts[0].SortShare
		passes = pts[0].OrigPassesAvg
	}
	b.ReportMetric(share*100, "sort%")
	b.ReportMetric(passes, "orig-passes/pt")
}

func BenchmarkFig8PipelineLadder(b *testing.B) {
	var sacs, mg, two float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig8(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		sacs, mg, two = 0, 0, 0
		for _, p := range pts {
			sacs += p.SACS
			mg += p.MG
			two += p.TwoPE
		}
		n := float64(len(pts))
		sacs, mg, two = sacs/n, mg/n, two/n
	}
	b.ReportMetric(sacs, "+SACSx")
	b.ReportMetric(mg, "+MGx")
	b.ReportMetric(two, "+2PEx")
}

func BenchmarkFig9SACSLadder(b *testing.B) {
	opt := experiments.Options{Scale: 0.008, Designs: []string{"des_perf_a_md1", "pci_b_a_md2"}}
	var paral, bwGain float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig9(opt)
		if err != nil {
			b.Fatal(err)
		}
		paral, bwGain = 0, 0
		for _, p := range pts {
			paral += p.Paral
			bwGain += p.ImpBW / p.Arch
		}
		n := float64(len(pts))
		paral, bwGain = paral/n, bwGain/n
	}
	b.ReportMetric(paral, "SACS-Paralx")
	b.ReportMetric(bwGain, "ImpBW/Arx")
}

func BenchmarkFig10TaskAssignment(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig10(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		ratio = 0
		for _, p := range pts {
			ratio += p.Ratio
		}
		ratio /= float64(len(pts))
	}
	b.ReportMetric(ratio, "d+e/d-ratiox")
}

// BenchmarkEngines measures raw wall-clock of each engine's Go
// implementation on a fixed small design (not a paper artifact; useful for
// tracking the software's own performance).
func BenchmarkEngines(b *testing.B) {
	for _, bench := range []struct {
		name string
		run  func(b *testing.B)
	}{
		{"FLEX", benchEngine(0)},
		{"MGL-seq", benchEngine(1)},
		{"MGL-8T", benchEngine(2)},
		{"GPU", benchEngine(3)},
		{"Analytical", benchEngine(4)},
	} {
		b.Run(bench.name, bench.run)
	}
}

func benchEngine(kind int) func(b *testing.B) {
	return func(b *testing.B) {
		l, err := genLayout()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			switch kind {
			case 0:
				mustLegal(b, legalizeFLEX(l))
			case 1:
				mustLegal(b, legalizeMGL(l, 1))
			case 2:
				mustLegal(b, legalizeMGL(l, 8))
			case 3:
				mustLegal(b, legalizeGPU(l))
			case 4:
				mustLegal(b, legalizeAnalytical(l))
			}
		}
	}
}
