package flex_test

import (
	"context"
	"errors"
	"testing"

	flex "github.com/flex-eda/flex"
)

// batchJobs builds a small (design × engine) grid, the shape the experiment
// drivers submit.
func batchJobs(t *testing.T) []flex.BatchJob {
	t.Helper()
	var jobs []flex.BatchJob
	for _, design := range []string{"fft_a_md2", "pci_b_a_md2"} {
		for _, engine := range []flex.Engine{flex.EngineFLEX, flex.EngineMGL, flex.EngineGPU} {
			jobs = append(jobs, flex.BatchJob{
				Design: design, Scale: 0.008, Engine: engine,
				Tag: design + "/" + engine.String(),
			})
		}
	}
	return jobs
}

func TestLegalizeBatchDeterministicAcrossWorkers(t *testing.T) {
	jobs := batchJobs(t)
	var want *flex.BatchSummary
	for _, workers := range []int{1, 4} {
		sum, err := flex.LegalizeBatch(context.Background(), jobs, flex.BatchOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(sum.Results) != len(jobs) || sum.Errors != 0 || sum.Skipped != 0 {
			t.Fatalf("workers=%d: summary %+v", workers, sum)
		}
		for i, r := range sum.Results {
			if r.Err != nil {
				t.Fatalf("workers=%d job %d (%s): %v", workers, i, r.Tag, r.Err)
			}
			if r.Index != i || r.Tag != jobs[i].Tag {
				t.Fatalf("workers=%d: results out of submission order at %d: %+v", workers, i, r)
			}
			if !r.Outcome.Legal {
				t.Fatalf("workers=%d job %s: illegal outcome", workers, r.Tag)
			}
		}
		if want == nil {
			want = sum
			continue
		}
		// The modeled numbers must be bit-identical regardless of the
		// worker count — determinism is the whole point of modeled time.
		if sum.ModeledSeconds != want.ModeledSeconds {
			t.Fatalf("modeled seconds differ across worker counts: %v vs %v",
				sum.ModeledSeconds, want.ModeledSeconds)
		}
		for i := range sum.Results {
			a, b := sum.Results[i].Outcome, want.Results[i].Outcome
			if a.Metrics.AveDis != b.Metrics.AveDis || a.ModeledSeconds != b.ModeledSeconds {
				t.Fatalf("job %s differs across worker counts: %+v vs %+v",
					sum.Results[i].Tag, a.Metrics, b.Metrics)
			}
		}
	}
}

func TestLegalizeBatchSharedLayout(t *testing.T) {
	layout, err := flex.GenerateCustom(400, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	// All engines legalize clones, so one layout can back every job.
	jobs := []flex.BatchJob{
		{Layout: layout, Engine: flex.EngineFLEX},
		{Layout: layout, Engine: flex.EngineMGL},
		{Layout: layout, Engine: flex.EngineAnalytical},
	}
	sum, err := flex.LegalizeBatch(context.Background(), jobs, flex.BatchOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sum.Results {
		if r.Err != nil || !r.Outcome.Legal {
			t.Fatalf("job %d: err=%v outcome=%+v", r.Index, r.Err, r.Outcome)
		}
	}
	if sum.ModeledSeconds <= 0 {
		t.Fatalf("modeled seconds %v", sum.ModeledSeconds)
	}
}

func TestLegalizeBatchErrorIsolation(t *testing.T) {
	jobs := []flex.BatchJob{
		{Design: "fft_a_md2", Scale: 0.008, Engine: flex.EngineFLEX},
		{Design: "no_such_design", Scale: 0.008, Engine: flex.EngineFLEX},
		{Design: "pci_b_a_md2", Scale: 0.008, Engine: flex.EngineMGL},
	}
	sum, err := flex.LegalizeBatch(context.Background(), jobs, flex.BatchOptions{Workers: 2})
	if err != nil {
		t.Fatalf("isolated failure escalated to batch error: %v", err)
	}
	if sum.Errors != 1 {
		t.Fatalf("errors = %d, want 1", sum.Errors)
	}
	if sum.Results[1].Err == nil || sum.Results[0].Err != nil || sum.Results[2].Err != nil {
		t.Fatalf("wrong job blamed: %+v", sum.Results)
	}
	if flex.IsBatchSkipped(sum.Results[1].Err) {
		t.Fatal("a job that ran and failed must not read as skipped")
	}
}

func TestLegalizeBatchFailFast(t *testing.T) {
	jobs := []flex.BatchJob{{Design: "no_such_design", Engine: flex.EngineFLEX}}
	for i := 0; i < 30; i++ {
		jobs = append(jobs, flex.BatchJob{Design: "fft_a_md2", Scale: 0.008, Engine: flex.EngineFLEX})
	}
	sum, err := flex.LegalizeBatch(context.Background(), jobs,
		flex.BatchOptions{Workers: 1, FailFast: true})
	if err == nil {
		t.Fatal("fail-fast batch returned nil error")
	}
	if sum.Skipped == 0 {
		t.Fatal("fail-fast batch skipped nothing")
	}
	skipped := 0
	for _, r := range sum.Results {
		if flex.IsBatchSkipped(r.Err) {
			skipped++
		}
	}
	if skipped != sum.Skipped {
		t.Fatalf("summary counts %d skipped, results carry %d", sum.Skipped, skipped)
	}
}

func TestLegalizeBatchCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := batchJobs(t)
	sum, err := flex.LegalizeBatch(ctx, jobs, flex.BatchOptions{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sum.Skipped != len(jobs) {
		t.Fatalf("skipped = %d, want all %d", sum.Skipped, len(jobs))
	}
}
