package flex

import (
	"context"
	"fmt"
	"os"

	"github.com/flex-eda/flex/internal/batch"
	"github.com/flex-eda/flex/internal/cache"
	"github.com/flex-eda/flex/internal/eco"
	"github.com/flex-eda/flex/internal/model"
	"github.com/flex-eda/flex/internal/obs"
	"github.com/flex-eda/flex/internal/sched"
)

// Edit is one perturbation of a job's base layout — move, insert or delete
// a movable cell (see BatchJob.Edits). It is internal/eco's Edit verbatim.
type Edit = eco.Edit

// The edit operations a BatchJob.Edits entry may carry.
const (
	// EditMove repositions a movable cell's global-placement anchor.
	EditMove = eco.OpMove
	// EditInsert adds a new movable cell.
	EditInsert = eco.OpInsert
	// EditDelete removes a movable cell.
	EditDelete = eco.OpDelete
)

// LayoutHash returns the hex SHA-256 of the layout's canonical flexpl
// bytes — the content address the outcome cache keys on, and the handle a
// BatchJob.BaseHash (or flexserve "base" field) references a layout by.
func LayoutHash(l *Layout) string { return eco.Hash(l) }

// WithOutcomeCacheBytes turns on the outcome cache: finished legalizations
// are memoized up to b resident bytes, keyed by (input-layout content hash,
// engine, options, band count, halo), so a repeated request is served from
// cache and an edited request (BatchJob.Edits) re-legalizes only its dirty
// row bands, splicing the cached base outcome's clean bands in. b <= 0
// disables the cache, the default (WithCacheDir alone also enables it, with
// a 256 MiB default bound).
func WithOutcomeCacheBytes(b int64) ServiceOption {
	return func(c *serviceConfig) { c.outcomeBytes = b }
}

// WithCacheDir persists the outcome cache as content-addressed files under
// dir (one JSON file per entry, named by the hex SHA-256 of its key,
// written via temp file + atomic rename): entries load on start so a
// restarted node is warm, lookups that miss memory fall back to disk, and
// eviction is memory-only — files survive for the next start. A file that
// fails to read or decode is skipped with a warning, never served.
func WithCacheDir(dir string) ServiceOption {
	return func(c *serviceConfig) { c.cacheDir = dir }
}

// WithOutcomeWarn routes the outcome cache's corruption and I/O warnings
// (one call per skipped file) to warn instead of the default stderr line.
func WithOutcomeWarn(warn func(path string, err error)) ServiceOption {
	return func(c *serviceConfig) { c.outcomeWarn = warn }
}

// isEco reports whether the job perturbs or references a base layout.
func (j BatchJob) isEco() bool { return len(j.Edits) > 0 || j.BaseHash != "" }

// optionsKey canonicalizes the engine options into the outcome key's
// configuration component.
func optionsKey(o Options) string {
	return fmt.Sprintf("t=%d|w=%d|pe1=%t|off=%t", o.Threads, o.SlidingWindow, o.OnePE, o.OffloadInsert)
}

// outcomeKey builds the cache key of legalizing a layout with the given
// content hash under the job's engine/options and a band count (0 for the
// unsharded path).
func (s *Service) outcomeKey(job BatchJob, hash string, bands int) (string, error) {
	name, err := engineWireName(job.Engine)
	if err != nil {
		return "", err
	}
	halo := 0
	if bands > 0 {
		halo = s.effectiveHalo(job)
	}
	return eco.Key(hash, name, optionsKey(job.Options), bands, halo), nil
}

// resolveBase returns the job's base layout — the placement its edits apply
// to: the cached layout named by BaseHash, else the explicit Layout, else
// the generated Design.
func (s *Service) resolveBase(job BatchJob) (*Layout, error) {
	if job.BaseHash != "" {
		if s.outcomes == nil {
			return nil, fmt.Errorf("flex: job references base %s but the service has no outcome cache (WithOutcomeCacheBytes / WithCacheDir)", job.BaseHash)
		}
		v, ok := s.outcomes.Get(eco.LayoutKey(job.BaseHash))
		if !ok {
			return nil, fmt.Errorf("flex: unknown base layout %s", job.BaseHash)
		}
		return v.(*Layout), nil
	}
	return job.resolveLayout(s.generate)
}

// resolveInput returns the job's effective input layout — the base with the
// job's edits applied — alongside the base itself (they are the same layout
// for jobs without edits).
func (s *Service) resolveInput(job BatchJob) (input, base *Layout, err error) {
	base, err = s.resolveBase(job)
	if err != nil {
		return nil, nil, err
	}
	if len(job.Edits) == 0 {
		return base, base, nil
	}
	input, err = eco.Apply(base, job.Edits)
	if err != nil {
		return nil, nil, err
	}
	return input, base, nil
}

// newOutcomeCache builds the service's outcome cache from the config, or
// nil when disabled. A cache directory that cannot be initialized degrades
// to a memory-only cache with a warning — serving beats persistence.
func newOutcomeCache(cfg *serviceConfig) *cache.Disk {
	bytes := cfg.outcomeBytes
	if bytes <= 0 {
		if cfg.cacheDir == "" {
			return nil
		}
		bytes = 256 << 20
	}
	warn := cfg.outcomeWarn
	if warn == nil {
		warn = func(path string, err error) {
			fmt.Fprintf(os.Stderr, "flex: outcome cache: %s: %v\n", path, err)
		}
	}
	d, err := cache.NewDisk(bytes, cfg.cacheDir, eco.EncodeValue, eco.DecodeValue, warn)
	if err != nil {
		warn(cfg.cacheDir, err)
		d, _ = cache.NewDisk(bytes, "", eco.EncodeValue, eco.DecodeValue, warn)
	}
	return d
}

// ecoInfo is one sharded job's incremental-reuse decision, computed once
// next to the job's shard prep: the input's content identity, the per-band
// input hashes, and — when a usable cached entry exists — which bands may
// reuse its outcomes instead of re-legalizing.
type ecoInfo struct {
	hash   string   // input layout content hash
	key    string   // outcome cache key for this run
	bandIn []string // per-band input layout hashes
	entry  *eco.Entry
	reuse  []bool // per band: serve entry.Bands[b] instead of legalizing
	store  bool   // fold should store a fresh entry (false on an exact hit)
}

// ecoPrep computes the reuse decision for one sharded job. The halo-based
// dirty prediction chooses which bands to re-solve; every band it predicts
// clean must hash-match the cached entry's band input, or the whole job
// falls back to a full run — reuse is only ever hash-verified, so an
// incremental result is byte-identical to the full re-run by construction.
func (s *Service) ecoPrep(job BatchJob, p *shardPrep) (*ecoInfo, error) {
	nb := len(p.plan.Bands)
	info := &ecoInfo{
		hash:   eco.Hash(p.layout),
		bandIn: make([]string, nb),
		reuse:  make([]bool, nb),
		store:  true,
	}
	key, err := s.outcomeKey(job, info.hash, nb)
	if err != nil {
		return nil, err
	}
	info.key = key
	for i, b := range p.bands {
		info.bandIn[i] = eco.Hash(b)
	}

	// Exact repeat: this input already ran under this configuration.
	if ent := s.lookupEntry(key, nb, info.bandIn, nil); ent != nil {
		info.entry = ent
		for i := range info.reuse {
			info.reuse[i] = true
		}
		info.store = false
		s.accountEco(job, true, true)
		return info, nil
	}

	// Base splice: reuse the base outcome's hash-verified clean bands.
	if len(job.Edits) > 0 {
		if s.spliceFromBase(job, p, info) {
			s.accountEco(job, true, true)
			return info, nil
		}
	}
	s.accountEco(job, false, false)
	return info, nil
}

// spliceFromBase fills info.reuse from the base layout's cached outcome.
// It reports false — leaving the job on the full-run path — when the base
// outcome is cold, the edit batch ripples past the halo, or the dirty
// prediction disagrees with the band hashes.
func (s *Service) spliceFromBase(job BatchJob, p *shardPrep, info *ecoInfo) bool {
	nb := len(p.plan.Bands)
	baseHash := job.BaseHash
	if baseHash == "" {
		baseHash = eco.Hash(p.base)
	}
	bkey, err := s.outcomeKey(job, baseHash, nb)
	if err != nil {
		return false
	}
	halo := s.effectiveHalo(job)
	spans, inHalo, err := eco.DirtySpans(p.base, job.Edits, halo)
	if err != nil || !inHalo {
		return false
	}
	dirty := eco.MarkDirty(p.plan, spans)
	clean := make([]int, 0, nb)
	for i, d := range dirty {
		if !d {
			clean = append(clean, i)
		}
	}
	if len(clean) == 0 {
		return false
	}
	// The entry's predicted-clean bands must hash-match this job's band
	// inputs; any disagreement means the prediction was unsound and the
	// whole job re-runs.
	ent := s.lookupEntry(bkey, nb, info.bandIn, clean)
	if ent == nil {
		return false
	}
	info.entry = ent
	for _, i := range clean {
		info.reuse[i] = true
	}
	return true
}

// lookupEntry fetches a cached outcome entry and validates its shape: the
// band count must match, and the bands listed in verify (nil = all) must
// hash-match wantIn. Anything else is treated as a miss.
func (s *Service) lookupEntry(key string, bands int, wantIn []string, verify []int) *eco.Entry {
	v, ok := s.outcomes.Get(key)
	if !ok {
		return nil
	}
	ent, ok := v.(*eco.Entry)
	if !ok || len(ent.Bands) != bands {
		return nil
	}
	if verify == nil {
		for i := range wantIn {
			if ent.Bands[i].InHash != wantIn[i] {
				return nil
			}
		}
		return ent
	}
	for _, i := range verify {
		if ent.Bands[i].InHash != wantIn[i] {
			return nil
		}
	}
	return ent
}

// accountEco folds one job's outcome-cache decision into the counters.
func (s *Service) accountEco(job BatchJob, hit, reused bool) {
	s.mu.Lock()
	if hit {
		s.outcomeHits++
	} else {
		s.outcomeMisses++
	}
	if job.isEco() {
		if reused {
			s.incremental++
		} else {
			s.fallbacks++
		}
	}
	s.mu.Unlock()
}

// cachedOutcome rebuilds a servable Outcome from stored pieces: the layout
// is cloned (cache entries are shared; callers own their results), metrics
// and violations are recomputed with the same pure functions every engine
// uses, and the engine's own legal verdict and modeled seconds come from
// the store — so a cache hit is byte-identical to the run that filled it.
func cachedOutcome(l *model.Layout, legal bool, modeled float64, engine Engine) *Outcome {
	cl := l.Clone()
	out := &Outcome{
		Engine:         engine,
		Layout:         cl,
		Legal:          legal,
		ModeledSeconds: modeled,
	}
	out.Metrics = model.Measure(cl)
	out.Violations = cl.Check(16)
	return out
}

// storeOutcome publishes one finished sharded run into the outcome cache:
// the entry under the run's key, and the input layout under its own content
// address so future requests can name it as a base. Layouts are cloned into
// the entry — the caller owns the result layouts it was handed.
func (s *Service) storeOutcome(job BatchJob, info *ecoInfo, p *shardPrep, bandOuts []*Outcome, out *Outcome) {
	name, err := engineWireName(job.Engine)
	if err != nil {
		return
	}
	ent := &eco.Entry{
		Engine:         name,
		Options:        optionsKey(job.Options),
		Halo:           s.effectiveHalo(job),
		Result:         out.Layout.Clone(),
		Legal:          out.Legal,
		ModeledSeconds: out.ModeledSeconds,
	}
	for b, o := range bandOuts {
		ent.Bands = append(ent.Bands, eco.BandOutcome{
			InHash:         info.bandIn[b],
			Layout:         o.Layout.Clone(),
			Legal:          o.Legal,
			ModeledSeconds: o.ModeledSeconds,
		})
	}
	s.outcomes.Add(info.key, ent, ent.ApproxBytes())
	s.outcomes.Add(eco.LayoutKey(info.hash), p.layout, p.layout.ApproxBytes())
}

// plainPoolJob is the unsharded pool closure on a service with an outcome
// cache or for a job with edits: resolve the base, apply the edits, then
// serve the whole outcome from cache or legalize (locally or on the fleet)
// and store it. Plain jobs have no bands to splice, so an edited job here
// is always a whole-run — served from cache when the edited input was seen
// before, counted as a fallback when it must legalize.
func (s *Service) plainPoolJob(job BatchJob, class sched.Class) batch.Job[*Outcome] {
	return func(ctx context.Context) (*Outcome, error) {
		input, _, err := s.resolveInput(job)
		if err != nil {
			return nil, err
		}
		legalize := func() (*Outcome, error) {
			if s.router == nil {
				return job.legalizeOnDevice(ctx, input)
			}
			remote := input
			if job.Layout == nil && !job.isEco() {
				// Pure design references travel by name so the worker
				// serves them from its own layout cache.
				remote = nil
			}
			return s.remoteLegalize(ctx, job, remote, s.routingKey(job, class))
		}
		if s.outcomes == nil {
			// Edits apply, but nothing memoizes (this path is only built
			// for eco jobs when the cache is off).
			return legalize()
		}
		hash := eco.Hash(input)
		key, err := s.outcomeKey(job, hash, 0)
		if err != nil {
			return nil, err
		}
		ran := false
		v, err := s.outcomes.Do(key, func() (any, int64, error) {
			ran = true
			out, err := legalize()
			if err != nil {
				return nil, 0, err
			}
			ent := &eco.Entry{
				Engine:         "", // echoed by the key; set below for integrity
				Options:        optionsKey(job.Options),
				Result:         out.Layout.Clone(),
				Legal:          out.Legal,
				ModeledSeconds: out.ModeledSeconds,
			}
			if name, err := engineWireName(job.Engine); err == nil {
				ent.Engine = name
			}
			s.outcomes.Add(eco.LayoutKey(hash), input, input.ApproxBytes())
			return ent, ent.ApproxBytes(), nil
		})
		s.accountEco(job, !ran, !ran)
		if err != nil {
			return nil, err
		}
		ent := v.(*eco.Entry)
		out := cachedOutcome(ent.Result, ent.Legal, ent.ModeledSeconds, job.Engine)
		out.InputHash = hash
		return out, nil
	}
}

// cachedBand serves band b from the job's reuse decision, or reports
// (nil, false, nil) when the band must legalize. The cached band layout is
// cloned and re-measured exactly as cachedOutcome does for whole runs. A
// served band records an "eco-splice" span on the job's trace — the
// incremental path's footprint in the span tree.
func (st *shardState) cachedBand(ctx context.Context, job BatchJob, b int) (*Outcome, bool, error) {
	if st.eco == nil {
		return nil, false, nil
	}
	info, err := st.eco()
	if err != nil {
		return nil, true, err
	}
	if info.entry == nil || b >= len(info.reuse) || !info.reuse[b] {
		return nil, false, nil
	}
	_, end := obs.StartSpan(ctx, "eco-splice", fmt.Sprintf("band %d from cached outcome", b))
	defer end()
	bo := &info.entry.Bands[b]
	return cachedOutcome(bo.Layout, bo.Legal, bo.ModeledSeconds, job.Engine), true, nil
}
