package flex

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flex-eda/flex/internal/batch"
	"github.com/flex-eda/flex/internal/cache"
	"github.com/flex-eda/flex/internal/fleet"
	"github.com/flex-eda/flex/internal/gen"
	"github.com/flex-eda/flex/internal/obs"
	"github.com/flex-eda/flex/internal/sched"
)

// ErrOverloaded rejects a submission that does not fit the service's queue
// depth (WithQueueDepth): admitted jobs — queued plus running, across every
// concurrent submission — would exceed the bound. The batch is rejected
// atomically before any job starts; callers shed load or retry later.
var ErrOverloaded = errors.New("flex: service overloaded (queue full)")

// ErrServiceClosed rejects submissions after Service.Close.
var ErrServiceClosed = errors.New("flex: service closed")

// ErrClientOverloaded rejects a submission whose jobs would push one client
// past the service's per-client admission bound (WithClientQueueDepth).
// Match it with errors.Is; the concrete error is a *ClientOverloadedError
// naming the client, so servers can shed load per tenant with an honest
// Retry-After while other tenants keep submitting.
var ErrClientOverloaded = errors.New("flex: client queue full")

// ClientOverloadedError is the concrete per-client admission rejection.
type ClientOverloadedError struct {
	// Client is the tenant whose admission bound the submission tripped.
	Client string
}

// Error implements error.
func (e *ClientOverloadedError) Error() string {
	return fmt.Sprintf("flex: client %q queue full", e.Client)
}

// Is matches ErrClientOverloaded.
func (e *ClientOverloadedError) Is(target error) bool { return target == ErrClientOverloaded }

// Scheduler selects the policy ordering every queue a job waits in — for a
// worker at admission and for a modeled FPGA board.
type Scheduler int

const (
	// SchedulerPriority is the default: jobs dequeue by effective priority
	// (BatchJob.Priority plus one level per aging step waited, so nothing
	// starves), earliest deadline first within a level, then weighted fair
	// share across clients, then arrival order.
	SchedulerPriority Scheduler = iota
	// SchedulerFIFO dequeues strictly in arrival order — the pre-scheduler
	// behaviour. Per-client quotas still apply; priority, deadline and
	// fairness are ignored (deadlines still expire jobs).
	SchedulerFIFO
)

// String names the scheduler as ParseScheduler accepts it.
func (s Scheduler) String() string {
	if s == SchedulerFIFO {
		return "fifo"
	}
	return "priority"
}

// ParseScheduler maps a scheduler name ("priority", "fifo"; "" = priority)
// to its Scheduler — the shared parser behind every CLI's -sched flag.
func ParseScheduler(name string) (Scheduler, error) {
	switch name {
	case "", "priority":
		return SchedulerPriority, nil
	case "fifo":
		return SchedulerFIFO, nil
	}
	return 0, fmt.Errorf("flex: unknown scheduler %q (want priority, fifo)", name)
}

// policy resolves the internal scheduling policy.
func (s Scheduler) policy() sched.Policy {
	if s == SchedulerFIFO {
		return sched.FIFO()
	}
	return sched.Default()
}

// serviceConfig collects the functional options.
type serviceConfig struct {
	workers        int
	fpgas          int
	cacheBytes     int64
	queueDepth     int
	shards         int
	shardHalo      int
	autoShardBytes int64
	scheduler      Scheduler
	clientQuota    int
	clientDepth    int
	clientWeights  map[string]int
	reconfigCost   time.Duration

	// Outcome cache (see WithOutcomeCacheBytes and friends in eco.go).
	outcomeBytes int64
	cacheDir     string
	outcomeWarn  func(path string, err error)

	// Fleet coordination (see WithWorkersList and friends in fleet.go).
	fleetWorkers  []string
	fleetTimeout  time.Duration
	fleetInflight int
	fleetRetries  int

	// Observability (see WithMetrics and friends below).
	metrics *obs.Registry
	tracer  *obs.Tracer
	tracing bool
	logger  *slog.Logger
}

// ServiceOption configures NewService.
type ServiceOption func(*serviceConfig)

// WithWorkers sets the persistent worker-goroutine count bounding
// concurrently running jobs across every submission (<= 0 = GOMAXPROCS,
// the default).
func WithWorkers(n int) ServiceOption { return func(c *serviceConfig) { c.workers = n } }

// WithFPGAs sets the modeled accelerator board count every submission
// shares (0 = 1, the paper's single-card host; negative = unlimited, no
// device contention). Jobs whose engine needs the FPGA (BatchJob.NeedsFPGA)
// hold one board for their device phase; capacity never changes results,
// only wall-clock and wait statistics.
func WithFPGAs(k int) ServiceOption { return func(c *serviceConfig) { c.fpgas = k } }

// WithCacheBytes bounds the layout cache: generated benchmarks are memoized
// by (design, scale, seed) up to b resident bytes, so repeated jobs skip
// regeneration (cached layouts are shared safely — engines legalize
// clones). b <= 0 disables caching, the default.
func WithCacheBytes(b int64) ServiceOption { return func(c *serviceConfig) { c.cacheBytes = b } }

// WithQueueDepth bounds admitted jobs (queued + running, summed over every
// in-flight submission); a Submit or Stream that would exceed it fails with
// ErrOverloaded. 0 (the default) = unbounded. A single batch larger than
// the whole depth can never be admitted. Sharded jobs count one slot per
// band: a job split K ways occupies K of the depth.
func WithQueueDepth(d int) ServiceOption { return func(c *serviceConfig) { c.queueDepth = d } }

// WithShards sets the default shard count applied to every job that leaves
// BatchJob.Shards at 0: k >= 1 splits each job's layout into k horizontal
// row bands legalized as independent pool jobs and stitched back into one
// result (clamped to what each die can hold). 0 (the default) disables
// default sharding; jobs still opt in per job.
func WithShards(k int) ServiceOption { return func(c *serviceConfig) { c.shards = k } }

// WithShardHalo sets the default seam-crossing reassignment window, in
// rows, for sharded jobs that leave BatchJob.ShardHalo at 0 (see that field;
// 0 here means DefaultShardHalo, negative disables the halo).
func WithShardHalo(rows int) ServiceOption { return func(c *serviceConfig) { c.shardHalo = rows } }

// WithAutoShardBytes turns on size-triggered sharding: any job whose layout
// footprint (model.Layout.ApproxBytes for explicit layouts, the spec's
// scaled estimate for design references) exceeds b bytes is split into
// enough row bands to bring each band under b — the guard that keeps a
// paper-scale design from monopolizing one worker's memory share. The
// derived band count is capped at 64 so one oversized job cannot amplify
// itself past the queue depth (each band occupies one admission slot).
// Jobs with an explicit Shards knob, and services with a WithShards
// default, are unaffected. b <= 0 disables auto-sharding, the default.
func WithAutoShardBytes(b int64) ServiceOption {
	return func(c *serviceConfig) { c.autoShardBytes = b }
}

// WithScheduler selects the policy ordering every queue a job waits in —
// worker admission and board acquisition. The default is SchedulerPriority
// (priority + deadline + aging + fairness); SchedulerFIFO restores strict
// arrival order. Scheduling changes when jobs run, never what they compute:
// results stay byte-identical across schedulers for any fixed job set.
func WithScheduler(s Scheduler) ServiceOption {
	return func(c *serviceConfig) { c.scheduler = s }
}

// WithClientQuota caps one client's concurrently running jobs (0 = the
// default, unlimited). Jobs over quota stay queued — deferred behind the
// client's own traffic, never rejected — so one tenant cannot occupy every
// worker while others wait. A sharded job's bands each count against the
// owner's quota.
func WithClientQuota(n int) ServiceOption {
	return func(c *serviceConfig) { c.clientQuota = n }
}

// WithClientQueueDepth bounds one client's admitted jobs — queued plus
// running, each band of a sharded job counted separately (0 = the default,
// unbounded). A submission that would push any of its clients past the
// bound is rejected atomically with a *ClientOverloadedError naming the
// client; flexserve maps it to a per-client 429 whose Retry-After is
// derived from that client's actual backlog.
func WithClientQueueDepth(d int) ServiceOption {
	return func(c *serviceConfig) { c.clientDepth = d }
}

// WithClientWeight sets a client's fair-share weight (default 1): at equal
// effective priority and deadline the scheduler grants capacity to the
// client with the lowest running/weight ratio, so a weight-2 client
// sustains twice a weight-1 sibling's throughput under contention.
func WithClientWeight(client string, weight int) ServiceOption {
	return func(c *serviceConfig) {
		if c.clientWeights == nil {
			c.clientWeights = make(map[string]int)
		}
		c.clientWeights[client] = weight
	}
}

// WithReconfigCost sets the modeled FPGA reconfiguration delay: whenever a
// board's next holder runs a different job than its previous one (each
// board's first use included), the board stays busy for d before the job's
// device phase starts — the bitstream-swap cost a shared physical card
// pays. Board assignment is affinity-aware, so same-job (and same sharded
// owner) acquisitions reuse a warm board free of charge. The charge lands
// in wall-clock, DeviceStats and BatchSummary.ReconfigSeconds — never in an
// Outcome's ModeledSeconds, which stays a pure function of the design.
// 0 (the default) counts reconfigurations without charging time.
func WithReconfigCost(d time.Duration) ServiceOption {
	return func(c *serviceConfig) { c.reconfigCost = d }
}

// WithMetrics routes the service's operational metrics into reg: latency
// histograms for scheduler queue wait, modeled device wait/hold, fleet RPC
// round trips and end-to-end job time, plus job/reject counters and live
// queue-depth gauges — the families flexserve's GET /metrics exposes as
// Prometheus text (names follow flex_<subsystem>_<name>_<unit>; see
// docs/OBSERVABILITY.md). Metrics are pure telemetry: observation happens
// on the result path after bytes are final, so a metered service's output
// is byte-identical to an unmetered one. nil (the default) disables
// metering at zero cost.
func WithMetrics(reg *obs.Registry) ServiceOption {
	return func(c *serviceConfig) { c.metrics = reg }
}

// WithTracer turns on per-job tracing and accumulates every finished job's
// trace in t, for export as Chrome trace-viewer JSON (flexlg -trace-out).
// Implies WithTracing(true).
func WithTracer(t *obs.Tracer) ServiceOption {
	return func(c *serviceConfig) {
		c.tracer = t
		c.tracing = t != nil
	}
}

// WithTracing toggles per-job trace spans without accumulating traces: each
// BatchResult then carries its TraceID and span tree (admission, scheduler
// wait, device wait/hold, per-band legalization, fleet RPCs, stitch), the
// form flexserve -trace serves on result rows. Off by default; tracing
// never changes result bytes — spans are wall-clock telemetry beside the
// deterministic outputs.
func WithTracing(on bool) ServiceOption {
	return func(c *serviceConfig) { c.tracing = on }
}

// WithLogger routes the service's structured request logging to log: one
// debug line per finished job (index, trace ID, span summary) — the
// per-job narrative behind flexserve -log-level debug. nil (the default)
// disables service-side logging.
func WithLogger(log *slog.Logger) ServiceOption {
	return func(c *serviceConfig) { c.logger = log }
}

// Service is a long-lived legalization service: it owns the worker pool,
// the modeled FPGA board pool, and the layout cache that a sequence of
// batch submissions — a CLI run, an HTTP server's traffic — share. Where
// LegalizeBatch pays pool construction and cold generation per call, a
// Service amortizes both and adds admission control, making it the unit of
// deployment for serving legalization traffic.
//
//	svc := flex.NewService(flex.WithWorkers(8), flex.WithFPGAs(1),
//		flex.WithCacheBytes(256<<20), flex.WithQueueDepth(1024))
//	defer svc.Close()
//	sum, err := svc.Submit(ctx, jobs, flex.SubmitOptions{})
//
// All methods are safe for concurrent use. Determinism is preserved: for
// the same jobs, results are byte-identical to LegalizeBatch for every
// workers × fpgas × cache configuration.
type Service struct {
	pool    *batch.Pool
	layouts *cache.LRU // nil = caching disabled
	depth   int

	// Scheduling policy (see WithScheduler / WithClientQuota /
	// WithClientQueueDepth / WithClientWeight / WithReconfigCost).
	scheduler     Scheduler
	clientQuota   int
	clientDepth   int
	clientWeights map[string]int
	reconfigCost  time.Duration
	batchSeq      atomic.Int64 // distinguishes submissions' board configs

	// Sharding policy (see WithShards / WithShardHalo / WithAutoShardBytes).
	shards         int
	shardHalo      int
	autoShardBytes int64

	// router is non-nil on a fleet coordinator (WithWorkersList): pool
	// jobs then execute remotely instead of running a local engine.
	router *fleet.Router

	// Observability: nil-safe instruments (see WithMetrics / WithTracer /
	// WithTracing / WithLogger). All strictly telemetry — nothing here may
	// influence result bytes.
	metrics       *obs.Registry
	tracer        *obs.Tracer
	tracing       bool
	logger        *slog.Logger
	queueWaitSec  obs.Histogram
	deviceWaitSec obs.Histogram
	deviceHoldSec obs.Histogram
	jobSeconds    obs.Histogram
	jobsOK        obs.Counter
	jobsErr       obs.Counter
	jobsSkipped   obs.Counter
	shardedJobs   obs.Counter
	reconfigsTot  obs.Counter

	// outcomes is non-nil when the outcome cache is on
	// (WithOutcomeCacheBytes / WithCacheDir): finished legalizations are
	// memoized by input-layout content hash, and edited jobs splice cached
	// clean bands instead of re-legalizing them (see eco.go).
	outcomes *cache.Disk

	mu               sync.Mutex
	batches          int64
	jobs             int64
	sharded          int64
	errs             int64
	skipped          int64
	overloaded       int64
	clientOverloaded int64
	incremental      int64
	fallbacks        int64
	outcomeHits      int64
	outcomeMisses    int64
}

// NewService builds and starts a Service. Callers must Close it to release
// the worker pool.
func NewService(opts ...ServiceOption) *Service {
	var cfg serviceConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.shardHalo == 0 {
		cfg.shardHalo = DefaultShardHalo
	}
	s := &Service{
		pool: batch.NewPool(batch.PoolConfig{
			Workers: cfg.workers, FPGAs: cfg.fpgas, QueueDepth: cfg.queueDepth,
			Policy:      cfg.scheduler.policy(),
			ClientQuota: cfg.clientQuota, ClientDepth: cfg.clientDepth,
			ReconfigCost: cfg.reconfigCost,
		}),
		depth:          cfg.queueDepth,
		scheduler:      cfg.scheduler,
		clientQuota:    cfg.clientQuota,
		clientDepth:    cfg.clientDepth,
		clientWeights:  cfg.clientWeights,
		reconfigCost:   cfg.reconfigCost,
		shards:         cfg.shards,
		shardHalo:      cfg.shardHalo,
		autoShardBytes: cfg.autoShardBytes,
	}
	if cfg.cacheBytes > 0 {
		s.layouts = cache.New(cfg.cacheBytes)
	}
	s.outcomes = newOutcomeCache(&cfg)
	s.instrument(&cfg)
	if len(cfg.fleetWorkers) > 0 {
		s.router = fleet.NewRouter(fleet.RouterConfig{
			Workers:  cfg.fleetWorkers,
			Timeout:  cfg.fleetTimeout,
			Inflight: cfg.fleetInflight,
			Retries:  cfg.fleetRetries,
			Metrics:  cfg.metrics,
		})
	}
	return s
}

// instrument registers the service's metric families. Every obs.Registry
// method is nil-safe, so an unmetered service gets inert zero-value
// instruments and pays nothing on the result path.
func (s *Service) instrument(cfg *serviceConfig) {
	s.metrics = cfg.metrics
	s.tracer = cfg.tracer
	s.tracing = cfg.tracing
	s.logger = cfg.logger
	m := cfg.metrics
	s.queueWaitSec = m.Histogram("flex_sched_queue_wait_seconds",
		"Time jobs queued for a worker goroutine under the scheduler.", obs.LatencyBuckets)
	s.deviceWaitSec = m.Histogram("flex_device_wait_seconds",
		"Time jobs queued for a modeled FPGA board.", obs.LatencyBuckets)
	s.deviceHoldSec = m.Histogram("flex_device_hold_seconds",
		"Time jobs occupied a modeled FPGA board (reconfiguration included).", obs.LatencyBuckets)
	s.jobSeconds = m.Histogram("flex_serve_job_seconds",
		"End-to-end wall time of one job, admission to result.", obs.LatencyBuckets)
	s.jobsOK = m.Counter("flex_serve_jobs_total",
		"Jobs finished, by status.", obs.Label{Key: "status", Value: "ok"})
	s.jobsErr = m.Counter("flex_serve_jobs_total",
		"Jobs finished, by status.", obs.Label{Key: "status", Value: "error"})
	s.jobsSkipped = m.Counter("flex_serve_jobs_total",
		"Jobs finished, by status.", obs.Label{Key: "status", Value: "skipped"})
	s.shardedJobs = m.Counter("flex_serve_sharded_jobs_total",
		"Jobs that took the row-band shard path.")
	s.reconfigsTot = m.Counter("flex_device_reconfigs_total",
		"Modeled board reconfigurations charged to finished jobs.")
	m.GaugeFunc("flex_serve_queue_depth_jobs",
		"Admitted and undelivered pool jobs right now (each band of a sharded job counted separately).",
		func() float64 { return float64(s.pool.Admitted()) })
	if s.layouts != nil {
		m.CounterFunc("flex_cache_layout_hits_total",
			"Layout cache lookups that skipped regeneration.",
			func() float64 { return float64(s.layouts.Stats().Hits) })
		m.CounterFunc("flex_cache_layout_misses_total",
			"Layout cache lookups that generated anew.",
			func() float64 { return float64(s.layouts.Stats().Misses) })
		m.GaugeFunc("flex_cache_layout_bytes",
			"Resident bytes in the layout cache.",
			func() float64 { return float64(s.layouts.Stats().Bytes) })
	}
}

// observeResult feeds one finished job into the metrics registry and the
// debug log — the single per-result observability hook on the emit path,
// after the result's bytes are final. Wall-clock latencies land in
// histograms and log lines only; nothing here touches the result.
func (s *Service) observeResult(br BatchResult) {
	switch {
	case IsBatchSkipped(br.Err):
		s.jobsSkipped.Inc()
	case br.Err != nil:
		s.jobsErr.Inc()
	default:
		s.jobsOK.Inc()
	}
	s.queueWaitSec.Observe(br.SchedWait.Seconds())
	if br.DeviceWait > 0 || br.DeviceHold > 0 {
		s.deviceWaitSec.Observe(br.DeviceWait.Seconds())
		s.deviceHoldSec.Observe(br.DeviceHold.Seconds())
	}
	s.jobSeconds.Observe(br.Wall.Seconds())
	if br.DeviceReconfigs > 0 {
		s.reconfigsTot.Add(float64(br.DeviceReconfigs))
	}
	if len(br.Shards) > 0 {
		s.shardedJobs.Inc()
	}
	if s.logger != nil && s.logger.Enabled(context.Background(), slog.LevelDebug) {
		s.logger.Debug("job finished",
			"index", br.Index, "tag", br.Tag, "trace", br.TraceID,
			"err", br.Err, "wall", br.Wall, "spans", obs.Summary(br.Spans))
	}
}

// SubmitOptions tunes one submission; the zero value is the default.
type SubmitOptions struct {
	// FailFast cancels the submission's remaining jobs after its first
	// error instead of capturing every job's error independently. Other
	// concurrent submissions are unaffected.
	FailFast bool
	// OnResult, when set, observes every job's BatchResult in completion
	// order while the batch is still running. It is called synchronously
	// on the result path; keep it fast. A sharded job is observed once,
	// when its last band lands and the stitched result is ready.
	OnResult func(BatchResult)
	// OnShard, when set, observes each band of a sharded job as it
	// finishes, before the job's stitched OnResult — the hook CLIs use for
	// per-shard progress lines. job is the submitted job's index; r.Index
	// is the band index. Called synchronously on the result path.
	OnShard func(job int, r BatchResult)
}

// Submit runs one batch on the service and blocks until every job is
// accounted for, with LegalizeBatch's contract: results in submission
// order, per-job errors captured per result, the returned error non-nil
// only when the batch was rejected at admission (ErrOverloaded,
// ErrServiceClosed — then the summary is nil) or stopped early (ctx
// canceled, or FailFast tripped).
func (s *Service) Submit(ctx context.Context, jobs []BatchJob, opt SubmitOptions) (*BatchSummary, error) {
	e := s.expand(jobs)
	col := newShardCollector(e, opt.OnShard, func(br BatchResult) {
		s.observeResult(br)
		if opt.OnResult != nil {
			opt.OnResult(br)
		}
	})
	_, st, err := batch.RunClassedOn(ctx, s.pool, e.pool, e.classes, opt.FailFast, col.observe)
	if rejected := s.admissionError(err); rejected != nil {
		return nil, rejected
	}
	// Every pool result was observed, so every submitted job has folded.
	sum := &BatchSummary{
		Results: col.results,
		Workers: st.Workers,
		Wall:    st.Wall, WorkWall: st.WorkWall,
		FPGAs:      st.FPGAs,
		DeviceWait: st.DeviceWait, DeviceHold: st.DeviceHold,
		SchedWait: st.SchedWait,
		Reconfigs: st.DeviceReconfigs,
	}
	sum.ReconfigSeconds = st.DeviceReconfigTime.Seconds()
	for _, br := range col.results {
		switch {
		case IsBatchSkipped(br.Err):
			sum.Skipped++
		case br.Err != nil:
			sum.Errors++
		case br.Outcome != nil:
			sum.ModeledSeconds += br.Outcome.ModeledSeconds
		}
	}
	// Board programming kept the modeled accelerator busy too: fold the
	// schedule's reconfiguration overhead into the batch total (zero
	// unless WithReconfigCost is set; per-Outcome modeled seconds stay
	// pure functions of the design).
	sum.ModeledSeconds += sum.ReconfigSeconds
	s.account(len(jobs), col.sharded, sum.Errors, sum.Skipped)
	return sum, err
}

// Stream runs one batch on the service and returns immediately with a
// channel yielding every job's BatchResult in completion order (use
// BatchResult.Index to reorder); it is closed after exactly len(jobs)
// sends. Admission failures (ErrOverloaded, ErrServiceClosed) are returned
// synchronously with a nil channel. Callers must drain the channel — cancel
// ctx to stop early; an abandoned channel pins the batch's queue slots and
// blocks Close. SubmitOptions.OnResult, when also set, observes each result
// just before it is sent.
func (s *Service) Stream(ctx context.Context, jobs []BatchJob, opt SubmitOptions) (<-chan BatchResult, error) {
	return s.stream(ctx, jobs, opt, nil)
}

// stream is Stream with an after-drain hook, so the LegalizeBatchStream
// wrapper can tear its throwaway service down once the channel closes.
func (s *Service) stream(ctx context.Context, jobs []BatchJob, opt SubmitOptions, onDrained func()) (<-chan BatchResult, error) {
	e := s.expand(jobs)
	in, err := batch.StreamClassedOn(ctx, s.pool, e.pool, e.classes, opt.FailFast)
	if rejected := s.admissionError(err); rejected != nil {
		return nil, rejected
	}
	out := make(chan BatchResult)
	go func() {
		if onDrained != nil {
			defer onDrained()
		}
		defer close(out)
		var errs, skipped int
		col := newShardCollector(e, opt.OnShard, func(br BatchResult) {
			s.observeResult(br)
			switch {
			case IsBatchSkipped(br.Err):
				skipped++
			case br.Err != nil:
				errs++
			}
			if opt.OnResult != nil {
				opt.OnResult(br)
			}
			out <- br
		})
		for r := range in {
			col.observe(r)
		}
		s.account(len(jobs), col.sharded, errs, skipped)
	}()
	return out, nil
}

// admissionError maps the pool's admission rejections onto the public
// sentinels and counts them; any other error passes through as nil (it is
// a batch-level error the caller still gets alongside results).
func (s *Service) admissionError(err error) error {
	var coe *batch.ClientOverloadedError
	switch {
	case errors.As(err, &coe):
		s.mu.Lock()
		s.clientOverloaded++
		s.mu.Unlock()
		return &ClientOverloadedError{Client: coe.Client}
	case errors.Is(err, batch.ErrOverloaded):
		s.mu.Lock()
		s.overloaded++
		s.mu.Unlock()
		return ErrOverloaded
	case errors.Is(err, batch.ErrPoolClosed):
		return ErrServiceClosed
	}
	return nil
}

// account folds one finished batch into the cumulative counters.
func (s *Service) account(jobs, sharded, errs, skipped int) {
	s.mu.Lock()
	s.batches++
	s.jobs += int64(jobs)
	s.sharded += int64(sharded)
	s.errs += int64(errs)
	s.skipped += int64(skipped)
	s.mu.Unlock()
}

// Close stops admitting work, waits for in-flight submissions to drain,
// and releases the workers. It is idempotent; submissions after Close fail
// with ErrServiceClosed.
func (s *Service) Close() error {
	s.pool.Close()
	if s.router != nil {
		// After the pool drains no job can issue a remote call, so the
		// router (and its health prober) can stop.
		s.router.Close()
	}
	return nil
}

// ServiceStats is a cumulative snapshot of a Service's life so far.
type ServiceStats struct {
	// Batches counts finished submissions; Jobs the results they
	// delivered; Errors jobs that ran and failed; Skipped jobs canceled
	// before starting; Overloaded submissions rejected at admission.
	Batches, Jobs, Errors, Skipped, Overloaded int64
	// ClientOverloaded counts submissions rejected by a per-client
	// admission bound (WithClientQueueDepth).
	ClientOverloaded int64
	// ShardedJobs counts the jobs that took the row-band shard path
	// (BatchJob.Shards, WithShards, or auto-sharding).
	ShardedJobs int64
	// QueuedJobs is the number of pool jobs admitted and not yet
	// delivered right now — queued plus running, with each band of a
	// sharded job counted separately. Against QueueDepth it measures how
	// close the service is to shedding load; flexserve derives its 429
	// Retry-After from it.
	QueuedJobs int
	// QueuedByPriority buckets the jobs currently waiting for a worker by
	// their base priority — the per-class queue depths /v1/stats serves.
	QueuedByPriority map[int]int
	// QueuedByClient buckets waiting jobs by client; RunningByClient
	// counts each client's jobs currently occupying a worker (the set a
	// client quota caps).
	QueuedByClient  map[string]int
	RunningByClient map[string]int
	// Workers is the persistent pool size; FPGAs the modeled board count
	// (0 = unlimited); QueueDepth the admission bound (0 = unbounded).
	Workers, FPGAs, QueueDepth int
	// Scheduler names the active policy ("priority" or "fifo");
	// ClientQuota and ClientQueueDepth echo the per-client bounds (0 =
	// unlimited); ReconfigCost the modeled per-swap board programming
	// delay.
	Scheduler                     string
	ClientQuota, ClientQueueDepth int
	ReconfigCost                  time.Duration
	// Reconfigs counts board reconfigurations across every submission
	// (consecutive holders from different jobs, first board use included);
	// ReconfigTime is the modeled programming time they charged.
	Reconfigs    int
	ReconfigTime time.Duration
	// Cache accounting (all zero when caching is disabled): hits count
	// lookups that skipped regeneration, including waiters that joined an
	// in-flight generation.
	CacheHits, CacheMisses, CacheEvictions int64
	CacheEntries                           int
	CacheBytes, CacheMaxBytes              int64
	// Outcome-cache accounting (all zero when the outcome cache is off).
	// OutcomeHits counts jobs served wholly or partly from a cached
	// outcome; OutcomeMisses jobs that ran with the cache on but found
	// nothing reusable. Incremental counts eco jobs (edits or a base
	// reference) that spliced cached clean bands; Fallbacks eco jobs that
	// had to run in full — base cold, edits past the halo, or a dirty
	// prediction contradicted by a band hash. OutcomeDiskHits counts
	// lookups served from the -cache-dir files after missing memory;
	// OutcomeLoaded entries restored at start; OutcomeErrors corrupt or
	// unwritable files skipped with a warning.
	Incremental, Fallbacks                        int64
	OutcomeHits, OutcomeMisses                    int64
	OutcomeEntries                                int
	OutcomeBytes                                  int64
	OutcomeDiskHits, OutcomeLoaded, OutcomeErrors int64
	// Device contention, cumulative across every submission: total queue
	// time and board occupancy, acquisitions, and how many had to wait.
	DeviceWait, DeviceHold          time.Duration
	DeviceAcquires, DeviceContended int
	// Fleet is the coordinator's routing snapshot — per-worker liveness
	// and traffic, retry/exclusion totals, cumulative band round-trip
	// wall time. Nil on a single-process service.
	Fleet *FleetStats
}

// CacheHitRate returns hits / (hits + misses), or 0 before any lookup.
func (st ServiceStats) CacheHitRate() float64 {
	if total := st.CacheHits + st.CacheMisses; total > 0 {
		return float64(st.CacheHits) / float64(total)
	}
	return 0
}

// Stats snapshots the service's cumulative counters: jobs served, cache
// effectiveness, device contention.
func (s *Service) Stats() ServiceStats {
	s.mu.Lock()
	st := ServiceStats{
		Batches: s.batches, Jobs: s.jobs, Errors: s.errs,
		Skipped: s.skipped, Overloaded: s.overloaded,
		ClientOverloaded: s.clientOverloaded,
		ShardedJobs:      s.sharded,
		Workers:          s.pool.Workers(), QueueDepth: s.depth,
		QueuedJobs:   s.pool.Admitted(),
		Scheduler:    s.scheduler.String(),
		ClientQuota:  s.clientQuota,
		ReconfigCost: s.reconfigCost,
		Incremental:  s.incremental, Fallbacks: s.fallbacks,
		OutcomeHits: s.outcomeHits, OutcomeMisses: s.outcomeMisses,
	}
	st.ClientQueueDepth = s.clientDepth
	s.mu.Unlock()
	d := s.pool.Depths()
	st.QueuedByPriority = d.WaitingByPriority
	st.QueuedByClient = d.WaitingByClient
	st.RunningByClient = d.RunningByClient
	if s.layouts != nil {
		cs := s.layouts.Stats()
		st.CacheHits, st.CacheMisses, st.CacheEvictions = cs.Hits, cs.Misses, cs.Evictions
		st.CacheEntries, st.CacheBytes, st.CacheMaxBytes = cs.Entries, cs.Bytes, cs.MaxBytes
	}
	if s.outcomes != nil {
		os := s.outcomes.Stats()
		st.OutcomeEntries, st.OutcomeBytes = os.Entries, os.Bytes
		st.OutcomeDiskHits, st.OutcomeLoaded, st.OutcomeErrors = os.DiskHits, os.Loaded, os.Errors
	}
	if dev := s.pool.Device(); dev != nil {
		ds := dev.Stats()
		st.FPGAs = ds.Capacity
		st.DeviceWait, st.DeviceHold = ds.Wait, ds.Hold
		st.DeviceAcquires, st.DeviceContended = ds.Acquires, ds.Contended
		st.Reconfigs, st.ReconfigTime = ds.Reconfigs, ds.ReconfigTime
	}
	if s.router != nil {
		st.Fleet = fleetStats(s.router.Stats())
	}
	return st
}

// ClientQueued returns the named client's admitted-and-undelivered job
// count right now (each band of a sharded job counted separately) — the
// occupancy WithClientQueueDepth bounds, and the honest basis of a
// per-client 429 Retry-After.
func (s *Service) ClientQueued(client string) int {
	return s.pool.AdmittedByClient(client)
}

// generate resolves a job's (design, scale) reference, through the layout
// cache when one is configured. Cached layouts are shared across jobs and
// submissions — engines legalize clones, so sharing the pointer is safe.
func (s *Service) generate(design string, scale float64) (*Layout, error) {
	spec, err := lookupSpec(design, scale)
	if err != nil {
		return nil, err
	}
	return gen.Cached(s.layouts, spec, scale)
}
