// Package flex is the public API of the FLEX reproduction: an FPGA-CPU
// co-designed legalizer for mixed-cell-height VLSI designs (Liu et al.,
// "FLEX: Leveraging FPGA-CPU Synergy for Mixed-Cell-Height Legalization
// Acceleration", ICPP 2025), together with the three baselines the paper
// compares against and the synthetic IC/CAD 2017 benchmark suite it is
// evaluated on.
//
// Quick start:
//
//	layout, _ := flex.Generate("fft_a_md2", 0.05)
//	out, _ := flex.Legalize(layout, flex.EngineFLEX)
//	fmt.Println(out.Legal, out.Metrics.AveDis, out.ModeledSeconds)
//
// Engines share the same algorithmic substrate (the MGL legalization flow);
// they differ in scheduling policy and in the platform model that prices
// their work. ModeledSeconds is deterministic — it is computed from
// operation traces, not wall clocks — so comparisons are reproducible.
package flex

import (
	"fmt"
	"io"

	"github.com/flex-eda/flex/internal/analytical"
	"github.com/flex-eda/flex/internal/core"
	"github.com/flex-eda/flex/internal/fpga"
	"github.com/flex-eda/flex/internal/gen"
	"github.com/flex-eda/flex/internal/gpu"
	"github.com/flex-eda/flex/internal/mgl"
	"github.com/flex-eda/flex/internal/model"
	"github.com/flex-eda/flex/internal/perf"
)

// Core data-model vocabulary, re-exported for API users.
type (
	// Layout is a complete design: die, rows, and all cells.
	Layout = model.Layout
	// Cell is one standard cell (movable or fixed blockage).
	Cell = model.Cell
	// Metrics is the quality summary (AveDis is Eq. 2 of the paper).
	Metrics = model.Metrics
	// Violation is one legality failure.
	Violation = model.Violation
	// PGParity is the power/ground rail alignment constraint.
	PGParity = model.PGParity
)

// Re-exported parity constants.
const (
	ParityAny  = model.ParityAny
	ParityEven = model.ParityEven
	ParityOdd  = model.ParityOdd
)

// Engine selects a legalizer implementation.
type Engine int

const (
	// EngineFLEX is the paper's FPGA-CPU accelerator (sliding-window
	// ordering, streaming FOP on the FPGA model, step e on the CPU).
	EngineFLEX Engine = iota
	// EngineMGL is the sequential software MGL reference.
	EngineMGL
	// EngineMGLMT is the TCAD'22-style multi-threaded CPU baseline.
	EngineMGLMT
	// EngineGPU is the DATE'22-style CPU-GPU baseline.
	EngineGPU
	// EngineAnalytical is the ISPD'25-style analytical baseline.
	EngineAnalytical
)

// String names the engine as in the paper's Table 1.
func (e Engine) String() string {
	switch e {
	case EngineFLEX:
		return "FLEX"
	case EngineMGL:
		return "MGL"
	case EngineMGLMT:
		return "TCAD'22-MGL"
	case EngineGPU:
		return "DATE'22"
	case EngineAnalytical:
		return "ISPD'25"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// Options tunes an engine run. The zero value picks the paper's defaults.
type Options struct {
	// Threads is the CPU baseline's worker count (EngineMGLMT; default 8).
	Threads int
	// SlidingWindow is FLEX's ordering window (default 8; negative
	// disables the density reordering).
	SlidingWindow int
	// TwoPE selects the 2-parallel FOP PE cluster for FLEX (default true).
	OnePE bool
	// OffloadInsert moves step e) to the FPGA (the Fig. 10 ablation).
	OffloadInsert bool
}

// Outcome is a finished legalization with its quality and modeled runtime.
type Outcome struct {
	Layout         *Layout
	Metrics        Metrics
	Legal          bool
	Violations     []Violation
	ModeledSeconds float64
	Engine         Engine
}

// Legalize runs the selected engine with default options on a clone of l.
func Legalize(l *Layout, engine Engine) (*Outcome, error) {
	return LegalizeWith(l, engine, Options{})
}

// LegalizeWith runs the selected engine with explicit options.
func LegalizeWith(l *Layout, engine Engine, opt Options) (*Outcome, error) {
	if l == nil {
		return nil, fmt.Errorf("flex: nil layout")
	}
	out := &Outcome{Engine: engine}
	switch engine {
	case EngineFLEX:
		cfg := core.Config{SlidingWindow: opt.SlidingWindow}
		if opt.OnePE {
			cfg.PE = fpga.PEConfig{Pipeline: fpga.MultiGranularity, SACS: fpga.SACSParal, NumPE: 1}
		}
		if opt.OffloadInsert {
			cfg.Assignment = core.FOPAndInsertOnFPGA
		}
		r := core.Legalize(l, cfg)
		out.Layout, out.Metrics, out.Legal = r.Layout, r.Metrics, r.Legal
		out.Violations = r.Violations
		out.ModeledSeconds = r.TotalSeconds
	case EngineMGL:
		r := mgl.Legalize(l, mgl.Config{})
		out.Layout, out.Metrics, out.Legal = r.Layout, r.Metrics, r.Legal
		out.Violations = r.Violations
		out.ModeledSeconds = perf.DefaultCPU.Seconds(r.Stats.WorkSerial)
	case EngineMGLMT:
		threads := opt.Threads
		if threads == 0 {
			threads = 8
		}
		r := mgl.Legalize(l, mgl.Config{Threads: threads})
		out.Layout, out.Metrics, out.Legal = r.Layout, r.Metrics, r.Legal
		out.Violations = r.Violations
		out.ModeledSeconds = perf.DefaultCPU.ParallelSeconds(
			r.Stats.WorkSerial, r.Stats.WorkCritical, int(r.Stats.Batches), threads)
	case EngineGPU:
		r := gpu.Legalize(l, gpu.Config{})
		out.Layout, out.Metrics, out.Legal = r.Layout, r.Metrics, r.Legal
		out.Violations = r.Violations
		out.ModeledSeconds = r.TotalSeconds
	case EngineAnalytical:
		r := analytical.Legalize(l, analytical.Config{})
		out.Layout, out.Metrics, out.Legal = r.Layout, r.Metrics, r.Legal
		out.Violations = r.Violations
		out.ModeledSeconds = r.TotalSeconds
	default:
		return nil, fmt.Errorf("flex: unknown engine %d", int(engine))
	}
	return out, nil
}

// Designs lists the available benchmark names: the 16 IC/CAD 2017 designs
// of the paper's Table 1 plus the two superblue-scale designs of Fig. 2(b).
func Designs() []string {
	var names []string
	for _, s := range gen.ICCAD2017() {
		names = append(names, s.Name)
	}
	for _, s := range gen.Superblue() {
		names = append(names, s.Name)
	}
	return names
}

// Generate synthesizes the named benchmark at the given scale factor
// (1.0 = the paper's cell count; 0.02 is a laptop-friendly size).
func Generate(name string, scale float64) (*Layout, error) {
	spec, ok := gen.ByName(name)
	if !ok {
		return nil, fmt.Errorf("flex: unknown design %q (see Designs())", name)
	}
	return spec.Generate(scale)
}

// GenerateCustom synthesizes an ad-hoc benchmark with the given movable
// cell count, design density and RNG seed.
func GenerateCustom(cells int, density float64, seed int64) (*Layout, error) {
	return gen.Small(cells, density, seed).Generate(1.0)
}

// ReadLayout decodes a layout in flexpl text format.
func ReadLayout(r io.Reader) (*Layout, error) { return model.Decode(r) }

// WriteLayout encodes a layout in flexpl text format.
func WriteLayout(w io.Writer, l *Layout) error { return model.Encode(w, l) }

// Measure recomputes quality metrics for a layout.
func Measure(l *Layout) Metrics { return model.Measure(l) }

// Check validates a layout and returns up to max violations (0 = all).
func Check(l *Layout, max int) []Violation { return l.Check(max) }

// FPGAResources returns the modeled FPGA footprint of a FLEX cluster with
// the given number of FOP PEs, and the Alveo U50 budget it must fit in
// (the paper's Table 2).
func FPGAResources(numPE int) (used, available fpga.Resources) {
	return fpga.Estimate(numPE), fpga.AlveoU50
}
