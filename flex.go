// Package flex is the public API of the FLEX reproduction: an FPGA-CPU
// co-designed legalizer for mixed-cell-height VLSI designs (Liu et al.,
// "FLEX: Leveraging FPGA-CPU Synergy for Mixed-Cell-Height Legalization
// Acceleration", ICPP 2025), together with the three baselines the paper
// compares against and the synthetic IC/CAD 2017 benchmark suite it is
// evaluated on.
//
// Quick start:
//
//	layout, _ := flex.Generate("fft_a_md2", 0.05)
//	out, _ := flex.Legalize(layout, flex.EngineFLEX)
//	fmt.Println(out.Legal, out.Metrics.AveDis, out.ModeledSeconds)
//
// Engines share the same algorithmic substrate (the MGL legalization flow);
// they differ in scheduling policy and in the platform model that prices
// their work. ModeledSeconds is deterministic — it is computed from
// operation traces, not wall clocks — so comparisons are reproducible.
package flex

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"github.com/flex-eda/flex/internal/analytical"
	"github.com/flex-eda/flex/internal/batch"
	"github.com/flex-eda/flex/internal/core"
	"github.com/flex-eda/flex/internal/fpga"
	"github.com/flex-eda/flex/internal/gen"
	"github.com/flex-eda/flex/internal/gpu"
	"github.com/flex-eda/flex/internal/mgl"
	"github.com/flex-eda/flex/internal/model"
	"github.com/flex-eda/flex/internal/obs"
	"github.com/flex-eda/flex/internal/perf"
	"github.com/flex-eda/flex/internal/sched"
)

// Core data-model vocabulary, re-exported for API users.
type (
	// Layout is a complete design: die, rows, and all cells.
	Layout = model.Layout
	// Cell is one standard cell (movable or fixed blockage).
	Cell = model.Cell
	// Metrics is the quality summary (AveDis is Eq. 2 of the paper).
	Metrics = model.Metrics
	// Violation is one legality failure.
	Violation = model.Violation
	// PGParity is the power/ground rail alignment constraint.
	PGParity = model.PGParity
)

// Re-exported parity constants.
const (
	ParityAny  = model.ParityAny
	ParityEven = model.ParityEven
	ParityOdd  = model.ParityOdd
)

// Engine selects a legalizer implementation.
type Engine int

const (
	// EngineFLEX is the paper's FPGA-CPU accelerator (sliding-window
	// ordering, streaming FOP on the FPGA model, step e on the CPU).
	EngineFLEX Engine = iota
	// EngineMGL is the sequential software MGL reference.
	EngineMGL
	// EngineMGLMT is the TCAD'22-style multi-threaded CPU baseline.
	EngineMGLMT
	// EngineGPU is the DATE'22-style CPU-GPU baseline.
	EngineGPU
	// EngineAnalytical is the ISPD'25-style analytical baseline.
	EngineAnalytical
)

// String names the engine as in the paper's Table 1.
func (e Engine) String() string {
	switch e {
	case EngineFLEX:
		return "FLEX"
	case EngineMGL:
		return "MGL"
	case EngineMGLMT:
		return "TCAD'22-MGL"
	case EngineGPU:
		return "DATE'22"
	case EngineAnalytical:
		return "ISPD'25"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// engineRegistry is the single source of the canonical engine names, FLEX
// first — EngineNames, ParseEngine, and every CLI/server error message
// derive from it, so the accepted name set cannot drift between surfaces.
var engineRegistry = []struct {
	name   string
	engine Engine
}{
	{"flex", EngineFLEX},
	{"mgl", EngineMGL},
	{"mgl-mt", EngineMGLMT},
	{"gpu", EngineGPU},
	{"analytical", EngineAnalytical},
}

// EngineNames lists the canonical names ParseEngine accepts, FLEX first.
func EngineNames() []string {
	names := make([]string, len(engineRegistry))
	for i, r := range engineRegistry {
		names[i] = r.name
	}
	return names
}

// ParseEngine maps a canonical engine name (see EngineNames) to its Engine.
func ParseEngine(name string) (Engine, error) {
	for _, r := range engineRegistry {
		if r.name == name {
			return r.engine, nil
		}
	}
	return 0, fmt.Errorf("flex: unknown engine %q (want %s)", name, strings.Join(EngineNames(), ", "))
}

// Options tunes an engine run. The zero value picks the paper's defaults.
type Options struct {
	// Threads is the CPU baseline's worker count (EngineMGLMT; default 8).
	Threads int
	// SlidingWindow is FLEX's ordering window (default 8; negative
	// disables the density reordering).
	SlidingWindow int
	// OnePE restricts FLEX to a single FOP PE instead of the default
	// 2-parallel PE cluster (the last rung of the Fig. 8 ladder undone).
	OnePE bool
	// OffloadInsert moves step e) to the FPGA (the Fig. 10 ablation).
	OffloadInsert bool
}

// Outcome is a finished legalization with its quality and modeled runtime.
type Outcome struct {
	Layout         *Layout
	Metrics        Metrics
	Legal          bool
	Violations     []Violation
	ModeledSeconds float64
	Engine         Engine
	// InputHash is the content hash of the job's input layout — the handle
	// a later BatchJob.BaseHash or flexserve "base" field may reference to
	// request an incremental re-legalization. Set only by services with an
	// outcome cache (WithOutcomeCacheBytes / WithCacheDir); empty otherwise.
	InputHash string
}

// Legalize runs the selected engine with default options on a clone of l.
func Legalize(l *Layout, engine Engine) (*Outcome, error) {
	return LegalizeWith(l, engine, Options{})
}

// LegalizeWith runs the selected engine with explicit options.
func LegalizeWith(l *Layout, engine Engine, opt Options) (*Outcome, error) {
	if l == nil {
		return nil, fmt.Errorf("flex: nil layout")
	}
	out := &Outcome{Engine: engine}
	switch engine {
	case EngineFLEX:
		cfg := core.Config{SlidingWindow: opt.SlidingWindow}
		if opt.OnePE {
			cfg.PE = fpga.PEConfig{Pipeline: fpga.MultiGranularity, SACS: fpga.SACSParal, NumPE: 1}
		}
		if opt.OffloadInsert {
			cfg.Assignment = core.FOPAndInsertOnFPGA
		}
		r := core.Legalize(l, cfg)
		out.Layout, out.Metrics, out.Legal = r.Layout, r.Metrics, r.Legal
		out.Violations = r.Violations
		out.ModeledSeconds = r.TotalSeconds
	case EngineMGL:
		r := mgl.Legalize(l, mgl.Config{})
		out.Layout, out.Metrics, out.Legal = r.Layout, r.Metrics, r.Legal
		out.Violations = r.Violations
		out.ModeledSeconds = perf.DefaultCPU.Seconds(r.Stats.WorkSerial)
	case EngineMGLMT:
		threads := opt.Threads
		if threads == 0 {
			threads = 8
		}
		r := mgl.Legalize(l, mgl.Config{Threads: threads})
		out.Layout, out.Metrics, out.Legal = r.Layout, r.Metrics, r.Legal
		out.Violations = r.Violations
		out.ModeledSeconds = perf.DefaultCPU.ParallelSeconds(
			r.Stats.WorkSerial, r.Stats.WorkCritical, int(r.Stats.Batches), threads)
	case EngineGPU:
		r := gpu.Legalize(l, gpu.Config{})
		out.Layout, out.Metrics, out.Legal = r.Layout, r.Metrics, r.Legal
		out.Violations = r.Violations
		out.ModeledSeconds = r.TotalSeconds
	case EngineAnalytical:
		r := analytical.Legalize(l, analytical.Config{})
		out.Layout, out.Metrics, out.Legal = r.Layout, r.Metrics, r.Legal
		out.Violations = r.Violations
		out.ModeledSeconds = r.TotalSeconds
	default:
		return nil, fmt.Errorf("flex: unknown engine %d", int(engine))
	}
	return out, nil
}

// BatchJob describes one legalization job for LegalizeBatch. Either set
// Layout directly, or name a Design (see Designs) and a Scale to have the
// job synthesize its own benchmark on a worker goroutine.
type BatchJob struct {
	// Design names a built-in benchmark to generate; ignored when Layout
	// is set.
	Design string
	// Scale is the generation scale factor (0 = 1.0, the paper's size).
	Scale float64
	// Layout is an explicit input layout. Engines legalize a clone, so the
	// same layout may be shared by several jobs.
	Layout *Layout
	// Engine selects the legalizer.
	Engine Engine
	// Options tunes the engine (zero value = paper defaults).
	Options Options
	// Tag is an optional caller label echoed in the job's BatchResult.
	Tag string
	// Shards splits the job's layout into that many horizontal row bands
	// (internal/shard) legalized as independent pool jobs and stitched back
	// into one result — the path that fits paper-scale designs through
	// workers that cannot hold a whole layout. 0 defers to the service's
	// WithShards / auto-sharding defaults (no sharding on a plain
	// LegalizeBatch); negative forces the unsharded path; values above what
	// the die can hold are clamped. Shards == 1 still exercises the full
	// split/stitch machinery and is byte-identical to the unsharded path.
	Shards int
	// ShardHalo is the seam-crossing reassignment window, in rows, a
	// sharded job plans with: a cell whose global span pokes over a band
	// seam within this many rows may be bumped to the upper band when that
	// strictly shrinks its forced displacement. 0 defers to the service
	// default (DefaultShardHalo); negative disables the halo.
	ShardHalo int
	// Priority orders the job against everything else waiting on the
	// service: higher runs earlier. Levels are small integers around 0
	// (negative = background). Under the default scheduler a waiting job
	// gains one effective level per aging step, so low priorities are
	// delayed, never starved. Scheduling moves only when the job runs —
	// results stay byte-identical for any priority assignment.
	Priority int
	// Deadline, when non-zero, is the job's absolute completion target:
	// within one priority level the earliest deadline is scheduled first,
	// and a job whose deadline has already passed when a worker picks it
	// up fails fast with ErrDeadlineExceeded without running.
	Deadline time.Time
	// Client is the submitting tenant. The service's scheduler spreads
	// capacity across clients (weighted fair sharing), caps one client's
	// concurrently running jobs (WithClientQuota), and bounds one client's
	// admitted jobs (WithClientQueueDepth — exceeding it rejects the batch
	// with ErrClientOverloaded). Empty is the shared anonymous client. A
	// sharded job's bands all carry the owner's client.
	Client string
	// Edits perturbs the job's input before legalization: each edit moves,
	// inserts or deletes a movable cell of the base layout (BaseHash,
	// Layout, or the generated Design, in that precedence). On a service
	// with an outcome cache a sharded edited job re-legalizes only the
	// dirty row bands and splices the cached base outcome's clean bands in
	// — byte-identical to a full re-run of the edited layout; without a
	// cache (or when the delta ripples past the halo, or the base outcome
	// is cold) the edited layout takes an ordinary full run.
	Edits []Edit
	// BaseHash names the job's input layout by content hash (LayoutHash, or
	// a previous Outcome.InputHash) instead of re-sending it: the layout is
	// resolved from the service's outcome cache. Requires
	// WithOutcomeCacheBytes or WithCacheDir; an unknown hash fails the job.
	BaseHash string
}

// NeedsFPGA reports the job's accelerator requirement: FLEX occupies the
// modeled FPGA for its device phase, while the baselines (MGL, MGL-MT,
// the GPU and analytical models) are priced entirely host-side. Jobs that
// need the FPGA serialize on the batch's device tokens (BatchOptions.FPGAs);
// everything else overlaps freely.
func (j BatchJob) NeedsFPGA() bool { return j.Engine == EngineFLEX }

// BatchOptions tunes a LegalizeBatch run.
type BatchOptions struct {
	// Workers bounds concurrently running jobs (<= 0 = GOMAXPROCS).
	Workers int
	// FailFast cancels the remaining jobs after the first error instead of
	// capturing every job's error independently.
	FailFast bool
	// FPGAs is the number of physical accelerator boards the batch models
	// (0 = 1, the paper's single-card host; negative = unlimited, no
	// device contention). Jobs whose engine needs the FPGA (see
	// BatchJob.NeedsFPGA) hold one board for their device phase while
	// CPU-only jobs — and FLEX's own CPU steps, like benchmark generation
	// — keep overlapping. Capacity never changes results, only wall-clock
	// and the device-wait statistics.
	FPGAs int
	// OnResult, when set, observes every job's BatchResult in completion
	// order while the batch is still running — the streaming hook for
	// progress lines. It is called synchronously from the collecting
	// goroutine; keep it fast.
	OnResult func(BatchResult)
}

// BatchResult is one job's outcome within a batch.
type BatchResult struct {
	// Index is the job's position in the submitted slice.
	Index int
	// Tag echoes the job's Tag.
	Tag string
	// Outcome is the finished legalization (nil when Err is set).
	Outcome *Outcome
	// Err is this job's failure, if any. Jobs that never started because
	// the batch was canceled report an error matched by IsBatchSkipped;
	// jobs whose deadline expired before they could start report
	// ErrDeadlineExceeded.
	Err error
	// Wall is the job's own wall-clock time.
	Wall time.Duration
	// SchedWait is the time the job spent queued for a worker under the
	// service's scheduler (for sharded jobs, summed over the bands) — the
	// per-class latency signal the sched experiment measures.
	SchedWait time.Duration
	// DeviceWait is the time the job queued for a modeled FPGA board;
	// DeviceHold is the time it occupied one. Zero for CPU-only engines.
	// For sharded jobs both sum over the bands, while Wall is the slowest
	// band's (the bands ran concurrently).
	DeviceWait time.Duration
	DeviceHold time.Duration
	// DeviceReconfigs counts board acquisitions that reprogrammed their
	// board because its previous holder ran a different job (summed over a
	// sharded job's bands; bands of one job share a configuration).
	DeviceReconfigs int
	// Shards holds a sharded job's per-band results in band order (bottom
	// to top; Index is the band index), nil for unsharded jobs. Outcome is
	// then the stitched whole-die result with metrics re-measured against
	// the original global placement, and ModeledSeconds is the slowest
	// band's — the modeled wall of a fully parallel sharded run.
	Shards []BatchResult
	// TraceID identifies the job's trace on a tracing service (WithTracing
	// / WithTracer; flexserve -trace): the 16-hex ID every span of the job
	// — including spans recorded on remote fleet workers — groups under.
	// Empty when tracing is off. Telemetry only: tracing never changes
	// result bytes.
	TraceID string
	// Spans is the job's finished span tree (admission, scheduler wait,
	// device wait/hold, per-band legalization, fleet RPCs, stitch, eco
	// splices), sorted by start offset within each level. Nil when tracing
	// is off.
	Spans []*TraceSpan
}

// TraceSpan is one node of a job's trace tree: a named wall-clock interval
// in microseconds since the trace origin, with nested child spans. Spans
// are pure telemetry — wall time never leaks into modeled seconds or
// result bytes (see docs/OBSERVABILITY.md).
type TraceSpan = obs.Span

// BatchSummary is a finished batch: per-job results in submission order
// plus aggregate statistics.
type BatchSummary struct {
	// Results holds one entry per submitted job, in submission order
	// regardless of worker count or completion order.
	Results []BatchResult
	// Errors counts jobs that ran and failed; Skipped counts jobs the
	// batch canceled before they started.
	Errors  int
	Skipped int
	// Workers is the effective pool size.
	Workers int
	// Wall is the batch's wall-clock time; WorkWall sums per-job wall
	// clocks (WorkWall/Wall approximates the achieved overlap).
	Wall     time.Duration
	WorkWall time.Duration
	// ModeledSeconds sums the deterministic modeled runtime of every
	// successful job — the batch's total simulated accelerator time —
	// plus ReconfigSeconds, the modeled board-programming overhead the
	// schedule incurred (zero unless WithReconfigCost is set).
	ModeledSeconds float64
	// FPGAs is the modeled board count the batch ran with (0 = unlimited).
	// DeviceWait sums the time FPGA jobs queued for a board; DeviceHold
	// sums board occupancy. DeviceWait > 0 alongside WorkWall > Wall is
	// the shared-accelerator signature: FLEX device phases serialized
	// while CPU work kept overlapping.
	FPGAs      int
	DeviceWait time.Duration
	DeviceHold time.Duration
	// SchedWait sums the time the batch's jobs queued for a worker.
	SchedWait time.Duration
	// Reconfigs counts board reconfigurations the batch's jobs incurred
	// (the board's previous holder ran a different job); ReconfigSeconds
	// is the modeled programming time charged for them. Unlike the
	// engines' modeled seconds these depend on the schedule — they
	// describe the run, not the design.
	Reconfigs       int
	ReconfigSeconds float64
}

// effectiveScale resolves the job's scale with the BatchJob convention:
// 0 means 1.0, the paper's size.
func (j BatchJob) effectiveScale() float64 {
	if j.Scale == 0 {
		return 1.0
	}
	return j.Scale
}

// resolveLayout returns the job's input layout, generating its Design
// reference through the supplied layout source (a Service's memoizing
// cache, or plain Generate) when no explicit layout is set.
func (j BatchJob) resolveLayout(generate func(design string, scale float64) (*Layout, error)) (*Layout, error) {
	if j.Layout != nil {
		return j.Layout, nil
	}
	return generate(j.Design, j.effectiveScale())
}

// legalizeOnDevice is the job's engine phase: for engines that need the
// FPGA it holds one modeled board while the engine streams l through it;
// CPU-only engines run immediately. Plain jobs and a sharded job's band
// jobs share this one recipe, so the device contract cannot drift between
// them.
func (j BatchJob) legalizeOnDevice(ctx context.Context, l *Layout) (*Outcome, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if j.NeedsFPGA() {
		release, err := batch.AcquireDevice(ctx)
		if err != nil {
			return nil, err
		}
		defer release()
	}
	return LegalizeWith(l, j.Engine, j.Options)
}

// job builds the worker-pool closure: a CPU generation phase that overlaps
// freely, then the engine phase (legalizeOnDevice).
func (j BatchJob) job(generate func(design string, scale float64) (*Layout, error)) batch.Job[*Outcome] {
	return func(ctx context.Context) (*Outcome, error) {
		l, err := j.resolveLayout(generate)
		if err != nil {
			return nil, err
		}
		return j.legalizeOnDevice(ctx, l)
	}
}

func (j BatchJob) toResult(r batch.Result[*Outcome]) BatchResult {
	return BatchResult{
		Index: r.Index, Tag: j.Tag,
		Outcome: r.Value, Err: r.Err, Wall: r.Wall,
		SchedWait:  r.SchedWait,
		DeviceWait: r.DeviceWait, DeviceHold: r.DeviceHold,
		DeviceReconfigs: r.DeviceReconfigs,
	}
}

// throwawayService builds the single-batch Service backing one
// LegalizeBatch/LegalizeBatchStream call: same workers and boards, no
// cache, no admission bound — so the free functions stay byte-identical to
// their pre-Service behaviour while sharing the Service execution path.
func (o BatchOptions) throwawayService() *Service {
	return NewService(WithWorkers(o.Workers), WithFPGAs(o.FPGAs))
}

// LegalizeBatch fans independent legalization jobs across a bounded worker
// pool and collects every outcome. Results keep submission order and each
// job's error is captured in its own BatchResult (no fail-fast unless
// requested), so a batch over N workers and M modeled FPGAs is
// byte-identical to a serial run — engines are deterministic and legalize
// clones of their inputs; workers and boards move only wall-clock and wait
// statistics. The returned error is non-nil only when the batch as a whole
// stopped early: ctx was canceled while jobs were pending or in flight, or
// BatchOptions.FailFast tripped on the first job error.
//
// LegalizeBatch is a thin wrapper over a throwaway Service; long-lived
// callers (servers, multi-batch CLI runs) should hold their own Service to
// amortize the pool and reuse its layout cache.
func LegalizeBatch(ctx context.Context, jobs []BatchJob, opt BatchOptions) (*BatchSummary, error) {
	s := opt.throwawayService()
	defer s.Close()
	return s.Submit(ctx, jobs, SubmitOptions{FailFast: opt.FailFast, OnResult: opt.OnResult})
}

// LegalizeBatchStream is the streaming form of LegalizeBatch: it returns
// immediately with a channel that yields every job's BatchResult in
// completion order (use BatchResult.Index to reorder) and is closed after
// exactly len(jobs) sends — skipped jobs carry an error matched by
// IsBatchSkipped. Callers must drain the channel; cancel ctx to stop
// early. BatchOptions.OnResult, when also set, observes each result just
// before it is sent. Like LegalizeBatch, it wraps a throwaway Service —
// see Service.Stream for the long-lived form.
func LegalizeBatchStream(ctx context.Context, jobs []BatchJob, opt BatchOptions) <-chan BatchResult {
	s := opt.throwawayService()
	out, err := s.stream(ctx, jobs, SubmitOptions{FailFast: opt.FailFast, OnResult: opt.OnResult},
		func() { s.Close() })
	if err != nil {
		// Unreachable: a fresh service has no queue bound and is not closed.
		panic("flex: throwaway service rejected batch: " + err.Error())
	}
	return out
}

// IsBatchSkipped reports whether a BatchResult's error means the job never
// started because the batch was canceled (context or fail-fast).
func IsBatchSkipped(err error) bool { return errors.Is(err, batch.ErrSkipped) }

// ErrDeadlineExceeded marks a job whose BatchJob.Deadline passed before the
// scheduler could start it: the job fails fast without running its engine,
// so an already-hopeless request never occupies a worker or a board. Match
// it with errors.Is on a BatchResult's Err.
var ErrDeadlineExceeded = sched.ErrDeadlineExceeded

// Designs lists the available benchmark names: the 16 IC/CAD 2017 designs
// of the paper's Table 1 plus the two superblue-scale designs of Fig. 2(b).
func Designs() []string {
	var names []string
	for _, s := range gen.ICCAD2017() {
		names = append(names, s.Name)
	}
	for _, s := range gen.Superblue() {
		names = append(names, s.Name)
	}
	return names
}

// validateScale rejects scale factors that cannot describe a benchmark
// size — zero, negative, NaN, or infinite — before any generation work.
func validateScale(scale float64) error {
	if math.IsNaN(scale) || math.IsInf(scale, 0) || scale <= 0 {
		return fmt.Errorf("flex: scale must be a positive finite factor (1.0 = paper size), got %v", scale)
	}
	return nil
}

// lookupSpec validates the scale and resolves a design name — the shared
// front door of Generate and the Service's cached layout source, so both
// paths reject bad input with identical errors.
func lookupSpec(name string, scale float64) (gen.Spec, error) {
	if err := validateScale(scale); err != nil {
		return gen.Spec{}, err
	}
	spec, ok := gen.ByName(name)
	if !ok {
		return gen.Spec{}, fmt.Errorf("flex: unknown design %q (see Designs())", name)
	}
	return spec, nil
}

// Generate synthesizes the named benchmark at the given scale factor
// (1.0 = the paper's cell count; 0.02 is a laptop-friendly size). The
// scale must be a positive finite number and the name one of Designs().
func Generate(name string, scale float64) (*Layout, error) {
	spec, err := lookupSpec(name, scale)
	if err != nil {
		return nil, err
	}
	return spec.Generate(scale)
}

// GenerateCustom synthesizes an ad-hoc benchmark with the given movable
// cell count, design density and RNG seed. The cell count must be
// positive and the density in (0, 1] — a fraction of the free area (very
// high densities may still be rejected by the packer, which needs slack to
// place every cell legally).
func GenerateCustom(cells int, density float64, seed int64) (*Layout, error) {
	if cells <= 0 {
		return nil, fmt.Errorf("flex: cell count must be positive, got %d", cells)
	}
	if math.IsNaN(density) || density <= 0 || density > 1 {
		return nil, fmt.Errorf("flex: density must be in (0, 1], got %v", density)
	}
	return gen.Small(cells, density, seed).Generate(1.0)
}

// ReadLayout decodes a layout in flexpl text format.
func ReadLayout(r io.Reader) (*Layout, error) { return model.Decode(r) }

// WriteLayout encodes a layout in flexpl text format.
func WriteLayout(w io.Writer, l *Layout) error { return model.Encode(w, l) }

// Measure recomputes quality metrics for a layout.
func Measure(l *Layout) Metrics { return model.Measure(l) }

// Check validates a layout and returns up to max violations (0 = all).
func Check(l *Layout, max int) []Violation { return l.Check(max) }

// FPGAResources returns the modeled FPGA footprint of a FLEX cluster with
// the given number of FOP PEs, and the Alveo U50 budget it must fit in
// (the paper's Table 2).
func FPGAResources(numPE int) (used, available fpga.Resources) {
	return fpga.Estimate(numPE), fpga.AlveoU50
}
