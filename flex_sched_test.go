package flex_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	flex "github.com/flex-eda/flex"
)

// schedJobs is a small (design × engine) grid with a shuffled priority
// assignment and two tenants — the fixed job set of the scheduling
// byte-identity gate.
func schedJobs() []flex.BatchJob {
	jobs := serviceJobs()
	for i := range jobs {
		jobs[i].Priority = (i * 7) % 5
		jobs[i].Client = []string{"tenant-a", "tenant-b"}[i%2]
	}
	return jobs
}

// serializeOutcomes collapses a summary's layouts and metrics to bytes, so
// runs can be compared for exact equality.
func serializeOutcomes(t *testing.T, sum *flex.BatchSummary) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range sum.Results {
		if r.Err != nil {
			t.Fatalf("job %d (%s): %v", r.Index, r.Tag, r.Err)
		}
		o := r.Outcome
		fmt.Fprintf(&buf, "%d %s %v %.9f %.9f %.9f\n",
			r.Index, o.Engine, o.Legal, o.Metrics.AveDis, o.Metrics.MaxDis, o.ModeledSeconds)
		if err := flex.WriteLayout(&buf, o.Layout); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestServiceByteIdenticalAcrossSchedulers is the tentpole's acceptance
// gate: a fixed job set with shuffled priorities, deadlines far away, and
// mixed clients yields byte-identical outcomes under FIFO and priority
// scheduling across the workers × fpgas grid — scheduling changes when
// jobs run, never what they compute.
func TestServiceByteIdenticalAcrossSchedulers(t *testing.T) {
	var want []byte
	for _, scheduler := range []flex.Scheduler{flex.SchedulerFIFO, flex.SchedulerPriority} {
		for _, workers := range []int{1, 4} {
			for _, fpgas := range []int{1, 2} {
				svc := flex.NewService(
					flex.WithWorkers(workers), flex.WithFPGAs(fpgas),
					flex.WithScheduler(scheduler),
					flex.WithClientQuota(2),
					flex.WithClientWeight("tenant-a", 2),
					flex.WithReconfigCost(time.Millisecond),
				)
				sum, err := svc.Submit(context.Background(), schedJobs(), flex.SubmitOptions{})
				svc.Close()
				if err != nil {
					t.Fatalf("%v workers=%d fpgas=%d: %v", scheduler, workers, fpgas, err)
				}
				got := serializeOutcomes(t, sum)
				if want == nil {
					want = got
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%v workers=%d fpgas=%d: outcomes differ from the reference run",
						scheduler, workers, fpgas)
				}
			}
		}
	}
}

// TestServiceDeadlineExpiredFailsFast pins ErrDeadlineExceeded end to end:
// an already-expired deadline surfaces in the job's BatchResult without the
// engine running, while fresh siblings legalize normally.
func TestServiceDeadlineExpiredFailsFast(t *testing.T) {
	svc := flex.NewService(flex.WithWorkers(1))
	defer svc.Close()
	jobs := []flex.BatchJob{
		{Design: "fft_a_md2", Scale: 0.008, Engine: flex.EngineMGL},
		{Design: "fft_a_md2", Scale: 0.008, Engine: flex.EngineMGL,
			Deadline: time.Now().Add(-time.Second)},
	}
	sum, err := svc.Submit(context.Background(), jobs, flex.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(sum.Results[1].Err, flex.ErrDeadlineExceeded) {
		t.Fatalf("expired job err = %v, want ErrDeadlineExceeded", sum.Results[1].Err)
	}
	if sum.Results[1].Outcome != nil || sum.Results[1].Wall != 0 {
		t.Fatalf("expired job ran: %+v", sum.Results[1])
	}
	if sum.Results[0].Err != nil || !sum.Results[0].Outcome.Legal {
		t.Fatalf("healthy sibling: %+v", sum.Results[0])
	}
	if sum.Errors != 1 {
		t.Fatalf("summary errors = %d, want 1", sum.Errors)
	}
}

// TestServiceClientQuotaCapsInFlight pins the per-tenant quota at the flex
// layer: with quota 1 and four workers, a single client's jobs are never
// observed running concurrently (the deterministic enforcement test lives
// at the batch layer; this smokes the wiring through Service options and
// the RunningByClient stats surface).
func TestServiceClientQuotaCapsInFlight(t *testing.T) {
	svc := flex.NewService(flex.WithWorkers(4), flex.WithClientQuota(1))
	defer svc.Close()
	layout, err := flex.GenerateCustom(400, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]flex.BatchJob, 6)
	for i := range jobs {
		jobs[i] = flex.BatchJob{Layout: layout, Engine: flex.EngineMGL, Client: "solo"}
	}
	ch, err := svc.Stream(context.Background(), jobs, flex.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var max atomic.Int32
	poll := make(chan struct{})
	go func() {
		for {
			select {
			case <-poll:
				return
			default:
			}
			if n := int32(svc.Stats().RunningByClient["solo"]); n > max.Load() {
				max.Store(n)
			}
		}
	}()
	for r := range ch {
		if r.Err != nil {
			t.Errorf("job %d: %v", r.Index, r.Err)
		}
	}
	close(poll)
	if max.Load() > 1 {
		t.Fatalf("client at quota 1 observed %d running", max.Load())
	}
}

// TestServiceClientQueueDepth429Path pins the per-client admission bound:
// a submission pushing one tenant past WithClientQueueDepth is rejected
// with a ClientOverloadedError naming the tenant; other tenants still fit.
func TestServiceClientQueueDepth(t *testing.T) {
	svc := flex.NewService(flex.WithWorkers(1), flex.WithClientQueueDepth(2))
	defer svc.Close()
	layout, err := flex.GenerateCustom(200, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	greedy := make([]flex.BatchJob, 3)
	for i := range greedy {
		greedy[i] = flex.BatchJob{Layout: layout, Engine: flex.EngineMGL, Client: "greedy"}
	}
	_, err = svc.Submit(context.Background(), greedy, flex.SubmitOptions{})
	if !errors.Is(err, flex.ErrClientOverloaded) {
		t.Fatalf("err = %v, want ErrClientOverloaded", err)
	}
	var coe *flex.ClientOverloadedError
	if !errors.As(err, &coe) || coe.Client != "greedy" {
		t.Fatalf("rejection does not name the client: %v", err)
	}
	if st := svc.Stats(); st.ClientOverloaded != 1 {
		t.Fatalf("ClientOverloaded = %d, want 1", st.ClientOverloaded)
	}
	// Two jobs fit; a different client fits alongside.
	mixed := []flex.BatchJob{
		{Layout: layout, Engine: flex.EngineMGL, Client: "greedy"},
		{Layout: layout, Engine: flex.EngineMGL, Client: "greedy"},
		{Layout: layout, Engine: flex.EngineMGL, Client: "polite"},
	}
	if _, err := svc.Submit(context.Background(), mixed, flex.SubmitOptions{}); err != nil {
		t.Fatalf("within-bound submission rejected: %v", err)
	}
}

// TestServiceSchedulerStats pins the new observability surface: scheduler
// name, per-priority queue depths, and reconfiguration accounting.
func TestServiceSchedulerStats(t *testing.T) {
	svc := flex.NewService(flex.WithWorkers(2), flex.WithFPGAs(1),
		flex.WithScheduler(flex.SchedulerPriority),
		flex.WithClientQuota(3), flex.WithClientQueueDepth(7),
		flex.WithReconfigCost(2*time.Millisecond))
	defer svc.Close()
	jobs := []flex.BatchJob{
		{Design: "fft_a_md2", Scale: 0.008, Engine: flex.EngineFLEX, Priority: 5},
		{Design: "fft_a_md2", Scale: 0.008, Engine: flex.EngineFLEX, Priority: 5},
	}
	sum, err := svc.Submit(context.Background(), jobs, flex.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Scheduler != "priority" || st.ClientQuota != 3 || st.ClientQueueDepth != 7 {
		t.Fatalf("scheduling knobs missing from stats: %+v", st)
	}
	if st.ReconfigCost != 2*time.Millisecond {
		t.Fatalf("ReconfigCost = %v", st.ReconfigCost)
	}
	// Two distinct jobs on one board: both acquisitions reprogram it.
	if st.Reconfigs != 2 || st.ReconfigTime <= 0 {
		t.Fatalf("reconfig accounting: %+v", st)
	}
	if sum.Reconfigs != 2 || sum.ReconfigSeconds <= 0 {
		t.Fatalf("summary reconfig accounting: %+v", sum)
	}
	// The modeled total folds the programming overhead in.
	var engines float64
	for _, r := range sum.Results {
		engines += r.Outcome.ModeledSeconds
	}
	if sum.ModeledSeconds <= engines {
		t.Fatalf("ModeledSeconds %.9f does not include reconfig overhead over %.9f",
			sum.ModeledSeconds, engines)
	}
	if st.QueuedByPriority == nil {
		t.Fatal("QueuedByPriority missing")
	}
}

// TestShardedWarmCacheSkipsResplit is the shard-aware cache-key satellite:
// on a caching service, the second identical sharded submission reuses the
// memoized band decomposition — no new cache misses — and still stitches
// the identical result.
func TestShardedWarmCacheSkipsResplit(t *testing.T) {
	svc := flex.NewService(flex.WithWorkers(2), flex.WithCacheBytes(64<<20))
	defer svc.Close()
	job := []flex.BatchJob{{
		Design: "fft_a_md2", Scale: 0.01, Engine: flex.EngineFLEX, Shards: 3,
	}}
	cold, err := svc.Submit(context.Background(), job, flex.SubmitOptions{})
	if err != nil || cold.Results[0].Err != nil {
		t.Fatalf("cold sharded run: %v, %+v", err, cold.Results[0].Err)
	}
	misses := svc.Stats().CacheMisses
	if misses == 0 {
		t.Fatal("cold run recorded no cache misses")
	}
	warm, err := svc.Submit(context.Background(), job, flex.SubmitOptions{})
	if err != nil || warm.Results[0].Err != nil {
		t.Fatalf("warm sharded run: %v, %+v", err, warm.Results[0].Err)
	}
	if got := svc.Stats().CacheMisses; got != misses {
		t.Fatalf("warm sharded run re-split: misses %d -> %d", misses, got)
	}
	var a, b bytes.Buffer
	if err := flex.WriteLayout(&a, cold.Results[0].Outcome.Layout); err != nil {
		t.Fatal(err)
	}
	if err := flex.WriteLayout(&b, warm.Results[0].Outcome.Layout); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("warm sharded result differs from cold")
	}
	// A different band count or halo is a different decomposition: it must
	// miss, not alias the cached one.
	other := []flex.BatchJob{{
		Design: "fft_a_md2", Scale: 0.01, Engine: flex.EngineFLEX, Shards: 2,
	}}
	if _, err := svc.Submit(context.Background(), other, flex.SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := svc.Stats().CacheMisses; got <= misses {
		t.Fatalf("different shard count aliased the cached decomposition (misses still %d)", got)
	}
}
