package flex_test

import (
	"bytes"
	"context"
	"testing"

	flex "github.com/flex-eda/flex"
)

// encodeLayout renders a layout in flexpl text for byte-identity checks.
func encodeLayout(t *testing.T, l *flex.Layout) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := flex.WriteLayout(&buf, l); err != nil {
		t.Fatalf("WriteLayout: %v", err)
	}
	return buf.Bytes()
}

// TestShardsOneByteIdenticalToUnsharded is the shards=1 determinism gate:
// a single-band job runs the full split/stitch machinery and must still
// produce the exact layout, metrics, legality, and modeled seconds of the
// plain path, for every engine.
func TestShardsOneByteIdenticalToUnsharded(t *testing.T) {
	l, err := flex.GenerateCustom(900, 0.6, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []flex.Engine{flex.EngineFLEX, flex.EngineMGL} {
		want, err := flex.LegalizeWith(l, engine, flex.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sum, err := flex.LegalizeBatch(context.Background(),
			[]flex.BatchJob{{Layout: l, Engine: engine, Shards: 1}}, flex.BatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		r := sum.Results[0]
		if r.Err != nil {
			t.Fatalf("%v: sharded job failed: %v", engine, r.Err)
		}
		if len(r.Shards) != 1 {
			t.Fatalf("%v: got %d shard results, want 1", engine, len(r.Shards))
		}
		got := r.Outcome
		if !bytes.Equal(encodeLayout(t, want.Layout), encodeLayout(t, got.Layout)) {
			t.Fatalf("%v: shards=1 layout differs from unsharded", engine)
		}
		if want.Metrics != got.Metrics {
			t.Fatalf("%v: metrics differ: unsharded %+v, shards=1 %+v", engine, want.Metrics, got.Metrics)
		}
		if want.Legal != got.Legal || want.ModeledSeconds != got.ModeledSeconds ||
			len(want.Violations) != len(got.Violations) {
			t.Fatalf("%v: outcome fields differ: legal %v/%v modeled %v/%v violations %d/%d",
				engine, want.Legal, got.Legal, want.ModeledSeconds, got.ModeledSeconds,
				len(want.Violations), len(got.Violations))
		}
	}
}

// TestShardedDeterministicAcrossWorkersAndFPGAs: for a fixed shard count,
// the stitched result must be byte-identical however the band jobs are
// scheduled — the sharded leg of the repo's standing determinism contract.
func TestShardedDeterministicAcrossWorkersAndFPGAs(t *testing.T) {
	var want []byte
	var wantMetrics flex.Metrics
	for _, workers := range []int{1, 4} {
		for _, fpgas := range []int{1, 2} {
			sum, err := flex.LegalizeBatch(context.Background(),
				[]flex.BatchJob{{Design: "fft_a_md2", Scale: 0.01, Engine: flex.EngineFLEX, Shards: 3}},
				flex.BatchOptions{Workers: workers, FPGAs: fpgas})
			if err != nil {
				t.Fatal(err)
			}
			r := sum.Results[0]
			if r.Err != nil {
				t.Fatalf("workers=%d fpgas=%d: %v", workers, fpgas, r.Err)
			}
			enc := encodeLayout(t, r.Outcome.Layout)
			if want == nil {
				want, wantMetrics = enc, r.Outcome.Metrics
				continue
			}
			if !bytes.Equal(want, enc) {
				t.Fatalf("workers=%d fpgas=%d: stitched layout differs", workers, fpgas)
			}
			if wantMetrics != r.Outcome.Metrics {
				t.Fatalf("workers=%d fpgas=%d: metrics differ", workers, fpgas)
			}
		}
	}
}

// TestShardedJobStitchesLegalResult: a multi-band FLEX job must produce a
// legal whole-die layout with per-band results exposed, and the merged
// modeled seconds must be the slowest band's.
func TestShardedJobStitchesLegalResult(t *testing.T) {
	svc := flex.NewService(flex.WithWorkers(2))
	defer svc.Close()
	var shardCalls int
	sum, err := svc.Submit(context.Background(),
		[]flex.BatchJob{{Design: "fft_a_md2", Scale: 0.01, Engine: flex.EngineFLEX, Shards: 3, Tag: "big"}},
		flex.SubmitOptions{OnShard: func(job int, r flex.BatchResult) {
			if job != 0 {
				t.Errorf("OnShard job = %d, want 0", job)
			}
			shardCalls++
		}})
	if err != nil {
		t.Fatal(err)
	}
	r := sum.Results[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Tag != "big" {
		t.Fatalf("tag = %q", r.Tag)
	}
	if len(r.Shards) != 3 || shardCalls != 3 {
		t.Fatalf("got %d shard results, %d OnShard calls, want 3/3", len(r.Shards), shardCalls)
	}
	if !r.Outcome.Legal {
		t.Fatalf("stitched result illegal: %v", r.Outcome.Violations)
	}
	var maxModeled float64
	for i, sr := range r.Shards {
		if sr.Index != i {
			t.Fatalf("shard %d has Index %d", i, sr.Index)
		}
		if sr.Err != nil || sr.Outcome == nil {
			t.Fatalf("shard %d: err=%v", i, sr.Err)
		}
		if !sr.Outcome.Legal {
			t.Fatalf("shard %d illegal", i)
		}
		if sr.Outcome.ModeledSeconds > maxModeled {
			maxModeled = sr.Outcome.ModeledSeconds
		}
	}
	if r.Outcome.ModeledSeconds != maxModeled {
		t.Fatalf("merged modeled seconds %v, want slowest band %v", r.Outcome.ModeledSeconds, maxModeled)
	}
	if st := svc.Stats(); st.ShardedJobs != 1 {
		t.Fatalf("ShardedJobs = %d, want 1", st.ShardedJobs)
	}
}

// TestShardsClampedToDie: asking for far more bands than the die has rows
// degrades to the feasible band count instead of failing, and the padding
// band slots never surface in the result.
func TestShardsClampedToDie(t *testing.T) {
	l, err := flex.GenerateCustom(80, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := flex.LegalizeBatch(context.Background(),
		[]flex.BatchJob{{Layout: l, Engine: flex.EngineMGL, Shards: 500}}, flex.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := sum.Results[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if len(r.Shards) == 0 || len(r.Shards) >= 500 {
		t.Fatalf("got %d effective shards", len(r.Shards))
	}
	if !r.Outcome.Legal {
		t.Fatalf("stitched result illegal: %v", r.Outcome.Violations)
	}
}

// TestServiceDefaultAndAutoSharding: WithShards shards jobs that don't ask,
// a negative job knob opts out, and WithAutoShardBytes splits any job whose
// estimated footprint exceeds the threshold.
func TestServiceDefaultAndAutoSharding(t *testing.T) {
	l, err := flex.GenerateCustom(600, 0.55, 4)
	if err != nil {
		t.Fatal(err)
	}
	svc := flex.NewService(flex.WithWorkers(2), flex.WithShards(2))
	defer svc.Close()
	sum, err := svc.Submit(context.Background(), []flex.BatchJob{
		{Layout: l, Engine: flex.EngineMGL},             // inherits WithShards(2)
		{Layout: l, Engine: flex.EngineMGL, Shards: -1}, // explicitly unsharded
	}, flex.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sum.Results[0].Shards); got != 2 {
		t.Fatalf("default-sharded job: %d shards, want 2", got)
	}
	if got := len(sum.Results[1].Shards); got != 0 {
		t.Fatalf("opted-out job still sharded %d ways", got)
	}

	auto := flex.NewService(flex.WithWorkers(2), flex.WithAutoShardBytes(l.ApproxBytes()/3+1))
	defer auto.Close()
	asum, err := auto.Submit(context.Background(),
		[]flex.BatchJob{{Layout: l, Engine: flex.EngineMGL}}, flex.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(asum.Results[0].Shards); got < 2 {
		t.Fatalf("auto-sharding split into %d bands, want >= 2", got)
	}
	if !asum.Results[0].Outcome.Legal {
		t.Fatal("auto-sharded result illegal")
	}
}

// TestShardedStreamDeliversStitchedResults: the streaming path folds bands
// the same way, one channel send per submitted job.
func TestShardedStreamDeliversStitchedResults(t *testing.T) {
	svc := flex.NewService(flex.WithWorkers(2))
	defer svc.Close()
	jobs := []flex.BatchJob{
		{Design: "fft_a_md2", Scale: 0.008, Engine: flex.EngineMGL, Shards: 2},
		{Design: "pci_b_a_md2", Scale: 0.008, Engine: flex.EngineMGL},
	}
	ch, err := svc.Stream(context.Background(), jobs, flex.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]flex.BatchResult{}
	for r := range ch {
		seen[r.Index] = r
	}
	if len(seen) != 2 {
		t.Fatalf("got %d results, want 2", len(seen))
	}
	if got := len(seen[0].Shards); got != 2 {
		t.Fatalf("sharded stream job: %d shards, want 2", got)
	}
	if got := len(seen[1].Shards); got != 0 {
		t.Fatalf("plain stream job reported %d shards", got)
	}
	for i, r := range seen {
		if r.Err != nil || r.Outcome == nil || !r.Outcome.Legal {
			t.Fatalf("job %d: err=%v", i, r.Err)
		}
	}
}
