package flex_test

import (
	"context"
	"fmt"
	"sort"

	flex "github.com/flex-eda/flex"
)

// ExampleService_Submit runs a small two-engine batch on a long-lived
// Service — the serving deployment unit owning the worker pool, the modeled
// FPGA board, and the layout cache.
func ExampleService_Submit() {
	svc := flex.NewService(flex.WithWorkers(2), flex.WithCacheBytes(32<<20))
	defer svc.Close()

	jobs := []flex.BatchJob{
		{Design: "fft_a_md2", Scale: 0.01, Engine: flex.EngineFLEX, Tag: "flex"},
		{Design: "fft_a_md2", Scale: 0.01, Engine: flex.EngineMGL, Tag: "mgl"},
	}
	sum, err := svc.Submit(context.Background(), jobs, flex.SubmitOptions{})
	if err != nil {
		fmt.Println("submit:", err)
		return
	}
	for _, r := range sum.Results { // submission order, always
		fmt.Printf("%s: legal=%v movable=%d\n", r.Tag, r.Outcome.Legal, r.Outcome.Metrics.Movable)
	}
	st := svc.Stats()
	fmt.Printf("jobs=%d cache misses=%d hits=%d\n", st.Jobs, st.CacheMisses, st.CacheHits)
	// Output:
	// flex: legal=true movable=306
	// mgl: legal=true movable=306
	// jobs=2 cache misses=1 hits=1
}

// ExampleLegalizeBatchStream consumes results in completion order and
// reorders them by Index — the streaming shape CLIs use for live progress.
func ExampleLegalizeBatchStream() {
	layout, err := flex.GenerateCustom(400, 0.5, 1)
	if err != nil {
		fmt.Println("generate:", err)
		return
	}
	jobs := []flex.BatchJob{
		{Layout: layout, Engine: flex.EngineMGL, Tag: "mgl"},
		{Layout: layout, Engine: flex.EngineAnalytical, Tag: "analytical"},
	}
	var done []flex.BatchResult
	for r := range flex.LegalizeBatchStream(context.Background(), jobs, flex.BatchOptions{Workers: 2}) {
		done = append(done, r) // completion order
	}
	sort.Slice(done, func(i, j int) bool { return done[i].Index < done[j].Index })
	for _, r := range done {
		fmt.Printf("%s: legal=%v\n", r.Tag, r.Outcome.Legal)
	}
	// Output:
	// mgl: legal=true
	// analytical: legal=true
}

// Example_shardedJob splits one design into horizontal row bands that
// legalize as independent jobs and stitch back into a single whole-die
// result — the path that fits paper-scale designs through bounded workers.
func Example_shardedJob() {
	svc := flex.NewService(flex.WithWorkers(2))
	defer svc.Close()

	job := flex.BatchJob{Design: "fft_a_md2", Scale: 0.01, Engine: flex.EngineFLEX, Shards: 3}
	sum, err := svc.Submit(context.Background(), []flex.BatchJob{job}, flex.SubmitOptions{})
	if err != nil {
		fmt.Println("submit:", err)
		return
	}
	r := sum.Results[0]
	fmt.Printf("bands=%d legal=%v movable=%d\n", len(r.Shards), r.Outcome.Legal, r.Outcome.Metrics.Movable)
	for _, band := range r.Shards { // per-band results, bottom to top
		fmt.Printf("band %d: legal=%v movable=%d\n", band.Index, band.Outcome.Legal, band.Outcome.Metrics.Movable)
	}
	// Output:
	// bands=3 legal=true movable=306
	// band 0: legal=true movable=112
	// band 1: legal=true movable=108
	// band 2: legal=true movable=86
}
