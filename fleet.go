package flex

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"github.com/flex-eda/flex/internal/batch"
	"github.com/flex-eda/flex/internal/fleet"
	"github.com/flex-eda/flex/internal/gen"
	"github.com/flex-eda/flex/internal/model"
	"github.com/flex-eda/flex/internal/obs"
	"github.com/flex-eda/flex/internal/sched"
)

// WithWorkersList turns the service into a fleet coordinator: every job —
// and every band of a sharded job — is executed remotely on one of the
// named worker base URLs (flexserve -mode worker peers) instead of on a
// local engine. Admission, scheduling, caching, sharding and stitching all
// stay local, so the front-door semantics and the result bytes are
// identical to a single-process service; only where the engine phase runs
// moves. Bands route to workers by consistent hashing on their cache key,
// so a design's repeat traffic lands on workers that already hold its
// layouts. An empty list leaves the service single-process.
func WithWorkersList(addrs ...string) ServiceOption {
	return func(c *serviceConfig) { c.fleetWorkers = append(c.fleetWorkers, addrs...) }
}

// WithFleetTimeout bounds one remote job attempt end to end, connection
// through result body (default 2 minutes). On expiry the attempt counts as
// a retryable failure: the band is re-routed to another worker with the
// slow node excluded.
func WithFleetTimeout(d time.Duration) ServiceOption {
	return func(c *serviceConfig) { c.fleetTimeout = d }
}

// WithFleetInflight bounds concurrently outstanding remote jobs per worker
// (default 16) — the per-node backpressure under the coordinator's own
// scheduler ordering.
func WithFleetInflight(n int) ServiceOption {
	return func(c *serviceConfig) { c.fleetInflight = n }
}

// WithFleetRetries sets the number of additional attempts after a
// retryable remote failure, each excluding the nodes that already failed
// (default: every other worker once).
func WithFleetRetries(n int) ServiceOption {
	return func(c *serviceConfig) { c.fleetRetries = n }
}

// FleetStats is the coordinator's routing snapshot in ServiceStats: one
// row per worker plus fleet-wide totals. RemoteWall is cumulative band
// round-trip wall time — transport plus the worker's whole job — and is
// telemetry only: the modeled seconds of the results themselves travel
// inside Outcomes and never include it.
type FleetStats struct {
	// Nodes lists every configured worker in configuration order.
	Nodes []FleetNodeStats
	// Routed counts jobs completed remotely; Retried extra attempts after
	// a retryable failure; Excluded node exclusions those retries made.
	Routed, Retried, Excluded int64
	// RemoteWall is total remote round-trip wall time (RTT telemetry).
	RemoteWall time.Duration
}

// FleetNodeStats is one worker's liveness and traffic.
type FleetNodeStats struct {
	// Addr is the worker's base URL; State its health as the router last
	// saw it: "alive", "draining", or "dead".
	Addr  string
	State string
	// Routed counts jobs this node completed; Failed its failed attempts;
	// Inflight its currently outstanding jobs.
	Routed   int64
	Failed   int64
	Inflight int
}

// fleetStats mirrors the router's snapshot onto the public structs.
func fleetStats(rs fleet.RouterStats) *FleetStats {
	st := &FleetStats{
		Routed: rs.Routed, Retried: rs.Retried, Excluded: rs.Excluded,
		RemoteWall: rs.RemoteWall,
	}
	for _, n := range rs.Nodes {
		st.Nodes = append(st.Nodes, FleetNodeStats{
			Addr: n.Addr, State: n.State,
			Routed: n.Routed, Failed: n.Failed, Inflight: n.Inflight,
		})
	}
	return st
}

// engineWireName maps an Engine to its canonical wire name (the inverse of
// ParseEngine, from the same registry).
func engineWireName(e Engine) (string, error) {
	for _, r := range engineRegistry {
		if r.engine == e {
			return r.name, nil
		}
	}
	return "", fmt.Errorf("flex: unknown engine %d", int(e))
}

// routingKey is the consistent-hash key of one remote job: the layout
// cache key for design references (so a design's traffic keeps hitting
// workers that already generated it), the owner's batch identity for
// explicit layouts (which no worker caches). Band jobs append their band
// suffix via bandKeySuffix.
func (s *Service) routingKey(job BatchJob, class sched.Class) string {
	if job.Layout == nil {
		if spec, ok := gen.ByName(job.Design); ok {
			return spec.CacheKey(job.effectiveScale())
		}
	}
	return "job=" + class.Job
}

// shardRoutingKey is the routing key of one band of a sharded job: the
// decomposition's memo key plus the band index, so each band routes
// independently (spreading a job across the fleet) yet stably (the same
// band of the same job always lands on the same warm worker).
func (s *Service) shardRoutingKey(job BatchJob, class sched.Class, k, band int) string {
	base := "job=" + class.Job
	if key, ok := shardMemoKey(job, k, s.effectiveHalo(job)); ok {
		base = key
	}
	return fmt.Sprintf("%s#band=%d", base, band)
}

// remoteJob serializes one unit of work for the wire: band layouts (and
// explicit layouts) travel inline as flexpl text, design references travel
// by name so the worker can serve them from its own layout cache. The
// job's scheduling class rides along — priority and client verbatim, the
// absolute deadline converted to time-remaining so the worker re-anchors
// it on its own clock.
func (s *Service) remoteJob(job BatchJob, layout *Layout) (fleet.Job, error) {
	name, err := engineWireName(job.Engine)
	if err != nil {
		return fleet.Job{}, err
	}
	wire := fleet.Job{
		Engine:        name,
		Threads:       job.Options.Threads,
		SlidingWindow: job.Options.SlidingWindow,
		OnePE:         job.Options.OnePE,
		OffloadInsert: job.Options.OffloadInsert,
		Priority:      job.Priority,
		Client:        job.Client,
	}
	switch {
	case layout != nil:
		var buf strings.Builder
		if err := model.Encode(&buf, layout); err != nil {
			return fleet.Job{}, err
		}
		wire.Layout = buf.String()
	default:
		wire.Design = job.Design
		wire.Scale = job.effectiveScale()
	}
	if !job.Deadline.IsZero() {
		// Absolute deadlines do not survive a host hop (clock skew); the
		// wire carries time-remaining instead.
		//flexvet:walltime converting the job's absolute deadline to the wire's relative remaining time
		remaining := time.Until(job.Deadline)
		if remaining <= 0 {
			return fleet.Job{}, sched.ErrDeadlineExceeded
		}
		if wire.DeadlineMs = remaining.Milliseconds(); wire.DeadlineMs < 1 {
			// Sub-millisecond remainders truncate to 0 = "no deadline";
			// keep the deadline present (and almost immediate) instead.
			wire.DeadlineMs = 1
		}
	}
	return wire, nil
}

// remoteLegalize ships one job (layout != nil: that band or explicit
// layout; nil: the job's design reference) to the fleet and rebuilds the
// Outcome locally. Only the layout bytes, the engine's own legal verdict,
// and the modeled seconds come from the wire — metrics and violations are
// recomputed here with the same pure functions a local engine uses, so a
// remote result is byte-identical to a local one. Worker-side device
// telemetry folds into this job's device accounting.
func (s *Service) remoteLegalize(ctx context.Context, job BatchJob, layout *Layout, key string) (*Outcome, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	wire, err := s.remoteJob(job, layout)
	if err != nil {
		return nil, err
	}
	res, err := s.router.Do(ctx, key, wire)
	if err != nil {
		return nil, err
	}
	l, err := model.Decode(strings.NewReader(res.Layout))
	if err != nil {
		return nil, fmt.Errorf("flex: fleet result layout: %w", err)
	}
	batch.AddRemoteDeviceUsage(ctx,
		time.Duration(res.DeviceWaitMs*float64(time.Millisecond)),
		time.Duration(res.DeviceHoldMs*float64(time.Millisecond)),
		res.DeviceReconfigs)
	// Graft the worker-side span subtree into this job's trace, so a fleet
	// job yields one coherent tree under one ID (a free no-op without a
	// recorder on the context).
	obs.AttachRemote(ctx, res.Spans)
	out := &Outcome{
		Engine:         job.Engine,
		Layout:         l,
		Legal:          res.Legal,
		ModeledSeconds: res.ModeledSeconds,
	}
	out.Metrics = model.Measure(l)
	out.Violations = l.Check(16)
	return out, nil
}

// poolJob builds one plain (unsharded) pool closure: the local engine
// recipe, or — on a coordinator — the remote call. Design references are
// validated locally first so a coordinator rejects an unknown design with
// the same error a single-process service produces, and remote jobs skip
// the local device model entirely: the boards their engines occupy are the
// workers'.
func (s *Service) poolJob(job BatchJob, class sched.Class) batch.Job[*Outcome] {
	if s.router == nil {
		return job.job(s.generate)
	}
	key := s.routingKey(job, class)
	return func(ctx context.Context) (*Outcome, error) {
		if job.Layout == nil {
			if _, err := lookupSpec(job.Design, job.effectiveScale()); err != nil {
				return nil, err
			}
		}
		return s.remoteLegalize(ctx, job, job.Layout, key)
	}
}

// bandPoolJob builds one band's pool closure: split locally (the
// coordinator owns the plan — it must stitch), then legalize the band
// locally or ship it to the fleet. Bands served from the outcome cache
// never leave the coordinator; with an outcome cache on, the bands that do
// ship route by their content hash, so an edited job's untouched bands
// hash to the workers that legalized the same bytes before.
func (s *Service) bandPoolJob(job BatchJob, st *shardState, b int, class sched.Class, k int) batch.Job[*Outcome] {
	if s.router == nil {
		return bandJob(job, st, b)
	}
	key := s.shardRoutingKey(job, class, k, b)
	return func(ctx context.Context) (*Outcome, error) {
		p, err := st.prep()
		if err != nil {
			return nil, err
		}
		if b >= len(p.bands) {
			return nil, nil
		}
		if out, ok, err := st.cachedBand(ctx, job, b); ok || err != nil {
			return out, err
		}
		if st.eco != nil {
			if info, err := st.eco(); err == nil && b < len(info.bandIn) {
				key = "band|" + info.bandIn[b]
			}
		}
		return s.remoteLegalize(ctx, job, p.bands[b], key)
	}
}

// FleetWorker adapts a Service into a fleet worker: the HTTP job protocol
// on the outside, the service's own admission/scheduling/engine path on
// the inside. flexserve -mode worker mounts Handler next to the normal
// API, so a worker is a full flexserve that additionally takes fleet
// traffic. Wrap a plain single-process service — a worker whose service is
// itself a coordinator (WithWorkersList) would forward its jobs onward.
type FleetWorker struct {
	w *fleet.Worker
}

// NewFleetWorker wraps s in the fleet worker protocol.
func NewFleetWorker(s *Service) *FleetWorker {
	return &FleetWorker{w: fleet.NewWorker(&serviceExecutor{svc: s})}
}

// Handler returns the worker's HTTP surface (POST /w/v1/job,
// GET /w/v1/health).
func (fw *FleetWorker) Handler() http.Handler { return fw.w.Handler() }

// Drain flips the worker into draining: health and job requests both
// answer 503 so coordinators re-route, while jobs already executing
// finish. Call it when graceful shutdown begins.
func (fw *FleetWorker) Drain() { fw.w.Drain() }

// Draining reports whether Drain has been called.
func (fw *FleetWorker) Draining() bool { return fw.w.Draining() }

// SetLogger routes the worker protocol's structured logs (job receipt at
// debug, drain transitions at warn) to log. Nil restores the default
// logger. Logs go to stderr and never affect result bytes.
func (fw *FleetWorker) SetLogger(log *slog.Logger) { fw.w.SetLogger(log) }

// serviceExecutor is the fleet.Executor over a Service.
type serviceExecutor struct {
	svc *Service
}

// parse validates one wire job into a BatchJob, classifying every
// rejection as fleet.ErrInvalidJob so the worker answers 400 and the
// coordinator does not retry it elsewhere.
func (x *serviceExecutor) parse(j fleet.Job) (BatchJob, error) {
	engine, err := ParseEngine(j.Engine)
	if err != nil {
		return BatchJob{}, fmt.Errorf("%w: %v", fleet.ErrInvalidJob, err)
	}
	job := BatchJob{
		Engine: engine,
		Options: Options{
			Threads:       j.Threads,
			SlidingWindow: j.SlidingWindow,
			OnePE:         j.OnePE,
			OffloadInsert: j.OffloadInsert,
		},
		Priority: j.Priority,
		Client:   j.Client,
	}
	switch {
	case j.Layout != "" && j.Design != "":
		return BatchJob{}, fmt.Errorf("%w: job carries both a layout and a design reference", fleet.ErrInvalidJob)
	case j.Layout != "":
		l, err := model.Decode(strings.NewReader(j.Layout))
		if err != nil {
			return BatchJob{}, fmt.Errorf("%w: %v", fleet.ErrInvalidJob, err)
		}
		job.Layout = l
	case j.Design != "":
		if _, err := lookupSpec(j.Design, j.Scale); err != nil {
			return BatchJob{}, fmt.Errorf("%w: %v", fleet.ErrInvalidJob, err)
		}
		job.Design, job.Scale = j.Design, j.Scale
	default:
		return BatchJob{}, fmt.Errorf("%w: job carries neither a layout nor a design reference", fleet.ErrInvalidJob)
	}
	if j.DeadlineMs > 0 {
		// Re-anchor the coordinator's relative deadline on this host's
		// clock, so the worker's own scheduler applies EDF ordering and
		// expiry to it exactly as it would to a local client's deadline.
		//flexvet:walltime re-anchoring the wire's relative deadline on the worker's clock
		job.Deadline = time.Now().Add(time.Duration(j.DeadlineMs) * time.Millisecond)
	}
	return job, nil
}

// Execute runs one wire job through the service and serializes the
// outcome. Deadline expiry — in the worker's queue or mid-flight — maps to
// sched.ErrDeadlineExceeded so the coordinator sees a typed deadline, not
// a generic failure; admission shedding maps to the retryable fleet
// sentinels.
func (x *serviceExecutor) Execute(ctx context.Context, j fleet.Job) (*fleet.Result, error) {
	job, err := x.parse(j)
	if err != nil {
		return nil, err
	}
	sum, err := x.svc.Submit(ctx, []BatchJob{job}, SubmitOptions{})
	if err != nil {
		switch {
		case errors.Is(err, ErrOverloaded), errors.Is(err, ErrClientOverloaded):
			return nil, fmt.Errorf("%w: %v", fleet.ErrOverloaded, err)
		case errors.Is(err, ErrServiceClosed):
			return nil, fmt.Errorf("%w: %v", fleet.ErrDraining, err)
		}
		if sum == nil {
			return nil, err
		}
	}
	br := sum.Results[0]
	if br.Err != nil {
		if IsBatchSkipped(br.Err) && errors.Is(ctx.Err(), context.DeadlineExceeded) {
			// The job's re-anchored deadline expired before the pool
			// started it: a deadline, not a cancellation.
			return nil, fmt.Errorf("skipped past deadline: %w", sched.ErrDeadlineExceeded)
		}
		return nil, br.Err
	}
	var buf strings.Builder
	if err := model.Encode(&buf, br.Outcome.Layout); err != nil {
		return nil, err
	}
	return &fleet.Result{
		Layout:          buf.String(),
		Legal:           br.Outcome.Legal,
		ModeledSeconds:  br.Outcome.ModeledSeconds,
		SchedWaitMs:     float64(br.SchedWait) / float64(time.Millisecond),
		DeviceWaitMs:    float64(br.DeviceWait) / float64(time.Millisecond),
		DeviceHoldMs:    float64(br.DeviceHold) / float64(time.Millisecond),
		DeviceReconfigs: br.DeviceReconfigs,
	}, nil
}

// Load snapshots the service's occupancy for /w/v1/health.
func (x *serviceExecutor) Load() fleet.Load {
	st := x.svc.Stats()
	return fleet.Load{
		QueuedJobs:      st.QueuedJobs,
		Workers:         st.Workers,
		DeviceWait:      st.DeviceWait,
		DeviceHold:      st.DeviceHold,
		DeviceAcquires:  st.DeviceAcquires,
		DeviceReconfigs: st.Reconfigs,
	}
}
