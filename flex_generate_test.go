package flex_test

import (
	"math"
	"strings"
	"testing"

	flex "github.com/flex-eda/flex"
)

// TestGenerateValidatesScale pins the up-front input validation: degenerate
// scales fail with a descriptive error instead of generating nonsense.
func TestGenerateValidatesScale(t *testing.T) {
	for _, scale := range []float64{0, -0.5, math.NaN(), math.Inf(1), math.Inf(-1)} {
		_, err := flex.Generate("fft_a_md2", scale)
		if err == nil {
			t.Fatalf("Generate(scale=%v) succeeded, want error", scale)
		}
		if !strings.Contains(err.Error(), "scale") {
			t.Fatalf("Generate(scale=%v) error %q does not name the scale", scale, err)
		}
	}
	if _, err := flex.Generate("fft_a_md2", 0.01); err != nil {
		t.Fatalf("valid scale rejected: %v", err)
	}
}

func TestGenerateUnknownDesign(t *testing.T) {
	_, err := flex.Generate("no_such_design", 0.02)
	if err == nil || !strings.Contains(err.Error(), "no_such_design") {
		t.Fatalf("err = %v, want unknown-design error naming the design", err)
	}
}

// TestGenerateCustomValidatesInputs covers the cells/density contract.
func TestGenerateCustomValidatesInputs(t *testing.T) {
	cases := []struct {
		name    string
		cells   int
		density float64
		wantSub string
	}{
		{"zero cells", 0, 0.5, "cell count"},
		{"negative cells", -10, 0.5, "cell count"},
		{"zero density", 100, 0, "density"},
		{"negative density", 100, -0.3, "density"},
		{"density above 1", 100, 1.5, "density"},
		{"NaN density", 100, math.NaN(), "density"},
	}
	for _, c := range cases {
		_, err := flex.GenerateCustom(c.cells, c.density, 1)
		if err == nil {
			t.Fatalf("%s: GenerateCustom(%d, %v) succeeded, want error", c.name, c.cells, c.density)
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
	if _, err := flex.GenerateCustom(200, 0.5, 1); err != nil {
		t.Fatalf("valid inputs rejected: %v", err)
	}
}

func TestParseEngine(t *testing.T) {
	want := map[string]flex.Engine{
		"flex":       flex.EngineFLEX,
		"mgl":        flex.EngineMGL,
		"mgl-mt":     flex.EngineMGLMT,
		"gpu":        flex.EngineGPU,
		"analytical": flex.EngineAnalytical,
	}
	names := flex.EngineNames()
	if len(names) != len(want) || names[0] != "flex" {
		t.Fatalf("EngineNames() = %v", names)
	}
	for _, n := range names {
		e, err := flex.ParseEngine(n)
		if err != nil || e != want[n] {
			t.Fatalf("ParseEngine(%q) = %v, %v", n, e, err)
		}
	}
	if _, err := flex.ParseEngine("bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("ParseEngine(bogus) err = %v", err)
	}
}
