package flex

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flex-eda/flex/internal/batch"
	"github.com/flex-eda/flex/internal/gen"
	"github.com/flex-eda/flex/internal/model"
	"github.com/flex-eda/flex/internal/obs"
	"github.com/flex-eda/flex/internal/sched"
	"github.com/flex-eda/flex/internal/shard"
)

// DefaultShardHalo is the seam-crossing reassignment window, in rows, a
// sharded job plans with when neither the job nor the service overrides it
// (see BatchJob.ShardHalo).
const DefaultShardHalo = 2

// maxAutoShards caps size-triggered sharding (WithAutoShardBytes): each
// band occupies one admission slot, so an unbounded ceil(bytes/threshold)
// would let one oversized job amplify itself past the queue depth.
// Explicit BatchJob.Shards / WithShards requests are not capped — the
// caller asked for exactly that expansion.
const maxAutoShards = 64

// shardPrep is the lazily computed decomposition one sharded job's band
// jobs share: whichever band job the pool runs first resolves the layout
// (through the service's cache for design references) and splits it; its
// siblings reuse the memoized result.
type shardPrep struct {
	layout *Layout // the job's effective input (base with edits applied)
	base   *Layout // the pre-edit base; == layout for jobs without edits
	plan   *shard.Plan
	bands  []*Layout
}

// jobOrigin maps one pool job back to the submitted job it came from.
type jobOrigin struct {
	owner int // submitted job index
	band  int // band index within the owner (0 for plain jobs)
}

// shardState is one sharded job's shared decomposition: the memoized prep
// plus the effective band count, published once the split exists so the
// collector can tell a real band from a padding slot (a band index beyond
// what the plan could hold).
type shardState struct {
	prep      func() (*shardPrep, error)
	effective atomic.Int32 // len(plan.Bands) once split; 0 = not yet known

	// eco is the memoized outcome-cache reuse decision (nil when the
	// service has no outcome cache): which bands may serve cached outcomes
	// instead of legalizing, and whether fold should store a fresh entry.
	eco func() (*ecoInfo, error)
}

// expansion is one submission's flattened job set. Plain jobs pass through
// one-to-one; a job with effective shard count K contributes K pool jobs —
// one per planned band, padding slots returning (nil, nil) when the plan
// clamps K to what the die holds — plus the bookkeeping that folds band
// results back into one BatchResult per submitted job. Admission control
// counts the expanded jobs: a K-sharded job occupies K queue slots.
type expansion struct {
	svc     *Service
	jobs    []BatchJob
	shards  []int                 // per job: 0 = plain path, >= 1 = shard path with K bands
	pool    []batch.Job[*Outcome] // the flattened pool jobs
	classes []sched.Class         // per pool job; bands share the owner's class
	origin  []jobOrigin           // pool index -> submitted job
	states  []*shardState         // per job; nil for plain jobs
	recs    []*obs.Recorder       // per job; non-nil only when the service traces
}

// classFor stamps one submitted job's scheduling class: priority, deadline
// and client straight from the job, the fair-share weight from the
// service's per-client table, and a board-configuration identity unique to
// (submission, job) so the reconfiguration model sees a job's bands as one
// bitstream and distinct jobs as distinct ones.
func (s *Service) classFor(job BatchJob, seq int64, j int) sched.Class {
	return sched.Class{
		Priority: job.Priority,
		Deadline: job.Deadline,
		Client:   job.Client,
		Weight:   s.clientWeights[job.Client],
		Job:      fmt.Sprintf("%d.%d", seq, j),
	}
}

// expand flattens one submission, deciding each job's effective shard count
// (job knob, then service default, then the auto-shard byte threshold) and
// stamping every pool job's scheduling class.
func (s *Service) expand(jobs []BatchJob) *expansion {
	seq := s.batchSeq.Add(1)
	e := &expansion{
		svc:    s,
		jobs:   jobs,
		shards: make([]int, len(jobs)),
		states: make([]*shardState, len(jobs)),
		recs:   make([]*obs.Recorder, len(jobs)),
	}
	if s.tracing {
		for j := range jobs {
			e.recs[j] = obs.NewRecorder(traceName(jobs[j]))
		}
	}
	for j := range jobs {
		job := jobs[j]
		class := s.classFor(job, seq, j)
		k := s.effectiveShards(job)
		e.shards[j] = k
		if k == 0 {
			pj := s.poolJob(job, class)
			if s.outcomes != nil || job.isEco() {
				pj = s.plainPoolJob(job, class)
			}
			e.pool = append(e.pool, e.traceJob(j, 0, 0, pj))
			e.classes = append(e.classes, class)
			e.origin = append(e.origin, jobOrigin{owner: j})
			continue
		}
		st := &shardState{}
		st.prep = sync.OnceValues(func() (*shardPrep, error) {
			p, err := s.prepareShards(job, k)
			if err == nil {
				st.effective.Store(int32(len(p.plan.Bands)))
			}
			return p, err
		})
		if s.outcomes != nil {
			st.eco = sync.OnceValues(func() (*ecoInfo, error) {
				p, err := st.prep()
				if err != nil {
					return nil, err
				}
				return s.ecoPrep(job, p)
			})
		}
		e.states[j] = st
		for b := 0; b < k; b++ {
			e.pool = append(e.pool, e.traceJob(j, b, k, s.bandPoolJob(job, st, b, class, k)))
			e.classes = append(e.classes, class)
			e.origin = append(e.origin, jobOrigin{owner: j, band: b})
		}
	}
	return e
}

// traceName labels a job's trace: the caller's tag, else the design
// reference, else a generic label for explicit layouts.
func traceName(job BatchJob) string {
	switch {
	case job.Tag != "":
		return job.Tag
	case job.Design != "":
		return job.Design
	}
	return "job"
}

// traceDetail annotates a job's legalize span with what ran.
func traceDetail(job BatchJob) string {
	if job.Design != "" {
		return fmt.Sprintf("%s@%g %s", job.Design, job.effectiveScale(), job.Engine)
	}
	return job.Engine.String()
}

// traceJob wraps one pool closure with its trace spans: install the job's
// recorder (a tracing front door allocates one per job; a fleet worker's
// jobs arrive with a linked recorder already on the context), mark
// admission, record the scheduler queue wait, and nest the engine phase
// under a "legalize" (or per-band) span. Without a recorder from either
// source the closure runs untouched — observability off is a free no-op.
// Spans carry wall-clock telemetry only and never change what the wrapped
// job computes.
func (e *expansion) traceJob(j, band, k int, pj batch.Job[*Outcome]) batch.Job[*Outcome] {
	return func(ctx context.Context) (*Outcome, error) {
		if rec := e.recs[j]; rec != nil {
			ctx = obs.WithRecorder(ctx, rec)
		}
		rec := obs.RecorderFrom(ctx)
		if rec == nil {
			return pj(ctx)
		}
		if queued, start, ok := batch.SchedInfo(ctx); ok {
			pushed := start.Add(-queued)
			rec.MarkAdmitted(pushed)
			obs.Record(ctx, "sched-wait", "", pushed, start)
		}
		name := "legalize"
		if k > 0 {
			name = fmt.Sprintf("band %d/%d", band+1, k)
		}
		sctx, end := obs.StartSpan(ctx, name, traceDetail(e.jobs[j]))
		defer end()
		return pj(sctx)
	}
}

// padding reports whether a band slot of job j is beyond the job's
// effective band count — a padding slot the clamped plan never filled.
// Before the split exists no slot is considered padding.
func (e *expansion) padding(j, band int) bool {
	st := e.states[j]
	if st == nil {
		return false
	}
	eff := int(st.effective.Load())
	return eff > 0 && band >= eff
}

// effectiveShards resolves a job's shard count: the job's own knob, else
// the service's WithShards default, else — when WithAutoShardBytes is set —
// enough bands to bring each one's estimated footprint under the
// threshold. Negative means explicitly unsharded.
func (s *Service) effectiveShards(j BatchJob) int {
	k := j.Shards
	if k == 0 {
		k = s.shards
	}
	if k == 0 && s.autoShardBytes > 0 {
		if bytes := jobApproxBytes(j); bytes > s.autoShardBytes {
			k = int((bytes + s.autoShardBytes - 1) / s.autoShardBytes)
			if k > maxAutoShards {
				k = maxAutoShards
			}
		}
	}
	if k < 0 {
		k = 0
	}
	return k
}

// jobApproxBytes estimates the job's layout footprint without generating
// it: explicit layouts report their resident size, design references are
// sized from the spec's scaled cell count. Unknown designs report 0 — the
// job then takes the plain path and fails with the usual lookup error.
func jobApproxBytes(j BatchJob) int64 {
	if j.Layout != nil {
		return j.Layout.ApproxBytes()
	}
	spec, ok := gen.ByName(j.Design)
	if !ok {
		return 0
	}
	return spec.ApproxBytes(j.effectiveScale())
}

// prepareShards resolves a sharded job's layout and splits it into its
// band layouts. For design-reference jobs on a caching service the whole
// decomposition is memoized by (design, scale, seed, bands, halo), so a
// warm sharded job skips the re-split (and the layout resolution under it):
// splitting is pure, band layouts are shared safely because engines
// legalize clones, and Stitch builds a fresh layout without mutating its
// inputs.
func (s *Service) prepareShards(job BatchJob, k int) (*shardPrep, error) {
	halo := s.effectiveHalo(job)
	if s.layouts != nil && job.Layout == nil {
		if key, ok := shardMemoKey(job, k, halo); ok {
			v, err := s.layouts.Do(key, func() (any, int64, error) {
				p, err := s.splitShards(job, k, halo)
				if err != nil {
					return nil, 0, err
				}
				// The prep's resident cost is its band layouts; the whole-die
				// layout is accounted by its own cache entry.
				var size int64
				for _, b := range p.bands {
					size += b.ApproxBytes()
				}
				return p, size, nil
			})
			if err != nil {
				return nil, err
			}
			return v.(*shardPrep), nil
		}
	}
	return s.splitShards(job, k, halo)
}

// effectiveHalo resolves a job's seam-reassignment window: the job's own
// knob, else the service default; negative disables the halo.
func (s *Service) effectiveHalo(job BatchJob) int {
	halo := job.ShardHalo
	if halo == 0 {
		halo = s.shardHalo
	}
	if halo < 0 {
		halo = 0
	}
	return halo
}

// shardMemoKey is the cache key of one sharded job's decomposition —
// (design, scale, seed) via the spec's layout key, plus the band count and
// halo that shape the split. It doubles as the base of the fleet routing
// key, so the worker a band hashes to is the worker that saw the same
// decomposition before. Explicit-layout jobs and eco jobs (whose input is
// the base perturbed by this request's edits, not the named design) have no
// stable identity to key on (ok = false); eco band routing hashes the band
// content instead (see bandPoolJob).
func shardMemoKey(job BatchJob, k, halo int) (string, bool) {
	if job.Layout != nil || job.isEco() {
		return "", false
	}
	spec, ok := gen.ByName(job.Design)
	if !ok {
		return "", false
	}
	return fmt.Sprintf("%s|bands=%d|halo=%d", spec.CacheKey(job.effectiveScale()), k, halo), true
}

// splitShards is the uncached decomposition: resolve the base, apply any
// edits, plan the bands, split.
func (s *Service) splitShards(job BatchJob, k, halo int) (*shardPrep, error) {
	l, base, err := s.resolveInput(job)
	if err != nil {
		return nil, err
	}
	plan, err := shard.PlanBands(l, k, halo)
	if err != nil {
		return nil, fmt.Errorf("flex: shard plan: %w", err)
	}
	bands, err := shard.Split(l, plan)
	if err != nil {
		return nil, fmt.Errorf("flex: shard split: %w", err)
	}
	return &shardPrep{layout: l, base: base, plan: plan, bands: bands}, nil
}

// bandJob builds the pool closure for one band of a sharded job: wait for
// the shared split, then run the job's engine phase (legalizeOnDevice, the
// same recipe as a plain job) on this band. Bands beyond the clamped plan
// return (nil, nil) and are dropped at fold time.
func bandJob(job BatchJob, st *shardState, b int) batch.Job[*Outcome] {
	return func(ctx context.Context) (*Outcome, error) {
		p, err := st.prep()
		if err != nil {
			return nil, err
		}
		if b >= len(p.bands) {
			return nil, nil
		}
		if out, ok, err := st.cachedBand(ctx, job, b); ok || err != nil {
			return out, err
		}
		return job.legalizeOnDevice(ctx, p.bands[b])
	}
}

// shardCollector folds the pool's completion-order results back into
// submission-level BatchResults: plain jobs pass through as they land,
// sharded jobs emit once their last band lands. It is driven from a single
// goroutine (the batch's collecting loop), so it needs no locking.
type shardCollector struct {
	e       *expansion
	pending [][]batch.Result[*Outcome] // per sharded job, one slot per band
	got     []int
	results []BatchResult // per submitted job, valid once emitted
	sharded int           // jobs that took the shard path
	onShard func(job int, r BatchResult)
	emit    func(BatchResult)
}

func newShardCollector(e *expansion, onShard func(int, BatchResult), emit func(BatchResult)) *shardCollector {
	c := &shardCollector{
		e:       e,
		pending: make([][]batch.Result[*Outcome], len(e.jobs)),
		got:     make([]int, len(e.jobs)),
		results: make([]BatchResult, len(e.jobs)),
		onShard: onShard,
		emit:    emit,
	}
	for j, k := range e.shards {
		if k > 0 {
			c.pending[j] = make([]batch.Result[*Outcome], k)
			c.sharded++
		}
	}
	return c
}

// observe consumes one pool result, emitting the owning job's BatchResult
// when it becomes complete.
func (c *shardCollector) observe(r batch.Result[*Outcome]) {
	o := c.e.origin[r.Index]
	j := o.owner
	k := c.e.shards[j]
	if k == 0 {
		br := c.e.jobs[j].toResult(r)
		br.Index = j
		c.sealTrace(j, &br)
		c.results[j] = br
		c.emit(br)
		return
	}
	c.pending[j][o.band] = r
	c.got[j]++
	// Padding slots (beyond the clamped plan) never surface: neither their
	// successful (nil, nil) returns nor skips from a canceled batch are
	// real bands.
	if c.onShard != nil && !c.e.padding(j, o.band) && !(r.Value == nil && r.Err == nil) {
		sr := c.e.jobs[j].toResult(r)
		sr.Index = o.band
		c.onShard(j, sr)
	}
	if c.got[j] == k {
		br := c.fold(j)
		c.sealTrace(j, &br)
		c.results[j] = br
		c.emit(br)
	}
}

// sealTrace stamps the finished job's trace identity onto its result and
// hands the recorder to the service's tracer. The span tree is snapshotted
// here — after the job's last band folded — so the result carries the
// complete tree, remote subtrees included. A no-op when the service does
// not trace: the result's bytes are identical either way.
func (c *shardCollector) sealTrace(j int, br *BatchResult) {
	rec := c.e.recs[j]
	if rec == nil {
		return
	}
	br.TraceID = rec.ID()
	br.Spans = rec.Spans()
	if c.e.svc.tracer != nil {
		c.e.svc.tracer.Add(rec)
	}
}

// fold merges one sharded job's band results: stitch the band layouts back
// into the original die, re-measure quality against the original global
// placement, take the slowest band's modeled seconds (the bands ran in
// parallel), and sum the device statistics.
func (c *shardCollector) fold(j int) BatchResult {
	job := c.e.jobs[j]
	rs := c.pending[j]
	br := BatchResult{Index: j, Tag: job.Tag}
	var firstErr, firstSkip error
	for b, r := range rs {
		// Padding slots beyond the clamped plan carry no band: skip them
		// whether they completed with (nil, nil) or were canceled before
		// starting — a skipped padding slot must not mark finished real
		// bands as a skipped job.
		if c.e.padding(j, b) || (r.Value == nil && r.Err == nil) {
			continue
		}
		sr := job.toResult(r)
		sr.Index = b
		br.Shards = append(br.Shards, sr)
		br.DeviceWait += r.DeviceWait
		br.DeviceHold += r.DeviceHold
		if r.Wall > br.Wall {
			br.Wall = r.Wall
		}
		switch {
		case IsBatchSkipped(r.Err):
			if firstSkip == nil {
				firstSkip = r.Err
			}
		case r.Err != nil:
			if firstErr == nil {
				firstErr = r.Err
			}
		}
	}
	if firstErr != nil {
		br.Err = firstErr
		return br
	}
	if firstSkip != nil {
		br.Err = firstSkip
		return br
	}
	// Every band succeeded, so the shared prep is memoized — this cannot
	// generate or split anew.
	p, err := c.e.states[j].prep()
	if err != nil {
		br.Err = err
		return br
	}
	bandLayouts := make([]*model.Layout, len(p.plan.Bands))
	bandOuts := make([]*Outcome, len(p.plan.Bands))
	legal := true
	modeled := 0.0
	for b := range p.plan.Bands {
		o := rs[b].Value
		bandLayouts[b] = o.Layout
		bandOuts[b] = o
		if !o.Legal {
			legal = false
		}
		if o.ModeledSeconds > modeled {
			modeled = o.ModeledSeconds
		}
	}
	var stitchStart time.Time
	if c.e.recs[j] != nil {
		//flexvet:walltime stitch span timing is trace telemetry only
		stitchStart = time.Now()
	}
	stitched, err := shard.Stitch(p.layout, p.plan, bandLayouts)
	if rec := c.e.recs[j]; rec != nil {
		//flexvet:walltime stitch span timing is trace telemetry only
		rec.Record("stitch", fmt.Sprintf("%d bands", len(bandLayouts)), stitchStart, time.Now())
	}
	if err != nil {
		br.Err = fmt.Errorf("flex: shard stitch: %w", err)
		return br
	}
	out := &Outcome{Engine: job.Engine, Layout: stitched}
	out.Metrics = model.Measure(stitched)
	out.Violations = stitched.Check(16)
	out.Legal = legal && len(out.Violations) == 0
	out.ModeledSeconds = modeled
	// Publish the finished run into the outcome cache so a repeat serves
	// from cache and a future edit against this layout splices its clean
	// bands (the eco decision memoized any errors away at band time).
	if st := c.e.states[j]; st.eco != nil {
		if info, ecoErr := st.eco(); ecoErr == nil {
			out.InputHash = info.hash
			if info.store {
				c.e.svc.storeOutcome(job, info, p, bandOuts, out)
			}
		}
	}
	br.Outcome = out
	return br
}
