package flex_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/flex-eda/flex"
	"github.com/flex-eda/flex/internal/fleet"
)

// workerProxy fronts one fleet worker for tests: it counts job requests,
// records the wire jobs it forwards, and can abort exactly one request
// mid-flight (the connection dies with no response — a worker killed
// mid-band, as the coordinator sees it).
type workerProxy struct {
	handler  http.Handler
	jobs     atomic.Int64
	killNext atomic.Bool

	mu       sync.Mutex
	recorded []fleet.Job
}

func (p *workerProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/w/v1/job" {
		if p.killNext.CompareAndSwap(true, false) {
			panic(http.ErrAbortHandler)
		}
		p.jobs.Add(1)
		body, err := io.ReadAll(r.Body)
		if err == nil {
			var j fleet.Job
			if json.Unmarshal(body, &j) == nil {
				p.mu.Lock()
				p.recorded = append(p.recorded, j)
				p.mu.Unlock()
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
	}
	p.handler.ServeHTTP(w, r)
}

// startWorker boots one real fleet worker — a full Service behind the
// wire protocol — wrapped in a recording proxy.
func startWorker(t *testing.T) (*httptest.Server, *workerProxy, *flex.Service) {
	t.Helper()
	svc := flex.NewService(flex.WithWorkers(2), flex.WithCacheBytes(64<<20))
	t.Cleanup(func() { svc.Close() })
	p := &workerProxy{handler: flex.NewFleetWorker(svc).Handler()}
	srv := httptest.NewServer(p)
	t.Cleanup(srv.Close)
	return srv, p, svc
}

// requireSameOutcome asserts two results carry byte-identical outcomes:
// layout bytes, legality, metrics, violations, modeled seconds. Telemetry
// (wall, waits) is allowed to differ — that is the contract.
func requireSameOutcome(t *testing.T, label string, local, remote flex.BatchResult) {
	t.Helper()
	if local.Err != nil || remote.Err != nil {
		t.Fatalf("%s: errs local=%v remote=%v", label, local.Err, remote.Err)
	}
	lo, ro := local.Outcome, remote.Outcome
	if lb, rb := encodeLayout(t, lo.Layout), encodeLayout(t, ro.Layout); !bytes.Equal(lb, rb) {
		t.Fatalf("%s: layouts differ (%d vs %d bytes)", label, len(lb), len(rb))
	}
	if lo.Legal != ro.Legal || lo.ModeledSeconds != ro.ModeledSeconds || lo.Engine != ro.Engine {
		t.Fatalf("%s: legal/modeled/engine differ: %v/%v/%v vs %v/%v/%v",
			label, lo.Legal, lo.ModeledSeconds, lo.Engine, ro.Legal, ro.ModeledSeconds, ro.Engine)
	}
	if lo.Metrics != ro.Metrics {
		t.Fatalf("%s: metrics differ: %+v vs %+v", label, lo.Metrics, ro.Metrics)
	}
	if !reflect.DeepEqual(lo.Violations, ro.Violations) {
		t.Fatalf("%s: violations differ: %v vs %v", label, lo.Violations, ro.Violations)
	}
}

// TestFleetByteIdentity runs one mixed batch — a sharded FLEX job, a plain
// design reference, and an explicit layout — through a coordinator with
// two workers and through a single-process service, and requires
// byte-identical outcomes. It also checks the scheduling class propagated
// onto the wire.
func TestFleetByteIdentity(t *testing.T) {
	srvA, proxyA, _ := startWorker(t)
	srvB, proxyB, _ := startWorker(t)

	coord := flex.NewService(
		flex.WithWorkers(4), flex.WithCacheBytes(64<<20),
		flex.WithWorkersList(srvA.URL, srvB.URL))
	defer coord.Close()
	single := flex.NewService(flex.WithWorkers(4), flex.WithCacheBytes(64<<20))
	defer single.Close()

	explicit, err := flex.Generate("pci_b_a_md1", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []flex.BatchJob{
		{Design: "fft_a_md2", Scale: 0.02, Engine: flex.EngineFLEX, Shards: 3, Priority: 5, Client: "tenant-x"},
		{Design: "fft_a_md2", Scale: 0.01, Engine: flex.EngineMGL, Client: "tenant-y"},
		{Layout: explicit, Engine: flex.EngineFLEX, Tag: "explicit"},
	}

	remote, err := coord.Submit(context.Background(), jobs, flex.SubmitOptions{})
	if err != nil {
		t.Fatalf("coordinator submit: %v", err)
	}
	local, err := single.Submit(context.Background(), jobs, flex.SubmitOptions{})
	if err != nil {
		t.Fatalf("single submit: %v", err)
	}
	for i := range jobs {
		requireSameOutcome(t, fmt.Sprintf("job %d", i), local.Results[i], remote.Results[i])
	}
	if got := len(remote.Results[0].Shards); got != 3 {
		t.Fatalf("sharded job bands = %d, want 3", got)
	}
	if remote.ModeledSeconds != local.ModeledSeconds {
		t.Fatalf("summary modeled seconds differ: %v vs %v", remote.ModeledSeconds, local.ModeledSeconds)
	}

	// Every job ran remotely: 3 bands + 2 plain jobs across the two nodes.
	if total := proxyA.jobs.Load() + proxyB.jobs.Load(); total != 5 {
		t.Fatalf("workers served %d jobs, want 5", total)
	}
	st := coord.Stats()
	if st.Fleet == nil || st.Fleet.Routed != 5 || len(st.Fleet.Nodes) != 2 {
		t.Fatalf("fleet stats = %+v", st.Fleet)
	}
	if st.Fleet.RemoteWall <= 0 {
		t.Error("fleet RemoteWall not accumulated")
	}

	// The scheduling class rode the wire end to end.
	var sawShard, sawPlain bool
	for _, p := range []*workerProxy{proxyA, proxyB} {
		p.mu.Lock()
		for _, j := range p.recorded {
			if j.Layout != "" && j.Priority == 5 && j.Client == "tenant-x" && j.Engine == "flex" {
				sawShard = true
			}
			if j.Design == "fft_a_md2" && j.Client == "tenant-y" && j.Engine == "mgl" {
				sawPlain = true
			}
		}
		p.mu.Unlock()
	}
	if !sawShard || !sawPlain {
		t.Fatalf("scheduling class not propagated: sawShard=%v sawPlain=%v", sawShard, sawPlain)
	}

	// A coordinator rejects an unknown design with the single-process
	// error, locally, before any routing.
	bad := []flex.BatchJob{{Design: "nope", Scale: 0.01}}
	rsum, _ := coord.Submit(context.Background(), bad, flex.SubmitOptions{})
	lsum, _ := single.Submit(context.Background(), bad, flex.SubmitOptions{})
	if rsum.Results[0].Err == nil || lsum.Results[0].Err == nil ||
		rsum.Results[0].Err.Error() != lsum.Results[0].Err.Error() {
		t.Fatalf("unknown-design errors differ: %v vs %v", rsum.Results[0].Err, lsum.Results[0].Err)
	}
}

// TestFleetWorkerKilledMidBand kills a worker mid-band — the connection
// aborts with no response — and requires the coordinator to retry the band
// on the surviving worker with the dead node excluded, stitching a layout
// byte-identical to the single-node run.
func TestFleetWorkerKilledMidBand(t *testing.T) {
	srvA, proxyA, _ := startWorker(t)
	srvB, proxyB, _ := startWorker(t)

	coord := flex.NewService(
		flex.WithWorkers(4), flex.WithCacheBytes(64<<20),
		flex.WithWorkersList(srvA.URL, srvB.URL))
	defer coord.Close()

	// httptest ports vary, so ring ownership varies per run: probe for a
	// sharded job with at least one band on each worker, varying the scale
	// (every band key moves with it) until both nodes serve.
	var job flex.BatchJob
	for i := 0; i < 12; i++ {
		cand := flex.BatchJob{
			Design: "fft_a_md2", Scale: 0.010 + 0.002*float64(i),
			Engine: flex.EngineFLEX, Shards: 4,
		}
		beforeA, beforeB := proxyA.jobs.Load(), proxyB.jobs.Load()
		sum, err := coord.Submit(context.Background(), []flex.BatchJob{cand}, flex.SubmitOptions{})
		if err != nil || sum.Results[0].Err != nil {
			t.Fatalf("probe submit: %v / %v", err, sum.Results[0].Err)
		}
		if proxyA.jobs.Load() > beforeA && proxyB.jobs.Load() > beforeB {
			job = cand
			break
		}
	}
	if job.Design == "" {
		t.Fatal("no probe scale spread bands across both workers")
	}

	// Arm worker A to die on its next band, then resubmit the same job:
	// its bands route identically, one dies mid-flight, and the retry must
	// land on B and stitch the same bytes.
	proxyA.killNext.Store(true)
	remote, err := coord.Submit(context.Background(), []flex.BatchJob{job}, flex.SubmitOptions{})
	if err != nil {
		t.Fatalf("submit with killed worker: %v", err)
	}

	single := flex.NewService(flex.WithWorkers(4), flex.WithCacheBytes(64<<20))
	defer single.Close()
	local, err := single.Submit(context.Background(), []flex.BatchJob{job}, flex.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	requireSameOutcome(t, "killed-worker run", local.Results[0], remote.Results[0])
	if !remote.Results[0].Outcome.Legal {
		t.Fatal("stitched result not legal")
	}

	st := coord.Stats()
	if st.Fleet.Retried < 1 || st.Fleet.Excluded < 1 {
		t.Fatalf("retry-with-exclusion not exercised: %+v", st.Fleet)
	}
	var failedA int64
	for _, n := range st.Fleet.Nodes {
		if n.Addr == srvA.URL {
			failedA = n.Failed
		}
	}
	if failedA < 1 {
		t.Fatalf("killed node records no failure: %+v", st.Fleet.Nodes)
	}
}

// blockingExec is a fleet Executor that holds every job until its context
// deadline — the shape of a band stuck behind a worker's backlog.
type blockingExec struct{ got chan fleet.Job }

func (b *blockingExec) Execute(ctx context.Context, job fleet.Job) (*fleet.Result, error) {
	select {
	case b.got <- job:
	default:
	}
	<-ctx.Done()
	return nil, ctx.Err()
}
func (b *blockingExec) Load() fleet.Load { return fleet.Load{Workers: 1} }

// TestFleetDeadlineMidFlightTyped is the satellite regression: a deadline
// expiring mid-flight on a worker must surface as flex.ErrDeadlineExceeded
// at the coordinator — a typed scheduling failure, not a transport error —
// and must not be retried onto other workers.
func TestFleetDeadlineMidFlightTyped(t *testing.T) {
	exec := &blockingExec{got: make(chan fleet.Job, 1)}
	srv := httptest.NewServer(fleet.NewWorker(exec).Handler())
	defer srv.Close()

	coord := flex.NewService(flex.WithWorkers(2), flex.WithWorkersList(srv.URL))
	defer coord.Close()

	job := flex.BatchJob{
		Design: "fft_a_md2", Scale: 0.01, Engine: flex.EngineFLEX,
		Priority: 7, Client: "acme",
		Deadline: time.Now().Add(150 * time.Millisecond), //flexvet:walltime test fixture deadline
	}
	sum, err := coord.Submit(context.Background(), []flex.BatchJob{job}, flex.SubmitOptions{})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	got := sum.Results[0].Err
	if !errors.Is(got, flex.ErrDeadlineExceeded) {
		t.Fatalf("mid-flight deadline err = %v, want flex.ErrDeadlineExceeded", got)
	}

	// The scheduling class crossed the wire before the job stalled.
	select {
	case wire := <-exec.got:
		if wire.Priority != 7 || wire.Client != "acme" || wire.Engine != "flex" {
			t.Fatalf("wire class = %+v", wire)
		}
		if wire.DeadlineMs <= 0 || wire.DeadlineMs > 150 {
			t.Fatalf("wire DeadlineMs = %d, want (0, 150]", wire.DeadlineMs)
		}
	default:
		t.Fatal("worker never received the job")
	}
}

// TestFleetDrainingWorkerExcluded routes around a worker whose service has
// begun draining: the 503 is retryable and the surviving node serves.
func TestFleetDrainingWorkerExcluded(t *testing.T) {
	svcA := flex.NewService(flex.WithWorkers(1))
	defer svcA.Close()
	fwA := flex.NewFleetWorker(svcA)
	srvA := httptest.NewServer(fwA.Handler())
	defer srvA.Close()
	srvB, proxyB, _ := startWorker(t)

	coord := flex.NewService(flex.WithWorkers(2),
		flex.WithWorkersList(srvA.URL, srvB.URL))
	defer coord.Close()

	fwA.Drain()
	if !fwA.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	sum, err := coord.Submit(context.Background(),
		[]flex.BatchJob{{Design: "fft_a_md2", Scale: 0.01, Engine: flex.EngineMGL}},
		flex.SubmitOptions{})
	if err != nil || sum.Results[0].Err != nil {
		t.Fatalf("submit with draining worker: %v / %v", err, sum.Results[0].Err)
	}
	if proxyB.jobs.Load() != 1 {
		t.Fatalf("survivor served %d jobs, want 1", proxyB.jobs.Load())
	}
}
