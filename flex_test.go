package flex_test

import (
	"bytes"
	"testing"

	flex "github.com/flex-eda/flex"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	l, err := flex.Generate("fft_a_md2", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []flex.Engine{
		flex.EngineFLEX, flex.EngineMGL, flex.EngineMGLMT,
		flex.EngineGPU, flex.EngineAnalytical,
	} {
		out, err := flex.Legalize(l, engine)
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if !out.Legal {
			t.Fatalf("%v: illegal result: %v", engine, out.Violations)
		}
		if out.ModeledSeconds <= 0 {
			t.Fatalf("%v: no modeled time", engine)
		}
		if out.Metrics.AveDis <= 0 {
			t.Fatalf("%v: no displacement measured", engine)
		}
	}
}

func TestPublicAPIUnknowns(t *testing.T) {
	if _, err := flex.Generate("nope", 1); err == nil {
		t.Fatal("unknown design accepted")
	}
	l, _ := flex.GenerateCustom(100, 0.5, 1)
	if _, err := flex.Legalize(l, flex.Engine(99)); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if _, err := flex.Legalize(nil, flex.EngineFLEX); err == nil {
		t.Fatal("nil layout accepted")
	}
}

func TestPublicAPIRoundTrip(t *testing.T) {
	l, err := flex.GenerateCustom(150, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := flex.WriteLayout(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := flex.ReadLayout(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != len(l.Cells) {
		t.Fatalf("round trip lost cells: %d vs %d", len(got.Cells), len(l.Cells))
	}
	m := flex.Measure(got)
	if m.Movable == 0 {
		t.Fatal("no movable cells after round trip")
	}
}

func TestDesignsList(t *testing.T) {
	names := flex.Designs()
	if len(names) != 18 {
		t.Fatalf("Designs() = %d names, want 18 (16 + 2 superblue)", len(names))
	}
}

func TestFPGAResourcesFit(t *testing.T) {
	used, avail := flex.FPGAResources(2)
	if !used.FitsIn(avail) {
		t.Fatalf("2-PE config does not fit: %v vs %v", used, avail)
	}
}

func TestEngineOptions(t *testing.T) {
	l, err := flex.GenerateCustom(200, 0.6, 11)
	if err != nil {
		t.Fatal(err)
	}
	two, err := flex.Legalize(l, flex.EngineFLEX)
	if err != nil {
		t.Fatal(err)
	}
	one, err := flex.LegalizeWith(l, flex.EngineFLEX, flex.Options{OnePE: true})
	if err != nil {
		t.Fatal(err)
	}
	if one.ModeledSeconds < two.ModeledSeconds {
		t.Fatalf("1 PE (%v s) faster than 2 PEs (%v s)", one.ModeledSeconds, two.ModeledSeconds)
	}
	offload, err := flex.LegalizeWith(l, flex.EngineFLEX, flex.Options{OffloadInsert: true})
	if err != nil {
		t.Fatal(err)
	}
	if offload.ModeledSeconds <= two.ModeledSeconds {
		t.Fatal("offloading insert&update should cost time (Fig. 10)")
	}
	if s := two.Engine.String(); s != "FLEX" {
		t.Fatalf("engine name %q", s)
	}
}
