// pipeline dissects the FPGA accelerator model on a single design: it
// collects the per-region operation traces of a real legalization run and
// prices them under every pipeline/SACS configuration, printing the
// optimization ladder of the paper's Figs. 8 and 9 plus the Table-2
// resource picture.
//
// This example deliberately reaches below the public facade into the
// internal packages to show how the cycle models consume traces.
package main

import (
	"fmt"
	"log"

	"github.com/flex-eda/flex/internal/fpga"
	"github.com/flex-eda/flex/internal/gen"
	"github.com/flex-eda/flex/internal/mgl"
)

func main() {
	spec := gen.Small(1500, 0.7, 99)
	layout, err := spec.Generate(1.0)
	if err != nil {
		log.Fatal(err)
	}

	// Trace a real FLEX-style run: streamed FOP, sliding-window ordering.
	var traces []fpga.Trace
	res := mgl.Legalize(layout, mgl.Config{
		Streamed:      true,
		SlidingWindow: 8,
		TraceFn: func(tt mgl.TargetTrace) {
			traces = append(traces, fpga.TraceFromFOP(tt.FOP, int(tt.CommitMoved)))
		},
	})
	if !res.Legal {
		log.Fatalf("run illegal: %v", res.Violations)
	}
	fmt.Printf("traced %d regions, %d insertion points total\n\n",
		len(traces), res.Stats.FOP.InsertionPoints)

	sum := func(cfg fpga.PEConfig) float64 {
		var total float64
		for _, tr := range traces {
			total += cfg.RegionCycles(tr)
		}
		return total
	}

	fmt.Println("Fig. 8 ladder (whole FOP, cycles and speedup vs normal pipeline):")
	base := sum(fpga.PEConfig{Pipeline: fpga.NormalPipeline, SACS: fpga.ShiftOriginal, NumPE: 1})
	for _, step := range []struct {
		name string
		cfg  fpga.PEConfig
	}{
		{"normal pipeline + original shift", fpga.PEConfig{Pipeline: fpga.NormalPipeline, SACS: fpga.ShiftOriginal, NumPE: 1}},
		{"+ SACS", fpga.PEConfig{Pipeline: fpga.NormalPipeline, SACS: fpga.SACSParal, NumPE: 1}},
		{"+ multi-granularity pipeline", fpga.PEConfig{Pipeline: fpga.MultiGranularity, SACS: fpga.SACSParal, NumPE: 1}},
		{"+ 2 FOP PEs", fpga.PEConfig{Pipeline: fpga.MultiGranularity, SACS: fpga.SACSParal, NumPE: 2}},
	} {
		c := sum(step.cfg)
		fmt.Printf("  %-34s %12.0f cycles  %5.2fx  (%.4f s at 285 MHz)\n",
			step.name, c, base/c, step.cfg.Seconds(c))
	}

	fmt.Println("\nFig. 9 ladder (shift stage only, speedup vs unpipelined SACS):")
	shiftSum := func(lvl fpga.SACSLevel) float64 {
		cfg := fpga.PEConfig{Pipeline: fpga.NormalPipeline, SACS: lvl, NumPE: 1}
		var total float64
		for _, tr := range traces {
			total += cfg.ShiftCycles(tr)
		}
		return total
	}
	sacsBase := shiftSum(fpga.SACSBase)
	for _, step := range []struct {
		name string
		lvl  fpga.SACSLevel
	}{
		{"SACS (algorithm only)", fpga.SACSBase},
		{"SACS-Ar (pipelined architecture)", fpga.SACSArch},
		{"SACS-ImpBW (bandwidth opts)", fpga.SACSImpBW},
		{"SACS-Paral (parallel phases)", fpga.SACSParal},
	} {
		c := shiftSum(step.lvl)
		fmt.Printf("  %-34s %12.0f cycles  %5.2fx\n", step.name, c, sacsBase/c)
	}

	fmt.Println("\nTable 2 resources:")
	for _, n := range []int{1, 2} {
		r := fpga.Estimate(n)
		fmt.Printf("  %d FOP PE(s): %v (fits U50: %v)\n", n, r, r.FitsIn(fpga.AlveoU50))
	}
	fmt.Printf("  max PEs within the U50 budget: %d (BRAM-bound)\n", fpga.MaxPEs(fpga.AlveoU50))
}
