// iccad2017 runs all four legalizers over (a scaled-down copy of) the
// paper's IC/CAD 2017 benchmark suite and prints a Table-1-style comparison:
// per-design average displacement, modeled runtime and FLEX speedups.
//
// Usage: go run ./examples/iccad2017 [-scale 0.02] [-designs a,b,c]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	flex "github.com/flex-eda/flex"
)

func main() {
	scale := flag.Float64("scale", 0.01, "scale factor (1.0 = paper size)")
	filter := flag.String("designs", "fft_a_md2,fft_a_md3,pci_b_b_md2", "comma-separated designs ('all' for the full suite)")
	flag.Parse()

	names := flex.Designs()[:16] // the 16 contest designs
	if *filter != "all" {
		names = strings.Split(*filter, ",")
	}

	fmt.Printf("%-18s %8s | %8s %9s | %8s %9s | %8s %9s | %8s %9s | %7s %7s %7s\n",
		"design", "cells",
		"MGL dis", "MGL s", "GPU dis", "GPU s", "ANA dis", "ANA s", "FLEX dis", "FLEX s",
		"Acc(T)", "Acc(D)", "Acc(I)")
	for _, name := range names {
		l, err := flex.Generate(name, *scale)
		if err != nil {
			log.Fatal(err)
		}
		type res struct {
			dis, secs float64
		}
		get := func(e flex.Engine) res {
			out, err := flex.Legalize(l, e)
			if err != nil {
				log.Fatal(err)
			}
			if !out.Legal {
				log.Fatalf("%s/%v: illegal result", name, e)
			}
			return res{out.Metrics.AveDis, out.ModeledSeconds}
		}
		cpu := get(flex.EngineMGLMT)
		gpu := get(flex.EngineGPU)
		ana := get(flex.EngineAnalytical)
		fx := get(flex.EngineFLEX)
		fmt.Printf("%-18s %8d | %8.3f %9.5f | %8.3f %9.5f | %8.3f %9.5f | %8.3f %9.5f | %6.1fx %6.1fx %6.1fx\n",
			name, len(l.MovableIDs()),
			cpu.dis, cpu.secs, gpu.dis, gpu.secs, ana.dis, ana.secs, fx.dis, fx.secs,
			cpu.secs/fx.secs, gpu.secs/fx.secs, ana.secs/fx.secs)
	}
}
