// Quickstart: generate a small mixed-cell-height design, legalize it with
// FLEX, and print the quality/time summary — the five-minute tour of the
// public API.
package main

import (
	"fmt"
	"log"

	flex "github.com/flex-eda/flex"
)

func main() {
	// A 2000-cell design at 65% density with the paper's height mix.
	layout, err := flex.GenerateCustom(2000, 0.65, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design: %d movable cells, density %.1f%%, die %d sites x %d rows\n",
		len(layout.MovableIDs()), layout.Density()*100, layout.NumSitesX, layout.NumRows)
	fmt.Printf("global placement overlap area: %d site-rows\n\n", layout.OverlapArea())

	out, err := flex.Legalize(layout, flex.EngineFLEX)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("legal:            %v\n", out.Legal)
	fmt.Printf("average disp.:    %.3f row heights (S_am, Eq. 2)\n", out.Metrics.AveDis)
	fmt.Printf("max displacement: %.3f row heights\n", out.Metrics.MaxDis)
	fmt.Printf("modeled runtime:  %.6f s on the FPGA-CPU platform\n\n", out.ModeledSeconds)

	// Compare with the software reference on the same input.
	ref, err := flex.Legalize(layout, flex.EngineMGLMT)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("8-thread CPU baseline: %.6f s, AveDis %.3f\n", ref.ModeledSeconds, ref.Metrics.AveDis)
	fmt.Printf("FLEX speedup:          %.1fx\n", ref.ModeledSeconds/out.ModeledSeconds)
}
