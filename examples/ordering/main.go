// ordering demonstrates the effect of FLEX's sliding-window processing
// ordering (Sec. 3.1.2): the same design legalized with the plain
// size-descending order and with the size+density sliding window, comparing
// final average displacement across several densities.
package main

import (
	"fmt"
	"log"

	flex "github.com/flex-eda/flex"
)

func main() {
	fmt.Println("FLEX sliding-window ordering vs plain size-descending order")
	fmt.Printf("%8s | %12s | %12s | %s\n", "density", "plain AveDis", "sw AveDis", "delta")
	for _, density := range []float64{0.5, 0.65, 0.8} {
		layout, err := flex.GenerateCustom(1500, density, 7)
		if err != nil {
			log.Fatal(err)
		}
		plain, err := flex.LegalizeWith(layout, flex.EngineFLEX, flex.Options{SlidingWindow: -1})
		if err != nil {
			log.Fatal(err)
		}
		sw, err := flex.LegalizeWith(layout, flex.EngineFLEX, flex.Options{SlidingWindow: 8})
		if err != nil {
			log.Fatal(err)
		}
		if !plain.Legal || !sw.Legal {
			log.Fatalf("illegal result at density %v", density)
		}
		delta := (plain.Metrics.AveDis - sw.Metrics.AveDis) / plain.Metrics.AveDis * 100
		fmt.Printf("%7.0f%% | %12.4f | %12.4f | %+.2f%%\n",
			density*100, plain.Metrics.AveDis, sw.Metrics.AveDis, delta)
	}
	fmt.Println("\npositive delta = the sliding window improved quality")
}
