package flex_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	flex "github.com/flex-eda/flex"
)

// flexHeavyJobs builds a batch dominated by FLEX jobs plus CPU-only
// baselines, all over pre-generated shared layouts so workers hit the
// device phase immediately.
func flexHeavyJobs(t *testing.T, flexJobs int) []flex.BatchJob {
	t.Helper()
	layout, err := flex.GenerateCustom(600, 0.55, 11)
	if err != nil {
		t.Fatal(err)
	}
	var jobs []flex.BatchJob
	for i := 0; i < flexJobs; i++ {
		jobs = append(jobs, flex.BatchJob{
			Layout: layout, Engine: flex.EngineFLEX, Tag: fmt.Sprintf("flex-%d", i),
		})
	}
	jobs = append(jobs,
		flex.BatchJob{Layout: layout, Engine: flex.EngineMGL, Tag: "mgl"},
		flex.BatchJob{Layout: layout, Engine: flex.EngineAnalytical, Tag: "analytical"},
	)
	return jobs
}

// layoutBytes serializes every successful outcome, so determinism checks
// compare actual result bytes, not just summary metrics.
func layoutBytes(t *testing.T, sum *flex.BatchSummary) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range sum.Results {
		if r.Err != nil {
			t.Fatalf("job %s: %v", r.Tag, r.Err)
		}
		fmt.Fprintf(&buf, "# %s %.9f %.9f\n", r.Tag, r.Outcome.Metrics.AveDis, r.Outcome.ModeledSeconds)
		if err := flex.WriteLayout(&buf, r.Outcome.Layout); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestLegalizeBatchDeterministicAcrossWorkersAndFPGAs is the acceptance
// gate of the device scheduler: every {workers} × {fpgas} combination must
// produce byte-identical results — the board count moves only wall-clock
// and wait statistics.
func TestLegalizeBatchDeterministicAcrossWorkersAndFPGAs(t *testing.T) {
	jobs := flexHeavyJobs(t, 4)
	var want []byte
	for _, workers := range []int{1, 4} {
		for _, fpgas := range []int{1, 2, -1} {
			sum, err := flex.LegalizeBatch(context.Background(), jobs,
				flex.BatchOptions{Workers: workers, FPGAs: fpgas})
			if err != nil {
				t.Fatalf("workers=%d fpgas=%d: %v", workers, fpgas, err)
			}
			got := layoutBytes(t, sum)
			if want == nil {
				want = got
				continue
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("workers=%d fpgas=%d: results not byte-identical to baseline", workers, fpgas)
			}
		}
	}
}

// TestLegalizeBatchDeviceContention checks the scheduling behaviour itself:
// concurrent FLEX jobs on a single modeled board serialize (device wait
// shows up) while CPU-only jobs keep overlapping, and per-job waits land on
// FLEX jobs only.
func TestLegalizeBatchDeviceContention(t *testing.T) {
	jobs := flexHeavyJobs(t, 6)
	// Goroutine interleaving decides how much wait each run observes; with
	// 4 workers racing 6 FLEX jobs onto 1 board a zero-wait run is
	// practically impossible, but retry to keep the test unflakable.
	for attempt := 0; attempt < 5; attempt++ {
		sum, err := flex.LegalizeBatch(context.Background(), jobs,
			flex.BatchOptions{Workers: 4, FPGAs: 1})
		if err != nil {
			t.Fatal(err)
		}
		if sum.FPGAs != 1 {
			t.Fatalf("summary FPGAs = %d, want 1", sum.FPGAs)
		}
		for _, r := range sum.Results {
			if !jobs[r.Index].NeedsFPGA() && (r.DeviceWait != 0 || r.DeviceHold != 0) {
				t.Fatalf("CPU-only job %s recorded device time: wait=%v hold=%v",
					r.Tag, r.DeviceWait, r.DeviceHold)
			}
			if jobs[r.Index].NeedsFPGA() && r.Err == nil && r.DeviceHold <= 0 {
				t.Fatalf("FLEX job %s never held the board", r.Tag)
			}
		}
		if sum.DeviceHold <= 0 {
			t.Fatal("no board occupancy recorded")
		}
		if sum.DeviceWait > 0 {
			return // contention observed: the board is genuinely shared
		}
	}
	t.Fatal("6 concurrent FLEX jobs on 1 board never waited in 5 runs")
}

func TestBatchJobNeedsFPGA(t *testing.T) {
	for engine, want := range map[flex.Engine]bool{
		flex.EngineFLEX:       true,
		flex.EngineMGL:        false,
		flex.EngineMGLMT:      false,
		flex.EngineGPU:        false,
		flex.EngineAnalytical: false,
	} {
		if got := (flex.BatchJob{Engine: engine}).NeedsFPGA(); got != want {
			t.Fatalf("%s: NeedsFPGA = %v, want %v", engine, got, want)
		}
	}
}

func TestLegalizeBatchStream(t *testing.T) {
	jobs := batchJobs(t)
	var callbackOrder []int
	opt := flex.BatchOptions{
		Workers: 3,
		OnResult: func(r flex.BatchResult) {
			// OnResult fires from the relay goroutine before each send.
			callbackOrder = append(callbackOrder, r.Index)
		},
	}
	seen := make(map[int]bool)
	var streamOrder []int
	for r := range flex.LegalizeBatchStream(context.Background(), jobs, opt) {
		if seen[r.Index] {
			t.Fatalf("job %d streamed twice", r.Index)
		}
		seen[r.Index] = true
		streamOrder = append(streamOrder, r.Index)
		if r.Err != nil {
			t.Fatalf("job %s: %v", r.Tag, r.Err)
		}
		if r.Tag != jobs[r.Index].Tag {
			t.Fatalf("job %d: tag %q, want %q", r.Index, r.Tag, jobs[r.Index].Tag)
		}
		if !r.Outcome.Legal {
			t.Fatalf("job %s: illegal outcome", r.Tag)
		}
	}
	if len(seen) != len(jobs) {
		t.Fatalf("stream yielded %d of %d jobs", len(seen), len(jobs))
	}
	if len(callbackOrder) != len(streamOrder) {
		t.Fatalf("OnResult fired %d times for %d streamed results", len(callbackOrder), len(streamOrder))
	}
	for i := range streamOrder {
		if callbackOrder[i] != streamOrder[i] {
			t.Fatalf("OnResult order %v diverges from stream order %v", callbackOrder, streamOrder)
		}
	}
}

func TestLegalizeBatchStreamCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := batchJobs(t)
	n, skipped := 0, 0
	for r := range flex.LegalizeBatchStream(ctx, jobs, flex.BatchOptions{Workers: 2}) {
		n++
		if flex.IsBatchSkipped(r.Err) {
			skipped++
		}
	}
	if n != len(jobs) {
		t.Fatalf("canceled stream yielded %d of %d results", n, len(jobs))
	}
	if skipped != len(jobs) {
		t.Fatalf("%d of %d results marked skipped", skipped, len(jobs))
	}
}

func TestLegalizeBatchOnResult(t *testing.T) {
	jobs := flexHeavyJobs(t, 2)
	var streamed int
	sum, err := flex.LegalizeBatch(context.Background(), jobs, flex.BatchOptions{
		Workers:  2,
		OnResult: func(r flex.BatchResult) { streamed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != len(jobs) {
		t.Fatalf("OnResult fired %d times, want %d", streamed, len(jobs))
	}
	if len(sum.Results) != len(jobs) {
		t.Fatalf("summary holds %d results, want %d", len(sum.Results), len(jobs))
	}
}
