package flex_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	flex "github.com/flex-eda/flex"
)

// serviceJobs is a (design × engine) grid with repeated designs, so a
// caching service gets hits within one submission and across submissions.
func serviceJobs() []flex.BatchJob {
	var jobs []flex.BatchJob
	for _, design := range []string{"fft_a_md2", "pci_b_a_md2"} {
		for _, engine := range []flex.Engine{flex.EngineFLEX, flex.EngineMGL} {
			jobs = append(jobs, flex.BatchJob{
				Design: design, Scale: 0.008, Engine: engine,
				Tag: design + "/" + engine.String(),
			})
		}
	}
	return jobs
}

// TestServiceByteIdenticalAcrossCacheWorkersFPGAs is the acceptance gate of
// the Service redesign: for every workers × fpgas × cache combination —
// including the LegalizeBatch wrapper itself — the serialized results must
// be byte-identical. The cache may only skip regeneration, never change
// what is generated.
func TestServiceByteIdenticalAcrossCacheWorkersFPGAs(t *testing.T) {
	jobs := serviceJobs()
	baseline, err := flex.LegalizeBatch(context.Background(), jobs, flex.BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := layoutBytes(t, baseline)
	for _, workers := range []int{1, 4} {
		for _, fpgas := range []int{1, 2} {
			for _, cacheBytes := range []int64{0, 64 << 20} {
				svc := flex.NewService(flex.WithWorkers(workers), flex.WithFPGAs(fpgas),
					flex.WithCacheBytes(cacheBytes))
				// Submit twice: the second pass exercises warm-cache reuse.
				for pass := 0; pass < 2; pass++ {
					sum, err := svc.Submit(context.Background(), jobs, flex.SubmitOptions{})
					if err != nil {
						t.Fatalf("workers=%d fpgas=%d cache=%d pass=%d: %v",
							workers, fpgas, cacheBytes, pass, err)
					}
					if got := layoutBytes(t, sum); !bytes.Equal(got, want) {
						t.Fatalf("workers=%d fpgas=%d cache=%d pass=%d: results differ from LegalizeBatch baseline",
							workers, fpgas, cacheBytes, pass)
					}
				}
				st := svc.Stats()
				if st.Batches != 2 || st.Jobs != int64(2*len(jobs)) {
					t.Fatalf("stats %+v, want 2 batches / %d jobs", st, 2*len(jobs))
				}
				if cacheBytes > 0 {
					// 2 designs generated once each; every other lookup hit.
					if st.CacheMisses != 2 {
						t.Fatalf("cache misses = %d, want 2 (one per design)", st.CacheMisses)
					}
					if want := int64(2*len(jobs) - 2); st.CacheHits != want {
						t.Fatalf("cache hits = %d, want %d", st.CacheHits, want)
					}
					if st.CacheEntries != 2 || st.CacheBytes <= 0 {
						t.Fatalf("cache residency %+v", st)
					}
				} else if st.CacheHits+st.CacheMisses != 0 {
					t.Fatalf("disabled cache recorded traffic: %+v", st)
				}
				svc.Close()
			}
		}
	}
}

func TestServiceQueueDepthOverload(t *testing.T) {
	svc := flex.NewService(flex.WithWorkers(1), flex.WithQueueDepth(1))
	defer svc.Close()
	jobs := serviceJobs() // 4 jobs > depth 1: can never be admitted
	if _, err := svc.Submit(context.Background(), jobs, flex.SubmitOptions{}); !errors.Is(err, flex.ErrOverloaded) {
		t.Fatalf("Submit err = %v, want ErrOverloaded", err)
	}
	if _, err := svc.Stream(context.Background(), jobs, flex.SubmitOptions{}); !errors.Is(err, flex.ErrOverloaded) {
		t.Fatalf("Stream err = %v, want ErrOverloaded", err)
	}
	// A batch that fits still runs.
	sum, err := svc.Submit(context.Background(), jobs[:1], flex.SubmitOptions{})
	if err != nil || sum.Errors != 0 {
		t.Fatalf("fitting batch: sum=%+v err=%v", sum, err)
	}
	st := svc.Stats()
	if st.Overloaded != 2 {
		t.Fatalf("overloaded = %d, want 2", st.Overloaded)
	}
	if st.Batches != 1 || st.Jobs != 1 {
		t.Fatalf("stats %+v, want 1 batch / 1 job (rejected batches don't count)", st)
	}
}

func TestServiceClosedRejectsSubmissions(t *testing.T) {
	svc := flex.NewService(flex.WithWorkers(1))
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(context.Background(), serviceJobs()[:1], flex.SubmitOptions{}); !errors.Is(err, flex.ErrServiceClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrServiceClosed", err)
	}
	if _, err := svc.Stream(context.Background(), serviceJobs()[:1], flex.SubmitOptions{}); !errors.Is(err, flex.ErrServiceClosed) {
		t.Fatalf("Stream after Close: err = %v, want ErrServiceClosed", err)
	}
	if err := svc.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestServiceStreamDeliversAllResults(t *testing.T) {
	svc := flex.NewService(flex.WithWorkers(3), flex.WithCacheBytes(32<<20))
	defer svc.Close()
	jobs := serviceJobs()
	var callbacks int
	ch, err := svc.Stream(context.Background(), jobs, flex.SubmitOptions{
		OnResult: func(flex.BatchResult) { callbacks++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for r := range ch {
		if seen[r.Index] {
			t.Fatalf("job %d streamed twice", r.Index)
		}
		seen[r.Index] = true
		if r.Err != nil {
			t.Fatalf("job %s: %v", r.Tag, r.Err)
		}
		if !r.Outcome.Legal {
			t.Fatalf("job %s: illegal outcome", r.Tag)
		}
	}
	if len(seen) != len(jobs) || callbacks != len(jobs) {
		t.Fatalf("streamed %d results, %d callbacks, want %d", len(seen), callbacks, len(jobs))
	}
	if st := svc.Stats(); st.Jobs != int64(len(jobs)) || st.Batches != 1 {
		t.Fatalf("stats after stream: %+v", st)
	}
}

func TestServiceDeviceStatsAccumulate(t *testing.T) {
	layout, err := flex.GenerateCustom(400, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	svc := flex.NewService(flex.WithWorkers(2), flex.WithFPGAs(1))
	defer svc.Close()
	jobs := []flex.BatchJob{
		{Layout: layout, Engine: flex.EngineFLEX},
		{Layout: layout, Engine: flex.EngineFLEX},
	}
	for i := 0; i < 2; i++ {
		if _, err := svc.Submit(context.Background(), jobs, flex.SubmitOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if st.FPGAs != 1 {
		t.Fatalf("FPGAs = %d, want 1", st.FPGAs)
	}
	if st.DeviceAcquires != 4 {
		t.Fatalf("device acquires = %d, want 4 across both submissions", st.DeviceAcquires)
	}
	if st.DeviceHold <= 0 {
		t.Fatal("no cumulative board occupancy recorded")
	}
}

// TestServiceCacheHitRate pins the hit-rate arithmetic on deterministic
// sequential submissions.
func TestServiceCacheHitRate(t *testing.T) {
	svc := flex.NewService(flex.WithWorkers(1), flex.WithCacheBytes(32<<20))
	defer svc.Close()
	job := []flex.BatchJob{{Design: "fft_a_md2", Scale: 0.008, Engine: flex.EngineMGL}}
	for i := 0; i < 4; i++ {
		if _, err := svc.Submit(context.Background(), job, flex.SubmitOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 3 {
		t.Fatalf("hits/misses = %d/%d, want 3/1", st.CacheHits, st.CacheMisses)
	}
	if got := st.CacheHitRate(); got != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", got)
	}
}
