package gpu

import (
	"testing"

	"github.com/flex-eda/flex/internal/core"
	"github.com/flex-eda/flex/internal/gen"
	"github.com/flex-eda/flex/internal/model"
)

func testLayout(t *testing.T, n int, density float64, seed int64) *model.Layout {
	t.Helper()
	l, err := gen.Small(n, density, seed).Generate(1.0)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestGPULegalizes(t *testing.T) {
	l := testLayout(t, 400, 0.6, 301)
	res := Legalize(l, Config{})
	if !res.Legal {
		t.Fatalf("GPU baseline illegal: %v", res.Violations)
	}
	if res.GPU.Rounds == 0 || res.GPU.MaxBatch == 0 {
		t.Fatalf("no kernel rounds recorded: %+v", res.GPU)
	}
	if res.GPU.ToughCells == 0 {
		t.Fatal("no tough cells classified; the CPU path is untested")
	}
	if res.TotalSeconds <= 0 {
		t.Fatal("total time not positive")
	}
}

func TestGPUDeterminism(t *testing.T) {
	l := testLayout(t, 250, 0.6, 302)
	a := Legalize(l, Config{})
	b := Legalize(l, Config{})
	if a.TotalSeconds != b.TotalSeconds {
		t.Fatalf("time differs: %v vs %v", a.TotalSeconds, b.TotalSeconds)
	}
	for i := range a.Layout.Cells {
		if a.Layout.Cells[i].X != b.Layout.Cells[i].X {
			t.Fatalf("cell %d position differs", i)
		}
	}
}

func TestSyncShareSignificant(t *testing.T) {
	// Fig. 2(b): data synchronization is a large share of the GPU
	// legalizer's runtime.
	l := testLayout(t, 600, 0.6, 303)
	res := Legalize(l, Config{})
	share := res.GPU.SyncShare(res.TotalSeconds)
	if share < 0.10 || share > 0.75 {
		t.Fatalf("sync share %v outside plausible band [0.10, 0.75]", share)
	}
}

func TestMaxParallelismBelowCUDACores(t *testing.T) {
	// Fig. 2(c): the number of concurrently processable regions is far
	// below the CUDA core count.
	l := testLayout(t, 800, 0.55, 304)
	res := Legalize(l, Config{})
	if res.GPU.MaxBatch >= GTX1660Ti.CUDACores {
		t.Fatalf("max parallelism %d not below core count %d", res.GPU.MaxBatch, GTX1660Ti.CUDACores)
	}
}

func TestGPUSlowerThanFLEXAndWorseQuality(t *testing.T) {
	// Table 1 shape: FLEX beats the CPU-GPU baseline in runtime, and the
	// baseline's displacement is no better than FLEX's.
	l := testLayout(t, 500, 0.65, 305)
	g := Legalize(l, Config{})
	f := core.Legalize(l, core.Config{})
	if f.TotalSeconds >= g.TotalSeconds {
		t.Fatalf("FLEX (%.6fs) not faster than CPU-GPU (%.6fs)", f.TotalSeconds, g.TotalSeconds)
	}
	if g.Metrics.AveDis < f.Metrics.AveDis*0.97 {
		t.Fatalf("GPU quality unexpectedly better: %v vs FLEX %v",
			g.Metrics.AveDis, f.Metrics.AveDis)
	}
}
