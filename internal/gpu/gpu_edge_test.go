package gpu

import (
	"testing"

	"github.com/flex-eda/flex/internal/model"
)

func TestGPUEmptyLayout(t *testing.T) {
	l := &model.Layout{Name: "empty", NumSitesX: 10, NumRows: 4, RowHeight: 8}
	res := Legalize(l, Config{})
	if !res.Legal {
		t.Fatal("empty layout illegal")
	}
	if res.GPU.Rounds != 0 {
		t.Fatalf("rounds = %d on empty layout", res.GPU.Rounds)
	}
}

func TestGPUAllTough(t *testing.T) {
	// Every cell tall: everything lands on the CPU path.
	l := &model.Layout{Name: "tough", NumSitesX: 200, NumRows: 8, RowHeight: 8}
	for i := 0; i < 10; i++ {
		l.Cells = append(l.Cells, model.Cell{
			ID: i, Name: "t", X: i * 18, Y: 0, GX: i * 18, GY: 0, W: 6, H: 4,
			Parity: model.ParityEven,
		})
	}
	res := Legalize(l, Config{})
	if !res.Legal {
		t.Fatalf("all-tough layout illegal: %v", res.Violations)
	}
	if res.GPU.ToughCells != 10 {
		t.Fatalf("tough cells = %d, want 10", res.GPU.ToughCells)
	}
	if res.GPU.CPUSeconds <= 0 {
		t.Fatal("CPU time not accounted for tough cells")
	}
}

func TestGPUBatchMaxRespected(t *testing.T) {
	l := &model.Layout{Name: "batch", NumSitesX: 2000, NumRows: 8, RowHeight: 8}
	for i := 0; i < 60; i++ {
		x := (i % 20) * 100
		y := (i / 20) * 2
		l.Cells = append(l.Cells, model.Cell{
			ID: i, Name: "c", X: x, Y: y, GX: x, GY: y, W: 4, H: 1,
			Parity: model.ParityAny,
		})
	}
	res := Legalize(l, Config{BatchMax: 4})
	if !res.Legal {
		t.Fatal("batch test illegal")
	}
	if res.GPU.MaxBatch > 4 {
		t.Fatalf("MaxBatch %d exceeds configured 4", res.GPU.MaxBatch)
	}
}

func TestSyncShareZeroTotal(t *testing.T) {
	var s Stats
	if s.SyncShare(0) != 0 {
		t.Fatal("zero total must give zero share")
	}
}
