// Package gpu reimplements the DATE'22 CPU-GPU legalizer baseline the FLEX
// paper compares against (Yang et al., "Mixed-Cell-Height Legalization on
// CPU-GPU Heterogeneous Systems"), with the scheduling behaviours the paper
// criticizes:
//
//   - region-level parallelism: batches of targets with non-overlapping
//     windows are evaluated concurrently on the GPU (a thread block per
//     region), bounded by how many disjoint regions the design offers —
//     far fewer than the card's CUDA cores (Fig. 2(c));
//   - per-batch data synchronization: every kernel round ends with a
//     device↔host position sync whose cost dominates (Fig. 2(b));
//   - tough cells (tall or extra-wide) are assigned to the CPU, which
//     processes them slowly and out of the global size order, hurting both
//     runtime (Fig. 2(d)) and quality.
//
// The algorithmic work (region extraction, FOP, shifting) is the real
// implementation shared with every other engine; only time is modeled, via
// the Device parameters.
package gpu

import (
	"github.com/flex-eda/flex/internal/fop"
	"github.com/flex-eda/flex/internal/geom"
	"github.com/flex-eda/flex/internal/model"
	"github.com/flex-eda/flex/internal/order"
	"github.com/flex-eda/flex/internal/perf"
	"github.com/flex-eda/flex/internal/region"
	"github.com/flex-eda/flex/internal/shift"
)

// Device models the GPU card (defaults approximate a GTX 1660 Ti).
type Device struct {
	CUDACores     int     // 1536 on the paper's card
	NsPerUnit     float64 // per-work-unit cost of one GPU thread block
	KernelLaunch  float64 // seconds per kernel launch
	SyncLatency   float64 // seconds per post-batch synchronization round
	SyncBytesPerS float64 // effective device↔host bandwidth
}

// GTX1660Ti is the paper's comparison card.
var GTX1660Ti = Device{
	CUDACores:     1536,
	NsPerUnit:     3.8,    // single block is slower than a CPU core
	KernelLaunch:  18e-6,  // launch + argument marshalling
	SyncLatency:   260e-6, // position gather/scatter + host bookkeeping
	SyncBytesPerS: 6e9,
}

// Config parameterizes the baseline.
type Config struct {
	Device    Device
	BatchMax  int // max regions per kernel round (0 = 64)
	Lookahead int // how deep the scheduler scans for disjoint regions (0 = 4×BatchMax)
	// ToughH / ToughW classify tough cells sent to the CPU.
	ToughH int // cells at least this tall are tough (0 = 3)
	ToughW int // cells at least this wide are tough (0 = 16)
	// CPU prices the host-side work; zero value uses perf.DefaultCPU.
	CPU     *perf.CPUModel
	Weights *perf.Weights
}

func (c Config) device() Device {
	if c.Device.CUDACores == 0 {
		return GTX1660Ti
	}
	return c.Device
}

// Stats records the scheduling behaviour of one run.
type Stats struct {
	Rounds        int64
	MaxBatch      int     // largest kernel round (Fig. 2(c))
	BatchSum      int64   // for average batch size
	ToughCells    int64   // cells assigned to the CPU
	Deferred      int64   // batch results redone serially after conflicts
	KernelSeconds float64 // GPU compute time
	SyncSeconds   float64 // device↔host synchronization time (Fig. 2(b))
	CPUSeconds    float64 // host-side time (tough cells + serial steps)
}

// SyncShare returns the fraction of total runtime spent synchronizing.
func (s Stats) SyncShare(total float64) float64 {
	if total <= 0 {
		return 0
	}
	return s.SyncSeconds / total
}

// Result is a finished CPU-GPU legalization.
type Result struct {
	Layout       *model.Layout
	Metrics      model.Metrics
	MGLStats     mglStats
	GPU          Stats
	Legal        bool
	Violations   []model.Violation
	TotalSeconds float64
}

// mglStats aggregates the algorithmic op counters (superset of what the
// time model needs; kept exported-field-free on purpose).
type mglStats struct {
	FOP    fop.Stats
	Commit shift.Stats
	Placed int64
	Failed int64
}

type engine struct {
	l      *model.Layout
	cfg    Config
	dev    Device
	w      perf.Weights
	cpu    perf.CPUModel
	idx    *region.Index
	placed []bool
	st     mglStats
	gst    Stats
}

// Legalize runs the CPU-GPU baseline on a clone of l.
func Legalize(l *model.Layout, cfg Config) *Result {
	if cfg.BatchMax == 0 {
		cfg.BatchMax = 64
	}
	if cfg.Lookahead == 0 {
		cfg.Lookahead = 4 * cfg.BatchMax
	}
	if cfg.ToughH == 0 {
		cfg.ToughH = 3
	}
	if cfg.ToughW == 0 {
		cfg.ToughW = 16
	}
	e := &engine{l: l.Clone(), cfg: cfg, dev: cfg.device()}
	if cfg.Weights != nil {
		e.w = *cfg.Weights
	} else {
		e.w = perf.DefaultWeights
	}
	if cfg.CPU != nil {
		e.cpu = *cfg.CPU
	} else {
		e.cpu = perf.DefaultCPU
	}
	e.run()
	res := &Result{
		Layout:   e.l,
		Metrics:  model.Measure(e.l),
		MGLStats: e.st,
		GPU:      e.gst,
	}
	res.Violations = e.l.Check(16)
	res.Legal = len(res.Violations) == 0 && e.st.Failed == 0
	// Total: GPU rounds and CPU tough processing overlap poorly in the
	// DATE'22 design (the scheduler stalls on the slower side each round);
	// synchronization serializes everything.
	gpuSide := e.gst.KernelSeconds
	cpuSide := e.gst.CPUSeconds
	overlap := gpuSide
	if cpuSide > overlap {
		overlap = cpuSide
	}
	res.TotalSeconds = overlap + e.gst.SyncSeconds
	return res
}

func (e *engine) run() {
	// Pre-move (CPU, serial).
	var premoveUnits float64
	for i := range e.l.Cells {
		c := &e.l.Cells[i]
		if c.Fixed {
			continue
		}
		c.X = clamp(c.GX, 0, e.l.NumSitesX-c.W)
		c.Y = snapRow(c.GY, c.H, c.Parity, e.l.NumRows)
		premoveUnits += e.w.PreMove
	}
	e.gst.CPUSeconds += e.cpu.Seconds(premoveUnits)

	e.placed = make([]bool, len(e.l.Cells))
	e.idx = region.NewIndex(e.l, 32, 4, func(i int) bool { return e.l.Cells[i].Fixed })

	// Split into GPU queue and CPU tough queue, both size-descending.
	sched := order.NewSizeOrder(e.l)
	var gpuQ, toughQ []int
	for {
		id, ok := sched.Next()
		if !ok {
			break
		}
		c := &e.l.Cells[id]
		if c.H >= e.cfg.ToughH || c.W >= e.cfg.ToughW {
			toughQ = append(toughQ, id)
		} else {
			gpuQ = append(gpuQ, id)
		}
	}
	e.gst.ToughCells = int64(len(toughQ))

	// Interleave: every kernel round is followed by a slice of tough cells
	// on the CPU, approximating the concurrent scheduler. The CPU list is
	// drained proportionally so both sides finish around the same round.
	estRounds := (len(gpuQ) + e.cfg.BatchMax/2) / maxI(1, e.cfg.BatchMax/2)
	toughPerRound := 0
	if estRounds > 0 {
		toughPerRound = (len(toughQ) + estRounds - 1) / estRounds
	}

	for len(gpuQ) > 0 || len(toughQ) > 0 {
		if len(gpuQ) > 0 {
			gpuQ = e.kernelRound(gpuQ)
		}
		// CPU side: tough cells, sequential, priced at CPU rates.
		n := toughPerRound
		if len(gpuQ) == 0 {
			n = len(toughQ) // GPU done: drain
		}
		for i := 0; i < n && len(toughQ) > 0; i++ {
			id := toughQ[0]
			toughQ = toughQ[1:]
			before := e.st.FOP
			e.placeOne(id, false)
			delta := fopWorkDelta(e.w, e.st.FOP, before)
			e.gst.CPUSeconds += e.cpu.Seconds(delta)
		}
	}
}

// kernelRound collects a batch of disjoint regions, evaluates them (modeled
// as one kernel), commits serially, and charges launch + compute + sync.
func (e *engine) kernelRound(queue []int) []int {
	var batch []int
	var wins []geom.Rect
	var rest []int
	scanned := 0
	for _, id := range queue {
		if len(batch) >= e.cfg.BatchMax || scanned >= e.cfg.Lookahead {
			rest = append(rest, id)
			continue
		}
		scanned++
		win := e.window(&e.l.Cells[id], 0)
		conflict := false
		for _, w := range wins {
			if w.Overlaps(win) {
				conflict = true
				break
			}
		}
		if conflict {
			rest = append(rest, id)
			continue
		}
		batch = append(batch, id)
		wins = append(wins, win)
	}
	if len(batch) == 0 && len(rest) > 0 {
		// Guaranteed progress: take the head alone.
		batch = append(batch, rest[0])
		rest = rest[1:]
	}

	e.gst.Rounds++
	e.gst.BatchSum += int64(len(batch))
	if len(batch) > e.gst.MaxBatch {
		e.gst.MaxBatch = len(batch)
	}

	// Evaluate the batch against the frozen layout; the kernel's cost is
	// the slowest region in the round (blocks run concurrently).
	var maxUnits float64
	var committedWins []geom.Rect
	var moved int64
	type evalRes struct {
		reg  *region.Region
		cand fop.Candidate
		win  geom.Rect
	}
	evals := make([]evalRes, len(batch))
	for i, id := range batch {
		before := e.st.FOP
		reg, cand, win := e.evaluate(id)
		units := fopWorkDelta(e.w, e.st.FOP, before)
		if units > maxUnits {
			maxUnits = units
		}
		evals[i] = evalRes{reg, cand, win}
	}
	e.gst.KernelSeconds += e.dev.KernelLaunch + maxUnits*e.dev.NsPerUnit*1e-9

	// Serial commit with conflict deferral (redone against fresh state).
	for i, id := range batch {
		r := evals[i]
		conflict := !r.cand.Feasible
		for _, w := range committedWins {
			if w.Overlaps(r.win) {
				conflict = true
				break
			}
		}
		if conflict {
			e.gst.Deferred++
			before := e.st.FOP
			e.placeOne(id, false)
			delta := fopWorkDelta(e.w, e.st.FOP, before)
			e.gst.CPUSeconds += e.cpu.Seconds(delta)
			committedWins = append(committedWins, e.window(&e.l.Cells[id], 0))
			continue
		}
		beforeMoves := e.st.Commit.Moves
		if !e.commit(id, r.reg, r.cand) {
			e.gst.Deferred++
			e.placeOne(id, false)
		}
		moved += int64(e.st.Commit.Moves - beforeMoves + 1)
		committedWins = append(committedWins, r.win)
	}

	// Post-round synchronization: gather all updated positions to the
	// host, scatter the fresh state back to the device.
	e.gst.SyncSeconds += e.dev.SyncLatency + float64(moved*16)/e.dev.SyncBytesPerS
	return rest
}

// evaluate runs steps c)+d) without committing, expanding as needed.
func (e *engine) evaluate(id int) (*region.Region, fop.Candidate, geom.Rect) {
	c := &e.l.Cells[id]
	tg := fop.Target{GX: c.GX, GY: c.GY, W: c.W, H: c.H,
		ParityOK: c.Parity.AllowsRow, RowHeight: e.l.RowHeight}
	for n := 0; ; n++ {
		win := e.window(c, n)
		if n >= 4 {
			win = e.l.Die()
		}
		cands := e.idx.Query(win, nil)
		reg := region.ExtractFrom(e.l, e.placed, id, win, cands)
		cand := fop.Best(reg, tg, fop.Options{}, &e.st.FOP)
		if cand.Feasible || n >= 4 {
			return reg, cand, win
		}
	}
}

// placeOne is the sequential fallback path (CPU side).
func (e *engine) placeOne(id int, gpuSide bool) bool {
	reg, cand, _ := e.evaluate(id)
	if cand.Feasible && e.commit(id, reg, cand) {
		return true
	}
	e.st.Failed++
	return false
}

func (e *engine) commit(id int, reg *region.Region, cand fop.Candidate) bool {
	p := shift.Placement{TX: cand.X, TY: cand.Y, TW: reg.TargetW, TH: reg.TargetH, Boundary2: cand.Boundary2}
	if !shift.SACS(reg, p, &e.st.Commit) {
		return false
	}
	for i := range reg.Cells {
		lc := &reg.Cells[i]
		cell := &e.l.Cells[lc.ID]
		if cell.X != lc.X {
			cell.X = lc.X
			e.idx.Update(lc.ID)
		}
	}
	t := &e.l.Cells[id]
	t.X, t.Y = cand.X, cand.Y
	e.placed[id] = true
	e.idx.Add(id)
	e.st.Placed++
	return true
}

func (e *engine) window(c *model.Cell, n int) geom.Rect {
	w := maxI(8*c.W, 64) << uint(n)
	h := maxI(4*c.H, 6) << uint(n)
	cx := c.GX + c.W/2
	cy := c.GY + c.H/2
	return geom.NewRect(cx-w/2, cy-h/2, w, h)
}

func fopWorkDelta(w perf.Weights, after, before fop.Stats) float64 {
	return w.FOPWork(after) - w.FOPWork(before)
}

func snapRow(gy, h int, p model.PGParity, numRows int) int {
	y := clamp(gy, 0, numRows-h)
	if p.AllowsRow(y) {
		return y
	}
	for d := 1; ; d++ {
		if y-d >= 0 && p.AllowsRow(y-d) {
			return y - d
		}
		if y+d <= numRows-h && p.AllowsRow(y+d) {
			return y + d
		}
		if y-d < 0 && y+d > numRows-h {
			return y
		}
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if hi < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
