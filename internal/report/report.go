// Package report renders the experiment results as fixed-width text tables
// and simple bar series, matching the rows and series of the paper's tables
// and figures so every driver table can be regenerated mechanically.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a fixed-width text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row; the cell count should match the column count.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(t.Columns))
		for i := range t.Columns {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(t.Columns)
	fmt.Fprintf(w, "|-%s-|\n", strings.Join(sep, "-|-"))
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// F formats a float with the given precision.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// X formats a speedup ratio like the paper ("2.9x").
func X(v float64) string { return fmt.Sprintf("%.1fx", v) }

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// Secs formats seconds with adaptive precision.
func Secs(v float64) string {
	switch {
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	case v >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.5f", v)
	}
}

// Series is a named sequence of labeled values, rendered as an ASCII bar
// chart (one figure series).
type Series struct {
	Title  string
	Labels []string
	Values []float64
}

// NewSeries creates a series.
func NewSeries(title string) *Series { return &Series{Title: title} }

// Add appends a labeled value.
func (s *Series) Add(label string, v float64) {
	s.Labels = append(s.Labels, label)
	s.Values = append(s.Values, v)
}

// Render writes the series as horizontal bars scaled to maxWidth chars.
func (s *Series) Render(w io.Writer, maxWidth int) {
	if maxWidth <= 0 {
		maxWidth = 40
	}
	if s.Title != "" {
		fmt.Fprintf(w, "%s\n", s.Title)
	}
	maxV, maxL := 0.0, 0
	for i, v := range s.Values {
		if v > maxV {
			maxV = v
		}
		if len(s.Labels[i]) > maxL {
			maxL = len(s.Labels[i])
		}
	}
	for i, v := range s.Values {
		bar := 0
		if maxV > 0 {
			bar = int(v / maxV * float64(maxWidth))
		}
		fmt.Fprintf(w, "  %s %s %.3f\n", pad(s.Labels[i], maxL), strings.Repeat("#", bar), v)
	}
}

// String renders the series to a string with default width.
func (s *Series) String() string {
	var b strings.Builder
	s.Render(&b, 40)
	return b.String()
}
