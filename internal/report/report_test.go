package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("Title", "name", "value")
	tab.Add("alpha", "1")
	tab.Add("beta-longer", "22")
	out := tab.String()
	if !strings.Contains(out, "Title") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// All data lines must have equal width (fixed-width table).
	w := len(lines[1])
	for _, ln := range lines[2:] {
		if len(ln) != w {
			t.Fatalf("ragged table:\n%s", out)
		}
	}
}

func TestTableShortRow(t *testing.T) {
	tab := NewTable("", "a", "b", "c")
	tab.Add("only-one")
	out := tab.String()
	if !strings.Contains(out, "only-one") {
		t.Fatal("short row dropped")
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Fatal("F wrong")
	}
	if X(2.94) != "2.9x" {
		t.Fatal("X wrong")
	}
	if Pct(0.405) != "40.5%" {
		t.Fatal("Pct wrong")
	}
	if Secs(12.3) != "12.3" || Secs(0.1234) != "0.123" || Secs(0.00012) != "0.00012" {
		t.Fatalf("Secs wrong: %s %s %s", Secs(12.3), Secs(0.1234), Secs(0.00012))
	}
}

func TestSeriesRender(t *testing.T) {
	s := NewSeries("bars")
	s.Add("one", 1)
	s.Add("two", 2)
	out := s.String()
	if !strings.Contains(out, "bars") || !strings.Contains(out, "two") {
		t.Fatalf("series render broken:\n%s", out)
	}
	// The largest value gets the longest bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[2], "#") <= strings.Count(lines[1], "#") {
		t.Fatalf("bar scaling wrong:\n%s", out)
	}
}

func TestSeriesZeroValues(t *testing.T) {
	s := NewSeries("")
	s.Add("zero", 0)
	if out := s.String(); !strings.Contains(out, "zero") {
		t.Fatal("zero-value label missing")
	}
}
