package shard

import (
	"bytes"
	"testing"

	"github.com/flex-eda/flex/internal/model"
)

// FuzzSplitStitch checks the decomposition's losslessness contract on
// arbitrary decodable layouts: PlanBands → Split → Stitch with untouched
// band layouts must reproduce the input byte for byte in canonical flexpl
// form, for any band count and halo. The incremental (ECO) path splices
// cached band outcomes on exactly this contract.
func FuzzSplitStitch(f *testing.F) {
	f.Add([]byte("flexpl 1\ndesign d\ndie 8 8 8\ncells 2\na 0 0 2 1 any 0\nb 3 5 2 2 even 0 4 6\n"), 2, 1)
	f.Add([]byte("flexpl 1\ndesign tall\ndie 16 12 8\ncells 3\n"+
		"a 0 0 2 4 any 0\nblk 4 0 2 12 odd 1\nc 8 9 3 2 even 0\n"), 4, 2)
	f.Add([]byte("flexpl 1\ndesign off\ndie 8 6 8\ncells 1\na 2 99 2 1 any 0 2 -5\n"), 3, 0)
	f.Fuzz(func(t *testing.T, data []byte, k, halo int) {
		l, err := model.Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if k < 1 || k > 64 || halo < -4 || halo > 8 {
			return
		}
		if l.NumRows < 1 || l.NumRows > 1<<16 || len(l.Cells) == 0 {
			return
		}
		plan, err := PlanBands(l, k, halo)
		if err != nil {
			t.Fatalf("PlanBands(k=%d, halo=%d): %v", k, halo, err)
		}
		var want bytes.Buffer
		if err := model.Encode(&want, l); err != nil {
			t.Fatalf("encode input: %v", err)
		}
		bands, err := Split(l, plan)
		if err != nil {
			t.Fatalf("Split: %v", err)
		}
		got, err := Stitch(l, plan, bands)
		if err != nil {
			t.Fatalf("Stitch: %v", err)
		}
		var round bytes.Buffer
		if err := model.Encode(&round, got); err != nil {
			t.Fatalf("encode stitched: %v", err)
		}
		if !bytes.Equal(want.Bytes(), round.Bytes()) {
			t.Fatalf("split/stitch not lossless (k=%d, halo=%d):\nwant:\n%s\ngot:\n%s",
				k, halo, want.Bytes(), round.Bytes())
		}
		for _, b := range bands {
			if err := model.Encode(&bytes.Buffer{}, b); err != nil {
				t.Fatalf("band does not encode: %v", err)
			}
		}
	})
}
