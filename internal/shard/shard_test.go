package shard

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/flex-eda/flex/internal/gen"
	"github.com/flex-eda/flex/internal/mgl"
	"github.com/flex-eda/flex/internal/model"
)

// encode renders a layout in flexpl text, the byte-identity currency of
// every determinism test in this repo.
func encode(t *testing.T, l *model.Layout) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := model.Encode(&buf, l); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

func generate(t *testing.T, spec gen.Spec, scale float64) *model.Layout {
	t.Helper()
	l, err := spec.Generate(scale)
	if err != nil {
		t.Fatalf("generate %s: %v", spec.Name, err)
	}
	return l
}

// TestSplitStitchRoundTripLossless is the stitching property test: for any
// generated layout and any band count — including one and far more than the
// die has rows — splitting and immediately stitching (zero legalization in
// between) must reproduce the input bit for bit.
func TestSplitStitchRoundTripLossless(t *testing.T) {
	layouts := []*model.Layout{
		generate(t, gen.Small(300, 0.5, 1), 1.0),
		generate(t, gen.Small(900, 0.72, 7), 1.0),
		generate(t, gen.ICCAD2017()[9], 0.01), // fft_a_md2: blockage stripes
	}
	// An odd-row, blockage-free die exercises the even-boundary rounding.
	odd := &model.Layout{Name: "odd", NumSitesX: 40, NumRows: 9, RowHeight: 8}
	for i := 0; i < 12; i++ {
		odd.Cells = append(odd.Cells, model.Cell{
			ID: i, Name: fmt.Sprintf("c%d", i),
			X: i * 3, Y: i % 6, GX: i * 3, GY: i % 6,
			W: 2, H: 1 + i%3, Parity: model.ParityAny,
		})
	}
	layouts = append(layouts, odd)

	for li, l := range layouts {
		want := encode(t, l)
		for _, k := range []int{1, 2, 7, 1000} { // 1000 >> any test die's rows
			for _, halo := range []int{0, 2, 5} {
				p, err := PlanBands(l, k, halo)
				if err != nil {
					t.Fatalf("layout %d: PlanBands(%d, %d): %v", li, k, halo, err)
				}
				bands, err := Split(l, p)
				if err != nil {
					t.Fatalf("layout %d: Split k=%d: %v", li, k, err)
				}
				got, err := Stitch(l, p, bands)
				if err != nil {
					t.Fatalf("layout %d: Stitch k=%d: %v", li, k, err)
				}
				if !bytes.Equal(want, encode(t, got)) {
					t.Fatalf("layout %d (%s): split→stitch not lossless at k=%d halo=%d",
						li, l.Name, k, halo)
				}
				if !bytes.Equal(want, encode(t, l)) {
					t.Fatalf("layout %d: split/stitch mutated the input at k=%d", li, k)
				}
			}
		}
	}
}

// TestPlanPartitionInvariants checks the plan's structural contract: bands
// partition the rows on even boundaries, every band holds the tallest cell,
// and every movable cell is owned by exactly one band that it fits in.
func TestPlanPartitionInvariants(t *testing.T) {
	l := generate(t, gen.Small(800, 0.6, 3), 1.0)
	for _, k := range []int{1, 2, 3, 7, 64, 10000} {
		p, err := PlanBands(l, k, 2)
		if err != nil {
			t.Fatalf("PlanBands(%d): %v", k, err)
		}
		minRows := minBandRows(l)
		prev := 0
		for _, b := range p.Bands {
			if b.LoRow != prev {
				t.Fatalf("k=%d: band %d starts at %d, want %d", k, b.Index, b.LoRow, prev)
			}
			if b.LoRow%2 != 0 {
				t.Fatalf("k=%d: band %d starts on odd row %d", k, b.Index, b.LoRow)
			}
			if b.Rows() < minRows {
				t.Fatalf("k=%d: band %d is %d rows, min %d", k, b.Index, b.Rows(), minRows)
			}
			prev = b.HiRow
		}
		if prev != l.NumRows {
			t.Fatalf("k=%d: bands end at %d, want %d", k, prev, l.NumRows)
		}
		owned := make([]int, len(l.Cells))
		movable := 0
		for _, b := range p.Bands {
			for _, src := range b.Source {
				if src >= 0 {
					owned[src]++
				}
			}
			movable += b.Movable
		}
		for i := range l.Cells {
			want := 1
			if l.Cells[i].Fixed {
				want = 0
			}
			if owned[i] != want {
				t.Fatalf("k=%d: cell %d owned by %d bands, want %d", k, i, owned[i], want)
			}
		}
		if want := len(l.MovableIDs()); movable != want {
			t.Fatalf("k=%d: plan owns %d movable cells, want %d", k, movable, want)
		}
	}
}

// TestSingleBandSplitEqualsClone: a one-band split must be cell-for-cell
// identical to the input, so shards=1 runs cannot diverge from the
// unsharded path.
func TestSingleBandSplitEqualsClone(t *testing.T) {
	l := generate(t, gen.Small(400, 0.55, 5), 1.0)
	p, err := PlanBands(l, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	bands, err := Split(l, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(bands) != 1 {
		t.Fatalf("got %d bands, want 1", len(bands))
	}
	if !bytes.Equal(encode(t, l), encode(t, bands[0])) {
		t.Fatal("single-band split differs from the input layout")
	}
}

// TestShardedLegalizationStitchesLegal legalizes each band independently
// and checks the stitched result is a legal layout of the original die —
// the disjoint-window guarantee sharded runs rest on.
func TestShardedLegalizationStitchesLegal(t *testing.T) {
	l := generate(t, gen.Small(1200, 0.6, 11), 1.0)
	for _, k := range []int{2, 4} {
		p, err := PlanBands(l, k, 2)
		if err != nil {
			t.Fatal(err)
		}
		bands, err := Split(l, p)
		if err != nil {
			t.Fatal(err)
		}
		legalized := make([]*model.Layout, len(bands))
		for b, bl := range bands {
			res := mgl.Legalize(bl, mgl.Config{})
			if !res.Legal {
				t.Fatalf("k=%d: band %d did not legalize: %v", k, b, res.Violations)
			}
			legalized[b] = res.Layout
		}
		got, err := Stitch(l, p, legalized)
		if err != nil {
			t.Fatal(err)
		}
		if vs := got.Check(0); len(vs) > 0 {
			t.Fatalf("k=%d: stitched layout has %d violations, first %v", k, len(vs), vs[0])
		}
	}
}

// TestHaloReassignsSeamCrossers: with a halo, a tall cell whose global span
// pokes just over a seam is owned by the upper band; with halo 0 it stays
// in the band of its bottom row.
func TestHaloReassignsSeamCrossers(t *testing.T) {
	// 16 rows, one 4-row cell whose GY sits one row under the k=2 seam (8).
	l := &model.Layout{Name: "seam", NumSitesX: 64, NumRows: 16, RowHeight: 8}
	l.Cells = []model.Cell{
		{ID: 0, Name: "tall", X: 0, Y: 7, GX: 0, GY: 7, W: 4, H: 4, Parity: model.ParityAny},
		{ID: 1, Name: "low", X: 10, Y: 1, GX: 10, GY: 1, W: 3, H: 1, Parity: model.ParityAny},
		{ID: 2, Name: "high", X: 20, Y: 12, GX: 20, GY: 12, W: 3, H: 1, Parity: model.ParityAny},
	}
	ownerOf := func(p *Plan, id int) int {
		for _, b := range p.Bands {
			for _, src := range b.Source {
				if src == id {
					return b.Index
				}
			}
		}
		return -1
	}
	p0, err := PlanBands(l, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := ownerOf(p0, 0); got != 0 {
		t.Fatalf("halo 0: tall cell owned by band %d, want 0", got)
	}
	// GY 7, H 4 crosses seam 8 by over=3 while under=1: the upper band's
	// forced displacement (1 row) beats the lower's (3 rows) within halo 2.
	p2, err := PlanBands(l, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := ownerOf(p2, 0); got != 1 {
		t.Fatalf("halo 2: tall cell owned by band %d, want 1", got)
	}
	for _, p := range []*Plan{p0, p2} {
		if got := ownerOf(p, 1); got != 0 {
			t.Fatalf("low cell owned by band %d, want 0", got)
		}
		if got := ownerOf(p, 2); got != 1 {
			t.Fatalf("high cell owned by band %d, want 1", got)
		}
	}
}

// TestStitchRejectsMismatches: shape mismatches must fail loudly, not
// corrupt a layout.
func TestStitchRejectsMismatches(t *testing.T) {
	l := generate(t, gen.Small(200, 0.5, 2), 1.0)
	p, err := PlanBands(l, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	bands, err := Split(l, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Stitch(l, p, bands[:1]); err == nil {
		t.Fatal("Stitch accepted a short band slice")
	}
	other := generate(t, gen.Small(300, 0.5, 9), 1.0)
	if _, err := Stitch(other, p, bands); err == nil {
		t.Fatal("Stitch accepted a mismatched layout")
	}
	if _, err := Split(other, p); err == nil {
		t.Fatal("Split accepted a mismatched layout")
	}
	clipped := *bands[0]
	clipped.Cells = clipped.Cells[:len(clipped.Cells)-1]
	if _, err := Stitch(l, p, []*model.Layout{&clipped, bands[1]}); err == nil {
		t.Fatal("Stitch accepted a band with missing cells")
	}
}
