// Package shard partitions a layout into independent horizontal row bands
// so that one oversized design can be legalized as many smaller jobs — the
// repo's path to paper-scale (scale 1.0) superblue runs, where a single
// worker's memory share cannot hold the whole layout. The decomposition
// mirrors how OpenPARF splits large heterogeneous placements into
// independently-optimized regions and how SYNERGY virtualizes one physical
// FPGA across partitioned workloads.
//
// The lifecycle is Plan → Split → legalize each band → Stitch:
//
//   - PlanBands chooses K contiguous row windows that partition the die.
//     Boundaries land on even rows so P/G rail parity (model.PGParity) means
//     the same thing inside a band as in the whole die, and every band is
//     tall enough to hold the tallest cell. Each movable cell is owned by
//     exactly one band — normally the band containing its global-placement
//     row, with a configurable halo that lets a cell whose span crosses a
//     seam be bumped to the upper band when that strictly shrinks its
//     unavoidable clamp displacement.
//   - Split materializes one self-contained model.Layout per band: owned
//     movable cells shifted into band coordinates, plus every fixed cell
//     clipped to the window (clipped fragments turn ParityAny — rail
//     alignment is meaningless for a fragment). Original cell order is
//     preserved, so a single-band split is cell-for-cell identical to a
//     Clone of the input.
//   - Stitch copies the bands' legalized positions back onto a clone of the
//     original layout. Because band windows are disjoint in rows and fixed
//     cells never move, K individually legal bands stitch into one legal
//     layout. With zero legalization in between, Split→Stitch is lossless:
//     the round trip reproduces the input bit for bit.
//
// Everything here is deterministic: for a fixed (layout, K, halo) the plan,
// the band layouts, and the stitched result are identical however the band
// jobs are scheduled.
package shard

import (
	"fmt"

	"github.com/flex-eda/flex/internal/model"
)

// Band is one horizontal slice of the plan: the owned row window
// [LoRow, HiRow) in die coordinates, plus the mapping from the band
// layout's cell indices back to the original layout's cell IDs.
type Band struct {
	// Index is the band's position in the plan, bottom to top.
	Index int
	// LoRow (inclusive, always even) and HiRow (exclusive) bound the rows
	// this band owns. Bands partition [0, NumRows).
	LoRow, HiRow int
	// Source maps each cell of the band layout, in order, to the original
	// layout's cell ID — or -1 for fixed context cells (clipped blockage
	// fragments), which Stitch never copies back.
	Source []int
	// Movable counts the band's owned movable cells.
	Movable int
}

// Rows returns the band's owned height in rows.
func (b Band) Rows() int { return b.HiRow - b.LoRow }

// Plan is a complete row-band decomposition of one layout.
type Plan struct {
	// Bands partition the die's rows, bottom to top. The effective band
	// count may be lower than requested when the die is too short.
	Bands []Band
	// Halo is the seam-crossing reassignment window the plan was built
	// with, in rows (see PlanBands).
	Halo int
	// NumRows and Cells echo the planned layout's shape so Split and
	// Stitch can reject a mismatched layout.
	NumRows int
	Cells   int
}

// minBandRows returns the smallest legal band height for the layout: at
// least the tallest movable cell (so every owned cell fits any band) and at
// least 2 (so boundaries can stay even). Fixed cells don't constrain the
// height — full-die blockage stripes are clipped to each window.
func minBandRows(l *model.Layout) int {
	h := 2
	for i := range l.Cells {
		if c := &l.Cells[i]; !c.Fixed && c.H > h {
			h = c.H
		}
	}
	return h
}

// PlanBands decomposes l into (up to) k horizontal bands with the given
// halo. k is clamped to what the die can hold — every band must span at
// least the tallest cell's height, on even boundaries — so any k >= 1 is
// accepted, including k larger than the row count (which degrades to fewer
// bands, in the limit one). halo is the number of rows below a seam within
// which a seam-crossing cell may be reassigned to the band above when that
// strictly reduces the displacement the seam forces on it; halo < 0 is
// treated as 0.
//
// Ownership is deterministic: a movable cell belongs to the band containing
// its clamped global-placement bottom row, modulo the halo rule above.
func PlanBands(l *model.Layout, k, halo int) (*Plan, error) {
	if l == nil {
		return nil, fmt.Errorf("shard: nil layout")
	}
	if k < 1 {
		return nil, fmt.Errorf("shard: band count must be >= 1, got %d", k)
	}
	if l.NumRows < 1 {
		return nil, fmt.Errorf("shard: layout has no rows")
	}
	if halo < 0 {
		halo = 0
	}
	minRows := minBandRows(l)
	if maxK := l.NumRows / minRows; k > maxK {
		k = maxK
	}
	if k < 1 {
		k = 1
	}
	bounds := bandBounds(l.NumRows, k, minRows)
	k = len(bounds) - 1

	p := &Plan{Halo: halo, NumRows: l.NumRows, Cells: len(l.Cells)}
	p.Bands = make([]Band, k)
	for b := 0; b < k; b++ {
		p.Bands[b] = Band{Index: b, LoRow: bounds[b], HiRow: bounds[b+1]}
	}
	assign(l, p)
	return p, nil
}

// bandBounds splits numRows into k windows of near-equal height with even
// lower boundaries, each at least minRows tall. It retries with fewer bands
// when rounding starves one, so the result always satisfies the invariant.
func bandBounds(numRows, k, minRows int) []int {
	for ; k > 1; k-- {
		bounds := make([]int, k+1)
		ok := true
		for i := 1; i < k; i++ {
			b := numRows * i / k
			b -= b % 2 // parity: band coordinates must preserve row parity
			bounds[i] = b
			if bounds[i]-bounds[i-1] < minRows {
				ok = false
				break
			}
		}
		bounds[k] = numRows
		if ok && bounds[k]-bounds[k-1] >= minRows {
			return bounds
		}
	}
	return []int{0, numRows}
}

// assign fills each band's Source map: fixed cells join every band they
// intersect (as context), movable cells join exactly the band that owns
// them.
func assign(l *model.Layout, p *Plan) {
	k := len(p.Bands)
	for i := range l.Cells {
		c := &l.Cells[i]
		if c.Fixed {
			for b := range p.Bands {
				if c.Y < p.Bands[b].HiRow && c.Y+c.H > p.Bands[b].LoRow {
					p.Bands[b].Source = append(p.Bands[b].Source, -1-i)
				}
			}
			continue
		}
		b := bandOf(p, clamp(c.GY, 0, p.NumRows-1))
		// Halo rule: a cell poking over its band's upper seam may move up
		// one band when its global row is within halo rows of the seam and
		// the upper band's forced displacement is strictly smaller.
		if p.Halo > 0 && b+1 < k {
			seam := p.Bands[b].HiRow
			if over := c.GY + c.H - seam; over > 0 {
				if under := seam - c.GY; under <= p.Halo && under < over {
					b++
				}
			}
		}
		p.Bands[b].Source = append(p.Bands[b].Source, i)
		p.Bands[b].Movable++
	}
}

// bandOf returns the index of the band owning row y.
func bandOf(p *Plan, y int) int {
	for b := range p.Bands {
		if y < p.Bands[b].HiRow {
			return b
		}
	}
	return len(p.Bands) - 1
}

// Split materializes the plan's band layouts. Each band is a self-contained
// layout in band coordinates (rows shifted down by LoRow): the band's owned
// movable cells in original order interleaved with every fixed cell clipped
// to the window. Owned cells keep their true global-placement row whenever
// it lies inside the window and are clamped onto it otherwise (the
// displacement cost the plan's halo rule minimizes). With one band the
// split layout is cell-for-cell identical to a Clone of l.
func Split(l *model.Layout, p *Plan) ([]*model.Layout, error) {
	if err := p.check(l); err != nil {
		return nil, err
	}
	out := make([]*model.Layout, len(p.Bands))
	for b := range p.Bands {
		band := &p.Bands[b]
		bl := &model.Layout{
			Name:      l.Name,
			NumSitesX: l.NumSitesX,
			NumRows:   band.Rows(),
			RowHeight: l.RowHeight,
			Cells:     make([]model.Cell, 0, len(band.Source)),
		}
		for _, src := range band.Source {
			var c model.Cell
			if src < 0 { // fixed context cell, clipped to the window
				c = l.Cells[-1-src]
				lo, hi := c.Y, c.Y+c.H
				if lo < band.LoRow {
					lo = band.LoRow
				}
				if hi > band.HiRow {
					hi = band.HiRow
				}
				if lo != c.Y || hi != c.Y+c.H {
					// A fragment's P/G alignment is meaningless; Any keeps
					// the band layout legality-checkable.
					c.Parity = model.ParityAny
				}
				c.Y, c.H = lo-band.LoRow, hi-lo
				c.GY = c.Y
			} else {
				c = l.Cells[src]
				c.Y -= band.LoRow
				c.GY = clamp(c.GY, band.LoRow, band.HiRow-c.H) - band.LoRow
			}
			c.ID = len(bl.Cells)
			bl.Cells = append(bl.Cells, c)
		}
		out[b] = bl
	}
	return out, nil
}

// Stitch copies the bands' movable-cell positions back onto a clone of the
// original layout, translating band coordinates to die coordinates. Fixed
// cells and every other field come from the original, so a split whose
// bands were never legalized stitches back bit-for-bit. The bands slice
// must come from Split on the same (layout, plan) pair; a band slot may be
// nil only when its band owns no movable cells.
func Stitch(l *model.Layout, p *Plan, bands []*model.Layout) (*model.Layout, error) {
	if err := p.check(l); err != nil {
		return nil, err
	}
	if len(bands) != len(p.Bands) {
		return nil, fmt.Errorf("shard: got %d band layouts for a %d-band plan", len(bands), len(p.Bands))
	}
	out := l.Clone()
	for b, bl := range bands {
		band := &p.Bands[b]
		if bl == nil {
			if band.Movable > 0 {
				return nil, fmt.Errorf("shard: band %d layout missing (%d owned cells)", b, band.Movable)
			}
			continue
		}
		if len(bl.Cells) != len(band.Source) {
			return nil, fmt.Errorf("shard: band %d has %d cells, plan expects %d", b, len(bl.Cells), len(band.Source))
		}
		for i, src := range band.Source {
			if src < 0 {
				continue
			}
			out.Cells[src].X = bl.Cells[i].X
			out.Cells[src].Y = bl.Cells[i].Y + band.LoRow
		}
	}
	return out, nil
}

// check rejects a layout that does not match the plan's shape.
func (p *Plan) check(l *model.Layout) error {
	if l == nil || p == nil {
		return fmt.Errorf("shard: nil layout or plan")
	}
	if l.NumRows != p.NumRows || len(l.Cells) != p.Cells {
		return fmt.Errorf("shard: layout (%d rows, %d cells) does not match plan (%d rows, %d cells)",
			l.NumRows, len(l.Cells), p.NumRows, p.Cells)
	}
	return nil
}

func clamp(v, lo, hi int) int {
	if hi < lo {
		hi = lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
