package analytical

import (
	"testing"

	"github.com/flex-eda/flex/internal/model"
)

func TestAnalyticalEmptyLayout(t *testing.T) {
	l := &model.Layout{Name: "empty", NumSitesX: 10, NumRows: 4, RowHeight: 8}
	res := Legalize(l, Config{})
	if !res.Legal {
		t.Fatal("empty layout illegal")
	}
}

func TestAnalyticalSingleRowDesign(t *testing.T) {
	// Only single-height cells: the consensus loop degenerates to pure
	// per-row Abacus, which must be clean.
	l := &model.Layout{Name: "flat", NumSitesX: 120, NumRows: 4, RowHeight: 8}
	for i := 0; i < 20; i++ {
		x := (i % 5) * 20
		y := i / 5
		l.Cells = append(l.Cells, model.Cell{
			ID: i, Name: "c", X: x, Y: y, GX: x + 2, GY: y, W: 6, H: 1,
			Parity: model.ParityAny,
		})
	}
	res := Legalize(l, Config{Iterations: 8})
	if !res.Legal {
		t.Fatalf("single-height design illegal: %v", res.Violations)
	}
	if res.Metrics.AveDis > 2 {
		t.Fatalf("single-height design displaced too much: %v", res.Metrics.AveDis)
	}
}

func TestAnalyticalWithBlockageStripe(t *testing.T) {
	l := &model.Layout{Name: "stripe", NumSitesX: 100, NumRows: 6, RowHeight: 8}
	l.Cells = append(l.Cells, model.Cell{
		ID: 0, Name: "blk", X: 48, Y: 0, GX: 48, GY: 0, W: 4, H: 6, Fixed: true,
	})
	for i := 1; i <= 16; i++ {
		x := ((i - 1) % 4) * 11
		if i > 8 {
			x += 54 // right panel
		}
		y := ((i - 1) / 4) % 2 * 2
		l.Cells = append(l.Cells, model.Cell{
			ID: i, Name: "c", X: x, Y: y, GX: x, GY: y, W: 5, H: 2,
			Parity: model.ParityEven,
		})
	}
	res := Legalize(l, Config{Iterations: 6})
	if !res.Legal {
		t.Fatalf("striped design illegal: %v (failed=%d)", res.Violations, res.Failed)
	}
	// No cell may sit on the stripe.
	for i := 1; i < len(res.Layout.Cells); i++ {
		c := &res.Layout.Cells[i]
		if c.X+c.W > 48 && c.X < 52 {
			t.Fatalf("cell %d overlaps the blockage stripe at x=%d", i, c.X)
		}
	}
}

func TestRepairRelocatesOffenders(t *testing.T) {
	// Hand-made overlap: two cells on the same spot in a roomy die.
	l := &model.Layout{Name: "pair", NumSitesX: 60, NumRows: 4, RowHeight: 8}
	for i := 0; i < 2; i++ {
		l.Cells = append(l.Cells, model.Cell{
			ID: i, Name: "c", X: 10, Y: 0, GX: 10, GY: 0, W: 4, H: 1,
			Parity: model.ParityAny,
		})
	}
	moved, rest := repair(l)
	if rest != 0 {
		t.Fatalf("repair left %d overlaps", rest)
	}
	if moved == 0 {
		t.Fatal("repair moved nothing")
	}
	if vs := l.Check(0); len(vs) != 0 {
		t.Fatalf("layout still illegal after repair: %v", vs)
	}
}
