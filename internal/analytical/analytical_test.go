package analytical

import (
	"testing"

	"github.com/flex-eda/flex/internal/core"
	"github.com/flex-eda/flex/internal/gen"
	"github.com/flex-eda/flex/internal/model"
)

func testLayout(t *testing.T, n int, density float64, seed int64) *model.Layout {
	t.Helper()
	l, err := gen.Small(n, density, seed).Generate(1.0)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestAnalyticalLegalizes(t *testing.T) {
	for _, tc := range []struct {
		n    int
		den  float64
		seed int64
	}{
		{300, 0.45, 401},
		{300, 0.6, 402},
		{250, 0.75, 403},
	} {
		l := testLayout(t, tc.n, tc.den, tc.seed)
		res := Legalize(l, Config{})
		if !res.Legal {
			t.Fatalf("den=%.2f seed=%d: illegal (failed=%d, violations=%v)",
				tc.den, tc.seed, res.Failed, res.Violations)
		}
		if res.Stats.Iterations == 0 || res.Stats.RowSolves == 0 {
			t.Fatalf("solver did no work: %+v", res.Stats)
		}
	}
}

func TestAnalyticalDeterminism(t *testing.T) {
	l := testLayout(t, 250, 0.55, 404)
	a := Legalize(l, Config{})
	b := Legalize(l, Config{})
	if a.Metrics.AveDis != b.Metrics.AveDis || a.TotalSeconds != b.TotalSeconds {
		t.Fatal("analytical engine not deterministic")
	}
}

func TestAnalyticalSlowerThanFLEX(t *testing.T) {
	// Table 1 shape: the analytical GPU method is much slower than FLEX
	// (Acc(I) averages 14.7×) and no better on average displacement.
	l := testLayout(t, 400, 0.6, 405)
	an := Legalize(l, Config{})
	fx := core.Legalize(l, core.Config{})
	if an.TotalSeconds <= fx.TotalSeconds {
		t.Fatalf("analytical (%.6fs) should be slower than FLEX (%.6fs)",
			an.TotalSeconds, fx.TotalSeconds)
	}
}

func TestMoreIterationsImproveOrHold(t *testing.T) {
	l := testLayout(t, 300, 0.6, 406)
	short := Legalize(l, Config{Iterations: 4})
	long := Legalize(l, Config{Iterations: 32})
	if !long.Legal {
		t.Fatal("long run illegal")
	}
	// More iterations cost more modeled time.
	if long.TotalSeconds <= short.TotalSeconds {
		t.Fatal("iterations not reflected in modeled time")
	}
	// And should not be dramatically worse in quality.
	if long.Metrics.AveDis > short.Metrics.AveDis*1.5 {
		t.Fatalf("quality diverged with iterations: %v vs %v",
			long.Metrics.AveDis, short.Metrics.AveDis)
	}
}

func TestQualityReasonable(t *testing.T) {
	l := testLayout(t, 400, 0.55, 407)
	res := Legalize(l, Config{})
	if !res.Legal {
		t.Fatalf("illegal: %v", res.Violations)
	}
	if res.Metrics.AveDis <= 0 || res.Metrics.AveDis > 8 {
		t.Fatalf("AveDis %v implausible", res.Metrics.AveDis)
	}
}
