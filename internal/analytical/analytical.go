// Package analytical implements the purely analytical legalization baseline
// of the FLEX paper's Table 1 (ISPD'25 LEGALM: "Efficient Legalization for
// Mixed-Cell-Height Circuits with Linearized Augmented Lagrangian Method"),
// in the simplified but faithful-in-structure form the comparison needs:
//
//   - the legalization problem is relaxed into per-row quadratic programs
//     (weighted single-row placement, solved exactly by internal/abacus);
//   - multi-row cells couple rows; an augmented-Lagrangian-flavoured
//     consensus loop splits them into per-row subcells, solves all rows
//     independently, and averages the copies back together with the
//     original anchor, with the coupling weight growing per iteration;
//   - a final projection pass snaps the relaxed solution to a legal layout
//     (row-load balancing, then a bidirectional frontier sweep per panel).
//
// Runtime is modeled on an A800-class device: every iteration solves all
// rows in parallel, paying a kernel launch and a consensus synchronization,
// which is why the method lands an order of magnitude behind FLEX on
// runtime despite the hardware (the paper's Acc(I) column).
package analytical

import (
	"math"
	"sort"

	"github.com/flex-eda/flex/internal/abacus"
	"github.com/flex-eda/flex/internal/fop"
	"github.com/flex-eda/flex/internal/geom"
	"github.com/flex-eda/flex/internal/model"
	"github.com/flex-eda/flex/internal/region"
	"github.com/flex-eda/flex/internal/shift"
)

// Config parameterizes the consensus loop and the device model.
type Config struct {
	Iterations int     // consensus iterations (0 = 24)
	Rho        float64 // initial coupling weight (0 = 1.5)
	RhoGrowth  float64 // per-iteration multiplicative growth (0 = 1.15)
	// Device model (defaults approximate an NVIDIA A800).
	NsPerUnit    float64 // per-work-unit row-solver cost (0 = 0.9)
	KernelLaunch float64 // seconds per iteration kernel launch (0 = 25e-6)
	SyncPerIter  float64 // consensus + residual sync per iteration (0 = 180e-6)
}

func (c Config) withDefaults() Config {
	if c.Iterations == 0 {
		c.Iterations = 60
	}
	if c.Rho == 0 {
		c.Rho = 1.5
	}
	if c.RhoGrowth == 0 {
		c.RhoGrowth = 1.08
	}
	if c.NsPerUnit == 0 {
		// Per subcell item per outer iteration, covering the inner
		// linearized-AL line searches the outer iteration amortizes.
		c.NsPerUnit = 800
	}
	if c.KernelLaunch == 0 {
		c.KernelLaunch = 25e-6
	}
	if c.SyncPerIter == 0 {
		c.SyncPerIter = 180e-6
	}
	return c
}

// Stats records the solver's behaviour.
type Stats struct {
	Iterations    int
	RowSolves     int64
	SubcellItems  int64   // total items through the row solver
	Rebalanced    int64   // cells moved by the row-load balancer
	Repaired      int64   // cells relocated by the final fix-up pass
	MaxResidual   float64 // final max |row copy − consensus| residual
	ComputeSecond float64 // device compute time
	SyncSeconds   float64 // launches + synchronization
}

// Result is a finished analytical legalization.
type Result struct {
	Layout       *model.Layout
	Metrics      model.Metrics
	Stats        Stats
	Legal        bool
	Violations   []model.Violation
	Failed       int
	TotalSeconds float64
}

// Legalize runs the analytical baseline on a clone of l.
func Legalize(l *model.Layout, cfg Config) *Result {
	cfg = cfg.withDefaults()
	out := &Result{Layout: l.Clone()}
	ll := out.Layout

	// Pre-move: snap rows to parity; x stays at global placement.
	for i := range ll.Cells {
		c := &ll.Cells[i]
		if c.Fixed {
			continue
		}
		c.X = clamp(c.GX, 0, ll.NumSitesX-c.W)
		c.Y = snapRow(c.GY, c.H, c.Parity, ll.NumRows)
	}

	segs := buildSegments(ll)
	out.Stats.Rebalanced = balance(ll, segs)

	rho := cfg.Rho
	for iter := 0; iter < cfg.Iterations; iter++ {
		out.Stats.Iterations++
		assignCells(ll, segs)
		iterItems := 0.0
		zsum := make([]float64, len(ll.Cells))
		zcnt := make([]int, len(ll.Cells))
		maxRes := 0.0

		for row := 0; row < ll.NumRows; row++ {
			for _, seg := range segs[row] {
				if len(seg.cells) == 0 {
					continue
				}
				items := make([]abacus.Item, 0, len(seg.cells))
				for _, id := range seg.cells {
					c := &ll.Cells[id]
					// Row copies blend the consensus position with the
					// original anchor; taller cells weigh more because
					// they couple more rows.
					ref := (float64(c.GX) + rho*float64(c.X)) / (1 + rho)
					items = append(items, abacus.Item{
						ID: id, GX: int(math.Round(ref)), W: c.W,
						Weight: float64(c.H),
					})
				}
				sort.SliceStable(items, func(a, b int) bool {
					if items[a].GX != items[b].GX {
						return items[a].GX < items[b].GX
					}
					return items[a].ID < items[b].ID
				})
				pos, ok := abacus.Place(items, seg.lo, seg.hi)
				out.Stats.RowSolves++
				out.Stats.SubcellItems += int64(len(items))
				iterItems += float64(len(items))
				if !ok {
					continue // overfull segment: projection handles it
				}
				for k, it := range items {
					zsum[it.ID] += float64(pos[k])
					zcnt[it.ID]++
					if r := math.Abs(float64(pos[k]) - float64(ll.Cells[it.ID].X)); r > maxRes {
						maxRes = r
					}
				}
			}
		}

		// Consensus: average the row copies with the anchor.
		for i := range ll.Cells {
			c := &ll.Cells[i]
			if c.Fixed || zcnt[i] == 0 {
				continue
			}
			xbar := (float64(c.GX) + rho*zsum[i]) / (1 + rho*float64(zcnt[i]))
			c.X = clamp(int(math.Round(xbar)), 0, ll.NumSitesX-c.W)
		}
		out.Stats.MaxResidual = maxRes
		// Device time: the row solves are parallel, but the per-item
		// inner-iteration work dominates and the projection/consensus
		// kernels stream every subcell.
		out.Stats.ComputeSecond += iterItems * cfg.NsPerUnit * 1e-9
		out.Stats.SyncSeconds += cfg.KernelLaunch + cfg.SyncPerIter
		rho *= cfg.RhoGrowth
	}

	project(ll, segs)
	out.Stats.Repaired, out.Failed = repair(ll)
	out.Metrics = model.Measure(ll)
	out.Violations = ll.Check(16)
	out.Legal = len(out.Violations) == 0 && out.Failed == 0
	out.TotalSeconds = out.Stats.ComputeSecond + out.Stats.SyncSeconds
	return out
}

// repair relocates cells still overlapping after projection to the nearest
// legal free slot (the greedy fix-up pass every analytical legalizer ends
// with). Returns (relocated, unplaceable).
func repair(l *model.Layout) (int64, int) {
	var relocated int64
	for attempt := 0; attempt < 8; attempt++ {
		vs := l.Check(0)
		offenders := map[int]bool{}
		for _, v := range vs {
			if v.Kind != "overlap" {
				continue
			}
			// Move the smaller of the pair.
			a, b := v.CellA, v.CellB
			pick := a
			if !l.Cells[a].Fixed && !l.Cells[b].Fixed {
				if l.Cells[b].Area() < l.Cells[a].Area() {
					pick = b
				}
			} else if l.Cells[a].Fixed {
				pick = b
			}
			if !l.Cells[pick].Fixed {
				offenders[pick] = true
			}
		}
		if len(offenders) == 0 {
			return relocated, 0
		}
		ids := make([]int, 0, len(offenders))
		for id := range offenders {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			if relocate(l, id) || forcePlace(l, id) {
				relocated++
			}
		}
	}
	// Count what is still broken.
	rest := 0
	for _, v := range l.Check(0) {
		if v.Kind == "overlap" {
			rest++
		}
	}
	return relocated, rest
}

// forcePlace handles offenders for which no free gap exists: it runs one
// MGL-style FOP placement (internal/fop) that shifts neighbours aside —
// the local-legalization ending dense analytical flows need.
func forcePlace(l *model.Layout, id int) bool {
	c := &l.Cells[id]
	placed := make([]bool, len(l.Cells))
	for i := range placed {
		placed[i] = i != id
	}
	tg := fop.Target{GX: c.GX, GY: c.GY, W: c.W, H: c.H,
		ParityOK: c.Parity.AllowsRow, RowHeight: l.RowHeight}
	for n := 0; n <= 4; n++ {
		w := maxI(8*c.W, 64) << uint(n)
		h := maxI(4*c.H, 6) << uint(n)
		win := geom.NewRect(c.GX+c.W/2-w/2, c.GY+c.H/2-h/2, w, h)
		if n == 4 {
			win = l.Die()
		}
		reg := region.Extract(l, placed, id, win)
		cand := fop.Best(reg, tg, fop.Options{}, nil)
		if !cand.Feasible {
			continue
		}
		p := shift.Placement{TX: cand.X, TY: cand.Y, TW: c.W, TH: c.H, Boundary2: cand.Boundary2}
		if !shift.SACS(reg, p, nil) {
			continue
		}
		for i := range reg.Cells {
			l.Cells[reg.Cells[i].ID].X = reg.Cells[i].X
		}
		c.X, c.Y = cand.X, cand.Y
		return true
	}
	return false
}

// relocate moves cell id to the nearest free legal slot, treating every
// other cell as an obstacle.
func relocate(l *model.Layout, id int) bool {
	c := &l.Cells[id]
	type iv struct{ lo, hi int }
	rowIv := make([][]iv, l.NumRows)
	for i := range l.Cells {
		if i == id {
			continue
		}
		o := &l.Cells[i]
		for row := maxI(0, o.Y); row < minI(l.NumRows, o.Y+o.H); row++ {
			rowIv[row] = append(rowIv[row], iv{o.X, o.X + o.W})
		}
	}
	bestX, bestY, bestCost := -1, -1, 1<<60
	for y := 0; y+c.H <= l.NumRows; y++ {
		if !c.Parity.AllowsRow(y) {
			continue
		}
		dyCost := l.RowHeight * absI(y-c.GY)
		if dyCost >= bestCost {
			continue
		}
		// Merge the blocked intervals of the row span.
		var blocked []iv
		for row := y; row < y+c.H; row++ {
			blocked = append(blocked, rowIv[row]...)
		}
		sort.Slice(blocked, func(a, b int) bool { return blocked[a].lo < blocked[b].lo })
		cur := 0
		tryGap := func(lo, hi int) {
			if hi-lo < c.W {
				return
			}
			x := clamp(c.GX, lo, hi-c.W)
			cost := dyCost + absI(x-c.GX)
			if cost < bestCost {
				bestX, bestY, bestCost = x, y, cost
			}
		}
		for _, b := range blocked {
			if b.lo > cur {
				tryGap(cur, b.lo)
			}
			if b.hi > cur {
				cur = b.hi
			}
		}
		tryGap(cur, l.NumSitesX)
	}
	if bestY < 0 {
		return false
	}
	c.X, c.Y = bestX, bestY
	return true
}

type segment struct {
	lo, hi int
	cells  []int
}

// buildSegments computes free runs per row from fixed cells and assigns
// movable cells to them.
func buildSegments(l *model.Layout) [][]segment {
	segs := make([][]segment, l.NumRows)
	type iv struct{ lo, hi int }
	blocked := make([][]iv, l.NumRows)
	for i := range l.Cells {
		c := &l.Cells[i]
		if !c.Fixed {
			continue
		}
		for row := maxI(0, c.Y); row < minI(l.NumRows, c.Y+c.H); row++ {
			blocked[row] = append(blocked[row], iv{c.X, c.X + c.W})
		}
	}
	for row := 0; row < l.NumRows; row++ {
		ivs := blocked[row]
		sort.Slice(ivs, func(a, b int) bool { return ivs[a].lo < ivs[b].lo })
		cur := 0
		for _, b := range ivs {
			if b.lo > cur {
				segs[row] = append(segs[row], segment{lo: cur, hi: b.lo})
			}
			if b.hi > cur {
				cur = b.hi
			}
		}
		if cur < l.NumSitesX {
			segs[row] = append(segs[row], segment{lo: cur, hi: l.NumSitesX})
		}
	}
	assignCells(l, segs)
	return segs
}

// assignCells (re)assigns every movable cell to the segments of the rows it
// occupies, snapping x into the bottom row's best segment.
func assignCells(l *model.Layout, segs [][]segment) {
	for row := range segs {
		for si := range segs[row] {
			segs[row][si].cells = segs[row][si].cells[:0]
		}
	}
	for i := range l.Cells {
		c := &l.Cells[i]
		if c.Fixed {
			continue
		}
		si := bestSegment(segs[c.Y], c.X, c.W)
		if si < 0 {
			continue
		}
		sg := segs[c.Y][si]
		c.X = clamp(c.X, sg.lo, sg.hi-c.W)
		for row := c.Y; row < minI(l.NumRows, c.Y+c.H); row++ {
			if sj := segmentContaining(segs[row], c.X, c.W); sj >= 0 {
				segs[row][sj].cells = append(segs[row][sj].cells, i)
			}
		}
	}
}

func bestSegment(row []segment, x, w int) int {
	best, bestDist := -1, 1<<60
	for i, s := range row {
		if s.hi-s.lo < w {
			continue
		}
		cx := clamp(x, s.lo, s.hi-w)
		d := absI(cx - x)
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

func segmentContaining(row []segment, x, w int) int {
	for i, s := range row {
		if x >= s.lo && x+w <= s.hi {
			return i
		}
	}
	return -1
}

// balance moves narrow single-row cells out of overfull segments into the
// nearest segment with spare capacity. Returns the number of moves.
func balance(l *model.Layout, segs [][]segment) int64 {
	var moves int64
	load := func(s *segment) int {
		total := 0
		for _, id := range s.cells {
			total += l.Cells[id].W
		}
		return total
	}
	for row := 0; row < l.NumRows; row++ {
		for si := range segs[row] {
			s := &segs[row][si]
			for load(s) > (s.hi-s.lo)*96/100 {
				pick := -1
				for k, id := range s.cells {
					c := &l.Cells[id]
					if c.H != 1 {
						continue
					}
					if pick < 0 || c.W < l.Cells[s.cells[pick]].W {
						pick = k
					}
				}
				if pick < 0 {
					break
				}
				id := s.cells[pick]
				s.cells = append(s.cells[:pick], s.cells[pick+1:]...)
				if !rehome(l, segs, id, row) {
					s.cells = append(s.cells, id)
					break
				}
				moves++
			}
		}
	}
	return moves
}

// rehome finds the nearest parity-legal row segment with room for cell id.
func rehome(l *model.Layout, segs [][]segment, id, fromRow int) bool {
	c := &l.Cells[id]
	for d := 1; d < l.NumRows; d++ {
		for _, row := range []int{fromRow - d, fromRow + d} {
			if row < 0 || row+c.H > l.NumRows || !c.Parity.AllowsRow(row) {
				continue
			}
			for si := range segs[row] {
				s := &segs[row][si]
				total := 0
				for _, o := range s.cells {
					total += l.Cells[o].W
				}
				if total+c.W <= (s.hi-s.lo)*94/100 {
					c.Y = row
					c.X = clamp(c.X, s.lo, s.hi-c.W)
					s.cells = append(s.cells, id)
					return true
				}
			}
		}
	}
	return false
}

// project snaps the relaxed solution to a legal layout. Cells are grouped
// into vertical panels (the x ranges between full-height blockages), then
// packed per panel with a forward frontier sweep and a backward repair
// sweep. Residual overlaps (overfull row spans) are left for repair.
func project(l *model.Layout, segs [][]segment) int {
	assignCells(l, segs)

	// Panels from the bottom row's segments; the benchmark generator's
	// blockages are full-height stripes, so panels are valid die-wide.
	panels := make([]segment, len(segs[0]))
	copy(panels, segs[0])
	panelOf := func(c *model.Cell) int {
		best, bestDist := -1, 1<<60
		for i, p := range panels {
			if p.hi-p.lo < c.W {
				continue
			}
			cx := clamp(c.X, p.lo, p.hi-c.W)
			if d := absI(cx - c.X); d < bestDist {
				best, bestDist = i, d
			}
		}
		return best
	}

	byPanel := make([][]int, len(panels))
	failed := 0
	for _, id := range l.MovableIDs() {
		pi := panelOf(&l.Cells[id])
		if pi < 0 {
			failed++
			continue
		}
		byPanel[pi] = append(byPanel[pi], id)
	}

	for pi, ids := range byPanel {
		p := panels[pi]
		sort.SliceStable(ids, func(a, b int) bool {
			if l.Cells[ids[a]].X != l.Cells[ids[b]].X {
				return l.Cells[ids[a]].X < l.Cells[ids[b]].X
			}
			return ids[a] < ids[b]
		})
		// Forward frontier sweep.
		frontier := make([]int, l.NumRows)
		for r := range frontier {
			frontier[r] = p.lo
		}
		for _, id := range ids {
			c := &l.Cells[id]
			x := clamp(c.X, p.lo, p.hi-c.W)
			for row := c.Y; row < c.Y+c.H; row++ {
				if frontier[row] > x {
					x = frontier[row]
				}
			}
			c.X = x // may exceed p.hi-c.W; the backward sweep repairs it
			for row := c.Y; row < c.Y+c.H; row++ {
				frontier[row] = x + c.W
			}
		}
		// Backward repair sweep.
		limit := make([]int, l.NumRows)
		for r := range limit {
			limit[r] = p.hi
		}
		for k := len(ids) - 1; k >= 0; k-- {
			c := &l.Cells[ids[k]]
			x := c.X
			for row := c.Y; row < c.Y+c.H; row++ {
				if x+c.W > limit[row] {
					x = limit[row] - c.W
				}
			}
			if x < p.lo {
				failed++
				x = p.lo
			}
			c.X = x
			for row := c.Y; row < c.Y+c.H; row++ {
				if x < limit[row] {
					limit[row] = x
				}
			}
		}
	}
	return failed
}

func snapRow(gy, h int, p model.PGParity, numRows int) int {
	y := clamp(gy, 0, numRows-h)
	if p.AllowsRow(y) {
		return y
	}
	for d := 1; ; d++ {
		if y-d >= 0 && p.AllowsRow(y-d) {
			return y - d
		}
		if y+d <= numRows-h && p.AllowsRow(y+d) {
			return y + d
		}
		if y-d < 0 && y+d > numRows-h {
			return y
		}
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if hi < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func absI(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
