// Package cache is the serving layer's memoization substrate: a
// concurrency-safe LRU bounded by resident bytes, with single-flight
// computation so concurrent misses on one key run the (expensive) producer
// exactly once.
//
// Benchmark generation in this repo is deterministic — a (design, scale,
// seed) triple always yields the same layout — so a byte-bounded cache
// turns repeated batch jobs and server requests into pointer lookups. The
// cache stores arbitrary values; callers supply each entry's size, and the
// LRU evicts from the cold end whenever the resident total would exceed the
// bound.
package cache

import (
	"container/list"
	"sync"
)

// LRU is a byte-bounded least-recently-used cache. The zero value is not
// usable; construct with New. All methods are safe for concurrent use.
type LRU struct {
	mu       sync.Mutex
	max      int64 // resident-bytes bound; <= 0 means unbounded
	ll       *list.List
	items    map[string]*list.Element
	inflight map[string]*call
	bytes    int64

	hits, misses, evictions int64
}

type entry struct {
	key  string
	v    any
	size int64
}

// call is one in-flight computation; waiters block on wg and read v/err
// after Done.
type call struct {
	wg  sync.WaitGroup
	v   any
	err error
}

// Stats is a snapshot of the cache's accounting.
type Stats struct {
	// Hits counts lookups served from a resident entry or by joining an
	// in-flight computation; Misses counts lookups that had to compute.
	Hits, Misses int64
	// Evictions counts entries dropped to stay under the byte bound.
	Evictions int64
	// Entries and Bytes describe the resident set; MaxBytes is the bound
	// (0 = unbounded).
	Entries  int
	Bytes    int64
	MaxBytes int64
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// New builds an LRU bounded to maxBytes of resident values (callers account
// sizes; keys and bookkeeping are not counted). maxBytes <= 0 means
// unbounded.
func New(maxBytes int64) *LRU {
	return &LRU{
		max:      maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*call),
	}
}

// Stats snapshots the cumulative accounting.
func (c *LRU) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: c.ll.Len(), Bytes: c.bytes, MaxBytes: c.max,
	}
}

// Len returns the number of resident entries.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the resident size total.
func (c *LRU) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Get returns the value cached under key and marks it most recently used.
// Every call counts as a hit or a miss.
func (c *LRU) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*entry).v, true
	}
	c.misses++
	return nil, false
}

// Add stores v under key with the given resident size, replacing any
// previous entry, and evicts from the cold end until the byte bound holds.
// A value larger than the whole bound is not stored at all — admitting it
// would evict everything for an entry that can never be bounded.
func (c *LRU) Add(key string, v any, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.add(key, v, size)
}

func (c *LRU) add(key string, v any, size int64) {
	if size < 0 {
		size = 0
	}
	if c.max > 0 && size > c.max {
		return
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.bytes += size - e.size
		e.v, e.size = v, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, v: v, size: size})
		c.bytes += size
	}
	for c.max > 0 && c.bytes > c.max {
		el := c.ll.Back()
		if el == nil {
			break
		}
		e := el.Value.(*entry)
		c.ll.Remove(el)
		delete(c.items, e.key)
		c.bytes -= e.size
		c.evictions++
	}
}

// Do returns the value cached under key, computing and caching it on a miss.
// Concurrent Do calls for the same key run compute exactly once: the first
// caller computes (a miss) while the rest wait and share the result (hits —
// they skipped the computation, which is what hit accounting measures).
// compute returns the value and its resident size; errors are returned to
// every waiter and never cached.
func (c *LRU) Do(key string, compute func() (any, int64, error)) (any, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		v := el.Value.(*entry).v
		c.mu.Unlock()
		return v, nil
	}
	if cl, ok := c.inflight[key]; ok {
		c.hits++
		c.mu.Unlock()
		cl.wg.Wait()
		return cl.v, cl.err
	}
	c.misses++
	cl := &call{}
	cl.wg.Add(1)
	c.inflight[key] = cl
	c.mu.Unlock()

	v, size, err := compute()
	cl.v, cl.err = v, err

	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil {
		c.add(key, v, size)
	}
	c.mu.Unlock()
	cl.wg.Done()
	return v, err
}
