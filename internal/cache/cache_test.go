package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetAddHitMissAccounting(t *testing.T) {
	c := New(1000)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Add("a", 1, 10)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}
	if st.Entries != 1 || st.Bytes != 10 || st.MaxBytes != 1000 {
		t.Fatalf("stats %+v", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
}

func TestLRUEvictionUnderByteBound(t *testing.T) {
	c := New(100)
	c.Add("a", "A", 40)
	c.Add("b", "B", 40)
	// Touch a so b becomes the LRU entry.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a vanished")
	}
	c.Add("c", "C", 40) // 120 > 100: evicts b, the cold end
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted, want b only", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes != 80 || st.Entries != 2 {
		t.Fatalf("resident %d bytes / %d entries, want 80 / 2", st.Bytes, st.Entries)
	}
}

func TestAddReplacesAndResizes(t *testing.T) {
	c := New(100)
	c.Add("a", "old", 30)
	c.Add("a", "new", 50)
	if c.Len() != 1 || c.Bytes() != 50 {
		t.Fatalf("after replace: %d entries, %d bytes", c.Len(), c.Bytes())
	}
	v, ok := c.Get("a")
	if !ok || v.(string) != "new" {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
}

func TestOversizedEntryNotStored(t *testing.T) {
	c := New(100)
	c.Add("small", 1, 60)
	c.Add("huge", 2, 101) // larger than the whole bound: dropped
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized entry was admitted")
	}
	if _, ok := c.Get("small"); !ok {
		t.Fatal("oversized insert evicted the resident set")
	}
}

func TestUnboundedCacheNeverEvicts(t *testing.T) {
	c := New(0)
	for i := 0; i < 100; i++ {
		c.Add(fmt.Sprint(i), i, 1<<20)
	}
	st := c.Stats()
	if st.Entries != 100 || st.Evictions != 0 {
		t.Fatalf("unbounded cache: %+v", st)
	}
}

func TestDoComputesOnceAndCaches(t *testing.T) {
	c := New(1000)
	var computed int
	get := func() (any, error) {
		return c.Do("k", func() (any, int64, error) {
			computed++
			return 42, 8, nil
		})
	}
	for i := 0; i < 3; i++ {
		v, err := get()
		if err != nil || v.(int) != 42 {
			t.Fatalf("Do = %v, %v", v, err)
		}
	}
	if computed != 1 {
		t.Fatalf("compute ran %d times, want 1", computed)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New(1000)
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		_, err := c.Do("k", func() (any, int64, error) {
			calls++
			return nil, 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("Do err = %v, want boom", err)
		}
	}
	if calls != 2 {
		t.Fatalf("failed compute cached: ran %d times, want 2", calls)
	}
	if c.Len() != 0 {
		t.Fatal("error value resident in cache")
	}
}

// TestDoSingleFlight drives many goroutines through one key under -race:
// exactly one compute must run, and every caller must see its value.
func TestDoSingleFlight(t *testing.T) {
	c := New(1 << 20)
	var computes atomic.Int32
	start := make(chan struct{})
	var wg sync.WaitGroup
	const goroutines = 32
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, err := c.Do("shared", func() (any, int64, error) {
				computes.Add(1)
				return "value", 5, nil
			})
			if err != nil || v.(string) != "value" {
				t.Errorf("Do = %v, %v", v, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times under contention, want 1", n)
	}
	st := c.Stats()
	if st.Hits+st.Misses != goroutines {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, goroutines)
	}
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
}

// TestConcurrentMixedAccess hammers Get/Add/Do across keys under -race.
func TestConcurrentMixedAccess(t *testing.T) {
	c := New(512)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprint((g + i) % 16)
				switch i % 3 {
				case 0:
					c.Add(key, i, 64)
				case 1:
					c.Get(key)
				default:
					if _, err := c.Do(key, func() (any, int64, error) { return i, 64, nil }); err != nil {
						t.Errorf("Do: %v", err)
					}
				}
			}
		}()
	}
	wg.Wait()
	if b := c.Bytes(); b > 512 {
		t.Fatalf("resident bytes %d exceed bound 512", b)
	}
}
