package cache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// stringCodec is the test codec: values are plain strings, resident size is
// their length.
func stringCodec() (EncodeFunc, DecodeFunc) {
	enc := func(key string, v any) ([]byte, error) {
		return json.Marshal(v.(string))
	}
	dec := func(key string, data []byte) (any, int64, error) {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return nil, 0, err
		}
		return s, int64(len(s)), nil
	}
	return enc, dec
}

func newTestDisk(t *testing.T, maxBytes int64, dir string, warn func(string, error)) *Disk {
	t.Helper()
	enc, dec := stringCodec()
	d, err := NewDisk(maxBytes, dir, enc, dec, warn)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiskPersistAndReload(t *testing.T) {
	dir := t.TempDir()
	d := newTestDisk(t, 1<<20, dir, nil)
	d.Add("k1", "v1", 2)
	d.Add("k2", "v2", 2)

	// A fresh instance over the same directory is warm without computing.
	d2 := newTestDisk(t, 1<<20, dir, nil)
	st := d2.Stats()
	if st.Loaded != 2 || st.Errors != 0 {
		t.Fatalf("loaded/errors = %d/%d, want 2/0", st.Loaded, st.Errors)
	}
	for k, want := range map[string]string{"k1": "v1", "k2": "v2"} {
		if v, ok := d2.Get(k); !ok || v.(string) != want {
			t.Fatalf("Get(%s) = %v, %v; want %q", k, v, ok, want)
		}
	}
}

func TestDiskDoSingleFlightUnderRace(t *testing.T) {
	// Concurrent Do calls on one key must run compute exactly once — the
	// rest block and share the result — even with disk persistence layered
	// underneath. Run with -race.
	d := newTestDisk(t, 1<<20, t.TempDir(), nil)
	var computes atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	const callers = 32
	results := make([]any, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v, err := d.Do("shared", func() (any, int64, error) {
				computes.Add(1)
				return "computed", 8, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i] = v
		}(i)
	}
	close(start)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for i, v := range results {
		if v != "computed" {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
	st := d.Stats()
	if st.Misses != 1 || st.Hits != callers-1 {
		t.Fatalf("hits/misses = %d/%d, want %d/1", st.Hits, st.Misses, callers-1)
	}
}

func TestDiskEvictionNeverLosesInFlightResult(t *testing.T) {
	// Eviction pressure while a computation is in flight must not affect
	// its waiters: in-flight calls live outside the LRU's resident set, and
	// every waiter reads the call's own result even if the finished entry
	// is evicted immediately. Run with -race.
	d := newTestDisk(t, 64, t.TempDir(), nil)
	computing := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err := d.Do("slow", func() (any, int64, error) {
			close(computing)
			<-release
			return "slow-value", 32, nil
		})
		if err != nil || v.(string) != "slow-value" {
			t.Errorf("slow Do = %v, %v", v, err)
		}
	}()
	<-computing
	// Churn the byte budget hard while the computation is paused, then a
	// second waiter joins the in-flight call before it finishes.
	for i := 0; i < 64; i++ {
		d.Add(fmt.Sprintf("churn-%d", i), "xxxxxxxx", 32)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err := d.Do("slow", func() (any, int64, error) {
			t.Error("second compute ran for an in-flight key")
			return nil, 0, nil
		})
		if err != nil || v.(string) != "slow-value" {
			t.Errorf("waiter Do = %v, %v", v, err)
		}
	}()
	close(release)
	wg.Wait()
	if st := d.Stats(); st.Evictions == 0 {
		t.Fatal("churn produced no evictions; the test exercised nothing")
	}
}

func TestDiskCorruptFilesWarnedNeverServed(t *testing.T) {
	dir := t.TempDir()
	d := newTestDisk(t, 1<<20, dir, nil)
	d.Add("good", "good-value", 10)
	d.Add("bad", "bad-value", 9)
	d.Add("trunc", "trunc-value", 11)

	// Corrupt one file's payload and truncate another, bypassing the cache.
	if err := os.WriteFile(d.path("bad"), []byte(`{"v":1,"key":"bad","data":12}`), 0o644); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(d.path("trunc"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.path("trunc"), full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var warned []string
	warn := func(path string, err error) {
		mu.Lock()
		defer mu.Unlock()
		warned = append(warned, filepath.Base(path))
	}
	d2 := newTestDisk(t, 1<<20, dir, warn)
	st := d2.Stats()
	if st.Loaded != 1 || st.Errors != 2 {
		t.Fatalf("loaded/errors = %d/%d, want 1/2", st.Loaded, st.Errors)
	}
	if len(warned) != 2 {
		t.Fatalf("warn called for %v, want the 2 corrupt files", warned)
	}
	if v, ok := d2.Get("good"); !ok || v.(string) != "good-value" {
		t.Fatalf("good entry lost: %v, %v", v, ok)
	}
	// The corrupt entries are recomputed, never served from the bad bytes.
	for _, key := range []string{"bad", "trunc"} {
		if _, ok := d2.Get(key); ok {
			t.Fatalf("corrupt %s entry was served", key)
		}
		var ran bool
		v, err := d2.Do(key, func() (any, int64, error) {
			ran = true
			return "fresh-" + key, 10, nil
		})
		if err != nil || !ran || v.(string) != "fresh-"+key {
			t.Fatalf("Do(%s) = %v, %v (ran=%t)", key, v, err, ran)
		}
	}
}

func TestDiskKeyMismatchRejected(t *testing.T) {
	// A file whose envelope records a different key than its content
	// address must not be served under the looked-up key (e.g. a file
	// copied between cache directories by hand).
	dir := t.TempDir()
	d := newTestDisk(t, 1<<20, dir, nil)
	d.Add("original", "value", 5)
	// Graft original's envelope onto another key's content address.
	data, err := os.ReadFile(d.path("original"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.path("grafted"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	var warned atomic.Int64
	enc, dec := stringCodec()
	d2, err := NewDisk(1<<20, dir, enc, dec, func(string, error) { warned.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	// Load-on-start accepts both files under their recorded key — fine:
	// both record "original". The lookup path must reject the graft.
	d2.lru = New(1 << 20) // force disk reads
	if _, ok := d2.Get("grafted"); ok {
		t.Fatal("grafted file served under the wrong key")
	}
	if warned.Load() == 0 {
		t.Fatal("key mismatch produced no warning")
	}
	if v, ok := d2.Get("original"); !ok || v.(string) != "value" {
		t.Fatalf("original entry lost: %v, %v", v, ok)
	}
}

func TestDiskMemoryOnly(t *testing.T) {
	d := newTestDisk(t, 1<<20, "", nil)
	var computes int
	for i := 0; i < 2; i++ {
		if _, err := d.Do("k", func() (any, int64, error) {
			computes++
			return "v", 1, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}
	st := d.Stats()
	if st.DiskHits != 0 || st.Loaded != 0 || st.Errors != 0 {
		t.Fatalf("memory-only cache touched disk: %+v", st)
	}
}

func TestDiskConcurrentMixedKeysUnderRace(t *testing.T) {
	// Many goroutines hammering overlapping keys through Do/Get/Add with a
	// tight byte bound: the test asserts only invariants (no panic, no
	// wrong value, single flight per key per generation) and exists to give
	// -race a workload over the disk layer. Run with -race.
	d := newTestDisk(t, 256, t.TempDir(), nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", i%5)
				want := "value-" + key
				v, err := d.Do(key, func() (any, int64, error) {
					return want, 32, nil
				})
				if err != nil || v.(string) != want {
					t.Errorf("Do(%s) = %v, %v", key, v, err)
					return
				}
				if v, ok := d.Get(key); ok && v.(string) != want {
					t.Errorf("Get(%s) = %v", key, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
