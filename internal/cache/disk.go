package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
)

// EncodeFunc serializes a cached value for the disk layer; the key is
// supplied so one codec can persist several value kinds.
type EncodeFunc func(key string, v any) ([]byte, error)

// DecodeFunc parses bytes written by the matching EncodeFunc back into the
// value and its resident size. Any error marks the file corrupt: it is
// skipped with a warning and never served.
type DecodeFunc func(key string, data []byte) (v any, size int64, err error)

// Disk layers content-addressed file persistence under an LRU: every store
// also writes a file named by the hex SHA-256 of the key, loads re-populate
// the LRU on construction, and a lookup that misses memory falls back to
// disk before computing. Eviction is memory-only — files survive so a
// restarted process re-warms from the same directory.
//
// The file format is a small JSON envelope {"v":1,"key":…,"data":…} whose
// data payload the codec owns. A file that fails to read, parse, decode, or
// whose recorded key does not match is reported through the warn callback
// and otherwise ignored; the entry is recomputed, never served corrupt.
type Disk struct {
	lru  *LRU
	dir  string // "" = memory-only
	enc  EncodeFunc
	dec  DecodeFunc
	warn func(path string, err error)

	diskHits atomic.Int64
	loaded   atomic.Int64
	errors   atomic.Int64
}

// DiskStats extends the LRU snapshot with the persistence counters.
type DiskStats struct {
	// Stats is the in-memory LRU accounting.
	Stats
	// DiskHits counts lookups that missed memory but loaded from a file;
	// Loaded counts entries restored at construction; Errors counts
	// corrupt or unwritable files skipped with a warning.
	DiskHits, Loaded, Errors int64
}

// envelope is the on-disk file framing.
type envelope struct {
	V    int             `json:"v"`
	Key  string          `json:"key"`
	Data json.RawMessage `json:"data"`
}

// NewDisk builds a persistent cache bounded to maxBytes of resident values.
// With a non-empty dir the directory is created if needed and every
// decodable entry in it is loaded (oldest first, so the newest files win
// the resident set when over budget). warn receives one call per skipped
// file and may be nil.
func NewDisk(maxBytes int64, dir string, enc EncodeFunc, dec DecodeFunc, warn func(path string, err error)) (*Disk, error) {
	d := &Disk{lru: New(maxBytes), dir: dir, enc: enc, dec: dec, warn: warn}
	if d.warn == nil {
		d.warn = func(string, error) {}
	}
	if dir == "" {
		return d, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	type file struct {
		path string
		mod  int64
	}
	var files []file
	for _, ent := range ents {
		if ent.IsDir() || filepath.Ext(ent.Name()) != ".json" {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		files = append(files, file{path: filepath.Join(dir, ent.Name()), mod: info.ModTime().UnixNano()})
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].mod != files[j].mod {
			return files[i].mod < files[j].mod
		}
		return files[i].path < files[j].path
	})
	for _, f := range files {
		key, v, size, err := d.readFile(f.path, "")
		if err != nil {
			d.errors.Add(1)
			d.warn(f.path, err)
			continue
		}
		d.lru.Add(key, v, size)
		d.loaded.Add(1)
	}
	return d, nil
}

// path returns the content-addressed file for a key.
func (d *Disk) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:])+".json")
}

// readFile loads one envelope. With wantKey != "" the recorded key must
// match; otherwise the recorded key is returned (load-on-start path).
func (d *Disk) readFile(path, wantKey string) (key string, v any, size int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, 0, err
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return "", nil, 0, fmt.Errorf("bad envelope: %w", err)
	}
	if env.V != 1 {
		return "", nil, 0, fmt.Errorf("unknown envelope version %d", env.V)
	}
	if env.Key == "" {
		return "", nil, 0, fmt.Errorf("missing key")
	}
	if wantKey != "" && env.Key != wantKey {
		return "", nil, 0, fmt.Errorf("key mismatch: file records %q", env.Key)
	}
	v, size, err = d.dec(env.Key, env.Data)
	if err != nil {
		return "", nil, 0, err
	}
	return env.Key, v, size, nil
}

// tryLoad fetches a key from disk, counting hits and warning on corruption.
func (d *Disk) tryLoad(key string) (any, int64, bool) {
	if d.dir == "" {
		return nil, 0, false
	}
	path := d.path(key)
	if _, err := os.Stat(path); err != nil {
		return nil, 0, false
	}
	_, v, size, err := d.readFile(path, key)
	if err != nil {
		d.errors.Add(1)
		d.warn(path, err)
		return nil, 0, false
	}
	d.diskHits.Add(1)
	return v, size, true
}

// store writes the entry's file via a temp file and an atomic rename; an
// already-present file is left alone (keys are content addresses, so equal
// keys carry equal payloads). Failures warn and are otherwise ignored —
// persistence is best-effort.
func (d *Disk) store(key string, v any) {
	if d.dir == "" {
		return
	}
	path := d.path(key)
	if _, err := os.Stat(path); err == nil {
		return
	}
	data, err := d.enc(key, v)
	if err != nil {
		d.errors.Add(1)
		d.warn(path, err)
		return
	}
	env, err := json.Marshal(envelope{V: 1, Key: key, Data: data})
	if err != nil {
		d.errors.Add(1)
		d.warn(path, err)
		return
	}
	tmp, err := os.CreateTemp(d.dir, ".tmp-*")
	if err != nil {
		d.errors.Add(1)
		d.warn(path, err)
		return
	}
	_, werr := tmp.Write(env)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		d.errors.Add(1)
		d.warn(path, werr)
	}
}

// Do returns the value cached under key, looking memory first, then disk,
// and computing (and persisting) on a full miss. Concurrent Do calls on one
// key share a single computation, exactly like LRU.Do.
func (d *Disk) Do(key string, compute func() (any, int64, error)) (any, error) {
	return d.lru.Do(key, func() (any, int64, error) {
		if v, size, ok := d.tryLoad(key); ok {
			return v, size, nil
		}
		v, size, err := compute()
		if err != nil {
			return nil, 0, err
		}
		d.store(key, v)
		return v, size, nil
	})
}

// Get returns the value under key from memory or disk without computing.
// A disk hit is promoted into the LRU.
func (d *Disk) Get(key string) (any, bool) {
	if v, ok := d.lru.Get(key); ok {
		return v, true
	}
	if v, size, ok := d.tryLoad(key); ok {
		d.lru.Add(key, v, size)
		return v, true
	}
	return nil, false
}

// Add stores v under key in memory and on disk.
func (d *Disk) Add(key string, v any, size int64) {
	d.lru.Add(key, v, size)
	d.store(key, v)
}

// Stats snapshots the cache's accounting.
func (d *Disk) Stats() DiskStats {
	return DiskStats{
		Stats:    d.lru.Stats(),
		DiskHits: d.diskHits.Load(),
		Loaded:   d.loaded.Load(),
		Errors:   d.errors.Load(),
	}
}
