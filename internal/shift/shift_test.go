package shift

import (
	"math/rand"
	"testing"

	"github.com/flex-eda/flex/internal/gen"
	"github.com/flex-eda/flex/internal/geom"
	"github.com/flex-eda/flex/internal/region"
)

// buildRegion hand-constructs a region with the given segments and cells.
func buildRegion(win geom.Rect, segSpan [2]int, cells []region.LocalCell) *region.Region {
	r := &region.Region{Window: win}
	r.Segments = make([]region.Segment, win.H)
	for i := range r.Segments {
		r.Segments[i] = region.Segment{Row: win.Y + i, Lo: segSpan[0], Hi: segSpan[1]}
	}
	r.Cells = cells
	for li := range r.Cells {
		c := &r.Cells[li]
		for row := c.Y; row < c.Y+c.H; row++ {
			seg := r.SegmentAt(row)
			seg.Cells = append(seg.Cells, li)
		}
	}
	r.SortSegmentCells()
	return r
}

// checkResolved verifies the shifting postcondition: no overlap between any
// two cells, no overlap with the target, and containment in segments.
func checkResolved(t *testing.T, r *region.Region, p Placement) {
	t.Helper()
	tr := geom.NewRect(p.TX, p.TY, p.TW, p.TH)
	for i := range r.Cells {
		ci := &r.Cells[i]
		if ci.Rect().Overlaps(tr) {
			t.Fatalf("cell %d overlaps target after shift", i)
		}
		for row := ci.Y; row < ci.Y+ci.H; row++ {
			seg := r.SegmentAt(row)
			if seg == nil || ci.X < seg.Lo || ci.X+ci.W > seg.Hi {
				t.Fatalf("cell %d escaped segment in row %d", i, row)
			}
		}
		for j := i + 1; j < len(r.Cells); j++ {
			if ci.Rect().Overlaps(r.Cells[j].Rect()) {
				t.Fatalf("cells %d and %d overlap after shift", i, j)
			}
		}
	}
}

// fig6Case reproduces the mechanism of the paper's Fig. 6: the original
// algorithm's bottom-to-top traversal misses an overlap created in an
// already-visited row, needing three left-move passes, while SACS resolves
// everything in one.
func fig6Case() (*region.Region, Placement) {
	win := geom.NewRect(0, 0, 40, 3)
	cells := []region.LocalCell{
		{ID: 0, X: 18, GX: 18, Y: 1, W: 4, H: 2}, // A: overlaps target, rows 1-2
		{ID: 1, X: 12, GX: 12, Y: 0, W: 5, H: 2}, // C: rows 0-1, hit by A
		{ID: 2, X: 8, GX: 8, Y: 0, W: 4, H: 1},   // D: row 0, hit by C
	}
	r := buildRegion(win, [2]int{0, 40}, cells)
	return r, Placement{TX: 20, TY: 1, TW: 4, TH: 2}
}

func TestOriginalNeedsMultiplePasses(t *testing.T) {
	r, p := fig6Case()
	var st Stats
	if !Original(r, p, &st) {
		t.Fatal("Original reported infeasible")
	}
	checkResolved(t, r, p)
	// Left phase: 3 passes (push A, then C; D's overlap surfaces one pass
	// later; final pass confirms). Right phase: 1 pass. Total 4.
	if st.Passes != 4 {
		t.Fatalf("Original passes = %d, want 4 (3 left-move + 1 right-move)", st.Passes)
	}
	want := map[int]int{0: 16, 1: 11, 2: 7}
	for i := range r.Cells {
		if r.Cells[i].X != want[r.Cells[i].ID] {
			t.Fatalf("cell %d at %d, want %d", r.Cells[i].ID, r.Cells[i].X, want[r.Cells[i].ID])
		}
	}
}

func TestSACSSinglePass(t *testing.T) {
	r, p := fig6Case()
	var st Stats
	if !SACS(r, p, &st) {
		t.Fatal("SACS reported infeasible")
	}
	checkResolved(t, r, p)
	if st.Passes != 2 {
		t.Fatalf("SACS passes = %d, want 2 (1 per phase)", st.Passes)
	}
	if st.SortedCells != 3 {
		t.Fatalf("SortedCells = %d, want 3", st.SortedCells)
	}
	want := map[int]int{0: 16, 1: 11, 2: 7}
	for i := range r.Cells {
		if r.Cells[i].X != want[r.Cells[i].ID] {
			t.Fatalf("cell %d at %d, want %d", r.Cells[i].ID, r.Cells[i].X, want[r.Cells[i].ID])
		}
	}
}

func TestRightMovePhase(t *testing.T) {
	win := geom.NewRect(0, 0, 40, 2)
	cells := []region.LocalCell{
		{ID: 0, X: 12, GX: 12, Y: 0, W: 4, H: 1}, // right of boundary, overlaps target
		{ID: 1, X: 17, GX: 17, Y: 0, W: 3, H: 1}, // chained push
	}
	r := buildRegion(win, [2]int{0, 40}, cells)
	p := Placement{TX: 10, TY: 0, TW: 5, TH: 1}
	r2 := r.Clone()
	if !Original(r, p, nil) || !SACS(r2, p, nil) {
		t.Fatal("shift infeasible")
	}
	checkResolved(t, r, p)
	for i := range r.Cells {
		if r.Cells[i].X != r2.Cells[i].X {
			t.Fatalf("cell %d: original %d, sacs %d", i, r.Cells[i].X, r2.Cells[i].X)
		}
	}
	if r.Cells[0].X != 15 || r.Cells[1].X != 19 {
		t.Fatalf("right-move positions = %d,%d; want 15,19", r.Cells[0].X, r.Cells[1].X)
	}
}

func TestInfeasiblePush(t *testing.T) {
	win := geom.NewRect(0, 0, 12, 1)
	cells := []region.LocalCell{
		{ID: 0, X: 0, GX: 0, Y: 0, W: 5, H: 1},
		{ID: 1, X: 5, GX: 5, Y: 0, W: 5, H: 1},
	}
	r := buildRegion(win, [2]int{0, 12}, cells)
	// Target of width 4 cannot fit: 5+5+4 > 12.
	p := Placement{TX: 4, TY: 0, TW: 4, TH: 1}
	r2 := r.Clone()
	okO := Original(r, p, nil)
	okS := SACS(r2, p, nil)
	if okO || okS {
		t.Fatalf("feasibility disagreement or false positive: original=%v sacs=%v", okO, okS)
	}
}

func TestNoOpWhenNoOverlap(t *testing.T) {
	win := geom.NewRect(0, 0, 40, 2)
	cells := []region.LocalCell{
		{ID: 0, X: 2, GX: 2, Y: 0, W: 3, H: 1},
		{ID: 1, X: 30, GX: 30, Y: 1, W: 3, H: 1},
	}
	r := buildRegion(win, [2]int{0, 40}, cells)
	p := Placement{TX: 15, TY: 0, TW: 4, TH: 2}
	var st Stats
	if !SACS(r, p, &st) {
		t.Fatal("infeasible")
	}
	if st.Moves != 0 {
		t.Fatalf("moves = %d, want 0", st.Moves)
	}
	if r.Cells[0].X != 2 || r.Cells[1].X != 30 {
		t.Fatal("cells moved without overlap")
	}
}

// TestOriginalEquivalentToSACS is the core property of Sec. 4: both
// algorithms compute the same packed arrangement on realistic regions.
func TestOriginalEquivalentToSACS(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	spec := gen.Small(600, 0.72, 31)
	l, err := spec.GenerateLegal(1.0)
	if err != nil {
		t.Fatal(err)
	}
	placed := make([]bool, len(l.Cells))
	for i := range placed {
		placed[i] = true
	}
	movable := l.MovableIDs()
	cases, feasible := 0, 0
	for iter := 0; iter < 120; iter++ {
		target := movable[rng.Intn(len(movable))]
		placed[target] = false
		tc := &l.Cells[target]
		win := geom.NewRect(tc.X-30, tc.Y-4, 60+tc.W, 8+tc.H)
		reg := region.Extract(l, placed, target, win)
		placed[target] = true
		if len(reg.Cells) < 2 {
			continue
		}
		// Random target placement near its original spot.
		seg := reg.SegmentAt(tc.Y)
		if seg == nil || seg.Len() < tc.W {
			continue
		}
		tx := seg.Lo + rng.Intn(seg.Len()-tc.W+1)
		ty := tc.Y
		if ty+tc.H > reg.Window.Y+reg.Window.H {
			continue
		}
		p := Placement{TX: tx, TY: ty, TW: tc.W, TH: tc.H}
		a, b := reg.Clone(), reg.Clone()
		var sa, sb Stats
		okA := Original(a, p, &sa)
		okB := SACS(b, p, &sb)
		cases++
		if okA != okB {
			t.Fatalf("iter %d: feasibility disagreement original=%v sacs=%v", iter, okA, okB)
		}
		if !okA {
			continue
		}
		feasible++
		for i := range a.Cells {
			if a.Cells[i].X != b.Cells[i].X {
				t.Fatalf("iter %d: cell %d original=%d sacs=%d", iter, i, a.Cells[i].X, b.Cells[i].X)
			}
		}
		checkResolved(t, a, p)
		if sb.Passes != 2 {
			t.Fatalf("iter %d: SACS passes = %d, want 2", iter, sb.Passes)
		}
		if sa.Passes < 2 {
			t.Fatalf("iter %d: Original passes = %d, want >= 2", iter, sa.Passes)
		}
	}
	if cases < 30 || feasible < 15 {
		t.Fatalf("property test exercised too few cases: %d cases, %d feasible", cases, feasible)
	}
}

func TestClassifySides(t *testing.T) {
	win := geom.NewRect(0, 0, 40, 3)
	cells := []region.LocalCell{
		{ID: 0, X: 2, Y: 0, W: 4, H: 1},  // left of target
		{ID: 1, X: 30, Y: 0, W: 4, H: 1}, // right of target
		{ID: 2, X: 5, Y: 2, W: 4, H: 1},  // non-target row
	}
	r := buildRegion(win, [2]int{0, 40}, cells)
	p := Placement{TX: 15, TY: 0, TW: 6, TH: 2}
	sides := classifySides(r, p)
	if sides[0] != sideLeft || sides[1] != sideRight || sides[2] != sideNone {
		t.Fatalf("sides = %v", sides)
	}
	// Explicit boundary override: boundary at x=0.5, so every cell in the
	// target rows lies to its right.
	p.Boundary2 = 1
	sides = classifySides(r, p)
	if sides[0] != sideRight || sides[1] != sideRight {
		t.Fatalf("override sides = %v", sides)
	}
}
