// Package shift implements the two cell-shifting algorithms the FLEX paper
// contrasts in Fig. 6:
//
//   - Original — the MGL overlap-resolution loop (Fig. 6 Algorithm 3): a
//     finish flag guards repeated passes over all subcells (bottom-to-top
//     across rows, outward within a row) until no cell moves. Because moving
//     a multi-row cell can create an overlap in a row that was already
//     traversed, several passes may be needed.
//   - SACS — Sort-Ahead Cell Shifting (Fig. 6 Algorithm 4): localCells are
//     pre-sorted by x and processed outward from the target, so every cell's
//     final position is known the moment it is visited, in exactly one pass,
//     and can be streamed to the breakpoint sorter.
//
// Both algorithms push cells away from a target rectangle inserted into the
// region: the left-move phase packs cells on the left of the insertion
// boundary leftward, the right-move phase packs the right side rightward.
// They compute the same fixpoint; the difference is pass structure, which is
// what the FPGA cycle models charge for.
package shift

import (
	"sort"

	"github.com/flex-eda/flex/internal/region"
)

// Placement describes the target rectangle being inserted.
type Placement struct {
	TX, TY int // target bottom-left (sites, rows)
	TW, TH int // target size
	// Boundary2 is the doubled x coordinate separating the left and right
	// chains (cells whose doubled center ≤ Boundary2 belong to the left
	// side). Zero means "use the target center".
	Boundary2 int
}

func (p Placement) boundary2() int {
	if p.Boundary2 != 0 {
		return p.Boundary2
	}
	return 2*p.TX + p.TW
}

// Stats counts the work of one shifting run, at the granularity the FPGA
// models charge for.
type Stats struct {
	Passes        int // full traversal passes (Original: ≥1 per phase; SACS: 1 per phase)
	SubcellVisits int // subcell overlap checks
	Moves         int // cell position updates
	SortedCells   int // cells through the ahead-sorter (SACS only)
	SortOps       int // comparison units spent pre-sorting (SACS only)
}

// side classification relative to the insertion boundary.
const (
	sideLeft  = -1
	sideNone  = 0 // cell in no target row: moves only if pushed
	sideRight = 1
)

// classifySides returns the side of every localCell for the placement.
func classifySides(reg *region.Region, p Placement) []int8 {
	b2 := p.boundary2()
	sides := make([]int8, len(reg.Cells))
	for i := range reg.Cells {
		c := &reg.Cells[i]
		inTargetRows := c.Y < p.TY+p.TH && c.Y+c.H > p.TY
		if !inTargetRows {
			sides[i] = sideNone
			continue
		}
		if 2*c.X+c.W <= b2 {
			sides[i] = sideLeft
		} else {
			sides[i] = sideRight
		}
	}
	return sides
}

// Original runs the multi-pass MGL shifting algorithm, mutating the region's
// cell positions. It returns false when a cell would be pushed outside its
// segment (infeasible placement); positions are then undefined and the
// caller should discard the region copy.
func Original(reg *region.Region, p Placement, st *Stats) bool {
	if st == nil {
		st = &Stats{}
	}
	sides := classifySides(reg, p)
	if !originalPhase(reg, p, sides, true, st) {
		return false
	}
	return originalPhase(reg, p, sides, false, st)
}

// insideSegments reports whether the cell still fits within every segment
// it occupies.
func insideSegments(reg *region.Region, c *region.LocalCell) bool {
	for row := c.Y; row < c.Y+c.H; row++ {
		seg := reg.SegmentAt(row)
		if seg == nil || c.X < seg.Lo || c.X+c.W > seg.Hi {
			return false
		}
	}
	return true
}

// originalPhase runs repeated subcell passes for one direction until the
// finish flag stays true. Per-segment entry lists keep their initial x
// order throughout — shifting may not reorder cells — so the chain
// structure is fixed and the fixpoint matches SACS exactly.
func originalPhase(reg *region.Region, p Placement, sides []int8, left bool, st *Stats) bool {
	for {
		st.Passes++
		moved := false
		for si := range reg.Segments {
			seg := &reg.Segments[si]
			if seg.Len() == 0 {
				continue
			}
			inTarget := seg.Row >= p.TY && seg.Row < p.TY+p.TH
			cells := seg.Cells
			if left {
				// Right-to-left within the row.
				for k := len(cells) - 1; k >= 0; k-- {
					ci := cells[k]
					if sides[ci] == sideRight {
						continue
					}
					st.SubcellVisits++
					// The moving cell's right edge may not pass its nearest
					// right-hand entity: the next movable entry, the target
					// (in target rows, when the next entry is beyond it),
					// or a static right-side cell.
					bound := seg.Hi
					switch {
					case k+1 < len(cells) && sides[cells[k+1]] != sideRight:
						bound = reg.Cells[cells[k+1]].X
					case inTarget:
						bound = p.TX
					case k+1 < len(cells):
						bound = reg.Cells[cells[k+1]].X
					}
					c := &reg.Cells[ci]
					if c.X+c.W > bound {
						c.X = bound - c.W
						moved = true
						st.Moves++
						if !insideSegments(reg, c) {
							return false
						}
					}
				}
			} else {
				// Left-to-right within the row.
				for k := 0; k < len(cells); k++ {
					ci := cells[k]
					if sides[ci] == sideLeft {
						continue
					}
					st.SubcellVisits++
					bound := seg.Lo
					switch {
					case k > 0 && sides[cells[k-1]] != sideLeft:
						bound = reg.Cells[cells[k-1]].X + reg.Cells[cells[k-1]].W
					case inTarget:
						bound = p.TX + p.TW
					case k > 0:
						bound = reg.Cells[cells[k-1]].X + reg.Cells[cells[k-1]].W
					}
					c := &reg.Cells[ci]
					if c.X < bound {
						c.X = bound
						moved = true
						st.Moves++
						if !insideSegments(reg, c) {
							return false
						}
					}
				}
			}
		}
		if !moved {
			return true
		}
	}
}

// SACS runs the sort-ahead single-pass shifting algorithm, mutating the
// region's cell positions. The result is identical to Original; the
// structure is one sorted outward sweep per phase, with per-segment
// frontier cursors standing in for the paper's CurSegPtr/CurSegEnd tables.
func SACS(reg *region.Region, p Placement, st *Stats) bool {
	if st == nil {
		st = &Stats{}
	}
	sides := classifySides(reg, p)

	// Ahead sorter: all localCells by x. The hardware sorts once and reads
	// the order backwards for the left phase and forwards for the right.
	order := make([]int, len(reg.Cells))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return reg.Cells[order[a]].X < reg.Cells[order[b]].X })
	st.SortedCells += len(order)
	if n := len(order); n > 1 {
		logn := 0
		for v := n; v > 1; v >>= 1 {
			logn++
		}
		st.SortOps += n * logn
	}

	if !sacsPhase(reg, p, sides, order, true, st) {
		return false
	}
	return sacsPhase(reg, p, sides, order, false, st)
}

func sacsPhase(reg *region.Region, p Placement, sides []int8, order []int, left bool, st *Stats) bool {
	st.Passes++
	// frontier[row-index]: for the left phase, the x bound the next cell's
	// right edge must not exceed; for the right phase, the x bound the next
	// cell's left edge must meet.
	frontier := make([]int, len(reg.Segments))
	for si := range reg.Segments {
		seg := &reg.Segments[si]
		inTarget := seg.Row >= p.TY && seg.Row < p.TY+p.TH
		if left {
			frontier[si] = seg.Hi
			if inTarget {
				frontier[si] = p.TX
			}
		} else {
			frontier[si] = seg.Lo
			if inTarget {
				frontier[si] = p.TX + p.TW
			}
		}
	}
	apply := func(ci int) bool {
		c := &reg.Cells[ci]
		st.SubcellVisits += c.H
		if left {
			bound := 1 << 60
			for row := c.Y; row < c.Y+c.H; row++ {
				si := row - reg.Window.Y
				if si < 0 || si >= len(frontier) {
					continue
				}
				if frontier[si] < bound {
					bound = frontier[si]
				}
			}
			if c.X+c.W > bound {
				c.X = bound - c.W
				st.Moves++
			}
			for row := c.Y; row < c.Y+c.H; row++ {
				si := row - reg.Window.Y
				if si >= 0 && si < len(frontier) && c.X < frontier[si] {
					frontier[si] = c.X
				}
				if si >= 0 && si < len(reg.Segments) && c.X < reg.Segments[si].Lo {
					return false
				}
			}
		} else {
			bound := -(1 << 60)
			for row := c.Y; row < c.Y+c.H; row++ {
				si := row - reg.Window.Y
				if si < 0 || si >= len(frontier) {
					continue
				}
				if frontier[si] > bound {
					bound = frontier[si]
				}
			}
			if c.X < bound {
				c.X = bound
				st.Moves++
			}
			for row := c.Y; row < c.Y+c.H; row++ {
				si := row - reg.Window.Y
				if si >= 0 && si < len(frontier) && c.X+c.W > frontier[si] {
					frontier[si] = c.X + c.W
				}
				if si >= 0 && si < len(reg.Segments) && c.X+c.W > reg.Segments[si].Hi {
					return false
				}
			}
		}
		return true
	}
	if left {
		for k := len(order) - 1; k >= 0; k-- {
			ci := order[k]
			if sides[ci] == sideRight {
				continue
			}
			if !apply(ci) {
				return false
			}
		}
	} else {
		for k := 0; k < len(order); k++ {
			ci := order[k]
			if sides[ci] == sideLeft {
				continue
			}
			if !apply(ci) {
				return false
			}
		}
	}
	reg.SortSegmentCells()
	return true
}
