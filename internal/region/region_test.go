package region

import (
	"testing"

	"github.com/flex-eda/flex/internal/gen"
	"github.com/flex-eda/flex/internal/geom"
	"github.com/flex-eda/flex/internal/model"
)

// grid builds a layout with a deterministic hand arrangement:
//
//	rows 0..3, sites 0..40
//	row-spanning fixed blockage at x=18..20 on rows 0..3
//	cells: a(0,0,4x1) b(6,0,4x2) c(24,1,4x1) d(30,0,3x3) target t(10,0,3x1)
func grid() (*model.Layout, []bool) {
	l := &model.Layout{Name: "grid", NumSitesX: 40, NumRows: 4, RowHeight: 8}
	add := func(name string, x, y, w, h int, fixed bool) {
		p := model.ParityAny
		if h%2 == 0 {
			p = model.ParityEven
		}
		l.Cells = append(l.Cells, model.Cell{
			ID: len(l.Cells), Name: name, X: x, Y: y, GX: x, GY: y, W: w, H: h,
			Parity: p, Fixed: fixed,
		})
	}
	add("a", 0, 0, 4, 1, false)   // 0
	add("b", 6, 0, 4, 2, false)   // 1
	add("blk", 18, 0, 2, 4, true) // 2
	add("c", 24, 1, 4, 1, false)  // 3
	add("d", 30, 0, 3, 3, false)  // 4
	add("t", 10, 0, 3, 1, false)  // 5 target (unplaced)
	placed := []bool{true, true, true, true, true, false}
	return l, placed
}

func TestExtractSegmentsPreferTargetRun(t *testing.T) {
	l, placed := grid()
	// Window covering the whole die: the blockage splits each row into
	// [0,18) and [20,40). The target's desired center (x=11) lies in the
	// left run, so that run is chosen even though [20,40) is longer.
	r := Extract(l, placed, 5, geom.NewRect(0, 0, 40, 4))
	if len(r.Segments) != 4 {
		t.Fatalf("segments = %d, want 4", len(r.Segments))
	}
	for i, seg := range r.Segments {
		if seg.Lo != 0 || seg.Hi != 18 {
			t.Fatalf("segment %d = [%d,%d), want [0,18)", i, seg.Lo, seg.Hi)
		}
	}
	// localCells must be a and b (c and d live right of the blockage and
	// become obstacles that do not intersect [0,18)).
	if len(r.Cells) != 2 {
		t.Fatalf("localCells = %d, want 2", len(r.Cells))
	}
	ids := []int{r.Cells[0].ID, r.Cells[1].ID}
	if ids[0] != 0 || ids[1] != 1 {
		t.Fatalf("localCell IDs = %v, want [0 1]", ids)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExtractFallsBackToLongestRun(t *testing.T) {
	l, placed := grid()
	// Move the target's desired position onto the blockage (x=18..20):
	// no run contains it, so the longest run [20,40) is chosen.
	l.Cells[5].GX = 18
	l.Cells[5].W = 2
	r := Extract(l, placed, 5, geom.NewRect(0, 0, 40, 4))
	for i, seg := range r.Segments {
		if seg.Lo != 20 || seg.Hi != 40 {
			t.Fatalf("segment %d = [%d,%d), want [20,40)", i, seg.Lo, seg.Hi)
		}
	}
}

func TestExtractWindowOnLeftSide(t *testing.T) {
	l, placed := grid()
	// Window covering only the left of the blockage: run [0,18).
	r := Extract(l, placed, 5, geom.NewRect(0, 0, 18, 2))
	for _, seg := range r.Segments {
		if seg.Lo != 0 || seg.Hi != 18 {
			t.Fatalf("segment = [%d,%d), want [0,18)", seg.Lo, seg.Hi)
		}
	}
	// a fits (row 0); b spans rows 0..1, contained; both localCells.
	if len(r.Cells) != 2 || r.Cells[0].ID != 0 || r.Cells[1].ID != 1 {
		t.Fatalf("localCells = %+v, want a and b", r.Cells)
	}
	seg0 := r.SegmentAt(0)
	if len(seg0.Cells) != 2 {
		t.Fatalf("row 0 should hold 2 localCells, got %d", len(seg0.Cells))
	}
	seg1 := r.SegmentAt(1)
	if len(seg1.Cells) != 1 || r.Cells[seg1.Cells[0]].ID != 1 {
		t.Fatalf("row 1 should hold only b")
	}
}

func TestExtractPartiallyContainedCellBecomesObstacle(t *testing.T) {
	l, placed := grid()
	// Window cutting cell d (3 rows tall) at its waist: d is not contained,
	// so it must act as an obstacle shrinking the rows it crosses.
	r := Extract(l, placed, 5, geom.NewRect(20, 0, 20, 2))
	// d occupies x [30,33): longest free run right of the blockage is
	// [20,30) for rows 0..1.
	for _, seg := range r.Segments {
		if seg.Lo != 20 || seg.Hi != 30 {
			t.Fatalf("segment = [%d,%d), want [20,30)", seg.Lo, seg.Hi)
		}
	}
	for _, lc := range r.Cells {
		if lc.ID == 4 {
			t.Fatal("cell d must not be a localCell")
		}
	}
}

func TestExtractIgnoresUnplacedCells(t *testing.T) {
	l, placed := grid()
	placed[0] = false // a unplaced: invisible to the region
	r := Extract(l, placed, 5, geom.NewRect(0, 0, 18, 1))
	for _, lc := range r.Cells {
		if lc.ID == 0 {
			t.Fatal("unplaced cell a leaked into the region")
		}
	}
}

func TestExtractDensity(t *testing.T) {
	l, placed := grid()
	r := Extract(l, placed, 5, geom.NewRect(0, 0, 18, 2))
	// capacity = 2 rows × 18 sites = 36; used = a(4) + b(8) + target(3).
	want := 15.0 / 36.0
	if r.Density < want-1e-9 || r.Density > want+1e-9 {
		t.Fatalf("density = %v, want %v", r.Density, want)
	}
}

func TestCellsInRows(t *testing.T) {
	l, placed := grid()
	r := Extract(l, placed, 5, geom.NewRect(20, 0, 20, 4))
	got := r.CellsInRows(1, 1)
	// Row 1 holds c and d.
	if len(got) != 2 {
		t.Fatalf("CellsInRows(1,1) = %v, want two cells", got)
	}
	got = r.CellsInRows(3, 1)
	// Row 3: nothing (d spans rows 0..2, c row 1).
	if len(got) != 0 {
		t.Fatalf("CellsInRows(3,1) = %v, want empty", got)
	}
}

func TestRegionClone(t *testing.T) {
	l, placed := grid()
	r := Extract(l, placed, 5, geom.NewRect(0, 0, 40, 4))
	cp := r.Clone()
	if len(cp.Cells) > 0 {
		cp.Cells[0].X = 999
		if r.Cells[0].X == 999 {
			t.Fatal("Clone shares cell storage")
		}
	}
	if len(cp.Segments) > 0 && len(cp.Segments[0].Cells) > 0 {
		cp.Segments[0].Cells[0] = 77
		if r.Segments[0].Cells[0] == 77 {
			t.Fatal("Clone shares segment lists")
		}
	}
}

func TestIndexQueryMatchesBruteForce(t *testing.T) {
	spec := gen.Small(500, 0.5, 21)
	l, err := spec.Generate(1.0)
	if err != nil {
		t.Fatal(err)
	}
	idx := NewIndex(l, 16, 2, nil)
	wins := []geom.Rect{
		geom.NewRect(0, 0, 30, 6),
		geom.NewRect(l.NumSitesX/2, l.NumRows/2, 40, 8),
		geom.NewRect(l.NumSitesX-10, l.NumRows-3, 20, 10), // clipped
	}
	for _, win := range wins {
		got := map[int]bool{}
		for _, id := range idx.Query(win, nil) {
			got[id] = true
		}
		for i := range l.Cells {
			want := l.Cells[i].Rect().Overlaps(win)
			if got[i] != want {
				t.Fatalf("win %v cell %d: got %v, want %v", win, i, got[i], want)
			}
		}
	}
}

func TestIndexUpdateTracksMoves(t *testing.T) {
	l, _ := grid()
	idx := NewIndex(l, 8, 2, nil)
	win := geom.NewRect(0, 0, 6, 1)
	in := func() bool {
		for _, id := range idx.Query(win, nil) {
			if id == 0 {
				return true
			}
		}
		return false
	}
	if !in() {
		t.Fatal("cell a should be found at its original position")
	}
	l.Cells[0].X = 25
	idx.Update(0)
	if in() {
		t.Fatal("cell a still found at old position after Update")
	}
	far := geom.NewRect(25, 0, 4, 1)
	found := false
	for _, id := range idx.Query(far, nil) {
		if id == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("cell a not found at new position")
	}
	idx.Remove(0)
	if got := idx.Query(far, nil); len(got) != 0 {
		// the blockage is at x>=18 width 2: not overlapping [25,29)
		for _, id := range got {
			if id == 0 {
				t.Fatal("removed cell still indexed")
			}
		}
	}
	idx.Remove(0) // double remove must be a no-op
	idx.Add(0)
	if !found {
		t.Fatal("re-added cell lost")
	}
}

func TestExtractFromRestrictsToCandidates(t *testing.T) {
	l, placed := grid()
	// Candidate list deliberately omits cell a: it must be invisible.
	r := ExtractFrom(l, placed, 5, geom.NewRect(0, 0, 18, 1), []int{1, 2, 3, 4})
	for _, lc := range r.Cells {
		if lc.ID == 0 {
			t.Fatal("non-candidate cell appeared in region")
		}
	}
}

func TestExtractEmptyWindow(t *testing.T) {
	l, placed := grid()
	r := Extract(l, placed, 5, geom.NewRect(-10, -10, 5, 5))
	if len(r.Cells) != 0 {
		t.Fatal("empty window must produce empty region")
	}
}
