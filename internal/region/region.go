// Package region implements the localization vocabulary of the MGL
// algorithm (Sec. 2.2 of the FLEX paper): the rectangular window W around a
// target cell, the per-row localSegments of unblocked sites, the localCells
// fully contained in those segments, and the localRegion that FOP operates
// on. It also provides the grid spatial index the legalizer uses to find
// nearby cells quickly.
package region

import (
	"fmt"
	"sort"

	"github.com/flex-eda/flex/internal/geom"
	"github.com/flex-eda/flex/internal/model"
)

// LocalCell is a cell participating in a localRegion, with a private copy of
// its position so FOP can shift it hypothetically without touching the
// layout.
type LocalCell struct {
	ID   int // layout cell ID
	X, Y int // current position (region-local working copy)
	GX   int // global-placement x, displacement reference
	W, H int
}

// Rect returns the rectangle currently occupied by the local cell.
func (c *LocalCell) Rect() geom.Rect { return geom.NewRect(c.X, c.Y, c.W, c.H) }

// Segment is one localSegment: the chosen run of unblocked sites in one row
// of the window, with the indices (into Region.Cells) of the localCells
// occupying it, sorted by x.
type Segment struct {
	Row    int
	Lo, Hi int   // free span [Lo, Hi)
	Cells  []int // localCell indices sorted by current X
}

// Len returns the segment's capacity in sites.
func (s *Segment) Len() int { return s.Hi - s.Lo }

// Region is a localRegion: the working set of one FOP invocation.
type Region struct {
	Target   int // layout cell ID of the target being placed
	TargetW  int
	TargetH  int
	Window   geom.Rect
	Segments []Segment // indexed by row − Window.Y; zero-length = blocked row
	Cells    []LocalCell
	Density  float64 // (localCell area + target area) / segment capacity
}

// SegmentAt returns the segment for absolute row y, or nil when the row is
// outside the window.
func (r *Region) SegmentAt(y int) *Segment {
	i := y - r.Window.Y
	if i < 0 || i >= len(r.Segments) {
		return nil
	}
	return &r.Segments[i]
}

// CellsInRows returns the distinct localCell indices occupying rows
// [y, y+h), in ascending index order.
func (r *Region) CellsInRows(y, h int) []int {
	seen := make(map[int]bool)
	var out []int
	for row := y; row < y+h; row++ {
		seg := r.SegmentAt(row)
		if seg == nil {
			continue
		}
		for _, ci := range seg.Cells {
			if !seen[ci] {
				seen[ci] = true
				out = append(out, ci)
			}
		}
	}
	sort.Ints(out)
	return out
}

// Validate checks the region's internal invariants: cells inside their
// segments, per-segment lists sorted and non-overlapping. It returns the
// first inconsistency found.
func (r *Region) Validate() error {
	for si := range r.Segments {
		seg := &r.Segments[si]
		prevEnd := seg.Lo
		prevX := -1 << 60
		for _, ci := range seg.Cells {
			c := &r.Cells[ci]
			if c.Y > seg.Row || c.Y+c.H <= seg.Row {
				return fmt.Errorf("region: cell %d listed in row %d it does not occupy", c.ID, seg.Row)
			}
			if c.X < prevX {
				return fmt.Errorf("region: row %d cell list not sorted", seg.Row)
			}
			prevX = c.X
			if c.X < seg.Lo || c.X+c.W > seg.Hi {
				return fmt.Errorf("region: cell %d outside segment [%d,%d)", c.ID, seg.Lo, seg.Hi)
			}
			if c.X < prevEnd {
				return fmt.Errorf("region: cell %d overlaps predecessor in row %d", c.ID, seg.Row)
			}
			prevEnd = c.X + c.W
		}
	}
	return nil
}

// SortSegmentCells re-sorts every segment's cell list by current X. Shifting
// algorithms call it after moving cells.
func (r *Region) SortSegmentCells() {
	for si := range r.Segments {
		seg := &r.Segments[si]
		sort.SliceStable(seg.Cells, func(a, b int) bool {
			return r.Cells[seg.Cells[a]].X < r.Cells[seg.Cells[b]].X
		})
	}
}

// Clone deep-copies the region so one extraction can be evaluated by
// multiple engines.
func (r *Region) Clone() *Region {
	out := &Region{
		Target: r.Target, TargetW: r.TargetW, TargetH: r.TargetH,
		Window: r.Window, Density: r.Density,
		Segments: make([]Segment, len(r.Segments)),
		Cells:    make([]LocalCell, len(r.Cells)),
	}
	copy(out.Cells, r.Cells)
	for i := range r.Segments {
		s := r.Segments[i]
		cells := make([]int, len(s.Cells))
		copy(cells, s.Cells)
		s.Cells = cells
		out.Segments[i] = s
	}
	return out
}

// Extract builds the localRegion for target inside the window win.
// Only cells with placed[id] == true participate; placed cells fully
// contained in the window's free runs become localCells, all other placed
// cells intersecting the window act as obstacles that shrink the segments
// (like fixed blockages). The fixpoint iteration resolves the mutual
// dependence between segment extents and localCell containment.
//
// Extract scans the whole layout for window members; the legalizer hot path
// should use ExtractFrom with candidates from an Index query.
func Extract(l *model.Layout, placed []bool, targetID int, win geom.Rect) *Region {
	var candidates []int
	for i := range l.Cells {
		c := &l.Cells[i]
		if !c.Fixed && !placed[i] {
			continue
		}
		if c.Rect().Overlaps(win.Intersect(l.Die())) {
			candidates = append(candidates, i)
		}
	}
	return ExtractFrom(l, placed, targetID, win, candidates)
}

// ExtractFrom is Extract with a precomputed candidate set (typically an
// Index query over the window). Candidates outside the window, unplaced
// movable candidates, and the target itself are ignored.
func ExtractFrom(l *model.Layout, placed []bool, targetID int, win geom.Rect, rawCandidates []int) *Region {
	win = win.Intersect(l.Die())
	target := &l.Cells[targetID]
	r := &Region{
		Target:  targetID,
		TargetW: target.W,
		TargetH: target.H,
		Window:  win,
	}
	if win.Empty() {
		return r
	}

	candidates := make([]int, 0, len(rawCandidates))
	for _, i := range rawCandidates {
		if i == targetID {
			continue
		}
		c := &l.Cells[i]
		if !c.Fixed && !placed[i] {
			continue
		}
		if c.Rect().Overlaps(win) {
			candidates = append(candidates, i)
		}
	}
	// Greatest-fixpoint iteration: start from the maximal tentative set
	// (every movable candidate fully inside the window) and demote cells
	// that fall outside the segments their own demoted peers induce. The
	// set shrinks monotonically, so the loop terminates.
	local := make(map[int]bool)
	for _, id := range candidates {
		c := &l.Cells[id]
		if !c.Fixed && win.Contains(c.Rect()) {
			local[id] = true
		}
	}
	for {
		buildSegments(l, r, candidates, local)
		newLocal := classify(l, r, candidates, local)
		if equalSet(local, newLocal) {
			break
		}
		local = newLocal
	}

	// Materialize localCells and per-segment lists.
	ids := make([]int, 0, len(local))
	for id := range local {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		c := &l.Cells[id]
		r.Cells = append(r.Cells, LocalCell{ID: id, X: c.X, Y: c.Y, GX: c.GX, W: c.W, H: c.H})
	}
	for li := range r.Cells {
		c := &r.Cells[li]
		for row := c.Y; row < c.Y+c.H; row++ {
			if seg := r.SegmentAt(row); seg != nil {
				seg.Cells = append(seg.Cells, li)
			}
		}
	}
	r.SortSegmentCells()

	// Density: occupied area over capacity, counting the incoming target.
	capacity := 0
	for i := range r.Segments {
		capacity += r.Segments[i].Len()
	}
	used := target.Area()
	for li := range r.Cells {
		used += r.Cells[li].W * r.Cells[li].H
	}
	if capacity > 0 {
		r.Density = float64(used) / float64(capacity)
	} else {
		r.Density = 1
	}
	return r
}

// buildSegments recomputes the per-row localSegment given the obstacle set
// (every candidate that is not a localCell). Among a row's free runs it
// prefers the one containing the target's desired position — the run the
// MGL window is meant to be centred on — and falls back to the longest run
// when the desired position is blocked. With windows small relative to
// blockage spacing (the normal case) the two rules coincide; the preference
// matters for expanded/fallback windows that straddle blockages.
func buildSegments(l *model.Layout, r *Region, candidates []int, local map[int]bool) {
	win := r.Window
	target := &l.Cells[r.Target]
	cx := target.GX + target.W/2
	if cx < win.X {
		cx = win.X
	}
	if cx >= win.X+win.W {
		cx = win.X + win.W - 1
	}
	r.Segments = make([]Segment, win.H)
	type iv struct{ lo, hi int }
	blocked := make([][]iv, win.H)
	for _, id := range candidates {
		if local != nil && local[id] {
			continue
		}
		c := &l.Cells[id]
		for row := geom.Max(c.Y, win.Y); row < geom.Min(c.Y+c.H, win.Y+win.H); row++ {
			blocked[row-win.Y] = append(blocked[row-win.Y], iv{c.X, c.X + c.W})
		}
	}
	for i := 0; i < win.H; i++ {
		row := win.Y + i
		ivs := blocked[i]
		sort.Slice(ivs, func(a, b int) bool { return ivs[a].lo < ivs[b].lo })
		longLo, longHi := 0, 0  // longest free run
		homeLo, homeHi := 0, -1 // run containing cx (if any)
		cur := win.X
		consider := func(hi int) {
			if hi-cur > longHi-longLo {
				longLo, longHi = cur, hi
			}
			if cur <= cx && cx < hi {
				homeLo, homeHi = cur, hi
			}
		}
		for _, b := range ivs {
			lo := geom.Max(b.lo, win.X)
			hi := geom.Min(b.hi, win.X+win.W)
			if lo > cur {
				consider(lo)
			}
			if hi > cur {
				cur = hi
			}
		}
		consider(win.X + win.W)
		if homeHi > homeLo {
			r.Segments[i] = Segment{Row: row, Lo: homeLo, Hi: homeHi}
		} else {
			r.Segments[i] = Segment{Row: row, Lo: longLo, Hi: longHi}
		}
	}
}

// classify returns the subset of the tentative localCells still fully
// contained in the current segments: demotion-only refinement.
func classify(l *model.Layout, r *Region, candidates []int, tentative map[int]bool) map[int]bool {
	local := make(map[int]bool)
	for _, id := range candidates {
		if !tentative[id] {
			continue
		}
		c := &l.Cells[id]
		if c.Fixed {
			continue
		}
		if !r.Window.Contains(c.Rect()) {
			continue
		}
		ok := true
		for row := c.Y; row < c.Y+c.H; row++ {
			seg := r.SegmentAt(row)
			if seg == nil || c.X < seg.Lo || c.X+c.W > seg.Hi {
				ok = false
				break
			}
		}
		if ok {
			local[id] = true
		}
	}
	return local
}

func equalSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
