// Package region implements the localization vocabulary of the MGL
// algorithm (Sec. 2.2 of the FLEX paper): the rectangular window W around a
// target cell, the per-row localSegments of unblocked sites, the localCells
// fully contained in those segments, and the localRegion that FOP operates
// on. It also provides the grid spatial index the legalizer uses to find
// nearby cells quickly.
package region

import (
	"fmt"
	"sort"

	"github.com/flex-eda/flex/internal/geom"
	"github.com/flex-eda/flex/internal/model"
)

// iv is a blocked x-interval within one window row.
type iv struct{ lo, hi int }

// LocalCell is a cell participating in a localRegion, with a private copy of
// its position so FOP can shift it hypothetically without touching the
// layout.
type LocalCell struct {
	ID   int // layout cell ID
	X, Y int // current position (region-local working copy)
	GX   int // global-placement x, displacement reference
	W, H int
}

// Rect returns the rectangle currently occupied by the local cell.
func (c *LocalCell) Rect() geom.Rect { return geom.NewRect(c.X, c.Y, c.W, c.H) }

// Segment is one localSegment: the chosen run of unblocked sites in one row
// of the window, with the indices (into Region.Cells) of the localCells
// occupying it, sorted by x.
type Segment struct {
	Row    int
	Lo, Hi int   // free span [Lo, Hi)
	Cells  []int // localCell indices sorted by current X
}

// Len returns the segment's capacity in sites.
func (s *Segment) Len() int { return s.Hi - s.Lo }

// Region is a localRegion: the working set of one FOP invocation.
type Region struct {
	Target   int // layout cell ID of the target being placed
	TargetW  int
	TargetH  int
	Window   geom.Rect
	Segments []Segment // indexed by row − Window.Y; zero-length = blocked row
	Cells    []LocalCell
	Density  float64 // (localCell area + target area) / segment capacity
}

// SegmentAt returns the segment for absolute row y, or nil when the row is
// outside the window.
func (r *Region) SegmentAt(y int) *Segment {
	i := y - r.Window.Y
	if i < 0 || i >= len(r.Segments) {
		return nil
	}
	return &r.Segments[i]
}

// CellsInRows returns the distinct localCell indices occupying rows
// [y, y+h), in ascending index order.
func (r *Region) CellsInRows(y, h int) []int {
	seen := make(map[int]bool)
	var out []int
	for row := y; row < y+h; row++ {
		seg := r.SegmentAt(row)
		if seg == nil {
			continue
		}
		for _, ci := range seg.Cells {
			if !seen[ci] {
				seen[ci] = true
				out = append(out, ci)
			}
		}
	}
	sort.Ints(out)
	return out
}

// Validate checks the region's internal invariants: cells inside their
// segments, per-segment lists sorted and non-overlapping. It returns the
// first inconsistency found.
func (r *Region) Validate() error {
	for si := range r.Segments {
		seg := &r.Segments[si]
		prevEnd := seg.Lo
		prevX := -1 << 60
		for _, ci := range seg.Cells {
			c := &r.Cells[ci]
			if c.Y > seg.Row || c.Y+c.H <= seg.Row {
				return fmt.Errorf("region: cell %d listed in row %d it does not occupy", c.ID, seg.Row)
			}
			if c.X < prevX {
				return fmt.Errorf("region: row %d cell list not sorted", seg.Row)
			}
			prevX = c.X
			if c.X < seg.Lo || c.X+c.W > seg.Hi {
				return fmt.Errorf("region: cell %d outside segment [%d,%d)", c.ID, seg.Lo, seg.Hi)
			}
			if c.X < prevEnd {
				return fmt.Errorf("region: cell %d overlaps predecessor in row %d", c.ID, seg.Row)
			}
			prevEnd = c.X + c.W
		}
	}
	return nil
}

// SortSegmentCells re-sorts every segment's cell list by current X. Shifting
// algorithms call it after moving cells; a stable insertion sort fits the
// workload (short, nearly sorted lists) without closure allocations.
func (r *Region) SortSegmentCells() {
	for si := range r.Segments {
		cells := r.Segments[si].Cells
		for i := 1; i < len(cells); i++ {
			for j := i; j > 0 && r.Cells[cells[j]].X < r.Cells[cells[j-1]].X; j-- {
				cells[j], cells[j-1] = cells[j-1], cells[j]
			}
		}
	}
}

// Clone deep-copies the region so one extraction can be evaluated by
// multiple engines.
func (r *Region) Clone() *Region {
	out := &Region{
		Target: r.Target, TargetW: r.TargetW, TargetH: r.TargetH,
		Window: r.Window, Density: r.Density,
		Segments: make([]Segment, len(r.Segments)),
		Cells:    make([]LocalCell, len(r.Cells)),
	}
	copy(out.Cells, r.Cells)
	for i := range r.Segments {
		s := r.Segments[i]
		cells := make([]int, len(s.Cells))
		copy(cells, s.Cells)
		s.Cells = cells
		out.Segments[i] = s
	}
	return out
}

// Extract builds the localRegion for target inside the window win.
// Only cells with placed[id] == true participate; placed cells fully
// contained in the window's free runs become localCells, all other placed
// cells intersecting the window act as obstacles that shrink the segments
// (like fixed blockages). The fixpoint iteration resolves the mutual
// dependence between segment extents and localCell containment.
//
// Extract scans the whole layout for window members; the legalizer hot path
// should use ExtractFrom with candidates from an Index query.
func Extract(l *model.Layout, placed []bool, targetID int, win geom.Rect) *Region {
	var candidates []int
	for i := range l.Cells {
		c := &l.Cells[i]
		if !c.Fixed && !placed[i] {
			continue
		}
		if c.Rect().Overlaps(win.Intersect(l.Die())) {
			candidates = append(candidates, i)
		}
	}
	return ExtractFrom(l, placed, targetID, win, candidates)
}

// candCell is one gathered extraction candidate: exactly the geometry the
// fixpoint touches, packed densely so its iterations stay cache-resident
// instead of striding through the layout's fat Cell structs.
type candCell struct {
	id             int32
	x, y, w, h, gx int32
	movable        bool
}

func (c *candCell) rect() geom.Rect {
	return geom.NewRect(int(c.x), int(c.y), int(c.w), int(c.h))
}

// ExtractFrom is Extract with a precomputed candidate set (typically an
// Index query over the window). Candidates outside the window, unplaced
// movable candidates, and the target itself are ignored.
func ExtractFrom(l *model.Layout, placed []bool, targetID int, win geom.Rect, rawCandidates []int) *Region {
	win = win.Intersect(l.Die())
	target := &l.Cells[targetID]
	r := &Region{
		Target:  targetID,
		TargetW: target.W,
		TargetH: target.H,
		Window:  win,
	}
	if win.Empty() {
		return r
	}
	cands := make([]candCell, 0, len(rawCandidates))
	for _, i := range rawCandidates {
		if i == targetID {
			continue
		}
		c := &l.Cells[i]
		if !c.Fixed && !placed[i] {
			continue
		}
		if c.Rect().Overlaps(win) {
			cands = append(cands, candCell{
				id: int32(i), x: int32(c.X), y: int32(c.Y),
				w: int32(c.W), h: int32(c.H), gx: int32(c.GX),
				movable: !c.Fixed,
			})
		}
	}
	extractCore(r, target.GX, cands)
	return r
}

// ExtractFromSoA is ExtractFrom reading candidate geometry from a
// structure-of-arrays mirror instead of the layout's cell structs; the
// mirror must be in sync with l. Results are identical — the fixpoint
// sees the same geometry either way.
func ExtractFromSoA(soa *model.SoA, placed []bool, targetID int, die, win geom.Rect, rawCandidates []int) *Region {
	win = win.Intersect(die)
	r := &Region{
		Target:  targetID,
		TargetW: int(soa.W[targetID]),
		TargetH: int(soa.H[targetID]),
		Window:  win,
	}
	if win.Empty() {
		return r
	}
	cands := make([]candCell, 0, len(rawCandidates))
	for _, i := range rawCandidates {
		if i == targetID {
			continue
		}
		if !soa.Fixed[i] && !placed[i] {
			continue
		}
		if soa.Rect(i).Overlaps(win) {
			cands = append(cands, candCell{
				id: int32(i), x: soa.X[i], y: soa.Y[i],
				w: soa.W[i], h: soa.H[i], gx: soa.GX[i],
				movable: !soa.Fixed[i],
			})
		}
	}
	extractCore(r, int(soa.GX[targetID]), cands)
	return r
}

// extractCore runs the fixpoint and materialization over the gathered
// candidates. targetGX is the target's global x (window-centring hint).
func extractCore(r *Region, targetGX int, cands []candCell) {
	win := r.Window
	// Greatest-fixpoint iteration: start from the maximal tentative set
	// (every movable candidate fully inside the window) and demote cells
	// that fall outside the segments their own demoted peers induce. The
	// set shrinks monotonically, so the loop terminates. local is indexed
	// by candidate position; the segment and blocked-interval buffers are
	// allocated once and reused across iterations.
	local := make([]bool, len(cands))
	for k := range cands {
		c := &cands[k]
		if c.movable && win.Contains(c.rect()) {
			local[k] = true
		}
	}
	r.Segments = make([]Segment, win.H)
	blocked := make([][]iv, win.H)
	for {
		buildSegments(r, targetGX, cands, local, blocked)
		if !demote(r, cands, local) {
			break
		}
	}

	// Materialize localCells (ascending cell ID) and per-segment lists.
	sel := make([]int, 0, len(cands))
	for k := range cands {
		if local[k] {
			sel = append(sel, k)
		}
	}
	sort.Slice(sel, func(a, b int) bool { return cands[sel[a]].id < cands[sel[b]].id })
	for _, k := range sel {
		c := &cands[k]
		r.Cells = append(r.Cells, LocalCell{
			ID: int(c.id), X: int(c.x), Y: int(c.y), GX: int(c.gx), W: int(c.w), H: int(c.h),
		})
	}
	for li := range r.Cells {
		c := &r.Cells[li]
		for row := c.Y; row < c.Y+c.H; row++ {
			if seg := r.SegmentAt(row); seg != nil {
				seg.Cells = append(seg.Cells, li)
			}
		}
	}
	r.SortSegmentCells()

	// Density: occupied area over capacity, counting the incoming target.
	capacity := 0
	for i := range r.Segments {
		capacity += r.Segments[i].Len()
	}
	used := r.TargetW * r.TargetH
	for li := range r.Cells {
		used += r.Cells[li].W * r.Cells[li].H
	}
	if capacity > 0 {
		r.Density = float64(used) / float64(capacity)
	} else {
		r.Density = 1
	}
}

// buildSegments recomputes the per-row localSegment given the obstacle set
// (every candidate that is not a localCell). Among a row's free runs it
// prefers the one containing the target's desired position — the run the
// MGL window is meant to be centred on — and falls back to the longest run
// when the desired position is blocked. With windows small relative to
// blockage spacing (the normal case) the two rules coincide; the preference
// matters for expanded/fallback windows that straddle blockages.
func buildSegments(r *Region, targetGX int, cands []candCell, local []bool, blocked [][]iv) {
	win := r.Window
	cx := targetGX + r.TargetW/2
	if cx < win.X {
		cx = win.X
	}
	if cx >= win.X+win.W {
		cx = win.X + win.W - 1
	}
	for i := range blocked {
		blocked[i] = blocked[i][:0]
	}
	for k := range cands {
		if local[k] {
			continue
		}
		c := &cands[k]
		cy, ch, cxlo, cw := int(c.y), int(c.h), int(c.x), int(c.w)
		for row := geom.Max(cy, win.Y); row < geom.Min(cy+ch, win.Y+win.H); row++ {
			blocked[row-win.Y] = append(blocked[row-win.Y], iv{cxlo, cxlo + cw})
		}
	}
	for i := 0; i < win.H; i++ {
		row := win.Y + i
		ivs := blocked[i]
		// Insertion sort: per-row obstacle lists are short.
		for a := 1; a < len(ivs); a++ {
			for b := a; b > 0 && ivs[b].lo < ivs[b-1].lo; b-- {
				ivs[b], ivs[b-1] = ivs[b-1], ivs[b]
			}
		}
		longLo, longHi := 0, 0  // longest free run
		homeLo, homeHi := 0, -1 // run containing cx (if any)
		cur := win.X
		consider := func(hi int) {
			if hi-cur > longHi-longLo {
				longLo, longHi = cur, hi
			}
			if cur <= cx && cx < hi {
				homeLo, homeHi = cur, hi
			}
		}
		for _, b := range ivs {
			lo := geom.Max(b.lo, win.X)
			hi := geom.Min(b.hi, win.X+win.W)
			if lo > cur {
				consider(lo)
			}
			if hi > cur {
				cur = hi
			}
		}
		consider(win.X + win.W)
		if homeHi > homeLo {
			r.Segments[i] = Segment{Row: row, Lo: homeLo, Hi: homeHi}
		} else {
			r.Segments[i] = Segment{Row: row, Lo: longLo, Hi: longHi}
		}
	}
}

// demote clears the local flag of every tentative localCell no longer
// fully contained in the current segments (demotion-only refinement) and
// reports whether anything changed. In-place demotion is equivalent to
// rebuilding the set: segments are fixed during one pass, and each cell's
// verdict depends only on its own geometry against them.
func demote(r *Region, cands []candCell, local []bool) bool {
	changed := false
	for k := range cands {
		if !local[k] {
			continue
		}
		c := &cands[k]
		cx, cy, cw, ch := int(c.x), int(c.y), int(c.w), int(c.h)
		ok := r.Window.Contains(c.rect())
		if ok {
			for row := cy; row < cy+ch; row++ {
				seg := r.SegmentAt(row)
				if seg == nil || cx < seg.Lo || cx+cw > seg.Hi {
					ok = false
					break
				}
			}
		}
		if !ok {
			local[k] = false
			changed = true
		}
	}
	return changed
}
