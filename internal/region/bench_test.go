package region_test

import (
	"testing"

	"github.com/flex-eda/flex/internal/gen"
	"github.com/flex-eda/flex/internal/geom"
	"github.com/flex-eda/flex/internal/model"
	"github.com/flex-eda/flex/internal/region"
)

func benchIndex(b *testing.B) (*model.Layout, *region.Index) {
	l, err := gen.Small(4000, 0.72, 11).Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	idx := region.NewIndex(l, 32, 8, nil)
	return l, idx
}

// BenchmarkIndexQuery sweeps a legalizer-shaped window across the die,
// the query pattern the mgl engine issues once per placed cell.
func BenchmarkIndexQuery(b *testing.B) {
	l, idx := benchIndex(b)
	die := l.Die()
	var dst []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := (i * 37) % (die.W - 64)
		y := (i * 13) % (die.H - 16)
		dst = idx.Query(geom.NewRect(x, y, 64, 16), dst[:0])
	}
	_ = dst
}

// BenchmarkExtractFrom builds the local region for a fixed window set,
// the per-cell extraction step dominating the serial legalizer prologue.
func BenchmarkExtractFrom(b *testing.B) {
	l, idx := benchIndex(b)
	die := l.Die()
	placed := make([]bool, len(l.Cells))
	target := -1
	for i := range l.Cells {
		placed[i] = true
		if target < 0 && !l.Cells[i].Fixed {
			target = i
		}
	}
	wins := make([]geom.Rect, 16)
	for i := range wins {
		wins[i] = geom.NewRect((i*53)%(die.W-64), (i*17)%(die.H-16), 64, 16)
	}
	var cands []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		win := wins[i%len(wins)]
		cands = idx.Query(win, cands[:0])
		region.ExtractFrom(l, placed, target, win, cands)
	}
}

// BenchmarkExtractFromSoA is BenchmarkExtractFrom reading candidate
// geometry from the structure-of-arrays mirror, the mgl engine's path.
func BenchmarkExtractFromSoA(b *testing.B) {
	l, idx := benchIndex(b)
	die := l.Die()
	soa := model.NewSoA(l)
	placed := make([]bool, len(l.Cells))
	target := -1
	for i := range l.Cells {
		placed[i] = true
		if target < 0 && !l.Cells[i].Fixed {
			target = i
		}
	}
	wins := make([]geom.Rect, 16)
	for i := range wins {
		wins[i] = geom.NewRect((i*53)%(die.W-64), (i*17)%(die.H-16), 64, 16)
	}
	var cands []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		win := wins[i%len(wins)]
		cands = idx.Query(win, cands[:0])
		region.ExtractFromSoA(soa, placed, target, die, win, cands)
	}
}
