package region

import (
	"github.com/flex-eda/flex/internal/geom"
	"github.com/flex-eda/flex/internal/model"
)

// Index is a uniform-grid spatial index over a layout, used by the
// legalizer flow to enumerate the cells intersecting a window without
// scanning the whole design. Cells are re-binned when they move.
type Index struct {
	l          *model.Layout
	binW, binH int
	nx, ny     int
	bins       [][]int     // bin -> cell IDs (unsorted)
	where      []geom.Rect // cell ID -> rect it was binned under
	present    []bool      // cell ID -> currently indexed
}

// NewIndex builds an index over the layout with bins of the given size
// (sites × rows). Only cells for which include(id) is true are inserted;
// pass nil to index everything.
func NewIndex(l *model.Layout, binW, binH int, include func(int) bool) *Index {
	if binW <= 0 {
		binW = 32
	}
	if binH <= 0 {
		binH = 4
	}
	idx := &Index{
		l:    l,
		binW: binW, binH: binH,
		nx:      (l.NumSitesX + binW - 1) / binW,
		ny:      (l.NumRows + binH - 1) / binH,
		where:   make([]geom.Rect, len(l.Cells)),
		present: make([]bool, len(l.Cells)),
	}
	if idx.nx < 1 {
		idx.nx = 1
	}
	if idx.ny < 1 {
		idx.ny = 1
	}
	idx.bins = make([][]int, idx.nx*idx.ny)
	for i := range l.Cells {
		if include == nil || include(i) {
			idx.Add(i)
		}
	}
	return idx
}

func (idx *Index) binRange(r geom.Rect) (bx0, bx1, by0, by1 int) {
	bx0 = geom.Max(0, r.X/idx.binW)
	by0 = geom.Max(0, r.Y/idx.binH)
	bx1 = geom.Min(idx.nx-1, (r.X+r.W-1)/idx.binW)
	by1 = geom.Min(idx.ny-1, (r.Y+r.H-1)/idx.binH)
	return
}

// Add inserts cell id at its current position.
func (idx *Index) Add(id int) {
	if idx.present[id] {
		return
	}
	r := idx.l.Cells[id].Rect()
	bx0, bx1, by0, by1 := idx.binRange(r)
	for by := by0; by <= by1; by++ {
		for bx := bx0; bx <= bx1; bx++ {
			b := by*idx.nx + bx
			idx.bins[b] = append(idx.bins[b], id)
		}
	}
	idx.where[id] = r
	idx.present[id] = true
}

// Remove deletes cell id from the index.
func (idx *Index) Remove(id int) {
	if !idx.present[id] {
		return
	}
	r := idx.where[id]
	bx0, bx1, by0, by1 := idx.binRange(r)
	for by := by0; by <= by1; by++ {
		for bx := bx0; bx <= bx1; bx++ {
			b := by*idx.nx + bx
			s := idx.bins[b]
			for k, v := range s {
				if v == id {
					s[k] = s[len(s)-1]
					idx.bins[b] = s[:len(s)-1]
					break
				}
			}
		}
	}
	idx.present[id] = false
}

// Update re-bins cell id after its position changed.
func (idx *Index) Update(id int) {
	if !idx.present[id] {
		idx.Add(id)
		return
	}
	if idx.where[id] == idx.l.Cells[id].Rect() {
		return
	}
	idx.Remove(id)
	idx.Add(id)
}

// Query appends to dst the IDs of indexed cells whose rect overlaps win,
// without duplicates, and returns the extended slice. Deduplication is
// allocation-free: a cell spanning several bins is accepted only at the
// first query bin covering it in row-major order (its binned rect pins
// that bin down), which also preserves first-encounter output order. No
// state is shared across calls, so concurrent Query on one index is safe
// as long as no writer runs.
func (idx *Index) Query(win geom.Rect, dst []int) []int {
	bx0, bx1, by0, by1 := idx.binRange(win)
	for by := by0; by <= by1; by++ {
		for bx := bx0; bx <= bx1; bx++ {
			for _, id := range idx.bins[by*idx.nx+bx] {
				hbx0, _, hby0, _ := idx.binRange(idx.where[id])
				if by != geom.Max(by0, hby0) || bx != geom.Max(bx0, hbx0) {
					continue // counted at its first covering bin already
				}
				if idx.l.Cells[id].Rect().Overlaps(win) {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}
