package batch

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/flex-eda/flex/internal/sched"
)

// deviceJobs builds n jobs that each hold the batch device for a moment and
// record how many holders overlap, returning the job's index as its value.
func deviceJobs(n int, holders, maxHolders *atomic.Int32) []Job[int] {
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = func(ctx context.Context) (int, error) {
			release, err := AcquireDevice(ctx)
			if err != nil {
				return 0, err
			}
			defer release()
			h := holders.Add(1)
			for {
				m := maxHolders.Load()
				if h <= m || maxHolders.CompareAndSwap(m, h) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			holders.Add(-1)
			return i, nil
		}
	}
	return jobs
}

func TestDeviceBoundsConcurrentHolders(t *testing.T) {
	for _, capacity := range []int{1, 2} {
		var holders, max atomic.Int32
		dev := NewDevice(capacity)
		_, st, err := Run(context.Background(), deviceJobs(12, &holders, &max),
			Options{Workers: 6, Device: dev})
		if err != nil {
			t.Fatalf("capacity=%d: %v", capacity, err)
		}
		if got := max.Load(); int(got) > capacity {
			t.Fatalf("capacity=%d: observed %d concurrent holders", capacity, got)
		}
		ds := dev.Stats()
		if ds.Acquires != 12 {
			t.Fatalf("capacity=%d: %d acquires, want 12", capacity, ds.Acquires)
		}
		if ds.Capacity != capacity || st.FPGAs != capacity {
			t.Fatalf("capacity=%d: device reports %d, stats report %d", capacity, ds.Capacity, st.FPGAs)
		}
		if st.DeviceAcquires != 12 {
			t.Fatalf("capacity=%d: stats count %d acquires", capacity, st.DeviceAcquires)
		}
		if ds.Hold <= 0 || st.DeviceHold <= 0 {
			t.Fatalf("capacity=%d: no hold time recorded (device %v, stats %v)", capacity, ds.Hold, st.DeviceHold)
		}
	}
}

// TestDeviceContentionRecorded pins the scheduling signature: with one
// board and jobs that are all in the device phase, later jobs must wait,
// and the wait lands in their Result and the aggregate stats.
func TestDeviceContentionRecorded(t *testing.T) {
	dev := NewDevice(1)
	gate := make(chan struct{})
	first := make(chan struct{})
	jobs := []Job[int]{
		func(ctx context.Context) (int, error) {
			release, err := AcquireDevice(ctx)
			if err != nil {
				return 0, err
			}
			defer release()
			close(first) // board held; let the second job start queueing
			<-gate
			return 1, nil
		},
		func(ctx context.Context) (int, error) {
			<-first
			go func() {
				// Give the acquire below a beat to start blocking, then
				// free the board. Worst case the sleep is too short and
				// the wait is just smaller — never flaky-negative.
				time.Sleep(5 * time.Millisecond)
				close(gate)
			}()
			release, err := AcquireDevice(ctx)
			if err != nil {
				return 0, err
			}
			defer release()
			return 2, nil
		},
	}
	results, st, err := Run(context.Background(), jobs, Options{Workers: 2, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	if results[1].DeviceWait <= 0 {
		t.Fatalf("second job waited %v, want > 0", results[1].DeviceWait)
	}
	if st.DeviceWait <= 0 || st.DeviceContended == 0 {
		t.Fatalf("aggregate stats missed the contention: %+v", st)
	}
	if dev.Stats().Contended == 0 {
		t.Fatal("device counted no contended acquires")
	}
}

// TestDeviceDeterministicAcrossWorkersAndCapacity is the determinism
// contract extended to the device dimension: any workers × boards
// combination must produce identical values.
func TestDeviceDeterministicAcrossWorkersAndCapacity(t *testing.T) {
	const n = 24
	var want []int
	for _, workers := range []int{1, 4} {
		for _, capacity := range []int{1, 2, 3} {
			var holders, max atomic.Int32
			results, _, err := Run(context.Background(), deviceJobs(n, &holders, &max),
				Options{Workers: workers, Device: NewDevice(capacity)})
			if err != nil {
				t.Fatalf("workers=%d fpgas=%d: %v", workers, capacity, err)
			}
			got, err := Values(results)
			if err != nil {
				t.Fatalf("workers=%d fpgas=%d: %v", workers, capacity, err)
			}
			if want == nil {
				want = got
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("workers=%d fpgas=%d: result[%d] = %d, want %d",
						workers, capacity, i, got[i], want[i])
				}
			}
		}
	}
}

func TestAcquireDeviceWithoutDeviceIsFree(t *testing.T) {
	release, err := AcquireDevice(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release()
	release() // idempotent

	results, st, err := Run(context.Background(),
		[]Job[int]{func(ctx context.Context) (int, error) {
			r, err := AcquireDevice(ctx)
			if err != nil {
				return 0, err
			}
			defer r()
			return 42, nil
		}}, Options{Workers: 1})
	if err != nil || results[0].Err != nil || results[0].Value != 42 {
		t.Fatalf("device-less batch: %+v, %v", results, err)
	}
	if st.FPGAs != 0 || st.DeviceWait != 0 || results[0].DeviceWait != 0 {
		t.Fatalf("device-less batch recorded device stats: %+v", st)
	}
}

func TestAcquireDeviceHonorsCancel(t *testing.T) {
	dev := NewDevice(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctx = WithDevice(ctx, dev)

	hold, err := AcquireDevice(ctx)
	if err != nil {
		t.Fatal(err)
	}

	waitErr := make(chan error, 1)
	go func() {
		_, err := AcquireDevice(ctx)
		waitErr <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	if err := <-waitErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("blocked acquire returned %v, want context.Canceled", err)
	}
	hold() // stats for the successful acquisition land at release time
	// The aborted wait is real contention and must stay on the books.
	ds := dev.Stats()
	if ds.Wait <= 0 || ds.Contended == 0 {
		t.Fatalf("canceled wait vanished from stats: %+v", ds)
	}
	if ds.Acquires != 1 {
		t.Fatalf("acquires = %d, want 1 (the canceled attempt never got a token)", ds.Acquires)
	}
}

func TestDeviceReleaseIdempotent(t *testing.T) {
	dev := NewDevice(1)
	ctx := WithDevice(context.Background(), dev)
	release, err := AcquireDevice(ctx)
	if err != nil {
		t.Fatal(err)
	}
	release()
	release() // double release must not free a second token
	if got := dev.Stats().Acquires; got != 1 {
		t.Fatalf("acquires = %d, want 1", got)
	}
	// The pool still has exactly one token: two holders must contend.
	again, err := AcquireDevice(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer again()
	if _, err := dev.sem.Acquire(canceledCtx(), sched.Class{}); !errors.Is(err, context.Canceled) {
		t.Fatal("second token available after double release")
	}
}

func canceledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}
