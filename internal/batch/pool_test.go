package batch

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolReuseAcrossBatches(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 4})
	defer p.Close()
	for batchNo := 0; batchNo < 3; batchNo++ {
		results, st, err := RunOn(context.Background(), p, squares(16), false, nil)
		if err != nil {
			t.Fatalf("batch %d: %v", batchNo, err)
		}
		for i, r := range results {
			if r.Err != nil || r.Value != i*i {
				t.Fatalf("batch %d job %d: %+v", batchNo, i, r)
			}
		}
		if st.Jobs != 16 || st.Workers != 4 {
			t.Fatalf("batch %d stats %+v", batchNo, st)
		}
	}
	if got := p.JobsDone(); got != 48 {
		t.Fatalf("JobsDone = %d, want 48", got)
	}
}

func TestPoolBoundsConcurrencyAcrossBatches(t *testing.T) {
	const workers = 3
	p := NewPool(PoolConfig{Workers: workers})
	defer p.Close()
	var cur, max atomic.Int32
	job := func(context.Context) (struct{}, error) {
		n := cur.Add(1)
		for {
			m := max.Load()
			if n <= m || max.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return struct{}{}, nil
	}
	jobs := make([]Job[struct{}], 12)
	for i := range jobs {
		jobs[i] = job
	}
	var wg sync.WaitGroup
	for b := 0; b < 3; b++ { // three concurrent batches share the 3 workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := RunOn(context.Background(), p, jobs, false, nil); err != nil {
				t.Errorf("RunOn: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := max.Load(); got > workers {
		t.Fatalf("observed %d concurrent jobs across batches, pool bound is %d", got, workers)
	}
}

func TestPoolQueueDepthAdmission(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 1, QueueDepth: 2})
	defer p.Close()

	// A batch larger than the whole depth can never fit.
	if _, err := StreamOn(context.Background(), p, squares(3), false); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("oversized batch err = %v, want ErrOverloaded", err)
	}

	// Fill the queue with a batch the collector hasn't drained yet, then
	// watch a second batch bounce and admission recover after draining.
	started := make(chan struct{})
	release := make(chan struct{})
	blocked := []Job[int]{
		func(context.Context) (int, error) { close(started); <-release; return 1, nil },
		func(context.Context) (int, error) { return 2, nil },
	}
	ch, err := StreamOn(context.Background(), p, blocked, false)
	if err != nil {
		t.Fatalf("admitting batch rejected: %v", err)
	}
	<-started // both slots held: one running, one queued
	if _, err := StreamOn(context.Background(), p, squares(1), false); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second batch err = %v, want ErrOverloaded while queue is full", err)
	}
	close(release)
	for range ch {
	}
	results, _, err := RunOn(context.Background(), p, squares(2), false, nil)
	if err != nil {
		t.Fatalf("drained pool still rejects: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
}

func TestPoolRejectsAfterClose(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 1})
	p.Close()
	if _, err := StreamOn(context.Background(), p, squares(1), false); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("err = %v, want ErrPoolClosed", err)
	}
	if _, _, err := RunOn(context.Background(), p, squares(1), false, nil); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("RunOn err = %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}

func TestPoolCloseWaitsForInFlightBatch(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 2})
	release := make(chan struct{})
	jobs := []Job[int]{func(context.Context) (int, error) { <-release; return 9, nil }}
	ch, err := StreamOn(context.Background(), p, jobs, false)
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	go func() { p.Close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("Close returned while a batch was still in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	r := <-ch
	if r.Err != nil || r.Value != 9 {
		t.Fatalf("result %+v", r)
	}
	for range ch {
	}
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close never returned after the batch drained")
	}
}

// TestRunOnDeviceStatsArePerBatchDeltas pins the shared-device accounting:
// two sequential batches on one pool each report only their own acquires.
func TestRunOnDeviceStatsArePerBatchDeltas(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 2, FPGAs: 1})
	defer p.Close()
	job := func(ctx context.Context) (int, error) {
		release, err := AcquireDevice(ctx)
		if err != nil {
			return 0, err
		}
		defer release()
		return 1, nil
	}
	for batchNo := 0; batchNo < 2; batchNo++ {
		_, st, err := RunOn(context.Background(), p, []Job[int]{job, job}, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st.FPGAs != 1 {
			t.Fatalf("batch %d: FPGAs = %d, want 1", batchNo, st.FPGAs)
		}
		if st.DeviceAcquires != 2 {
			t.Fatalf("batch %d: acquires = %d, want per-batch delta 2", batchNo, st.DeviceAcquires)
		}
	}
	if total := p.Device().Stats().Acquires; total != 4 {
		t.Fatalf("device lifetime acquires = %d, want 4", total)
	}
}

func TestPoolFailFastIsolatedPerBatch(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 2})
	defer p.Close()
	boom := errors.New("boom")
	bad := make([]Job[int], 8)
	for i := range bad {
		i := i
		bad[i] = func(context.Context) (int, error) {
			if i == 0 {
				return 0, boom
			}
			time.Sleep(time.Millisecond)
			return i, nil
		}
	}
	if _, _, err := RunOn(context.Background(), p, bad, true, nil); !errors.Is(err, boom) {
		t.Fatalf("fail-fast batch err = %v, want boom", err)
	}
	// The sibling batch's context is its own: the tripped batch above must
	// not poison it.
	results, st, err := RunOn(context.Background(), p, squares(4), false, nil)
	if err != nil || st.Errors != 0 || st.Skipped != 0 {
		t.Fatalf("healthy batch after fail-fast sibling: err=%v stats=%+v", err, st)
	}
	for i, r := range results {
		if r.Err != nil || r.Value != i*i {
			t.Fatalf("job %d: %+v", i, r)
		}
	}
}
