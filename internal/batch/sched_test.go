package batch

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/flex-eda/flex/internal/sched"
)

// squaresClassed builds n trivial jobs with the given classes.
func squaresClassed(n int) []Job[int] {
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) { return i * i, nil }
	}
	return jobs
}

// TestClassedPoolRunsByPriority pins the scheduler wiring end to end: with
// one worker held busy, queued jobs complete in priority order, not
// submission order — and the results still land by submission index.
func TestClassedPoolRunsByPriority(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 1})
	defer p.Close()

	// Occupy the single worker so the classed batch queues in full.
	gate := make(chan struct{})
	started := make(chan struct{})
	blocker := []Job[int]{func(context.Context) (int, error) {
		close(started)
		<-gate
		return -1, nil
	}}
	bch, err := StreamOn(context.Background(), p, blocker, false)
	if err != nil {
		t.Fatal(err)
	}
	<-started

	var mu sync.Mutex
	var order []int
	jobs := make([]Job[int], 4)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			return i, nil
		}
	}
	classes := []sched.Class{
		{Priority: 0}, {Priority: 9}, {Priority: 4}, {Priority: 9},
	}
	ch, err := StreamClassedOn(context.Background(), p, jobs, classes, false)
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	for range bch {
	}
	results := make([]Result[int], len(jobs))
	for r := range ch {
		results[r.Index] = r
	}
	want := []int{1, 3, 2, 0} // 9, 9 (arrival order), 4, 0
	mu.Lock()
	defer mu.Unlock()
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("run order %v, want %v", order, want)
		}
	}
	for i, r := range results {
		if r.Err != nil || r.Value != i {
			t.Fatalf("result %d: %+v (classed scheduling must not change results)", i, r)
		}
	}
}

// TestSchedWaitRecorded pins the queue-wait measurement: a job that had to
// wait for the single busy worker reports a positive SchedWait.
func TestSchedWaitRecorded(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 1})
	defer p.Close()
	slow := func(context.Context) (int, error) {
		time.Sleep(10 * time.Millisecond)
		return 1, nil
	}
	fast := func(context.Context) (int, error) { return 2, nil }
	results, st, err := RunOn(context.Background(), p, []Job[int]{slow, fast}, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if results[1].SchedWait <= 0 {
		t.Fatalf("second job on a busy single worker waited %v, want > 0", results[1].SchedWait)
	}
	if st.SchedWait < results[1].SchedWait {
		t.Fatalf("stats SchedWait %v < job's %v", st.SchedWait, results[1].SchedWait)
	}
}

// TestExpiredDeadlineFailsFastWithoutRunning pins the deadline contract:
// a job whose absolute deadline passed while it queued surfaces
// sched.ErrDeadlineExceeded and its body never runs.
func TestExpiredDeadlineFailsFastWithoutRunning(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 1})
	defer p.Close()
	var ran atomic.Bool
	jobs := []Job[int]{
		func(context.Context) (int, error) {
			time.Sleep(5 * time.Millisecond)
			return 1, nil
		},
		func(context.Context) (int, error) {
			ran.Store(true)
			return 2, nil
		},
	}
	classes := []sched.Class{
		{},
		{Deadline: time.Now().Add(-time.Millisecond)}, // already expired
	}
	results, st, err := RunClassedOn(context.Background(), p, jobs, classes, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[1].Err, sched.ErrDeadlineExceeded) {
		t.Fatalf("expired job err = %v, want ErrDeadlineExceeded", results[1].Err)
	}
	if ran.Load() {
		t.Fatal("expired job's body ran")
	}
	if st.Errors != 1 {
		t.Fatalf("stats %+v, want 1 error", st)
	}
	// A future deadline must not trip.
	classes[1].Deadline = time.Now().Add(time.Hour)
	results, _, err = RunClassedOn(context.Background(), p, jobs, classes, false, nil)
	if err != nil || results[1].Err != nil {
		t.Fatalf("future deadline failed: %v, %+v", err, results[1])
	}
}

// TestClientQuotaCapsInFlight pins the per-tenant quota at the pool level:
// with quota 1, a client's jobs never run concurrently even with idle
// workers, while another client's jobs fill the slack.
func TestClientQuotaCapsInFlight(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 4, ClientQuota: 1})
	defer p.Close()
	var cur, max atomic.Int32
	job := func(context.Context) (int, error) {
		n := cur.Add(1)
		for {
			m := max.Load()
			if n <= m || max.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
		return 0, nil
	}
	jobs := make([]Job[int], 8)
	classes := make([]sched.Class, 8)
	for i := range jobs {
		jobs[i] = job
		classes[i] = sched.Class{Client: "tenant-a"}
	}
	if _, _, err := RunClassedOn(context.Background(), p, jobs, classes, false, nil); err != nil {
		t.Fatal(err)
	}
	if got := max.Load(); got > 1 {
		t.Fatalf("client at quota 1 had %d jobs in flight", got)
	}
}

// TestClientDepthAdmission pins the per-client admission bound: a batch
// pushing one client past ClientDepth is rejected atomically with a
// ClientOverloadedError naming the client, while other clients still fit.
func TestClientDepthAdmission(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 1, ClientDepth: 2})
	defer p.Close()

	oversized := make([]sched.Class, 3)
	for i := range oversized {
		oversized[i] = sched.Class{Client: "greedy"}
	}
	_, err := StreamClassedOn(context.Background(), p, squaresClassed(3), oversized, false)
	if !errors.Is(err, ErrClientOverloaded) {
		t.Fatalf("err = %v, want ErrClientOverloaded", err)
	}
	var coe *ClientOverloadedError
	if !errors.As(err, &coe) || coe.Client != "greedy" {
		t.Fatalf("rejection does not name the client: %v", err)
	}

	// Hold the client's two slots, then watch a third bounce while a
	// different client is still admitted.
	started := make(chan struct{})
	release := make(chan struct{})
	hold := []Job[int]{
		func(context.Context) (int, error) { close(started); <-release; return 1, nil },
		func(context.Context) (int, error) { return 2, nil },
	}
	two := []sched.Class{{Client: "greedy"}, {Client: "greedy"}}
	ch, err := StreamClassedOn(context.Background(), p, hold, two, false)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	_, err = StreamClassedOn(context.Background(), p, squaresClassed(1), []sched.Class{{Client: "greedy"}}, false)
	if !errors.Is(err, ErrClientOverloaded) {
		t.Fatalf("client at depth admitted: %v", err)
	}
	if p.AdmittedByClient("greedy") != 2 {
		t.Fatalf("AdmittedByClient = %d, want 2", p.AdmittedByClient("greedy"))
	}
	anon, err := StreamOn(context.Background(), p, squaresClassed(1), false)
	if err != nil {
		t.Fatalf("anonymous client rejected alongside: %v", err)
	}
	close(release)
	for range ch {
	}
	for range anon {
	}
}

// TestConcurrentBatchAdmissionUnderRace is the satellite stress: many
// concurrent batches race the admission bound; every batch either runs in
// full or is rejected atomically, and the admission counter returns to
// zero. Run under -race in CI.
func TestConcurrentBatchAdmissionUnderRace(t *testing.T) {
	const depth = 6
	p := NewPool(PoolConfig{Workers: 2, QueueDepth: depth, ClientDepth: 4})
	defer p.Close()
	var admitted, rejected atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := "even"
			if g%2 == 1 {
				client = "odd"
			}
			for iter := 0; iter < 20; iter++ {
				jobs := squaresClassed(2)
				classes := []sched.Class{{Client: client}, {Client: client, Priority: g}}
				results, _, err := RunClassedOn(context.Background(), p, jobs, classes, false, nil)
				switch {
				case errors.Is(err, ErrOverloaded) || errors.Is(err, ErrClientOverloaded):
					rejected.Add(1)
					if results != nil {
						t.Errorf("rejected batch returned results")
					}
				case err != nil:
					t.Errorf("batch error: %v", err)
				default:
					admitted.Add(1)
					for i, r := range results {
						if r.Err != nil || r.Value != i*i {
							t.Errorf("admitted batch lost job %d: %+v", i, r)
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	if admitted.Load() == 0 {
		t.Fatal("no batch was ever admitted")
	}
	if got := p.Admitted(); got != 0 {
		t.Fatalf("admission counter leaked: %d", got)
	}
	if got := p.AdmittedByClient("even") + p.AdmittedByClient("odd"); got != 0 {
		t.Fatalf("per-client admission counter leaked: %d", got)
	}
}

// TestCanceledBatchDrainsWithoutWorkers pins cancellation responsiveness:
// a canceled batch's still-queued jobs are dropped from the scheduler and
// skipped immediately — the stream drains even though the only worker is
// wedged under another tenant's job, instead of waiting its turn behind
// that backlog.
func TestCanceledBatchDrainsWithoutWorkers(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 1})
	defer p.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	blocker := []Job[int]{func(context.Context) (int, error) {
		close(started)
		<-release
		return 0, nil
	}}
	bch, err := StreamOn(context.Background(), p, blocker, false)
	if err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	ch, err := StreamOn(ctx, p, squaresClassed(8), false)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	drained := make(chan []Result[int], 1)
	go func() {
		var rs []Result[int]
		for r := range ch {
			rs = append(rs, r)
		}
		drained <- rs
	}()
	select {
	case rs := <-drained:
		if len(rs) != 8 {
			t.Fatalf("drained %d results, want 8", len(rs))
		}
		for _, r := range rs {
			if !errors.Is(r.Err, ErrSkipped) {
				t.Fatalf("job %d: %v, want ErrSkipped", r.Index, r.Err)
			}
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled batch stayed queued behind the wedged worker")
	}
	close(release)
	for range bch {
	}
}

// TestDeviceCancelDuringWaitStats is the satellite ordering test: a
// cancellation that lands while several jobs are queued for the board (not
// just one, and not in the happy teardown order) must keep every aborted
// wait on the books — Wait > 0 and Contended counts each aborted attempt —
// without double-freeing tokens.
func TestDeviceCancelDuringWaitStats(t *testing.T) {
	dev := NewDevice(1)
	ctx, cancel := context.WithCancel(context.Background())
	ctx = WithDevice(ctx, dev)

	hold, err := AcquireDevice(ctx)
	if err != nil {
		t.Fatal(err)
	}
	const waiters = 3
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, err := AcquireDevice(ctx)
			errs <- err
		}()
	}
	// Let every waiter queue, then cancel while the board is still held —
	// the unhappy ordering: cancellation strictly before release.
	time.Sleep(10 * time.Millisecond)
	cancel()
	for i := 0; i < waiters; i++ {
		if err := <-errs; !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter %d: %v, want context.Canceled", i, err)
		}
	}
	// Release after the cancellations — stats must survive this ordering.
	hold()
	ds := dev.Stats()
	if ds.Acquires != 1 {
		t.Fatalf("acquires = %d, want 1 (no canceled waiter got a token)", ds.Acquires)
	}
	if ds.Contended != waiters {
		t.Fatalf("contended = %d, want %d aborted waits", ds.Contended, waiters)
	}
	if ds.Wait <= 0 {
		t.Fatalf("aborted queue time vanished: %+v", ds)
	}
	// The board must be whole: a fresh acquire succeeds immediately.
	fresh := WithDevice(context.Background(), dev)
	release, err := AcquireDevice(fresh)
	if err != nil {
		t.Fatal(err)
	}
	release()
	if got := dev.Stats().Acquires; got != 2 {
		t.Fatalf("acquires after recovery = %d, want 2", got)
	}
}

// TestDeviceReconfigChargedBetweenJobs pins the reconfiguration model:
// consecutive holders from different jobs reprogram the board (and pay the
// modeled delay); a job re-acquiring its own board does not.
func TestDeviceReconfigChargedBetweenJobs(t *testing.T) {
	const cost = 5 * time.Millisecond
	dev := NewDeviceWith(1, cost, sched.Config{})
	acquireAs := func(job string) {
		ctx := WithDevice(context.Background(), dev)
		ctx = withClass(ctx, sched.Class{Job: job})
		release, err := AcquireDevice(ctx)
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	acquireAs("alpha") // first use: bitstream load
	acquireAs("alpha") // warm: no reconfig
	acquireAs("beta")  // swap: reconfig
	ds := dev.Stats()
	if ds.Reconfigs != 2 {
		t.Fatalf("reconfigs = %d, want 2 (first load + swap)", ds.Reconfigs)
	}
	if ds.ReconfigTime < 2*cost-time.Millisecond {
		t.Fatalf("reconfig time %v, want ~%v", ds.ReconfigTime, 2*cost)
	}
	if ds.Hold < ds.ReconfigTime {
		t.Fatalf("hold %v < reconfig time %v (programming keeps the board busy)", ds.Hold, ds.ReconfigTime)
	}
	if ds.ReconfigCost != cost {
		t.Fatalf("ReconfigCost = %v, want %v", ds.ReconfigCost, cost)
	}
}

// TestDeviceReconfigFreeByDefault pins the default: with no configured
// cost, reconfigurations are counted but charge no time, so existing
// configurations behave exactly as before.
func TestDeviceReconfigFreeByDefault(t *testing.T) {
	dev := NewDevice(1)
	ctx := WithDevice(context.Background(), dev)
	release, err := AcquireDevice(ctx)
	if err != nil {
		t.Fatal(err)
	}
	release()
	ds := dev.Stats()
	if ds.Reconfigs != 1 || ds.ReconfigTime != 0 {
		t.Fatalf("default-cost stats %+v, want 1 free reconfig", ds)
	}
}

// TestClassedResultsIdenticalAcrossPolicies is the determinism gate at the
// batch layer: the same classed job set yields identical values under
// FIFO, priority, and shuffled-priority schedules across worker counts.
func TestClassedResultsIdenticalAcrossPolicies(t *testing.T) {
	const n = 16
	jobs := squaresClassed(n)
	shuffled := make([]sched.Class, n)
	for i := range shuffled {
		shuffled[i] = sched.Class{Priority: (i * 7) % 5, Client: []string{"a", "b"}[i%2]}
	}
	var want []int
	for _, policy := range []sched.Policy{sched.FIFO(), sched.Default()} {
		for _, classes := range [][]sched.Class{nil, shuffled} {
			for _, workers := range []int{1, 4} {
				p := NewPool(PoolConfig{Workers: workers, Policy: policy})
				results, _, err := RunClassedOn(context.Background(), p, jobs, classes, false, nil)
				p.Close()
				if err != nil {
					t.Fatal(err)
				}
				got, err := Values(results)
				if err != nil {
					t.Fatal(err)
				}
				if want == nil {
					want = got
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("policy %v workers %d: result[%d] = %d, want %d",
							policy.Name(), workers, i, got[i], want[i])
					}
				}
			}
		}
	}
}
