package batch

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"
)

// ErrOverloaded rejects a batch whose jobs do not fit the pool's admission
// bound: queued plus running jobs would exceed PoolConfig.QueueDepth. The
// batch is rejected atomically, before any of its jobs start.
var ErrOverloaded = errors.New("batch: pool overloaded (queue full)")

// ErrPoolClosed rejects batches submitted after Close.
var ErrPoolClosed = errors.New("batch: pool closed")

// PoolConfig sizes a worker pool.
type PoolConfig struct {
	// Workers is the number of persistent worker goroutines (<= 0 =
	// GOMAXPROCS). It bounds concurrently running jobs across every batch
	// sharing the pool.
	Workers int
	// FPGAs is the modeled accelerator board count shared by every batch on
	// the pool (0 = 1 board, the paper's single-card host; negative =
	// unlimited, no device modeling) — the DevicePool knob.
	FPGAs int
	// QueueDepth bounds admitted jobs (queued + running, across batches);
	// 0 = unbounded. A batch larger than the whole depth can never be
	// admitted and is always rejected with ErrOverloaded.
	QueueDepth int
}

// Pool is a long-lived bounded worker pool shared by many batch runs — the
// persistent heart of a legalization service. Where Run/Stream spin workers
// up per call, a Pool keeps them (and the modeled accelerator boards) alive
// across batches, so cross-request state — device contention history,
// admission control — has somewhere to live.
//
// Concurrency-safe: batches from many goroutines interleave on the same
// workers. Determinism is untouched — jobs are pure functions of their
// inputs, so sharing workers and boards moves only wall-clock and wait
// statistics, never results.
type Pool struct {
	workers int
	device  *Device
	depth   int

	tasks chan func()
	wg    sync.WaitGroup // worker goroutines

	mu       sync.Mutex
	admitted int            // jobs admitted and not yet delivered
	batches  sync.WaitGroup // admitted batches still draining
	closed   bool
	jobsDone int64 // delivered results, cumulative
}

// NewPool starts the pool's workers. Callers must Close it to stop them.
func NewPool(cfg PoolConfig) *Pool {
	return newPool(cfg.Workers, DevicePool(cfg.FPGAs), cfg.QueueDepth)
}

// newPool is the internal constructor: a resolved device instead of the
// board-count knob, for the throwaway pools Run/Stream build per call.
func newPool(workers int, device *Device, depth int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		device:  device,
		depth:   depth,
		tasks:   make(chan func()),
	}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				task()
			}
		}()
	}
	return p
}

// Workers returns the persistent worker count.
func (p *Pool) Workers() int { return p.workers }

// Device returns the pool's shared accelerator board model (nil when the
// pool models unlimited boards).
func (p *Pool) Device() *Device { return p.device }

// JobsDone returns the cumulative number of job results delivered.
func (p *Pool) JobsDone() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.jobsDone
}

// Admitted returns the number of jobs admitted and not yet delivered right
// now — queued plus running, summed over every in-flight batch. Against
// PoolConfig.QueueDepth it measures current queue occupancy.
func (p *Pool) Admitted() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.admitted
}

// admit reserves n admission slots, or rejects the whole batch.
func (p *Pool) admit(n int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	if p.depth > 0 && p.admitted+n > p.depth {
		return ErrOverloaded
	}
	p.admitted += n
	p.batches.Add(1)
	return nil
}

// jobDelivered frees one admission slot once a job's result reached the
// batch's consumer — queue depth bounds the whole pipeline, including
// results not yet drained.
func (p *Pool) jobDelivered() {
	p.mu.Lock()
	p.admitted--
	p.jobsDone++
	p.mu.Unlock()
}

// batchDone marks one admitted batch fully drained.
func (p *Pool) batchDone() { p.batches.Done() }

// Close stops accepting batches, waits for admitted batches to drain, then
// stops the workers. It is idempotent and safe to call concurrently with
// running batches — but a batch whose result channel is abandoned
// un-drained blocks Close forever, the same leak the channel contract
// already forbids.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.batches.Wait()
	close(p.tasks)
	p.wg.Wait()
}

// effectiveWorkers is the concurrency a batch of n jobs can actually use on
// a pool of w workers — the Stats.Workers figure.
func effectiveWorkers(w, n int) int {
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// StreamOn executes jobs on the shared pool and sends every job's Result on
// the returned channel in completion order (use Result.Index to reorder).
// Exactly len(jobs) results are sent — skipped jobs carry ErrSkipped — and
// the channel is then closed. Callers must drain the channel (cancel ctx to
// stop early); abandoning it wedges the batch's admission slots and blocks
// Pool.Close.
//
// Admission is atomic: either every job fits the pool's queue depth and the
// batch runs, or StreamOn returns ErrOverloaded (ErrPoolClosed after Close)
// and nothing starts.
func StreamOn[T any](ctx context.Context, p *Pool, jobs []Job[T], failFast bool) (<-chan Result[T], error) {
	return streamOn(ctx, p, jobs, failFast, nil)
}

// streamOn is StreamOn with an after-drain hook, run after the result
// channel closes — how the per-call Stream wrapper tears its throwaway
// pool down without an extra relay goroutine.
func streamOn[T any](ctx context.Context, p *Pool, jobs []Job[T], failFast bool, onDrained func()) (<-chan Result[T], error) {
	if err := p.admit(len(jobs)); err != nil {
		return nil, err
	}
	out := make(chan Result[T])
	go func() {
		if onDrained != nil {
			defer onDrained()
		}
		defer close(out)
		defer p.batchDone()
		if len(jobs) == 0 {
			return
		}
		bctx, cancel := context.WithCancel(ctx)
		defer cancel()
		runCtx := bctx
		if p.device != nil {
			runCtx = WithDevice(bctx, p.device)
		}

		// Buffered to len(jobs): a finished worker never blocks on a slow
		// batch consumer, so one stalled stream cannot wedge the shared
		// pool's workers.
		results := make(chan Result[T], len(jobs))
		go func() {
			for i := range jobs {
				i := i
				task := func() {
					if bctx.Err() != nil {
						results <- Result[T]{Index: i, Err: ErrSkipped}
						return
					}
					jctx := runCtx
					var usage *deviceUsage
					if p.device != nil {
						usage = &deviceUsage{}
						jctx = context.WithValue(runCtx, usageKey{}, usage)
					}
					start := time.Now()
					v, err := jobs[i](jctx)
					if err != nil && failFast {
						cancel()
					}
					r := Result[T]{Index: i, Value: v, Err: err, Wall: time.Since(start)}
					if err != nil && bctx.Err() != nil &&
						(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
						r.aborted = true
					}
					if usage != nil {
						r.DeviceWait, r.DeviceHold = usage.wait, usage.hold
						r.deviceAcquires, r.deviceContended = usage.acquires, usage.contended
					}
					results <- r
				}
				select {
				case p.tasks <- task:
				case <-bctx.Done():
					results <- Result[T]{Index: i, Err: ErrSkipped}
				}
			}
		}()

		for n := 0; n < len(jobs); n++ {
			out <- <-results
			p.jobDelivered()
		}
	}()
	return out, nil
}

// RunOn executes jobs on the shared pool and returns one Result per job in
// submission order plus per-batch stats, with the same error contract as
// Run: per-job errors live in the results; the returned error is admission
// rejection (ErrOverloaded, ErrPoolClosed — then results and stats are
// zero), a batch cut short by ctx, or the first error under failFast.
// onResult (when non-nil) observes each result in completion order.
// Device statistics are summed from this batch's own jobs, so they stay
// exact per batch even when concurrent batches share the pool.
func RunOn[T any](ctx context.Context, p *Pool, jobs []Job[T], failFast bool, onResult func(Result[T])) ([]Result[T], Stats, error) {
	start := time.Now()
	ch, err := StreamOn(ctx, p, jobs, failFast)
	if err != nil {
		return nil, Stats{}, err
	}
	results := make([]Result[T], len(jobs))
	for r := range ch {
		results[r.Index] = r
		if onResult != nil {
			onResult(r)
		}
	}
	st := Stats{Jobs: len(jobs), Workers: effectiveWorkers(p.workers, len(jobs)), Wall: time.Since(start)}
	var firstErr, firstCancel error
	for i := range results {
		r := &results[i]
		st.WorkWall += r.Wall
		st.DeviceWait += r.DeviceWait
		st.DeviceHold += r.DeviceHold
		st.DeviceAcquires += r.deviceAcquires
		st.DeviceContended += r.deviceContended
		switch {
		case errors.Is(r.Err, ErrSkipped):
			st.Skipped++
		case r.Err != nil:
			st.Errors++
			if r.aborted {
				if firstCancel == nil {
					firstCancel = r.Err
				}
			} else if firstErr == nil {
				// Prefer the first root-cause error over a cancellation
				// echoed by an in-flight victim job.
				firstErr = r.Err
			}
		}
	}
	if p.device != nil {
		st.FPGAs = p.device.Capacity()
	}
	// A context error fails the batch whenever it actually cut the run
	// short: jobs were skipped, or in-flight jobs aborted with the
	// cancellation as their own error. A deadline firing after the last
	// job completed — even one where some job failed with its own
	// sub-context's timeout — leaves a full, perfectly good result set.
	if err := ctx.Err(); err != nil && (st.Skipped > 0 || firstCancel != nil) {
		return results, st, err
	}
	if firstErr == nil {
		// Only batch-abort cancellation errors remain: under FailFast
		// the batch still tripped and must not report success.
		firstErr = firstCancel
	}
	if failFast && firstErr != nil {
		return results, st, firstErr
	}
	return results, st, nil
}
