package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/flex-eda/flex/internal/sched"
)

// ErrOverloaded rejects a batch whose jobs do not fit the pool's admission
// bound: queued plus running jobs would exceed PoolConfig.QueueDepth. The
// batch is rejected atomically, before any of its jobs start.
var ErrOverloaded = errors.New("batch: pool overloaded (queue full)")

// ErrPoolClosed rejects batches submitted after Close.
var ErrPoolClosed = errors.New("batch: pool closed")

// ErrClientOverloaded rejects a batch whose jobs would push one client past
// the pool's per-client admission bound (PoolConfig.ClientDepth). Match it
// with errors.Is; the concrete error is a *ClientOverloadedError naming the
// client.
var ErrClientOverloaded = errors.New("batch: client queue full")

// ClientOverloadedError is the concrete per-client admission rejection: the
// named client's queued+running jobs would exceed the pool's ClientDepth.
type ClientOverloadedError struct {
	// Client is the tenant whose admission bound the batch tripped.
	Client string
}

// Error implements error.
func (e *ClientOverloadedError) Error() string {
	return fmt.Sprintf("batch: client %q queue full", e.Client)
}

// Is matches ErrClientOverloaded.
func (e *ClientOverloadedError) Is(target error) bool { return target == ErrClientOverloaded }

// PoolConfig sizes a worker pool.
type PoolConfig struct {
	// Workers is the number of persistent worker goroutines (<= 0 =
	// GOMAXPROCS). It bounds concurrently running jobs across every batch
	// sharing the pool.
	Workers int
	// FPGAs is the modeled accelerator board count shared by every batch on
	// the pool (0 = 1 board, the paper's single-card host; negative =
	// unlimited, no device modeling) — the DevicePool knob.
	FPGAs int
	// QueueDepth bounds admitted jobs (queued + running, across batches);
	// 0 = unbounded. A batch larger than the whole depth can never be
	// admitted and is always rejected with ErrOverloaded.
	QueueDepth int
	// Policy orders waiting jobs everywhere they queue — for a worker and
	// for a board. nil = sched.Default(): effective priority (base +
	// aging) descending, earliest deadline first within a level, weighted
	// fair share, then arrival order.
	Policy sched.Policy
	// ClientQuota caps concurrently running jobs per client (0 =
	// unlimited). Jobs over quota stay queued; they are deferred, never
	// rejected.
	ClientQuota int
	// ClientDepth bounds one client's admitted jobs (queued + running;
	// 0 = unbounded). A batch that would push any of its clients past the
	// bound is rejected atomically with a *ClientOverloadedError.
	ClientDepth int
	// ReconfigCost is the modeled board reconfiguration delay charged when
	// consecutive holders of one board come from different jobs (0 = free;
	// reconfigurations are counted either way).
	ReconfigCost time.Duration
}

// Pool is a long-lived bounded worker pool shared by many batch runs — the
// persistent heart of a legalization service. Where Run/Stream spin workers
// up per call, a Pool keeps them (and the modeled accelerator boards) alive
// across batches, so cross-request state — device contention history,
// admission control, the scheduling queue — has somewhere to live.
//
// Workers feed from a scheduled task queue (internal/sched) rather than a
// FIFO channel: jobs carry a sched.Class and the queue dequeues by policy —
// priority, deadline, aging, per-client quota and fairness. Concurrency-
// safe: batches from many goroutines interleave on the same workers.
// Determinism is untouched — jobs are pure functions of their inputs, so
// sharing workers and boards, or reordering the queue, moves only
// wall-clock and wait statistics, never results.
type Pool struct {
	workers int
	device  *Device
	depth   int
	cdepth  int
	queue   *sched.TaskQueue

	wg sync.WaitGroup // worker goroutines

	mu               sync.Mutex
	admitted         int            // jobs admitted and not yet delivered
	admittedByClient map[string]int // same, per client
	batches          sync.WaitGroup // admitted batches still draining
	closed           bool
	jobsDone         int64 // delivered results, cumulative
}

// NewPool starts the pool's workers. Callers must Close it to stop them.
func NewPool(cfg PoolConfig) *Pool {
	// One derivation of the scheduling config: the worker queue and the
	// board semaphore must never see different policies or quotas.
	scfg := sched.Config{Policy: cfg.Policy, Quota: cfg.ClientQuota}
	return newPool(cfg, scfg, DevicePoolWith(cfg.FPGAs, cfg.ReconfigCost, scfg))
}

// newPool is the internal constructor: a resolved scheduling config and
// device instead of the knobs, for the throwaway pools Run/Stream build
// per call.
func newPool(cfg PoolConfig, scfg sched.Config, device *Device) *Pool {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers:          workers,
		device:           device,
		depth:            cfg.QueueDepth,
		cdepth:           cfg.ClientDepth,
		queue:            sched.NewTaskQueue(scfg),
		admittedByClient: make(map[string]int),
	}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				run, ok := p.queue.Pop()
				if !ok {
					return
				}
				run()
			}
		}()
	}
	return p
}

// Workers returns the persistent worker count.
func (p *Pool) Workers() int { return p.workers }

// Device returns the pool's shared accelerator board model (nil when the
// pool models unlimited boards).
func (p *Pool) Device() *Device { return p.device }

// Depths snapshots the scheduling queue's occupancy: waiting jobs by base
// priority and by client, plus running jobs by client — the service's
// per-priority queue-depth statistics.
func (p *Pool) Depths() sched.Depths { return p.queue.Depths() }

// JobsDone returns the cumulative number of job results delivered.
func (p *Pool) JobsDone() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.jobsDone
}

// Admitted returns the number of jobs admitted and not yet delivered right
// now — queued plus running, summed over every in-flight batch. Against
// PoolConfig.QueueDepth it measures current queue occupancy.
func (p *Pool) Admitted() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.admitted
}

// AdmittedByClient returns the named client's admitted-and-undelivered job
// count — the occupancy the per-client admission bound (ClientDepth) is
// measured against, and the honest basis of a per-client Retry-After.
func (p *Pool) AdmittedByClient(client string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.admittedByClient[client]
}

// admit reserves admission slots for every class, or rejects the whole
// batch: over the global depth with ErrOverloaded, over one client's depth
// with a *ClientOverloadedError naming the client.
func (p *Pool) admit(classes []sched.Class) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	if p.depth > 0 && p.admitted+len(classes) > p.depth {
		return ErrOverloaded
	}
	if p.cdepth > 0 {
		perClient := make(map[string]int)
		for _, c := range classes {
			perClient[c.Client]++
		}
		for client, n := range perClient {
			if p.admittedByClient[client]+n > p.cdepth {
				return &ClientOverloadedError{Client: client}
			}
		}
	}
	p.admitted += len(classes)
	for _, c := range classes {
		p.admittedByClient[c.Client]++
	}
	p.batches.Add(1)
	return nil
}

// jobDelivered frees one admission slot once a job's result reached the
// batch's consumer — queue depth bounds the whole pipeline, including
// results not yet drained.
func (p *Pool) jobDelivered(client string) {
	p.mu.Lock()
	p.admitted--
	p.admittedByClient[client]--
	if p.admittedByClient[client] <= 0 {
		delete(p.admittedByClient, client)
	}
	p.jobsDone++
	p.mu.Unlock()
}

// batchDone marks one admitted batch fully drained.
func (p *Pool) batchDone() { p.batches.Done() }

// Close stops accepting batches, waits for admitted batches to drain, then
// stops the workers. It is idempotent and safe to call concurrently with
// running batches — but a batch whose result channel is abandoned
// un-drained blocks Close forever, the same leak the channel contract
// already forbids.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.batches.Wait()
	p.queue.Close()
	p.wg.Wait()
}

// effectiveWorkers is the concurrency a batch of n jobs can actually use on
// a pool of w workers — the Stats.Workers figure.
func effectiveWorkers(w, n int) int {
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// StreamOn executes jobs on the shared pool and sends every job's Result on
// the returned channel in completion order (use Result.Index to reorder).
// Exactly len(jobs) results are sent — skipped jobs carry ErrSkipped — and
// the channel is then closed. Callers must drain the channel (cancel ctx to
// stop early); abandoning it wedges the batch's admission slots and blocks
// Pool.Close.
//
// Admission is atomic: either every job fits the pool's queue depth and the
// batch runs, or StreamOn returns ErrOverloaded (ErrPoolClosed after Close)
// and nothing starts. Jobs run under the zero scheduling class; see
// StreamClassedOn for classed batches.
func StreamOn[T any](ctx context.Context, p *Pool, jobs []Job[T], failFast bool) (<-chan Result[T], error) {
	return streamOn(ctx, p, jobs, nil, failFast, nil)
}

// StreamClassedOn is StreamOn with one sched.Class per job: the pool's
// scheduler orders the jobs by class everywhere they wait, per-client
// admission bounds apply (a rejection is a *ClientOverloadedError), and a
// job whose deadline has passed when a worker picks it up fails fast with
// sched.ErrDeadlineExceeded without running. classes must be nil (all
// zero) or len(jobs) long.
func StreamClassedOn[T any](ctx context.Context, p *Pool, jobs []Job[T], classes []sched.Class, failFast bool) (<-chan Result[T], error) {
	return streamOn(ctx, p, jobs, classes, failFast, nil)
}

// streamOn is the shared stream implementation, with an after-drain hook
// run after the result channel closes — how the per-call Stream wrapper
// tears its throwaway pool down without an extra relay goroutine.
func streamOn[T any](ctx context.Context, p *Pool, jobs []Job[T], classes []sched.Class, failFast bool, onDrained func()) (<-chan Result[T], error) {
	if classes != nil && len(classes) != len(jobs) {
		return nil, fmt.Errorf("batch: %d classes for %d jobs", len(classes), len(jobs))
	}
	cls := func(i int) sched.Class {
		if classes == nil {
			return sched.Class{}
		}
		return classes[i]
	}
	admitClasses := classes
	if admitClasses == nil {
		admitClasses = make([]sched.Class, len(jobs))
	}
	if err := p.admit(admitClasses); err != nil {
		return nil, err
	}
	out := make(chan Result[T])
	go func() {
		if onDrained != nil {
			defer onDrained()
		}
		defer close(out)
		defer p.batchDone()
		if len(jobs) == 0 {
			return
		}
		bctx, cancel := context.WithCancel(ctx)
		defer cancel()
		runCtx := bctx
		if p.device != nil {
			runCtx = WithDevice(bctx, p.device)
		}

		// Buffered to len(jobs): a finished worker never blocks on a slow
		// batch consumer, so one stalled stream cannot wedge the shared
		// pool's workers.
		results := make(chan Result[T], len(jobs))
		tickets := make([]*sched.Ticket, len(jobs))
		for i := range jobs {
			i := i
			class := cls(i)
			tickets[i] = p.queue.Push(class, func(queued time.Duration) {
				r := Result[T]{Index: i, SchedWait: queued}
				switch {
				case bctx.Err() != nil:
					r.Err = ErrSkipped
				//flexvet:walltime deadlines are wall-clock by contract; expiry moves only errors, never output
				case class.Expired(time.Now()):
					// The deadline passed while the job queued: fail fast
					// without running the engine.
					r.Err = sched.ErrDeadlineExceeded
					if failFast {
						cancel()
					}
				default:
					jctx := withClass(runCtx, class)
					var usage *deviceUsage
					if p.device != nil {
						usage = &deviceUsage{}
						jctx = context.WithValue(jctx, usageKey{}, usage)
					}
					start := time.Now() //flexvet:walltime per-job wall for Result.Wall, reported on stderr only
					jctx = withSchedInfo(jctx, queued, start)
					v, err := jobs[i](jctx)
					if err != nil && failFast {
						cancel()
					}
					//flexvet:walltime Result.Wall is stderr/stats telemetry, excluded from BENCH files
					r.Value, r.Err, r.Wall = v, err, time.Since(start)
					if err != nil && bctx.Err() != nil &&
						(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
						r.aborted = true
					}
					if usage != nil {
						r.DeviceWait, r.DeviceHold = usage.wait, usage.hold
						r.DeviceReconfigs = usage.reconfigs
						r.deviceAcquires, r.deviceContended = usage.acquires, usage.contended
						r.deviceReconfigTime = usage.reconfigTime
					}
				}
				results <- r
			})
		}

		// Collect every job's result. On cancellation, still-queued tasks
		// are dropped from the scheduler at once and skipped here — a
		// canceled batch must not wait for workers to churn through other
		// tenants' backlog just to emit its skips.
		deliver := func(r Result[T]) {
			out <- r
			p.jobDelivered(cls(r.Index).Client)
		}
		remaining := len(jobs)
		for remaining > 0 {
			select {
			case r := <-results:
				deliver(r)
				remaining--
				continue
			case <-bctx.Done():
			}
			for _, i := range p.queue.Drop(tickets) {
				deliver(Result[T]{Index: i, Err: ErrSkipped})
				remaining--
			}
			// Whatever already reached a worker delivers the normal way.
			for remaining > 0 {
				deliver(<-results)
				remaining--
			}
		}
	}()
	return out, nil
}

// RunOn executes jobs on the shared pool and returns one Result per job in
// submission order plus per-batch stats, with the same error contract as
// Run: per-job errors live in the results; the returned error is admission
// rejection (ErrOverloaded, ErrPoolClosed — then results and stats are
// zero), a batch cut short by ctx, or the first error under failFast.
// onResult (when non-nil) observes each result in completion order.
// Device statistics are summed from this batch's own jobs, so they stay
// exact per batch even when concurrent batches share the pool.
func RunOn[T any](ctx context.Context, p *Pool, jobs []Job[T], failFast bool, onResult func(Result[T])) ([]Result[T], Stats, error) {
	return RunClassedOn(ctx, p, jobs, nil, failFast, onResult)
}

// RunClassedOn is RunOn with one sched.Class per job — the blocking form of
// StreamClassedOn, with its scheduling, quota, and deadline semantics.
func RunClassedOn[T any](ctx context.Context, p *Pool, jobs []Job[T], classes []sched.Class, failFast bool, onResult func(Result[T])) ([]Result[T], Stats, error) {
	start := time.Now() //flexvet:walltime batch wall for Stats.Wall, reported on stderr only
	ch, err := streamOn(ctx, p, jobs, classes, failFast, nil)
	if err != nil {
		return nil, Stats{}, err
	}
	results := make([]Result[T], len(jobs))
	for r := range ch {
		results[r.Index] = r
		if onResult != nil {
			onResult(r)
		}
	}
	//flexvet:walltime Stats.Wall is stderr/stats telemetry, excluded from BENCH files
	st := Stats{Jobs: len(jobs), Workers: effectiveWorkers(p.workers, len(jobs)), Wall: time.Since(start)}
	var firstErr, firstCancel error
	for i := range results {
		r := &results[i]
		st.WorkWall += r.Wall
		st.SchedWait += r.SchedWait
		st.DeviceWait += r.DeviceWait
		st.DeviceHold += r.DeviceHold
		st.DeviceAcquires += r.deviceAcquires
		st.DeviceContended += r.deviceContended
		st.DeviceReconfigs += r.DeviceReconfigs
		st.DeviceReconfigTime += r.deviceReconfigTime
		switch {
		case errors.Is(r.Err, ErrSkipped):
			st.Skipped++
		case r.Err != nil:
			st.Errors++
			if r.aborted {
				if firstCancel == nil {
					firstCancel = r.Err
				}
			} else if firstErr == nil {
				// Prefer the first root-cause error over a cancellation
				// echoed by an in-flight victim job.
				firstErr = r.Err
			}
		}
	}
	if p.device != nil {
		st.FPGAs = p.device.Capacity()
	}
	// A context error fails the batch whenever it actually cut the run
	// short: jobs were skipped, or in-flight jobs aborted with the
	// cancellation as their own error. A deadline firing after the last
	// job completed — even one where some job failed with its own
	// sub-context's timeout — leaves a full, perfectly good result set.
	if err := ctx.Err(); err != nil && (st.Skipped > 0 || firstCancel != nil) {
		return results, st, err
	}
	if firstErr == nil {
		// Only batch-abort cancellation errors remain: under FailFast
		// the batch still tripped and must not report success.
		firstErr = firstCancel
	}
	if failFast && firstErr != nil {
		return results, st, firstErr
	}
	return results, st, nil
}
