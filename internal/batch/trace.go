package batch

import (
	"context"
	"time"
)

// schedInfoKey carries the job's scheduling timeline through the job
// context: how long it queued and when a worker picked it up. The
// service's trace layer turns this into a sched-wait span and a queue-
// wait histogram sample; it never feeds results.
type schedInfoKey struct{}

type schedInfo struct {
	queued time.Duration
	start  time.Time
}

// withSchedInfo stamps the job's queue wait and pickup time on its
// context; the pool does this right before invoking the job.
func withSchedInfo(ctx context.Context, queued time.Duration, start time.Time) context.Context {
	return context.WithValue(ctx, schedInfoKey{}, schedInfo{queued: queued, start: start})
}

// SchedInfo returns the running job's queue wait and the wall time a
// worker picked it up, when called from inside a pool job. Both are
// telemetry — span and histogram inputs only, never result bytes.
func SchedInfo(ctx context.Context) (queued time.Duration, start time.Time, ok bool) {
	si, ok := ctx.Value(schedInfoKey{}).(schedInfo)
	return si.queued, si.start, ok
}
