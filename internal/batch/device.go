package batch

import (
	"context"
	"sync"
	"time"
)

// Device models a pool of physical accelerator boards shared by every job
// of a batch — the paper's single Alveo card multiplexed across a host's
// concurrent legalization jobs. It is a counting semaphore with capacity =
// the number of boards: a job's accelerator-resident phase holds one token
// while its CPU phases (and every CPU-only sibling job) keep overlapping.
//
// Holding a token never changes what a job computes — engines are pure
// functions of their inputs — so results stay byte-identical for any
// capacity; only wall-clock and wait statistics move.
type Device struct {
	sem chan struct{}

	mu    sync.Mutex
	stats DeviceStats
}

// DeviceStats aggregates a device's acquisition history.
type DeviceStats struct {
	// Capacity is the number of modeled boards.
	Capacity int
	// Acquires counts successful token acquisitions; Contended counts
	// acquisition attempts that had to wait because every board was busy,
	// including waits aborted by cancellation — so in a canceled batch
	// Contended can exceed Acquires.
	Acquires  int
	Contended int
	// Wait is the total time jobs spent queued for a token (including
	// queue time of canceled attempts); Hold is the total time tokens
	// were held (the boards' modeled busy time).
	Wait time.Duration
	Hold time.Duration
}

// NewDevice builds a device pool with the given capacity (<= 0 means 1,
// the paper's single-board host).
func NewDevice(capacity int) *Device {
	if capacity <= 0 {
		capacity = 1
	}
	return &Device{
		sem:   make(chan struct{}, capacity),
		stats: DeviceStats{Capacity: capacity},
	}
}

// DevicePool maps a board-count knob (a -fpgas flag, say) to a device:
// negative means unlimited boards (nil, no contention modeling), zero means
// the paper's single card, positive is the pool size. Callers share this
// policy so every CLI and driver reads the knob identically.
func DevicePool(fpgas int) *Device {
	if fpgas < 0 {
		return nil
	}
	return NewDevice(fpgas)
}

// Capacity returns the number of modeled boards.
func (d *Device) Capacity() int { return cap(d.sem) }

// Stats snapshots the cumulative acquisition statistics.
func (d *Device) Stats() DeviceStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// acquire takes one token, blocking until a board frees up or ctx is
// canceled. It reports whether the acquisition had to wait.
func (d *Device) acquire(ctx context.Context) (contended bool, err error) {
	select {
	case d.sem <- struct{}{}:
		return false, nil
	default:
	}
	select {
	case d.sem <- struct{}{}:
		return true, nil
	case <-ctx.Done():
		return true, ctx.Err()
	}
}

func (d *Device) release() { <-d.sem }

func (d *Device) note(contended bool, wait, hold time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Wait += wait
	d.stats.Hold += hold
	d.stats.Acquires++
	if contended {
		d.stats.Contended++
	}
}

// noteCanceled records a blocked acquisition the batch canceled before a
// board freed up: the queue time is real contention and must not vanish
// from the report just because the wait was aborted.
func (d *Device) noteCanceled(wait time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Wait += wait
	d.stats.Contended++
}

// deviceKey/usageKey carry the batch's device and the running job's usage
// recorder through the job context.
type (
	deviceKey struct{}
	usageKey  struct{}
)

// deviceUsage accumulates one job's device time and acquisition counts. It
// is written by AcquireDevice and read by the worker after the job returns,
// all on the job's goroutine. Per-job counts let a batch report exact
// per-batch acquisition statistics even when concurrent batches share one
// pool — a delta of the pool's cumulative stats would blend the siblings.
type deviceUsage struct {
	wait      time.Duration
	hold      time.Duration
	acquires  int
	contended int
}

// WithDevice returns a context carrying the device pool; jobs claim their
// accelerator phase from it via AcquireDevice. Stream attaches
// Options.Device automatically.
func WithDevice(ctx context.Context, d *Device) context.Context {
	return context.WithValue(ctx, deviceKey{}, d)
}

// DeviceFrom returns the context's device pool, or nil when the batch has
// no accelerator model attached.
func DeviceFrom(ctx context.Context) *Device {
	d, _ := ctx.Value(deviceKey{}).(*Device)
	return d
}

// AcquireDevice claims one modeled board for the calling job's
// accelerator-resident phase and returns the release function; the caller
// must invoke release (it is idempotent) when the phase ends. Without a
// device on the context this is a free no-op, so engine code may declare
// its accelerator phase unconditionally and still run outside any batch.
// The blocking wait honors ctx: a canceled batch returns ctx.Err() and no
// token. A job must release before re-acquiring — recursive holds
// self-deadlock at capacity 1.
func AcquireDevice(ctx context.Context) (release func(), err error) {
	d := DeviceFrom(ctx)
	if d == nil {
		return func() {}, nil
	}
	start := time.Now()
	usage, _ := ctx.Value(usageKey{}).(*deviceUsage)
	contended, err := d.acquire(ctx)
	wait := time.Since(start)
	if err != nil {
		// The aborted wait was still time spent queued for the board.
		if usage != nil {
			usage.wait += wait
			usage.contended++
		}
		d.noteCanceled(wait)
		return nil, err
	}
	if usage != nil {
		usage.wait += wait
		usage.acquires++
		if contended {
			usage.contended++
		}
	}
	heldAt := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			hold := time.Since(heldAt)
			if usage != nil {
				usage.hold += hold
			}
			d.note(contended, wait, hold)
			d.release()
		})
	}, nil
}
