package batch

import (
	"context"
	"sync"
	"time"

	"github.com/flex-eda/flex/internal/obs"
	"github.com/flex-eda/flex/internal/sched"
)

// Device models a pool of physical accelerator boards shared by every job
// of a batch — the paper's single Alveo card multiplexed across a host's
// concurrent legalization jobs. Board tokens are handed out by a scheduled
// semaphore (internal/sched): waiters are served in policy order — priority,
// deadline, fairness — instead of arrival order, and each board remembers
// the configuration (bitstream) of its last holder so the model can charge
// a reconfiguration delay when consecutive holders come from different
// jobs. Assignment is affinity-aware: a job is steered to a board already
// carrying its configuration when one is free.
//
// Holding a token never changes what a job computes — engines are pure
// functions of their inputs — so results stay byte-identical for any
// capacity, policy, or reconfiguration cost; only wall-clock and wait
// statistics move.
type Device struct {
	sem  *sched.Semaphore
	cost time.Duration

	mu    sync.Mutex
	stats DeviceStats
}

// DeviceStats aggregates a device's acquisition history.
type DeviceStats struct {
	// Capacity is the number of modeled boards.
	Capacity int
	// Acquires counts successful token acquisitions; Contended counts
	// acquisition attempts that had to wait because every board was busy,
	// including waits aborted by cancellation — so in a canceled batch
	// Contended can exceed Acquires.
	Acquires  int
	Contended int
	// Wait is the total time jobs spent queued for a token (including
	// queue time of canceled attempts); Hold is the total time tokens
	// were held (the boards' modeled busy time, reconfiguration included).
	Wait time.Duration
	Hold time.Duration
	// Reconfigs counts acquisitions that had to reprogram their board: the
	// acquiring job's configuration differed from the board's previous
	// holder's (each board's first use included — the bitstream must be
	// loaded). ReconfigTime is the total modeled programming time charged
	// for them; it is part of Hold. ReconfigCost echoes the per-swap delay
	// the device was built with (0 = reconfigurations are counted but
	// free).
	Reconfigs    int
	ReconfigTime time.Duration
	ReconfigCost time.Duration
}

// NewDevice builds a device pool with the given capacity (<= 0 means 1,
// the paper's single-board host), default scheduling, and no
// reconfiguration cost.
func NewDevice(capacity int) *Device {
	return NewDeviceWith(capacity, 0, sched.Config{})
}

// NewDeviceWith builds a device pool with an explicit board-queue
// scheduling configuration and a modeled per-swap reconfiguration delay:
// every acquisition whose job differs from the board's previous holder
// keeps the board busy for reconfigCost before the job's own device phase
// starts.
func NewDeviceWith(capacity int, reconfigCost time.Duration, cfg sched.Config) *Device {
	if capacity <= 0 {
		capacity = 1
	}
	if reconfigCost < 0 {
		reconfigCost = 0
	}
	return &Device{
		sem:   sched.NewSemaphore(capacity, cfg),
		cost:  reconfigCost,
		stats: DeviceStats{Capacity: capacity, ReconfigCost: reconfigCost},
	}
}

// DevicePool maps a board-count knob (a -fpgas flag, say) to a device:
// negative means unlimited boards (nil, no contention modeling), zero means
// the paper's single card, positive is the pool size. Callers share this
// policy so every CLI and driver reads the knob identically.
func DevicePool(fpgas int) *Device {
	return DevicePoolWith(fpgas, 0, sched.Config{})
}

// DevicePoolWith is DevicePool with the board queue's scheduling
// configuration and the modeled reconfiguration cost.
func DevicePoolWith(fpgas int, reconfigCost time.Duration, cfg sched.Config) *Device {
	if fpgas < 0 {
		return nil
	}
	return NewDeviceWith(fpgas, reconfigCost, cfg)
}

// Capacity returns the number of modeled boards.
func (d *Device) Capacity() int { return d.sem.Capacity() }

// ReconfigCost returns the modeled per-swap board programming delay.
func (d *Device) ReconfigCost() time.Duration { return d.cost }

// Stats snapshots the cumulative acquisition statistics.
func (d *Device) Stats() DeviceStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

func (d *Device) note(contended, reconfig bool, wait, hold, reconfigTime time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Wait += wait
	d.stats.Hold += hold
	d.stats.Acquires++
	if contended {
		d.stats.Contended++
	}
	if reconfig {
		d.stats.Reconfigs++
		d.stats.ReconfigTime += reconfigTime
	}
}

// noteCanceled records a blocked acquisition the batch canceled before a
// board freed up: the queue time is real contention and must not vanish
// from the report just because the wait was aborted.
func (d *Device) noteCanceled(wait time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Wait += wait
	d.stats.Contended++
}

// deviceKey/usageKey/classKey carry the batch's device, the running job's
// usage recorder, and the job's scheduling class through the job context.
type (
	deviceKey struct{}
	usageKey  struct{}
	classKey  struct{}
)

// deviceUsage accumulates one job's device time and acquisition counts. It
// is written by AcquireDevice and read by the worker after the job returns,
// all on the job's goroutine. Per-job counts let a batch report exact
// per-batch acquisition statistics even when concurrent batches share one
// pool — a delta of the pool's cumulative stats would blend the siblings.
type deviceUsage struct {
	wait         time.Duration
	hold         time.Duration
	acquires     int
	contended    int
	reconfigs    int
	reconfigTime time.Duration
}

// AddRemoteDeviceUsage folds device telemetry a remote fleet worker
// reported for the calling job into the job's usage record, so a
// coordinator's per-batch device statistics include board time its fleet
// spent on the job's behalf. The remote wait/hold never touch the local
// Device pool — those boards are the worker's — and a context without a
// usage record (the batch models no device) drops the telemetry.
func AddRemoteDeviceUsage(ctx context.Context, wait, hold time.Duration, reconfigs int) {
	usage, _ := ctx.Value(usageKey{}).(*deviceUsage)
	if usage == nil {
		return
	}
	usage.wait += wait
	usage.hold += hold
	usage.reconfigs += reconfigs
}

// WithDevice returns a context carrying the device pool; jobs claim their
// accelerator phase from it via AcquireDevice. Stream attaches
// Options.Device automatically.
func WithDevice(ctx context.Context, d *Device) context.Context {
	return context.WithValue(ctx, deviceKey{}, d)
}

// DeviceFrom returns the context's device pool, or nil when the batch has
// no accelerator model attached.
func DeviceFrom(ctx context.Context) *Device {
	d, _ := ctx.Value(deviceKey{}).(*Device)
	return d
}

// withClass returns a context carrying the job's scheduling class, so
// AcquireDevice can queue for boards under the job's priority, deadline and
// configuration identity.
func withClass(ctx context.Context, c sched.Class) context.Context {
	return context.WithValue(ctx, classKey{}, c)
}

// classFrom returns the context's scheduling class (zero outside a classed
// batch — neutral priority, anonymous client, always-reconfigure).
func classFrom(ctx context.Context) sched.Class {
	c, _ := ctx.Value(classKey{}).(sched.Class)
	return c
}

// AcquireDevice claims one modeled board for the calling job's
// accelerator-resident phase and returns the release function; the caller
// must invoke release (it is idempotent) when the phase ends. Without a
// device on the context this is a free no-op, so engine code may declare
// its accelerator phase unconditionally and still run outside any batch.
// The blocking wait honors ctx: a canceled batch returns ctx.Err() and no
// token. When the granted board's previous holder ran a different job, the
// board stays busy for the device's modeled reconfiguration delay before
// this call returns. A job must release before re-acquiring — recursive
// holds self-deadlock at capacity 1.
//
//flexvet:walltime wait/hold/reconfig measurement is the device model's telemetry: stderr lines and stats sinks only
func AcquireDevice(ctx context.Context) (release func(), err error) {
	d := DeviceFrom(ctx)
	if d == nil {
		return func() {}, nil
	}
	class := classFrom(ctx)
	usage, _ := ctx.Value(usageKey{}).(*deviceUsage)
	start := time.Now()
	g, err := d.sem.Acquire(ctx, class)
	wait := time.Since(start)
	obs.Record(ctx, "device-wait", "", start, start.Add(wait))
	if err != nil {
		// The aborted wait was still time spent queued for the board.
		if usage != nil {
			usage.wait += wait
			usage.contended++
		}
		d.noteCanceled(wait)
		return nil, err
	}
	heldAt := time.Now()
	var reconfigTime time.Duration
	if g.Reconfig && d.cost > 0 {
		// The board is busy being reprogrammed: the token is held through
		// the modeled delay. A cancellation mid-programming releases the
		// board and books the partial busy time.
		t := time.NewTimer(d.cost)
		select {
		case <-t.C:
			reconfigTime = time.Since(heldAt)
		case <-ctx.Done():
			t.Stop()
			partial := time.Since(heldAt)
			// The programming was cut short: the board carries no usable
			// bitstream, so its next holder must reconfigure — whoever it
			// is, including this same job's siblings.
			d.sem.Invalidate(g.Board)
			d.sem.Release(g.Board, class)
			if usage != nil {
				usage.wait += wait
				usage.acquires++
				if g.Contended {
					usage.contended++
				}
				usage.hold += partial
				usage.reconfigs++
				usage.reconfigTime += partial
			}
			d.note(g.Contended, true, wait, partial, partial)
			return nil, ctx.Err()
		}
	}
	if usage != nil {
		usage.wait += wait
		usage.acquires++
		if g.Contended {
			usage.contended++
		}
		if g.Reconfig {
			usage.reconfigs++
			usage.reconfigTime += reconfigTime
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			hold := time.Since(heldAt)
			if usage != nil {
				usage.hold += hold
			}
			obs.Record(ctx, "device-hold", "", heldAt, heldAt.Add(hold))
			if reconfigTime > 0 {
				obs.Record(ctx, "device-reconfig", "", heldAt, heldAt.Add(reconfigTime))
			}
			d.note(g.Contended, g.Reconfig, wait, hold, reconfigTime)
			d.sem.Release(g.Board, class)
		})
	}, nil
}
