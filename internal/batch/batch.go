// Package batch is the host-side job orchestrator: a context-aware bounded
// worker pool that fans independent legalization jobs across goroutines and
// reports per-job results without losing submission order.
//
// The pool mirrors the paper's host/accelerator split one level up: the FLEX
// engine overlaps CPU steps with the FPGA pipeline inside one design, and
// this package overlaps whole (design × engine × scale) jobs across cores,
// the way OpenPARF/SYNERGY-style hosts multiplex many placement jobs over
// shared accelerator resources.
//
// Determinism contract: jobs must be pure functions of their inputs (every
// engine in this repo is — modeled seconds come from operation traces, not
// wall clocks). Run then returns identical results for any worker count;
// only the wall-clock stats change.
package batch

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"
)

// ErrSkipped marks a job that never started because the batch was canceled
// first — either by the parent context or by FailFast after an earlier
// job's error.
var ErrSkipped = errors.New("batch: job skipped (batch canceled)")

// Job is one unit of work. The context is the batch's: it is canceled when
// the parent context is canceled or, under FailFast, after the first error.
type Job[T any] func(ctx context.Context) (T, error)

// Result is one job's outcome.
type Result[T any] struct {
	// Index is the job's submission index; Run returns results sorted by it.
	Index int
	Value T
	Err   error
	// Wall is the job's own wall-clock time (zero for skipped jobs).
	Wall time.Duration
}

// Options tunes a batch run.
type Options struct {
	// Workers bounds the number of concurrently running jobs.
	// <= 0 means GOMAXPROCS.
	Workers int
	// FailFast cancels the rest of the batch after the first job error.
	// Jobs already in flight finish; jobs not yet started are reported
	// with ErrSkipped. The default runs every job and captures each
	// error in its own Result.
	FailFast bool
}

func (o Options) workers(jobs int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Stats aggregates a finished run.
type Stats struct {
	Jobs    int
	Errors  int // jobs that ran and returned an error
	Skipped int // jobs never started (cancellation or fail-fast)
	Workers int // effective pool size
	// Wall is the whole batch's wall-clock time; WorkWall is the sum of
	// per-job wall clocks. WorkWall/Wall approximates the achieved overlap
	// (per-job wall includes CPU contention when workers exceed cores).
	Wall     time.Duration
	WorkWall time.Duration
}

// Stream executes jobs across a bounded worker pool and sends every job's
// Result on the returned channel in completion order (use Result.Index to
// reorder). Exactly len(jobs) results are sent — skipped jobs carry
// ErrSkipped — and the channel is closed afterwards. Callers must drain the
// channel (cancel the context to stop early); abandoning it leaks workers.
func Stream[T any](ctx context.Context, jobs []Job[T], opt Options) <-chan Result[T] {
	out := make(chan Result[T])
	go func() {
		defer close(out)
		if len(jobs) == 0 {
			return
		}
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()

		idx := make(chan int)
		var skipped sync.Map // indexes the feeder abandoned
		go func() {
			defer close(idx)
			for i := range jobs {
				select {
				case idx <- i:
				case <-ctx.Done():
					skipped.Store(i, true)
				}
			}
		}()

		var wg sync.WaitGroup
		for w := 0; w < opt.workers(len(jobs)); w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					if ctx.Err() != nil {
						out <- Result[T]{Index: i, Err: ErrSkipped}
						continue
					}
					start := time.Now()
					v, err := jobs[i](ctx)
					if err != nil && opt.FailFast {
						cancel()
					}
					out <- Result[T]{Index: i, Value: v, Err: err, Wall: time.Since(start)}
				}
			}()
		}
		wg.Wait()
		skipped.Range(func(k, _ any) bool {
			out <- Result[T]{Index: k.(int), Err: ErrSkipped}
			return true
		})
	}()
	return out
}

// Run executes jobs across a bounded worker pool and returns one Result per
// job in submission order, plus aggregate stats. Per-job errors are captured
// in the results, not returned: the error is non-nil only when the batch as
// a whole stopped early — the parent context was canceled before every job
// ran, or FailFast tripped (then it is the first job error, and later jobs
// carry ErrSkipped).
func Run[T any](ctx context.Context, jobs []Job[T], opt Options) ([]Result[T], Stats, error) {
	start := time.Now()
	results := make([]Result[T], len(jobs))
	for r := range Stream(ctx, jobs, opt) {
		results[r.Index] = r
	}
	st := Stats{Jobs: len(jobs), Workers: opt.workers(len(jobs)), Wall: time.Since(start)}
	var firstErr error
	for i := range results {
		r := &results[i]
		st.WorkWall += r.Wall
		switch {
		case errors.Is(r.Err, ErrSkipped):
			st.Skipped++
		case r.Err != nil:
			st.Errors++
			if firstErr == nil {
				firstErr = r.Err
			}
		}
	}
	// A context error only fails the batch if it actually cut jobs short;
	// a deadline firing after the last job completed leaves a full,
	// perfectly good result set.
	if err := ctx.Err(); err != nil && st.Skipped > 0 {
		return results, st, err
	}
	if opt.FailFast && firstErr != nil {
		return results, st, firstErr
	}
	return results, st, nil
}

// Values unwraps a fully successful result set into plain values, in
// submission order. It returns the first per-job error it finds, so callers
// that want all-or-nothing semantics can collapse Run's output in one step.
func Values[T any](results []Result[T]) ([]T, error) {
	out := make([]T, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		out[i] = r.Value
	}
	return out, nil
}
