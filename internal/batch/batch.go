// Package batch is the host-side job orchestrator: a context-aware bounded
// worker pool that fans independent legalization jobs across goroutines and
// reports per-job results without losing submission order.
//
// The pool mirrors the paper's host/accelerator split one level up: the FLEX
// engine overlaps CPU steps with the FPGA pipeline inside one design, and
// this package overlaps whole (design × engine × scale) jobs across cores,
// the way OpenPARF/SYNERGY-style hosts multiplex many placement jobs over
// shared accelerator resources.
//
// Determinism contract: jobs must be pure functions of their inputs (every
// engine in this repo is — modeled seconds come from operation traces, not
// wall clocks). Run then returns identical results for any worker count;
// only the wall-clock stats change.
package batch

import (
	"context"
	"errors"
	"runtime"
	"time"

	"github.com/flex-eda/flex/internal/sched"
)

// ErrSkipped marks a job that never started because the batch was canceled
// first — either by the parent context or by FailFast after an earlier
// job's error.
var ErrSkipped = errors.New("batch: job skipped (batch canceled)")

// Job is one unit of work. The context is the batch's: it is canceled when
// the parent context is canceled or, under FailFast, after the first error.
type Job[T any] func(ctx context.Context) (T, error)

// Result is one job's outcome.
type Result[T any] struct {
	// Index is the job's submission index; Run returns results sorted by it.
	Index int
	Value T
	Err   error
	// Wall is the job's own wall-clock time (zero for skipped jobs).
	Wall time.Duration
	// SchedWait is the time the job spent queued for a worker — between
	// entering the pool's scheduling queue and a worker picking it up. The
	// per-class wait distributions of the sched experiment come from it.
	SchedWait time.Duration
	// DeviceWait is the time the job queued for the shared accelerator
	// (Options.Device); DeviceHold is the time it occupied a board. Both
	// are zero for CPU-only jobs and for batches without a device.
	DeviceWait time.Duration
	DeviceHold time.Duration
	// DeviceReconfigs counts the job's board acquisitions that had to
	// reprogram the board because its previous holder ran a different job
	// (first-ever board use included).
	DeviceReconfigs int
	// deviceAcquires/deviceContended count the job's board acquisitions
	// (and how many had to wait), so batch stats stay exact per batch even
	// on a pool shared by concurrent batches; deviceReconfigTime is the
	// modeled programming time its reconfigurations charged.
	deviceAcquires     int
	deviceContended    int
	deviceReconfigTime time.Duration
	// aborted marks a cancellation-shaped error returned while the batch
	// context was already canceled: the batch cut the job short, as
	// opposed to a job-owned sub-context timing out on a healthy batch.
	aborted bool
}

// Options tunes a batch run.
type Options struct {
	// Workers bounds the number of concurrently running jobs.
	// <= 0 means GOMAXPROCS.
	Workers int
	// FailFast cancels the rest of the batch after the first job error.
	// Jobs already in flight finish; jobs not yet started are reported
	// with ErrSkipped. The default runs every job and captures each
	// error in its own Result.
	FailFast bool
	// Device is the shared accelerator pool jobs contend on: the pool
	// attaches it to every job context, and jobs with an
	// accelerator-resident phase claim a board via AcquireDevice while
	// CPU-only jobs (and CPU phases) keep overlapping. nil models
	// unlimited boards (every job CPU-only, the pre-device behaviour).
	Device *Device
}

func (o Options) workers(jobs int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Stats aggregates a finished run.
type Stats struct {
	Jobs    int
	Errors  int // jobs that ran and returned an error
	Skipped int // jobs never started (cancellation or fail-fast)
	Workers int // effective pool size
	// Wall is the whole batch's wall-clock time; WorkWall is the sum of
	// per-job wall clocks. WorkWall/Wall approximates the achieved overlap
	// (per-job wall includes CPU contention when workers exceed cores).
	Wall     time.Duration
	WorkWall time.Duration
	// SchedWait sums per-job queue time for a worker — how long the
	// batch's jobs sat in the scheduling queue in total.
	SchedWait time.Duration
	// Device aggregates across jobs when Options.Device was set: FPGAs is
	// the modeled board count, DeviceWait/DeviceHold sum per-job queueing
	// and occupancy, and DeviceAcquires/DeviceContended count token
	// acquisitions (total, and those that had to wait). DeviceWait > 0
	// with WorkWall > Wall is the shared-board signature: accelerator
	// phases serialized while CPU work kept overlapping. DeviceReconfigs
	// counts acquisitions that reprogrammed their board (holder changed);
	// DeviceReconfigTime is the modeled programming time charged for them.
	FPGAs              int
	DeviceWait         time.Duration
	DeviceHold         time.Duration
	DeviceAcquires     int
	DeviceContended    int
	DeviceReconfigs    int
	DeviceReconfigTime time.Duration
}

// Add accumulates another run's stats, for callers that aggregate several
// batches (e.g. one per experiment driver) into one report. Wall times sum
// (the runs are assumed sequential); Workers and FPGAs keep the maximum.
func (s *Stats) Add(o Stats) {
	s.Jobs += o.Jobs
	s.Errors += o.Errors
	s.Skipped += o.Skipped
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
	s.Wall += o.Wall
	s.WorkWall += o.WorkWall
	s.SchedWait += o.SchedWait
	if o.FPGAs > s.FPGAs {
		s.FPGAs = o.FPGAs
	}
	s.DeviceWait += o.DeviceWait
	s.DeviceHold += o.DeviceHold
	s.DeviceAcquires += o.DeviceAcquires
	s.DeviceContended += o.DeviceContended
	s.DeviceReconfigs += o.DeviceReconfigs
	s.DeviceReconfigTime += o.DeviceReconfigTime
}

// Stream executes jobs across a bounded worker pool and sends every job's
// Result on the returned channel in completion order (use Result.Index to
// reorder). Exactly len(jobs) results are sent — skipped jobs carry
// ErrSkipped — and the channel is closed afterwards. Callers must drain the
// channel (cancel the context to stop early); abandoning it leaks workers.
//
// Stream is the per-call form of the long-lived Pool: it builds a throwaway
// pool sized by Options, runs the one batch on it via StreamOn, and tears
// the pool down once the batch drains — so one-shot and service-style
// batches share a single execution path and contract.
func Stream[T any](ctx context.Context, jobs []Job[T], opt Options) <-chan Result[T] {
	p := newPool(PoolConfig{Workers: opt.workers(len(jobs))}, sched.Config{}, opt.Device)
	ch, err := streamOn(ctx, p, jobs, nil, opt.FailFast, p.Close)
	if err != nil {
		// Unreachable: a fresh unbounded pool admits any batch. Fail loudly
		// rather than silently dropping jobs.
		panic("batch: throwaway pool rejected batch: " + err.Error())
	}
	return ch
}

// Run executes jobs across a bounded worker pool and returns one Result per
// job in submission order, plus aggregate stats. Per-job errors are captured
// in the results, not returned: the error is non-nil only when the batch as
// a whole stopped early — the parent context was canceled while jobs were
// still unscheduled or in flight, or FailFast tripped (then it is the first
// job error, and later jobs carry ErrSkipped).
func Run[T any](ctx context.Context, jobs []Job[T], opt Options) ([]Result[T], Stats, error) {
	return RunWith(ctx, jobs, opt, nil)
}

// RunWith is Run with a completion-order observer: onResult (when non-nil)
// is invoked synchronously from the collecting goroutine for every job as
// it finishes, before the full result set is assembled — the hook CLIs and
// servers use to stream progress while the batch is still running. Keep it
// fast; it is on the result path.
func RunWith[T any](ctx context.Context, jobs []Job[T], opt Options, onResult func(Result[T])) ([]Result[T], Stats, error) {
	p := newPool(PoolConfig{Workers: opt.workers(len(jobs))}, sched.Config{}, opt.Device)
	defer p.Close()
	return RunOn(ctx, p, jobs, opt.FailFast, onResult)
}

// Values unwraps a fully successful result set into plain values, in
// submission order. It returns the first per-job error it finds, so callers
// that want all-or-nothing semantics can collapse Run's output in one step.
func Values[T any](results []Result[T]) ([]T, error) {
	out := make([]T, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		out[i] = r.Value
	}
	return out, nil
}
