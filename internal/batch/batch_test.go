package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// squares builds n jobs whose values depend only on their index, so any
// worker count must reproduce the same result set.
func squares(n int) []Job[int] {
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) { return i * i, nil }
	}
	return jobs
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := squares(64)
	var want []int
	for _, workers := range []int{1, 2, 4, 8, 64, 0} {
		results, st, err := Run(context.Background(), jobs, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := Values(results)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = got
		}
		for i := range got {
			if got[i] != want[i] || got[i] != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, got[i], i*i)
			}
			if results[i].Index != i {
				t.Fatalf("workers=%d: results not in submission order at %d", workers, i)
			}
		}
		if st.Jobs != 64 || st.Errors != 0 || st.Skipped != 0 {
			t.Fatalf("workers=%d: stats %+v", workers, st)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, max atomic.Int32
	jobs := make([]Job[struct{}], 24)
	for i := range jobs {
		jobs[i] = func(context.Context) (struct{}, error) {
			n := cur.Add(1)
			for {
				m := max.Load()
				if n <= m || max.CompareAndSwap(m, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return struct{}{}, nil
		}
	}
	if _, _, err := Run(context.Background(), jobs, Options{Workers: workers}); err != nil {
		t.Fatal(err)
	}
	if got := max.Load(); got > workers {
		t.Fatalf("observed %d concurrent jobs, pool bound is %d", got, workers)
	}
}

func TestRunErrorIsolation(t *testing.T) {
	boom := errors.New("boom")
	jobs := make([]Job[int], 10)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) {
			if i%3 == 0 {
				return 0, fmt.Errorf("job %d: %w", i, boom)
			}
			return i, nil
		}
	}
	results, st, err := Run(context.Background(), jobs, Options{Workers: 4})
	if err != nil {
		t.Fatalf("non-fail-fast run surfaced batch error: %v", err)
	}
	for i, r := range results {
		if i%3 == 0 {
			if !errors.Is(r.Err, boom) {
				t.Fatalf("job %d: err = %v, want boom", i, r.Err)
			}
		} else if r.Err != nil || r.Value != i {
			t.Fatalf("job %d poisoned by sibling failure: %+v", i, r)
		}
	}
	if st.Errors != 4 || st.Skipped != 0 {
		t.Fatalf("stats %+v, want 4 errors, 0 skipped", st)
	}
	if _, err := Values(results); !errors.Is(err, boom) {
		t.Fatalf("Values err = %v, want boom", err)
	}
}

func TestRunFailFastSkipsRemainder(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	jobs := make([]Job[int], 100)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) {
			ran.Add(1)
			if i == 0 {
				return 0, boom
			}
			time.Sleep(time.Millisecond)
			return i, nil
		}
	}
	results, st, err := Run(context.Background(), jobs, Options{Workers: 2, FailFast: true})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want first job error", err)
	}
	if st.Skipped == 0 {
		t.Fatal("fail-fast run skipped nothing")
	}
	if int(ran.Load())+st.Skipped != len(jobs) {
		t.Fatalf("ran %d + skipped %d != %d jobs", ran.Load(), st.Skipped, len(jobs))
	}
	for _, r := range results[1:] {
		if r.Err != nil && !errors.Is(r.Err, ErrSkipped) {
			t.Fatalf("job %d: unexpected err %v", r.Index, r.Err)
		}
	}
}

func TestRunContextCancellationMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	release := make(chan struct{})
	var once sync.Once
	jobs := make([]Job[int], 50)
	for i := range jobs {
		i := i
		jobs[i] = func(ctx context.Context) (int, error) {
			once.Do(func() { cancel(); close(release) })
			<-release
			return i, nil
		}
	}
	results, st, err := Run(ctx, jobs, Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Skipped == 0 {
		t.Fatal("cancellation mid-batch skipped nothing")
	}
	completed := 0
	for _, r := range results {
		switch {
		case r.Err == nil:
			completed++
		case errors.Is(r.Err, ErrSkipped):
		default:
			t.Fatalf("job %d: unexpected err %v", r.Index, r.Err)
		}
	}
	if completed == 0 {
		t.Fatal("in-flight jobs should finish and report")
	}
	if completed+st.Skipped != len(jobs) {
		t.Fatalf("completed %d + skipped %d != %d", completed, st.Skipped, len(jobs))
	}
}

// TestRunMidFlightCancelContract pins the documented contract for the case
// the old code got wrong: every job is already in flight when the context
// is canceled, so nothing is skipped and each job reports ctx.Err() as its
// own error — Run must still fail the batch with the context error instead
// of returning nil.
func TestRunMidFlightCancelContract(t *testing.T) {
	const n = 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started sync.WaitGroup
	started.Add(n)
	jobs := make([]Job[int], n)
	for i := range jobs {
		jobs[i] = func(ctx context.Context) (int, error) {
			started.Done()
			<-ctx.Done() // abort only once the batch is canceled
			return 0, ctx.Err()
		}
	}
	go func() {
		started.Wait() // all n jobs in flight: nothing left to skip
		cancel()
	}()
	results, st, err := Run(ctx, jobs, Options{Workers: n})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled despite zero skipped jobs", err)
	}
	if st.Skipped != 0 {
		t.Fatalf("skipped = %d, want 0 (every job was in flight)", st.Skipped)
	}
	if st.Errors != n {
		t.Fatalf("errors = %d, want %d", st.Errors, n)
	}
	for _, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("job %d: err = %v, want context.Canceled", r.Index, r.Err)
		}
	}
}

// TestRunDeadlineMidFlight is the DeadlineExceeded twin of the contract.
func TestRunDeadlineMidFlight(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	jobs := []Job[int]{func(ctx context.Context) (int, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	}}
	_, st, err := Run(ctx, jobs, Options{Workers: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if st.Skipped != 0 || st.Errors != 1 {
		t.Fatalf("stats %+v, want 0 skipped / 1 error", st)
	}
}

// TestRunJobOwnedTimeoutIsIsolated guards the flip side of the contract
// fix: a job failing with its own sub-context's deadline while the batch
// context is healthy stays an isolated per-job error.
func TestRunJobOwnedTimeoutIsIsolated(t *testing.T) {
	jobs := []Job[int]{
		func(context.Context) (int, error) { return 0, context.DeadlineExceeded },
		func(context.Context) (int, error) { return 7, nil },
	}
	results, st, err := Run(context.Background(), jobs, Options{Workers: 1})
	if err != nil {
		t.Fatalf("healthy batch surfaced error: %v", err)
	}
	if st.Errors != 1 || st.Skipped != 0 {
		t.Fatalf("stats %+v", st)
	}
	if results[1].Err != nil || results[1].Value != 7 {
		t.Fatalf("sibling poisoned: %+v", results[1])
	}
}

// TestRunLateCancelKeepsCompletedResults guards the other side of the
// contract: the parent context dying only after every job already finished
// must not fail the batch — even when one job failed with its own
// sub-context's timeout while the batch was healthy.
func TestRunLateCancelKeepsCompletedResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := []Job[int]{
		// A job-owned timeout on a healthy batch: isolated, not batch-fatal.
		func(context.Context) (int, error) { return 0, context.DeadlineExceeded },
		func(context.Context) (int, error) { return 7, nil },
	}
	done := 0
	results, st, err := RunWith(ctx, jobs, Options{Workers: 1}, func(Result[int]) {
		done++
		if done == len(jobs) {
			cancel() // parent dies only after the last job completed
		}
	})
	if err != nil {
		t.Fatalf("fully completed batch failed with %v after late cancel", err)
	}
	if st.Skipped != 0 || st.Errors != 1 {
		t.Fatalf("stats %+v, want 0 skipped / 1 error", st)
	}
	if results[1].Err != nil || results[1].Value != 7 {
		t.Fatalf("completed result lost: %+v", results[1])
	}
}

func TestRunCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, st, err := Run(ctx, squares(8), Options{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if st.Skipped != 8 {
		t.Fatalf("skipped = %d, want 8", st.Skipped)
	}
	for _, r := range results {
		if !errors.Is(r.Err, ErrSkipped) {
			t.Fatalf("job %d: err = %v, want ErrSkipped", r.Index, r.Err)
		}
	}
}

func TestStreamCompletionOrderCoversAllJobs(t *testing.T) {
	seen := make(map[int]bool)
	for r := range Stream(context.Background(), squares(32), Options{Workers: 5}) {
		if seen[r.Index] {
			t.Fatalf("job %d reported twice", r.Index)
		}
		seen[r.Index] = true
		if r.Err != nil || r.Value != r.Index*r.Index {
			t.Fatalf("bad result %+v", r)
		}
	}
	if len(seen) != 32 {
		t.Fatalf("stream reported %d of 32 jobs", len(seen))
	}
}

func TestRunEmpty(t *testing.T) {
	results, st, err := Run(context.Background(), []Job[int](nil), Options{})
	if err != nil || len(results) != 0 || st.Jobs != 0 {
		t.Fatalf("empty batch: results=%v stats=%+v err=%v", results, st, err)
	}
}

func TestStatsWorkWallReflectsParallelism(t *testing.T) {
	jobs := make([]Job[int], 8)
	for i := range jobs {
		jobs[i] = func(context.Context) (int, error) {
			time.Sleep(5 * time.Millisecond)
			return 0, nil
		}
	}
	_, st, err := Run(context.Background(), jobs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.WorkWall < st.Wall {
		t.Fatalf("summed job wall %v below batch wall %v despite 4 workers", st.WorkWall, st.Wall)
	}
}
