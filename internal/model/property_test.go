package model

import (
	"testing"
	"testing/quick"

	"github.com/flex-eda/flex/internal/geom"
)

// TestDisplacementProperties: displacement is symmetric in sign, zero at
// the global position, and additive in rowHeight for pure vertical moves.
func TestDisplacementProperties(t *testing.T) {
	f := func(gx, gy int8, dx, dy int8, rh uint8) bool {
		rowH := int(rh)%8 + 1
		c := Cell{GX: int(gx), GY: int(gy), X: int(gx) + int(dx), Y: int(gy) + int(dy), W: 1, H: 1}
		d := c.Displacement(rowH)
		if d != geom.Abs(int(dx))+rowH*geom.Abs(int(dy)) {
			return false
		}
		c.X, c.Y = c.GX, c.GY
		return c.Displacement(rowH) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestOverlapSymmetry: Check reports overlaps independent of cell order.
func TestOverlapSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by uint8, aw, ah, bw, bh uint8) bool {
		mk := func(first, second [4]int) *Layout {
			l := &Layout{NumSitesX: 600, NumRows: 600, RowHeight: 8}
			for i, r := range [][4]int{first, second} {
				l.Cells = append(l.Cells, Cell{
					ID: i, X: r[0], Y: r[1], GX: r[0], GY: r[1],
					W: r[2], H: r[3], Parity: ParityAny,
				})
			}
			return l
		}
		a := [4]int{int(ax), int(ay), int(aw)%8 + 1, int(ah)%4 + 1}
		b := [4]int{int(bx), int(by), int(bw)%8 + 1, int(bh)%4 + 1}
		v1 := mk(a, b).Check(0)
		v2 := mk(b, a).Check(0)
		n1, n2 := 0, 0
		for _, v := range v1 {
			if v.Kind == "overlap" {
				n1++
			}
		}
		for _, v := range v2 {
			if v.Kind == "overlap" {
				n2++
			}
		}
		return n1 == n2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestMeasureScaleInvariance: doubling row height halves the row-height-
// normalized vertical displacement contribution consistently.
func TestMeasureScaleInvariance(t *testing.T) {
	l := &Layout{NumSitesX: 100, NumRows: 20, RowHeight: 8}
	l.Cells = append(l.Cells, Cell{ID: 0, X: 10, Y: 4, GX: 10, GY: 2, W: 3, H: 1, Parity: ParityAny})
	m8 := Measure(l)
	l.RowHeight = 16
	m16 := Measure(l)
	// Vertical displacement in row units is row-height independent.
	if m8.AveDis != m16.AveDis {
		t.Fatalf("row-normalized vertical displacement changed: %v vs %v", m8.AveDis, m16.AveDis)
	}
	// Horizontal displacement in row units halves when rows get taller.
	l.Cells[0].Y = 2
	l.Cells[0].X = 18
	l.RowHeight = 8
	h8 := Measure(l).AveDis
	l.RowHeight = 16
	h16 := Measure(l).AveDis
	if h8 != 2*h16 {
		t.Fatalf("horizontal normalization wrong: %v vs %v", h8, h16)
	}
}
