package model

import (
	"bytes"
	"testing"
)

// tiny returns a small hand-built layout: a 40x8 die with three movable
// cells and one fixed blockage.
func tiny() *Layout {
	l := &Layout{Name: "tiny", NumSitesX: 40, NumRows: 8, RowHeight: 8}
	add := func(name string, x, y, w, h int, p PGParity, fixed bool) {
		c := Cell{ID: len(l.Cells), Name: name, X: x, Y: y, GX: x, GY: y, W: w, H: h, Parity: p, Fixed: fixed}
		l.Cells = append(l.Cells, c)
	}
	add("a", 0, 0, 4, 1, ParityAny, false)
	add("b", 10, 0, 6, 2, ParityEven, false)
	add("c", 20, 2, 3, 3, ParityAny, false)
	add("blk", 30, 0, 5, 8, ParityAny, true)
	return l
}

func TestPGParity(t *testing.T) {
	if !ParityAny.AllowsRow(0) || !ParityAny.AllowsRow(3) {
		t.Fatal("ParityAny must allow every row")
	}
	if !ParityEven.AllowsRow(0) || ParityEven.AllowsRow(1) {
		t.Fatal("ParityEven wrong")
	}
	if ParityOdd.AllowsRow(0) || !ParityOdd.AllowsRow(3) {
		t.Fatal("ParityOdd wrong")
	}
	if ParityEven.String() != "even" || ParityOdd.String() != "odd" || ParityAny.String() != "any" {
		t.Fatal("String wrong")
	}
}

func TestLegalLayout(t *testing.T) {
	l := tiny()
	if vs := l.Check(0); len(vs) != 0 {
		t.Fatalf("expected legal layout, got %v", vs)
	}
	if !l.Legal() {
		t.Fatal("Legal() = false for a legal layout")
	}
	if l.OverlapArea() != 0 {
		t.Fatalf("OverlapArea = %d, want 0", l.OverlapArea())
	}
}

func TestCheckDetectsOverlap(t *testing.T) {
	l := tiny()
	l.Cells[0].X = 11 // a (4x1) now overlaps b (at x=10..16, rows 0..2)
	vs := l.Check(0)
	found := false
	for _, v := range vs {
		if v.Kind == "overlap" && v.CellA == 0 && v.CellB == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("overlap between cells 0 and 1 not reported: %v", vs)
	}
	if l.OverlapArea() == 0 {
		t.Fatal("OverlapArea should be positive")
	}
}

func TestCheckDetectsParityAndBounds(t *testing.T) {
	l := tiny()
	l.Cells[1].Y = 1 // even-parity cell on odd row
	vs := l.Check(0)
	kinds := map[string]bool{}
	for _, v := range vs {
		kinds[v.Kind] = true
	}
	if !kinds["pg-parity"] {
		t.Fatalf("pg-parity violation not reported: %v", vs)
	}

	l2 := tiny()
	l2.Cells[2].X = 39 // 3-wide cell sticking out of the 40-site die
	vs = l2.Check(0)
	kinds = map[string]bool{}
	for _, v := range vs {
		kinds[v.Kind] = true
	}
	if !kinds["out-of-die"] {
		t.Fatalf("out-of-die violation not reported: %v", vs)
	}

	l3 := tiny()
	l3.Cells[3].X++ // moved a fixed cell
	vs = l3.Check(0)
	kinds = map[string]bool{}
	for _, v := range vs {
		kinds[v.Kind] = true
	}
	if !kinds["fixed-moved"] {
		t.Fatalf("fixed-moved violation not reported: %v", vs)
	}
}

func TestCheckMaxLimit(t *testing.T) {
	l := tiny()
	// Pile every movable cell on top of the blockage to create many
	// violations, then ask for at most one.
	for i := 0; i < 3; i++ {
		l.Cells[i].X = 30
		l.Cells[i].Y = 0
	}
	if vs := l.Check(1); len(vs) != 1 {
		t.Fatalf("Check(1) returned %d violations, want 1", len(vs))
	}
	if vs := l.Check(0); len(vs) < 3 {
		t.Fatalf("Check(0) returned %d violations, want all (>=3)", len(vs))
	}
}

func TestDisplacementAndMetrics(t *testing.T) {
	l := tiny()
	l.Cells[0].X += 8 // one row-height to the right
	l.Cells[2].Y += 1 // one row up
	m := Measure(l)
	if m.Movable != 3 {
		t.Fatalf("Movable = %d, want 3", m.Movable)
	}
	if m.Moved != 2 {
		t.Fatalf("Moved = %d, want 2", m.Moved)
	}
	// Cell a: 8 sites = 1.0 row heights; heights classes present: 1,2,3.
	// class 1 avg = 1.0, class 2 avg = 0, class 3 avg = 1.0 → AveDis = 2/3.
	if diff := m.AveDis - 2.0/3.0; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("AveDis = %v, want 2/3", m.AveDis)
	}
	if m.MaxDis != 1.0 {
		t.Fatalf("MaxDis = %v, want 1.0", m.MaxDis)
	}
	if m.TotalDis != 2.0 {
		t.Fatalf("TotalDis = %v, want 2.0", m.TotalDis)
	}
}

func TestDensityAndHistogram(t *testing.T) {
	l := tiny()
	// movable area = 4 + 12 + 9 = 25; free = 40*8 - 40 = 280.
	want := 25.0 / 280.0
	if d := l.Density(); d < want-1e-12 || d > want+1e-12 {
		t.Fatalf("Density = %v, want %v", d, want)
	}
	hist := HeightHistogram(l)
	if hist[1] != 1 || hist[2] != 1 || hist[3] != 1 {
		t.Fatalf("HeightHistogram = %v", hist)
	}
	if f := TallCellFraction(l, 2); f != 1.0/3.0 {
		t.Fatalf("TallCellFraction(2) = %v, want 1/3", f)
	}
	if f := TallCellFraction(l, 3); f != 0 {
		t.Fatalf("TallCellFraction(3) = %v, want 0", f)
	}
}

func TestCloneAndReset(t *testing.T) {
	l := tiny()
	cp := l.Clone()
	cp.Cells[0].X = 99
	if l.Cells[0].X == 99 {
		t.Fatal("Clone must deep-copy cells")
	}
	l.Cells[0].X = 7
	l.ResetToGlobal()
	if l.Cells[0].X != l.Cells[0].GX {
		t.Fatal("ResetToGlobal did not restore position")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	l := tiny()
	l.Cells[1].X = 12 // displaced cell exercises the 9-field form
	var buf bytes.Buffer
	if err := Encode(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != l.Name || got.NumSitesX != l.NumSitesX || got.NumRows != l.NumRows || got.RowHeight != l.RowHeight {
		t.Fatalf("header mismatch: %+v vs %+v", got, l)
	}
	if len(got.Cells) != len(l.Cells) {
		t.Fatalf("cell count %d, want %d", len(got.Cells), len(l.Cells))
	}
	for i := range l.Cells {
		a, b := l.Cells[i], got.Cells[i]
		if a.Name != b.Name || a.X != b.X || a.Y != b.Y || a.GX != b.GX || a.GY != b.GY ||
			a.W != b.W || a.H != b.H || a.Parity != b.Parity || a.Fixed != b.Fixed {
			t.Fatalf("cell %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"flexpl 2\ndesign x\ndie 1 1 1\ncells 0\n",
		"flexpl 1\ndesign x\ndie 1 1 1\ncells 1\n", // missing cell line
		"flexpl 1\ndesign x\ndie 1 1 1\ncells 1\na 0 0 1 1 sideways 0\n",
		"flexpl 1\ndesign x\ndie 1 1 1\ncells 1\na 0 0 0 1 any 0\n", // zero width
	}
	for i, s := range bad {
		if _, err := Decode(bytes.NewReader([]byte(s))); err == nil {
			t.Errorf("case %d: Decode accepted garbage", i)
		}
	}
}

func TestMovableIDsAndMaxHeight(t *testing.T) {
	l := tiny()
	ids := l.MovableIDs()
	if len(ids) != 3 || ids[0] != 0 || ids[2] != 2 {
		t.Fatalf("MovableIDs = %v", ids)
	}
	if l.MaxHeight() != 8 {
		// blockage is 8 rows tall
		t.Fatalf("MaxHeight = %d, want 8", l.MaxHeight())
	}
}
