package model_test

import (
	"testing"

	"github.com/flex-eda/flex/internal/gen"
	"github.com/flex-eda/flex/internal/model"
)

func TestSoAMirrorsLayout(t *testing.T) {
	l, err := gen.Small(400, 0.6, 3).Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	s := model.NewSoA(l)
	if s.Len() != len(l.Cells) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(l.Cells))
	}
	for i := range l.Cells {
		c := &l.Cells[i]
		if s.Rect(i) != c.Rect() || int(s.GX[i]) != c.GX || s.Fixed[i] != c.Fixed {
			t.Fatalf("cell %d: SoA %v/%d/%v != layout %v/%d/%v",
				i, s.Rect(i), s.GX[i], s.Fixed[i], c.Rect(), c.GX, c.Fixed)
		}
	}
	// Set keeps the mirror in sync after a move.
	s.Set(0, 7, 3)
	if got := s.Rect(0); got.X != 7 || got.Y != 3 {
		t.Fatalf("after Set: rect %v, want x=7 y=3", got)
	}
}

// BenchmarkNewSoA prices the snapshot an engine takes once per run; the
// extraction-path payoff is measured by BenchmarkExtractFromSoA in
// internal/region, on the real access pattern.
func BenchmarkNewSoA(b *testing.B) {
	l := benchLayout(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.NewSoA(l)
	}
}
