package model

import "github.com/flex-eda/flex/internal/geom"

// SoA is a structure-of-arrays mirror of a layout's cell geometry for
// read-heavy kernels. Layout.Cells is an array of fat structs (name,
// parity, metadata); the legalizer's extraction and query loops touch only
// position and size, so scanning the AoS wastes most of each cache line.
// SoA packs the five geometry fields into dense int32 arrays (plus the
// fixed flags), cutting the scanned bytes per cell from sizeof(Cell) to
// ~21 and keeping neighbouring cells' fields adjacent.
//
// The mirror is only valid while it is kept in sync: callers that move
// cells must call Set with the new position. Concurrent readers are safe
// as long as no Set runs (the batched engine's frozen parallel phase).
type SoA struct {
	X, Y, W, H, GX []int32
	Fixed          []bool
}

// NewSoA snapshots the layout's current cell geometry.
func NewSoA(l *Layout) *SoA {
	n := len(l.Cells)
	s := &SoA{
		X: make([]int32, n), Y: make([]int32, n),
		W: make([]int32, n), H: make([]int32, n),
		GX: make([]int32, n), Fixed: make([]bool, n),
	}
	for i := range l.Cells {
		c := &l.Cells[i]
		s.X[i] = int32(c.X)
		s.Y[i] = int32(c.Y)
		s.W[i] = int32(c.W)
		s.H[i] = int32(c.H)
		s.GX[i] = int32(c.GX)
		s.Fixed[i] = c.Fixed
	}
	return s
}

// Len returns the number of mirrored cells.
func (s *SoA) Len() int { return len(s.X) }

// Set records cell id's new position. Width, height, and global position
// never change after construction.
func (s *SoA) Set(id, x, y int) {
	s.X[id] = int32(x)
	s.Y[id] = int32(y)
}

// Rect returns the rectangle currently occupied by cell id.
func (s *SoA) Rect(id int) geom.Rect {
	return geom.NewRect(int(s.X[id]), int(s.Y[id]), int(s.W[id]), int(s.H[id]))
}
