package model_test

import (
	"testing"

	"github.com/flex-eda/flex/internal/gen"
	"github.com/flex-eda/flex/internal/model"
)

func benchLayout(b *testing.B) *model.Layout {
	l, err := gen.Small(4000, 0.72, 11).Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	return l
}

func BenchmarkCheck(b *testing.B) {
	l := benchLayout(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Check(8)
	}
}

func BenchmarkMeasure(b *testing.B) {
	l := benchLayout(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Measure(l)
	}
}

func BenchmarkClone(b *testing.B) {
	l := benchLayout(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Clone()
	}
}
