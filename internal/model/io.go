package model

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The flexpl text format is a minimal, line-oriented placement exchange
// format used by the cmd/ tools and examples:
//
//	flexpl 1
//	design <name>
//	die <numSitesX> <numRows> <rowHeightSites>
//	cells <n>
//	<name> <gx> <gy> <w> <h> <parity:any|even|odd> <fixed:0|1> [<x> <y>]
//
// When the optional current position (x, y) is omitted it defaults to the
// global-placement position.

// Encode writes the layout in flexpl format.
func Encode(w io.Writer, l *Layout) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "flexpl 1")
	fmt.Fprintf(bw, "design %s\n", l.Name)
	fmt.Fprintf(bw, "die %d %d %d\n", l.NumSitesX, l.NumRows, l.RowHeight)
	fmt.Fprintf(bw, "cells %d\n", len(l.Cells))
	for i := range l.Cells {
		c := &l.Cells[i]
		fixed := 0
		if c.Fixed {
			fixed = 1
		}
		if c.X == c.GX && c.Y == c.GY {
			fmt.Fprintf(bw, "%s %d %d %d %d %s %d\n", c.Name, c.GX, c.GY, c.W, c.H, c.Parity, fixed)
		} else {
			fmt.Fprintf(bw, "%s %d %d %d %d %s %d %d %d\n", c.Name, c.GX, c.GY, c.W, c.H, c.Parity, fixed, c.X, c.Y)
		}
	}
	return bw.Flush()
}

// Decode reads a layout in flexpl format.
func Decode(r io.Reader) (*Layout, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	next := func() (string, error) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s == "" || strings.HasPrefix(s, "#") {
				continue
			}
			return s, nil
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}
	errf := func(format string, args ...any) error {
		return fmt.Errorf("flexpl line %d: %s", line, fmt.Sprintf(format, args...))
	}

	s, err := next()
	if err != nil {
		return nil, err
	}
	if s != "flexpl 1" {
		return nil, errf("bad header %q", s)
	}
	l := &Layout{}
	if s, err = next(); err != nil {
		return nil, err
	}
	if _, err := fmt.Sscanf(s, "design %s", &l.Name); err != nil {
		return nil, errf("bad design line %q", s)
	}
	if s, err = next(); err != nil {
		return nil, err
	}
	if _, err := fmt.Sscanf(s, "die %d %d %d", &l.NumSitesX, &l.NumRows, &l.RowHeight); err != nil {
		return nil, errf("bad die line %q", s)
	}
	var n int
	if s, err = next(); err != nil {
		return nil, err
	}
	if _, err := fmt.Sscanf(s, "cells %d", &n); err != nil {
		return nil, errf("bad cells line %q", s)
	}
	if n < 0 {
		return nil, errf("negative cell count %d", n)
	}
	// Cap the pre-allocation: the header's count is untrusted (flexserve
	// decodes raw request bodies), and each claimed cell still needs a line
	// of input, so a lying header fails cheaply instead of sizing a huge
	// allocation up front.
	capHint := n
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	l.Cells = make([]Cell, 0, capHint)
	for i := 0; i < n; i++ {
		if s, err = next(); err != nil {
			return nil, fmt.Errorf("flexpl: expected %d cells, got %d: %w", n, i, err)
		}
		f := strings.Fields(s)
		if len(f) != 7 && len(f) != 9 {
			return nil, errf("bad cell line %q", s)
		}
		var c Cell
		c.ID = i
		c.Name = f[0]
		ints := make([]int, 0, 6)
		for _, k := range []int{1, 2, 3, 4, 6} {
			var v int
			if _, err := fmt.Sscanf(f[k], "%d", &v); err != nil {
				return nil, errf("bad integer %q", f[k])
			}
			ints = append(ints, v)
		}
		c.GX, c.GY, c.W, c.H = ints[0], ints[1], ints[2], ints[3]
		switch f[5] {
		case "any":
			c.Parity = ParityAny
		case "even":
			c.Parity = ParityEven
		case "odd":
			c.Parity = ParityOdd
		default:
			return nil, errf("bad parity %q", f[5])
		}
		switch ints[4] {
		case 0:
			c.Fixed = false
		case 1:
			c.Fixed = true
		default:
			return nil, errf("bad fixed flag %d", ints[4])
		}
		c.X, c.Y = c.GX, c.GY
		if len(f) == 9 {
			if _, err := fmt.Sscanf(f[7], "%d", &c.X); err != nil {
				return nil, errf("bad x %q", f[7])
			}
			if _, err := fmt.Sscanf(f[8], "%d", &c.Y); err != nil {
				return nil, errf("bad y %q", f[8])
			}
		}
		if c.W <= 0 || c.H <= 0 {
			return nil, errf("cell %s has non-positive size %dx%d", c.Name, c.W, c.H)
		}
		l.Cells = append(l.Cells, c)
	}
	return l, nil
}
