package model

import (
	"bytes"
	"testing"
)

// FuzzFlexplRoundTrip checks the flexpl codec's canonical fixed point on
// arbitrary bytes: Decode may reject an input (it is line-oriented and
// lenient about trailing garbage inside fields), but whatever it accepts
// must re-encode to a form that decodes to the very same canonical bytes.
// This is the invariant every content-hash consumer (the outcome cache
// keys layouts by canonical flexpl bytes) depends on.
func FuzzFlexplRoundTrip(f *testing.F) {
	f.Add([]byte("flexpl 1\ndesign d\ndie 8 4 8\ncells 1\na 0 0 2 1 any 0\n"))
	f.Add([]byte("flexpl 1\ndesign mix\ndie 16 8 8\ncells 3\n" +
		"a 0 0 2 1 any 0\nb 4 2 3 2 even 0 5 2\nblk 8 0 4 8 odd 1\n"))
	f.Add([]byte("flexpl 1\n# comment\ndesign c\ndie 4 2 8\ncells 0\n"))
	f.Add([]byte("flexpl 2\ndesign d\ndie 8 4 8\ncells 1\n"))
	f.Add([]byte("flexpl 1\ndesign d\ndie 8 4 8\ncells 2\na 0 0 2 1 any 0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // malformed input may be rejected, never panic
		}
		var first bytes.Buffer
		if err := Encode(&first, l); err != nil {
			t.Fatalf("encode of decoded layout failed: %v", err)
		}
		l2, err := Decode(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("canonical form does not decode: %v\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := Encode(&second, l2); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("canonical form is not a fixed point:\nfirst:\n%s\nsecond:\n%s",
				first.Bytes(), second.Bytes())
		}
	})
}
