package model

import "github.com/flex-eda/flex/internal/geom"

// Metrics summarizes legalization quality for a layout, following Sec. 2.1
// of the paper. Displacements are measured in multiples of the row height so
// the values are comparable to the AveDis column of Table 1.
type Metrics struct {
	// AveDis is S_am of Eq. 2: the mean, over cell-height classes, of the
	// average displacement of the cells in that class, in row heights.
	AveDis float64
	// MeanDis is the plain average displacement over all movable cells.
	MeanDis float64
	// MaxDis is the largest single-cell displacement, in row heights.
	MaxDis float64
	// TotalDis is the summed displacement over all movable cells.
	TotalDis float64
	// Moved counts movable cells whose position differs from global placement.
	Moved int
	// Movable counts movable cells.
	Movable int
}

// Measure computes quality metrics for the layout against the stored
// global-placement positions.
func Measure(l *Layout) Metrics {
	var m Metrics
	maxH := l.MaxHeight()
	sumByH := make([]float64, maxH+1)
	cntByH := make([]int, maxH+1)
	rh := float64(l.RowHeight)
	if rh == 0 {
		rh = 1
	}
	for i := range l.Cells {
		c := &l.Cells[i]
		if c.Fixed {
			continue
		}
		m.Movable++
		d := float64(c.Displacement(l.RowHeight)) / rh
		m.TotalDis += d
		if d > m.MaxDis {
			m.MaxDis = d
		}
		if c.X != c.GX || c.Y != c.GY {
			m.Moved++
		}
		sumByH[c.H] += d
		cntByH[c.H]++
	}
	if m.Movable > 0 {
		m.MeanDis = m.TotalDis / float64(m.Movable)
	}
	classes := 0
	for h := 1; h <= maxH; h++ {
		if cntByH[h] > 0 {
			m.AveDis += sumByH[h] / float64(cntByH[h])
			classes++
		}
	}
	if classes > 0 {
		m.AveDis /= float64(classes)
	}
	return m
}

// HeightHistogram returns, for each height class 1..MaxHeight, the number of
// movable cells of that height.
func HeightHistogram(l *Layout) []int {
	hist := make([]int, l.MaxHeight()+1)
	for i := range l.Cells {
		if !l.Cells[i].Fixed {
			hist[l.Cells[i].H]++
		}
	}
	return hist
}

// TallCellFraction returns the fraction of movable cells strictly taller
// than minRows rows (the gray series of the paper's Fig. 9 uses minRows=3).
func TallCellFraction(l *Layout, minRows int) float64 {
	tall, total := 0, 0
	for i := range l.Cells {
		if l.Cells[i].Fixed {
			continue
		}
		total++
		if l.Cells[i].H > minRows {
			tall++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(tall) / float64(total)
}

// BoundingBoxOfCells returns the bounding box of the given cell IDs at their
// current positions, or an empty rect when ids is empty.
func BoundingBoxOfCells(l *Layout, ids []int) geom.Rect {
	var bb geom.Rect
	for _, id := range ids {
		bb = bb.Union(l.Cells[id].Rect())
	}
	return bb
}
