// Package model defines the placement data model shared by every legalizer
// in this repository: mixed-cell-height standard cells on a row/site grid,
// power/ground (P/G) rail alignment, fixed blockages, and the legality and
// quality rules of the IC/CAD 2017 mixed-cell-height legalization contest
// that the FLEX paper evaluates on.
//
// Coordinates are integers. X positions count placement sites, Y positions
// count standard-cell rows. A cell of height h occupies h consecutive rows.
// Rows alternate power and ground rails, so cells of even height are only
// legal on rows of one parity (the P/G alignment constraint of the paper's
// Fig. 1); odd-height cells may sit on any row.
package model

import (
	"fmt"
	"sort"

	"github.com/flex-eda/flex/internal/geom"
)

// PGParity encodes a cell's power-rail alignment requirement.
type PGParity uint8

const (
	// ParityAny means the cell may be placed on any row (odd-height cells).
	ParityAny PGParity = iota
	// ParityEven means the cell's bottom row index must be even.
	ParityEven
	// ParityOdd means the cell's bottom row index must be odd.
	ParityOdd
)

func (p PGParity) String() string {
	switch p {
	case ParityAny:
		return "any"
	case ParityEven:
		return "even"
	case ParityOdd:
		return "odd"
	}
	return fmt.Sprintf("PGParity(%d)", uint8(p))
}

// AllowsRow reports whether a cell with this parity may have its bottom edge
// on row y.
func (p PGParity) AllowsRow(y int) bool {
	switch p {
	case ParityEven:
		return y%2 == 0
	case ParityOdd:
		return y%2 != 0
	default:
		return true
	}
}

// Cell is one standard cell. GX/GY hold the global-placement position the
// legalizer must stay close to; X/Y hold the current (possibly still
// overlapping) position.
type Cell struct {
	ID     int      // index into Layout.Cells
	Name   string   // benchmark-unique name
	X, Y   int      // current bottom-left position (sites, rows)
	GX, GY int      // global-placement bottom-left position
	W, H   int      // width in sites, height in rows
	Parity PGParity // P/G alignment requirement
	Fixed  bool     // fixed blockage (terminal/macro): never moved
}

// Rect returns the rectangle currently occupied by the cell.
func (c *Cell) Rect() geom.Rect { return geom.NewRect(c.X, c.Y, c.W, c.H) }

// GlobalRect returns the rectangle at the global-placement position.
func (c *Cell) GlobalRect() geom.Rect { return geom.NewRect(c.GX, c.GY, c.W, c.H) }

// Area returns the cell area in site×row units.
func (c *Cell) Area() int { return c.W * c.H }

// Displacement returns the Manhattan distance, in sites, between the cell's
// current and global-placement positions, with the vertical term scaled by
// rowHeight sites per row (Eq. 1 of the paper, on the site grid).
func (c *Cell) Displacement(rowHeight int) int {
	return geom.Abs(c.X-c.GX) + rowHeight*geom.Abs(c.Y-c.GY)
}

// Layout is a complete design: the die, its rows, and all cells (movable and
// fixed). It is the input and output of every legalizer in the repository.
type Layout struct {
	Name      string
	NumSitesX int // die width in sites
	NumRows   int // die height in rows
	RowHeight int // sites per row height, used to convert Y distance to sites
	Cells     []Cell
}

// Clone returns a deep copy of the layout. Legalizers operate on clones so
// the caller's layout is never mutated.
func (l *Layout) Clone() *Layout {
	out := &Layout{
		Name:      l.Name,
		NumSitesX: l.NumSitesX,
		NumRows:   l.NumRows,
		RowHeight: l.RowHeight,
		Cells:     make([]Cell, len(l.Cells)),
	}
	copy(out.Cells, l.Cells)
	return out
}

// Die returns the die rectangle.
func (l *Layout) Die() geom.Rect { return geom.NewRect(0, 0, l.NumSitesX, l.NumRows) }

// MovableIDs returns the IDs of all movable (non-fixed) cells.
func (l *Layout) MovableIDs() []int {
	ids := make([]int, 0, len(l.Cells))
	for i := range l.Cells {
		if !l.Cells[i].Fixed {
			ids = append(ids, i)
		}
	}
	return ids
}

// MaxHeight returns the tallest cell height in rows (H in Eq. 2), or 1 for an
// empty layout.
func (l *Layout) MaxHeight() int {
	h := 1
	for i := range l.Cells {
		if l.Cells[i].H > h {
			h = l.Cells[i].H
		}
	}
	return h
}

// Density returns total movable cell area divided by free (non-blockage) die
// area, the "Den.(%)" column of the paper's Table 1 expressed as a fraction.
func (l *Layout) Density() float64 {
	var movable, blocked int
	for i := range l.Cells {
		if l.Cells[i].Fixed {
			blocked += l.Cells[i].Area()
		} else {
			movable += l.Cells[i].Area()
		}
	}
	free := l.Die().Area() - blocked
	if free <= 0 {
		return 0
	}
	return float64(movable) / float64(free)
}

// ResetToGlobal restores every movable cell to its global-placement position.
func (l *Layout) ResetToGlobal() {
	for i := range l.Cells {
		if !l.Cells[i].Fixed {
			l.Cells[i].X = l.Cells[i].GX
			l.Cells[i].Y = l.Cells[i].GY
		}
	}
}

// Violation describes one legality failure found by Check.
type Violation struct {
	Kind  string // "overlap", "out-of-die", "pg-parity", "fixed-moved"
	CellA int    // offending cell ID
	CellB int    // second cell for overlaps, else -1
}

func (v Violation) String() string {
	if v.CellB >= 0 {
		return fmt.Sprintf("%s: cells %d and %d", v.Kind, v.CellA, v.CellB)
	}
	return fmt.Sprintf("%s: cell %d", v.Kind, v.CellA)
}

// Check validates the layout against the legalization rules: every cell
// inside the die, bottom row respecting P/G parity, fixed cells unmoved, and
// no two cells overlapping. It returns all violations found (up to max, or
// all if max <= 0).
func (l *Layout) Check(max int) []Violation {
	var out []Violation
	add := func(v Violation) bool {
		out = append(out, v)
		return max > 0 && len(out) >= max
	}
	die := l.Die()
	for i := range l.Cells {
		c := &l.Cells[i]
		if !die.Contains(c.Rect()) {
			if add(Violation{Kind: "out-of-die", CellA: i, CellB: -1}) {
				return out
			}
		}
		if !c.Parity.AllowsRow(c.Y) {
			if add(Violation{Kind: "pg-parity", CellA: i, CellB: -1}) {
				return out
			}
		}
		if c.Fixed && (c.X != c.GX || c.Y != c.GY) {
			if add(Violation{Kind: "fixed-moved", CellA: i, CellB: -1}) {
				return out
			}
		}
	}
	// Overlap detection with a per-row sweep: O(n·h + k log k) instead of n².
	type span struct {
		lo, hi, id int
	}
	rows := make([][]span, l.NumRows+1)
	for i := range l.Cells {
		c := &l.Cells[i]
		for y := c.Y; y < c.Y+c.H; y++ {
			if y < 0 || y >= len(rows) {
				continue // out-of-die already reported
			}
			rows[y] = append(rows[y], span{lo: c.X, hi: c.X + c.W, id: i})
		}
	}
	type pair struct{ a, b int }
	seen := make(map[pair]bool)
	for _, spans := range rows {
		sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
		for i := 1; i < len(spans); i++ {
			// Check against preceding spans that may still reach this one.
			for j := i - 1; j >= 0; j-- {
				if spans[j].hi <= spans[i].lo {
					// Sorted by lo, but an earlier wide span can still
					// overlap; keep scanning back while any could reach.
					continue
				}
				a, b := spans[j].id, spans[i].id
				if a > b {
					a, b = b, a
				}
				p := pair{a, b}
				if !seen[p] {
					seen[p] = true
					if add(Violation{Kind: "overlap", CellA: a, CellB: b}) {
						return out
					}
				}
			}
		}
	}
	return out
}

// Legal reports whether the layout has no violations.
func (l *Layout) Legal() bool { return len(l.Check(1)) == 0 }

// OverlapArea returns the total pairwise overlap area between cells, a
// progress measure for legalization (0 when fully resolved).
func (l *Layout) OverlapArea() int {
	type span struct {
		lo, hi, id int
	}
	total := 0
	rows := make([][]span, l.NumRows+1)
	for i := range l.Cells {
		c := &l.Cells[i]
		for y := c.Y; y < c.Y+c.H; y++ {
			if y < 0 || y >= len(rows) {
				continue
			}
			rows[y] = append(rows[y], span{lo: c.X, hi: c.X + c.W, id: i})
		}
	}
	for _, spans := range rows {
		sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
		for i := 1; i < len(spans); i++ {
			for j := i - 1; j >= 0; j-- {
				ov := geom.Min(spans[j].hi, spans[i].hi) - spans[i].lo
				if ov > 0 {
					total += ov
				}
			}
		}
	}
	return total
}
