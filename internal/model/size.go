package model

import "unsafe"

// ApproxBytes estimates the layout's resident memory footprint — struct
// headers, the cell slice, and per-cell name strings — for cache byte
// accounting. It is an estimate (allocator overhead and string interning
// are invisible), but it scales with what actually dominates a layout's
// footprint: the cell count.
func (l *Layout) ApproxBytes() int64 {
	if l == nil {
		return 0
	}
	b := int64(unsafe.Sizeof(*l)) + int64(len(l.Name))
	for i := range l.Cells {
		b += int64(unsafe.Sizeof(l.Cells[i])) + int64(len(l.Cells[i].Name))
	}
	return b
}

// ApproxBytesForCells estimates the resident footprint of a layout with n
// cells without building it — ApproxBytes' per-cell accounting with a
// nominal name length, the pre-generation sizing hint auto-sharding uses.
func ApproxBytesForCells(n int) int64 {
	const nominalNameLen = 8
	return int64(unsafe.Sizeof(Layout{})) + int64(n)*(int64(unsafe.Sizeof(Cell{}))+nominalNameLen)
}
