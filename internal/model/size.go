package model

import "unsafe"

// ApproxBytes estimates the layout's resident memory footprint — struct
// headers, the cell slice, and per-cell name strings — for cache byte
// accounting. It is an estimate (allocator overhead and string interning
// are invisible), but it scales with what actually dominates a layout's
// footprint: the cell count.
func (l *Layout) ApproxBytes() int64 {
	if l == nil {
		return 0
	}
	b := int64(unsafe.Sizeof(*l)) + int64(len(l.Name))
	for i := range l.Cells {
		b += int64(unsafe.Sizeof(l.Cells[i])) + int64(len(l.Cells[i].Name))
	}
	return b
}
