package perf

import (
	"testing"

	"github.com/flex-eda/flex/internal/curve"
	"github.com/flex-eda/flex/internal/fop"
	"github.com/flex-eda/flex/internal/shift"
)

func TestWorkPricing(t *testing.T) {
	w := DefaultWeights
	sh := shift.Stats{SubcellVisits: 10, Moves: 2, SortOps: 5}
	if got := w.ShiftWork(sh); got != 10*w.SubcellVisit+2*w.Move+5*w.SortOp {
		t.Fatalf("ShiftWork = %v", got)
	}
	cv := curve.Stats{RawBps: 3, MergedBps: 2, SortOps: 4, Traversal: 7}
	want := 3*w.BpRaw + 2*w.BpMerge + 4*w.SortOp + 7*w.CurveTraverse
	if got := w.CurveWork(cv); got != want {
		t.Fatalf("CurveWork = %v, want %v", got, want)
	}
	var f fop.Stats
	f.Shift = sh
	f.Curve = cv
	if got := w.FOPWork(f); got != w.ShiftWork(sh)+w.CurveWork(cv) {
		t.Fatalf("FOPWork = %v", got)
	}
}

func TestCPUModelMonotonicity(t *testing.T) {
	m := DefaultCPU
	if m.Seconds(0) != 0 {
		t.Fatal("zero work must cost zero")
	}
	if m.Seconds(1e6) <= m.Seconds(1e3) {
		t.Fatal("Seconds not monotone")
	}
	// More batches cost more at fixed work.
	a := m.ParallelSeconds(100, 1000, 10, 4)
	b := m.ParallelSeconds(100, 1000, 100, 4)
	if b <= a {
		t.Fatal("batch sync not charged")
	}
	// A shorter critical path is faster.
	c := m.ParallelSeconds(100, 500, 10, 4)
	if c >= a {
		t.Fatal("critical path not charged")
	}
}
