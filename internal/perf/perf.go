// Package perf converts the operation counts collected by the legalization
// engines into deterministic modeled runtimes for the three platforms the
// FLEX paper compares: multi-threaded CPU, CPU+GPU, and CPU+FPGA.
//
// No wall-clock measurement crosses a platform boundary in this repository:
// every engine runs the real algorithm and counts abstract operations
// (subcell visits, breakpoint traversals, sort comparisons, region scans),
// and a platform model prices those counts. This is the only
// apples-to-apples comparison available without the paper's hardware, and
// it is deterministic, which the test suite relies on.
//
// The constants are calibrated so the modeled CPU times of the MGL baseline
// land in the regime of Table 1 (single seconds for ~100k-cell designs) —
// the paper's comparisons are all relative, and bench_test.go records
// paper-vs-measured shapes rather than absolute numbers.
package perf

import (
	"github.com/flex-eda/flex/internal/curve"
	"github.com/flex-eda/flex/internal/fop"
	"github.com/flex-eda/flex/internal/shift"
)

// Weights prices each counted operation class in abstract work units
// (1 unit ≈ 1 simple ALU/memory op on the reference CPU).
type Weights struct {
	SubcellVisit  float64 // shifting: one subcell overlap check
	Move          float64 // shifting: one position update
	SortOp        float64 // one comparison-ish sorting unit
	BpRaw         float64 // one breakpoint through emission
	BpMerge       float64 // one merged breakpoint
	CurveTraverse float64 // one item through a traversal operator
	RegionCand    float64 // one candidate cell scanned during extraction
	RegionRow     float64 // one row scanned during extraction
	PreMove       float64 // one cell through input & pre-move
	OrderOp       float64 // one scheduler operation
	CommitCell    float64 // one cell written back during insert & update
}

// DefaultWeights reflect the relative costs observed in the software MGL
// implementation the paper profiles: cell shifting dominates (>60% of FOP,
// Fig. 2(g)) because each subcell check involves pointer-heavy segment
// bookkeeping, while the traversal operators are tight loops.
var DefaultWeights = Weights{
	SubcellVisit:  22,
	Move:          8,
	SortOp:        4,
	BpRaw:         6,
	BpMerge:       5,
	CurveTraverse: 5,
	RegionCand:    14,
	RegionRow:     6,
	PreMove:       10,
	OrderOp:       12,
	CommitCell:    18,
}

// ShiftWork prices a shifting run.
func (w Weights) ShiftWork(st shift.Stats) float64 {
	return w.SubcellVisit*float64(st.SubcellVisits) +
		w.Move*float64(st.Moves) +
		w.SortOp*float64(st.SortOps)
}

// CurveWork prices a curve-pipeline run.
func (w Weights) CurveWork(st curve.Stats) float64 {
	return w.BpRaw*float64(st.RawBps) +
		w.BpMerge*float64(st.MergedBps) +
		w.SortOp*float64(st.SortOps) +
		w.CurveTraverse*float64(st.Traversal)
}

// FOPWork prices a whole FOP invocation (shift + curve portions).
func (w Weights) FOPWork(st fop.Stats) float64 {
	return w.ShiftWork(st.Shift) + w.CurveWork(st.Curve)
}

// CPUModel converts work units into seconds for a CPU host, with the
// batch-parallel execution model used by the multi-threaded MGL baseline.
type CPUModel struct {
	// NsPerUnit is the cost of one work unit in nanoseconds on one core.
	NsPerUnit float64
	// BatchSyncNs is charged once per parallel batch: barrier, work
	// (re)distribution and cache-coherence traffic.
	BatchSyncNs float64
	// ThreadSpawnNs is a one-time cost per worker thread.
	ThreadSpawnNs float64
	// ContentionPerThread inflates parallel work per extra worker —
	// shared-cache and memory-bandwidth pressure from the pointer-heavy
	// region structures. It is what makes the paper's Fig. 2(a) curve
	// flatten near 8 threads.
	ContentionPerThread float64
}

// DefaultCPU approximates the Intel Xeon host of the TCAD'22 baseline.
var DefaultCPU = CPUModel{
	NsPerUnit:           1.35,
	BatchSyncNs:         24000,
	ThreadSpawnNs:       60000,
	ContentionPerThread: 0.10,
}

// Seconds prices serial work.
func (m CPUModel) Seconds(units float64) float64 {
	return units * m.NsPerUnit * 1e-9
}

// ParallelSeconds prices a batched parallel run: serial work plus, per
// batch, the contention-inflated critical-path work and a synchronization
// charge.
//
// criticalUnits must be the sum over batches of the largest per-target work
// in each batch — the quantity the engines record while batching.
func (m CPUModel) ParallelSeconds(serialUnits, criticalUnits float64, batches, threads int) float64 {
	contention := 1 + m.ContentionPerThread*float64(threads-1)
	s := m.Seconds(serialUnits) + m.Seconds(criticalUnits)*contention
	s += float64(batches) * m.BatchSyncNs * 1e-9
	s += float64(threads) * m.ThreadSpawnNs * 1e-9
	return s
}
