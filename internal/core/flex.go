// Package core implements FLEX, the paper's contribution: an FPGA-CPU
// co-designed legalizer for mixed-cell-height designs.
//
// The engine runs the real MGL flow (internal/mgl) with the FLEX-specific
// choices of Sec. 3 — sliding-window processing ordering, the restructured
// streaming FOP operators — and prices each step on the platform that owns
// it under the task-assignment strategy of Sec. 3.1.1:
//
//   - steps a) input & pre-move, b) process ordering, c) define localRegion
//     stay on the CPU;
//   - step d) FOP runs on the FPGA model (internal/fpga), one localRegion at
//     a time, with ping-pong RAM preloading hiding the region transfer
//     whenever the next target's region does not overlap the current one;
//   - step e) insert & update stays on the CPU (the paper's choice) or is
//     offloaded to the FPGA (the Fig. 10 ablation), which makes every
//     position write-back a visible PCIe transfer.
//
// The modeled total runtime overlaps the CPU-side steady state with the
// FPGA pipeline, exactly the overlap argument of Sec. 5.3: the visible
// communication cost reduces to the first region's transfer plus the
// transfers that could not be preloaded.
package core

import (
	"github.com/flex-eda/flex/internal/fpga"
	"github.com/flex-eda/flex/internal/geom"
	"github.com/flex-eda/flex/internal/mgl"
	"github.com/flex-eda/flex/internal/model"
	"github.com/flex-eda/flex/internal/perf"
)

// TaskAssignment selects which flow steps run on the FPGA (Sec. 3.1.1).
type TaskAssignment int

const (
	// FOPOnFPGA is the paper's strategy: only step d) on the FPGA.
	FOPOnFPGA TaskAssignment = iota
	// FOPAndInsertOnFPGA additionally offloads step e), forcing all updated
	// positions back over PCIe (the slower alternative of Fig. 10).
	FOPAndInsertOnFPGA
)

// PCIe transfer model between host and the Alveo card.
const (
	pcieBytesPerSec = 8e9  // effective host↔card bandwidth
	pcieLatency     = 3e-6 // per-transaction round-trip seconds
	// Position write-backs are short posted DMA bursts; their
	// per-transaction latency is lower, but unlike region downloads they
	// cannot be hidden behind compute (they gate steps b and c).
	pcieUpdateLatency = 1e-6
	bytesPerCell      = 16 // region descriptor entry
	bytesPerUpdate    = 8  // position write-back entry
)

// Config parameterizes the FLEX engine.
type Config struct {
	// PE is the FPGA cluster configuration; zero value uses fpga.DefaultPE.
	PE fpga.PEConfig
	// Assignment selects the CPU/FPGA task split.
	Assignment TaskAssignment
	// SlidingWindow is the ordering window length (0 = default 8;
	// negative disables the density reordering, for ablations).
	SlidingWindow int
	// CPU prices the host-side steps; zero value uses perf.DefaultCPU.
	CPU *perf.CPUModel
	// Weights price CPU operations; zero value uses perf.DefaultWeights.
	Weights *perf.Weights
	// MeasureOriginalShift threads the instrumentation flag through to FOP.
	MeasureOriginalShift bool
}

func (c Config) pe() fpga.PEConfig {
	if c.PE.NumPE == 0 {
		return fpga.DefaultPE
	}
	return c.PE
}

func (c Config) cpu() perf.CPUModel {
	if c.CPU != nil {
		return *c.CPU
	}
	return perf.DefaultCPU
}

func (c Config) weights() perf.Weights {
	if c.Weights != nil {
		return *c.Weights
	}
	return perf.DefaultWeights
}

// Result extends the algorithmic result with the platform time breakdown.
type Result struct {
	*mgl.Result
	// FPGACycles is the total FOP (plus optionally commit) cycle count.
	FPGACycles float64
	// FPGASeconds prices FPGACycles at the configured clock.
	FPGASeconds float64
	// CPUSerialSeconds is step a) — inherently serial preprocessing.
	CPUSerialSeconds float64
	// CPUSteadySeconds is the steady-state host work (steps b, c and, under
	// FOPOnFPGA, step e) that overlaps the FPGA pipeline.
	CPUSteadySeconds float64
	// TransferSeconds is the visible (non-overlapped) PCIe time.
	TransferSeconds float64
	// TotalSeconds is the modeled end-to-end runtime.
	TotalSeconds float64
	// Regions is the number of FOP invocations traced.
	Regions int
	// PreloadedRegions counts regions whose transfer was hidden by the
	// ping-pong buffers (next window disjoint from the current one).
	PreloadedRegions int
}

// Legalize runs FLEX on a clone of l.
func Legalize(l *model.Layout, cfg Config) *Result {
	pe := cfg.pe()
	cpu := cfg.cpu()
	w := cfg.weights()

	sw := cfg.SlidingWindow
	if sw == 0 {
		sw = 8
	}
	if sw < 0 {
		sw = 0 // ablation: plain size ordering
	}

	out := &Result{}
	var fopCycles, commitCycles float64
	var hiddenBytes, visibleBytes float64
	visibleTransactions := 1 // the first region is never preloaded
	updateTransactions := 0
	var prevWin geom.Rect
	first := true

	mcfg := mgl.Config{
		Streamed:             true,
		SlidingWindow:        sw,
		MeasureOriginalShift: cfg.MeasureOriginalShift,
		Weights:              &w,
		TraceFn: func(tt mgl.TargetTrace) {
			ftr := fpga.TraceFromFOP(tt.FOP, int(tt.CommitMoved))
			fopCycles += pe.RegionCycles(ftr)
			commitCycles += pe.CommitCycles(ftr)
			out.Regions++

			down := float64(tt.LocalCells)*bytesPerCell + 64
			if !first && !prevWin.Overlaps(tt.Window) {
				// Ping-pong preload: the next region loads while the
				// current one computes.
				hiddenBytes += down
				out.PreloadedRegions++
			} else {
				visibleBytes += down
				if !first {
					visibleTransactions++
				}
			}
			if cfg.Assignment == FOPAndInsertOnFPGA {
				// Position write-backs interfere with steps b) and c)
				// (Sec. 3.1.1) and cannot be hidden.
				visibleBytes += float64(tt.CommitMoved)*bytesPerUpdate + 32
				updateTransactions++
			}
			prevWin = tt.Window
			first = false
		},
	}
	res := mgl.Legalize(l, mcfg)
	out.Result = res

	// CPU-side pricing by flow step.
	st := &res.Stats
	premoveUnits := w.PreMove * float64(st.PreMoveCells)
	orderUnits := w.OrderOp * float64(st.OrderOps)
	regionUnits := w.RegionCand*float64(st.RegionCands) + w.RegionRow*float64(st.RegionRows)
	commitUnits := w.CommitCell*float64(st.CommitCells) + w.ShiftWork(st.Commit)

	steadyUnits := orderUnits + regionUnits
	out.FPGACycles = fopCycles
	if cfg.Assignment == FOPAndInsertOnFPGA {
		out.FPGACycles += commitCycles
	} else {
		steadyUnits += commitUnits
	}

	out.CPUSerialSeconds = cpu.Seconds(premoveUnits)
	out.CPUSteadySeconds = cpu.Seconds(steadyUnits)
	out.FPGASeconds = pe.Seconds(out.FPGACycles)
	out.TransferSeconds = visibleBytes/pcieBytesPerSec +
		float64(visibleTransactions)*pcieLatency +
		float64(updateTransactions)*pcieUpdateLatency

	// The ping-pong/deep-pipeline overlap: steady-state CPU work and the
	// FPGA pipeline proceed concurrently; the longer one gates throughput.
	overlap := out.CPUSteadySeconds
	if out.FPGASeconds > overlap {
		overlap = out.FPGASeconds
	}
	out.TotalSeconds = out.CPUSerialSeconds + overlap + out.TransferSeconds
	return out
}
