package core

import (
	"testing"

	"github.com/flex-eda/flex/internal/fpga"
	"github.com/flex-eda/flex/internal/gen"
	"github.com/flex-eda/flex/internal/mgl"
	"github.com/flex-eda/flex/internal/model"
)

func testLayout(t *testing.T, n int, density float64, seed int64) *model.Layout {
	t.Helper()
	l, err := gen.Small(n, density, seed).Generate(1.0)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestFlexLegalizes(t *testing.T) {
	l := testLayout(t, 300, 0.6, 201)
	res := Legalize(l, Config{})
	if !res.Legal {
		t.Fatalf("FLEX result illegal: %v", res.Violations)
	}
	if res.TotalSeconds <= 0 || res.FPGASeconds <= 0 {
		t.Fatalf("times not positive: %+v", res)
	}
	if res.Regions != int(res.Stats.Placed) {
		t.Fatalf("regions %d != placed %d", res.Regions, res.Stats.Placed)
	}
	if res.PreloadedRegions == 0 {
		t.Fatal("ping-pong preloading never engaged")
	}
}

func TestFlexDeterminism(t *testing.T) {
	l := testLayout(t, 200, 0.6, 202)
	a := Legalize(l, Config{})
	b := Legalize(l, Config{})
	if a.TotalSeconds != b.TotalSeconds || a.FPGACycles != b.FPGACycles {
		t.Fatalf("modeled time not deterministic: %v vs %v", a.TotalSeconds, b.TotalSeconds)
	}
	if a.Metrics.AveDis != b.Metrics.AveDis {
		t.Fatal("quality not deterministic")
	}
}

func TestTaskAssignmentAblation(t *testing.T) {
	// Fig. 10: keeping step e) on the CPU should be faster than offloading
	// d)+e) to the FPGA (visible transfers + longer FPGA occupancy).
	l := testLayout(t, 300, 0.65, 203)
	dOnly := Legalize(l, Config{Assignment: FOPOnFPGA})
	dAndE := Legalize(l, Config{Assignment: FOPAndInsertOnFPGA})
	if dOnly.TotalSeconds >= dAndE.TotalSeconds {
		t.Fatalf("d-only (%.6fs) should beat d+e (%.6fs)", dOnly.TotalSeconds, dAndE.TotalSeconds)
	}
	// Quality must be identical: the assignment changes platforms, not
	// the algorithm.
	if dOnly.Metrics.AveDis != dAndE.Metrics.AveDis {
		t.Fatal("task assignment changed quality")
	}
	ratio := dAndE.TotalSeconds / dOnly.TotalSeconds
	if ratio < 1.02 || ratio > 2.0 {
		t.Fatalf("assignment speedup %v outside plausible band [1.02, 2.0]", ratio)
	}
}

func TestPEConfigAffectsSpeed(t *testing.T) {
	l := testLayout(t, 250, 0.6, 204)
	one := Legalize(l, Config{PE: fpga.PEConfig{Pipeline: fpga.MultiGranularity, SACS: fpga.SACSParal, NumPE: 1}})
	two := Legalize(l, Config{PE: fpga.PEConfig{Pipeline: fpga.MultiGranularity, SACS: fpga.SACSParal, NumPE: 2}})
	if two.FPGACycles >= one.FPGACycles {
		t.Fatalf("2 PEs not faster: %v vs %v cycles", two.FPGACycles, one.FPGACycles)
	}
	normal := Legalize(l, Config{PE: fpga.PEConfig{Pipeline: fpga.NormalPipeline, SACS: fpga.ShiftOriginal, NumPE: 1}})
	if normal.FPGACycles <= one.FPGACycles {
		t.Fatal("normal pipeline should be slower than multi-granularity")
	}
}

func TestFlexBeatsCPUBaselineModeledTime(t *testing.T) {
	// The headline claim, at small scale: FLEX modeled time beats the
	// multi-threaded CPU baseline's modeled time.
	l := testLayout(t, 400, 0.65, 205)
	fx := Legalize(l, Config{})

	cpuRes := mgl.Legalize(l, mgl.Config{Threads: 8})
	cpu := Config{}.cpu()
	cpuSeconds := cpu.ParallelSeconds(cpuRes.Stats.WorkSerial, cpuRes.Stats.WorkCritical,
		int(cpuRes.Stats.Batches), 8)
	if fx.TotalSeconds >= cpuSeconds {
		t.Fatalf("FLEX (%.6fs) not faster than 8T CPU (%.6fs)", fx.TotalSeconds, cpuSeconds)
	}
	speedup := cpuSeconds / fx.TotalSeconds
	if speedup < 1.2 || speedup > 40 {
		t.Fatalf("speedup %v outside sanity band", speedup)
	}
}

func TestSlidingWindowAblation(t *testing.T) {
	l := testLayout(t, 300, 0.75, 206)
	with := Legalize(l, Config{SlidingWindow: 8})
	without := Legalize(l, Config{SlidingWindow: -1})
	if !with.Legal || !without.Legal {
		t.Fatal("ablation results must stay legal")
	}
	// Orderings differ, so the layouts generally differ; both stay sane.
	if with.Metrics.AveDis > without.Metrics.AveDis*1.3 {
		t.Fatalf("sliding window much worse: %v vs %v",
			with.Metrics.AveDis, without.Metrics.AveDis)
	}
}
