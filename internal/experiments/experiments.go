// Package experiments contains one driver per table and figure of the FLEX
// paper's evaluation (Sec. 5). Every driver runs the real engines on the
// synthetic IC/CAD 2017 suite at a configurable scale and returns the rows
// or series the paper reports; cmd/flexbench and bench_test.go render them.
//
// docs/ARCHITECTURE.md places the drivers in the system's pipeline;
// cmd/flexbench renders every driver from the command line.
package experiments

import (
	"context"
	"fmt"

	"github.com/flex-eda/flex/internal/analytical"
	"github.com/flex-eda/flex/internal/batch"
	"github.com/flex-eda/flex/internal/benchjson"
	"github.com/flex-eda/flex/internal/cache"
	"github.com/flex-eda/flex/internal/core"
	"github.com/flex-eda/flex/internal/fpga"
	"github.com/flex-eda/flex/internal/gen"
	"github.com/flex-eda/flex/internal/gpu"
	"github.com/flex-eda/flex/internal/mgl"
	"github.com/flex-eda/flex/internal/model"
	"github.com/flex-eda/flex/internal/perf"
	"github.com/flex-eda/flex/internal/report"
)

// Options configures a driver run.
type Options struct {
	// Scale shrinks every design's cell count (1.0 = the paper's size).
	// The default 0.02 keeps a full-suite run in CI territory.
	Scale float64
	// Designs filters the suite by name; empty = all 16.
	Designs []string
	// MeasureOriginal instruments the original multi-pass shifting per
	// insertion point (slower, more faithful Normal-Pipeline cycle counts).
	MeasureOriginal bool
	// Threads is the CPU baseline's thread count (0 = 8, the paper's).
	Threads int
	// Workers bounds how many (design × engine) jobs a driver runs
	// concurrently through internal/batch (<= 0 = GOMAXPROCS). Engines are
	// deterministic, so every worker count yields identical tables; only
	// wall-clock changes.
	Workers int
	// FPGAs is the number of physical accelerator boards the drivers model
	// (0 = 1, the paper's single-card host; negative = unlimited). FLEX
	// jobs hold one board for their device phase and serialize when
	// concurrent FLEX jobs outnumber boards; CPU-only jobs keep
	// overlapping. Like Workers, it never changes a rendered table.
	FPGAs int
	// Stats, when non-nil, accumulates every driver batch's pool
	// statistics — wall vs summed job wall (CPU overlap) and device
	// wait/hold/contention — so callers can report scheduling behaviour
	// without perturbing the deterministic tables.
	Stats *batch.Stats
	// Pool, when non-nil, is a shared long-lived executor (workers +
	// modeled boards + admission control) the driver's batches run on —
	// the service wiring that lets one flexbench invocation share workers
	// and device history across every driver. It overrides Workers and
	// FPGAs. nil builds a throwaway pool per driver call, the historical
	// behaviour.
	Pool *batch.Pool
	// Priority stamps every driver job's scheduling class (flexbench's
	// -priority flag): on a shared pool, a whole flexbench run can be
	// demoted below (or promoted above) concurrent traffic. Scheduling
	// order never changes a rendered table.
	Priority int
	// Layouts, when non-nil, memoizes generated layouts by (design, scale,
	// seed) across drivers and repeated runs, so shared designs are built
	// once per process instead of once per driver. Safe because engines
	// legalize clones; hit/miss accounting accumulates in the cache.
	Layouts *cache.LRU
	// Bench, when non-nil, receives one benchjson.Record per measured
	// (design, engine, config) outcome — the persistent perf-trajectory
	// sink behind flexbench -bench-out. Records are appended after the
	// driver's batch completes, in deterministic suite × engine order, and
	// contain only deterministic facts (op counts, modeled seconds,
	// quality), so the serialized file is byte-stable across runs. Only
	// the Table1, Sharded and Sched drivers record; see
	// docs/BENCHMARKING.md for the schema.
	Bench *benchjson.Experiment
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 0.02
	}
	if o.Threads == 0 {
		o.Threads = 8
	}
	return o
}

func (o Options) suite() []gen.Spec {
	all := gen.ICCAD2017()
	if len(o.Designs) == 0 {
		return all
	}
	// The superblue-scale designs join only by explicit name: they are two
	// orders of magnitude bigger than the contest suite and must never be
	// swept into a default full-suite run.
	all = append(all, gen.Superblue()...)
	want := map[string]bool{}
	for _, n := range o.Designs {
		want[n] = true
	}
	var out []gen.Spec
	for _, s := range all {
		if want[s.Name] {
			out = append(out, s)
		}
	}
	return out
}

// EngineCell is one engine's outcome on one design. AveDis, Seconds and
// Legal are the rendered columns; MaxDis, Ops and Modeled are the extra
// deterministic facts the benchjson trajectory persists (they never reach
// the rendered table, so adding them cannot move stdout).
type EngineCell struct {
	AveDis  float64
	Seconds float64
	Legal   bool
	MaxDis  float64
	Ops     benchjson.Ops
	Modeled *benchjson.Breakdown // FLEX engine only
}

// Table1Row mirrors one row of the paper's Table 1.
type Table1Row struct {
	Name    string
	Cells   int
	Density float64
	MGL     EngineCell // TCAD'22 multi-threaded CPU baseline
	Date    EngineCell // DATE'22 CPU-GPU baseline
	Ispd    EngineCell // ISPD'25 analytical baseline
	Flex    EngineCell // this work
	AccT    float64    // Flex speedup vs MGL
	AccD    float64    // Flex speedup vs DATE'22
	AccI    float64    // Flex speedup vs ISPD'25
}

// table1Engines orders the four Table-1 engine columns.
const table1Engines = 4 // MGL, DATE'22, ISPD'25, FLEX

// Table1 runs all four engines over the (filtered, scaled) suite, fanning
// one job per (design × engine) pair across the worker pool. Each design is
// generated lazily, exactly once, and the layout shared by its four engine
// jobs — engines legalize clones.
func Table1(opt Options) ([]Table1Row, error) {
	opt = opt.withDefaults()
	suite := opt.suite()
	layouts := lazyLayouts(opt, suite, opt.Scale)
	jobs := make([]batch.Job[EngineCell], 0, len(suite)*table1Engines)
	for _, layout := range layouts {
		for e := 0; e < table1Engines; e++ {
			layout, e := layout, e
			jobs = append(jobs, func(ctx context.Context) (EngineCell, error) {
				l, err := layout()
				if err != nil {
					return EngineCell{}, fmt.Errorf("table1 %w", err)
				}
				switch e {
				case 0:
					res := mgl.Legalize(l, mgl.Config{Threads: opt.Threads})
					secs := perf.DefaultCPU.ParallelSeconds(res.Stats.WorkSerial,
						res.Stats.WorkCritical, int(res.Stats.Batches), opt.Threads)
					return EngineCell{AveDis: res.Metrics.AveDis, Seconds: secs, Legal: res.Legal,
						MaxDis: res.Metrics.MaxDis, Ops: mglOps(res.Stats)}, nil
				case 1:
					res := gpu.Legalize(l, gpu.Config{})
					return EngineCell{AveDis: res.Metrics.AveDis, Seconds: res.TotalSeconds, Legal: res.Legal,
						MaxDis: res.Metrics.MaxDis, Ops: gpuOps(res)}, nil
				case 2:
					res := analytical.Legalize(l, analytical.Config{})
					return EngineCell{AveDis: res.Metrics.AveDis, Seconds: res.TotalSeconds, Legal: res.Legal,
						MaxDis: res.Metrics.MaxDis, Ops: analyticalOps(res)}, nil
				default:
					// FLEX streams the design through the shared board:
					// hold a device token for the engine run while the
					// CPU-side siblings above keep overlapping.
					return runOnDevice(ctx, func() (EngineCell, error) {
						res := core.Legalize(l, core.Config{MeasureOriginalShift: opt.MeasureOriginal})
						return EngineCell{AveDis: res.Metrics.AveDis, Seconds: res.TotalSeconds, Legal: res.Legal,
							MaxDis: res.Metrics.MaxDis, Ops: flexOps(res), Modeled: flexBreakdown(res)}, nil
					})
				}
			})
		}
	}
	cells, err := run(opt, jobs)
	if err != nil {
		return nil, err
	}
	rows := make([]Table1Row, len(suite))
	for i, spec := range suite {
		l, err := layouts[i]() // memoized: generated by this design's jobs
		if err != nil {
			return nil, fmt.Errorf("table1 %w", err)
		}
		d := cells[i*table1Engines : (i+1)*table1Engines]
		row := Table1Row{
			Name: spec.Name, Cells: len(l.MovableIDs()), Density: l.Density(),
			MGL: d[0], Date: d[1], Ispd: d[2], Flex: d[3],
		}
		if row.Flex.Seconds > 0 {
			row.AccT = row.MGL.Seconds / row.Flex.Seconds
			row.AccD = row.Date.Seconds / row.Flex.Seconds
			row.AccI = row.Ispd.Seconds / row.Flex.Seconds
		}
		rows[i] = row
	}
	if opt.Bench != nil {
		for _, row := range rows {
			for _, ec := range []struct {
				cell   EngineCell
				engine string
				config string
			}{
				{row.MGL, "mgl-mt", fmt.Sprintf("threads=%d", opt.Threads)},
				{row.Date, "gpu", ""},
				{row.Ispd, "analytical", ""},
				{row.Flex, "flex", ""},
			} {
				opt.Bench.Add(benchjson.Record{
					Design: row.Name, Engine: ec.engine, Config: ec.config,
					Cells: row.Cells, Legal: ec.cell.Legal,
					AveDis: ec.cell.AveDis, MaxDis: ec.cell.MaxDis,
					ModeledSeconds: ec.cell.Seconds,
					Modeled:        ec.cell.Modeled, Ops: ec.cell.Ops,
				})
			}
		}
	}
	return rows, nil
}

// RenderTable1 formats Table-1 rows like the paper.
func RenderTable1(rows []Table1Row) *report.Table {
	t := report.NewTable("Table 1: result comparison on the synthetic IC/CAD 2017 suite",
		"Benchmark", "Cell#", "Den.(%)",
		"MGL AveDis", "MGL T(s)",
		"DATE AveDis", "DATE T(s)",
		"ISPD AveDis", "ISPD T(s)",
		"FLEX AveDis", "FLEX T(s)",
		"Acc(T)", "Acc(D)", "Acc(I)")
	var sum Table1Row
	for _, r := range rows {
		t.Add(r.Name, fmt.Sprint(r.Cells), report.F(r.Density*100, 1),
			report.F(r.MGL.AveDis, 3), report.Secs(r.MGL.Seconds),
			report.F(r.Date.AveDis, 3), report.Secs(r.Date.Seconds),
			report.F(r.Ispd.AveDis, 3), report.Secs(r.Ispd.Seconds),
			report.F(r.Flex.AveDis, 3), report.Secs(r.Flex.Seconds),
			report.X(r.AccT), report.X(r.AccD), report.X(r.AccI))
		sum.MGL.AveDis += r.MGL.AveDis
		sum.MGL.Seconds += r.MGL.Seconds
		sum.Date.AveDis += r.Date.AveDis
		sum.Date.Seconds += r.Date.Seconds
		sum.Ispd.AveDis += r.Ispd.AveDis
		sum.Ispd.Seconds += r.Ispd.Seconds
		sum.Flex.AveDis += r.Flex.AveDis
		sum.Flex.Seconds += r.Flex.Seconds
		sum.AccT += r.AccT
		sum.AccD += r.AccD
		sum.AccI += r.AccI
	}
	if n := float64(len(rows)); n > 0 {
		t.Add("Average", "", "",
			report.F(sum.MGL.AveDis/n, 3), report.Secs(sum.MGL.Seconds/n),
			report.F(sum.Date.AveDis/n, 3), report.Secs(sum.Date.Seconds/n),
			report.F(sum.Ispd.AveDis/n, 3), report.Secs(sum.Ispd.Seconds/n),
			report.F(sum.Flex.AveDis/n, 3), report.Secs(sum.Flex.Seconds/n),
			report.X(sum.AccT/n), report.X(sum.AccD/n), report.X(sum.AccI/n))
		if sum.Flex.AveDis > 0 {
			t.Add("Ratio", "", "",
				report.F(sum.MGL.AveDis/sum.Flex.AveDis, 2), report.X(sum.MGL.Seconds/sum.Flex.Seconds),
				report.F(sum.Date.AveDis/sum.Flex.AveDis, 2), report.X(sum.Date.Seconds/sum.Flex.Seconds),
				report.F(sum.Ispd.AveDis/sum.Flex.AveDis, 2), report.X(sum.Ispd.Seconds/sum.Flex.Seconds),
				"1.00", "1.0x", "", "", "")
		}
	}
	return t
}

// Table2 renders the FPGA resource table.
func Table2() *report.Table {
	t := report.NewTable("Table 2: hardware resource consumption on FPGA",
		"Configuration", "LUTs", "FFs", "BRAMs", "DSPs")
	one := fpga.Estimate(1)
	two := fpga.Estimate(2)
	t.Add("No parallelism of FOP PE", fmt.Sprint(one.LUTs), fmt.Sprint(one.FFs), fmt.Sprint(one.BRAMs), fmt.Sprint(one.DSPs))
	t.Add("2 parallelism of FOP PE", fmt.Sprint(two.LUTs), fmt.Sprint(two.FFs), fmt.Sprint(two.BRAMs), fmt.Sprint(two.DSPs))
	t.Add("Available", fmt.Sprint(fpga.AlveoU50.LUTs), fmt.Sprint(fpga.AlveoU50.FFs), fmt.Sprint(fpga.AlveoU50.BRAMs), fmt.Sprint(fpga.AlveoU50.DSPs))
	return t
}

// traceDesign runs the FLEX-configured sequential flow once and returns the
// per-region FPGA traces plus the final run result.
func traceDesign(l *model.Layout, measureOriginal bool) ([]fpga.Trace, *mgl.Result) {
	var traces []fpga.Trace
	cfg := mgl.Config{
		Streamed:             true,
		SlidingWindow:        8,
		MeasureOriginalShift: measureOriginal,
		TraceFn: func(tt mgl.TargetTrace) {
			traces = append(traces, fpga.TraceFromFOP(tt.FOP, int(tt.CommitMoved)))
		},
	}
	res := mgl.Legalize(l, cfg)
	return traces, res
}

func sumCycles(cfg fpga.PEConfig, traces []fpga.Trace) float64 {
	var total float64
	for _, tr := range traces {
		total += cfg.RegionCycles(tr)
	}
	return total
}
