// Package experiments contains one driver per table and figure of the FLEX
// paper's evaluation (Sec. 5). Every driver runs the real engines on the
// synthetic IC/CAD 2017 suite at a configurable scale and returns the rows
// or series the paper reports; cmd/flexbench and bench_test.go render them.
//
// DESIGN.md carries the experiment index; EXPERIMENTS.md records measured
// shapes against the paper's.
package experiments

import (
	"fmt"

	"github.com/flex-eda/flex/internal/analytical"
	"github.com/flex-eda/flex/internal/core"
	"github.com/flex-eda/flex/internal/fpga"
	"github.com/flex-eda/flex/internal/gen"
	"github.com/flex-eda/flex/internal/gpu"
	"github.com/flex-eda/flex/internal/mgl"
	"github.com/flex-eda/flex/internal/model"
	"github.com/flex-eda/flex/internal/perf"
	"github.com/flex-eda/flex/internal/report"
)

// Options configures a driver run.
type Options struct {
	// Scale shrinks every design's cell count (1.0 = the paper's size).
	// The default 0.02 keeps a full-suite run in CI territory.
	Scale float64
	// Designs filters the suite by name; empty = all 16.
	Designs []string
	// MeasureOriginal instruments the original multi-pass shifting per
	// insertion point (slower, more faithful Normal-Pipeline cycle counts).
	MeasureOriginal bool
	// Threads is the CPU baseline's thread count (0 = 8, the paper's).
	Threads int
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 0.02
	}
	if o.Threads == 0 {
		o.Threads = 8
	}
	return o
}

func (o Options) suite() []gen.Spec {
	all := gen.ICCAD2017()
	if len(o.Designs) == 0 {
		return all
	}
	want := map[string]bool{}
	for _, n := range o.Designs {
		want[n] = true
	}
	var out []gen.Spec
	for _, s := range all {
		if want[s.Name] {
			out = append(out, s)
		}
	}
	return out
}

// EngineCell is one engine's outcome on one design.
type EngineCell struct {
	AveDis  float64
	Seconds float64
	Legal   bool
}

// Table1Row mirrors one row of the paper's Table 1.
type Table1Row struct {
	Name    string
	Cells   int
	Density float64
	MGL     EngineCell // TCAD'22 multi-threaded CPU baseline
	Date    EngineCell // DATE'22 CPU-GPU baseline
	Ispd    EngineCell // ISPD'25 analytical baseline
	Flex    EngineCell // this work
	AccT    float64    // Flex speedup vs MGL
	AccD    float64    // Flex speedup vs DATE'22
	AccI    float64    // Flex speedup vs ISPD'25
}

// Table1 runs all four engines over the (filtered, scaled) suite.
func Table1(opt Options) ([]Table1Row, error) {
	opt = opt.withDefaults()
	var rows []Table1Row
	for _, spec := range opt.suite() {
		l, err := spec.Generate(opt.Scale)
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", spec.Name, err)
		}
		row := Table1Row{
			Name:    spec.Name,
			Cells:   len(l.MovableIDs()),
			Density: l.Density(),
		}

		cpuRes := mgl.Legalize(l, mgl.Config{Threads: opt.Threads})
		cpuSecs := perf.DefaultCPU.ParallelSeconds(cpuRes.Stats.WorkSerial,
			cpuRes.Stats.WorkCritical, int(cpuRes.Stats.Batches), opt.Threads)
		row.MGL = EngineCell{AveDis: cpuRes.Metrics.AveDis, Seconds: cpuSecs, Legal: cpuRes.Legal}

		gRes := gpu.Legalize(l, gpu.Config{})
		row.Date = EngineCell{AveDis: gRes.Metrics.AveDis, Seconds: gRes.TotalSeconds, Legal: gRes.Legal}

		aRes := analytical.Legalize(l, analytical.Config{})
		row.Ispd = EngineCell{AveDis: aRes.Metrics.AveDis, Seconds: aRes.TotalSeconds, Legal: aRes.Legal}

		fRes := core.Legalize(l, core.Config{MeasureOriginalShift: opt.MeasureOriginal})
		row.Flex = EngineCell{AveDis: fRes.Metrics.AveDis, Seconds: fRes.TotalSeconds, Legal: fRes.Legal}

		if row.Flex.Seconds > 0 {
			row.AccT = row.MGL.Seconds / row.Flex.Seconds
			row.AccD = row.Date.Seconds / row.Flex.Seconds
			row.AccI = row.Ispd.Seconds / row.Flex.Seconds
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable1 formats Table-1 rows like the paper.
func RenderTable1(rows []Table1Row) *report.Table {
	t := report.NewTable("Table 1: result comparison on the synthetic IC/CAD 2017 suite",
		"Benchmark", "Cell#", "Den.(%)",
		"MGL AveDis", "MGL T(s)",
		"DATE AveDis", "DATE T(s)",
		"ISPD AveDis", "ISPD T(s)",
		"FLEX AveDis", "FLEX T(s)",
		"Acc(T)", "Acc(D)", "Acc(I)")
	var sum Table1Row
	for _, r := range rows {
		t.Add(r.Name, fmt.Sprint(r.Cells), report.F(r.Density*100, 1),
			report.F(r.MGL.AveDis, 3), report.Secs(r.MGL.Seconds),
			report.F(r.Date.AveDis, 3), report.Secs(r.Date.Seconds),
			report.F(r.Ispd.AveDis, 3), report.Secs(r.Ispd.Seconds),
			report.F(r.Flex.AveDis, 3), report.Secs(r.Flex.Seconds),
			report.X(r.AccT), report.X(r.AccD), report.X(r.AccI))
		sum.MGL.AveDis += r.MGL.AveDis
		sum.MGL.Seconds += r.MGL.Seconds
		sum.Date.AveDis += r.Date.AveDis
		sum.Date.Seconds += r.Date.Seconds
		sum.Ispd.AveDis += r.Ispd.AveDis
		sum.Ispd.Seconds += r.Ispd.Seconds
		sum.Flex.AveDis += r.Flex.AveDis
		sum.Flex.Seconds += r.Flex.Seconds
		sum.AccT += r.AccT
		sum.AccD += r.AccD
		sum.AccI += r.AccI
	}
	if n := float64(len(rows)); n > 0 {
		t.Add("Average", "", "",
			report.F(sum.MGL.AveDis/n, 3), report.Secs(sum.MGL.Seconds/n),
			report.F(sum.Date.AveDis/n, 3), report.Secs(sum.Date.Seconds/n),
			report.F(sum.Ispd.AveDis/n, 3), report.Secs(sum.Ispd.Seconds/n),
			report.F(sum.Flex.AveDis/n, 3), report.Secs(sum.Flex.Seconds/n),
			report.X(sum.AccT/n), report.X(sum.AccD/n), report.X(sum.AccI/n))
		if sum.Flex.AveDis > 0 {
			t.Add("Ratio", "", "",
				report.F(sum.MGL.AveDis/sum.Flex.AveDis, 2), report.X(sum.MGL.Seconds/sum.Flex.Seconds),
				report.F(sum.Date.AveDis/sum.Flex.AveDis, 2), report.X(sum.Date.Seconds/sum.Flex.Seconds),
				report.F(sum.Ispd.AveDis/sum.Flex.AveDis, 2), report.X(sum.Ispd.Seconds/sum.Flex.Seconds),
				"1.00", "1.0x", "", "", "")
		}
	}
	return t
}

// Table2 renders the FPGA resource table.
func Table2() *report.Table {
	t := report.NewTable("Table 2: hardware resource consumption on FPGA",
		"Configuration", "LUTs", "FFs", "BRAMs", "DSPs")
	one := fpga.Estimate(1)
	two := fpga.Estimate(2)
	t.Add("No parallelism of FOP PE", fmt.Sprint(one.LUTs), fmt.Sprint(one.FFs), fmt.Sprint(one.BRAMs), fmt.Sprint(one.DSPs))
	t.Add("2 parallelism of FOP PE", fmt.Sprint(two.LUTs), fmt.Sprint(two.FFs), fmt.Sprint(two.BRAMs), fmt.Sprint(two.DSPs))
	t.Add("Available", fmt.Sprint(fpga.AlveoU50.LUTs), fmt.Sprint(fpga.AlveoU50.FFs), fmt.Sprint(fpga.AlveoU50.BRAMs), fmt.Sprint(fpga.AlveoU50.DSPs))
	return t
}

// traceDesign runs the FLEX-configured sequential flow once and returns the
// per-region FPGA traces plus the final run result.
func traceDesign(l *model.Layout, measureOriginal bool) ([]fpga.Trace, *mgl.Result) {
	var traces []fpga.Trace
	cfg := mgl.Config{
		Streamed:             true,
		SlidingWindow:        8,
		MeasureOriginalShift: measureOriginal,
		TraceFn: func(tt mgl.TargetTrace) {
			traces = append(traces, fpga.TraceFromFOP(tt.FOP, int(tt.CommitMoved)))
		},
	}
	res := mgl.Legalize(l, cfg)
	return traces, res
}

func sumCycles(cfg fpga.PEConfig, traces []fpga.Trace) float64 {
	var total float64
	for _, tr := range traces {
		total += cfg.RegionCycles(tr)
	}
	return total
}
