package experiments

import (
	"context"
	"fmt"
	"sync"

	"github.com/flex-eda/flex/internal/batch"
	"github.com/flex-eda/flex/internal/gen"
	"github.com/flex-eda/flex/internal/model"
	"github.com/flex-eda/flex/internal/sched"
)

// run fans jobs across the driver's worker pool and collapses the results
// in submission order, failing on the first job error. Every driver routes
// its (design × engine × config) fan-out through here instead of a
// hand-rolled serial loop; because the engines are deterministic and jobs
// are independent, any worker count produces identical tables. Drivers want
// all-or-nothing results, so the batch fails fast: one job error stops
// scheduling instead of burning the rest of the suite.
//
// The executor is Options.Pool when the caller wired a shared service-style
// pool (one flexbench run = one pool, so device history and admission span
// every driver), else a throwaway pool sized by Options.Workers/FPGAs.
// Jobs that run the FLEX engine declare their device phase with
// batch.AcquireDevice and contend on the pool's boards, while CPU-only jobs
// overlap freely. Per-batch pool statistics (device wait vs CPU overlap —
// deltas even on a shared pool) accumulate into Options.Stats when set —
// never into the returned values, which stay byte-identical across
// workers × FPGAs × cache configurations.
func run[T any](opt Options, jobs []batch.Job[T]) ([]T, error) {
	pool := opt.Pool
	if pool == nil {
		pool = batch.NewPool(batch.PoolConfig{Workers: opt.Workers, FPGAs: opt.FPGAs})
		defer pool.Close()
	}
	// Drivers submit uniform batches: Options.Priority stamps every job's
	// class so a whole flexbench run schedules below or above concurrent
	// pool traffic.
	var classes []sched.Class
	if opt.Priority != 0 {
		classes = make([]sched.Class, len(jobs))
		for i := range classes {
			classes[i] = sched.Class{Priority: opt.Priority}
		}
	}
	results, st, err := batch.RunClassedOn(context.Background(), pool, jobs, classes, true, nil)
	if opt.Stats != nil {
		opt.Stats.Add(st)
	}
	if err != nil {
		return nil, err
	}
	return batch.Values(results)
}

// generate builds spec at scale, through the shared layout cache when the
// caller wired one (Options.Layouts). Cached layouts are shared across
// drivers — engines legalize clones, so the pointer is safe to share.
func (o Options) generate(spec gen.Spec, scale float64) (*model.Layout, error) {
	l, err := gen.Cached(o.Layouts, spec, scale)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", spec.Name, err)
	}
	return l, nil
}

// runOnDevice runs f while holding one modeled accelerator board — the
// declaration every FLEX-engine (core.Legalize) call site inside a driver
// job makes, so new drivers opt in with one wrapper instead of hand-rolled
// acquire/release boilerplate. CPU-only measurement code must not use it.
func runOnDevice[T any](ctx context.Context, f func() (T, error)) (T, error) {
	release, err := batch.AcquireDevice(ctx)
	if err != nil {
		var zero T
		return zero, err
	}
	defer release()
	return f()
}

// lazyLayouts returns one memoized generator per spec for drivers whose
// jobs share a design across several engine/config variants: each design is
// generated at most once per call, on first use, by whichever job reaches
// it first — and at most once per process when a shared layout cache is
// wired (engines legalize clones, so sharing the pointer is safe). Compared
// to generating up front this keeps only touched designs resident and lets
// a fail-fast batch stop before generating the rest of the suite; compared
// to generating per job it never duplicates work.
func lazyLayouts(opt Options, specs []gen.Spec, scale float64) []func() (*model.Layout, error) {
	out := make([]func() (*model.Layout, error), len(specs))
	for i, spec := range specs {
		out[i] = sync.OnceValues(func() (*model.Layout, error) {
			return opt.generate(spec, scale)
		})
	}
	return out
}

// perSpec builds one job per design spec — generate at scale on the worker
// (through the shared cache when wired), then measure — and runs them
// through the pool.
func perSpec[T any](opt Options, specs []gen.Spec, scale float64, measure func(spec gen.Spec, l *model.Layout) (T, error)) ([]T, error) {
	jobs := make([]batch.Job[T], len(specs))
	for i, spec := range specs {
		jobs[i] = func(context.Context) (T, error) {
			l, err := opt.generate(spec, scale)
			if err != nil {
				var zero T
				return zero, err
			}
			return measure(spec, l)
		}
	}
	return run(opt, jobs)
}
