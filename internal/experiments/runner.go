package experiments

import (
	"context"
	"fmt"
	"sync"

	"github.com/flex-eda/flex/internal/batch"
	"github.com/flex-eda/flex/internal/gen"
	"github.com/flex-eda/flex/internal/model"
)

// run fans jobs across the driver's worker pool (Options.Workers; <= 0 =
// GOMAXPROCS) and collapses the results in submission order, failing on the
// first job error. Every driver routes its (design × engine × config)
// fan-out through here instead of a hand-rolled serial loop; because the
// engines are deterministic and jobs are independent, any worker count
// produces identical tables. Drivers want all-or-nothing results, so the
// batch fails fast: one job error stops scheduling instead of burning the
// rest of the suite.
func run[T any](opt Options, jobs []batch.Job[T]) ([]T, error) {
	results, _, err := batch.Run(context.Background(), jobs,
		batch.Options{Workers: opt.Workers, FailFast: true})
	if err != nil {
		return nil, err
	}
	return batch.Values(results)
}

// lazyLayouts returns one memoized generator per spec for drivers whose
// jobs share a design across several engine/config variants: each design is
// generated at most once, on first use, by whichever job reaches it first
// (engines legalize clones, so sharing the pointer is safe). Compared to
// generating up front this keeps only touched designs resident and lets a
// fail-fast batch stop before generating the rest of the suite; compared to
// generating per job it never duplicates work.
func lazyLayouts(specs []gen.Spec, scale float64) []func() (*model.Layout, error) {
	out := make([]func() (*model.Layout, error), len(specs))
	for i, spec := range specs {
		out[i] = sync.OnceValues(func() (*model.Layout, error) {
			l, err := spec.Generate(scale)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", spec.Name, err)
			}
			return l, nil
		})
	}
	return out
}

// perSpec builds one job per design spec — generate at scale on the worker,
// then measure — and runs them through the pool.
func perSpec[T any](opt Options, specs []gen.Spec, scale float64, measure func(spec gen.Spec, l *model.Layout) (T, error)) ([]T, error) {
	jobs := make([]batch.Job[T], len(specs))
	for i, spec := range specs {
		jobs[i] = func(context.Context) (T, error) {
			l, err := spec.Generate(scale)
			if err != nil {
				var zero T
				return zero, err
			}
			return measure(spec, l)
		}
	}
	return run(opt, jobs)
}
