package experiments

import (
	"testing"

	"github.com/flex-eda/flex/internal/batch"
	"github.com/flex-eda/flex/internal/cache"
)

// withService returns tiny wired to a shared pool and layout cache, the way
// flexbench runs every driver of one invocation.
func withService(o Options, pool *batch.Pool, layouts *cache.LRU) Options {
	o.Pool = pool
	o.Layouts = layouts
	return o
}

// TestSharedPoolAndCacheByteIdenticalTables is the caching acceptance gate:
// running the drivers on one long-lived pool with a warm layout cache must
// render byte-identical output to the throwaway-pool, cache-off baseline —
// twice, so the second (fully warm) pass is covered too.
func TestSharedPoolAndCacheByteIdenticalTables(t *testing.T) {
	pool := batch.NewPool(batch.PoolConfig{Workers: 4, FPGAs: 1})
	defer pool.Close()
	layouts := cache.New(64 << 20)

	drivers := []struct {
		name string
		run  func(Options) (string, error)
	}{
		{"table1", func(o Options) (string, error) {
			rows, err := Table1(o)
			if err != nil {
				return "", err
			}
			return RenderTable1(rows).String(), nil
		}},
		{"fig2g", func(o Options) (string, error) {
			pts, err := Fig2g(o)
			if err != nil {
				return "", err
			}
			return RenderFig2g(pts).String(), nil
		}},
		{"fig10", func(o Options) (string, error) {
			pts, err := Fig10(o)
			if err != nil {
				return "", err
			}
			return RenderFig10(pts).String(), nil
		}},
	}
	for _, d := range drivers {
		baseline, err := d.run(withWorkers(tiny, 1))
		if err != nil {
			t.Fatalf("%s baseline: %v", d.name, err)
		}
		for pass := 0; pass < 2; pass++ {
			got, err := d.run(withService(withWorkers(tiny, 4), pool, layouts))
			if err != nil {
				t.Fatalf("%s cached pass %d: %v", d.name, pass, err)
			}
			if got != baseline {
				t.Fatalf("%s cached pass %d differs from cache-off baseline:\n--- baseline ---\n%s\n--- cached ---\n%s",
					d.name, pass, baseline, got)
			}
		}
	}
	st := layouts.Stats()
	if st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("cache never exercised: %+v", st)
	}
	// tiny selects 2 designs at one scale: every driver pass shares the
	// same 2 generations for the whole run.
	if st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (one per design for the whole run)", st.Misses)
	}
}

// TestStatsSinkWithSharedPool checks that per-driver device stats stay
// per-batch deltas on a shared pool: two Table1 runs each report their own
// two FLEX acquires even though the pool's device history accumulates.
func TestStatsSinkWithSharedPool(t *testing.T) {
	pool := batch.NewPool(batch.PoolConfig{Workers: 4, FPGAs: 1})
	defer pool.Close()
	for i := 0; i < 2; i++ {
		var st batch.Stats
		o := withService(tiny, pool, nil)
		o.Stats = &st
		if _, err := Table1(o); err != nil {
			t.Fatal(err)
		}
		if st.DeviceAcquires != 2 {
			t.Fatalf("run %d: device acquires = %d, want per-run delta 2", i, st.DeviceAcquires)
		}
		if st.FPGAs != 1 {
			t.Fatalf("run %d: FPGAs = %d", i, st.FPGAs)
		}
	}
	if total := pool.Device().Stats().Acquires; total != 4 {
		t.Fatalf("pool lifetime acquires = %d, want 4", total)
	}
}
