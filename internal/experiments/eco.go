package experiments

import (
	"bytes"
	"context"
	"fmt"

	"github.com/flex-eda/flex/internal/batch"
	"github.com/flex-eda/flex/internal/benchjson"
	"github.com/flex-eda/flex/internal/core"
	"github.com/flex-eda/flex/internal/eco"
	"github.com/flex-eda/flex/internal/model"
	"github.com/flex-eda/flex/internal/report"
	"github.com/flex-eda/flex/internal/shard"
)

// EcoPoint is one design's edit-stream measurement (the "Incremental
// legalization" extension; see docs/ARCHITECTURE.md): the design is
// legalized once in full across Bands row bands, then Edits independent
// in-halo cell moves are served two ways — incrementally (re-legalize only
// the dirty bands, splice the cached base outcome's clean bands) and as
// full re-runs — and the two must agree byte for byte.
type EcoPoint struct {
	Name  string
	Cells int // movable cells
	Rows  int // die height in rows
	Bands int // effective band count (the plan may clamp the request)
	Halo  int
	Edits int // edits actually served (bounded by eligible cells)
	Dirty int // bands re-legalized across the stream (the incremental work)
	// Match reports that every edit's incremental splice was byte-identical
	// to its full re-run — the correctness contract of the delta path. The
	// driver fails hard on a mismatch, so a rendered row always shows true.
	Match bool
	// FullModeled sums the modeled engine seconds of the full re-runs;
	// IncModeled those of the incremental dirty-band re-solves. Their ratio
	// is the edit stream's modeled speedup — the quantity the outcome cache
	// buys.
	FullModeled float64
	IncModeled  float64
	// Ops sums the FLEX engine's deterministic op counts across the
	// incremental re-solves — the benchjson trajectory record of the
	// incremental configuration.
	Ops benchjson.Ops
}

// Speedup returns the edit stream's modeled full/incremental ratio.
func (p EcoPoint) Speedup() float64 {
	if p.IncModeled > 0 {
		return p.FullModeled / p.IncModeled
	}
	return 0
}

// bandRun is one band's legalization outcome inside the eco driver.
type ecoBandRun struct {
	layout  *model.Layout
	seconds float64
	legal   bool
	ops     benchjson.Ops
}

// legalizeBands fans one FLEX job per listed band index through the pool
// (nil bands = all) and returns the per-band runs, indexed like bands.
func legalizeBands(opt Options, pool *batch.Pool, bands []*model.Layout, idx []int) ([]ecoBandRun, error) {
	if idx == nil {
		idx = make([]int, len(bands))
		for i := range idx {
			idx[i] = i
		}
	}
	jobs := make([]batch.Job[ecoBandRun], len(idx))
	for j, b := range idx {
		band := bands[b]
		jobs[j] = func(ctx context.Context) (ecoBandRun, error) {
			return runOnDevice(ctx, func() (ecoBandRun, error) {
				r := core.Legalize(band, core.Config{MeasureOriginalShift: opt.MeasureOriginal})
				return ecoBandRun{layout: r.Layout, seconds: r.TotalSeconds, legal: r.Legal, ops: flexOps(r)}, nil
			})
		}
	}
	results, st, err := batch.RunOn(context.Background(), pool, jobs, true, nil)
	if opt.Stats != nil {
		opt.Stats.Add(st)
	}
	if err != nil {
		return nil, err
	}
	out := make([]ecoBandRun, len(idx))
	for j, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("band %d: %w", idx[j], r.Err)
		}
		out[j] = r.Value
	}
	return out, nil
}

// interiorEdit picks a deterministic in-halo move inside band b of the
// plan: the first movable parity-free cell whose halo-expanded row span
// stays strictly inside the band (so exactly one band dirties), shifted
// horizontally. Returns ok = false when the band has no eligible cell.
func interiorEdit(l *model.Layout, p *shard.Plan, b int, used map[string]bool) (eco.Edit, bool) {
	band := p.Bands[b]
	for i := range l.Cells {
		c := &l.Cells[i]
		if c.Fixed || c.Parity != model.ParityAny || used[c.Name] {
			continue
		}
		if c.GY-p.Halo < band.LoRow || c.GY+c.H+p.Halo > band.HiRow {
			continue
		}
		gx := (c.GX + 7) % (l.NumSitesX - c.W + 1)
		return eco.Edit{Op: eco.OpMove, Cell: c.Name, GX: gx, GY: c.GY}, true
	}
	return eco.Edit{}, false
}

// Eco measures the incremental (ECO) legalization path over the (filtered,
// scaled) suite: per design, legalize the whole die once across bands row
// bands, then serve edits single-cell in-halo moves — each against the same
// base — both incrementally (dirty bands only, clean bands spliced from the
// base run) and as full re-runs. The two stitched results must be
// byte-identical per edit; any disagreement fails the driver. The modeled
// speedup is the full-stream cost over the incremental-stream cost.
func Eco(opt Options, bands, halo, edits int) ([]EcoPoint, error) {
	opt = opt.withDefaults()
	if bands < 1 {
		return nil, fmt.Errorf("eco: band count must be >= 1, got %d", bands)
	}
	if halo < 0 {
		halo = 0
	}
	if edits < 1 {
		return nil, fmt.Errorf("eco: edit count must be >= 1, got %d", edits)
	}
	suite := opt.suite()
	if len(suite) == 0 {
		return nil, fmt.Errorf("eco: empty suite")
	}
	pool := opt.Pool
	if pool == nil {
		pool = batch.NewPool(batch.PoolConfig{Workers: opt.Workers, FPGAs: opt.FPGAs})
		defer pool.Close()
	}
	out := make([]EcoPoint, 0, len(suite))
	for _, spec := range suite {
		base, err := opt.generate(spec, opt.Scale)
		if err != nil {
			return nil, err
		}
		plan, err := shard.PlanBands(base, bands, halo)
		if err != nil {
			return nil, fmt.Errorf("eco %s: %w", spec.Name, err)
		}
		baseBands, err := shard.Split(base, plan)
		if err != nil {
			return nil, fmt.Errorf("eco %s: %w", spec.Name, err)
		}
		baseRuns, err := legalizeBands(opt, pool, baseBands, nil)
		if err != nil {
			return nil, fmt.Errorf("eco %s: %w", spec.Name, err)
		}
		pt := EcoPoint{
			Name:  spec.Name,
			Cells: len(base.MovableIDs()),
			Rows:  base.NumRows,
			Bands: len(plan.Bands),
			Halo:  plan.Halo,
			Match: true,
			Ops:   benchjson.Ops{},
		}
		used := map[string]bool{}
		for e := 0; e < edits; e++ {
			edit, ok := interiorEdit(base, plan, e%len(plan.Bands), used)
			if !ok {
				// This band holds no eligible interior cell at this scale;
				// smaller streams still measure, they just say so.
				continue
			}
			used[edit.Cell] = true
			edited, err := eco.Apply(base, []eco.Edit{edit})
			if err != nil {
				return nil, fmt.Errorf("eco %s: %w", spec.Name, err)
			}
			editedBands, err := shard.Split(edited, plan)
			if err != nil {
				return nil, fmt.Errorf("eco %s: %w", spec.Name, err)
			}
			spans, inHalo, err := eco.DirtySpans(base, []eco.Edit{edit}, plan.Halo)
			if err != nil {
				return nil, fmt.Errorf("eco %s: %w", spec.Name, err)
			}
			if !inHalo {
				return nil, fmt.Errorf("eco %s: interior edit classified out of halo", spec.Name)
			}
			var dirtyIdx []int
			for b, d := range eco.MarkDirty(plan, spans) {
				if d {
					dirtyIdx = append(dirtyIdx, b)
				}
			}
			// Hash-verify the splice the way the service does: a predicted-
			// clean band whose input changed would make reuse unsound.
			dirty := make(map[int]bool, len(dirtyIdx))
			for _, b := range dirtyIdx {
				dirty[b] = true
			}
			for b := range plan.Bands {
				if !dirty[b] && eco.Hash(editedBands[b]) != eco.Hash(baseBands[b]) {
					return nil, fmt.Errorf("eco %s: clean band %d changed under an interior edit", spec.Name, b)
				}
			}

			// Incremental: re-legalize the dirty bands, splice the rest.
			incRuns, err := legalizeBands(opt, pool, editedBands, dirtyIdx)
			if err != nil {
				return nil, fmt.Errorf("eco %s: %w", spec.Name, err)
			}
			incLayouts := make([]*model.Layout, len(plan.Bands))
			for b := range plan.Bands {
				incLayouts[b] = baseRuns[b].layout
			}
			for j, b := range dirtyIdx {
				incLayouts[b] = incRuns[j].layout
				pt.IncModeled += incRuns[j].seconds
				pt.Ops.Add(incRuns[j].ops)
			}
			incStitched, err := shard.Stitch(edited, plan, incLayouts)
			if err != nil {
				return nil, fmt.Errorf("eco %s: %w", spec.Name, err)
			}

			// Full re-run of the edited die, the baseline the splice must
			// reproduce exactly.
			fullRuns, err := legalizeBands(opt, pool, editedBands, nil)
			if err != nil {
				return nil, fmt.Errorf("eco %s: %w", spec.Name, err)
			}
			fullLayouts := make([]*model.Layout, len(plan.Bands))
			for b := range plan.Bands {
				fullLayouts[b] = fullRuns[b].layout
				pt.FullModeled += fullRuns[b].seconds
			}
			fullStitched, err := shard.Stitch(edited, plan, fullLayouts)
			if err != nil {
				return nil, fmt.Errorf("eco %s: %w", spec.Name, err)
			}
			var incBuf, fullBuf bytes.Buffer
			if err := model.Encode(&incBuf, incStitched); err != nil {
				return nil, fmt.Errorf("eco %s: %w", spec.Name, err)
			}
			if err := model.Encode(&fullBuf, fullStitched); err != nil {
				return nil, fmt.Errorf("eco %s: %w", spec.Name, err)
			}
			if !bytes.Equal(incBuf.Bytes(), fullBuf.Bytes()) {
				return nil, fmt.Errorf("eco %s edit %d: incremental result differs from full re-run", spec.Name, e)
			}
			pt.Edits++
			pt.Dirty += len(dirtyIdx)
		}
		if pt.Edits == 0 {
			return nil, fmt.Errorf("eco %s: no band holds an interior movable cell at scale %g; raise -scale or lower -eco-bands", spec.Name, opt.Scale)
		}
		if opt.Bench != nil {
			opt.Bench.Add(benchjson.Record{
				Design: pt.Name, Engine: "flex",
				Config: fmt.Sprintf("eco bands=%d halo=%d edits=%d", pt.Bands, pt.Halo, pt.Edits),
				Cells:  pt.Cells, Legal: pt.Match,
				ModeledSeconds: pt.IncModeled, Ops: pt.Ops,
			})
		}
		out = append(out, pt)
	}
	return out, nil
}

// RenderEco renders the edit-stream measurements. Every column is
// deterministic: modeled seconds, not wall clock, price the two paths.
func RenderEco(pts []EcoPoint) *report.Table {
	t := report.NewTable("Incremental (ECO) legalization: dirty-band re-solve vs full re-run",
		"Design", "Cells", "Rows", "Bands", "Halo", "Edits", "Dirty",
		"Match", "T_full(s)", "T_inc(s)", "Speedup")
	for _, p := range pts {
		t.Add(p.Name, fmt.Sprint(p.Cells), fmt.Sprint(p.Rows),
			fmt.Sprint(p.Bands), fmt.Sprint(p.Halo),
			fmt.Sprint(p.Edits), fmt.Sprint(p.Dirty), fmt.Sprint(p.Match),
			report.Secs(p.FullModeled), report.Secs(p.IncModeled),
			report.X(p.Speedup()))
	}
	return t
}
