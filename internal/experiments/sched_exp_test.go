package experiments

import (
	"testing"
	"time"

	"github.com/flex-eda/flex/internal/batch"
)

// TestSchedExperimentPriorityBeatsBulk pins the acceptance criterion on a
// forced single worker: with every job admitted at once and the priority
// scheduler draining the queue, the urgent class's p99 queue wait lands
// strictly below the bulk class's (bulk was submitted first — the
// adversarial order), and every class's table columns stay deterministic.
func TestSchedExperimentPriorityBeatsBulk(t *testing.T) {
	pool := batch.NewPool(batch.PoolConfig{Workers: 1, FPGAs: 1})
	defer pool.Close()
	opt := Options{Scale: 0.008, Designs: []string{"fft_a_md2"}, Pool: pool}
	pts, err := Sched(opt, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d classes, want 3", len(pts))
	}
	byLabel := map[string]SchedPoint{}
	for _, p := range pts {
		byLabel[p.Label] = p
		if p.Jobs != 3 || p.Legal != 3 {
			t.Fatalf("class %s: %d jobs, %d legal (determinism broken)", p.Label, p.Jobs, p.Legal)
		}
	}
	urgent, bulk := byLabel["urgent"], byLabel["bulk"]
	if urgent.Priority <= bulk.Priority {
		t.Fatalf("class ladder inverted: %+v", pts)
	}
	if urgent.P99Wait >= bulk.P99Wait {
		t.Fatalf("urgent p99 wait %v not strictly below bulk p99 %v under priority scheduling",
			urgent.P99Wait, bulk.P99Wait)
	}
}

// TestSchedExperimentTableDeterministic pins the stdout contract: the
// rendered columns are identical across pools and schedules.
func TestSchedExperimentTableDeterministic(t *testing.T) {
	var want []SchedPoint
	for _, workers := range []int{1, 4} {
		pts, err := Sched(Options{Scale: 0.008, Designs: []string{"fft_a_md2"}, Workers: workers}, 2)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = pts
			continue
		}
		for i := range pts {
			if pts[i].Label != want[i].Label || pts[i].Jobs != want[i].Jobs ||
				pts[i].Legal != want[i].Legal || pts[i].Priority != want[i].Priority {
				t.Fatalf("workers=%d: deterministic columns moved: %+v vs %+v",
					workers, pts[i], want[i])
			}
		}
	}
}

func TestPercentileNearestRank(t *testing.T) {
	ds := []time.Duration{40, 10, 30, 20} // unsorted on purpose
	if got := percentile(ds, 50); got != 20 {
		t.Fatalf("p50 = %v, want 20", got)
	}
	if got := percentile(ds, 99); got != 40 {
		t.Fatalf("p99 = %v, want the top rank of a small sample", got)
	}
	if got := percentile(ds, 100); got != 40 {
		t.Fatalf("p100 = %v, want max", got)
	}
	if percentile(nil, 50) != 0 {
		t.Fatal("empty sample must yield 0")
	}
	if ds[0] != 40 {
		t.Fatal("percentile mutated its input")
	}
}
