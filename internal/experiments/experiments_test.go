package experiments

import (
	"strings"
	"testing"
)

// tiny keeps experiment tests fast: two contrasting designs at small scale.
var tiny = Options{
	Scale:   0.008,
	Designs: []string{"fft_a_md2", "pci_b_a_md2"},
}

func TestTable1ShapesHold(t *testing.T) {
	rows, err := Table1(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if !r.MGL.Legal || !r.Date.Legal || !r.Ispd.Legal || !r.Flex.Legal {
			t.Fatalf("%s: some engine produced an illegal layout: %+v", r.Name, r)
		}
		// The headline shape: FLEX is the fastest engine.
		if r.AccT <= 1 || r.AccD <= 1 || r.AccI <= 1 {
			t.Fatalf("%s: FLEX not fastest: AccT=%v AccD=%v AccI=%v", r.Name, r.AccT, r.AccD, r.AccI)
		}
		// The analytical baseline is the slowest of the comparisons.
		if r.AccI < r.AccT {
			t.Logf("%s: note AccI %.2f < AccT %.2f (paper usually has AccI largest)", r.Name, r.AccI, r.AccT)
		}
		// Quality sanity: every engine within a plausible band.
		for _, c := range []EngineCell{r.MGL, r.Date, r.Ispd, r.Flex} {
			if c.AveDis <= 0 || c.AveDis > 10 {
				t.Fatalf("%s: implausible AveDis %v", r.Name, c.AveDis)
			}
		}
	}
	out := RenderTable1(rows).String()
	if !strings.Contains(out, "Acc(T)") || !strings.Contains(out, "Average") {
		t.Fatalf("rendered table missing expected pieces:\n%s", out)
	}
}

func TestTable2Render(t *testing.T) {
	out := Table2().String()
	for _, want := range []string{"59837", "86632", "871680", "Available"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestFig2aSaturates(t *testing.T) {
	pts, err := Fig2a(Options{Scale: 0.01, Designs: []string{"des_perf_b_md1"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 || pts[0].Threads != 1 {
		t.Fatalf("unexpected points: %+v", pts)
	}
	if pts[0].Speedup != 1 {
		t.Fatalf("baseline speedup %v", pts[0].Speedup)
	}
	// More threads never slower in the model; saturation: 10T gains little
	// over 8T (the paper's Fig. 2(a) plateau).
	s8, s10 := pts[3].Speedup, pts[4].Speedup
	if s8 < 1.2 {
		t.Fatalf("8T speedup %v too small", s8)
	}
	if s10 > s8*1.15 {
		t.Fatalf("no saturation: 8T=%v 10T=%v", s8, s10)
	}
	if got := RenderFig2a(pts).String(); !strings.Contains(got, "8T") {
		t.Fatal("render missing 8T")
	}
}

func TestFig2bSyncShare(t *testing.T) {
	pts, err := Fig2b(Options{Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("want 2 superblue points, got %d", len(pts))
	}
	for _, p := range pts {
		if p.SyncShare < 0.05 || p.SyncShare > 0.8 {
			t.Fatalf("%s: sync share %v implausible", p.Name, p.SyncShare)
		}
	}
	_ = RenderFig2b(pts).String()
}

func TestFig2cParallelismGap(t *testing.T) {
	pts, err := Fig2c(Options{Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.MaxBatch <= 0 {
			t.Fatalf("%s: no parallelism measured", p.Name)
		}
		if p.MaxBatch >= p.CUDACores {
			t.Fatalf("%s: parallelism %d not below core count %d", p.Name, p.MaxBatch, p.CUDACores)
		}
	}
	_ = RenderFig2c(pts).String()
}

func TestFig2gShiftDominates(t *testing.T) {
	pts, err := Fig2g(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.ShiftShare < 0.5 {
			t.Fatalf("%s: shift share %v below 50%%", p.Name, p.ShiftShare)
		}
	}
	_ = RenderFig2g(pts).String()
}

func TestFig6gSortOverheadSmall(t *testing.T) {
	pts, err := Fig6g(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.SortShare <= 0 || p.SortShare > 0.3 {
			t.Fatalf("%s: sort share %v outside (0, 0.3]", p.Name, p.SortShare)
		}
		if p.OrigPassesAvg < p.SACSPassesAvg {
			t.Fatalf("%s: original passes %v below SACS %v", p.Name, p.OrigPassesAvg, p.SACSPassesAvg)
		}
	}
	_ = RenderFig6g(pts).String()
}

func TestFig8LadderBands(t *testing.T) {
	pts, err := Fig8(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if !(p.SACS > 1 && p.MG > p.SACS && p.TwoPE > p.MG) {
			t.Fatalf("%s: ladder not monotone: %+v", p.Name, p)
		}
		if p.SACS < 1.5 || p.SACS > 4.5 {
			t.Fatalf("%s: SACS step %v outside [1.5, 4.5]", p.Name, p.SACS)
		}
		if r := p.TwoPE / p.MG; r < 1.3 || r > 2.0 {
			t.Fatalf("%s: 2-PE step %v outside [1.3, 2.0]", p.Name, r)
		}
	}
	_ = RenderFig8(pts).String()
}

func TestFig9TallCellCorrelation(t *testing.T) {
	pts, err := Fig9(Options{
		Scale:   0.008,
		Designs: []string{"des_perf_a_md1", "pci_b_a_md2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("want 2 points, got %d", len(pts))
	}
	var md1, md2 SACSLadderPoint
	for _, p := range pts {
		if p.Name == "des_perf_a_md1" {
			md1 = p
		} else {
			md2 = p
		}
	}
	// md1 has no >3-row cells: ImpBW adds nothing over Arch.
	if md1.TallFrac != 0 {
		t.Fatalf("md1 tall fraction %v, want 0", md1.TallFrac)
	}
	if md1.ImpBW > md1.Arch*1.001 {
		t.Fatalf("md1: ImpBW %v gained over Arch %v without tall cells", md1.ImpBW, md1.Arch)
	}
	// pci_b_a_md2 has the largest tall share: ImpBW must gain visibly.
	if md2.ImpBW <= md2.Arch {
		t.Fatalf("pci_b_a_md2: ImpBW %v did not gain over Arch %v", md2.ImpBW, md2.Arch)
	}
	for _, p := range pts {
		if !(p.Arch > 1 && p.Paral > p.ImpBW) {
			t.Fatalf("%s: ladder not monotone: %+v", p.Name, p)
		}
	}
	_ = RenderFig9(pts).String()
}

func TestFig10AssignmentRatio(t *testing.T) {
	pts, err := Fig10(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Ratio <= 1 {
			t.Fatalf("%s: d-only not faster (ratio %v)", p.Name, p.Ratio)
		}
		if p.Ratio > 2.5 {
			t.Fatalf("%s: ratio %v implausibly large", p.Name, p.Ratio)
		}
	}
	_ = RenderFig10(pts).String()
}
