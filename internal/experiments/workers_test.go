package experiments

import "testing"

// withWorkers returns tiny with an explicit pool size.
func withWorkers(o Options, n int) Options {
	o.Workers = n
	return o
}

// TestWorkersByteIdenticalTables is the acceptance gate of the concurrent
// runner: every driver must render byte-identical output at 1 worker and at
// N workers — the pool may only change wall-clock, never results.
func TestWorkersByteIdenticalTables(t *testing.T) {
	type render struct {
		name string
		run  func(Options) (string, error)
	}
	drivers := []render{
		{"table1", func(o Options) (string, error) {
			rows, err := Table1(o)
			if err != nil {
				return "", err
			}
			return RenderTable1(rows).String(), nil
		}},
		{"fig2a", func(o Options) (string, error) {
			pts, err := Fig2a(o)
			if err != nil {
				return "", err
			}
			return RenderFig2a(pts).String(), nil
		}},
		{"fig2g", func(o Options) (string, error) {
			pts, err := Fig2g(o)
			if err != nil {
				return "", err
			}
			return RenderFig2g(pts).String(), nil
		}},
		{"fig8", func(o Options) (string, error) {
			pts, err := Fig8(o)
			if err != nil {
				return "", err
			}
			return RenderFig8(pts).String(), nil
		}},
		{"fig10", func(o Options) (string, error) {
			pts, err := Fig10(o)
			if err != nil {
				return "", err
			}
			return RenderFig10(pts).String(), nil
		}},
		{"ordering", func(o Options) (string, error) {
			pts, err := OrderingAblation(o)
			if err != nil {
				return "", err
			}
			return RenderOrdering(pts).String(), nil
		}},
		{"scalability", func(o Options) (string, error) {
			pts, err := Scalability(o, 4)
			if err != nil {
				return "", err
			}
			return RenderScalability(pts).String(), nil
		}},
	}
	for _, d := range drivers {
		d := d
		t.Run(d.name, func(t *testing.T) {
			t.Parallel()
			serial, err := d.run(withWorkers(tiny, 1))
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := d.run(withWorkers(tiny, 4))
			if err != nil {
				t.Fatal(err)
			}
			if serial != parallel {
				t.Fatalf("%s output differs between 1 and 4 workers:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
					d.name, serial, parallel)
			}
		})
	}
}
