package experiments

import (
	"testing"

	"github.com/flex-eda/flex/internal/batch"
)

// withWorkers returns tiny with an explicit pool size.
func withWorkers(o Options, n int) Options {
	o.Workers = n
	return o
}

// withSchedule returns tiny with an explicit pool size and modeled FPGA
// board count.
func withSchedule(o Options, workers, fpgas int) Options {
	o.Workers = workers
	o.FPGAs = fpgas
	return o
}

// TestWorkersByteIdenticalTables is the acceptance gate of the concurrent
// runner: every driver must render byte-identical output at 1 worker and at
// N workers, and — since the device scheduler landed — at any modeled FPGA
// board count. Workers and boards may only change wall-clock and wait
// statistics, never results.
func TestWorkersByteIdenticalTables(t *testing.T) {
	type render struct {
		name string
		run  func(Options) (string, error)
	}
	drivers := []render{
		{"table1", func(o Options) (string, error) {
			rows, err := Table1(o)
			if err != nil {
				return "", err
			}
			return RenderTable1(rows).String(), nil
		}},
		{"fig2a", func(o Options) (string, error) {
			pts, err := Fig2a(o)
			if err != nil {
				return "", err
			}
			return RenderFig2a(pts).String(), nil
		}},
		{"fig2g", func(o Options) (string, error) {
			pts, err := Fig2g(o)
			if err != nil {
				return "", err
			}
			return RenderFig2g(pts).String(), nil
		}},
		{"fig8", func(o Options) (string, error) {
			pts, err := Fig8(o)
			if err != nil {
				return "", err
			}
			return RenderFig8(pts).String(), nil
		}},
		{"fig10", func(o Options) (string, error) {
			pts, err := Fig10(o)
			if err != nil {
				return "", err
			}
			return RenderFig10(pts).String(), nil
		}},
		{"ordering", func(o Options) (string, error) {
			pts, err := OrderingAblation(o)
			if err != nil {
				return "", err
			}
			return RenderOrdering(pts).String(), nil
		}},
		{"scalability", func(o Options) (string, error) {
			pts, err := Scalability(o, 4)
			if err != nil {
				return "", err
			}
			return RenderScalability(pts).String(), nil
		}},
	}
	grid := []struct {
		workers, fpgas int
	}{
		{4, 1},  // paper's host: many workers, one board
		{4, 2},  // two boards
		{4, -1}, // unlimited boards (no device modeling)
		{1, 1},  // serial with a board still attached
	}
	for _, d := range drivers {
		d := d
		t.Run(d.name, func(t *testing.T) {
			t.Parallel()
			serial, err := d.run(withWorkers(tiny, 1))
			if err != nil {
				t.Fatal(err)
			}
			for _, g := range grid {
				parallel, err := d.run(withSchedule(tiny, g.workers, g.fpgas))
				if err != nil {
					t.Fatal(err)
				}
				if serial != parallel {
					t.Fatalf("%s output differs between workers=1 and workers=%d/fpgas=%d:\n--- workers=1 ---\n%s\n--- variant ---\n%s",
						d.name, g.workers, g.fpgas, serial, parallel)
				}
			}
		})
	}
}

// TestStatsSinkObservesDeviceScheduling checks the Options.Stats plumbing:
// a Table1 run over the shared board records pool size, board occupancy by
// the FLEX jobs, and — the overlap argument — summed job wall at least at
// batch wall.
func TestStatsSinkObservesDeviceScheduling(t *testing.T) {
	var st batch.Stats
	o := withSchedule(tiny, 4, 1)
	o.Stats = &st
	if _, err := Table1(o); err != nil {
		t.Fatal(err)
	}
	if st.Jobs == 0 || st.Workers != 4 {
		t.Fatalf("stats sink missed the batch: %+v", st)
	}
	if st.FPGAs != 1 {
		t.Fatalf("FPGAs = %d, want 1", st.FPGAs)
	}
	// tiny has 2 designs × 1 FLEX job each: both must have held the board.
	if st.DeviceAcquires != 2 {
		t.Fatalf("device acquires = %d, want 2 (one per FLEX job)", st.DeviceAcquires)
	}
	if st.DeviceHold <= 0 {
		t.Fatal("no board occupancy recorded")
	}
	if st.WorkWall < st.Wall {
		t.Fatalf("summed job wall %v below batch wall %v", st.WorkWall, st.Wall)
	}
}
