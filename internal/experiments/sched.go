package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/flex-eda/flex/internal/batch"
	"github.com/flex-eda/flex/internal/benchjson"
	"github.com/flex-eda/flex/internal/core"
	"github.com/flex-eda/flex/internal/report"
	"github.com/flex-eda/flex/internal/sched"
)

// SchedPoint is one priority class's outcome in the scheduling experiment:
// a batch of identical FLEX jobs per class, submitted lowest class first
// (the adversarial order for a FIFO queue), contending for the driver's
// workers and boards. The wait percentiles are wall-clock scheduling
// observations — under the priority scheduler the urgent class's p99 queue
// wait drops strictly below the bulk class's; under -sched fifo the
// classes wait alike in arrival order.
type SchedPoint struct {
	// Label names the class; Priority is its scheduling level and Client
	// its tenant identity (each class submits as its own client, so the
	// fairness statistics are visible per class too).
	Label    string
	Priority int
	Client   string
	// Jobs is the class's job count; Legal counts jobs whose legalization
	// came back legal — the deterministic columns of the rendered table.
	Jobs  int
	Legal int
	// P50Wait/P99Wait/MaxWait summarize the class's queue-wait
	// distribution (time between submission and a worker picking the job
	// up). Scheduling observations: they land on stderr, never in the
	// table.
	P50Wait, P99Wait, MaxWait time.Duration
	// DeviceWait sums the class's board queue time — the second queue the
	// scheduler orders.
	DeviceWait time.Duration
	// Cells is the movable-cell count of the design every job legalizes;
	// ModeledSeconds and Ops sum the class's deterministic engine work
	// (jobs are identical, so both are perClass multiples of one run) —
	// the benchjson trajectory record for the class.
	Cells          int
	ModeledSeconds float64
	Ops            benchjson.Ops
}

// schedClasses is the fixed class ladder of the experiment, lowest first —
// the submission order that maximally punishes arrival-order scheduling.
var schedClasses = []struct {
	label    string
	priority int
}{
	{"bulk", 0},
	{"normal", 4},
	{"urgent", 8},
}

// Sched runs the scheduling experiment: perClass identical FLEX jobs per
// priority class on the first selected design, all submitted at once, bulk
// first. The engines are deterministic, so the table (jobs and legality per
// class) is byte-identical across schedulers, workers and boards; only the
// wait distributions move — which is exactly what the experiment measures.
func Sched(opt Options, perClass int) ([]SchedPoint, error) {
	opt = opt.withDefaults()
	if perClass < 1 {
		perClass = 8
	}
	specs := opt.suite()
	if len(specs) == 0 {
		return nil, fmt.Errorf("sched: empty suite")
	}
	spec := specs[0]
	l, err := opt.generate(spec, opt.Scale)
	if err != nil {
		return nil, err
	}

	// schedRun is one job's deterministic outcome: legality for the
	// rendered table, ops and modeled seconds for the benchjson record.
	type schedRun struct {
		legal   bool
		seconds float64
		ops     benchjson.Ops
	}
	n := perClass * len(schedClasses)
	jobs := make([]batch.Job[schedRun], 0, n)
	classes := make([]sched.Class, 0, n)
	owner := make([]int, 0, n) // job index -> class index
	for ci, c := range schedClasses {
		for i := 0; i < perClass; i++ {
			jobs = append(jobs, func(ctx context.Context) (schedRun, error) {
				return runOnDevice(ctx, func() (schedRun, error) {
					res := core.Legalize(l, core.Config{})
					return schedRun{legal: res.Legal, seconds: res.TotalSeconds, ops: flexOps(res)}, nil
				})
			})
			classes = append(classes, sched.Class{
				Priority: c.priority,
				Client:   c.label,
				Job:      fmt.Sprintf("sched-%s-%d", c.label, i),
			})
			owner = append(owner, ci)
		}
	}

	pool := opt.Pool
	if pool == nil {
		pool = batch.NewPool(batch.PoolConfig{Workers: opt.Workers, FPGAs: opt.FPGAs})
		defer pool.Close()
	}
	results, st, err := batch.RunClassedOn(context.Background(), pool, jobs, classes, true, nil)
	if opt.Stats != nil {
		opt.Stats.Add(st)
	}
	if err != nil {
		return nil, fmt.Errorf("sched %s: %w", spec.Name, err)
	}

	pts := make([]SchedPoint, len(schedClasses))
	waits := make([][]time.Duration, len(schedClasses))
	for ci, c := range schedClasses {
		pts[ci] = SchedPoint{Label: c.label, Priority: c.priority, Client: c.label,
			Cells: len(l.MovableIDs()), Ops: benchjson.Ops{}}
	}
	for i, r := range results {
		ci := owner[i]
		pts[ci].Jobs++
		if r.Value.legal {
			pts[ci].Legal++
		}
		pts[ci].ModeledSeconds += r.Value.seconds
		pts[ci].Ops.Add(r.Value.ops)
		pts[ci].DeviceWait += r.DeviceWait
		waits[ci] = append(waits[ci], r.SchedWait)
	}
	for ci := range pts {
		pts[ci].P50Wait = percentile(waits[ci], 50)
		pts[ci].P99Wait = percentile(waits[ci], 99)
		pts[ci].MaxWait = percentile(waits[ci], 100)
	}
	if opt.Bench != nil {
		for _, p := range pts {
			opt.Bench.Add(benchjson.Record{
				Design: spec.Name, Engine: "flex",
				Config: fmt.Sprintf("class=%s priority=%d jobs=%d", p.Label, p.Priority, p.Jobs),
				Cells:  p.Cells, Legal: p.Legal == p.Jobs,
				ModeledSeconds: p.ModeledSeconds, Ops: p.Ops,
			})
		}
	}
	return pts, nil
}

// percentile is the nearest-rank percentile of ds (ds is not modified).
func percentile(ds []time.Duration, p int) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := (len(sorted)*p + 99) / 100 // ceil(p/100 * n)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// RenderSched renders the scheduling experiment's deterministic columns;
// the wait percentiles are wall-clock observations and belong on stderr
// (flexbench prints them there).
func RenderSched(pts []SchedPoint) *report.Table {
	t := report.NewTable("Priority scheduling under contention: identical FLEX jobs per class, bulk submitted first",
		"Class", "Priority", "Client", "Jobs", "Legal")
	for _, p := range pts {
		t.Add(p.Label, fmt.Sprint(p.Priority), p.Client,
			fmt.Sprint(p.Jobs), fmt.Sprint(p.Legal))
	}
	return t
}
