package experiments

import (
	"github.com/flex-eda/flex/internal/analytical"
	"github.com/flex-eda/flex/internal/benchjson"
	"github.com/flex-eda/flex/internal/core"
	"github.com/flex-eda/flex/internal/fop"
	"github.com/flex-eda/flex/internal/gpu"
	"github.com/flex-eda/flex/internal/mgl"
	"github.com/flex-eda/flex/internal/shift"
)

// This file converts each engine's Stats into the flat benchjson.Ops form
// persisted in BENCH_*.json. Every key is a deterministic counter; the
// perf weights price most of them, and the rest (placed, failed, gpu
// batching shape) pin the algorithmic trajectory. Keys are stable API:
// benchdiff compares them across commits, so renaming one is a schema
// change (docs/BENCHMARKING.md lists them all).

func shiftOps(o benchjson.Ops, prefix string, st shift.Stats) {
	o[prefix+".passes"] = int64(st.Passes)
	o[prefix+".subcellVisits"] = int64(st.SubcellVisits)
	o[prefix+".moves"] = int64(st.Moves)
	o[prefix+".sortedCells"] = int64(st.SortedCells)
	o[prefix+".sortOps"] = int64(st.SortOps)
}

func fopOps(o benchjson.Ops, st fop.Stats) {
	o["fop.candidateRows"] = int64(st.CandidateRows)
	o["fop.insertionPoints"] = int64(st.InsertionPoints)
	o["fop.chainCells"] = int64(st.ChainCells)
	shiftOps(o, "fop.shift", st.Shift)
	o["fop.curve.rawBps"] = int64(st.Curve.RawBps)
	o["fop.curve.mergedBps"] = int64(st.Curve.MergedBps)
	o["fop.curve.sortOps"] = int64(st.Curve.SortOps)
	o["fop.curve.traversal"] = int64(st.Curve.Traversal)
}

// mglOps flattens the shared MGL-flow counters (the FLEX engine embeds the
// same Stats).
func mglOps(st mgl.Stats) benchjson.Ops {
	o := benchjson.Ops{}
	o["premove.cells"] = st.PreMoveCells
	o["order.ops"] = st.OrderOps
	o["region.builds"] = st.RegionBuilds
	o["region.cands"] = st.RegionCands
	o["region.rows"] = st.RegionRows
	fopOps(o, st.FOP)
	shiftOps(o, "commit", st.Commit)
	o["commit.cells"] = st.CommitCells
	o["placed"] = st.Placed
	o["expansions"] = st.Expansions
	o["fallbacks"] = st.Fallbacks
	o["failed"] = st.Failed
	return o
}

func flexOps(res *core.Result) benchjson.Ops {
	o := mglOps(res.Stats)
	o["fpga.cycles"] = int64(res.FPGACycles)
	o["fpga.regions"] = int64(res.Regions)
	o["fpga.preloadedRegions"] = int64(res.PreloadedRegions)
	return o
}

func flexBreakdown(res *core.Result) *benchjson.Breakdown {
	return &benchjson.Breakdown{
		FPGASeconds:      res.FPGASeconds,
		CPUSerialSeconds: res.CPUSerialSeconds,
		CPUSteadySeconds: res.CPUSteadySeconds,
		TransferSeconds:  res.TransferSeconds,
	}
}

func gpuOps(res *gpu.Result) benchjson.Ops {
	o := benchjson.Ops{}
	fopOps(o, res.MGLStats.FOP)
	shiftOps(o, "commit", res.MGLStats.Commit)
	o["placed"] = res.MGLStats.Placed
	o["failed"] = res.MGLStats.Failed
	o["gpu.rounds"] = res.GPU.Rounds
	o["gpu.maxBatch"] = int64(res.GPU.MaxBatch)
	o["gpu.batchSum"] = res.GPU.BatchSum
	o["gpu.toughCells"] = res.GPU.ToughCells
	o["gpu.deferred"] = res.GPU.Deferred
	return o
}

func analyticalOps(res *analytical.Result) benchjson.Ops {
	o := benchjson.Ops{}
	o["iterations"] = int64(res.Stats.Iterations)
	o["rowSolves"] = res.Stats.RowSolves
	o["subcellItems"] = res.Stats.SubcellItems
	o["rebalanced"] = res.Stats.Rebalanced
	o["repaired"] = res.Stats.Repaired
	o["failed"] = int64(res.Failed)
	return o
}
