package experiments

import (
	"context"
	"fmt"

	"github.com/flex-eda/flex/internal/batch"
	"github.com/flex-eda/flex/internal/core"
	"github.com/flex-eda/flex/internal/fpga"
	"github.com/flex-eda/flex/internal/gen"
	"github.com/flex-eda/flex/internal/gpu"
	"github.com/flex-eda/flex/internal/mgl"
	"github.com/flex-eda/flex/internal/model"
	"github.com/flex-eda/flex/internal/perf"
	"github.com/flex-eda/flex/internal/report"
)

// ThreadPoint is one bar of Fig. 2(a): multi-threaded CPU scaling.
type ThreadPoint struct {
	Threads int
	Seconds float64
	Speedup float64 // vs 1 thread
}

// fig2aThreads are the thread counts of the paper's Fig. 2(a) sweep.
var fig2aThreads = []int{1, 2, 4, 8, 10}

// Fig2a measures the multi-threaded CPU baseline at 1/2/4/8/10 threads on
// the first selected design (saturation behaviour, Fig. 2(a)). The layout is
// generated once and shared: engines legalize clones, so one thread-count
// job per pool worker can run concurrently.
func Fig2a(opt Options) ([]ThreadPoint, error) {
	opt = opt.withDefaults()
	suite := opt.suite()
	if len(suite) == 0 {
		return nil, fmt.Errorf("fig2a: empty suite")
	}
	l, err := opt.generate(suite[0], opt.Scale)
	if err != nil {
		return nil, err
	}
	jobs := make([]batch.Job[float64], len(fig2aThreads))
	for i, th := range fig2aThreads {
		jobs[i] = func(context.Context) (float64, error) {
			res := mgl.Legalize(l, mgl.Config{Threads: th})
			if th == 1 {
				return perf.DefaultCPU.Seconds(res.Stats.WorkSerial), nil
			}
			return perf.DefaultCPU.ParallelSeconds(res.Stats.WorkSerial,
				res.Stats.WorkCritical, int(res.Stats.Batches), th), nil
		}
	}
	secs, err := run(opt, jobs)
	if err != nil {
		return nil, err
	}
	base := secs[0]
	out := make([]ThreadPoint, len(fig2aThreads))
	for i, th := range fig2aThreads {
		out[i] = ThreadPoint{Threads: th, Seconds: secs[i], Speedup: base / secs[i]}
	}
	return out, nil
}

// RenderFig2a renders the thread-scaling series.
func RenderFig2a(pts []ThreadPoint) *report.Series {
	s := report.NewSeries("Fig. 2(a): multi-threaded CPU legalization speedup vs threads")
	for _, p := range pts {
		s.Add(fmt.Sprintf("%dT", p.Threads), p.Speedup)
	}
	return s
}

// SyncPoint is one bar of Fig. 2(b): GPU sync share on superblue designs.
type SyncPoint struct {
	Name      string
	SyncShare float64
}

// Fig2b measures the CPU-GPU baseline's synchronization share on the
// superblue-scale designs.
func Fig2b(opt Options) ([]SyncPoint, error) {
	opt = opt.withDefaults()
	// Superblue designs are huge; scale them harder.
	return perSpec(opt, gen.Superblue(), opt.Scale/4, func(spec gen.Spec, l *model.Layout) (SyncPoint, error) {
		res := gpu.Legalize(l, gpu.Config{})
		return SyncPoint{Name: spec.Name, SyncShare: res.GPU.SyncShare(res.TotalSeconds)}, nil
	})
}

// RenderFig2b renders the sync-share series.
func RenderFig2b(pts []SyncPoint) *report.Series {
	s := report.NewSeries("Fig. 2(b): GPU legalizer data synchronization share of runtime")
	for _, p := range pts {
		s.Add(p.Name, p.SyncShare)
	}
	return s
}

// ParallelismPoint is one row of Fig. 2(c): achievable region-level
// parallelism vs the device's CUDA cores.
type ParallelismPoint struct {
	Name      string
	MaxBatch  int
	AvgBatch  float64
	CUDACores int
}

// Fig2c measures the maximum kernel batch size of the CPU-GPU baseline.
func Fig2c(opt Options) ([]ParallelismPoint, error) {
	opt = opt.withDefaults()
	return perSpec(opt, gen.Superblue(), opt.Scale/4, func(spec gen.Spec, l *model.Layout) (ParallelismPoint, error) {
		res := gpu.Legalize(l, gpu.Config{BatchMax: 4096, Lookahead: 8192})
		avg := 0.0
		if res.GPU.Rounds > 0 {
			avg = float64(res.GPU.BatchSum) / float64(res.GPU.Rounds)
		}
		return ParallelismPoint{
			Name: spec.Name, MaxBatch: res.GPU.MaxBatch, AvgBatch: avg,
			CUDACores: gpu.GTX1660Ti.CUDACores,
		}, nil
	})
}

// RenderFig2c renders the parallelism table.
func RenderFig2c(pts []ParallelismPoint) *report.Table {
	t := report.NewTable("Fig. 2(c): max parallel regions vs CUDA cores",
		"Design", "MaxBatch", "AvgBatch", "CUDA cores")
	for _, p := range pts {
		t.Add(p.Name, fmt.Sprint(p.MaxBatch), report.F(p.AvgBatch, 1), fmt.Sprint(p.CUDACores))
	}
	return t
}

// ShiftSharePoint is one bar of Fig. 2(g): cell shifting's share of FOP.
type ShiftSharePoint struct {
	Name       string
	ShiftShare float64
}

// Fig2g measures the fraction of FOP work spent in cell shifting on the
// software (CPU) implementation.
func Fig2g(opt Options) ([]ShiftSharePoint, error) {
	opt = opt.withDefaults()
	w := perf.DefaultWeights
	return perSpec(opt, opt.suite(), opt.Scale, func(spec gen.Spec, l *model.Layout) (ShiftSharePoint, error) {
		res := mgl.Legalize(l, mgl.Config{})
		shift := w.ShiftWork(res.Stats.FOP.Shift)
		curve := w.CurveWork(res.Stats.FOP.Curve)
		return ShiftSharePoint{Name: spec.Name, ShiftShare: shift / (shift + curve)}, nil
	})
}

// RenderFig2g renders the shift-share series.
func RenderFig2g(pts []ShiftSharePoint) *report.Series {
	s := report.NewSeries("Fig. 2(g): cell shifting share of FOP runtime (CPU)")
	for _, p := range pts {
		s.Add(p.Name, p.ShiftShare)
	}
	return s
}

// SortOverheadPoint is one row of Fig. 6(g): SACS pre-sort overhead and the
// pass-count comparison of the two shifting algorithms.
type SortOverheadPoint struct {
	Name          string
	SortShare     float64 // ahead-sorter cycles / total FOP cycles
	OrigPassesAvg float64 // original algorithm passes per insertion point
	SACSPassesAvg float64 // always 2 (one per phase)
}

// Fig6g measures pre-sort overhead on the FPGA model and the pass structure
// of both shifting algorithms.
func Fig6g(opt Options) ([]SortOverheadPoint, error) {
	opt = opt.withDefaults()
	return perSpec(opt, opt.suite(), opt.Scale, func(spec gen.Spec, l *model.Layout) (SortOverheadPoint, error) {
		traces, res := traceDesign(l, true)
		var sortCycles, total float64
		for _, tr := range traces {
			sortCycles += fpga.SortStreamCycles(tr)
			total += fpga.DefaultPE.RegionCycles(tr)
		}
		points := res.Stats.FOP.InsertionPoints
		origPasses := 0.0
		if points > 0 {
			origPasses = float64(res.Stats.FOP.OriginalShift.Passes) / float64(points)
		}
		return SortOverheadPoint{
			Name:          spec.Name,
			SortShare:     sortCycles / total,
			OrigPassesAvg: origPasses,
			SACSPassesAvg: 2,
		}, nil
	})
}

// RenderFig6g renders the sort-overhead table.
func RenderFig6g(pts []SortOverheadPoint) *report.Table {
	t := report.NewTable("Fig. 6(g): SACS pre-sort overhead and loop structure",
		"Design", "Sort share", "Orig passes/pt", "SACS passes/pt")
	for _, p := range pts {
		t.Add(p.Name, report.Pct(p.SortShare), report.F(p.OrigPassesAvg, 2), report.F(p.SACSPassesAvg, 0))
	}
	return t
}

// LadderPoint is one group of Fig. 8: normalized speedup of the FPGA
// optimization ladder.
type LadderPoint struct {
	Name   string
	Normal float64 // always 1.0
	SACS   float64 // + sort-ahead cell shifting
	MG     float64 // + multi-granularity pipeline (non-parallel)
	TwoPE  float64 // + 2-parallel FOP PEs
}

// Fig8 prices one trace set under the four accelerator configurations.
func Fig8(opt Options) ([]LadderPoint, error) {
	opt = opt.withDefaults()
	configs := []fpga.PEConfig{
		{Pipeline: fpga.NormalPipeline, SACS: fpga.ShiftOriginal, NumPE: 1},
		{Pipeline: fpga.NormalPipeline, SACS: fpga.SACSParal, NumPE: 1},
		{Pipeline: fpga.MultiGranularity, SACS: fpga.SACSParal, NumPE: 1},
		{Pipeline: fpga.MultiGranularity, SACS: fpga.SACSParal, NumPE: 2},
	}
	return perSpec(opt, opt.suite(), opt.Scale, func(spec gen.Spec, l *model.Layout) (LadderPoint, error) {
		traces, _ := traceDesign(l, opt.MeasureOriginal)
		base := sumCycles(configs[0], traces)
		p := LadderPoint{Name: spec.Name, Normal: 1}
		p.SACS = base / sumCycles(configs[1], traces)
		p.MG = base / sumCycles(configs[2], traces)
		p.TwoPE = base / sumCycles(configs[3], traces)
		return p, nil
	})
}

// RenderFig8 renders the pipeline ladder.
func RenderFig8(pts []LadderPoint) *report.Table {
	t := report.NewTable("Fig. 8: normalized speedup by FPGA optimization step",
		"Design", "Normal-Pipeline", "+SACS", "+Multi-Granularity", "+2 FOP PEs")
	for _, p := range pts {
		t.Add(p.Name, report.F(p.Normal, 2), report.F(p.SACS, 2), report.F(p.MG, 2), report.F(p.TwoPE, 2))
	}
	return t
}

// SACSLadderPoint is one group of Fig. 9: the SACS optimization ladder on
// the shifting stage, plus the tall-cell share that explains the ImpBW gain.
type SACSLadderPoint struct {
	Name     string
	Base     float64 // always 1.0
	Arch     float64 // + pipelined architecture
	ImpBW    float64 // + bandwidth optimizations
	Paral    float64 // + parallel left/right phases
	TallFrac float64 // share of cells taller than three rows
}

// Fig9 prices the shifting stage of one trace set under the SACS ladder.
func Fig9(opt Options) ([]SACSLadderPoint, error) {
	opt = opt.withDefaults()
	levels := []fpga.SACSLevel{fpga.SACSBase, fpga.SACSArch, fpga.SACSImpBW, fpga.SACSParal}
	return perSpec(opt, opt.suite(), opt.Scale, func(spec gen.Spec, l *model.Layout) (SACSLadderPoint, error) {
		traces, _ := traceDesign(l, false)
		cycles := make([]float64, len(levels))
		for i, lvl := range levels {
			cfg := fpga.PEConfig{Pipeline: fpga.NormalPipeline, SACS: lvl, NumPE: 1}
			for _, tr := range traces {
				cycles[i] += cfg.ShiftCycles(tr)
			}
		}
		return SACSLadderPoint{
			Name: spec.Name, Base: 1,
			Arch:     cycles[0] / cycles[1],
			ImpBW:    cycles[0] / cycles[2],
			Paral:    cycles[0] / cycles[3],
			TallFrac: spec.TallFraction(),
		}, nil
	})
}

// RenderFig9 renders the SACS ladder.
func RenderFig9(pts []SACSLadderPoint) *report.Table {
	t := report.NewTable("Fig. 9: normalized speedup of SACS optimization steps (shift stage)",
		"Design", "SACS", "SACS-Ar", "SACS-ImpBW", "SACS-Paral", ">3-row cells")
	for _, p := range pts {
		t.Add(p.Name, report.F(p.Base, 2), report.F(p.Arch, 2), report.F(p.ImpBW, 2),
			report.F(p.Paral, 2), report.Pct(p.TallFrac))
	}
	return t
}

// AssignPoint is one bar of Fig. 10: task-assignment strategy comparison.
type AssignPoint struct {
	Name  string
	Ratio float64 // time(d+e on FPGA) / time(d on FPGA): >1 favours the paper's choice
}

// Fig10 compares the two task assignments end to end, fanning one job per
// (design × assignment) pair over lazily shared per-design layouts.
func Fig10(opt Options) ([]AssignPoint, error) {
	opt = opt.withDefaults()
	suite := opt.suite()
	layouts := lazyLayouts(opt, suite, opt.Scale)
	assignments := []core.TaskAssignment{core.FOPOnFPGA, core.FOPAndInsertOnFPGA}
	jobs := make([]batch.Job[float64], 0, len(suite)*len(assignments))
	for _, layout := range layouts {
		for _, a := range assignments {
			layout, a := layout, a
			jobs = append(jobs, func(ctx context.Context) (float64, error) {
				l, err := layout()
				if err != nil {
					return 0, err
				}
				// Both assignments run the FLEX engine and occupy the board.
				return runOnDevice(ctx, func() (float64, error) {
					return core.Legalize(l, core.Config{Assignment: a}).TotalSeconds, nil
				})
			})
		}
	}
	secs, err := run(opt, jobs)
	if err != nil {
		return nil, err
	}
	out := make([]AssignPoint, len(suite))
	for i, spec := range suite {
		dOnly, dAndE := secs[i*2], secs[i*2+1]
		out[i] = AssignPoint{Name: spec.Name, Ratio: dAndE / dOnly}
	}
	return out, nil
}

// RenderFig10 renders the task-assignment series.
func RenderFig10(pts []AssignPoint) *report.Series {
	s := report.NewSeries("Fig. 10: speedup of assigning only step (d) to the FPGA vs (d)+(e)")
	for _, p := range pts {
		s.Add(p.Name, p.Ratio)
	}
	return s
}
