package experiments

import (
	"strings"
	"testing"
)

// shardedTiny drives two contrasting designs through the sharded runner at
// test scale.
var shardedTiny = Options{
	Scale:   0.008,
	Designs: []string{"fft_a_md2", "pci_b_a_md2"},
}

func TestShardedRunsStitchLegal(t *testing.T) {
	pts, err := Sharded(shardedTiny, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for _, p := range pts {
		if !p.Legal {
			t.Errorf("%s: sharded run not legal", p.Name)
		}
		if p.Bands < 1 || p.Bands > 3 {
			t.Errorf("%s: %d bands, want 1..3", p.Name, p.Bands)
		}
		if len(p.BandCells) != p.Bands || len(p.BandWall) != p.Bands || len(p.BandWait) != p.Bands {
			t.Errorf("%s: per-band slices don't match band count", p.Name)
		}
		total := 0
		for _, n := range p.BandCells {
			total += n
		}
		if total != p.Cells {
			t.Errorf("%s: band cells sum to %d, want %d", p.Name, total, p.Cells)
		}
		if p.ModeledMax <= 0 || p.ModeledSum < p.ModeledMax {
			t.Errorf("%s: modeled times inconsistent: max %v sum %v", p.Name, p.ModeledMax, p.ModeledSum)
		}
		if p.AveDis <= 0 {
			t.Errorf("%s: AveDis %v", p.Name, p.AveDis)
		}
	}
}

// TestShardedDeterministicAcrossWorkers: the rendered table is the
// determinism currency of the CI cmp gate — any workers × fpgas schedule
// must produce identical bytes for a fixed shard count.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers, fpgas int) string {
		o := shardedTiny
		o.Workers, o.FPGAs = workers, fpgas
		pts, err := Sharded(o, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		RenderSharded(pts).Render(&sb)
		return sb.String()
	}
	want := render(1, 1)
	for _, cfg := range [][2]int{{4, 1}, {4, 2}, {2, -1}} {
		if got := render(cfg[0], cfg[1]); got != want {
			t.Fatalf("workers=%d fpgas=%d: sharded table differs\nwant:\n%s\ngot:\n%s",
				cfg[0], cfg[1], want, got)
		}
	}
}

// TestShardedResolvesSuperblueByName: the paper-scale designs are reachable
// through the explicit design filter (never by default).
func TestShardedResolvesSuperblueByName(t *testing.T) {
	o := Options{Scale: 0.001, Designs: []string{"superblue19"}}
	pts, err := Sharded(o, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Name != "superblue19" {
		t.Fatalf("got %+v, want one superblue19 point", pts)
	}
	if !pts[0].Legal {
		t.Errorf("superblue19 sharded run not legal")
	}
	if def := (Options{Scale: 0.001}).suite(); len(def) != 16 {
		t.Fatalf("default suite has %d designs, want 16 (superblue must stay opt-in)", len(def))
	}
}

func TestShardedRejectsBadShardCount(t *testing.T) {
	if _, err := Sharded(shardedTiny, 0, 2); err == nil {
		t.Fatal("Sharded accepted 0 shards")
	}
}
