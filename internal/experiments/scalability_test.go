package experiments

import (
	"strings"
	"testing"
)

func TestScalabilityMonotoneAndBRAMBound(t *testing.T) {
	pts, err := Scalability(Options{Scale: 0.008, Designs: []string{"fft_a_md2"}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d, want 5", len(pts))
	}
	prev := 0.0
	for _, p := range pts {
		if p.Speedup < prev {
			t.Fatalf("speedup not monotone at %d PEs: %v < %v", p.NumPE, p.Speedup, prev)
		}
		prev = p.Speedup
	}
	if pts[0].Speedup != 1 {
		t.Fatalf("1-PE speedup %v, want 1", pts[0].Speedup)
	}
	// Two PEs land in the paper's near-linear band.
	if pts[1].Speedup < 1.4 || pts[1].Speedup > 2.0 {
		t.Fatalf("2-PE speedup %v outside [1.4, 2.0]", pts[1].Speedup)
	}
	// Diminishing returns: 5 PEs give less than 5x.
	if pts[4].Speedup >= 5 {
		t.Fatalf("5-PE speedup %v superlinear", pts[4].Speedup)
	}
	// Somewhere in the sweep the BRAM budget must run out (Sec. 5.4),
	// while the URAM remap keeps fitting longer at a lower clock.
	exhausted := false
	for _, p := range pts {
		if !p.FitsU50 {
			exhausted = true
			if !p.FitsURAM {
				continue
			}
			// URAM rescues the config but pays the clock penalty.
			if p.URAMSpeedup >= p.Speedup {
				t.Fatalf("%d PEs: URAM clock penalty missing: %v vs %v",
					p.NumPE, p.URAMSpeedup, p.Speedup)
			}
		}
	}
	if !exhausted {
		t.Fatal("BRAM budget never exhausted in the sweep; extend maxPE")
	}
	out := RenderScalability(pts).String()
	if !strings.Contains(out, "Fits U50") {
		t.Fatal("render missing header")
	}
}

func TestOrderingAblation(t *testing.T) {
	pts, err := OrderingAblation(Options{Scale: 0.01, Designs: []string{"fft_2_md2", "pci_b_a_md2"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.PlainAveDis <= 0 || p.SWAveDis <= 0 {
			t.Fatalf("%s: missing quality values: %+v", p.Name, p)
		}
		// On designs this small the ordering delta is noisy; it must stay
		// bounded, not necessarily positive (the paper's ~1% average gain
		// only emerges at full scale).
		if p.GainPct < -35 || p.GainPct > 35 {
			t.Fatalf("%s: implausible ordering gain %v%%", p.Name, p.GainPct)
		}
	}
	_ = RenderOrdering(pts).String()
}
