package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/flex-eda/flex/internal/batch"
	"github.com/flex-eda/flex/internal/benchjson"
	"github.com/flex-eda/flex/internal/core"
	"github.com/flex-eda/flex/internal/model"
	"github.com/flex-eda/flex/internal/report"
	"github.com/flex-eda/flex/internal/shard"
)

// ShardedPoint is one design's row-band sharded legalization run (the
// "Sharded full-scale runs" extension; see docs/ARCHITECTURE.md): the
// design is split into Bands horizontal row bands, each band legalized by
// the FLEX engine as an independent pool job, and the bands stitched back
// into one whole-die layout whose quality is measured against the original
// global placement.
type ShardedPoint struct {
	Name  string
	Cells int // movable cells
	Rows  int // die height in rows
	Bands int // effective band count (the plan may clamp the request)
	Halo  int
	Legal bool // the stitched whole-die layout checks clean
	// AveDis/MaxDis are measured on the stitched layout against the
	// original global placement — boundary clamping included, so sharded
	// quality is comparable to an unsharded run of the same design.
	AveDis float64
	MaxDis float64
	// ModeledMax is the slowest band's modeled engine seconds — the modeled
	// wall of a fully parallel sharded run; ModeledSum is the summed band
	// time, the serial cost the sharding amortizes. Their ratio is the
	// modeled shard parallelism.
	ModeledMax float64
	ModeledSum float64
	// Per-band observations, band order. BandCells counts each band's
	// movable cells (deterministic); BandWall and BandWait are the bands'
	// wall clocks and modeled-board queue times (scheduling-dependent —
	// stderr material, never rendered into the table).
	BandCells []int
	BandWall  []time.Duration
	BandWait  []time.Duration
	// Ops sums the FLEX engine's deterministic op counts across the bands
	// — the benchjson trajectory record for the sharded configuration.
	Ops benchjson.Ops
}

// Sharded runs the row-band sharding path over the (filtered, scaled)
// suite: per design, plan/split into shards bands with the given halo, fan
// one FLEX-engine job per band through the worker pool (each band holds a
// modeled board for its engine phase), stitch, and measure the whole-die
// result. Designs run one after another so only one design's bands are
// resident at a time — the memory shape that lets paper-scale superblue
// runs fit. Superblue designs join the suite by explicit Options.Designs
// name.
func Sharded(opt Options, shards, halo int) ([]ShardedPoint, error) {
	opt = opt.withDefaults()
	if shards < 1 {
		return nil, fmt.Errorf("sharded: shard count must be >= 1, got %d", shards)
	}
	if halo < 0 {
		halo = 0
	}
	suite := opt.suite()
	if len(suite) == 0 {
		return nil, fmt.Errorf("sharded: empty suite")
	}
	pool := opt.Pool
	if pool == nil {
		pool = batch.NewPool(batch.PoolConfig{Workers: opt.Workers, FPGAs: opt.FPGAs})
		defer pool.Close()
	}
	out := make([]ShardedPoint, 0, len(suite))
	for _, spec := range suite {
		l, err := opt.generate(spec, opt.Scale)
		if err != nil {
			return nil, err
		}
		plan, err := shard.PlanBands(l, shards, halo)
		if err != nil {
			return nil, fmt.Errorf("sharded %s: %w", spec.Name, err)
		}
		bands, err := shard.Split(l, plan)
		if err != nil {
			return nil, fmt.Errorf("sharded %s: %w", spec.Name, err)
		}
		type bandRun struct {
			layout  *model.Layout
			seconds float64
			legal   bool
			ops     benchjson.Ops
		}
		jobs := make([]batch.Job[bandRun], len(bands))
		for b := range bands {
			band := bands[b]
			jobs[b] = func(ctx context.Context) (bandRun, error) {
				// Every band streams through the shared board like any
				// other FLEX-engine job.
				return runOnDevice(ctx, func() (bandRun, error) {
					r := core.Legalize(band, core.Config{MeasureOriginalShift: opt.MeasureOriginal})
					return bandRun{layout: r.Layout, seconds: r.TotalSeconds, legal: r.Legal, ops: flexOps(r)}, nil
				})
			}
		}
		results, st, err := batch.RunOn(context.Background(), pool, jobs, true, nil)
		if opt.Stats != nil {
			opt.Stats.Add(st)
		}
		if err != nil {
			return nil, fmt.Errorf("sharded %s: %w", spec.Name, err)
		}
		pt := ShardedPoint{
			Name:  spec.Name,
			Cells: len(l.MovableIDs()),
			Rows:  l.NumRows,
			Bands: len(bands),
			Halo:  halo,
			Legal: true,
			Ops:   benchjson.Ops{},
		}
		legalized := make([]*model.Layout, len(bands))
		for b, r := range results {
			if r.Err != nil {
				return nil, fmt.Errorf("sharded %s band %d: %w", spec.Name, b, r.Err)
			}
			run := r.Value
			legalized[b] = run.layout
			if !run.legal {
				pt.Legal = false
			}
			pt.ModeledSum += run.seconds
			if run.seconds > pt.ModeledMax {
				pt.ModeledMax = run.seconds
			}
			pt.BandCells = append(pt.BandCells, plan.Bands[b].Movable)
			pt.BandWall = append(pt.BandWall, r.Wall)
			pt.BandWait = append(pt.BandWait, r.DeviceWait)
			pt.Ops.Add(run.ops)
		}
		stitched, err := shard.Stitch(l, plan, legalized)
		if err != nil {
			return nil, fmt.Errorf("sharded %s: %w", spec.Name, err)
		}
		if len(stitched.Check(1)) > 0 {
			pt.Legal = false
		}
		m := model.Measure(stitched)
		pt.AveDis, pt.MaxDis = m.AveDis, m.MaxDis
		if opt.Bench != nil {
			// ModeledSum is the record's time: the serial cost of all
			// bands, the quantity the op counts price. ModeledMax (the
			// parallel wall) is recoverable from per-run stderr.
			opt.Bench.Add(benchjson.Record{
				Design: pt.Name, Engine: "flex",
				Config: fmt.Sprintf("bands=%d halo=%d", pt.Bands, pt.Halo),
				Cells:  pt.Cells, Legal: pt.Legal,
				AveDis: pt.AveDis, MaxDis: pt.MaxDis,
				ModeledSeconds: pt.ModeledSum, Ops: pt.Ops,
			})
		}
		out = append(out, pt)
	}
	return out, nil
}

// RenderSharded renders the sharded runs. Only deterministic columns go to
// the table — per-band walls and waits are scheduling observations and stay
// on stderr.
func RenderSharded(pts []ShardedPoint) *report.Table {
	t := report.NewTable("Sharded full-scale runs: row-band decomposition, FLEX engine per band",
		"Design", "Cells", "Rows", "Bands", "Halo", "Legal",
		"AveDis", "MaxDis", "T_par(s)", "T_sum(s)", "Par")
	for _, p := range pts {
		par := 0.0
		if p.ModeledMax > 0 {
			par = p.ModeledSum / p.ModeledMax
		}
		t.Add(p.Name, fmt.Sprint(p.Cells), fmt.Sprint(p.Rows),
			fmt.Sprint(p.Bands), fmt.Sprint(p.Halo), fmt.Sprint(p.Legal),
			report.F(p.AveDis, 3), report.F(p.MaxDis, 3),
			report.Secs(p.ModeledMax), report.Secs(p.ModeledSum), report.X(par))
	}
	return t
}
