package experiments

import (
	"context"
	"fmt"

	"github.com/flex-eda/flex/internal/batch"
	"github.com/flex-eda/flex/internal/core"
	"github.com/flex-eda/flex/internal/fpga"
	"github.com/flex-eda/flex/internal/model"
	"github.com/flex-eda/flex/internal/report"
)

// legalizeFlexOrdering runs FLEX with the given sliding-window length and
// returns the resulting AveDis.
func legalizeFlexOrdering(l *model.Layout, window int) float64 {
	res := core.Legalize(l, core.Config{SlidingWindow: window})
	return res.Metrics.AveDis
}

// ScalabilityPoint is one row of the Sec. 5.4 extension experiment: FPGA
// FOP speedup and resource footprint as the FOP PE count grows beyond the
// paper's two.
type ScalabilityPoint struct {
	NumPE     int
	Speedup   float64 // FOP time vs 1 PE at the BRAM-mapped clock
	Resources fpga.Resources
	FitsU50   bool // within the BRAM budget
	// URAM remap (Sec. 5.4): whether the config fits with per-PE tables in
	// UltraRAM, and the speedup at the de-rated URAM clock.
	FitsURAM    bool
	URAMSpeedup float64
}

// Scalability prices one design's trace set under growing PE counts —
// the paper's "speedup can be further improved by increasing the number of
// FOP PEs while BRAM may become a resource bound" projection. The trace is
// captured once; one pricing job per PE count then fans across the pool.
func Scalability(opt Options, maxPE int) ([]ScalabilityPoint, error) {
	opt = opt.withDefaults()
	if maxPE < 2 {
		maxPE = 4
	}
	suite := opt.suite()
	if len(suite) == 0 {
		return nil, fmt.Errorf("scalability: empty suite")
	}
	l, err := opt.generate(suite[0], opt.Scale)
	if err != nil {
		return nil, err
	}
	traces, _ := traceDesign(l, false)
	type priced struct {
		seconds     float64
		uramSeconds float64
		resources   fpga.Resources
		fitsURAM    bool
	}
	jobs := make([]batch.Job[priced], maxPE)
	for n := 1; n <= maxPE; n++ {
		n := n
		jobs[n-1] = func(context.Context) (priced, error) {
			cfg := fpga.PEConfig{Pipeline: fpga.MultiGranularity, SACS: fpga.SACSParal, NumPE: n}
			cycles := sumCycles(cfg, traces)
			uramCfg := cfg
			uramCfg.ClockMHz = fpga.URAMClockMHz
			uramRes, urams := fpga.EstimateURAM(n)
			return priced{
				seconds:     cfg.Seconds(cycles),
				uramSeconds: uramCfg.Seconds(cycles),
				resources:   fpga.Estimate(n),
				fitsURAM:    uramRes.FitsIn(fpga.AlveoU50) && urams <= fpga.U50URAMs,
			}, nil
		}
	}
	pricedPts, err := run(opt, jobs)
	if err != nil {
		return nil, err
	}
	base := pricedPts[0].seconds
	out := make([]ScalabilityPoint, maxPE)
	for i, p := range pricedPts {
		out[i] = ScalabilityPoint{
			NumPE:       i + 1,
			Speedup:     base / p.seconds,
			Resources:   p.resources,
			FitsU50:     p.resources.FitsIn(fpga.AlveoU50),
			FitsURAM:    p.fitsURAM,
			URAMSpeedup: base / p.uramSeconds,
		}
	}
	return out, nil
}

// RenderScalability renders the PE sweep.
func RenderScalability(pts []ScalabilityPoint) *report.Table {
	t := report.NewTable("Sec. 5.4 extension: FOP PE scaling (speedup vs 1 PE, resources)",
		"PEs", "Speedup", "LUTs", "BRAMs", "Fits U50", "URAM speedup", "Fits w/ URAM")
	for _, p := range pts {
		t.Add(fmt.Sprint(p.NumPE), report.F(p.Speedup, 2),
			fmt.Sprint(p.Resources.LUTs), fmt.Sprint(p.Resources.BRAMs),
			fmt.Sprint(p.FitsU50),
			report.F(p.URAMSpeedup, 2), fmt.Sprint(p.FitsURAM))
	}
	return t
}

// OrderingPoint is one row of the ordering ablation:
// quality of the sliding-window ordering vs plain size ordering.
type OrderingPoint struct {
	Name        string
	PlainAveDis float64
	SWAveDis    float64
	GainPct     float64 // positive = sliding window better
}

// orderingWindows are the two FLEX configurations the ablation compares:
// size-only ordering (window disabled) vs the paper's 8-target window.
var orderingWindows = []int{-1, 8}

// OrderingAblation compares FLEX's quality with and without the
// density-aware sliding-window ordering (Sec. 3.1.2's ~1% claim), fanning
// one job per (design × ordering) pair over lazily shared per-design
// layouts.
func OrderingAblation(opt Options) ([]OrderingPoint, error) {
	opt = opt.withDefaults()
	suite := opt.suite()
	layouts := lazyLayouts(opt, suite, opt.Scale)
	jobs := make([]batch.Job[float64], 0, len(suite)*len(orderingWindows))
	for _, layout := range layouts {
		for _, w := range orderingWindows {
			layout, w := layout, w
			jobs = append(jobs, func(ctx context.Context) (float64, error) {
				l, err := layout()
				if err != nil {
					return 0, err
				}
				// Every ordering variant runs the FLEX engine on the board.
				return runOnDevice(ctx, func() (float64, error) {
					return legalizeFlexOrdering(l, w), nil
				})
			})
		}
	}
	aveDis, err := run(opt, jobs)
	if err != nil {
		return nil, err
	}
	out := make([]OrderingPoint, len(suite))
	for i, spec := range suite {
		plain, sw := aveDis[i*2], aveDis[i*2+1]
		gain := 0.0
		if plain > 0 {
			gain = (plain - sw) / plain * 100
		}
		out[i] = OrderingPoint{Name: spec.Name, PlainAveDis: plain, SWAveDis: sw, GainPct: gain}
	}
	return out, nil
}

// RenderOrdering renders the ordering ablation.
func RenderOrdering(pts []OrderingPoint) *report.Table {
	t := report.NewTable("Ordering ablation: sliding window (Sec. 3.1.2) vs size-only",
		"Design", "Size-only AveDis", "SlidingWin AveDis", "Gain")
	var sum float64
	for _, p := range pts {
		t.Add(p.Name, report.F(p.PlainAveDis, 4), report.F(p.SWAveDis, 4),
			fmt.Sprintf("%+.2f%%", p.GainPct))
		sum += p.GainPct
	}
	if len(pts) > 0 {
		t.Add("Average", "", "", fmt.Sprintf("%+.2f%%", sum/float64(len(pts))))
	}
	return t
}
