package curve

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/flex-eda/flex/internal/geom"
)

func randomHinges(r *rand.Rand, n int) []Breakpoint {
	bps := make([]Breakpoint, n)
	for i := range bps {
		// Realistic slope range: decomposed push hinges use slopes in
		// [-2, 2]; bases are non-negative displacements.
		bps[i] = Breakpoint{
			X:    r.Intn(200) - 100,
			SL:   r.Intn(5) - 2,
			SR:   r.Intn(5) - 2,
			Base: r.Intn(50),
		}
	}
	return bps
}

// bruteMin scans every integer in [lo, hi] for the true minimum.
func bruteMin(bps []Breakpoint, lo, hi int) (int, int) {
	bestX, bestV := lo, BruteForce(bps, lo)
	for x := lo + 1; x <= hi; x++ {
		if v := BruteForce(bps, x); v < bestV {
			bestV, bestX = v, x
		}
	}
	return bestX, bestV
}

func TestEvalPipelinesMatchBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for iter := 0; iter < 300; iter++ {
		n := 1 + r.Intn(12)
		bps := randomHinges(r, n)
		lo := r.Intn(100) - 120
		hi := lo + r.Intn(200)
		var st Stats
		orig := EvalOriginal(bps, lo, hi, &st)
		strm := EvalStreamed(bps, lo, hi, nil)
		if !orig.Feasible || !strm.Feasible {
			t.Fatalf("iter %d: unexpected infeasible", iter)
		}
		wantX, wantV := bruteMin(bps, lo, hi)
		if orig.BestVal != wantV {
			t.Fatalf("iter %d: EvalOriginal val %d, brute force %d", iter, orig.BestVal, wantV)
		}
		if strm.BestVal != wantV {
			t.Fatalf("iter %d: EvalStreamed val %d, brute force %d", iter, strm.BestVal, wantV)
		}
		// Argmin may differ among equal-value positions only.
		if BruteForce(bps, orig.BestX) != wantV || BruteForce(bps, strm.BestX) != wantV {
			t.Fatalf("iter %d: argmin not optimal", iter)
		}
		if orig.BestX < lo || orig.BestX > hi || strm.BestX < lo || strm.BestX > hi {
			t.Fatalf("iter %d: argmin out of bounds", iter)
		}
		_ = wantX
	}
}

func TestEvalPipelinesAgreeExactly(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for iter := 0; iter < 500; iter++ {
		bps := randomHinges(r, 1+r.Intn(20))
		lo := r.Intn(300) - 150
		hi := lo + r.Intn(250)
		a := EvalOriginal(bps, lo, hi, nil)
		b := EvalStreamed(bps, lo, hi, nil)
		if a != b {
			t.Fatalf("iter %d: original %+v != streamed %+v", iter, a, b)
		}
	}
}

func TestEvalInfeasibleInterval(t *testing.T) {
	bps := []Breakpoint{VHinge(5, 0)}
	if r := EvalOriginal(bps, 10, 9, nil); r.Feasible {
		t.Fatal("EvalOriginal accepted lo > hi")
	}
	if r := EvalStreamed(bps, 10, 9, nil); r.Feasible {
		t.Fatal("EvalStreamed accepted lo > hi")
	}
}

func TestEvalSingleV(t *testing.T) {
	bps := []Breakpoint{VHinge(7, 3)}
	r := EvalStreamed(bps, 0, 20, nil)
	if r.BestX != 7 || r.BestVal != 3 {
		t.Fatalf("got (%d, %d), want (7, 3)", r.BestX, r.BestVal)
	}
	// Clamped on the right: minimum at interval edge.
	r = EvalStreamed(bps, 0, 4, nil)
	if r.BestX != 4 || r.BestVal != 3+3 {
		t.Fatalf("clamped: got (%d, %d), want (4, 6)", r.BestX, r.BestVal)
	}
	// Clamped on the left.
	r = EvalStreamed(bps, 9, 20, nil)
	if r.BestX != 9 || r.BestVal != 3+2 {
		t.Fatalf("clamped: got (%d, %d), want (9, 5)", r.BestX, r.BestVal)
	}
}

// pushOracle evaluates |max(cur, x+off) − g| directly.
func pushOracle(cur, g, thresh, x int) int {
	off := cur - thresh
	np := cur
	if x+off > np {
		np = x + off
	}
	return geom.Abs(np - g)
}

func pushLeftOracle(cur, g, thresh, x int) int {
	off := thresh - cur
	np := cur
	if x-off < np {
		np = x - off
	}
	return geom.Abs(np - g)
}

func TestHingesForPushMatchesOracle(t *testing.T) {
	f := func(cur, g, thresh int8, dx uint8) bool {
		x := int(thresh) + int(dx)%100 - 50
		bps := HingesForPush(int(cur), int(g), int(thresh))
		return BruteForce(bps, x) == pushOracle(int(cur), int(g), int(thresh), x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestHingesForPushLeftMatchesOracle(t *testing.T) {
	f := func(cur, g, thresh int8, dx uint8) bool {
		x := int(thresh) - int(dx)%100 + 50
		bps := HingesForPushLeft(int(cur), int(g), int(thresh))
		return BruteForce(bps, x) == pushLeftOracle(int(cur), int(g), int(thresh), x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestHingeEvalAndVHinge(t *testing.T) {
	b := Breakpoint{X: 10, SL: -1, SR: 2, Base: 5}
	if b.Eval(10) != 5 || b.Eval(7) != 8 || b.Eval(12) != 9 {
		t.Fatal("Breakpoint.Eval wrong")
	}
	v := VHinge(3, 4)
	if v.Eval(3) != 4 || v.Eval(0) != 7 || v.Eval(8) != 9 {
		t.Fatal("VHinge wrong")
	}
}

func TestStatsAccounting(t *testing.T) {
	bps := []Breakpoint{VHinge(1, 0), VHinge(1, 0), VHinge(5, 0)}
	var st Stats
	EvalOriginal(bps, 0, 10, &st)
	// 3 hinges + 2 sentinels = 5 raw; positions {0,1,5,10} = 4 merged.
	if st.RawBps != 5 {
		t.Fatalf("RawBps = %d, want 5", st.RawBps)
	}
	if st.MergedBps != 4 {
		t.Fatalf("MergedBps = %d, want 4", st.MergedBps)
	}
	if st.SortOps == 0 || st.Traversal == 0 {
		t.Fatal("sort/traversal work not counted")
	}
}

func TestSumBase(t *testing.T) {
	bps := []Breakpoint{{Base: 3}, {Base: 4}, {Base: -2}}
	if SumBase(bps) != 5 {
		t.Fatal("SumBase wrong")
	}
}
