package curve

import (
	"math/rand"
	"testing"
)

// benchHinges builds a deterministic hinge population shaped like the FOP
// emission: one V hinge for the target plus 1–2 push hinges per chained
// cell, positions clustered around the feasible interval.
func benchHinges(n int) ([]Breakpoint, int, int) {
	rng := rand.New(rand.NewSource(42))
	bps := make([]Breakpoint, 0, n)
	bps = append(bps, VHinge(500, 12))
	for len(bps) < n {
		cur := 400 + rng.Intn(200)
		g := cur + rng.Intn(41) - 20
		thresh := cur + rng.Intn(21) - 10
		if rng.Intn(2) == 0 {
			bps = append(bps, HingesForPush(cur, g, thresh)...)
		} else {
			bps = append(bps, HingesForPushLeft(cur, g, thresh)...)
		}
	}
	return bps[:n], 420, 580
}

func benchEval(b *testing.B, n int, eval func([]Breakpoint, int, int, *Stats) Result) {
	bps, lo, hi := benchHinges(n)
	var st Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := eval(bps, lo, hi, &st)
		if !res.Feasible {
			b.Fatal("infeasible")
		}
	}
}

func BenchmarkEvalStreamed64(b *testing.B)  { benchEval(b, 64, EvalStreamed) }
func BenchmarkEvalStreamed256(b *testing.B) { benchEval(b, 256, EvalStreamed) }
func BenchmarkEvalOriginal64(b *testing.B)  { benchEval(b, 64, EvalOriginal) }
func BenchmarkEvalOriginal256(b *testing.B) { benchEval(b, 256, EvalOriginal) }

// The reused-Evaluator variants are what the FOP hot loop actually runs;
// after warm-up they are allocation-free.
func benchEvaluator(b *testing.B, n int) {
	bps, lo, hi := benchHinges(n)
	var e Evaluator
	var st Stats
	e.Streamed(bps, lo, hi, &st)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := e.Streamed(bps, lo, hi, &st); !res.Feasible {
			b.Fatal("infeasible")
		}
	}
}

func BenchmarkEvaluatorStreamed64(b *testing.B)  { benchEvaluator(b, 64) }
func BenchmarkEvaluatorStreamed256(b *testing.B) { benchEvaluator(b, 256) }
