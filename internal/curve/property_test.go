package curve

import (
	"math/rand"
	"testing"
)

// TestSegmentSlopeReconstruction verifies the slope identity the FOP
// pipeline relies on: between adjacent merged breakpoints, the summed
// curve's slope equals (cumulative right slopes left of the segment) +
// (cumulative left slopes right of it).
func TestSegmentSlopeReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for iter := 0; iter < 200; iter++ {
		bps := randomHinges(r, 1+r.Intn(10))
		// Collect distinct sorted positions.
		seen := map[int]bool{}
		for _, b := range bps {
			seen[b.X] = true
		}
		xs := make([]int, 0, len(seen))
		for x := range seen {
			xs = append(xs, x)
		}
		for i := 0; i < len(xs); i++ {
			for j := i + 1; j < len(xs); j++ {
				if xs[j] < xs[i] {
					xs[i], xs[j] = xs[j], xs[i]
				}
			}
		}
		for k := 0; k+1 < len(xs); k++ {
			a, b := xs[k], xs[k+1]
			if b-a < 2 {
				continue
			}
			// Measured slope from two interior points.
			m := BruteForce(bps, a+1) - BruteForce(bps, a)
			// Reconstructed slope from the breakpoint representation.
			sum := 0
			for _, bp := range bps {
				if bp.X <= a {
					sum += bp.SR
				} else {
					sum += bp.SL
				}
			}
			if m != sum {
				t.Fatalf("iter %d: segment (%d,%d): measured slope %d, reconstructed %d",
					iter, a, b, m, sum)
			}
		}
	}
}

// TestEvalTranslationInvariance: shifting every hinge and the interval by a
// constant shifts the argmin by the same constant and keeps the value.
func TestEvalTranslationInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for iter := 0; iter < 200; iter++ {
		bps := randomHinges(r, 1+r.Intn(8))
		lo := -40
		hi := 40
		d := r.Intn(100) - 50
		shifted := make([]Breakpoint, len(bps))
		for i, b := range bps {
			b.X += d
			shifted[i] = b
		}
		a := EvalStreamed(bps, lo, hi, nil)
		b := EvalStreamed(shifted, lo+d, hi+d, nil)
		if a.BestVal != b.BestVal || a.BestX+d != b.BestX {
			t.Fatalf("iter %d: translation broke evaluation: %+v vs %+v (d=%d)", iter, a, b, d)
		}
	}
}

// TestEvalAdditivity: evaluating the union of two hinge sets at a point
// equals the sum of the individual evaluations at that point.
func TestEvalAdditivity(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for iter := 0; iter < 300; iter++ {
		a := randomHinges(r, 1+r.Intn(6))
		b := randomHinges(r, 1+r.Intn(6))
		x := r.Intn(200) - 100
		all := append(append([]Breakpoint{}, a...), b...)
		if BruteForce(all, x) != BruteForce(a, x)+BruteForce(b, x) {
			t.Fatalf("iter %d: additivity broken", iter)
		}
	}
}
