// Package curve implements the displacement-curve machinery of the MGL
// algorithm (Sec. 2.2.3 of the FLEX paper): piecewise-linear per-cell
// displacement curves represented as breakpoints, and the two equivalent
// evaluation pipelines the paper contrasts:
//
//   - EvalOriginal — the original five-operator sequence (sort bp, merge bp,
//     sum slopesR, sum slopesL, calculate value), each operator a separate
//     pass that materializes its intermediate results, exactly like the
//     RAM-coupled "Normal Pipeline" of Fig. 5.
//   - EvalStreamed — the restructured fwdtraverse/bwdtraverse organization
//     (fwdmerge + sum slopesR + calculate vR fused into one forward pass;
//     bwdmerge + sum slopesL + calculate vL and v fused into one backward
//     pass), the multi-granularity-pipeline-friendly dataflow of Fig. 5.
//
// Both produce bit-identical results; the FPGA cycle models in
// internal/fpga charge them differently.
//
// A Breakpoint (X, SL, SR, Base) denotes a single-hinge piecewise-linear
// function: f(x) = Base + SL·(x−X) for x < X and Base + SR·(x−X) for x ≥ X.
// Curves with two turning points (a cell that first catches up with its
// global position and then overshoots) are decomposed into two hinges; the
// summation pipeline is agnostic to the decomposition.
package curve

import (
	"cmp"
	"slices"
)

// Breakpoint is one hinge of a piecewise-linear displacement curve.
type Breakpoint struct {
	X    int // target-cell position at which the slope changes
	SL   int // slope left of X
	SR   int // slope right of X
	Base int // curve value at X
}

// Eval returns the hinge's value at x.
func (b Breakpoint) Eval(x int) int {
	if x < b.X {
		return b.Base + b.SL*(x-b.X)
	}
	return b.Base + b.SR*(x-b.X)
}

// Result is the outcome of evaluating the summed displacement curve over a
// feasible interval [Lo, Hi].
type Result struct {
	BestX    int  // argmin of the summed curve, clamped to [Lo, Hi]
	BestVal  int  // minimum summed displacement
	Feasible bool // false when Lo > Hi
}

// Stats counts the work done by one evaluation, mirroring the operator
// granularity the FPGA cycle models charge for.
type Stats struct {
	RawBps    int // breakpoints entering the sorter
	MergedBps int // breakpoints after merging equal positions
	SortOps   int // comparison-ish units spent sorting
	Traversal int // items touched by the four traversal operators
}

// SumBase returns the sum of all hinge base values (the x-independent part
// of the summed curve).
func SumBase(bps []Breakpoint) int {
	s := 0
	for i := range bps {
		s += bps[i].Base
	}
	return s
}

// BruteForce evaluates the summed curve at x by direct summation. It is the
// test oracle for both pipelines.
func BruteForce(bps []Breakpoint, x int) int {
	v := 0
	for i := range bps {
		v += bps[i].Eval(x)
	}
	return v
}

// merged is one merged breakpoint: accumulated slopes of all hinges at the
// same x.
type merged struct {
	x      int
	sl, sr int
}

// Evaluator runs the two evaluation pipelines while reusing its scratch
// buffers across calls. The FOP inner loop evaluates one curve per
// insertion point; a per-call Evaluator keeps that loop allocation-free.
// The zero value is ready to use. Not safe for concurrent use.
type Evaluator struct {
	xs   []Breakpoint // with-bounds sort scratch
	ms   []merged
	vR   []int // streamed forward partials
	sR   []int // original pipeline: cumulative right slopes
	sL   []int // original pipeline: cumulative left slopes
	vals []int // original pipeline: materialized values
}

// sortAndMerge sorts the hinges by position (with zero-slope sentinels at
// lo and hi so the constrained minimum is attained at a breakpoint) and
// merges equal positions into e.ms. Both pipelines share it; Original
// charges the passes separately on top. The sort is unstable, which is
// output-identical here: equal-position hinges merge by commutative slope
// addition, so their relative order never reaches the traversals.
func (e *Evaluator) sortAndMerge(bps []Breakpoint, lo, hi int, st *Stats) []merged {
	e.xs = append(e.xs[:0], bps...)
	e.xs = append(e.xs, Breakpoint{X: lo}, Breakpoint{X: hi})
	st.RawBps += len(e.xs)
	slices.SortFunc(e.xs, func(a, b Breakpoint) int { return cmp.Compare(a.X, b.X) })
	if n := len(e.xs); n > 1 {
		// n log n comparison units, the cost charged to "sort bp".
		logn := 0
		for v := n; v > 1; v >>= 1 {
			logn++
		}
		st.SortOps += n * logn
	}
	out := e.ms[:0]
	for _, b := range e.xs {
		if len(out) > 0 && out[len(out)-1].x == b.X {
			out[len(out)-1].sl += b.SL
			out[len(out)-1].sr += b.SR
		} else {
			out = append(out, merged{x: b.X, sl: b.SL, sr: b.SR})
		}
	}
	e.ms = out
	st.MergedBps += len(out)
	return out
}

// grow resizes dst to n reusing capacity.
func grow(dst []int, n int) []int {
	if cap(dst) < n {
		return make([]int, n)
	}
	return dst[:n]
}

// Original runs the paper's original five-operator FOP tail: sort bp →
// merge bp → sum slopesR → sum slopesL → calculate value, with each operator
// as a discrete pass over materialized intermediates. The minimum is taken
// over x in [lo, hi].
func (e *Evaluator) Original(bps []Breakpoint, lo, hi int, st *Stats) Result {
	if lo > hi {
		return Result{Feasible: false}
	}
	if st == nil {
		st = &Stats{}
	}
	base := SumBase(bps)
	ms := e.sortAndMerge(bps, lo, hi, st)
	n := len(ms)

	// sum slopesR: forward traversal, cumulative right slopes.
	e.sR = grow(e.sR, n)
	slopesR := e.sR
	acc := 0
	for i := 0; i < n; i++ {
		acc += ms[i].sr
		slopesR[i] = acc
		st.Traversal++
	}
	// sum slopesL: backward traversal, cumulative left slopes.
	e.sL = grow(e.sL, n)
	slopesL := e.sL
	acc = 0
	for i := n - 1; i >= 0; i-- {
		acc += ms[i].sl
		slopesL[i] = acc
		st.Traversal++
	}
	// calculate value: value at the first breakpoint, then walk segments
	// using the slope between adjacent merged breakpoints.
	e.vals = grow(e.vals, n)
	vals := e.vals
	v0 := 0
	for i := 1; i < n; i++ {
		// Hinges right of ms[0] contribute SL·(x0−xi) each; accumulate
		// directly (the software analogue of the slopesL-weighted sum).
		v0 += ms[i].sl * (ms[0].x - ms[i].x)
		st.Traversal++
	}
	vals[0] = v0
	for i := 1; i < n; i++ {
		seg := slopesR[i-1] + slopesL[i]
		vals[i] = vals[i-1] + seg*(ms[i].x-ms[i-1].x)
		st.Traversal++
	}
	res := Result{Feasible: true, BestVal: int(^uint(0) >> 1)}
	for i := 0; i < n; i++ {
		if ms[i].x < lo || ms[i].x > hi {
			continue
		}
		v := base + vals[i]
		if v < res.BestVal || (v == res.BestVal && ms[i].x < res.BestX) {
			res.BestVal = v
			res.BestX = ms[i].x
		}
	}
	return res
}

// Streamed runs the restructured dataflow of Fig. 5: a single forward
// pass (fwdmerge, sum slopesR, calculate vR) followed by a single backward
// pass (bwdmerge, sum slopesL, calculate vL and v). No intermediate arrays
// beyond the merged breakpoints and the forward partials are materialized.
func (e *Evaluator) Streamed(bps []Breakpoint, lo, hi int, st *Stats) Result {
	if lo > hi {
		return Result{Feasible: false}
	}
	if st == nil {
		st = &Stats{}
	}
	base := SumBase(bps)
	ms := e.sortAndMerge(bps, lo, hi, st)
	n := len(ms)

	// fwdtraverse: vR_i = Σ_{j≤i} SR_j·(x_i − x_j), computed incrementally.
	e.vR = grow(e.vR, n)
	vR := e.vR
	cumR := 0
	for i := 0; i < n; i++ {
		if i > 0 {
			vR[i] = vR[i-1] + cumR*(ms[i].x-ms[i-1].x)
		}
		cumR += ms[i].sr
		st.Traversal++
	}
	// bwdtraverse: vL_i = Σ_{j≥i} SL_j·(x_i − x_j) incrementally, fused with
	// the final v_i = base + vR_i + vL_i minimum selection.
	res := Result{Feasible: true, BestVal: int(^uint(0) >> 1)}
	cumL := 0
	vL := 0
	for i := n - 1; i >= 0; i-- {
		if i < n-1 {
			vL += cumL * (ms[i].x - ms[i+1].x)
		}
		cumL += ms[i].sl
		st.Traversal++
		if ms[i].x < lo || ms[i].x > hi {
			continue
		}
		v := base + vR[i] + vL
		if v < res.BestVal || (v == res.BestVal && ms[i].x <= res.BestX) {
			res.BestVal = v
			res.BestX = ms[i].x
		}
	}
	return res
}

// EvalOriginal is Original on a throwaway Evaluator, for callers outside
// the FOP hot loop.
func EvalOriginal(bps []Breakpoint, lo, hi int, st *Stats) Result {
	var e Evaluator
	return e.Original(bps, lo, hi, st)
}

// EvalStreamed is Streamed on a throwaway Evaluator.
func EvalStreamed(bps []Breakpoint, lo, hi int, st *Stats) Result {
	var e Evaluator
	return e.Streamed(bps, lo, hi, st)
}

// HingesForPush returns the 1–2 hinge decomposition for a cell that a
// rightward-moving target pushes right. cur is the cell's current position,
// g its global-placement position, and thresh the target position at which
// the push engages (newpos(x) = max(cur, x + (cur − thresh))).
//
// The mirrored left-push case is obtained by negating coordinates; see
// HingesForPushLeft.
func HingesForPush(cur, g, thresh int) []Breakpoint {
	return AppendHingesForPush(nil, cur, g, thresh)
}

// AppendHingesForPush appends the push-right decomposition to dst and
// returns the extended slice, for hot loops that reuse a hinge buffer.
func AppendHingesForPush(dst []Breakpoint, cur, g, thresh int) []Breakpoint {
	if cur >= g {
		// Monotone hinge: flat at cur−g, then slope +1.
		return append(dst, Breakpoint{X: thresh, SL: 0, SR: 1, Base: cur - g})
	}
	// Flat at g−cur, then slope −1 down to 0 at x = thresh+(g−cur), then +1.
	return append(dst,
		Breakpoint{X: thresh, SL: 0, SR: -1, Base: g - cur},
		Breakpoint{X: thresh + (g - cur), SL: 0, SR: 2, Base: 0},
	)
}

// HingesForPushLeft returns the hinge decomposition for a cell pushed left:
// newpos(x) = min(cur, x − (thresh − cur)) engages for x < thresh.
func HingesForPushLeft(cur, g, thresh int) []Breakpoint {
	return AppendHingesForPushLeft(nil, cur, g, thresh)
}

// AppendHingesForPushLeft appends the push-left decomposition to dst.
func AppendHingesForPushLeft(dst []Breakpoint, cur, g, thresh int) []Breakpoint {
	if cur <= g {
		return append(dst, Breakpoint{X: thresh, SL: -1, SR: 0, Base: g - cur})
	}
	return append(dst,
		Breakpoint{X: thresh, SL: 1, SR: 0, Base: cur - g},
		Breakpoint{X: thresh - (cur - g), SL: -2, SR: 0, Base: 0},
	)
}

// VHinge returns the target cell's own displacement curve: a V centred on
// its preferred position with an x-independent base cost (the vertical
// displacement term).
func VHinge(preferred, base int) Breakpoint {
	return Breakpoint{X: preferred, SL: -1, SR: 1, Base: base}
}
