// Package fleet is the cross-host layer of the legalization service: a
// lean HTTP job protocol between one coordinator and N worker nodes, plus
// the coordinator-side router that spreads band jobs across the fleet.
// It is the multi-process version of what flex.Service's in-process shard
// expansion already does for row bands — SYNERGY-style, one logical
// accelerator program served by many physical backends behind a
// virtualization layer — with worker nodes treated as interchangeable band
// executors (Soft Tiles' flexible tiling, at host granularity).
//
// The protocol has two endpoints on every worker:
//
//	POST /w/v1/job     one serialized band or whole-design job in, one
//	                   JSON result (legalized flexpl layout + modeled
//	                   seconds + device telemetry) streamed back
//	GET  /w/v1/health  liveness: queue depth, device statistics, and the
//	                   draining state (503 once draining has begun)
//
// The package is transport only: jobs carry layouts as opaque flexpl text
// and engines as names, so fleet depends on neither the flex API nor the
// placement model. The coordinator (flex.Service with WithWorkersList) and
// the worker (flex.FleetWorker) supply the Executor that does real work.
//
// Determinism is preserved across the wire: a job's result is a pure
// function of its serialized inputs, so routing — which worker ran a band,
// how often it was retried — moves only wall-clock and statistics, never
// bytes. Round-trip telemetry (band RTTs) is reported as wall time in
// stats only, split from the modeled seconds that travel inside results,
// per the BENCHMARKING.md rules.
package fleet

import (
	"context"
	"errors"
	"time"

	"github.com/flex-eda/flex/internal/obs"
)

// TraceHeader carries the coordinator's trace ID on POST /w/v1/job, so a
// fleet job's spans — recorded on whichever worker ran it — join one
// coherent tree under one ID. Workers log the ID on arrival, which is
// how cross-wire trace continuity is asserted in CI.
const TraceHeader = "X-Flex-Trace"

// Job is one unit of remote work: a serialized band (Layout as flexpl
// text) or a whole-design reference (Design + Scale) the worker generates
// itself — the latter keeps a warm worker's layout cache warm, which is
// why the coordinator routes by cache key. The scheduling class
// (Priority, DeadlineMs, Client) propagates end to end so a worker's
// queue orders one coordinator's urgent bands ahead of another's bulk.
type Job struct {
	// Design and Scale reference a benchmark the worker generates (and
	// memoizes) itself; mutually exclusive with Layout.
	Design string  `json:"design,omitempty"`
	Scale  float64 `json:"scale,omitempty"`
	// Layout is an inline flexpl payload — a row band, or a whole
	// explicit layout.
	Layout string `json:"layout,omitempty"`
	// Engine names the legalizer (flex.ParseEngine's vocabulary).
	Engine string `json:"engine,omitempty"`
	// Engine options, flattened (flex.Options).
	Threads       int  `json:"threads,omitempty"`
	SlidingWindow int  `json:"slidingWindow,omitempty"`
	OnePE         bool `json:"onePE,omitempty"`
	OffloadInsert bool `json:"offloadInsert,omitempty"`
	// Priority, DeadlineMs and Client are the owner's scheduling class.
	// DeadlineMs is the time remaining until the job's absolute deadline
	// at send time — relative on the wire, so worker clocks need not
	// agree with the coordinator's; the worker re-anchors it on arrival.
	Priority   int    `json:"priority,omitempty"`
	DeadlineMs int64  `json:"deadlineMs,omitempty"`
	Client     string `json:"client,omitempty"`
	// Key echoes the routing key the coordinator hashed — observability
	// for worker logs, never semantics.
	Key string `json:"key,omitempty"`
}

// Result is one finished remote job. Everything here except the *Ms
// telemetry fields is a deterministic function of the Job.
type Result struct {
	// Layout is the legalized layout in flexpl text.
	Layout string `json:"layout"`
	// Legal is the engine's own verdict (it can fail a placement the
	// violation check alone would pass).
	Legal bool `json:"legal"`
	// ModeledSeconds is the engine's deterministic modeled runtime.
	ModeledSeconds float64 `json:"modeledSeconds"`
	// SchedWaitMs is the time the job queued for a worker-side pool
	// goroutine; DeviceWaitMs/DeviceHoldMs/DeviceReconfigs are the
	// worker's modeled board telemetry for this job. All wall/stats
	// only — the coordinator folds them into its device accounting.
	SchedWaitMs     float64 `json:"schedWaitMs,omitempty"`
	DeviceWaitMs    float64 `json:"deviceWaitMs,omitempty"`
	DeviceHoldMs    float64 `json:"deviceHoldMs,omitempty"`
	DeviceReconfigs int     `json:"deviceReconfigs,omitempty"`
	// Spans is the worker-side trace subtree for this job, present only
	// when the request carried a TraceHeader. Pure telemetry: the
	// coordinator grafts it into the caller's trace and never lets it
	// near result bytes.
	Spans []*obs.Span `json:"spans,omitempty"`
}

// Health is the GET /w/v1/health body: the worker's load and draining
// state, the signals the coordinator's prober routes around.
type Health struct {
	// Status is "ok" while serving, "draining" once shutdown has begun
	// (the response is then a 503, so plain HTTP probes agree).
	Status string `json:"status"`
	// QueuedJobs is the worker pool's current occupancy (queued +
	// running); Workers its goroutine count.
	QueuedJobs int `json:"queuedJobs"`
	Workers    int `json:"workers"`
	// Device telemetry, cumulative: modeled board wait/hold and
	// acquisition/reconfiguration counts.
	DeviceWaitMs    float64 `json:"deviceWaitMs"`
	DeviceHoldMs    float64 `json:"deviceHoldMs"`
	DeviceAcquires  int     `json:"deviceAcquires"`
	DeviceReconfigs int     `json:"deviceReconfigs"`
	// Version and Revision are the worker binary's build identity
	// (module version and VCS commit), so mixed-version fleets are
	// diagnosable from the coordinator's probes.
	Version  string `json:"version,omitempty"`
	Revision string `json:"revision,omitempty"`
}

// Load is the Executor's live-load snapshot behind Health.
type Load struct {
	// QueuedJobs is current pool occupancy; Workers the pool size.
	QueuedJobs, Workers int
	// DeviceWait/DeviceHold and the counters mirror the pool's modeled
	// board statistics.
	DeviceWait, DeviceHold          time.Duration
	DeviceAcquires, DeviceReconfigs int
}

// Executor runs jobs on behalf of a Worker — the seam between the wire
// protocol and the legalization service (flex.FleetWorker implements it
// over a flex.Service). Execute must honor ctx: the handler derives a
// deadline from Job.DeadlineMs and cancels on client disconnect.
type Executor interface {
	// Execute runs one job to completion. Classify failures with the
	// package sentinels (wrap with %w): ErrInvalidJob for malformed
	// jobs, ErrOverloaded when admission sheds the job,
	// sched.ErrDeadlineExceeded when the job's deadline expired.
	Execute(ctx context.Context, job Job) (*Result, error)
	// Load snapshots the worker's current occupancy for /w/v1/health.
	Load() Load
}

// ErrInvalidJob marks a job the worker cannot parse or validate — a
// client error (HTTP 400) the coordinator must not retry elsewhere.
var ErrInvalidJob = errors.New("fleet: invalid job")

// ErrOverloaded marks a job shed by the worker's admission control
// (HTTP 429): retryable on another node.
var ErrOverloaded = errors.New("fleet: worker overloaded")

// ErrDraining marks a worker that has begun graceful shutdown
// (HTTP 503): retryable on another node, and the prober will stop
// routing to it.
var ErrDraining = errors.New("fleet: worker draining")

// ErrNoWorkers reports a job that ran out of fleet: every configured
// worker was excluded (failed, draining, or dead) before an attempt
// succeeded.
var ErrNoWorkers = errors.New("fleet: no live worker")

// Error codes carried in the wire error envelope (errorBody.Code), so a
// typed failure survives the HTTP hop: the coordinator maps "deadline"
// back to sched.ErrDeadlineExceeded rather than a generic transport error.
const (
	codeInvalid    = "invalid"
	codeOverloaded = "overloaded"
	codeDraining   = "draining"
	codeDeadline   = "deadline"
	codeFailed     = "failed"
)

// errorBody is the JSON error envelope of every non-200 protocol response.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}
