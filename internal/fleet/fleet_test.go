package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/flex-eda/flex/internal/sched"
)

// stubExec is a scriptable Executor for handler tests.
type stubExec struct {
	fn   func(ctx context.Context, job Job) (*Result, error)
	load Load
}

func (s *stubExec) Execute(ctx context.Context, job Job) (*Result, error) { return s.fn(ctx, job) }
func (s *stubExec) Load() Load                                            { return s.load }

func TestRingDeterministicPickAndExclusion(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c"}
	r1 := newRing(nodes)
	r2 := newRing([]string{"http://c", "http://a", "http://b"})
	keys := []string{"fft_a_md2@0.0100", "pci_b_a_md2@0.0200|bands=4|halo=2#band=3", "superblue19@0.5000"}
	for _, k := range keys {
		owner := r1.pick(k, nil)
		if owner == "" {
			t.Fatalf("pick(%q) returned no node", k)
		}
		// Same node set in any order, same owner — and stable on re-ask.
		if got := r2.pick(k, nil); got != owner {
			t.Errorf("pick(%q) order-dependent: %q vs %q", k, owner, got)
		}
		if got := r1.pick(k, nil); got != owner {
			t.Errorf("pick(%q) unstable: %q then %q", k, owner, got)
		}
		// Excluding the owner moves to a deterministic survivor.
		alt := r1.pick(k, map[string]bool{owner: true})
		if alt == "" || alt == owner {
			t.Fatalf("pick(%q) with owner excluded = %q", k, alt)
		}
		if got := r1.pick(k, map[string]bool{owner: true}); got != alt {
			t.Errorf("fallback pick(%q) unstable: %q then %q", k, alt, got)
		}
		// Excluding everyone yields nothing.
		if got := r1.pick(k, map[string]bool{"http://a": true, "http://b": true, "http://c": true}); got != "" {
			t.Errorf("pick(%q) with all excluded = %q, want empty", k, got)
		}
	}
	// Distinct band keys of one design should not all land on one node.
	owners := make(map[string]bool)
	for b := 0; b < 8; b++ {
		owners[r1.pick(fmt.Sprintf("des@0.5|bands=8|halo=2#band=%d", b), nil)] = true
	}
	if len(owners) < 2 {
		t.Errorf("8 band keys all routed to a single node: %v", owners)
	}
}

func TestWorkerHealthAndDraining(t *testing.T) {
	exec := &stubExec{
		fn:   func(context.Context, Job) (*Result, error) { return &Result{Legal: true}, nil },
		load: Load{QueuedJobs: 3, Workers: 4, DeviceWait: 20 * time.Millisecond, DeviceAcquires: 7},
	}
	w := NewWorker(exec)
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/w/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("health = %d %q, want 200 ok", resp.StatusCode, h.Status)
	}
	if h.QueuedJobs != 3 || h.Workers != 4 || h.DeviceWaitMs != 20 || h.DeviceAcquires != 7 {
		t.Errorf("health load = %+v", h)
	}

	w.Drain()
	resp, err = http.Get(srv.URL + "/w/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("draining health = %d %q, want 503 draining", resp.StatusCode, h.Status)
	}
	// Jobs are refused with the draining code once draining.
	st, eb := postJob(t, srv.URL, Job{Engine: "flex"})
	if st != http.StatusServiceUnavailable || eb.Code != codeDraining {
		t.Fatalf("job while draining = %d %+v, want 503 draining", st, eb)
	}
}

func postJob(t *testing.T, base string, job Job) (int, errorBody) {
	t.Helper()
	body, err := json.Marshal(job)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/w/v1/job", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var eb errorBody
	if resp.StatusCode != http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatalf("decode error body: %v", err)
		}
	}
	return resp.StatusCode, eb
}

func TestWorkerJobErrors(t *testing.T) {
	execErr := error(nil)
	w := NewWorker(&stubExec{fn: func(ctx context.Context, job Job) (*Result, error) {
		if execErr != nil {
			return nil, execErr
		}
		return &Result{Layout: "ok", Legal: true}, nil
	}})
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	// Unknown fields are a 400 naming the field, mirroring the front door.
	resp, err := http.Post(srv.URL+"/w/v1/job", "application/json",
		strings.NewReader(`{"engine":"flex","prioritee":9}`))
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || eb.Code != codeInvalid || !strings.Contains(eb.Error, "prioritee") {
		t.Fatalf("unknown field: %d %+v", resp.StatusCode, eb)
	}

	for _, tc := range []struct {
		err  error
		code string
		st   int
	}{
		{fmt.Errorf("parse: %w", ErrInvalidJob), codeInvalid, http.StatusBadRequest},
		{fmt.Errorf("queue full: %w", ErrOverloaded), codeOverloaded, http.StatusTooManyRequests},
		{fmt.Errorf("closing: %w", ErrDraining), codeDraining, http.StatusServiceUnavailable},
		{fmt.Errorf("band 2: %w", sched.ErrDeadlineExceeded), codeDeadline, http.StatusGatewayTimeout},
		{errors.New("engine exploded"), codeFailed, http.StatusInternalServerError},
	} {
		execErr = tc.err
		st, eb := postJob(t, srv.URL, Job{Engine: "flex"})
		if st != tc.st || eb.Code != tc.code {
			t.Errorf("exec err %v: got %d %q, want %d %q", tc.err, st, eb.Code, tc.st, tc.code)
		}
	}
}

func TestWorkerReanchorsDeadline(t *testing.T) {
	// The executor blocks until its context expires: the handler must
	// have derived that context's deadline from DeadlineMs, and the
	// failure must surface as a typed deadline, not a 500.
	w := NewWorker(&stubExec{fn: func(ctx context.Context, job Job) (*Result, error) {
		if _, ok := ctx.Deadline(); !ok {
			return nil, errors.New("no deadline on executor context")
		}
		<-ctx.Done()
		return nil, fmt.Errorf("band expired in queue: %w", sched.ErrDeadlineExceeded)
	}})
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	st, eb := postJob(t, srv.URL, Job{Engine: "flex", DeadlineMs: 20})
	if st != http.StatusGatewayTimeout || eb.Code != codeDeadline {
		t.Fatalf("mid-flight deadline = %d %+v, want 504 deadline", st, eb)
	}

	// Same shape, but the executor reports the raw context error: the
	// handler still classifies it as a deadline because it set one.
	w2 := NewWorker(&stubExec{fn: func(ctx context.Context, job Job) (*Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	srv2 := httptest.NewServer(w2.Handler())
	defer srv2.Close()
	st, eb = postJob(t, srv2.URL, Job{Engine: "flex", DeadlineMs: 20})
	if st != http.StatusGatewayTimeout || eb.Code != codeDeadline {
		t.Fatalf("ctx deadline = %d %+v, want 504 deadline", st, eb)
	}
}

// testWorkerServer boots a worker whose executor echoes the job layout,
// tagging it with the node name so tests can see who served a job.
func testWorkerServer(t *testing.T, name string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var served atomic.Int64
	w := NewWorker(&stubExec{fn: func(ctx context.Context, job Job) (*Result, error) {
		served.Add(1)
		return &Result{Layout: job.Layout, Legal: true, ModeledSeconds: 1}, nil
	}, load: Load{Workers: 1}})
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(srv.Close)
	_ = name
	return srv, &served
}

func TestRouterRoutesByKeyAndRetriesWithExclusion(t *testing.T) {
	srvA, servedA := testWorkerServer(t, "a")
	srvB, servedB := testWorkerServer(t, "b")
	r := NewRouter(RouterConfig{
		Workers:       []string{srvA.URL, srvB.URL},
		Timeout:       5 * time.Second,
		ProbeInterval: -1, // passive only: the test drives health itself
	})
	defer r.Close()

	// Same key, same worker, every time (cache affinity).
	const key = "fft_a_md2@0.0100|bands=2|halo=2#band=0"
	for i := 0; i < 3; i++ {
		res, err := r.Do(context.Background(), key, Job{Engine: "flex", Layout: "band0"})
		if err != nil {
			t.Fatal(err)
		}
		if res.Layout != "band0" || !res.Legal {
			t.Fatalf("result = %+v", res)
		}
	}
	a, b := servedA.Load(), servedB.Load()
	if a+b != 3 || (a != 0 && b != 0) {
		t.Fatalf("3 identical keys split across nodes: a=%d b=%d", a, b)
	}
	owner := srvA
	ownerServed, survivorServed := servedA, servedB
	if b > 0 {
		owner = srvB
		ownerServed, survivorServed = servedB, servedA
	}

	// Kill the owner: the same key must retry onto the survivor with the
	// dead node excluded, and the router must record the exclusion.
	owner.Close()
	res, err := r.Do(context.Background(), key, Job{Engine: "flex", Layout: "band0"})
	if err != nil {
		t.Fatalf("Do after owner death: %v", err)
	}
	if res.Layout != "band0" {
		t.Fatalf("result = %+v", res)
	}
	if got := survivorServed.Load(); got != 1 {
		t.Fatalf("survivor served %d jobs, want 1", got)
	}
	st := r.Stats()
	if st.Routed != 4 || st.Retried < 1 || st.Excluded < 1 {
		t.Fatalf("stats = %+v, want routed=4 retried>=1 excluded>=1", st)
	}
	var deadState string
	for _, n := range st.Nodes {
		if n.Addr == owner.URL {
			deadState = n.State
		}
	}
	if deadState != "dead" {
		t.Fatalf("dead node state = %q, want dead", deadState)
	}
	// Subsequent keys owned by the dead node skip it outright (it is
	// marked dead, not merely job-excluded).
	for i := 0; i < 8; i++ {
		if _, err := r.Do(context.Background(), fmt.Sprintf("k%d", i), Job{Layout: "x"}); err != nil {
			t.Fatalf("Do with one dead node: %v", err)
		}
	}
	if ownerServed.Load() != 3 {
		t.Fatalf("dead node served new jobs: %d", ownerServed.Load())
	}
	if r.Stats().RemoteWall <= 0 {
		t.Error("RemoteWall not accumulated")
	}
}

func TestRouterDeadlineIsTypedNotTransport(t *testing.T) {
	w := NewWorker(&stubExec{fn: func(ctx context.Context, job Job) (*Result, error) {
		<-ctx.Done()
		return nil, fmt.Errorf("queued past deadline: %w", sched.ErrDeadlineExceeded)
	}})
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()
	r := NewRouter(RouterConfig{Workers: []string{srv.URL}, ProbeInterval: -1})
	defer r.Close()

	_, err := r.Do(context.Background(), "k", Job{Engine: "flex", DeadlineMs: 20})
	if !errors.Is(err, sched.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want sched.ErrDeadlineExceeded", err)
	}
	if errors.Is(err, ErrNoWorkers) {
		t.Fatalf("deadline was retried to exhaustion: %v", err)
	}
}

func TestRouterDrainingExcludedThenRecovered(t *testing.T) {
	var drainA atomic.Bool
	wA := NewWorker(&stubExec{fn: func(ctx context.Context, job Job) (*Result, error) {
		return &Result{Layout: "A", Legal: true}, nil
	}, load: Load{Workers: 1}})
	muxA := http.NewServeMux()
	muxA.Handle("/", http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if drainA.Load() {
			writeError(rw, http.StatusServiceUnavailable, codeDraining, "worker draining")
			return
		}
		wA.Handler().ServeHTTP(rw, req)
	}))
	srvA := httptest.NewServer(muxA)
	defer srvA.Close()
	srvB, _ := testWorkerServer(t, "b")

	r := NewRouter(RouterConfig{Workers: []string{srvA.URL, srvB.URL}, ProbeInterval: -1})
	defer r.Close()

	// Find a key owned by A.
	var keyA string
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("key-%d", i)
		if r.pickNode(k, nil) == srvA.URL {
			keyA = k
			break
		}
	}
	if keyA == "" {
		t.Fatal("no key routed to node A")
	}

	drainA.Store(true)
	res, err := r.Do(context.Background(), keyA, Job{Layout: "x"})
	if err != nil {
		t.Fatalf("Do with draining owner: %v", err)
	}
	if res.Layout != "A" {
		// Served by B's echo executor instead.
		if res.Layout != "x" {
			t.Fatalf("unexpected server for drained key: %+v", res)
		}
	} else {
		t.Fatalf("draining node served the job")
	}
	// The probe path recovers the node once it stops draining.
	drainA.Store(false)
	rn := r.nodes[srvA.URL]
	if got := rn.state.Load(); got != nodeDraining {
		t.Fatalf("node A state = %v, want draining", got)
	}
	r.probe(context.Background(), rn)
	if got := rn.state.Load(); got != nodeAlive {
		t.Fatalf("node A state after probe = %v, want alive", got)
	}
	res, err = r.Do(context.Background(), keyA, Job{Layout: "x"})
	if err != nil || res.Layout != "A" {
		t.Fatalf("recovered node not used: res=%+v err=%v", res, err)
	}
}

func TestRouterAllNodesDown(t *testing.T) {
	srv, _ := testWorkerServer(t, "a")
	url := srv.URL
	srv.Close()
	r := NewRouter(RouterConfig{Workers: []string{url}, ProbeInterval: -1})
	defer r.Close()
	_, err := r.Do(context.Background(), "k", Job{Layout: "x"})
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

func TestRouterInvalidJobNotRetried(t *testing.T) {
	srvA, servedA := testWorkerServer(t, "a")
	srvB, servedB := testWorkerServer(t, "b")
	// A front worker that always rejects as invalid.
	w := NewWorker(&stubExec{fn: func(ctx context.Context, job Job) (*Result, error) {
		return nil, fmt.Errorf("no such design: %w", ErrInvalidJob)
	}})
	srvBad := httptest.NewServer(w.Handler())
	defer srvBad.Close()

	r := NewRouter(RouterConfig{Workers: []string{srvBad.URL}, ProbeInterval: -1})
	defer r.Close()
	_, err := r.Do(context.Background(), "k", Job{Engine: "nope"})
	if !errors.Is(err, ErrInvalidJob) {
		t.Fatalf("err = %v, want ErrInvalidJob", err)
	}
	if servedA.Load()+servedB.Load() != 0 {
		t.Fatal("invalid job was retried on healthy nodes")
	}
	_ = srvA
	_ = srvB
}
