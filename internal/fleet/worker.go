package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/flex-eda/flex/internal/obs"
	"github.com/flex-eda/flex/internal/sched"
)

// maxJobBytes bounds a job body: fleet traffic is coordinator-originated,
// but a band of a paper-scale design serialized as flexpl can reach tens
// of megabytes, so the cap is generous rather than tight.
const maxJobBytes = 256 << 20

// Worker serves the fleet job protocol for one node: it owns the
// draining flag and translates between HTTP and an Executor.
type Worker struct {
	exec     Executor
	log      *slog.Logger
	draining atomic.Bool
}

// NewWorker wraps exec in the wire protocol.
func NewWorker(exec Executor) *Worker {
	return &Worker{exec: exec, log: slog.Default()}
}

// SetLogger routes the worker's request logging (trace arrivals at
// debug, drain transitions at warn) to log; nil restores the default.
func (w *Worker) SetLogger(log *slog.Logger) {
	if log == nil {
		log = slog.Default()
	}
	w.log = log
}

// Drain flips the worker into draining: /w/v1/health and /w/v1/job both
// answer 503 from now on, so coordinators stop routing here and retry
// in-flight rejections elsewhere. Jobs already executing are unaffected —
// the caller decides how long to let them finish.
func (w *Worker) Drain() {
	if !w.draining.Swap(true) {
		w.log.Warn("worker draining: rejecting new jobs with 503")
	}
}

// Draining reports whether Drain has been called.
func (w *Worker) Draining() bool {
	return w.draining.Load()
}

// Handler returns the worker's HTTP surface: POST /w/v1/job and
// GET /w/v1/health. Mount it on the serving mux (flexserve -mode worker
// mounts it next to the normal API).
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /w/v1/job", w.handleJob)
	mux.HandleFunc("GET /w/v1/health", w.handleHealth)
	return mux
}

func (w *Worker) handleHealth(rw http.ResponseWriter, req *http.Request) {
	load := w.exec.Load()
	build := obs.Build()
	h := Health{
		Status:          "ok",
		QueuedJobs:      load.QueuedJobs,
		Workers:         load.Workers,
		DeviceWaitMs:    float64(load.DeviceWait) / float64(time.Millisecond),
		DeviceHoldMs:    float64(load.DeviceHold) / float64(time.Millisecond),
		DeviceAcquires:  load.DeviceAcquires,
		DeviceReconfigs: load.DeviceReconfigs,
		Version:         build.Version,
		Revision:        build.Revision,
	}
	status := http.StatusOK
	if w.draining.Load() {
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	json.NewEncoder(rw).Encode(h) //nolint:errcheck // best-effort: client gone
}

func (w *Worker) handleJob(rw http.ResponseWriter, req *http.Request) {
	if w.draining.Load() {
		writeError(rw, http.StatusServiceUnavailable, codeDraining, "worker draining")
		return
	}
	var job Job
	dec := json.NewDecoder(http.MaxBytesReader(rw, req.Body, maxJobBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&job); err != nil {
		writeError(rw, http.StatusBadRequest, codeInvalid, "decode job: "+err.Error())
		return
	}

	ctx := req.Context()
	if job.DeadlineMs > 0 {
		// Re-anchor the relative wire deadline on this host's clock.
		var cancel context.CancelFunc
		//flexvet:walltime anchoring the coordinator's relative deadline locally
		ctx, cancel = context.WithDeadline(ctx, time.Now().Add(time.Duration(job.DeadlineMs)*time.Millisecond))
		defer cancel()
	}

	// A propagated trace: open a linked recorder under the coordinator's
	// ID so this job's worker-side spans ship back inside the result.
	// The arrival log line is the wire half of trace continuity — the
	// same ID appears in the coordinator's result rows.
	var rec *obs.Recorder
	if id := req.Header.Get(TraceHeader); id != "" {
		rec = obs.NewLinkedRecorder(id, "worker-job")
		ctx = obs.WithRecorder(ctx, rec)
		w.log.Debug("fleet job received", "trace", id, "key", job.Key,
			"engine", job.Engine, "client", job.Client)
	}

	res, err := w.exec.Execute(ctx, job)
	if err != nil {
		status, code := classifyExecErr(ctx, err)
		writeError(rw, status, code, err.Error())
		return
	}
	if rec != nil {
		res.Spans = rec.Spans()
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(res) //nolint:errcheck // best-effort: client gone
}

// classifyExecErr maps an Executor failure to its wire status and code.
// Deadline classification accepts both the scheduler's sentinel and a
// context deadline the handler itself set — either way, the coordinator
// must see a typed deadline, not a generic 500.
func classifyExecErr(ctx context.Context, err error) (int, string) {
	switch {
	case errors.Is(err, sched.ErrDeadlineExceeded),
		errors.Is(err, context.DeadlineExceeded) && ctx.Err() != nil:
		return http.StatusGatewayTimeout, codeDeadline
	case errors.Is(err, ErrInvalidJob):
		return http.StatusBadRequest, codeInvalid
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests, codeOverloaded
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, codeDraining
	default:
		return http.StatusInternalServerError, codeFailed
	}
}

func writeError(rw http.ResponseWriter, status int, code, msg string) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	json.NewEncoder(rw).Encode(errorBody{Error: msg, Code: code}) //nolint:errcheck // best-effort: client gone
}
