package fleet

import (
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over worker addresses: each node owns
// vnodesPerNode points on a 64-bit circle, and a key routes to the first
// point clockwise of its hash. Band cache keys therefore map stably to
// workers — adding or draining one node only moves the bands adjacent to
// its points, so the rest of the fleet keeps its layout caches warm.
type ring struct {
	points []ringPoint // sorted by hash
	nodes  []string
}

type ringPoint struct {
	hash uint64
	node string
}

// vnodesPerNode spreads each worker across the circle so small fleets
// still balance: with 2–4 real nodes and one point each, a single arc
// could own most of the key space.
const vnodesPerNode = 64

func newRing(nodes []string) *ring {
	r := &ring{nodes: append([]string(nil), nodes...)}
	for _, n := range r.nodes {
		for v := 0; v < vnodesPerNode; v++ {
			r.points = append(r.points, ringPoint{hash: hashPoint(n, v), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on the node name so the ring order is a pure
		// function of the node set.
		return r.points[i].node < r.points[j].node
	})
	return r
}

func hashPoint(node string, vnode int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte{'#', byte(vnode), byte(vnode >> 8)})
	return mix64(h.Sum64())
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is a 64-bit finalizer (MurmurHash3's) applied after FNV-1a:
// plain FNV has weak avalanche in its low bits, so band keys that differ
// only in a "#band=N" suffix — the common case here — land adjacent on
// the circle and pile onto one node. The mixer diffuses single-character
// differences across all 64 bits.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// pick returns the owner of key after skipping excluded nodes: the first
// point clockwise of the key's hash whose node is acceptable. With every
// node excluded it returns "". Walking the ring (rather than re-hashing)
// keeps the fallback deterministic and minimal — a band displaced by one
// dead worker always lands on the same survivor.
func (r *ring) pick(key string, excluded map[string]bool) string {
	if len(r.points) == 0 {
		return ""
	}
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= hashKey(key)
	})
	seen := make(map[string]bool, len(r.nodes))
	for i := 0; i < len(r.points) && len(seen) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		if !excluded[p.node] {
			return p.node
		}
	}
	return ""
}
