package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flex-eda/flex/internal/obs"
	"github.com/flex-eda/flex/internal/sched"
)

// Node states as seen by the router. Passive observation (a failed POST)
// and active probing (GET /w/v1/health) both move a node between them;
// only probing moves a node back to alive.
const (
	nodeAlive int32 = iota
	nodeDraining
	nodeDead
)

func stateName(s int32) string {
	switch s {
	case nodeDraining:
		return "draining"
	case nodeDead:
		return "dead"
	default:
		return "alive"
	}
}

// RouterConfig configures a coordinator-side Router.
type RouterConfig struct {
	// Workers are the fleet's node base URLs (e.g. "http://10.0.0.2:8080").
	Workers []string
	// Timeout bounds one job attempt end to end (default 2 minutes —
	// paper-scale bands are slow, but a hung worker must not wedge a
	// band forever).
	Timeout time.Duration
	// Inflight bounds concurrently outstanding jobs per worker
	// (default 16). The coordinator's scheduler pops jobs in policy
	// order; this bound is the per-node backpressure under it.
	Inflight int
	// Retries is the number of additional attempts after a retryable
	// failure, each excluding all previously failed nodes
	// (default len(Workers)-1: try every node once).
	Retries int
	// ProbeInterval is the period of background health probing
	// (default 2s; <0 disables, for tests that drive state passively).
	ProbeInterval time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
	// Metrics, when set, receives per-attempt RPC telemetry: the
	// flex_fleet_rpc_seconds latency histogram and the
	// flex_fleet_rpc_total attempt counter, both labeled by node.
	Metrics *obs.Registry
}

// Router is the coordinator's view of the fleet: it owns the consistent-
// hash ring, per-node health and in-flight bounds, and the retry-with-
// exclusion loop that mirrors batch's skip semantics — a band bounced by
// a failed or draining node is retried on the next ring owner with the
// failure excluded, and the routing never changes result bytes.
type Router struct {
	ring    *ring
	nodes   map[string]*node
	client  *http.Client
	timeout time.Duration
	retries int

	routed, retried, excluded atomic.Int64
	remoteWallNs              atomic.Int64

	probeCancel context.CancelFunc
	probeDone   chan struct{}
	closeOnce   sync.Once
}

type node struct {
	addr   string
	sem    chan struct{} // in-flight bound
	state  atomic.Int32
	routed atomic.Int64 // successful jobs
	failed atomic.Int64 // failed attempts

	// Per-node RPC telemetry (nil-safe no-ops without a registry).
	rpcSeconds obs.Histogram
	rpcTotal   obs.Counter
}

// NewRouter builds a router over cfg.Workers and starts its health
// prober. Close it to stop probing.
func NewRouter(cfg RouterConfig) *Router {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Minute
	}
	if cfg.Inflight <= 0 {
		cfg.Inflight = 16
	}
	if cfg.Retries <= 0 {
		cfg.Retries = len(cfg.Workers) - 1
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	r := &Router{
		ring:    newRing(cfg.Workers),
		nodes:   make(map[string]*node, len(cfg.Workers)),
		client:  cfg.Client,
		timeout: cfg.Timeout,
		retries: cfg.Retries,
	}
	for _, addr := range cfg.Workers {
		r.nodes[addr] = &node{
			addr: addr, sem: make(chan struct{}, cfg.Inflight),
			rpcSeconds: cfg.Metrics.Histogram("flex_fleet_rpc_seconds",
				"Fleet job RPC round-trip latency per attempt.",
				obs.LatencyBuckets, obs.Label{Key: "node", Value: addr}),
			rpcTotal: cfg.Metrics.Counter("flex_fleet_rpc_total",
				"Fleet job RPC attempts.", obs.Label{Key: "node", Value: addr}),
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	r.probeCancel = cancel
	r.probeDone = make(chan struct{})
	if cfg.ProbeInterval > 0 {
		go r.probeLoop(ctx, cfg.ProbeInterval)
	} else {
		close(r.probeDone)
	}
	return r
}

// Close stops the health prober. In-flight Do calls are unaffected.
func (r *Router) Close() {
	r.closeOnce.Do(func() {
		r.probeCancel()
		<-r.probeDone
	})
}

// Do routes one job by its cache key: consistent-hash pick, bounded
// in-flight POST, and on a retryable failure (transport error, draining,
// overload, attempt timeout) the failed node is excluded and the next
// ring owner tried, up to the retry budget. Non-retryable failures —
// invalid job, deadline exceeded, engine failure — return immediately
// with a typed error.
func (r *Router) Do(ctx context.Context, key string, job Job) (*Result, error) {
	job.Key = key
	body, err := json.Marshal(job)
	if err != nil {
		return nil, fmt.Errorf("%w: encode: %v", ErrInvalidJob, err)
	}
	excluded := make(map[string]bool)
	var lastErr error
	for attempt := 0; attempt <= r.retries; attempt++ {
		addr := r.pickNode(key, excluded)
		if addr == "" {
			break
		}
		if attempt > 0 {
			r.retried.Add(1)
		}
		res, retryable, err := r.attempt(ctx, r.nodes[addr], body)
		if err == nil {
			r.routed.Add(1)
			return res, nil
		}
		lastErr = err
		if !retryable || ctx.Err() != nil {
			return nil, err
		}
		excluded[addr] = true
		r.excluded.Add(1)
	}
	if lastErr == nil {
		return nil, ErrNoWorkers
	}
	return nil, fmt.Errorf("%w: %v", ErrNoWorkers, lastErr)
}

// pickNode prefers live nodes; if health has excluded every candidate it
// falls back to any node this job has not itself failed on — a stale
// "dead" mark must not strand work the node could still serve.
func (r *Router) pickNode(key string, jobExcluded map[string]bool) string {
	unhealthy := make(map[string]bool, len(r.nodes))
	for addr, n := range r.nodes {
		if jobExcluded[addr] || n.state.Load() != nodeAlive {
			unhealthy[addr] = true
		}
	}
	if addr := r.ring.pick(key, unhealthy); addr != "" {
		return addr
	}
	return r.ring.pick(key, jobExcluded)
}

// attempt POSTs the job to one node. The bool reports whether the
// failure is retryable on another node.
func (r *Router) attempt(ctx context.Context, n *node, body []byte) (*Result, bool, error) {
	select {
	case n.sem <- struct{}{}:
		defer func() { <-n.sem }()
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}

	actx, cancel := context.WithTimeout(ctx, r.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, n.addr+"/w/v1/job", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	if rec := obs.RecorderFrom(ctx); rec != nil {
		// Propagate the trace across the wire: the worker opens a linked
		// recorder under this ID and ships its spans back in the result.
		req.Header.Set(TraceHeader, rec.ID())
	}

	// Band RTT: wall time of the remote call, reported in fleet stats as
	// the wall half of the modeled-vs-wall split (BENCHMARKING.md), plus
	// the per-attempt fleet-rpc span and RPC latency histogram.
	//flexvet:walltime band RTT telemetry for fleet stats
	start := time.Now()
	resp, err := r.client.Do(req)
	defer func() {
		//flexvet:walltime band RTT telemetry for fleet stats and RPC spans/metrics
		rtt := time.Since(start)
		r.remoteWallNs.Add(int64(rtt))
		obs.Record(ctx, "fleet-rpc", n.addr, start, start.Add(rtt))
		n.rpcSeconds.Observe(rtt.Seconds())
		n.rpcTotal.Inc()
	}()
	if err != nil {
		n.failed.Add(1)
		if ctx.Err() != nil {
			// The caller's own context ended — not the node's fault and
			// not retryable.
			return nil, false, ctx.Err()
		}
		if actx.Err() != nil {
			// Per-attempt timeout: the node may just be slow — exclude
			// it for this job without declaring it dead.
			return nil, true, fmt.Errorf("fleet: %s: attempt timed out: %w", n.addr, err)
		}
		// Transport failure: connection refused/reset — the node is gone
		// until a probe says otherwise.
		n.state.Store(nodeDead)
		return nil, true, fmt.Errorf("fleet: %s: %w", n.addr, err)
	}
	//flexvet:close response body fully consumed; close error carries no result
	defer resp.Body.Close()

	if resp.StatusCode == http.StatusOK {
		var res Result
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			n.failed.Add(1)
			// A torn response usually means the worker died mid-write.
			n.state.Store(nodeDead)
			return nil, true, fmt.Errorf("fleet: %s: decode result: %w", n.addr, err)
		}
		n.routed.Add(1)
		return &res, false, nil
	}

	n.failed.Add(1)
	var eb errorBody
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	if jerr := json.Unmarshal(raw, &eb); jerr != nil || eb.Error == "" {
		eb.Error = fmt.Sprintf("http %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	switch {
	case eb.Code == codeDeadline || resp.StatusCode == http.StatusGatewayTimeout:
		// The job's own deadline expired on the worker: surface the
		// scheduler's typed error, not a transport failure.
		return nil, false, fmt.Errorf("fleet: %s: %s: %w", n.addr, eb.Error, sched.ErrDeadlineExceeded)
	case eb.Code == codeDraining || resp.StatusCode == http.StatusServiceUnavailable:
		n.state.Store(nodeDraining)
		return nil, true, fmt.Errorf("fleet: %s: %s: %w", n.addr, eb.Error, ErrDraining)
	case eb.Code == codeOverloaded || resp.StatusCode == http.StatusTooManyRequests:
		// Transient: retry elsewhere but leave the node alive.
		return nil, true, fmt.Errorf("fleet: %s: %s: %w", n.addr, eb.Error, ErrOverloaded)
	case eb.Code == codeInvalid || resp.StatusCode == http.StatusBadRequest:
		return nil, false, fmt.Errorf("fleet: %s: %s: %w", n.addr, eb.Error, ErrInvalidJob)
	default:
		return nil, false, fmt.Errorf("fleet: %s: job failed: %s", n.addr, eb.Error)
	}
}

// probeLoop polls every node's /w/v1/health on a fixed period, promoting
// recovered nodes back to alive and demoting draining/dead ones — the
// active half of health tracking (Do's failure marking is the passive
// half).
func (r *Router) probeLoop(ctx context.Context, interval time.Duration) {
	defer close(r.probeDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		for _, n := range r.nodes {
			r.probe(ctx, n)
		}
	}
}

func (r *Router) probe(ctx context.Context, n *node) {
	pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, n.addr+"/w/v1/health", nil)
	if err != nil {
		return
	}
	resp, err := r.client.Do(req)
	if err != nil {
		n.state.Store(nodeDead)
		return
	}
	//flexvet:close health body is drained for connection reuse; close error is health-neutral
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10)) //nolint:errcheck // drain for reuse
	switch resp.StatusCode {
	case http.StatusOK:
		n.state.Store(nodeAlive)
	case http.StatusServiceUnavailable:
		n.state.Store(nodeDraining)
	default:
		n.state.Store(nodeDead)
	}
}

// RouterStats is a point-in-time snapshot of the router's counters for
// /v1/stats: per-node liveness and traffic, plus the totals and the
// cumulative remote wall clock (band RTTs — wall, never modeled).
type RouterStats struct {
	Nodes      []NodeStats
	Routed     int64 // jobs completed remotely
	Retried    int64 // extra attempts after a retryable failure
	Excluded   int64 // node exclusions performed during retries
	RemoteWall time.Duration
}

// NodeStats is one worker's row in RouterStats.
type NodeStats struct {
	Addr     string
	State    string // alive | draining | dead
	Routed   int64  // successful jobs on this node
	Failed   int64  // failed attempts on this node
	Inflight int    // currently outstanding jobs
}

// Stats snapshots the router. Nodes appear in ring-configuration order.
func (r *Router) Stats() RouterStats {
	st := RouterStats{
		Routed:     r.routed.Load(),
		Retried:    r.retried.Load(),
		Excluded:   r.excluded.Load(),
		RemoteWall: time.Duration(r.remoteWallNs.Load()),
	}
	for _, addr := range r.ring.nodes {
		n := r.nodes[addr]
		st.Nodes = append(st.Nodes, NodeStats{
			Addr:     n.addr,
			State:    stateName(n.state.Load()),
			Routed:   n.routed.Load(),
			Failed:   n.failed.Load(),
			Inflight: len(n.sem),
		})
	}
	return st
}
