// Package benchjson defines the BENCH_*.json schema: the persistent,
// machine-readable performance trajectory of this repository.
//
// A BENCH file is the output of `flexbench -bench-out` and the input of
// `cmd/benchdiff`. It records, per experiment driver and per
// (design, engine, config) combination, the deterministic facts of a run:
// abstract operation counts (the quantities internal/perf prices), the
// modeled seconds derived from them, solution quality, and the service's
// cache and device accounting. Wall-clock time is deliberately absent —
// wall observations go to stderr, so two runs of the same binary on the
// same inputs produce byte-identical BENCH files and CI can diff them.
// docs/BENCHMARKING.md documents every field and the methodology.
package benchjson

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// SchemaVersion is stamped into every written file. Readers reject files
// with a newer major schema than they understand.
const SchemaVersion = 1

// Ops maps an operation-class name (e.g. "fop.shift.subcellVisits") to its
// deterministic count. encoding/json sorts map keys, so the serialized
// form is canonical.
type Ops map[string]int64

// Total sums all counted operations.
func (o Ops) Total() int64 {
	var t int64
	for _, v := range o {
		t += v
	}
	return t
}

// Add accumulates other into o, key by key.
func (o Ops) Add(other Ops) {
	for k, v := range other {
		o[k] += v
	}
}

// Env identifies the toolchain that produced a file. Only fields that are
// stable across re-runs on the same machine belong here — no hostnames,
// no timestamps.
type Env struct {
	Go     string `json:"go"`     // runtime.Version()
	GOOS   string `json:"goos"`   // runtime.GOOS
	GOARCH string `json:"goarch"` // runtime.GOARCH
}

// Config records the flexbench flags that shape the measured numbers.
// Scheduling-only knobs (workers, fpgas, sched policy) are included for
// provenance even though they never change op counts.
type Config struct {
	Scale     float64 `json:"scale"`
	Designs   string  `json:"designs,omitempty"` // comma-separated filter, empty = full suite
	Threads   int     `json:"threads"`
	Workers   int     `json:"workers"`
	FPGAs     int     `json:"fpgas"`
	CacheMB   int     `json:"cacheMB"`
	Shards    int     `json:"shards"`
	ShardHalo int     `json:"shardHalo"`
	SchedJobs int     `json:"schedJobs"`
	Sched     string  `json:"sched"`
}

// Breakdown is the FLEX engine's modeled-seconds decomposition (the terms
// of core.Result); other engines leave it nil.
type Breakdown struct {
	FPGASeconds      float64 `json:"fpga"`
	CPUSerialSeconds float64 `json:"cpuSerial"`
	CPUSteadySeconds float64 `json:"cpuSteady"`
	TransferSeconds  float64 `json:"transfer"`
}

// Record is one measured (design, engine, config) outcome.
type Record struct {
	// Design is the benchmark name; Engine the registry name of the
	// legalizer ("flex", "mgl-mt", "gpu", "analytical"); Config the
	// driver-specific configuration ("threads=8", "bands=4 halo=2",
	// "class=urgent priority=8 jobs=4"). (Design, Engine, Config) keys a
	// record within its experiment for diffing.
	Design string `json:"design"`
	Engine string `json:"engine"`
	Config string `json:"config,omitempty"`
	// Cells is the movable-cell count the engine legalized.
	Cells int `json:"cells"`
	// Legal reports whether the result checked clean.
	Legal bool `json:"legal"`
	// AveDis/MaxDis are the quality metrics of the paper's Eq. 1.
	AveDis float64 `json:"aveDis"`
	MaxDis float64 `json:"maxDis,omitempty"`
	// ModeledSeconds is the engine's deterministic platform-model runtime;
	// Modeled breaks it down for the FLEX engine.
	ModeledSeconds float64    `json:"modeledSeconds"`
	Modeled        *Breakdown `json:"modeled,omitempty"`
	// Ops are the counted abstract operations priced by internal/perf.
	Ops Ops `json:"ops,omitempty"`
}

// Key returns the record's identity within its experiment.
func (r Record) Key() string {
	return r.Design + "|" + r.Engine + "|" + r.Config
}

// CacheStats is the layout cache's hit/miss delta attributable to one
// experiment driver (deterministic: the drivers resolve each design through
// the cache exactly once per run).
type CacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// DeviceStats is the modeled-board accounting for one experiment driver.
// Acquires is deterministic (one per FLEX-engine job); Reconfigs is
// deterministic only for serial runs (-workers 1), which is why -bench-out
// warns on any other worker count. Wait and hold times are wall-clock and
// therefore excluded by design.
type DeviceStats struct {
	Acquires  int64 `json:"acquires"`
	Reconfigs int64 `json:"reconfigs"`
}

// Experiment groups one driver's records.
type Experiment struct {
	Name    string       `json:"name"` // driver name: "table1", "sharded", "sched"
	Records []Record     `json:"records"`
	Cache   *CacheStats  `json:"cache,omitempty"`
	Device  *DeviceStats `json:"device,omitempty"`
}

// Add appends a record.
func (e *Experiment) Add(r Record) { e.Records = append(e.Records, r) }

// File is one complete BENCH_*.json document.
type File struct {
	Schema      int           `json:"schema"`
	Env         Env           `json:"env"`
	Config      Config        `json:"config"`
	Experiments []*Experiment `json:"experiments"`
}

// New starts a file with the schema version and provenance filled in.
func New(env Env, cfg Config) *File {
	return &File{Schema: SchemaVersion, Env: env, Config: cfg}
}

// Experiment appends and returns a named experiment group.
func (f *File) Experiment(name string) *Experiment {
	e := &Experiment{Name: name}
	f.Experiments = append(f.Experiments, e)
	return e
}

// Write serializes the file in its canonical form: two-space indented JSON
// with sorted map keys and a trailing newline. Two runs over identical
// deterministic inputs produce byte-identical output.
func (f *File) Write(w io.Writer) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteFile writes the canonical form to path.
func (f *File) WriteFile(path string) error {
	var buf []byte
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	buf = append(b, '\n')
	return os.WriteFile(path, buf, 0o644)
}

// Read parses a BENCH file and validates its schema version.
func Read(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	if f.Schema < 1 || f.Schema > SchemaVersion {
		return nil, fmt.Errorf("benchjson: unsupported schema %d (this build reads 1..%d)", f.Schema, SchemaVersion)
	}
	return &f, nil
}

// ReadFile parses the BENCH file at path.
func ReadFile(path string) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	f, err := Read(fh)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}
