package benchjson

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *File {
	f := New(Env{Go: "go1.24.0", GOOS: "linux", GOARCH: "amd64"},
		Config{Scale: 0.01, Threads: 8, Workers: 1, FPGAs: 1, CacheMB: 64,
			Shards: 4, ShardHalo: 2, SchedJobs: 4, Sched: "priority"})
	e := f.Experiment("table1")
	e.Add(Record{
		Design: "des_perf_1", Engine: "flex", Cells: 1128, Legal: true,
		AveDis: 1.234, ModeledSeconds: 0.0123,
		Modeled: &Breakdown{FPGASeconds: 0.01, CPUSerialSeconds: 0.001, CPUSteadySeconds: 0.001, TransferSeconds: 0.0003},
		Ops:     Ops{"fop.shift.subcellVisits": 100, "fop.curve.rawBps": 50},
	})
	e.Cache = &CacheStats{Hits: 3, Misses: 1}
	e.Device = &DeviceStats{Acquires: 1, Reconfigs: 1}
	return f
}

// The canonical serialization must be byte-stable across repeated writes —
// the property the whole trajectory rests on.
func TestWriteDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := sample().Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := sample().Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two writes differ:\n%s\n---\n%s", a.String(), b.String())
	}
	if !bytes.HasSuffix(a.Bytes(), []byte("}\n")) {
		t.Fatalf("canonical form must end with a newline, got %q", a.Bytes()[a.Len()-2:])
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion {
		t.Fatalf("schema = %d, want %d", got.Schema, SchemaVersion)
	}
	if len(got.Experiments) != 1 || got.Experiments[0].Name != "table1" {
		t.Fatalf("experiments = %+v", got.Experiments)
	}
	rec := got.Experiments[0].Records[0]
	if rec.Key() != "des_perf_1|flex|" {
		t.Fatalf("key = %q", rec.Key())
	}
	if rec.Ops["fop.shift.subcellVisits"] != 100 {
		t.Fatalf("ops round-trip lost counts: %+v", rec.Ops)
	}
	if got.Experiments[0].Device.Reconfigs != 1 {
		t.Fatalf("device stats lost: %+v", got.Experiments[0].Device)
	}
}

func TestReadRejectsFutureSchema(t *testing.T) {
	in := strings.NewReader(`{"schema": 99}`)
	if _, err := Read(in); err == nil {
		t.Fatal("want error for schema 99")
	}
}

func TestOpsHelpers(t *testing.T) {
	o := Ops{"a": 1, "b": 2}
	o.Add(Ops{"b": 3, "c": 4})
	if o["b"] != 5 || o["c"] != 4 {
		t.Fatalf("Add: %+v", o)
	}
	if o.Total() != 10 {
		t.Fatalf("Total = %d, want 10", o.Total())
	}
}
