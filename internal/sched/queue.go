package sched

import (
	"sync"
	"time"
)

// TaskQueue is a scheduled work queue: producers Push tasks with a Class,
// consumers (worker goroutines) Pop the best eligible task under the
// queue's Policy, quota and fairness rules. It replaces the FIFO task
// channel at the heart of batch.Pool.
//
// Push never blocks (admission control bounds the queue from above). Pop
// blocks until a task is runnable or the queue is closed and drained. All
// methods are safe for concurrent use.
type TaskQueue struct {
	mu   sync.Mutex
	cond *sync.Cond
	cfg  Config

	waiters []*waiter
	running map[string]int // per-client running tasks
	seq     uint64
	closed  bool
}

// Depths is a point-in-time snapshot of queue occupancy, the substrate of
// the service's per-priority and per-client queue-depth statistics.
type Depths struct {
	// Waiting is the number of queued (not yet running) tasks.
	Waiting int
	// WaitingByPriority buckets waiting tasks by their base priority.
	WaitingByPriority map[int]int
	// WaitingByClient buckets waiting tasks by client.
	WaitingByClient map[string]int
	// RunningByClient counts popped-and-unfinished tasks per client — the
	// in-flight set the per-client quota caps.
	RunningByClient map[string]int
}

// NewTaskQueue builds an empty queue with the given configuration.
func NewTaskQueue(cfg Config) *TaskQueue {
	q := &TaskQueue{cfg: cfg, running: make(map[string]int)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Ticket identifies one pushed task, so a canceled batch can Drop its
// still-queued tasks instead of waiting for workers to pop each one.
type Ticket struct {
	w *waiter
}

// Push enqueues run under class and returns the task's ticket. The task's
// wait argument is the time it spent queued between Push and the Pop that
// picked it up.
func (q *TaskQueue) Push(class Class, run func(wait time.Duration)) *Ticket {
	w := &waiter{class: class, since: q.cfg.now(), run: run}
	q.mu.Lock()
	w.seq = q.seq
	q.seq++
	q.waiters = append(q.waiters, w)
	q.mu.Unlock()
	q.cond.Broadcast()
	return &Ticket{w: w}
}

// Drop removes every still-queued task among ts and reports which (by
// position in ts). Tasks already popped — running or finished — are
// untouched and unreported; their results arrive the normal way. The
// canceled batch's fast path: its unstarted jobs leave the queue at once
// instead of each waiting for a worker.
func (q *TaskQueue) Drop(ts []*Ticket) []int {
	drop := make(map[*waiter]int, len(ts))
	for i, t := range ts {
		if t != nil {
			drop[t.w] = i
		}
	}
	var removed []int
	q.mu.Lock()
	kept := q.waiters[:0]
	for _, w := range q.waiters {
		if i, ok := drop[w]; ok {
			removed = append(removed, i)
			continue
		}
		kept = append(kept, w)
	}
	q.waiters = kept
	q.mu.Unlock()
	return removed
}

// Pop blocks until a task is runnable and returns it wrapped with the
// queue's bookkeeping: calling the returned function runs the task and then
// releases its client's quota slot. ok is false once the queue is closed
// and fully drained — the worker's signal to exit. Tasks still queued at
// Close are drained first, preserving the channel-close semantics the pool
// had before scheduling.
func (q *TaskQueue) Pop() (run func(), ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if i := pickBest(q.cfg, q.waiters, q.running, q.cfg.now()); i >= 0 {
			w := q.waiters[i]
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			client := w.class.Client
			q.running[client]++
			wait := q.cfg.now().Sub(w.since)
			return func() {
				w.run(wait)
				q.mu.Lock()
				q.running[client]--
				if q.running[client] <= 0 {
					delete(q.running, client)
				}
				q.mu.Unlock()
				// A freed quota slot may make a queued sibling eligible.
				q.cond.Broadcast()
			}, true
		}
		if q.closed && len(q.waiters) == 0 {
			return nil, false
		}
		// Nothing eligible: wait for a Push, a quota slot, or Close.
		// Quota-blocked waiters imply running tasks whose completion will
		// broadcast, so this wait cannot deadlock.
		q.cond.Wait()
	}
}

// Close stops the queue: Pops drain the remaining tasks, then return
// ok = false. Idempotent.
func (q *TaskQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Depths snapshots current queue occupancy.
func (q *TaskQueue) Depths() Depths {
	q.mu.Lock()
	defer q.mu.Unlock()
	d := Depths{
		Waiting:           len(q.waiters),
		WaitingByPriority: make(map[int]int),
		WaitingByClient:   make(map[string]int),
		RunningByClient:   make(map[string]int, len(q.running)),
	}
	for _, w := range q.waiters {
		d.WaitingByPriority[w.class.Priority]++
		d.WaitingByClient[w.class.Client]++
	}
	for c, n := range q.running {
		d.RunningByClient[c] = n
	}
	return d
}
