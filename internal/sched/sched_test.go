package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock so aging tests are deterministic.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func pushTagged(q *TaskQueue, class Class, tag string, order *[]string, mu *sync.Mutex) {
	q.Push(class, func(time.Duration) {
		mu.Lock()
		*order = append(*order, tag)
		mu.Unlock()
	})
}

func TestPriorityOrderingEDFAndSeq(t *testing.T) {
	clk := newFakeClock()
	q := NewTaskQueue(Config{Now: clk.Now})
	var mu sync.Mutex
	var order []string
	dl := clk.Now().Add(time.Hour)
	pushTagged(q, Class{Priority: 0}, "bulk", &order, &mu)
	pushTagged(q, Class{Priority: 5, Deadline: dl.Add(time.Minute)}, "late-deadline", &order, &mu)
	pushTagged(q, Class{Priority: 5, Deadline: dl}, "early-deadline", &order, &mu)
	pushTagged(q, Class{Priority: 5}, "no-deadline", &order, &mu)
	pushTagged(q, Class{Priority: 9}, "urgent", &order, &mu)

	for i := 0; i < 5; i++ {
		run, ok := q.Pop()
		if !ok {
			t.Fatal("queue closed early")
		}
		run()
	}
	want := []string{"urgent", "early-deadline", "late-deadline", "no-deadline", "bulk"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFIFOIgnoresPriority(t *testing.T) {
	q := NewTaskQueue(Config{Policy: FIFO()})
	var mu sync.Mutex
	var order []string
	pushTagged(q, Class{Priority: 0}, "first", &order, &mu)
	pushTagged(q, Class{Priority: 9}, "second", &order, &mu)
	for i := 0; i < 2; i++ {
		run, _ := q.Pop()
		run()
	}
	if order[0] != "first" || order[1] != "second" {
		t.Fatalf("order = %v, want arrival order", order)
	}
}

// TestAgingBoundsStarvation pins the starvation bound: a priority-0 job
// enqueued first outranks fresh priority-5 arrivals once it has waited
// 5 aging steps — so it runs after a bounded number of higher-priority
// jobs, never indefinitely many.
func TestAgingBoundsStarvation(t *testing.T) {
	clk := newFakeClock()
	step := time.Second
	q := NewTaskQueue(Config{
		Policy: Prioritized(PriorityConfig{AgeStep: step}),
		Now:    clk.Now,
	})
	var mu sync.Mutex
	var order []string
	pushTagged(q, Class{Priority: 0}, "old-bulk", &order, &mu)

	// A continuous stream of fresh priority-5 jobs. Before the bound the
	// fresh job wins; at 5 steps waited, effective priorities tie (0+5 vs
	// 5+0) and the older Seq breaks the tie for the bulk job.
	for i := 0; i < 5; i++ {
		pushTagged(q, Class{Priority: 5}, "fresh", &order, &mu)
		run, _ := q.Pop()
		run()
		clk.Advance(step)
	}
	pushTagged(q, Class{Priority: 5}, "fresh", &order, &mu)
	run, _ := q.Pop()
	run()

	for i := 0; i < 5; i++ {
		if order[i] != "fresh" {
			t.Fatalf("pop %d = %q, want fresh (bulk must wait out the aging bound)", i, order[i])
		}
	}
	if order[5] != "old-bulk" {
		t.Fatalf("after 5 aging steps the bulk job still starved: %v", order)
	}
}

func TestAgingDisabledStarves(t *testing.T) {
	clk := newFakeClock()
	q := NewTaskQueue(Config{
		Policy: Prioritized(PriorityConfig{AgeStep: -1}),
		Now:    clk.Now,
	})
	var mu sync.Mutex
	var order []string
	pushTagged(q, Class{Priority: 0}, "bulk", &order, &mu)
	clk.Advance(time.Hour)
	pushTagged(q, Class{Priority: 1}, "fresh", &order, &mu)
	run, _ := q.Pop()
	run()
	if order[0] != "fresh" {
		t.Fatalf("aging disabled, yet waiting boosted the bulk job: %v", order)
	}
}

// TestQuotaCapsClientInFlight pins the quota contract: with quota 1, a
// client's second task stays queued until its first completes even with
// idle consumers, while other clients' work proceeds.
func TestQuotaCapsClientInFlight(t *testing.T) {
	q := NewTaskQueue(Config{Quota: 1})
	release := make(chan struct{})
	var aSecond atomic.Bool
	q.Push(Class{Client: "a"}, func(time.Duration) { <-release })
	q.Push(Class{Client: "a"}, func(time.Duration) { aSecond.Store(true) })
	q.Push(Class{Client: "b"}, func(time.Duration) {})

	run1, _ := q.Pop() // a's first task; holds a's quota slot
	done1 := make(chan struct{})
	go func() { run1(); close(done1) }()

	// The next eligible task must be b's — a is at quota.
	run2, _ := q.Pop()
	run2()
	if aSecond.Load() {
		t.Fatal("client a's second task ran while its first held the quota slot")
	}

	got := make(chan struct{})
	go func() {
		run3, _ := q.Pop() // blocks until a's slot frees
		run3()
		close(got)
	}()
	select {
	case <-got:
		t.Fatal("quota-blocked task ran before the slot freed")
	case <-time.After(10 * time.Millisecond):
	}
	close(release)
	<-done1
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("freed quota slot never unblocked the waiting task")
	}
	if !aSecond.Load() {
		t.Fatal("client a's second task never ran")
	}
}

// TestWeightedFairShareTieBreak pins fairness: at equal priority, the
// client with the lower running/weight load is granted first.
func TestWeightedFairShareTieBreak(t *testing.T) {
	q := NewTaskQueue(Config{})
	var mu sync.Mutex
	var order []string
	release := make(chan struct{})
	// Client a holds one running slot...
	q.Push(Class{Client: "a"}, func(time.Duration) { <-release })
	runA, _ := q.Pop()
	doneA := make(chan struct{})
	go func() { runA(); close(doneA) }()

	// ...so at equal priority, idle client b outranks a's next task even
	// though a enqueued first.
	pushTagged(q, Class{Client: "a"}, "a2", &order, &mu)
	pushTagged(q, Class{Client: "b"}, "b1", &order, &mu)
	run, _ := q.Pop()
	run()
	if order[0] != "b1" {
		t.Fatalf("fair share ignored: %v ran before b1", order)
	}
	// A weight-2 client with one running job has the same load as an idle
	// weight-1 client would at 0.5 — check the weight divides the load.
	pushTagged(q, Class{Client: "a", Weight: 4}, "a-weighted", &order, &mu)
	pushTagged(q, Class{Client: "c"}, "c1", &order, &mu)
	run, _ = q.Pop()
	run()
	// a has 1 running / weight 4 = 0.25; c has 0 running = 0. c still wins.
	if order[1] != "c1" {
		t.Fatalf("idle client must beat loaded weighted client: %v", order)
	}
	close(release)
	<-doneA
}

func TestQueueCloseDrains(t *testing.T) {
	q := NewTaskQueue(Config{})
	var ran atomic.Int32
	q.Push(Class{}, func(time.Duration) { ran.Add(1) })
	q.Push(Class{}, func(time.Duration) { ran.Add(1) })
	q.Close()
	for {
		run, ok := q.Pop()
		if !ok {
			break
		}
		run()
	}
	if ran.Load() != 2 {
		t.Fatalf("drained %d tasks, want 2", ran.Load())
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop returned a task after close and drain")
	}
}

func TestDepthsSnapshot(t *testing.T) {
	q := NewTaskQueue(Config{})
	q.Push(Class{Priority: 2, Client: "a"}, func(time.Duration) {})
	q.Push(Class{Priority: 2, Client: "b"}, func(time.Duration) {})
	q.Push(Class{Priority: 0, Client: "a"}, func(time.Duration) {})
	d := q.Depths()
	if d.Waiting != 3 || d.WaitingByPriority[2] != 2 || d.WaitingByPriority[0] != 1 {
		t.Fatalf("depths %+v", d)
	}
	if d.WaitingByClient["a"] != 2 || d.WaitingByClient["b"] != 1 {
		t.Fatalf("client depths %+v", d)
	}
}

func TestSemaphoreAffinityAndReconfig(t *testing.T) {
	s := NewSemaphore(2, Config{})
	ctx := context.Background()

	// First use always reconfigures (bitstream load).
	g1, err := s.Acquire(ctx, Class{Job: "j1"})
	if err != nil || !g1.Reconfig {
		t.Fatalf("first acquire: %+v, %v", g1, err)
	}
	s.Release(g1.Board, Class{Job: "j1"})

	// Same job again: affinity picks the warm board, no reconfig.
	g2, err := s.Acquire(ctx, Class{Job: "j1"})
	if err != nil || g2.Reconfig || g2.Board != g1.Board {
		t.Fatalf("warm acquire: %+v, %v (want board %d, no reconfig)", g2, err, g1.Board)
	}

	// A different job concurrently gets the other board and reconfigures.
	g3, err := s.Acquire(ctx, Class{Job: "j2"})
	if err != nil || !g3.Reconfig || g3.Board == g2.Board {
		t.Fatalf("cold acquire: %+v, %v", g3, err)
	}
	s.Release(g2.Board, Class{Job: "j1"})
	s.Release(g3.Board, Class{Job: "j2"})

	// An unidentified job always reconfigures.
	g4, err := s.Acquire(ctx, Class{})
	if err != nil || !g4.Reconfig {
		t.Fatalf("anonymous acquire: %+v, %v", g4, err)
	}
	s.Release(g4.Board, Class{})
}

func TestSemaphoreGrantsByPriority(t *testing.T) {
	s := NewSemaphore(1, Config{})
	ctx := context.Background()
	g, err := s.Acquire(ctx, Class{Job: "hold"})
	if err != nil {
		t.Fatal(err)
	}

	type res struct {
		tag string
		g   Grant
	}
	got := make(chan res, 2)
	var wg sync.WaitGroup
	start := make(chan struct{})
	acquire := func(tag string, class Class) {
		defer wg.Done()
		<-start
		gr, err := s.Acquire(ctx, class)
		if err != nil {
			t.Errorf("%s: %v", tag, err)
			return
		}
		got <- res{tag, gr}
		s.Release(gr.Board, class)
	}
	wg.Add(2)
	go acquire("low", Class{Priority: 0, Job: "low"})
	go acquire("high", Class{Priority: 9, Job: "high"})
	close(start)
	time.Sleep(20 * time.Millisecond) // both queued behind the held board
	s.Release(g.Board, Class{Job: "hold"})
	wg.Wait()
	close(got)
	first := (<-got).tag
	if first != "high" {
		t.Fatalf("board went to %q first, want the high-priority waiter", first)
	}
}

func TestSemaphoreCancelWhileWaiting(t *testing.T) {
	s := NewSemaphore(1, Config{})
	g, err := s.Acquire(context.Background(), Class{Job: "hold"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx, Class{Job: "waiter"})
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter got %v", err)
	}
	// The canceled waiter must be gone: releasing grants nobody and the
	// board is immediately reusable.
	s.Release(g.Board, Class{Job: "hold"})
	g2, err := s.Acquire(context.Background(), Class{Job: "hold"})
	if err != nil || g2.Reconfig {
		t.Fatalf("board not reusable after canceled waiter: %+v, %v", g2, err)
	}
	s.Release(g2.Board, Class{Job: "hold"})
}

func TestSemaphoreInvalidateForcesReconfig(t *testing.T) {
	s := NewSemaphore(1, Config{})
	ctx := context.Background()
	g, err := s.Acquire(ctx, Class{Job: "j1"})
	if err != nil {
		t.Fatal(err)
	}
	// An aborted programming leaves no usable bitstream behind.
	s.Invalidate(g.Board)
	s.Release(g.Board, Class{Job: "j1"})
	g2, err := s.Acquire(ctx, Class{Job: "j1"})
	if err != nil || !g2.Reconfig {
		t.Fatalf("invalidated board granted warm: %+v, %v", g2, err)
	}
	s.Release(g2.Board, Class{Job: "j1"})
}

// TestQueueDropRemovesOnlyQueued pins the canceled-batch fast path: Drop
// removes still-queued tickets (reporting which) and leaves popped tasks
// alone.
func TestQueueDropRemovesOnlyQueued(t *testing.T) {
	q := NewTaskQueue(Config{})
	var ran atomic.Int32
	t0 := q.Push(Class{}, func(time.Duration) { ran.Add(1) })
	t1 := q.Push(Class{}, func(time.Duration) { ran.Add(1) })
	t2 := q.Push(Class{}, func(time.Duration) { ran.Add(1) })
	run, ok := q.Pop() // pops t0 (FIFO among equals)
	if !ok {
		t.Fatal("pop failed")
	}
	removed := q.Drop([]*Ticket{t0, t1, t2})
	if len(removed) != 2 || removed[0] != 1 || removed[1] != 2 {
		t.Fatalf("removed %v, want [1 2] (t0 was already popped)", removed)
	}
	run()
	if ran.Load() != 1 {
		t.Fatalf("ran %d tasks, want only the popped one", ran.Load())
	}
	if d := q.Depths(); d.Waiting != 0 {
		t.Fatalf("dropped tasks still queued: %+v", d)
	}
	if again := q.Drop([]*Ticket{t1, nil}); len(again) != 0 {
		t.Fatalf("second drop reported %v", again)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, name := range []string{"", "priority", "fifo"} {
		if _, err := ParsePolicy(name); err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
	}
	if _, err := ParsePolicy("sjf"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestClassExpired(t *testing.T) {
	now := time.Unix(2000, 0)
	if (Class{}).Expired(now) {
		t.Fatal("zero deadline must never expire")
	}
	if !(Class{Deadline: now.Add(-time.Second)}).Expired(now) {
		t.Fatal("past deadline must expire")
	}
	if (Class{Deadline: now.Add(time.Second)}).Expired(now) {
		t.Fatal("future deadline must not expire")
	}
}
