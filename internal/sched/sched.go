// Package sched is the admission-side scheduler of the batch runner: it
// decides which waiting job runs next everywhere a job queues — for a
// worker goroutine in the pool, or for a modeled accelerator board in the
// device model. The rest of the system stays FIFO-free: batch.Pool feeds
// its workers from a TaskQueue and batch.Device hands out board tokens
// through a Semaphore, both ordered by a pluggable Policy.
//
// A job's demands travel in its Class: a priority level, an optional
// absolute deadline, a client (tenant) identity for quotas and fair
// sharing, and a configuration identity for the board-reconfiguration
// model. The default policy dequeues by effective priority — base priority
// plus an aging boost that grows while the job waits, so no class starves —
// breaking ties earliest-deadline-first, then by weighted fair share across
// clients, then by arrival order.
//
// Scheduling never changes what a job computes. Engines are pure functions
// of their inputs, so reordering the queue moves only wall-clock and wait
// statistics; for a fixed job set every policy yields byte-identical
// results.
//
// Observability rides the same boundary: the pool timestamps a job's queue
// push and pop (batch.SchedInfo), and internal/obs turns that pair into a
// sched-wait trace span and the flex_sched_queue_wait_seconds histogram.
// The policies themselves read the clock only for aging and deadlines, and
// tracing never influences dequeue order — enabling it cannot reorder a
// run, let alone change its bytes.
package sched

import (
	"errors"
	"fmt"
	"time"
)

// ErrDeadlineExceeded reports a job whose absolute deadline passed before
// the scheduler could start it: the job fails fast without running. It is
// re-exported as flex.ErrDeadlineExceeded.
var ErrDeadlineExceeded = errors.New("job deadline exceeded before start")

// Class describes one job's scheduling demands. The zero value is the
// neutral job: priority 0, no deadline, the anonymous client, no board
// configuration identity.
type Class struct {
	// Priority orders jobs: higher runs earlier. Levels are small integers
	// around 0 (negative = background); aging adds one effective level per
	// waited AgeStep, so any bounded priority gap closes in bounded time.
	Priority int
	// Deadline, when non-zero, is the job's absolute completion target.
	// Within one effective priority level the earliest deadline runs first,
	// and a job whose deadline has already passed when it is picked fails
	// fast with ErrDeadlineExceeded instead of running.
	Deadline time.Time
	// Client is the submitting tenant, for per-client quotas and weighted
	// fair sharing. Empty is the shared anonymous client.
	Client string
	// Job identifies the board configuration (bitstream) the job needs on
	// an accelerator: consecutive holders of one board with equal Job skip
	// the modeled reconfiguration delay. Empty never matches — an
	// unidentified job always reconfigures.
	Job string
	// Weight is the client's fair-share weight (0 = 1): at equal priority
	// and deadline, the client with the lowest running/weight ratio runs
	// first, so a weight-2 client sustains twice the throughput of a
	// weight-1 sibling under contention.
	Weight int
}

// Expired reports whether the class's deadline (if any) has passed at now.
func (c Class) Expired(now time.Time) bool {
	return !c.Deadline.IsZero() && now.After(c.Deadline)
}

// weight resolves the fair-share weight (>= 1).
func (c Class) weight() float64 {
	if c.Weight < 1 {
		return 1
	}
	return float64(c.Weight)
}

// Waiter is the policy's view of one queued job.
type Waiter struct {
	// Class is the job's scheduling class.
	Class Class
	// Seq is the arrival sequence number (lower = earlier).
	Seq uint64
	// Since is the enqueue time, the base of the aging boost.
	Since time.Time
	// Load is the job's client's current fair-share load — running jobs
	// divided by the client's weight — computed by the queue at selection
	// time. Policies use it to spread capacity across tenants.
	Load float64
}

// Policy orders waiting jobs. Less reports whether a should be granted
// before b at time now; implementations must be a strict weak ordering for
// any fixed now.
type Policy interface {
	// Name is the canonical policy name (ParsePolicy accepts it).
	Name() string
	// Less reports whether a runs before b at time now.
	Less(a, b Waiter, now time.Time) bool
}

// DefaultAgeStep is the aging interval of the default priority policy: a
// waiting job gains one effective priority level per DefaultAgeStep waited,
// which bounds starvation — a priority-0 job outranks fresh priority-p
// arrivals after at most p × DefaultAgeStep in the queue.
const DefaultAgeStep = 500 * time.Millisecond

// maxAgeBoost caps the aging boost so pathological wait times cannot
// overflow the effective priority arithmetic.
const maxAgeBoost = 1 << 20

// PriorityConfig tunes the Prioritized policy.
type PriorityConfig struct {
	// AgeStep is the aging interval: one effective priority level gained
	// per AgeStep waited. 0 = DefaultAgeStep; negative disables aging
	// (strict priorities, starvation possible).
	AgeStep time.Duration
}

// priorityPolicy is EDF-within-priority with aging and fair-share
// tie-breaking.
type priorityPolicy struct {
	ageStep time.Duration
}

// Prioritized builds the priority scheduler: effective priority (base +
// aging boost) descending, then earliest deadline first (no deadline sorts
// last), then lowest fair-share load, then arrival order.
func Prioritized(cfg PriorityConfig) Policy {
	step := cfg.AgeStep
	if step == 0 {
		step = DefaultAgeStep
	}
	if step < 0 {
		step = 0 // aging disabled
	}
	return priorityPolicy{ageStep: step}
}

// Default is the scheduler used when no policy is configured: Prioritized
// with the default aging step.
func Default() Policy { return Prioritized(PriorityConfig{}) }

// Name implements Policy.
func (priorityPolicy) Name() string { return "priority" }

// effective is the waiter's aged priority at now.
func (p priorityPolicy) effective(w Waiter, now time.Time) int {
	if p.ageStep <= 0 {
		return w.Class.Priority
	}
	waited := now.Sub(w.Since)
	if waited <= 0 {
		return w.Class.Priority
	}
	boost := int(waited / p.ageStep)
	if boost > maxAgeBoost {
		boost = maxAgeBoost
	}
	return w.Class.Priority + boost
}

// Less implements Policy.
func (p priorityPolicy) Less(a, b Waiter, now time.Time) bool {
	pa, pb := p.effective(a, now), p.effective(b, now)
	if pa != pb {
		return pa > pb
	}
	da, db := a.Class.Deadline, b.Class.Deadline
	switch {
	case !da.IsZero() && !db.IsZero():
		if !da.Equal(db) {
			return da.Before(db)
		}
	case !da.IsZero() || !db.IsZero():
		return !da.IsZero() // a real deadline beats none
	}
	if a.Load != b.Load {
		return a.Load < b.Load
	}
	return a.Seq < b.Seq
}

// fifoPolicy is strict arrival order.
type fifoPolicy struct{}

// FIFO builds the arrival-order scheduler — the pre-sched behaviour.
// Quotas still apply (enforcement is the queue's, not the policy's); only
// the ordering ignores priority, deadline and fairness.
func FIFO() Policy { return fifoPolicy{} }

// Name implements Policy.
func (fifoPolicy) Name() string { return "fifo" }

// Less implements Policy.
func (fifoPolicy) Less(a, b Waiter, _ time.Time) bool { return a.Seq < b.Seq }

// PolicyNames lists the canonical names ParsePolicy accepts, default first.
func PolicyNames() []string { return []string{"priority", "fifo"} }

// ParsePolicy maps a policy name to its Policy ("" = the default priority
// scheduler) — the shared knob parser of every CLI's -sched flag.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "", "priority":
		return Default(), nil
	case "fifo":
		return FIFO(), nil
	}
	return nil, fmt.Errorf("sched: unknown policy %q (want priority, fifo)", name)
}

// Config tunes a scheduled queue (TaskQueue or Semaphore).
type Config struct {
	// Policy orders waiting jobs; nil = Default().
	Policy Policy
	// Quota caps concurrently running jobs per client (0 = unlimited).
	// Jobs over quota stay queued — they are deferred, never rejected.
	Quota int
	// Now overrides the clock, for deterministic aging tests. nil =
	// time.Now.
	Now func() time.Time
}

func (c Config) policy() Policy {
	if c.Policy == nil {
		return Default()
	}
	return c.Policy
}

func (c Config) now() time.Time {
	if c.Now == nil {
		//flexvet:walltime the scheduler's aging/deadline clock orders queue pops, which never changes job output
		return time.Now()
	}
	return c.Now()
}

// waiter is the queue-internal bookkeeping shared by TaskQueue and
// Semaphore; each uses its own payload fields.
type waiter struct {
	class Class
	seq   uint64
	since time.Time

	// TaskQueue payload.
	run func(wait time.Duration)

	// Semaphore payload.
	grant   chan Grant
	granted bool
}

// pickBest returns the index of the best eligible waiter in ws at now, or
// -1 when every waiter is quota-blocked (or ws is empty). running counts
// per-client holders; it both enforces Config.Quota and feeds the policy's
// fair-share load.
func pickBest(cfg Config, ws []*waiter, running map[string]int, now time.Time) int {
	pol := cfg.policy()
	best := -1
	var bw Waiter
	for i, w := range ws {
		if cfg.Quota > 0 && running[w.class.Client] >= cfg.Quota {
			continue
		}
		cand := Waiter{
			Class: w.class, Seq: w.seq, Since: w.since,
			Load: float64(running[w.class.Client]) / w.class.weight(),
		}
		if best < 0 || pol.Less(cand, bw, now) {
			best, bw = i, cand
		}
	}
	return best
}
