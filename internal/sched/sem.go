package sched

import (
	"context"
	"sync"
)

// Grant is one successful Semaphore acquisition.
type Grant struct {
	// Board is the granted board index in [0, capacity).
	Board int
	// Reconfig reports that the board's last configuration differs from
	// the acquiring class's Job (including a board's first use, which must
	// load its bitstream) — the condition that charges the modeled
	// reconfiguration delay.
	Reconfig bool
	// Contended reports the acquisition had to wait for a board instead of
	// being granted on arrival.
	Contended bool
}

// Semaphore is a scheduled counting semaphore over identified board tokens:
// batch.Device's replacement for its FIFO channel semaphore. Waiters are
// granted boards in Policy order rather than arrival order, and each board
// remembers its last holder's configuration so the device model can charge
// reconfiguration only when consecutive holders differ. Board assignment is
// affinity-aware: a free board already configured for the acquiring job is
// preferred, minimizing modeled reconfigurations.
type Semaphore struct {
	mu  sync.Mutex
	cfg Config

	lastJob []string // per board: last holder's Class.Job ("" = never used)
	inUse   []bool
	free    int
	waiters []*waiter
	running map[string]int // per-client board holders (fair-share load)
	seq     uint64
}

// NewSemaphore builds a semaphore over capacity boards (capacity < 1 is
// clamped to 1).
func NewSemaphore(capacity int, cfg Config) *Semaphore {
	if capacity < 1 {
		capacity = 1
	}
	return &Semaphore{
		cfg:     cfg,
		lastJob: make([]string, capacity),
		inUse:   make([]bool, capacity),
		free:    capacity,
		running: make(map[string]int),
	}
}

// Capacity returns the board count.
func (s *Semaphore) Capacity() int { return len(s.lastJob) }

// Acquire blocks until the scheduler grants the caller a board or ctx is
// canceled. The caller must Release the granted board with the same class.
func (s *Semaphore) Acquire(ctx context.Context, class Class) (Grant, error) {
	s.mu.Lock()
	w := &waiter{
		class: class, seq: s.seq, since: s.cfg.now(),
		grant: make(chan Grant, 1),
	}
	s.seq++
	s.waiters = append(s.waiters, w)
	s.dispatch()
	granted := w.granted
	s.mu.Unlock()

	if granted {
		return <-w.grant, nil
	}
	select {
	case g := <-w.grant:
		g.Contended = true
		return g, nil
	case <-ctx.Done():
		s.mu.Lock()
		if w.granted {
			// The grant raced the cancellation: hand the board straight
			// back and let the next waiter have it.
			g := <-w.grant
			s.releaseLocked(g.Board, class)
		} else {
			for i, o := range s.waiters {
				if o == w {
					s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
					break
				}
			}
		}
		s.mu.Unlock()
		return Grant{}, ctx.Err()
	}
}

// Release returns a granted board; class must match the Acquire that was
// granted it (it keys the fair-share accounting).
func (s *Semaphore) Release(board int, class Class) {
	s.mu.Lock()
	s.releaseLocked(board, class)
	s.mu.Unlock()
}

// Invalidate clears a board's remembered configuration — the holder's
// programming was aborted, so the board carries no usable bitstream and
// the next holder must reconfigure whoever it is. Call before Release.
func (s *Semaphore) Invalidate(board int) {
	s.mu.Lock()
	if board >= 0 && board < len(s.lastJob) {
		s.lastJob[board] = ""
	}
	s.mu.Unlock()
}

func (s *Semaphore) releaseLocked(board int, class Class) {
	if board < 0 || board >= len(s.inUse) || !s.inUse[board] {
		return
	}
	s.inUse[board] = false
	s.free++
	s.running[class.Client]--
	if s.running[class.Client] <= 0 {
		delete(s.running, class.Client)
	}
	s.dispatch()
}

// dispatch grants free boards to waiters in policy order. Caller holds mu.
func (s *Semaphore) dispatch() {
	now := s.cfg.now()
	for s.free > 0 && len(s.waiters) > 0 {
		i := pickBest(s.cfg, s.waiters, s.running, now)
		if i < 0 {
			return
		}
		w := s.waiters[i]
		s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
		b := s.chooseBoard(w.class.Job)
		s.inUse[b] = true
		s.free--
		reconfig := w.class.Job == "" || s.lastJob[b] != w.class.Job
		s.lastJob[b] = w.class.Job
		s.running[w.class.Client]++
		w.granted = true
		w.grant <- Grant{Board: b, Reconfig: reconfig}
	}
}

// chooseBoard picks a free board, preferring one already configured for
// job (skipping a reconfiguration); ties fall to the lowest index.
func (s *Semaphore) chooseBoard(job string) int {
	first := -1
	for b := range s.inUse {
		if s.inUse[b] {
			continue
		}
		if job != "" && s.lastJob[b] == job {
			return b
		}
		if first < 0 {
			first = b
		}
	}
	return first
}
