package fpga

import (
	"testing"

	"github.com/flex-eda/flex/internal/fop"
)

func TestClock(t *testing.T) {
	c := Clock{MHz: 285}
	if got := c.Seconds(285e6); got < 0.999 || got > 1.001 {
		t.Fatalf("285M cycles at 285MHz = %v s, want 1", got)
	}
	if (Clock{}).Seconds(285e6) != c.Seconds(285e6) {
		t.Fatal("zero clock must default to 285 MHz")
	}
}

func TestBRAMAccessCycles(t *testing.T) {
	plain := BRAM{ReadPorts: 2}
	// Four adjacent rows, 2 ports: two cycles.
	if got := plain.AccessCycles([]int{0, 1, 2, 3}); got != 2 {
		t.Fatalf("plain 4 rows = %d cycles, want 2", got)
	}
	banked := BRAM{ReadPorts: 2, OddEven: true}
	// Odd-even banking: 2 odd + 2 even rows served in one cycle
	// ("accessing four adjacent cells ... now takes a single cycle").
	if got := banked.AccessCycles([]int{0, 1, 2, 3}); got != 1 {
		t.Fatalf("banked 4 rows = %d cycles, want 1", got)
	}
	fast := BRAM{ReadPorts: 2, DoubleRate: true}
	if got := fast.AccessCycles([]int{0, 1, 2, 3}); got != 1 {
		t.Fatalf("double-rate 4 rows = %d cycles, want 1", got)
	}
	if got := plain.AccessCycles(nil); got != 0 {
		t.Fatalf("empty access = %d, want 0", got)
	}
	if got := plain.AccessCycles([]int{5}); got != 1 {
		t.Fatalf("single access = %d, want 1", got)
	}
}

func TestSorterCycles(t *testing.T) {
	if SorterCycles(0) != 1 || SorterCycles(1) != 1 {
		t.Fatal("degenerate sorter cycles wrong")
	}
	if SorterCycles(16) != 16 {
		t.Fatalf("16-element insertion sort = %v, want 16", SorterCycles(16))
	}
	// Longer inputs pay merge passes, superlinear but far below n log n.
	if SorterCycles(256) <= 256 || SorterCycles(256) > 256*4 {
		t.Fatalf("256-element sort = %v cycles, implausible", SorterCycles(256))
	}
}

// sample returns a representative region trace, matching the per-region
// averages measured on a real 1200-cell, 70%-density legalization run
// (see the calibration test below).
func sample() Trace {
	return Trace{
		Points:        33,
		SortedCells:   20,
		ChainSubcells: 1980,
		VisitsByH:     [5]int{0, 1070, 287, 86, 19},
		OrigSubcells:  4753,
		RawBps:        381,
		MergedBps:     215,
		CommitMoved:   12,
	}
}

func TestFig8LadderOrdering(t *testing.T) {
	tr := sample()
	normal := PEConfig{Pipeline: NormalPipeline, SACS: ShiftOriginal, NumPE: 1}
	sacs := PEConfig{Pipeline: NormalPipeline, SACS: SACSParal, NumPE: 1}
	mg := PEConfig{Pipeline: MultiGranularity, SACS: SACSParal, NumPE: 1}
	mg2 := PEConfig{Pipeline: MultiGranularity, SACS: SACSParal, NumPE: 2}

	c0 := normal.RegionCycles(tr)
	c1 := sacs.RegionCycles(tr)
	c2 := mg.RegionCycles(tr)
	c3 := mg2.RegionCycles(tr)
	if !(c0 > c1 && c1 > c2 && c2 > c3) {
		t.Fatalf("ladder not monotone: %v > %v > %v > %v expected", c0, c1, c2, c3)
	}
	// Paper bands: SACS 2–3×, multi-granularity an extra 1–2×, 2 PEs
	// 1.6–1.9×.
	if s := c0 / c1; s < 1.8 || s > 3.5 {
		t.Fatalf("SACS speedup %v outside [1.8, 3.5]", s)
	}
	if s := c1 / c2; s < 1.0 || s > 2.5 {
		t.Fatalf("multi-granularity speedup %v outside [1.0, 2.5]", s)
	}
	if s := c2 / c3; s < 1.4 || s > 2.0 {
		t.Fatalf("2-PE speedup %v outside [1.4, 2.0]", s)
	}
}

func TestFig9BandwidthGainTracksTallCells(t *testing.T) {
	short := sample()
	short.VisitsByH = [5]int{0, 600, 120, 50, 0} // no cells taller than 3 rows
	tall := sample()
	tall.VisitsByH = [5]int{0, 400, 120, 50, 200} // many 4-row cells

	ar := PEConfig{Pipeline: NormalPipeline, SACS: SACSArch, NumPE: 1}
	bw := PEConfig{Pipeline: NormalPipeline, SACS: SACSImpBW, NumPE: 1}

	// No tall cells: ImpBW must give no speedup at all.
	if a, b := ar.RegionCycles(short), bw.RegionCycles(short); a != b {
		t.Fatalf("ImpBW changed cycles without tall cells: %v vs %v", a, b)
	}
	// Tall cells: ImpBW must strictly help.
	if a, b := ar.RegionCycles(tall), bw.RegionCycles(tall); b >= a {
		t.Fatalf("ImpBW did not help with tall cells: %v vs %v", a, b)
	}
}

func TestFig9LadderOrdering(t *testing.T) {
	tr := sample()
	prev := -1.0
	for _, lvl := range []SACSLevel{SACSBase, SACSArch, SACSImpBW, SACSParal} {
		cfg := PEConfig{Pipeline: NormalPipeline, SACS: lvl, NumPE: 1}
		c := cfg.RegionCycles(tr)
		if prev > 0 && c > prev {
			t.Fatalf("SACS ladder not monotone at level %d: %v > %v", lvl, c, prev)
		}
		prev = c
	}
}

func TestTwoPENeverSlower(t *testing.T) {
	for _, tr := range []Trace{sample(), {Points: 1, SortedCells: 4, ChainSubcells: 8, RawBps: 10, MergedBps: 8}} {
		one := PEConfig{Pipeline: MultiGranularity, SACS: SACSParal, NumPE: 1}
		two := PEConfig{Pipeline: MultiGranularity, SACS: SACSParal, NumPE: 2}
		if two.RegionCycles(tr) > one.RegionCycles(tr) {
			t.Fatalf("2 PEs slower than 1 on %+v", tr)
		}
	}
}

func TestTraceFromFOP(t *testing.T) {
	var st fop.Stats
	st.InsertionPoints = 5
	st.Shift.SortedCells = 10
	st.Shift.SubcellVisits = 100
	st.ChainVisitsByH = [5]int{0, 60, 20, 10, 10}
	st.Curve.RawBps = 50
	st.Curve.MergedBps = 30
	tr := TraceFromFOP(st, 7)
	if tr.Points != 5 || tr.SortedCells != 10 || tr.ChainSubcells != 100 ||
		tr.RawBps != 50 || tr.MergedBps != 30 || tr.CommitMoved != 7 {
		t.Fatalf("trace conversion wrong: %+v", tr)
	}
	if tr.OrigSubcells != int(100*OrigPassInflation) {
		t.Fatalf("orig estimate %d", tr.OrigSubcells)
	}
	st.OriginalShift.SubcellVisits = 777
	tr = TraceFromFOP(st, 0)
	if tr.OrigSubcells != 777 {
		t.Fatal("measured original visits must take precedence")
	}
}

func TestResourceTable2(t *testing.T) {
	one := Estimate(1)
	two := Estimate(2)
	wantOne := Resources{LUTs: 59837, FFs: 67326, BRAMs: 391, DSPs: 8}
	wantTwo := Resources{LUTs: 86632, FFs: 91603, BRAMs: 738, DSPs: 12}
	if one != wantOne {
		t.Fatalf("1-PE estimate %v, want %v", one, wantOne)
	}
	if two != wantTwo {
		t.Fatalf("2-PE estimate %v, want %v", two, wantTwo)
	}
	if !two.FitsIn(AlveoU50) {
		t.Fatal("2-PE config must fit the U50")
	}
	// Doubling PEs costs less than 2× LUT/FF because the sorter and
	// control modules are shared (Sec. 5.4).
	if two.LUTs >= 2*one.LUTs || two.FFs >= 2*one.FFs {
		t.Fatal("shared modules not reflected in scaling")
	}
}

func TestMaxPEsBRAMBound(t *testing.T) {
	n := MaxPEs(AlveoU50)
	if n < 2 {
		t.Fatalf("MaxPEs = %d, want >= 2", n)
	}
	// BRAM must be the binding resource at the limit (Sec. 5.4).
	at := Estimate(n)
	next := Estimate(n + 1)
	if next.BRAMs <= AlveoU50.BRAMs {
		t.Fatalf("expected BRAM to bind: n=%d at=%v next=%v", n, at, next)
	}
	if !at.FitsIn(AlveoU50) {
		t.Fatal("Estimate(MaxPEs) must fit")
	}
}

func TestURAMExtendsScaling(t *testing.T) {
	bram := MaxPEs(AlveoU50)
	uram := MaxPEsURAM(AlveoU50, U50URAMs)
	if uram <= bram {
		t.Fatalf("URAM remap should allow more PEs: %d vs %d", uram, bram)
	}
	res, urams := EstimateURAM(uram)
	if !res.FitsIn(AlveoU50) || urams > U50URAMs {
		t.Fatalf("EstimateURAM(%d) does not fit: %v, %d URAMs", uram, res, urams)
	}
	// The clock penalty makes per-cycle time worse; a URAM-clocked config
	// must price the same cycles slower.
	fast := PEConfig{Pipeline: MultiGranularity, SACS: SACSParal, NumPE: 2}
	slow := fast
	slow.ClockMHz = URAMClockMHz
	if slow.Seconds(1e6) <= fast.Seconds(1e6) {
		t.Fatal("URAM clock penalty not reflected")
	}
}

func TestCommitCycles(t *testing.T) {
	cfg := DefaultPE
	if cfg.CommitCycles(Trace{CommitMoved: 0}) <= 0 {
		t.Fatal("commit cycles must include fill")
	}
	if cfg.CommitCycles(Trace{CommitMoved: 10}) <= cfg.CommitCycles(Trace{CommitMoved: 1}) {
		t.Fatal("commit cycles must grow with moved cells")
	}
}

func TestEmptyTrace(t *testing.T) {
	var tr Trace
	if c := DefaultPE.RegionCycles(tr); c <= 0 {
		t.Fatalf("empty trace cycles = %v, want > 0", c)
	}
}
