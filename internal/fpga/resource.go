package fpga

import "fmt"

// Resources is one module's (or configuration's) FPGA footprint.
type Resources struct {
	LUTs, FFs, BRAMs, DSPs int
}

// Add returns the sum of two footprints.
func (r Resources) Add(o Resources) Resources {
	return Resources{r.LUTs + o.LUTs, r.FFs + o.FFs, r.BRAMs + o.BRAMs, r.DSPs + o.DSPs}
}

// Scale returns the footprint multiplied by n.
func (r Resources) Scale(n int) Resources {
	return Resources{r.LUTs * n, r.FFs * n, r.BRAMs * n, r.DSPs * n}
}

// FitsIn reports whether r fits within the available budget.
func (r Resources) FitsIn(avail Resources) bool {
	return r.LUTs <= avail.LUTs && r.FFs <= avail.FFs && r.BRAMs <= avail.BRAMs && r.DSPs <= avail.DSPs
}

func (r Resources) String() string {
	return fmt.Sprintf("LUT=%d FF=%d BRAM=%d DSP=%d", r.LUTs, r.FFs, r.BRAMs, r.DSPs)
}

// AlveoU50 is the available budget of the paper's board (Table 2 bottom row).
var AlveoU50 = Resources{LUTs: 871680, FFs: 1743360, BRAMs: 1344, DSPs: 5952}

// Module is a named component of the accelerator with its footprint and
// whether it is replicated per FOP PE or shared across the cluster.
type Module struct {
	Name   string
	PerPE  bool
	Budget Resources
}

// Modules returns the architectural breakdown of Fig. 4, calibrated so the
// 1-PE and 2-PE totals match the paper's Table 2 exactly. The ahead sorter,
// controller, insertion-point module, synchronization module and collector
// are shared; the SACS PE, the two traversal PEs and the per-PE table RAM
// replicate with the PE count (which is why doubling the PEs costs less
// than 2× in LUT/FF).
func Modules() []Module {
	return []Module{
		{Name: "controller", PerPE: false, Budget: Resources{7042, 11049, 6, 0}},
		{Name: "insertion-point-module", PerPE: false, Budget: Resources{10000, 13000, 22, 2}},
		{Name: "ahead-sorter", PerPE: false, Budget: Resources{9000, 10000, 12, 2}},
		{Name: "synchronization-module", PerPE: false, Budget: Resources{3000, 4000, 2, 0}},
		{Name: "collector", PerPE: false, Budget: Resources{4000, 5000, 2, 0}},
		{Name: "sacs-pe", PerPE: true, Budget: Resources{12000, 11000, 120, 2}},
		{Name: "fwdt-pe", PerPE: true, Budget: Resources{5500, 5200, 40, 1}},
		{Name: "bwdt-pe", PerPE: true, Budget: Resources{5500, 5200, 40, 1}},
		{Name: "pe-tables (LCT/LCPT/CST/LSC)", PerPE: true, Budget: Resources{3795, 2877, 147, 0}},
	}
}

// Estimate returns the total footprint of a cluster with numPE FOP PEs.
func Estimate(numPE int) Resources {
	if numPE < 1 {
		numPE = 1
	}
	var total Resources
	for _, m := range Modules() {
		if m.PerPE {
			total = total.Add(m.Budget.Scale(numPE))
		} else {
			total = total.Add(m.Budget)
		}
	}
	return total
}

// MaxPEs returns how many FOP PEs fit in the available budget — the
// scalability headroom discussed in Sec. 5.4 (BRAM binds first; URAM would
// extend it at a clock penalty).
func MaxPEs(avail Resources) int {
	n := 1
	for Estimate(n + 1).FitsIn(avail) {
		n++
	}
	return n
}

// URAM remapping (Sec. 5.4's "this can be addressed by using URAM with a
// slight FPGA clock frequency penalty"): the U50 carries 640 URAM blocks;
// each URAM block substitutes for about four BRAM-equivalent table blocks,
// and the deeper cascades cost clock headroom.
const (
	// U50URAMs is the board's UltraRAM block count.
	U50URAMs = 640
	// uramPerBRAM is how many BRAM-equivalents one URAM block replaces.
	uramPerBRAM = 4
	// URAMClockMHz is the de-rated kernel clock once URAM cascades sit on
	// the table paths.
	URAMClockMHz = 250.0
)

// EstimateURAM returns the footprint of a cluster whose per-PE tables are
// remapped to URAM, and the number of URAM blocks used. LUT/FF/DSP are
// unchanged; the BRAM column keeps only the shared-module blocks.
func EstimateURAM(numPE int) (Resources, int) {
	if numPE < 1 {
		numPE = 1
	}
	var total Resources
	urams := 0
	for _, m := range Modules() {
		if m.PerPE {
			b := m.Budget
			urams += (b.BRAMs*numPE + uramPerBRAM - 1) / uramPerBRAM
			b.BRAMs = 0
			total = total.Add(b.Scale(numPE))
		} else {
			total = total.Add(m.Budget)
		}
	}
	return total, urams
}

// MaxPEsURAM returns how many FOP PEs fit once per-PE tables move to URAM.
func MaxPEsURAM(avail Resources, availURAM int) int {
	n := 1
	for {
		res, urams := EstimateURAM(n + 1)
		if !res.FitsIn(avail) || urams > availURAM {
			return n
		}
		n++
	}
}
