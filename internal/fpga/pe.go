package fpga

import (
	"github.com/flex-eda/flex/internal/fop"
)

// Trace is the FPGA-relevant workload of one target cell's FOP invocation,
// derived from the software op counters.
type Trace struct {
	Points        int    // insertion points evaluated
	SortedCells   int    // localCells through the per-region ahead sorter
	ChainSubcells int    // subcell visits, sort-ahead form (per region total)
	VisitsByH     [5]int // chain-cell visits by height (index min(h,4))
	OrigSubcells  int    // subcell visits of the original multi-pass shift
	RawBps        int    // breakpoints entering the bp sorter
	MergedBps     int    // breakpoints after merging
	CommitMoved   int    // cells moved by insert & update (step e)
}

// TraceFromFOP converts a per-target fop.Stats delta into an FPGA trace.
// When the original shifting was not instrumented, its subcell count is
// estimated from the sort-ahead count with the average pass-inflation
// factor measured on the instrumented subset (~2.4 passes vs 2).
func TraceFromFOP(st fop.Stats, commitMoved int) Trace {
	tr := Trace{
		Points:        st.InsertionPoints,
		SortedCells:   st.Shift.SortedCells,
		ChainSubcells: st.Shift.SubcellVisits,
		OrigSubcells:  st.OriginalShift.SubcellVisits,
		RawBps:        st.Curve.RawBps,
		MergedBps:     st.Curve.MergedBps,
		CommitMoved:   commitMoved,
	}
	copy(tr.VisitsByH[:], st.ChainVisitsByH[:])
	if tr.OrigSubcells == 0 {
		tr.OrigSubcells = int(float64(tr.ChainSubcells) * OrigPassInflation)
	}
	return tr
}

// OrigPassInflation is the default ratio between the original multi-pass
// shifting's subcell visits and the sort-ahead single-pass count, used when
// the original algorithm was not instrumented directly.
const OrigPassInflation = 2.4

// PipelineKind selects the FOP PE dataflow organization (Fig. 5).
type PipelineKind int

const (
	// NormalPipeline: each operator waits for its predecessor and round-
	// trips intermediates through RAM.
	NormalPipeline PipelineKind = iota
	// MultiGranularity: stream I/O inside fwdtraverse/bwdtraverse plus
	// coarse-grained overlap between them and across insertion points.
	MultiGranularity
)

// SACSLevel selects the cell-shifting implementation ladder (Fig. 9).
type SACSLevel int

const (
	// ShiftOriginal: the multi-pass algorithm on the FPGA (the pre-SACS
	// baseline of Fig. 8).
	ShiftOriginal SACSLevel = iota
	// SACSBase: sort-ahead algorithm, unpipelined PE.
	SACSBase
	// SACSArch: the pipelined dataflow architecture of Fig. 7.
	SACSArch
	// SACSImpBW: + odd-even banking, ping-pong init, double-rate tables.
	SACSImpBW
	// SACSParal: + left-move and right-move phases on parallel PEs.
	SACSParal
)

// PEConfig describes one FOP accelerator configuration.
type PEConfig struct {
	Pipeline PipelineKind
	SACS     SACSLevel
	NumPE    int     // parallel FOP PEs in the cluster (1 or 2)
	ClockMHz float64 // 0 = DefaultClockMHz
}

// DefaultPE is the full FLEX configuration: multi-granularity pipeline,
// fully optimized SACS, two FOP PEs.
var DefaultPE = PEConfig{Pipeline: MultiGranularity, SACS: SACSParal, NumPE: 2}

// Calibrated cycle-model constants. They are architectural estimates, not
// RTL measurements; bench_test.go reproduces the resulting ladder positions
// against the paper's bands (Figs. 8 and 9).
const (
	// origVisitCycles: one subcell check of the multi-pass algorithm —
	// read/compare/conditional-write against scattered tables. Calibrated
	// on real region traces so that the full Fig. 8 "+SACS" step lands in
	// the paper's 2–3× band.
	origVisitCycles = 3.4
	// baseVisitCycles: one subcell check of sort-ahead shifting on the
	// unpipelined PE (predictable access order, but no stage overlap).
	baseVisitCycles = 4.0
	// ramCoupling: per-item penalty of materializing an operator's output
	// in RAM and re-reading it in the next operator (Normal pipeline).
	ramCoupling = 2.0
	// phaseOverlap: critical-path share of the larger shifting phase when
	// left-move and right-move run on parallel PEs (imbalance plus
	// arbitration on the shared tables).
	phaseOverlap = 0.7
	// stallFactor: share of non-dominant stage work NOT hidden by the
	// multi-granularity overlap (dependency stalls, coarse barriers
	// between the bidirectional traversals).
	stallFactor = 0.85
	syncCycles  = 6.0 // per-pair result comparison in the 2-PE cluster
)

// shiftCyclesPerRegion prices the shifting work of all insertion points of
// one region under the configured SACS level.
func (c PEConfig) shiftCyclesPerRegion(tr Trace) float64 {
	if tr.Points == 0 {
		return 0
	}
	switch c.SACS {
	case ShiftOriginal:
		return float64(tr.OrigSubcells) * origVisitCycles
	case SACSBase:
		return SorterCycles(tr.SortedCells) + float64(tr.ChainSubcells)*baseVisitCycles
	default:
	}
	// Pipelined architectures: per-cell-visit initiation interval gated by
	// table bandwidth. Each visit issues one CST query and one LSC fetch
	// per occupied row; the dual-ported tables stream two row requests per
	// cycle, which the two-cycle fetch/compute overlap budget absorbs for
	// cells up to three rows tall. Taller cells serialize the extra row
	// pairs (II = 2 + 2·(h−3)). The ImpBW optimizations — odd-even
	// banking, double-rate clock domain, LCT duplication — quadruple row
	// bandwidth so every height fits the two-cycle budget, which is why
	// the Fig. 9 gain tracks the share of cells taller than three rows.
	//
	// The ahead-sorter sorts once per region, but every insertion point's
	// shifting pass re-streams the sorted order out of the sorter BRAM
	// (one element per cycle) — the pre-sorting cost the paper measures at
	// ~10% of FOP time in Fig. 6(g).
	cycles := SortStreamCycles(tr) + StreamFill*float64(tr.Points)
	for h := 1; h <= 4; h++ {
		ii := 2.0
		if h > 3 && c.SACS < SACSImpBW {
			ii = 2 + 2*float64(h-3)
		}
		cycles += ii * float64(tr.VisitsByH[h])
	}
	if c.SACS >= SACSParal {
		// Left and right phases on parallel PEs: critical path is the
		// larger phase; the shared ahead-sorter is not duplicated and its
		// one-time sort stays on the critical path.
		sorter := SorterCycles(tr.SortedCells)
		cycles = sorter + (cycles-sorter)*phaseOverlap
	}
	return cycles
}

// SortStreamCycles is the total ahead-sorter occupancy for a region: one
// insertion/merge sort of the localCells plus one streamed re-read per
// insertion point at two elements per cycle (the sorter's result RAM is
// dual-ported).
func SortStreamCycles(tr Trace) float64 {
	return SorterCycles(tr.SortedCells) + float64(tr.Points)*float64(tr.SortedCells)/2
}

// curveCyclesPerRegion prices the breakpoint pipeline for all insertion
// points of one region.
func (c PEConfig) curveCyclesPerRegion(tr Trace) (sortC, fwdC, bwdC float64) {
	nb, mb := float64(tr.RawBps), float64(tr.MergedBps)
	points := float64(tr.Points)
	if points == 0 {
		return 0, 0, 0
	}
	switch c.Pipeline {
	case NormalPipeline:
		// Five discrete operators, each materializing results in RAM:
		// sort bp, merge bp, sum slopesR, sum slopesL, calculate value.
		per := 1 + ramCoupling
		sortC = nb*per + StreamFill*points
		merge := nb*per + StreamFill*points
		sumR := mb*per + StreamFill*points
		sumL := mb*per + StreamFill*points
		calc := mb*per + StreamFill*points
		return sortC, merge + sumR, sumL + calc
	default:
		// Stream I/O: the sorter consumes shifting output as it appears;
		// fwdtraverse fuses fwdmerge+sum slopesR+calculate vR at II=1;
		// bwdtraverse fuses the backward half.
		sortC = nb + StreamFill*points
		fwdC = nb + StreamFill*points
		bwdC = mb + StreamFill*points
		return sortC, fwdC, bwdC
	}
}

// RegionCycles prices one target's full FOP on the configured cluster.
func (c PEConfig) RegionCycles(tr Trace) float64 {
	if tr.Points == 0 {
		return StreamFill
	}
	shiftC := c.shiftCyclesPerRegion(tr)
	sortC, fwdC, bwdC := c.curveCyclesPerRegion(tr)

	var perRegion float64
	if c.Pipeline == MultiGranularity {
		// Operators overlap via stream I/O: the dominant stage sets the
		// pace and a stallFactor share of the remaining stage work leaks
		// past the overlap (fill bubbles, the coarse barrier between the
		// bidirectional traversals, dependency stalls).
		stageMax, sum := shiftC, shiftC
		for _, s := range []float64{sortC, fwdC, bwdC} {
			sum += s
			if s > stageMax {
				stageMax = s
			}
		}
		perRegion = stageMax + stallFactor*(sum-stageMax) + StreamFill
	} else {
		// Sequential operators.
		perRegion = shiftC + sortC + fwdC + bwdC
	}

	if c.NumPE >= 2 && tr.Points >= 2 {
		// N PEs evaluate N insertion points of the same region
		// concurrently; the shared ahead-sorter runs once. Each point
		// group synchronizes with a short displacement comparison.
		n := c.NumPE
		if n > tr.Points {
			n = tr.Points
		}
		groups := float64((tr.Points + n - 1) / n)
		shared := SorterCycles(tr.SortedCells)
		work := perRegion - shared
		if work < 0 {
			work = 0
		}
		perRegion = shared + work*groups/float64(tr.Points) + syncCycles*groups
	}
	return perRegion
}

// ShiftCycles prices only the cell-shifting stage of a region's FOP — the
// quantity the Fig. 9 SACS ladder is normalized on.
func (c PEConfig) ShiftCycles(tr Trace) float64 {
	return c.shiftCyclesPerRegion(tr)
}

// CommitCycles prices step e) when it is offloaded to the FPGA (the Fig. 10
// ablation): one shifting pass at commit plus a write-back per moved cell.
func (c PEConfig) CommitCycles(tr Trace) float64 {
	return float64(tr.CommitMoved)*3 + StreamFill
}

// Clock returns the configured clock.
func (c PEConfig) Clock() Clock { return Clock{MHz: c.ClockMHz} }

// Seconds converts cycles to seconds at the configured clock.
func (c PEConfig) Seconds(cycles float64) float64 { return c.Clock().Seconds(cycles) }
