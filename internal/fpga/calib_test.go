package fpga

import (
	"fmt"
	"testing"

	"github.com/flex-eda/flex/internal/fop"
)

// TestCalibrationReport prints the ladder on a real-shaped trace mix; used
// for tuning, kept as living documentation of the calibration workload.
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration report")
	}
	_ = fop.Stats{}
	traces := []Trace{
		{Points: 33, SortedCells: 25, ChainSubcells: 700, VisitsByH: [5]int{0, 380, 130, 60, 30}, OrigSubcells: 1680, RawBps: 260, MergedBps: 200},
		{Points: 8, SortedCells: 8, ChainSubcells: 90, VisitsByH: [5]int{0, 60, 15, 5, 0}, OrigSubcells: 216, RawBps: 50, MergedBps: 40},
	}
	sum := func(cfg PEConfig) float64 {
		var tot float64
		for _, tr := range traces {
			tot += cfg.RegionCycles(tr)
		}
		return tot
	}
	base := sum(PEConfig{Pipeline: NormalPipeline, SACS: ShiftOriginal, NumPE: 1})
	sacs := sum(PEConfig{Pipeline: NormalPipeline, SACS: SACSParal, NumPE: 1})
	mg := sum(PEConfig{Pipeline: MultiGranularity, SACS: SACSParal, NumPE: 1})
	mg2 := sum(PEConfig{Pipeline: MultiGranularity, SACS: SACSParal, NumPE: 2})
	fmt.Printf("SACS %.2f MG %.2f (step %.2f) 2PE %.2f (step %.2f)\n",
		base/sacs, base/mg, sacs/mg, base/mg2, mg/mg2)
}
