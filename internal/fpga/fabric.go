// Package fpga is a cycle-approximate model of the FLEX accelerator fabric
// (Figs. 4, 5 and 7 of the paper): BRAM banks with limited ports, the
// insertion/merge ahead-sorter, the SACS processing element with its
// bandwidth optimizations, the FOP PE cluster with normal vs
// multi-granularity pipelining, and an Alveo-U50-class resource estimator.
//
// The models consume the operation traces the software legalizer records
// (internal/fop, internal/mgl) and price them in clock cycles. They aim to
// reproduce the paper's *relative* effects — the speedup ladders of Figs. 8
// and 9 and the resource table (Table 2) — not RTL-exact timing.
package fpga

import "math"

// DefaultClockMHz is the paper's Alveo U50 kernel clock.
const DefaultClockMHz = 285.0

// Clock converts cycles to seconds at a given frequency.
type Clock struct {
	MHz float64
}

// Seconds converts a cycle count to seconds.
func (c Clock) Seconds(cycles float64) float64 {
	mhz := c.MHz
	if mhz <= 0 {
		mhz = DefaultClockMHz
	}
	return cycles / (mhz * 1e6)
}

// BRAM models one logical memory built from block RAMs: a number of
// read ports, optional odd/even row banking, and an optional double-rate
// clock domain. AccessCycles answers "how many cycles to read these rows in
// one request", the quantity that gates multi-row-cell handling (Sec. 4.3.2).
type BRAM struct {
	ReadPorts  int  // ports per bank (2 for Xilinx TDP BRAM)
	OddEven    bool // rows split into odd/even banks (doubles row bandwidth)
	DoubleRate bool // memory clocked at 2× the PE (halves effective cycles)
}

// AccessCycles returns the PE cycles needed to read the given row indices.
func (b BRAM) AccessCycles(rows []int) int {
	if len(rows) == 0 {
		return 0
	}
	ports := b.ReadPorts
	if ports <= 0 {
		ports = 1
	}
	var cycles int
	if b.OddEven {
		odd, even := 0, 0
		for _, r := range rows {
			if r%2 == 0 {
				even++
			} else {
				odd++
			}
		}
		cycles = maxI(ceilDiv(odd, ports), ceilDiv(even, ports))
	} else {
		cycles = ceilDiv(len(rows), ports)
	}
	if b.DoubleRate {
		cycles = ceilDiv(cycles, 2)
	}
	if cycles < 1 {
		cycles = 1
	}
	return cycles
}

// SorterCycles models the combined insertion/merge ahead-sorter
// (Sec. 4.3.1): a streaming insertion sorter absorbs one element per cycle
// for short runs; longer inputs pay merge passes at four elements per cycle
// per pass.
func SorterCycles(n int) float64 {
	if n <= 1 {
		return 1
	}
	const insertionWindow = 16
	cycles := float64(n) // streaming absorption, II=1
	if n > insertionWindow {
		passes := math.Ceil(math.Log2(float64(n) / insertionWindow))
		cycles += float64(n) * passes / 4
	}
	return cycles
}

// StreamFill is the pipeline fill latency charged when a streaming operator
// chain starts up.
const StreamFill = 8.0

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
