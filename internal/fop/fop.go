// Package fop implements FOP — finding the optimal placement position —
// the triple-loop bottleneck of the MGL algorithm (Sec. 2.3 of the FLEX
// paper). For a target cell and its localRegion it enumerates every
// insertion point (loop 1: candidate row spans; loop 2: slot partitions;
// loop 3: the per-point operator chain), evaluates the summed displacement
// curve of each point, and returns the position with minimum added
// displacement.
//
// Per insertion point the operator chain is exactly the paper's: cell
// shifting (chain offsets in sort-ahead form, optionally re-measured with
// the original multi-pass algorithm for instrumentation), breakpoint
// emission, and the sort/merge/sum-slopes/calculate-value pipeline from
// internal/curve, in either the original five-operator or the restructured
// streaming organization.
package fop

import (
	"github.com/flex-eda/flex/internal/curve"
	"github.com/flex-eda/flex/internal/geom"
	"github.com/flex-eda/flex/internal/region"
	"github.com/flex-eda/flex/internal/shift"
)

const negInf = -(1 << 50)

// Target carries the target cell's placement-relevant attributes.
type Target struct {
	GX, GY    int // global-placement position
	W, H      int
	ParityOK  func(y int) bool // row-parity predicate
	RowHeight int              // sites per row, for the vertical cost term
}

// Options selects the evaluation variants (the ablation axes of Figs. 5/6).
type Options struct {
	// Streamed selects the restructured fwdtraverse/bwdtraverse curve
	// pipeline instead of the original five-operator sequence. Results are
	// identical; only instrumentation differs.
	Streamed bool
	// MeasureOriginalShift additionally runs the original multi-pass
	// shifting algorithm per insertion point (on scratch positions) so its
	// pass counts are observable; positions are restored afterwards.
	MeasureOriginalShift bool
}

// Candidate is a scored placement option for the target.
type Candidate struct {
	X, Y      int
	Boundary2 int // slot boundary for the committing shift
	Cost      int // added displacement in sites (incl. target's own)
	Feasible  bool
}

// Better reports whether c beats o (lower cost; ties broken by lower x
// then lower y for determinism).
func (c Candidate) Better(o Candidate) bool {
	if !c.Feasible {
		return false
	}
	if !o.Feasible {
		return true
	}
	if c.Cost != o.Cost {
		return c.Cost < o.Cost
	}
	if c.Y != o.Y {
		return c.Y < o.Y
	}
	return c.X < o.X
}

// Stats aggregates the per-operator work of one FOP invocation, the raw
// material for every platform time model.
type Stats struct {
	CandidateRows   int
	InsertionPoints int
	ChainCells      int // cells visited by the offset sweeps (shift work)
	// ChainVisitsByH counts sweep visits by cell height (index min(h, 4));
	// the FPGA bandwidth model needs the multi-row access mix.
	ChainVisitsByH [5]int
	Shift          shift.Stats
	Curve          curve.Stats
	OriginalShift  shift.Stats // populated when MeasureOriginalShift is set
}

// Add accumulates other into st.
func (st *Stats) Add(other *Stats) {
	st.CandidateRows += other.CandidateRows
	st.InsertionPoints += other.InsertionPoints
	st.ChainCells += other.ChainCells
	for i := range st.ChainVisitsByH {
		st.ChainVisitsByH[i] += other.ChainVisitsByH[i]
	}
	addShift(&st.Shift, &other.Shift)
	st.Curve.RawBps += other.Curve.RawBps
	st.Curve.MergedBps += other.Curve.MergedBps
	st.Curve.SortOps += other.Curve.SortOps
	st.Curve.Traversal += other.Curve.Traversal
	addShift(&st.OriginalShift, &other.OriginalShift)
}

func addShift(dst, src *shift.Stats) {
	dst.Passes += src.Passes
	dst.SubcellVisits += src.SubcellVisits
	dst.Moves += src.Moves
	dst.SortedCells += src.SortedCells
	dst.SortOps += src.SortOps
}

// chainEntry records one cell swept into a shift chain and its offset.
type chainEntry struct {
	ci int
	o  int
}

// scratch holds the per-Best-call working memory so the triple loop runs
// allocation-free: every evalPoint reuses the same chain lists, row-offset
// array, hinge buffer, and curve evaluator. One scratch is private to one
// Best invocation, so concurrent Best calls (the batched engine's frozen
// evaluations) never share state.
type scratch struct {
	order   []int
	rowOff  []int
	left    []chainEntry
	right   []chainEntry
	inLeft  []bool // cell index -> claimed by the left chain
	bps     []curve.Breakpoint
	eval    curve.Evaluator
	centers []int
	bounds  []int
	saved   []int
}

// Best evaluates every insertion point in the region and returns the best
// candidate. The region's cell positions are left untouched.
func Best(reg *region.Region, t Target, opt Options, st *Stats) Candidate {
	if st == nil {
		st = &Stats{}
	}
	best := Candidate{Feasible: false}
	win := reg.Window
	var sc scratch

	// Ahead sort: one x-sort of the region's cells shared by every
	// insertion point, mirroring the hardware's single per-region sorter.
	order := sc.xOrder(reg)
	st.Shift.SortedCells += len(order)
	if n := len(order); n > 1 {
		logn := 0
		for v := n; v > 1; v >>= 1 {
			logn++
		}
		st.Shift.SortOps += n * logn
	}
	sc.rowOff = make([]int, len(reg.Segments))
	sc.inLeft = make([]bool, len(reg.Cells))

	for y := win.Y; y+t.H <= win.Y+win.H; y++ {
		if t.ParityOK != nil && !t.ParityOK(y) {
			continue
		}
		// Target must fit the intersection of its rows' segments.
		lo0, hi0 := negInf, 1<<50
		ok := true
		for row := y; row < y+t.H; row++ {
			seg := reg.SegmentAt(row)
			if seg == nil || seg.Len() < t.W {
				ok = false
				break
			}
			lo0 = geom.Max(lo0, seg.Lo)
			hi0 = geom.Min(hi0, seg.Hi-t.W)
		}
		if !ok || lo0 > hi0 {
			continue
		}
		st.CandidateRows++
		vbase := t.RowHeight * geom.Abs(y-t.GY)

		for _, b2 := range sc.slotBoundaries(reg, y, t.H) {
			st.InsertionPoints++
			c := sc.evalPoint(reg, order, t, y, b2, lo0, hi0, vbase, opt, st)
			if c.Better(best) {
				best = c
			}
		}
	}
	return best
}

// slotBoundaries returns the doubled-x boundary values that induce every
// distinct left/right partition of the cells in rows [y, y+h): one below
// the smallest doubled center, then one at each distinct doubled center.
// The returned slice is scratch memory, valid until the next call.
func (sc *scratch) slotBoundaries(reg *region.Region, y, h int) []int {
	// A cell spanning several rows contributes the same doubled center to
	// each, so gathering per-row (with duplicates) and deduplicating after
	// the sort yields exactly the distinct-cell center set.
	centers := sc.centers[:0]
	for row := y; row < y+h; row++ {
		seg := reg.SegmentAt(row)
		if seg == nil {
			continue
		}
		for _, ci := range seg.Cells {
			c := &reg.Cells[ci]
			centers = append(centers, 2*c.X+c.W)
		}
	}
	sc.centers = centers
	if len(centers) == 0 {
		sc.bounds = append(sc.bounds[:0], 0)
		return sc.bounds // single empty partition; boundary value irrelevant
	}
	sortInts(centers)
	out := append(sc.bounds[:0], centers[0]-1)
	for i, v := range centers {
		if i > 0 && centers[i-1] == v {
			continue
		}
		out = append(out, v)
	}
	sc.bounds = out
	return out
}

// evalPoint scores one insertion point: chain offsets (cell shifting in
// sort-ahead form), hinge emission, and curve evaluation.
func (sc *scratch) evalPoint(reg *region.Region, order []int, t Target, y, b2, lo0, hi0, vbase int, opt Options, st *Stats) Candidate {
	st.Shift.Passes += 2 // one outward sweep per phase

	nSeg := len(reg.Segments)
	rowOff := sc.rowOff

	// Left sweep: descending x over left/none cells. A cell is in the
	// target's rows when c.Y < y+t.H && c.Y+c.H > y; among those, the
	// boundary b2 splits left (2x+w ≤ b2) from right.
	for i := range rowOff {
		rowOff[i] = negInf
	}
	for row := y; row < y+t.H; row++ {
		if si := row - reg.Window.Y; si >= 0 && si < nSeg {
			rowOff[si] = 0
		}
	}
	lo, hi := lo0, hi0
	left := sc.left[:0]
	for k := len(order) - 1; k >= 0; k-- {
		ci := order[k]
		c := &reg.Cells[ci]
		if c.Y < y+t.H && c.Y+c.H > y && 2*c.X+c.W > b2 {
			continue // right-partition cell
		}
		o := negInf
		for row := c.Y; row < c.Y+c.H; row++ {
			si := row - reg.Window.Y
			if si >= 0 && si < nSeg && rowOff[si] > o {
				o = rowOff[si]
			}
		}
		st.Shift.SubcellVisits += c.H
		st.ChainCells++
		st.ChainVisitsByH[minInt(c.H, 4)]++
		if o == negInf {
			continue
		}
		o += c.W
		for row := c.Y; row < c.Y+c.H; row++ {
			si := row - reg.Window.Y
			if si >= 0 && si < nSeg {
				if o > rowOff[si] {
					rowOff[si] = o
				}
				seg := &reg.Segments[si]
				if v := seg.Lo + o; v > lo {
					lo = v // pushed cell must stay inside its segment
				}
			}
		}
		left = append(left, chainEntry{ci, o})
		sc.inLeft[ci] = true
	}
	sc.left = left

	// Right sweep: ascending x over right/none cells.
	for i := range rowOff {
		rowOff[i] = negInf
	}
	for row := y; row < y+t.H; row++ {
		if si := row - reg.Window.Y; si >= 0 && si < nSeg {
			rowOff[si] = t.W
		}
	}
	right := sc.right[:0]
	for k := 0; k < len(order); k++ {
		ci := order[k]
		c := &reg.Cells[ci]
		if (c.Y < y+t.H && c.Y+c.H > y && 2*c.X+c.W <= b2) || sc.inLeft[ci] {
			// Cells already claimed by the left chain cannot be squeezed
			// from both sides; the left chain takes precedence.
			continue
		}
		o := negInf
		for row := c.Y; row < c.Y+c.H; row++ {
			si := row - reg.Window.Y
			if si >= 0 && si < nSeg && rowOff[si] > o {
				o = rowOff[si]
			}
		}
		st.Shift.SubcellVisits += c.H
		st.ChainCells++
		st.ChainVisitsByH[minInt(c.H, 4)]++
		if o == negInf {
			continue
		}
		for row := c.Y; row < c.Y+c.H; row++ {
			si := row - reg.Window.Y
			if si >= 0 && si < nSeg {
				if v := o + c.W; v > rowOff[si] {
					rowOff[si] = v
				}
				seg := &reg.Segments[si]
				if v := seg.Hi - c.W - o; v < hi {
					hi = v
				}
			}
		}
		right = append(right, chainEntry{ci, o})
	}
	sc.right = right
	for _, e := range left {
		sc.inLeft[e.ci] = false
	}

	if lo > hi {
		return Candidate{Feasible: false}
	}

	// Optional instrumentation: run the original multi-pass shifting on
	// scratch positions to observe its pass structure.
	if opt.MeasureOriginalShift {
		sc.measureOriginal(reg, t, y, b2, lo, hi, st)
	}

	// Hinge emission: target V plus delta hinges for every chained cell.
	bps := append(sc.bps[:0], curve.VHinge(t.GX, vbase))
	for _, e := range left {
		c := &reg.Cells[e.ci]
		n := len(bps)
		bps = curve.AppendHingesForPushLeft(bps, c.X, c.GX, c.X+e.o)
		bps[n].Base = 0 // delta relative to the cell's current displacement
	}
	for _, e := range right {
		c := &reg.Cells[e.ci]
		n := len(bps)
		bps = curve.AppendHingesForPush(bps, c.X, c.GX, c.X-e.o)
		bps[n].Base = 0
	}
	sc.bps = bps

	var res curve.Result
	if opt.Streamed {
		res = sc.eval.Streamed(bps, lo, hi, &st.Curve)
	} else {
		res = sc.eval.Original(bps, lo, hi, &st.Curve)
	}
	if !res.Feasible {
		return Candidate{Feasible: false}
	}
	return Candidate{X: res.BestX, Y: y, Boundary2: b2, Cost: res.BestVal, Feasible: true}
}

// measureOriginal runs shift.Original at the clamped preferred position on
// scratch positions, accumulating its stats, then restores the region.
func (sc *scratch) measureOriginal(reg *region.Region, t Target, y, b2, lo, hi int, st *Stats) {
	x0 := geom.Min(geom.Max(t.GX, lo), hi)
	saved := sc.saved[:0]
	for i := range reg.Cells {
		saved = append(saved, reg.Cells[i].X)
	}
	sc.saved = saved
	p := shift.Placement{TX: x0, TY: y, TW: t.W, TH: t.H, Boundary2: b2}
	shift.Original(reg, p, &st.OriginalShift)
	for i := range reg.Cells {
		reg.Cells[i].X = saved[i]
	}
	reg.SortSegmentCells()
}

// xOrder returns region cell indices sorted ascending by current x.
func (sc *scratch) xOrder(reg *region.Region) []int {
	order := sc.order[:0]
	for i := range reg.Cells {
		order = append(order, i)
	}
	// Insertion sort: region cell counts are small and mostly pre-sorted.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && reg.Cells[order[j]].X < reg.Cells[order[j-1]].X; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	sc.order = order
	return order
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
