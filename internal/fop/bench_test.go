package fop

import (
	"math/rand"
	"testing"

	"github.com/flex-eda/flex/internal/geom"
	"github.com/flex-eda/flex/internal/region"
)

// benchRegion builds a deterministic localRegion shaped like the legalizer
// hot path: rows of packed mixed-height cells with scattered gaps, the
// working set one fop.Best call sweeps per insertion point.
func benchRegion(rows, width int) (*region.Region, Target) {
	rng := rand.New(rand.NewSource(7))
	var cells []region.LocalCell
	occupied := make([]int, rows) // next free x per row
	for row := 0; row < rows; row++ {
		x := rng.Intn(4)
		for x < width-12 {
			w := 3 + rng.Intn(8)
			h := 1
			if row+1 < rows && rng.Intn(4) == 0 && occupied[row+1] <= x {
				h = 2
			}
			fits := true
			for r := row; r < row+h; r++ {
				if occupied[r] > x {
					fits = false
				}
			}
			if fits && rng.Intn(5) > 0 {
				gx := x + rng.Intn(9) - 4
				cells = append(cells, region.LocalCell{
					ID: len(cells), X: x, Y: row, GX: gx, W: w, H: h,
				})
				for r := row; r < row+h; r++ {
					occupied[r] = x + w
				}
			}
			x += w + rng.Intn(3)
		}
	}
	win := geom.NewRect(0, 0, width, rows)
	reg := buildRegion(win, [2]int{0, width}, cells)
	t := Target{GX: width / 2, GY: rows / 2, W: 6, H: 2, ParityOK: anyRow, RowHeight: 1}
	return reg, t
}

func benchBest(b *testing.B, rows, width int, opt Options) {
	reg, tg := benchRegion(rows, width)
	var st Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := Best(reg, tg, opt, &st)
		if !c.Feasible {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkBest is the dominant-engine kernel benchmark: the FOP
// triple loop the FLEX paper accelerates, in the streamed configuration
// the core engine runs. The speed pass is measured against it.
func BenchmarkBest(b *testing.B)      { benchBest(b, 8, 200, Options{Streamed: true}) }
func BenchmarkBestLarge(b *testing.B) { benchBest(b, 12, 400, Options{Streamed: true}) }
func BenchmarkBestOriginalPipeline(b *testing.B) {
	benchBest(b, 8, 200, Options{Streamed: false})
}
