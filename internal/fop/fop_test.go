package fop

import (
	"math/rand"
	"testing"

	"github.com/flex-eda/flex/internal/gen"
	"github.com/flex-eda/flex/internal/geom"
	"github.com/flex-eda/flex/internal/region"
	"github.com/flex-eda/flex/internal/shift"
)

func buildRegion(win geom.Rect, segSpan [2]int, cells []region.LocalCell) *region.Region {
	r := &region.Region{Window: win}
	r.Segments = make([]region.Segment, win.H)
	for i := range r.Segments {
		r.Segments[i] = region.Segment{Row: win.Y + i, Lo: segSpan[0], Hi: segSpan[1]}
	}
	r.Cells = cells
	for li := range r.Cells {
		c := &r.Cells[li]
		for row := c.Y; row < c.Y+c.H; row++ {
			if seg := r.SegmentAt(row); seg != nil {
				seg.Cells = append(seg.Cells, li)
			}
		}
	}
	r.SortSegmentCells()
	return r
}

func anyRow(int) bool { return true }

// commitCost plays a candidate through the real shifting algorithm and
// returns the exact added displacement, or ok=false when infeasible.
func commitCost(reg *region.Region, t Target, c Candidate) (int, bool) {
	cp := reg.Clone()
	p := shift.Placement{TX: c.X, TY: c.Y, TW: t.W, TH: t.H, Boundary2: c.Boundary2}
	if !shift.SACS(cp, p, nil) {
		return 0, false
	}
	cost := geom.Abs(c.X-t.GX) + t.RowHeight*geom.Abs(c.Y-t.GY)
	for i := range cp.Cells {
		cost += geom.Abs(cp.Cells[i].X-cp.Cells[i].GX) - geom.Abs(reg.Cells[i].X-reg.Cells[i].GX)
	}
	// Verify the committed layout is overlap-free, including the target.
	tr := geom.NewRect(c.X, c.Y, t.W, t.H)
	for i := range cp.Cells {
		if cp.Cells[i].Rect().Overlaps(tr) {
			return 0, false
		}
		for j := i + 1; j < len(cp.Cells); j++ {
			if cp.Cells[i].Rect().Overlaps(cp.Cells[j].Rect()) {
				return 0, false
			}
		}
	}
	return cost, true
}

// bruteBest exhaustively scans all rows, boundaries and x positions using
// the real shifting algorithm as the cost oracle.
func bruteBest(reg *region.Region, t Target) (int, bool) {
	best, found := 1<<60, false
	win := reg.Window
	for y := win.Y; y+t.H <= win.Y+win.H; y++ {
		if !t.ParityOK(y) {
			continue
		}
		var sc scratch
		for _, b2 := range sc.slotBoundaries(reg, y, t.H) {
			for x := win.X; x+t.W <= win.X+win.W; x++ {
				cost, ok := commitCost(reg, t, Candidate{X: x, Y: y, Boundary2: b2, Feasible: true})
				if ok && cost < best {
					best, found = cost, true
				}
			}
		}
	}
	return best, found
}

func TestBestEmptyRegion(t *testing.T) {
	win := geom.NewRect(0, 0, 40, 2)
	reg := buildRegion(win, [2]int{0, 40}, nil)
	reg.TargetW, reg.TargetH = 4, 1
	tg := Target{GX: 10, GY: 0, W: 4, H: 1, ParityOK: anyRow, RowHeight: 8}
	var st Stats
	c := Best(reg, tg, Options{}, &st)
	if !c.Feasible {
		t.Fatal("empty region should be feasible")
	}
	if c.X != 10 || c.Y != 0 || c.Cost != 0 {
		t.Fatalf("got (%d,%d) cost %d, want (10,0) cost 0", c.X, c.Y, c.Cost)
	}
	if st.InsertionPoints == 0 || st.CandidateRows != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestBestPushesNeighbours(t *testing.T) {
	win := geom.NewRect(0, 0, 30, 1)
	cells := []region.LocalCell{
		{ID: 0, X: 8, GX: 8, Y: 0, W: 6, H: 1},
	}
	reg := buildRegion(win, [2]int{0, 30}, cells)
	// Target wants x=10, overlapping the cell; optimum balances target
	// displacement against pushing.
	tg := Target{GX: 10, GY: 0, W: 4, H: 1, ParityOK: anyRow, RowHeight: 8}
	c := Best(reg, tg, Options{}, nil)
	if !c.Feasible {
		t.Fatal("infeasible")
	}
	got, ok := commitCost(reg, tg, c)
	if !ok {
		t.Fatal("commit failed")
	}
	if got != c.Cost {
		t.Fatalf("predicted cost %d, committed cost %d", c.Cost, got)
	}
	want, found := bruteBest(reg, tg)
	if !found || c.Cost != want {
		t.Fatalf("cost %d, brute-force best %d", c.Cost, want)
	}
}

func TestBestMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for iter := 0; iter < 40; iter++ {
		win := geom.NewRect(0, 0, 26, 3)
		var cells []region.LocalCell
		// Random non-overlapping single/multi-row cells per row band.
		cursor := [3]int{}
		for k := 0; k < 5; k++ {
			y := rng.Intn(3)
			h := 1
			if y < 2 && rng.Intn(3) == 0 {
				h = 2
			}
			w := 2 + rng.Intn(3)
			x := cursor[y] + rng.Intn(3)
			for r := y; r < y+h; r++ {
				if cursor[r] > x {
					x = cursor[r]
				}
			}
			if x+w > 24 {
				continue
			}
			gx := x + rng.Intn(7) - 3
			if gx < 0 {
				gx = 0
			}
			cells = append(cells, region.LocalCell{ID: len(cells), X: x, GX: gx, Y: y, W: w, H: h})
			for r := y; r < y+h; r++ {
				cursor[r] = x + w
			}
		}
		reg := buildRegion(win, [2]int{0, 26}, cells)
		tg := Target{
			GX: rng.Intn(20), GY: rng.Intn(3),
			W: 2 + rng.Intn(3), H: 1 + rng.Intn(2),
			ParityOK: anyRow, RowHeight: 8,
		}
		for _, streamed := range []bool{false, true} {
			c := Best(reg, tg, Options{Streamed: streamed}, nil)
			want, found := bruteBest(reg, tg)
			if c.Feasible != found {
				t.Fatalf("iter %d streamed=%v: feasible=%v brute=%v", iter, streamed, c.Feasible, found)
			}
			if !found {
				continue
			}
			if c.Cost != want {
				t.Fatalf("iter %d streamed=%v: cost %d, brute-force %d (cand %+v)", iter, streamed, c.Cost, want, c)
			}
			got, ok := commitCost(reg, tg, c)
			if !ok || got != c.Cost {
				t.Fatalf("iter %d: commit cost %d ok=%v, predicted %d", iter, got, ok, c.Cost)
			}
		}
	}
}

func TestStreamedAndOriginalAgree(t *testing.T) {
	spec := gen.Small(400, 0.65, 17)
	l, err := spec.GenerateLegal(1.0)
	if err != nil {
		t.Fatal(err)
	}
	placed := make([]bool, len(l.Cells))
	for i := range placed {
		placed[i] = true
	}
	rng := rand.New(rand.NewSource(3))
	movable := l.MovableIDs()
	checked := 0
	for iter := 0; iter < 30; iter++ {
		id := movable[rng.Intn(len(movable))]
		placed[id] = false
		tc := &l.Cells[id]
		win := geom.NewRect(tc.X-24, tc.Y-3, 48+tc.W, 6+tc.H)
		reg := region.Extract(l, placed, id, win)
		placed[id] = true
		tg := Target{GX: tc.GX, GY: tc.GY, W: tc.W, H: tc.H,
			ParityOK: tc.Parity.AllowsRow, RowHeight: l.RowHeight}
		var stO, stS Stats
		a := Best(reg, tg, Options{Streamed: false}, &stO)
		b := Best(reg, tg, Options{Streamed: true}, &stS)
		if a != b {
			t.Fatalf("iter %d: original %+v != streamed %+v", iter, a, b)
		}
		if a.Feasible {
			checked++
			got, ok := commitCost(reg, tg, a)
			if !ok {
				t.Fatalf("iter %d: commit infeasible for %+v", iter, a)
			}
			if got != a.Cost {
				t.Fatalf("iter %d: commit cost %d != predicted %d", iter, got, a.Cost)
			}
		}
	}
	if checked < 10 {
		t.Fatalf("too few feasible cases: %d", checked)
	}
}

func TestParityRestrictsRows(t *testing.T) {
	win := geom.NewRect(0, 0, 30, 4)
	reg := buildRegion(win, [2]int{0, 30}, nil)
	evenOnly := func(y int) bool { return y%2 == 0 }
	tg := Target{GX: 5, GY: 1, W: 3, H: 2, ParityOK: evenOnly, RowHeight: 8}
	var st Stats
	c := Best(reg, tg, Options{}, &st)
	if !c.Feasible {
		t.Fatal("infeasible")
	}
	if c.Y%2 != 0 {
		t.Fatalf("chose odd row %d for even-parity cell", c.Y)
	}
	if st.CandidateRows != 2 { // rows 0 and 2 (row 3 cannot fit h=2)
		t.Fatalf("candidate rows = %d, want 2", st.CandidateRows)
	}
}

func TestMeasureOriginalShift(t *testing.T) {
	win := geom.NewRect(0, 0, 30, 1)
	cells := []region.LocalCell{{ID: 0, X: 8, GX: 8, Y: 0, W: 6, H: 1}}
	reg := buildRegion(win, [2]int{0, 30}, cells)
	tg := Target{GX: 10, GY: 0, W: 4, H: 1, ParityOK: anyRow, RowHeight: 8}
	var st Stats
	Best(reg, tg, Options{MeasureOriginalShift: true}, &st)
	if st.OriginalShift.Passes == 0 {
		t.Fatal("original shifting was not measured")
	}
	// Region positions must be restored.
	if reg.Cells[0].X != 8 {
		t.Fatalf("region mutated: cell at %d", reg.Cells[0].X)
	}
}

func TestStatsAddAndBetter(t *testing.T) {
	a := Stats{InsertionPoints: 2, ChainCells: 3}
	b := Stats{InsertionPoints: 5, ChainCells: 7}
	a.Add(&b)
	if a.InsertionPoints != 7 || a.ChainCells != 10 {
		t.Fatalf("Add wrong: %+v", a)
	}
	inf := Candidate{Feasible: false}
	c1 := Candidate{Feasible: true, Cost: 5, X: 1}
	c2 := Candidate{Feasible: true, Cost: 5, X: 2}
	if inf.Better(c1) || !c1.Better(inf) {
		t.Fatal("feasibility ordering wrong")
	}
	if !c1.Better(c2) || c2.Better(c1) {
		t.Fatal("tie-breaking wrong")
	}
}
