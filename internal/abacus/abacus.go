// Package abacus implements the classic Abacus single-row legalization
// algorithm (Spindler et al., ISPD'08), the dynamic-programming/cluster
// method referenced in the FLEX paper's related work. Given cells assigned
// to one row segment, it computes positions minimizing the weighted sum of
// squared displacements subject to non-overlap and order preservation.
//
// In this repository Abacus serves as the row-solver inside the analytical
// (LEGALM-style) baseline: each ADMM iteration solves every row segment as
// an independent weighted single-row problem.
package abacus

// Item is one cell (or subcell) to place in a row segment.
type Item struct {
	ID     int     // caller's identifier, returned untouched
	GX     int     // desired (global-placement or ADMM reference) position
	W      int     // width in sites
	Weight float64 // quadratic weight (≥ 0; 0 treated as 1)
}

// cluster is the standard Abacus cluster: a maximal run of abutting cells
// whose optimal common placement is q/e.
type cluster struct {
	first, last int     // item index range [first, last]
	e           float64 // Σ weights
	q           float64 // Σ weight·(gx − offset-in-cluster)
	w           int     // total width
}

func (c *cluster) optimal() float64 {
	if c.e <= 0 {
		return 0
	}
	return c.q / c.e
}

// Place positions the items (already ordered by desired position) inside
// [lo, hi), preserving their order. It returns the x positions and reports
// whether the items fit at all.
func Place(items []Item, lo, hi int) ([]int, bool) {
	n := len(items)
	if n == 0 {
		return nil, true
	}
	total := 0
	for i := range items {
		total += items[i].W
	}
	if total > hi-lo {
		return nil, false
	}

	clusters := make([]cluster, 0, n)
	for i := 0; i < n; i++ {
		it := items[i]
		wgt := it.Weight
		if wgt <= 0 {
			wgt = 1
		}
		c := cluster{first: i, last: i, e: wgt, q: wgt * float64(it.GX), w: it.W}
		clusters = append(clusters, c)
		// Collapse while the new cluster overlaps its predecessor.
		for len(clusters) >= 2 {
			cur := &clusters[len(clusters)-1]
			prev := &clusters[len(clusters)-2]
			prevPos := clampF(prev.optimal(), float64(lo), float64(hi-prev.w-cur.w)+float64(prev.w))
			curPos := clampF(cur.optimal(), float64(lo), float64(hi-cur.w))
			if prevPos+float64(prev.w) <= curPos {
				break
			}
			// Merge cur into prev: items keep their in-cluster offsets.
			prev.q += cur.q - cur.e*float64(prev.w)
			prev.e += cur.e
			prev.w += cur.w
			prev.last = cur.last
			clusters = clusters[:len(clusters)-1]
		}
	}

	// Materialize positions with forward/backward feasibility clamping.
	pos := make([]int, n)
	// Forward pass: clamp each cluster right of its predecessor.
	starts := make([]int, len(clusters))
	minStart := lo
	for ci := range clusters {
		c := &clusters[ci]
		p := int(clampF(c.optimal()+0.5, float64(minStart), float64(hi-c.w)))
		if p < minStart {
			p = minStart
		}
		starts[ci] = p
		minStart = p + c.w
	}
	// Backward pass: pull clusters left if the tail overflowed.
	maxEnd := hi
	for ci := len(clusters) - 1; ci >= 0; ci-- {
		c := &clusters[ci]
		if starts[ci]+c.w > maxEnd {
			starts[ci] = maxEnd - c.w
		}
		if starts[ci] < lo {
			return nil, false
		}
		maxEnd = starts[ci]
	}
	for ci := range clusters {
		c := &clusters[ci]
		x := starts[ci]
		for i := c.first; i <= c.last; i++ {
			pos[i] = x
			x += items[i].W
		}
	}
	return pos, true
}

// Cost returns the weighted sum of squared displacements of a placement.
func Cost(items []Item, pos []int) float64 {
	var s float64
	for i := range items {
		w := items[i].Weight
		if w <= 0 {
			w = 1
		}
		d := float64(pos[i] - items[i].GX)
		s += w * d * d
	}
	return s
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
