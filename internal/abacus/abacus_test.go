package abacus

import (
	"math/rand"
	"sort"
	"testing"
)

func TestPlaceNoOverlapNeeded(t *testing.T) {
	items := []Item{{ID: 0, GX: 2, W: 3}, {ID: 1, GX: 10, W: 4}}
	pos, ok := Place(items, 0, 30)
	if !ok {
		t.Fatal("feasible input rejected")
	}
	if pos[0] != 2 || pos[1] != 10 {
		t.Fatalf("positions %v, want [2 10]", pos)
	}
}

func TestPlaceResolvesOverlapSymmetrically(t *testing.T) {
	// Two equal-weight cells wanting the same spot split the difference.
	items := []Item{{ID: 0, GX: 10, W: 4}, {ID: 1, GX: 10, W: 4}}
	pos, ok := Place(items, 0, 40)
	if !ok {
		t.Fatal("rejected")
	}
	if pos[1]-pos[0] != 4 {
		t.Fatalf("cells overlap or gap: %v", pos)
	}
	mid := float64(pos[0]+pos[1]+4) / 2
	if mid < 11 || mid > 13 {
		t.Fatalf("cluster not centred near 12: %v", pos)
	}
}

func TestPlaceRespectsBounds(t *testing.T) {
	items := []Item{{ID: 0, GX: -5, W: 4}, {ID: 1, GX: 100, W: 4}}
	pos, ok := Place(items, 0, 20)
	if !ok {
		t.Fatal("rejected")
	}
	if pos[0] < 0 || pos[1]+4 > 20 {
		t.Fatalf("bounds violated: %v", pos)
	}
	if pos[0]+4 > pos[1] {
		t.Fatalf("overlap: %v", pos)
	}
}

func TestPlaceInfeasible(t *testing.T) {
	items := []Item{{ID: 0, GX: 0, W: 10}, {ID: 1, GX: 0, W: 10}}
	if _, ok := Place(items, 0, 15); ok {
		t.Fatal("accepted overfull segment")
	}
}

func TestPlaceEmpty(t *testing.T) {
	pos, ok := Place(nil, 0, 10)
	if !ok || pos != nil {
		t.Fatal("empty input mishandled")
	}
}

// TestPlaceNearOptimal compares against brute force on tiny instances.
func TestPlaceNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 60; iter++ {
		n := 2 + rng.Intn(3)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{ID: i, GX: rng.Intn(14), W: 1 + rng.Intn(3), Weight: 1}
		}
		sort.SliceStable(items, func(a, b int) bool { return items[a].GX < items[b].GX })
		lo, hi := 0, 20
		pos, ok := Place(items, lo, hi)
		if !ok {
			continue
		}
		// Verify legality.
		for i := 1; i < n; i++ {
			if pos[i-1]+items[i-1].W > pos[i] {
				t.Fatalf("iter %d: overlap in %v", iter, pos)
			}
		}
		got := Cost(items, pos)
		// Brute force the optimal order-preserving packing.
		best := bruteOpt(items, lo, hi)
		// Integer rounding can cost a little; allow a small slack.
		if got > best+float64(n) {
			t.Fatalf("iter %d: cost %v far from optimal %v (pos %v)", iter, got, best, pos)
		}
	}
}

func bruteOpt(items []Item, lo, hi int) float64 {
	n := len(items)
	best := 1e18
	var rec func(i, minX int, acc float64, pos []int)
	rec = func(i, minX int, acc float64, pos []int) {
		if acc >= best {
			return
		}
		if i == n {
			best = acc
			return
		}
		for x := minX; x+items[i].W <= hi; x++ {
			d := float64(x - items[i].GX)
			rec(i+1, x+items[i].W, acc+d*d, append(pos, x))
		}
	}
	rec(0, lo, 0, nil)
	return best
}

func TestWeightsBiasCluster(t *testing.T) {
	// A heavy cell should barely move; the light one absorbs the shift.
	heavy := []Item{{ID: 0, GX: 10, W: 4, Weight: 100}, {ID: 1, GX: 10, W: 4, Weight: 1}}
	pos, ok := Place(heavy, 0, 40)
	if !ok {
		t.Fatal("rejected")
	}
	if d0, d1 := abs(pos[0]-10), abs(pos[1]-10); d0 > d1 {
		t.Fatalf("heavy cell moved more than light one: %v", pos)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
