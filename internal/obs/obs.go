// Package obs is the serving stack's observability layer: per-job trace
// spans, a metrics registry with Prometheus text exposition, Chrome
// trace-viewer export, and build identity — all stdlib-only.
//
// The package exists so wall-clock telemetry has exactly one home. The
// repo's determinism contract (docs/BENCHMARKING.md) keeps modeled
// seconds and result bytes wall-free; spans and metrics are the
// sanctioned sinks for real clock readings, which is why flexvet's
// walltime analyzer exempts this package wholesale instead of demanding
// per-site justifications. Nothing here may ever feed back into job
// results: recorders and registries are write-mostly sidecars, and every
// entry point is nil-safe so instrumented code runs unchanged — and
// byte-identically — with observability off.
//
// Tracing model: a Recorder owns one job's span tree. It is installed on
// a context with WithRecorder and travels wherever the context goes —
// through the batch pool, into the device model, across the fleet wire
// (the coordinator sends the trace ID in an X-Flex-Trace header; the
// worker opens a linked Recorder and ships its finished spans back inside
// the job result, where AttachRemote grafts them into the caller's tree).
// StartSpan opens a nested span scoped to the returned context; Record
// adds an already-measured interval. Span offsets are microseconds since
// the Recorder's origin, so a tree serializes compactly and rebases
// cheaply.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed phase of a job's trace: a named interval with
// optional detail and nested children. Offsets are microseconds relative
// to the owning Recorder's origin (remote spans are rebased on attach).
type Span struct {
	// Name identifies the phase (admit, sched-wait, device-wait,
	// device-hold, legalize, band k/n, fleet-rpc, stitch, eco-splice).
	Name string `json:"name"`
	// Detail is free-form context: a design name, a worker address.
	Detail string `json:"detail,omitempty"`
	// StartUS and DurUS place the span on the trace's timeline, in
	// microseconds since the Recorder's origin.
	StartUS int64 `json:"startUs"`
	DurUS   int64 `json:"durUs"`
	// Spans are the nested child phases.
	Spans []*Span `json:"spans,omitempty"`
}

// Recorder accumulates one job's span tree. It is safe for concurrent
// use — a sharded job's band spans append from many pool goroutines.
type Recorder struct {
	id     string
	name   string
	origin time.Time

	admit sync.Once

	mu    sync.Mutex
	spans []*Span
}

// NewRecorder starts a trace with a fresh random ID. The origin (span
// time zero) is the moment of creation.
func NewRecorder(name string) *Recorder {
	return NewLinkedRecorder(newTraceID(), name)
}

// NewLinkedRecorder starts a trace under an existing ID — the worker
// side of a propagated trace, where the coordinator minted the ID and
// sent it across the wire.
func NewLinkedRecorder(id, name string) *Recorder {
	return &Recorder{id: id, name: name, origin: time.Now()}
}

// ID returns the trace ID.
func (r *Recorder) ID() string {
	if r == nil {
		return ""
	}
	return r.id
}

// Name returns the trace's display name (job tag or design).
func (r *Recorder) Name() string {
	if r == nil {
		return ""
	}
	return r.name
}

// us converts an absolute time to the recorder's microsecond offset.
func (r *Recorder) us(t time.Time) int64 { return t.Sub(r.origin).Microseconds() }

// add appends a span under parent (nil = root level) and returns it.
func (r *Recorder) add(parent *Span, name, detail string, start time.Time) *Span {
	sp := &Span{Name: name, Detail: detail, StartUS: r.us(start)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if parent != nil {
		parent.Spans = append(parent.Spans, sp)
	} else {
		r.spans = append(r.spans, sp)
	}
	return sp
}

// end closes a span opened by add.
func (r *Recorder) end(sp *Span, at time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d := r.us(at) - sp.StartUS; d > 0 {
		sp.DurUS = d
	}
}

// Record adds a completed root-level span from explicit wall times — for
// phases measured outside any span context, like the collector's stitch.
func (r *Recorder) Record(name, detail string, start, end time.Time) {
	if r == nil {
		return
	}
	sp := r.add(nil, name, detail, start)
	r.end(sp, end)
}

// MarkAdmitted records the admit span — trace origin to t, the moment
// the job entered the scheduler queue — exactly once; every band of a
// sharded job calls it, the first wins.
func (r *Recorder) MarkAdmitted(t time.Time) {
	if r == nil {
		return
	}
	r.admit.Do(func() {
		sp := r.add(nil, "admit", "", r.origin)
		r.end(sp, t)
	})
}

// Spans returns the recorded tree, every level sorted by start offset.
// Call it after the job completes; sorting mutates the tree in place.
func (r *Recorder) Spans() []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sortSpans(r.spans)
	return r.spans
}

// Attach grafts an already-built subtree (a worker's spans) under the
// recorder at root level, rebased so the subtree's earliest span starts
// at baseUS on this recorder's timeline.
func (r *Recorder) attach(parent *Span, spans []*Span, baseUS int64) {
	if r == nil || len(spans) == 0 {
		return
	}
	min := spans[0].StartUS
	for _, sp := range spans {
		if sp.StartUS < min {
			min = sp.StartUS
		}
	}
	shiftSpans(spans, baseUS-min)
	r.mu.Lock()
	defer r.mu.Unlock()
	if parent != nil {
		parent.Spans = append(parent.Spans, spans...)
	} else {
		r.spans = append(r.spans, spans...)
	}
}

func shiftSpans(spans []*Span, delta int64) {
	for _, sp := range spans {
		sp.StartUS += delta
		shiftSpans(sp.Spans, delta)
	}
}

func sortSpans(spans []*Span) {
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartUS < spans[j].StartUS })
	for _, sp := range spans {
		sortSpans(sp.Spans)
	}
}

// spanRef is the context payload: the trace's recorder plus the span all
// new child spans nest under (nil = root level).
type spanRef struct {
	rec    *Recorder
	parent *Span
}

type spanKey struct{}

// WithRecorder installs a trace recorder on the context; spans started
// from the returned context (and its descendants) join its tree.
func WithRecorder(ctx context.Context, rec *Recorder) context.Context {
	if rec == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, &spanRef{rec: rec})
}

// RecorderFrom returns the context's trace recorder, or nil when the job
// is not being traced.
func RecorderFrom(ctx context.Context) *Recorder {
	if ref, _ := ctx.Value(spanKey{}).(*spanRef); ref != nil {
		return ref.rec
	}
	return nil
}

// StartSpan opens a span under the context's current span and returns a
// context scoping further spans beneath it, plus the close function.
// Without a recorder on the context both are free no-ops.
func StartSpan(ctx context.Context, name, detail string) (context.Context, func()) {
	ref, _ := ctx.Value(spanKey{}).(*spanRef)
	if ref == nil {
		return ctx, func() {}
	}
	sp := ref.rec.add(ref.parent, name, detail, time.Now())
	sctx := context.WithValue(ctx, spanKey{}, &spanRef{rec: ref.rec, parent: sp})
	return sctx, func() { ref.rec.end(sp, time.Now()) }
}

// Record adds a completed span from explicit wall times under the
// context's current span — for intervals measured before the fact, like
// a queue wait known only once the job starts. No-op without a recorder.
func Record(ctx context.Context, name, detail string, start, end time.Time) {
	ref, _ := ctx.Value(spanKey{}).(*spanRef)
	if ref == nil {
		return
	}
	sp := ref.rec.add(ref.parent, name, detail, start)
	ref.rec.end(sp, end)
}

// AttachRemote grafts a remote worker's finished spans under the
// context's current span. The worker's clock need not agree with ours:
// the subtree is rebased so its earliest span starts where the enclosing
// span began (for a fleet job, the RPC's start). No-op without a
// recorder or without spans.
func AttachRemote(ctx context.Context, spans []*Span) {
	ref, _ := ctx.Value(spanKey{}).(*spanRef)
	if ref == nil || len(spans) == 0 {
		return
	}
	base := int64(0)
	if ref.parent != nil {
		base = ref.parent.StartUS
	}
	ref.rec.attach(ref.parent, spans, base)
}

// Trace is one finished job's tree as collected by a Tracer.
type Trace struct {
	// ID is the trace ID (the NDJSON "trace" field, the X-Flex-Trace
	// header value, the flexserve debug-log correlation key).
	ID string `json:"id"`
	// Name is the trace's display name.
	Name string `json:"name"`
	// Spans is the tree, sorted by start offset.
	Spans []*Span `json:"spans"`
}

// Tracer collects finished traces for export — the sink behind
// flexlg/flexbench -trace-out. Long-lived servers do not use one (it
// grows without bound); they stream per-job span summaries to the log
// instead.
type Tracer struct {
	mu     sync.Mutex
	traces []*Trace
}

// NewTracer returns an empty trace collector.
func NewTracer() *Tracer { return &Tracer{} }

// Add collects a finished recorder's trace. Nil-safe on both sides.
func (t *Tracer) Add(rec *Recorder) {
	if t == nil || rec == nil {
		return
	}
	tr := &Trace{ID: rec.ID(), Name: rec.Name(), Spans: rec.Spans()}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.traces = append(t.traces, tr)
}

// Traces snapshots the collected traces in collection order.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Trace(nil), t.traces...)
}

// idCounter backs the fallback trace-ID sequence if crypto/rand fails.
var idCounter atomic.Uint64

// newTraceID returns a 16-hex-digit random trace ID. IDs are telemetry —
// they never enter result bytes — so randomness is safe here.
func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := idCounter.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// Summary renders a one-line span digest — "name dur, name dur, ..."
// over the top-level spans — for per-job debug log lines.
func Summary(spans []*Span) string {
	out := ""
	for i, sp := range spans {
		if i > 0 {
			out += ", "
		}
		out += sp.Name + " " + (time.Duration(sp.DurUS) * time.Microsecond).String()
	}
	return out
}
