package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeNesting(t *testing.T) {
	rec := NewRecorder("job")
	if rec.ID() == "" || len(rec.ID()) != 16 {
		t.Fatalf("want 16-hex trace ID, got %q", rec.ID())
	}
	ctx := WithRecorder(context.Background(), rec)
	if RecorderFrom(ctx) != rec {
		t.Fatal("RecorderFrom lost the recorder")
	}

	octx, outer := StartSpan(ctx, "legalize", "fft")
	_, inner := StartSpan(octx, "device-wait", "")
	inner()
	outer()
	// A sibling at root level, from explicit times.
	Record(ctx, "stitch", "", time.Now(), time.Now().Add(time.Millisecond))

	spans := rec.Spans()
	if len(spans) != 2 {
		t.Fatalf("want 2 root spans, got %d: %v", len(spans), Summary(spans))
	}
	var legalize *Span
	for _, sp := range spans {
		if sp.Name == "legalize" {
			legalize = sp
		}
	}
	if legalize == nil || len(legalize.Spans) != 1 || legalize.Spans[0].Name != "device-wait" {
		t.Fatalf("device-wait not nested under legalize: %+v", spans)
	}
}

func TestNoRecorderIsFreeNoop(t *testing.T) {
	ctx := context.Background()
	sctx, end := StartSpan(ctx, "x", "")
	if sctx != ctx {
		t.Fatal("StartSpan without recorder must return ctx unchanged")
	}
	end()
	Record(ctx, "x", "", time.Now(), time.Now())
	AttachRemote(ctx, []*Span{{Name: "r"}})
	if RecorderFrom(ctx) != nil {
		t.Fatal("RecorderFrom on a bare context")
	}
	var nilRec *Recorder
	nilRec.Record("x", "", time.Now(), time.Now())
	nilRec.MarkAdmitted(time.Now())
	if nilRec.ID() != "" || nilRec.Spans() != nil {
		t.Fatal("nil Recorder must be inert")
	}
}

func TestConcurrentBandSpans(t *testing.T) {
	rec := NewRecorder("sharded")
	ctx := WithRecorder(context.Background(), rec)
	var wg sync.WaitGroup
	for b := 0; b < 8; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec.MarkAdmitted(time.Now())
			sctx, end := StartSpan(ctx, "band", "")
			_, inner := StartSpan(sctx, "device-hold", "")
			inner()
			end()
		}()
	}
	wg.Wait()
	spans := rec.Spans()
	admits, bands := 0, 0
	for _, sp := range spans {
		switch sp.Name {
		case "admit":
			admits++
		case "band":
			bands++
		}
	}
	if admits != 1 {
		t.Fatalf("MarkAdmitted must record exactly once, got %d", admits)
	}
	if bands != 8 {
		t.Fatalf("want 8 band spans, got %d", bands)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].StartUS < spans[i-1].StartUS {
			t.Fatal("Spans() must sort by start offset")
		}
	}
}

func TestAttachRemoteRebases(t *testing.T) {
	rec := NewLinkedRecorder("deadbeefdeadbeef", "job")
	ctx := WithRecorder(context.Background(), rec)
	sctx, end := StartSpan(ctx, "band", "")
	// Worker spans on a wildly different clock origin.
	remote := []*Span{
		{Name: "legalize", StartUS: 9_000_100, DurUS: 50,
			Spans: []*Span{{Name: "device-hold", StartUS: 9_000_120, DurUS: 10}}},
		{Name: "sched-wait", StartUS: 9_000_000, DurUS: 100},
	}
	AttachRemote(sctx, remote)
	end()

	spans := rec.Spans()
	if len(spans) != 1 || len(spans[0].Spans) != 2 {
		t.Fatalf("remote spans not attached under band: %+v", spans)
	}
	band := spans[0]
	for _, sp := range band.Spans {
		if sp.StartUS < band.StartUS {
			t.Fatalf("remote span %s starts before enclosing span: %d < %d",
				sp.Name, sp.StartUS, band.StartUS)
		}
	}
	// The child kept its offset relative to its remote parent.
	var legalize *Span
	for _, sp := range band.Spans {
		if sp.Name == "legalize" {
			legalize = sp
		}
	}
	if got := legalize.Spans[0].StartUS - legalize.StartUS; got != 20 {
		t.Fatalf("nested remote offset shifted: want 20, got %d", got)
	}
}

func TestTracerChromeExport(t *testing.T) {
	tr := NewTracer()
	rec := NewRecorder("fft_a_md2")
	ctx := WithRecorder(context.Background(), rec)
	_, end := StartSpan(ctx, "legalize", "fft_a_md2")
	end()
	tr.Add(rec)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("want thread_name + 1 span event, got %d", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0]["ph"] != "M" || doc.TraceEvents[1]["ph"] != "X" {
		t.Fatalf("unexpected phases: %v", doc.TraceEvents)
	}
	name := doc.TraceEvents[0]["args"].(map[string]any)["name"].(string)
	if !strings.Contains(name, rec.ID()) {
		t.Fatalf("lane name %q missing trace ID %q", name, rec.ID())
	}
}

func TestBuildInfoPopulated(t *testing.T) {
	b := Build()
	if b.Module == "" || b.Version == "" {
		t.Fatalf("build identity empty: %+v", b)
	}
}
