package obs

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("flex_serve_jobs_total", "Jobs completed.", Label{"status", "ok"})
	c.Inc()
	c.Add(2)
	c.Add(-5) // dropped: counters only go up
	g := r.Gauge("flex_serve_queue_depth_jobs", "Queue occupancy.")
	g.Set(7)
	g.Add(-2)
	r.GaugeFunc("flex_serve_draining_state", "1 while draining.", func() float64 { return 1 })

	out := scrape(t, r)
	for _, want := range []string{
		"# HELP flex_serve_jobs_total Jobs completed.",
		"# TYPE flex_serve_jobs_total counter",
		`flex_serve_jobs_total{status="ok"} 3`,
		"# TYPE flex_serve_queue_depth_jobs gauge",
		"flex_serve_queue_depth_jobs 5",
		"flex_serve_draining_state 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("flex_serve_job_seconds", "End-to-end job time.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := scrape(t, r)
	for _, want := range []string{
		"# TYPE flex_serve_job_seconds histogram",
		`flex_serve_job_seconds_bucket{le="0.1"} 1`,
		`flex_serve_job_seconds_bucket{le="1"} 3`,
		`flex_serve_job_seconds_bucket{le="10"} 4`,
		`flex_serve_job_seconds_bucket{le="+Inf"} 5`,
		"flex_serve_job_seconds_sum 56.05",
		"flex_serve_job_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape missing %q:\n%s", want, out)
		}
	}
	// An exact bound lands in its own bucket (le semantics).
	h2 := r.Histogram("flex_device_wait_seconds", "Device wait.", []float64{1, 2})
	h2.Observe(1)
	out = scrape(t, r)
	if !strings.Contains(out, `flex_device_wait_seconds_bucket{le="1"} 1`) {
		t.Fatalf("v == bound must count in le=bound:\n%s", out)
	}
}

func TestRegistryDedupAndKindConflict(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("flex_fleet_rpc_total", "RPC attempts.", Label{"node", "n1"})
	b := r.Counter("flex_fleet_rpc_total", "RPC attempts.", Label{"node", "n1"})
	a.Inc()
	b.Inc()
	if out := scrape(t, r); !strings.Contains(out, `flex_fleet_rpc_total{node="n1"} 2`) {
		t.Fatalf("same name+labels must share one series:\n%s", out)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict must panic")
		}
	}()
	r.Gauge("flex_fleet_rpc_total", "now a gauge")
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("flex_x_y_total", "").Inc()
	r.Gauge("flex_x_y_jobs", "").Set(1)
	r.Histogram("flex_x_y_seconds", "", LatencyBuckets).Observe(1)
	r.CounterFunc("flex_x_z_total", "", func() float64 { return 1 })
	r.GaugeFunc("flex_x_z_jobs", "", func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("flex_sched_queue_wait_seconds", "Queue wait.", LatencyBuckets)
	c := r.Counter("flex_serve_jobs_total", "Jobs.")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i%100) / 100)
				c.Inc()
			}
		}(g)
	}
	wg.Wait()
	out := scrape(t, r)
	if !strings.Contains(out, "flex_serve_jobs_total 8000") {
		t.Fatalf("lost counter increments:\n%s", out)
	}
	if !strings.Contains(out, "flex_sched_queue_wait_seconds_count 8000") {
		t.Fatalf("lost histogram observations:\n%s", out)
	}
	assertBucketsMonotone(t, out, "flex_sched_queue_wait_seconds_bucket")
}

// assertBucketsMonotone checks that the cumulative bucket counts of one
// histogram family never decrease as le grows — the exposition-format
// invariant the flexserve scrape test re-asserts under live traffic.
func assertBucketsMonotone(t *testing.T, scrape, prefix string) {
	t.Helper()
	prev := -1.0
	for _, line := range strings.Split(scrape, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts decreased at %q", line)
		}
		prev = v
	}
}
