package obs

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace-viewer "traceEvents"
// array (about://tracing, ui.perfetto.dev): complete events (ph "X")
// with microsecond timestamps, plus one metadata event naming each
// trace's lane.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the collected traces as Chrome trace-viewer
// JSON: one lane (tid) per trace, every span a complete event at its
// recorder-relative microsecond offset.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := []chromeEvent{}
	for i, tr := range t.Traces() {
		tid := i + 1
		events = append(events, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   tid,
			Args:  map[string]any{"name": tr.Name + " [" + tr.ID + "]"},
		})
		events = appendChromeSpans(events, tr.Spans, tid)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

func appendChromeSpans(events []chromeEvent, spans []*Span, tid int) []chromeEvent {
	for _, sp := range spans {
		ev := chromeEvent{
			Name:  sp.Name,
			Cat:   "flex",
			Phase: "X",
			TS:    sp.StartUS,
			Dur:   sp.DurUS,
			PID:   1,
			TID:   tid,
		}
		if ev.Dur <= 0 {
			ev.Dur = 1 // zero-width events vanish in the viewer
		}
		if sp.Detail != "" {
			ev.Args = map[string]any{"detail": sp.Detail}
		}
		events = append(events, ev)
		events = appendChromeSpans(events, sp.Spans, tid)
	}
	return events
}
