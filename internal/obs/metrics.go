package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric names follow flex_<subsystem>_<name>_<unit> (docs/
// OBSERVABILITY.md); flexvet's metricname analyzer enforces the
// convention on every literal registered here.

// LatencyBuckets is the shared fixed-bucket layout for latency
// histograms: 0.5 ms to 60 s, roughly logarithmic. One layout everywhere
// keeps queue/device/RPC/end-to-end distributions comparable.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Label is one metric label pair.
type Label struct {
	Key, Value string
}

// Registry holds named metric families and renders them in Prometheus
// text exposition format 0.0.4. A nil *Registry is valid everywhere and
// registers nothing — instrumented code runs identically with metrics
// off. Registering the same name+labels twice returns the same
// instrument; registering one name under two different kinds panics.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return &Registry{families: make(map[string]*family)} }

type family struct {
	name, help, kind string
	buckets          []float64 // histograms only
	series           map[string]*series
}

// series is one labeled instrument of a family. Counters and gauges live
// in bits (float64 bits, CAS-updated); histograms in counts/sumBits;
// sample, when set, overrides the value at scrape time (CounterFunc and
// GaugeFunc).
type series struct {
	labels []Label
	bits   atomic.Uint64
	sample func() float64

	buckets []float64       // histogram upper bounds (the family's)
	counts  []atomic.Uint64 // per-bucket, last is +Inf
	sumnum  atomic.Uint64   // float64 bits of the histogram sum
	count   atomic.Uint64
}

func labelKey(labels []Label) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "\x00" + l.Value
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x01")
}

// register returns the series for name+labels, creating family and
// series as needed, or panics on a kind conflict.
func (r *Registry) register(name, help, kind string, buckets []float64, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, buckets: buckets,
			series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.kind, kind))
	}
	key := labelKey(labels)
	s := f.series[key]
	if s == nil {
		s = &series{labels: append([]Label(nil), labels...)}
		if kind == "histogram" {
			s.buckets = f.buckets
			s.counts = make([]atomic.Uint64, len(f.buckets)+1)
		}
		f.series[key] = s
	}
	return s
}

// Counter is a monotonically increasing metric. The nil Counter (from a
// nil Registry) accepts and drops all updates.
type Counter struct{ s *series }

// Counter registers (or fetches) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) Counter {
	if r == nil {
		return Counter{}
	}
	return Counter{r.register(name, help, "counter", nil, labels)}
}

// Add increases the counter by v (negative v is dropped — counters only
// go up).
func (c Counter) Add(v float64) {
	if c.s == nil || v < 0 {
		return
	}
	addFloat(&c.s.bits, v)
}

// Inc increases the counter by one.
func (c Counter) Inc() { c.Add(1) }

// Gauge is a set-to-current-value metric. The nil Gauge drops updates.
type Gauge struct{ s *series }

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) Gauge {
	if r == nil {
		return Gauge{}
	}
	return Gauge{r.register(name, help, "gauge", nil, labels)}
}

// Set stores the gauge's current value.
func (g Gauge) Set(v float64) {
	if g.s == nil {
		return
	}
	g.s.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by v (negative allowed).
func (g Gauge) Add(v float64) {
	if g.s == nil {
		return
	}
	addFloat(&g.s.bits, v)
}

// CounterFunc registers a counter whose value is sampled from f at
// scrape time — for cumulative totals another layer already tracks.
// f must be monotone non-decreasing and safe for concurrent calls.
func (r *Registry) CounterFunc(name, help string, f func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, "counter", nil, labels).sample = f
}

// GaugeFunc registers a gauge sampled from f at scrape time.
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, "gauge", nil, labels).sample = f
}

// Histogram is a fixed-bucket distribution. The nil Histogram drops
// observations.
type Histogram struct{ s *series }

// Histogram registers (or fetches) a histogram with the given upper
// bucket bounds (sorted ascending; +Inf is implicit). All series of one
// family share the first registration's buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) Histogram {
	if r == nil {
		return Histogram{}
	}
	return Histogram{r.register(name, help, "histogram", buckets, labels)}
}

// Observe records one sample.
func (h Histogram) Observe(v float64) {
	if h.s == nil {
		return
	}
	h.s.counts[sort.SearchFloat64s(h.s.buckets, v)].Add(1)
	h.s.count.Add(1)
	addFloat(&h.s.sumnum, v)
}

// WritePrometheus renders every family in text exposition format 0.0.4:
// families sorted by name, series by label signature, histograms with
// cumulative buckets, _sum and _count. Sorting makes scrapes
// deterministic for a fixed counter state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	if f.kind == "histogram" {
		cum := uint64(0)
		for i, bound := range f.buckets {
			cum += s.counts[i].Load()
			if err := writeSample(w, f.name+"_bucket",
				append(append([]Label(nil), s.labels...), Label{"le", formatFloat(bound)}),
				float64(cum)); err != nil {
				return err
			}
		}
		cum += s.counts[len(f.buckets)].Load()
		if err := writeSample(w, f.name+"_bucket",
			append(append([]Label(nil), s.labels...), Label{"le", "+Inf"}),
			float64(cum)); err != nil {
			return err
		}
		if err := writeSample(w, f.name+"_sum", s.labels,
			math.Float64frombits(s.sumnum.Load())); err != nil {
			return err
		}
		return writeSample(w, f.name+"_count", s.labels, float64(s.count.Load()))
	}
	v := math.Float64frombits(s.bits.Load())
	if s.sample != nil {
		v = s.sample()
	}
	return writeSample(w, f.name, s.labels, v)
}

func writeSample(w io.Writer, name string, labels []Label, v float64) error {
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l.Key)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(l.Value))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(formatFloat(v))
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// addFloat CAS-adds v to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}
