package obs

import (
	"runtime/debug"
	"sync"
)

// BuildInfo is the binary's identity: what GET /v1/buildinfo serves and
// what a fleet worker reports in its health payload, so mixed-version
// fleets are diagnosable from the coordinator.
type BuildInfo struct {
	// Module is the main module path; Version its module version
	// ("(devel)" for a plain source build).
	Module  string `json:"module"`
	Version string `json:"version"`
	// Revision and Time are the VCS commit stamped at build time, when
	// available; Dirty reports uncommitted changes in the build tree.
	Revision string `json:"revision,omitempty"`
	Time     string `json:"time,omitempty"`
	Dirty    bool   `json:"dirty,omitempty"`
	// Go is the toolchain version the binary was built with.
	Go string `json:"go"`
}

// Build returns the running binary's build identity, read once from the
// embedded debug.BuildInfo.
var Build = sync.OnceValue(func() BuildInfo {
	info := BuildInfo{Module: "unknown", Version: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Module = bi.Main.Path
	info.Version = bi.Main.Version
	info.Go = bi.GoVersion
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
})
