package analysis

// All returns every flexvet analyzer, in the order diagnostics and CLI
// flags present them. Adding an analyzer here is the only registration
// step (docs/ANALYSIS.md walks through writing one).
func All() []*Analyzer {
	return []*Analyzer{
		Walltime,
		Maporder,
		Devicetoken,
		Streamdiscipline,
		Errclose,
		Metricname,
	}
}
