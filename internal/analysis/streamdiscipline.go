package analysis

import (
	"go/ast"
)

// Streamdiscipline enforces the commands' stdout/stderr split: stdout is
// for the deterministic result (the tables, the report, the findings),
// stderr for everything about the run — timing, progress, cache and
// device stats. The byte-identity CI gates compare stdout across
// {workers}×{fpgas}×{scheduler} grids, so one stray wall-clock line on
// stdout breaks the repository's core determinism contract.
//
// In cmd/* packages, two forms are policed:
//
//   - os.Stdout may only appear as an argument to a call of a method
//     named Render — the designated result path the report tables use —
//     or at a site justified with //flexvet:stdout <reason>;
//   - fmt.Print/Printf/Println (implicit stdout) always need the
//     justification, typically on the designated result-printing
//     function's declaration.
//
// Library packages are exempt: they write to injected io.Writers, and the
// command wiring decides which stream those are.
var Streamdiscipline = &Analyzer{
	Name:         "streamdiscipline",
	Doc:          "flag stdout writes outside designated result paths in cmd/*",
	JustifyToken: "stdout",
	Run:          runStreamdiscipline,
}

func runStreamdiscipline(pass *Pass) {
	if !inCmd(pass.Pkg) {
		return
	}
	for _, f := range pass.Pkg.Files {
		renderArgs := map[ast.Expr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Render" {
				for _, arg := range call.Args {
					renderArgs[arg] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if isPkgCall(pass.Pkg.Info, call, "fmt", "Print", "Printf", "Println") {
					if !pass.Justified(call) {
						sel := call.Fun.(*ast.SelectorExpr)
						pass.Reportf(call.Pos(),
							"fmt.%s writes to stdout: results only — use fmt.Fprint*(os.Stderr, ...) for run commentary, or justify the result path with //flexvet:stdout <reason>",
							sel.Sel.Name)
					}
					return true
				}
			}
			if isPkgSelector(pass.Pkg.Info, nodeExpr(n), "os", "Stdout") {
				if renderArgs[nodeExpr(n)] || pass.Justified(n) {
					return true
				}
				pass.Reportf(n.Pos(),
					"os.Stdout outside a designated result path: timing/progress/stats lines belong on stderr (//flexvet:stdout <reason> to justify)")
			}
			return true
		})
	}
}

// nodeExpr returns n as an expression (nil otherwise).
func nodeExpr(n ast.Node) ast.Expr {
	e, _ := n.(ast.Expr)
	return e
}
