package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Maporder flags ranging over a map inside an output-writing function
// unless the iteration provably cannot leak map order into the output.
//
// Go randomizes map iteration, so any map range whose body's effect is
// order-sensitive makes output nondeterministic — the exact bug class the
// byte-identity CI gates exist to catch, one step earlier. A function is
// output-writing when it prints (fmt.Print*/Fprint*/Sprint*) or calls a
// Write*/Encode/Render method anywhere in its body. A map range inside
// one is allowed only when every statement in the loop body is
// order-insensitive:
//
//   - key/value collection, x = append(x, ...), where x is passed to a
//     sort.*/slices.Sort* call later in the same function;
//   - writes into another map, m[k] = v;
//   - integer accumulation (x += v, x++, counters — floating-point
//     accumulation is order-sensitive and stays flagged);
//
// or when the range carries //flexvet:sorted <reason>. The framework
// reports //flexvet:sorted comments that are not attached to a map range.
var Maporder = &Analyzer{
	Name:         "maporder",
	Doc:          "flag map iteration that can leak nondeterministic order into output",
	JustifyToken: "sorted",
	Run:          runMaporder,
}

func runMaporder(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !writesOutput(pass.Pkg.Info, fd.Body) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if _, isMap := pass.Pkg.Info.TypeOf(rs.X).Underlying().(*types.Map); !isMap {
					return true
				}
				if pass.Justified(rs) {
					return true
				}
				if orderInsensitiveBody(pass, fd, rs) {
					return true
				}
				pass.Reportf(rs.Pos(),
					"map iteration order can reach output: sort the keys first or justify with //flexvet:sorted <reason>")
				return true
			})
		}
	}
}

// writesOutput reports whether body contains a printing or serializing
// call: fmt.Print*/Fprint*/Sprint*, or a method named Write, WriteString,
// WriteByte, WriteRune, Encode, or Render.
func writesOutput(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPkgCall(info, call, "fmt",
			"Print", "Printf", "Println",
			"Fprint", "Fprintf", "Fprintln",
			"Sprint", "Sprintf", "Sprintln") {
			found = true
			return false
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Write", "WriteString", "WriteByte", "WriteRune", "Encode", "Render":
				// A selector call, not a package-qualified function: a
				// method on a writer/encoder/table value.
				if _, isPkg := info.Uses[firstIdent(sel.X)].(*types.PkgName); !isPkg {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// firstIdent unwraps expr to its leading identifier (nil when the base is
// not an identifier).
func firstIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.CallExpr:
			expr = e.Fun
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// orderInsensitiveBody reports whether every statement in the map range's
// body is one of the allowed order-insensitive forms.
func orderInsensitiveBody(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	info := pass.Pkg.Info
	for _, stmt := range rs.Body.List {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
			if !isIntegerExpr(info, s.X) {
				return false
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			switch s.Tok {
			case token.ASSIGN, token.DEFINE:
				if idx, ok := s.Lhs[0].(*ast.IndexExpr); ok {
					// m[k] = v into another map: insertion order is
					// invisible to map semantics.
					if _, isMap := info.TypeOf(idx.X).Underlying().(*types.Map); isMap {
						continue
					}
					return false
				}
				// x = append(x, ...) key collection: only safe when x is
				// sorted before use, later in this function.
				lhs, ok := s.Lhs[0].(*ast.Ident)
				if !ok || !isSelfAppend(lhs, s.Rhs[0]) {
					return false
				}
				if !sortedLater(info, fd, rs, lhs) {
					return false
				}
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
				if !isIntegerExpr(info, s.Lhs[0]) {
					return false
				}
			default:
				return false
			}
		default:
			return false
		}
	}
	return true
}

// isSelfAppend matches rhs == append(lhs, ...).
func isSelfAppend(lhs *ast.Ident, rhs ast.Expr) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || len(call.Args) == 0 {
		return false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	return ok && arg.Name == lhs.Name
}

// isIntegerExpr reports whether expr has an integer type (counters sum the
// same in any order; floats do not).
func isIntegerExpr(info *types.Info, expr ast.Expr) bool {
	t := info.TypeOf(expr)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// sortedLater reports whether slice is passed to a sort call — sort.* or
// slices.Sort* — after the range statement, in the same function.
func sortedLater(info *types.Info, fd *ast.FuncDecl, rs *ast.RangeStmt, slice *ast.Ident) bool {
	obj := info.Uses[slice]
	if obj == nil {
		obj = info.Defs[slice]
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		switch pn.Imported().Path() {
		case "sort":
		case "slices":
			if len(sel.Sel.Name) < 4 || sel.Sel.Name[:4] != "Sort" {
				return true
			}
		default:
			return true
		}
		for _, arg := range call.Args {
			argObj := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && obj != nil && info.Uses[id] == obj {
					argObj = true
				}
				return !argObj
			})
			if argObj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
