package analysis

// Fixture tests: one violating and one clean file per analyzer under
// testdata/<name>/, with `// want` assertions checked one-to-one against
// the diagnostics (see harness_test.go). Cmd-scoped analyzers get import
// paths containing /cmd/ so they actually run; TestCmdScope proves they
// stay silent on library packages.

import (
	"go/ast"
	"go/parser"
	"testing"
)

func TestWalltimeFixtures(t *testing.T) {
	runFixture(t, Walltime, "walltime", "example.com/internal/walltime")
}

func TestMaporderFixtures(t *testing.T) {
	runFixture(t, Maporder, "maporder", "example.com/internal/maporder")
}

func TestDevicetokenFixtures(t *testing.T) {
	runFixture(t, Devicetoken, "devicetoken", "example.com/internal/devicetoken")
}

func TestStreamdisciplineFixtures(t *testing.T) {
	runFixture(t, Streamdiscipline, "streamdiscipline", "example.com/cmd/streamdiscipline")
}

func TestErrcloseFixtures(t *testing.T) {
	runFixture(t, Errclose, "errclose", "example.com/cmd/errclose")
}

func TestMetricnameFixtures(t *testing.T) {
	runFixture(t, Metricname, "metricname", "example.com/internal/metricname")
}

// TestWalltimeObsExempt runs an unjustified clock-reading fixture under
// an internal/obs import path: the walltime analyzer must stay silent —
// the telemetry package is exempt wholesale.
func TestWalltimeObsExempt(t *testing.T) {
	runFixture(t, Walltime, "walltimeobs", "example.com/internal/obs")
}

// scopeSrc violates both cmd-scoped analyzers when compiled as a command.
const scopeSrc = `package p

import (
	"fmt"
	"os"
)

func F(f *os.File) {
	fmt.Println("progress")
	f.Close()
}
`

// TestCmdScope checks that streamdiscipline and errclose fire under a
// cmd/* import path and stay silent under a library import path — except
// internal/fleet, where errclose (and only errclose) also applies: the
// fleet transport's response-body closes are the same dropped-error class.
func TestCmdScope(t *testing.T) {
	azs := []*Analyzer{Streamdiscipline, Errclose}
	for _, tc := range []struct {
		importPath string
		wantDiags  int
	}{
		{"example.com/cmd/scope", 2},
		{"example.com/internal/scope", 0},
		{"example.com/internal/fleet", 1},
	} {
		f, err := parser.ParseFile(fixtureFset, tc.importPath+"/p.go", scopeSrc, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := Check(fixtureFset, fixtureImporter(), tc.importPath, []*ast.File{f})
		if err != nil {
			t.Fatal(err)
		}
		diags := RunAnalyzers(azs, pkg)
		if len(diags) != tc.wantDiags {
			t.Errorf("%s: got %d diagnostics, want %d: %v", tc.importPath, len(diags), tc.wantDiags, diags)
		}
	}
}
