package fixture

// Good registers names that follow the convention, plus one justified
// exception.
func Good(r *Registry) {
	r.Counter("flex_serve_jobs_total", "completed jobs")
	r.Counter("flex_fleet_rpc_total", "rpc attempts", Label{"node", "n1"})
	r.Gauge("flex_serve_queue_depth_jobs", "queue occupancy")
	r.Histogram("flex_sched_queue_wait_seconds", "queue wait", []float64{0.1, 1})
	r.GaugeFunc("flex_serve_build_info", "build identity", func() float64 { return 1 })
	//flexvet:metricname legacy dashboard name, grandfathered until the boards migrate
	r.Counter("legacy_requests", "grandfathered")
}

// NotARegistry proves the analyzer keys on the Registry type, not on
// method names alone.
type NotARegistry struct{}

// Counter shares the method name but not the receiver type.
func (n *NotARegistry) Counter(name, help string) int { return 0 }

// Decoy calls an unrelated Counter with a non-conforming name.
func Decoy(n *NotARegistry) {
	n.Counter("whatever", "not a metric registry")
}
