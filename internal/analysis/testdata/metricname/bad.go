// Package fixture exercises the metricname analyzer: registrations that
// break the flex_<subsystem>_<name>_<unit> convention, a computed name,
// and a stale justification.
package fixture

// Label mimics obs.Label.
type Label struct{ Key, Value string }

// Registry mimics obs.Registry — the analyzer matches the receiver type
// by name, so the fixture needs no real obs import.
type Registry struct{}

// Counter mimics the registry's counter registration.
func (r *Registry) Counter(name, help string, labels ...Label) int { return 0 }

// Gauge mimics the registry's gauge registration.
func (r *Registry) Gauge(name, help string, labels ...Label) int { return 0 }

// Histogram mimics the registry's histogram registration.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) int { return 0 }

// GaugeFunc mimics the registry's sampled-gauge registration.
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...Label) {}

// Bad registers names that break the convention.
func Bad(r *Registry) {
	r.Counter("jobs_total", "no flex prefix")                // want "breaks the flex_<subsystem>_<name>_<unit> convention"
	r.Counter("flex_jobs_total", "missing a name segment")   // want "breaks the flex_<subsystem>_<name>_<unit> convention"
	r.Gauge("flex_serve_queue_depth", "no unit suffix")      // want "breaks the flex_<subsystem>_<name>_<unit> convention"
	r.Histogram("flex_Serve_job_seconds", "upper case", nil) // want "breaks the flex_<subsystem>_<name>_<unit> convention"
	r.GaugeFunc("flex_serve_wall_ms", "wrong unit", nil)     // want "breaks the flex_<subsystem>_<name>_<unit> convention"
	name := "flex_serve_jobs_total"
	r.Counter(name, "computed names are uncheckable") // want "metric name must be a string literal"
}

// Stale carries a justification with nothing to justify.
func Stale() int {
	//flexvet:metricname stale reason, nothing below registers a metric // want "unused //flexvet:metricname justification"
	return 0
}
