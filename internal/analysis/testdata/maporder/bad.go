// Package fixture exercises the maporder analyzer: map iteration whose
// order can leak into output.
package fixture

import (
	"fmt"
	"os"
)

// PrintMap streams map entries straight to output in iteration order.
func PrintMap(m map[string]int) {
	for k, v := range m { // want "map iteration order can reach output"
		fmt.Fprintf(os.Stderr, "%s=%d\n", k, v)
	}
}

// SumFloats accumulates floats while printing: float addition is not
// associative, so the printed total depends on iteration order.
func SumFloats(m map[string]float64) {
	var total float64
	for _, v := range m { // want "map iteration order can reach output"
		total += v
	}
	fmt.Println(total)
}

// CollectNoSort collects keys but never sorts them before printing.
func CollectNoSort(m map[string]int) {
	var keys []string
	for k := range m { // want "map iteration order can reach output"
		keys = append(keys, k)
	}
	fmt.Println(keys)
}

// Stale carries a sorted justification that is not attached to any map
// range.
func Stale(m map[string]int) {
	//flexvet:sorted nothing here ranges a map // want "unused //flexvet:sorted justification"
	fmt.Println(len(m))
}
