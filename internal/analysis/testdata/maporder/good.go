package fixture

import (
	"fmt"
	"sort"
)

// SortedKeys is the canonical collect-sort-iterate idiom: the map range
// only collects keys, and the slice is sorted before use.
func SortedKeys(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// CountValues only accumulates integers: the sum is the same in any
// iteration order.
func CountValues(m map[string]int) {
	total := 0
	for _, v := range m {
		total += v
	}
	fmt.Println(total)
}

// Invert writes into another map: insertion order is invisible.
func Invert(m map[string]int) {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	fmt.Println(len(inv))
}

// Justified carries a reviewed exception on the range line.
func Justified(m map[string]int) {
	for k := range m { //flexvet:sorted the sink dedupes and sorts downstream
		fmt.Println(k)
	}
}

// NoOutput ranges freely: the function writes nothing anywhere.
func NoOutput(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
