// Package fixture proves the walltime exemption for internal/obs: this
// file reads the wall clock with no justification anywhere, and the
// harness runs it under an internal/obs import path expecting zero
// diagnostics — the telemetry package is the sanctioned clock sink.
package fixture

import "time"

// SpanClock reads the clock the way a span recorder does.
func SpanClock() time.Duration {
	start := time.Now()
	return time.Since(start)
}
