package fixture

import "os"

// CheckedClose joins the close error with the write error.
func CheckedClose(f *os.File, err error) error {
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// noErrFlusher mimics http.Flusher: Flush returns nothing, so there is
// no error to drop.
type noErrFlusher struct{}

// Flush flushes without an error result.
func (noErrFlusher) Flush() {}

// FlushNoError is legal because the signature has no error.
func FlushNoError(f noErrFlusher) {
	f.Flush()
}

// JustifiedClose documents a read-side close where the error is
// immaterial.
func JustifiedClose(f *os.File) {
	f.Close() //flexvet:close read-side close, decode errors surface elsewhere
}
