// Package fixture exercises the errclose analyzer (loaded under a cmd/
// import path by the harness): Close/Flush errors dropped on main paths.
package fixture

import (
	"bufio"
	"os"
)

// WriteOut drops the close error after writing.
func WriteOut(f *os.File) {
	f.Write([]byte("data"))
	f.Close() // want "f\.Close\(\) error is dropped"
}

// DeferFlush defers a bufio flush: the error is unobservable.
func DeferFlush(w *bufio.Writer) {
	defer w.Flush() // want "deferred w\.Flush\(\) discards its error"
	w.WriteString("data")
}

// ExplicitDiscard hides the error behind the blank identifier.
func ExplicitDiscard(f *os.File) {
	_ = f.Close() // want "_ = f\.Close\(\) hides write failures"
}
