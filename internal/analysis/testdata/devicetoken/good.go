package fixture

import "context"

// DeferRelease is the canonical shape: error-guarded return, then defer.
func DeferRelease(ctx context.Context) error {
	release, err := AcquireDevice(ctx)
	if err != nil {
		return err
	}
	defer release()
	return work()
}

// ReleaseEveryPath releases explicitly before each return.
func ReleaseEveryPath(ctx context.Context, cond bool) error {
	release, err := AcquireDevice(ctx)
	if err != nil {
		return err
	}
	if cond {
		release()
		return nil
	}
	release()
	return work()
}

// HandOff returns the release func: ownership moves to the caller.
func HandOff(ctx context.Context) (func(), error) {
	release, err := AcquireDevice(ctx)
	if err != nil {
		return nil, err
	}
	return release, nil
}

// Registered escapes the release func into a cleanup list the caller
// owns.
func Registered(ctx context.Context, cleanup *[]func()) error {
	release, err := AcquireDevice(ctx)
	if err != nil {
		return err
	}
	*cleanup = append(*cleanup, release)
	return work()
}

// Justified documents a token intentionally left held: a deadline reaper
// outside this function releases abandoned boards, which the structural
// walker cannot see.
func Justified(ctx context.Context, cond bool) error {
	//flexvet:release the deadline reaper releases abandoned tokens
	release, err := AcquireDevice(ctx)
	if err != nil {
		return err
	}
	if cond {
		return nil
	}
	release()
	return nil
}
