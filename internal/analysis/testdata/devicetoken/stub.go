// Package fixture exercises the devicetoken analyzer against a local
// stand-in for batch.AcquireDevice (the analyzer matches the callee name,
// so the fixture needs no internal imports).
package fixture

import "context"

// AcquireDevice mimics batch.AcquireDevice's shape.
func AcquireDevice(ctx context.Context) (func(), error) {
	_ = ctx
	return func() {}, nil
}

// work stands in for an engine run while a board is held.
func work() error { return nil }
