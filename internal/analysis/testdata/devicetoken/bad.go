package fixture

import (
	"context"
	"errors"
)

// Discard throws the release func away: the token can never come back.
func Discard(ctx context.Context) error {
	_, err := AcquireDevice(ctx) // want "AcquireDevice release func is discarded"
	return err
}

// LeakOnEarlyReturn releases on the happy path but not on the early
// return.
func LeakOnEarlyReturn(ctx context.Context, cond bool) error {
	release, err := AcquireDevice(ctx) // want "device token from AcquireDevice may leak"
	if err != nil {
		return err
	}
	if cond {
		return errors.New("early exit holding the board")
	}
	release()
	return nil
}

// LeakOnFallThrough releases only in one branch and falls through in the
// other.
func LeakOnFallThrough(ctx context.Context, ok bool) {
	release, err := AcquireDevice(ctx) // want "device token from AcquireDevice may leak"
	if err != nil {
		return
	}
	if ok {
		release()
	}
}
