// Package fixture exercises the streamdiscipline analyzer (loaded under a
// cmd/ import path by the harness): stdout writes outside a designated
// result path.
package fixture

import (
	"fmt"
	"os"
)

// Progress prints run commentary to implicit stdout.
func Progress(done, total int) {
	fmt.Printf("progress %d/%d\n", done, total) // want "fmt.Printf writes to stdout"
}

// Timing writes wall clock to os.Stdout directly.
func Timing(wall string) {
	fmt.Fprintf(os.Stdout, "wall %s\n", wall) // want "os.Stdout outside a designated result path"
}

// Banner prints a banner with no justification.
func Banner() {
	fmt.Println("starting up") // want "fmt.Println writes to stdout"
}

// Quiet carries a stale stdout justification.
func Quiet() int {
	//flexvet:stdout stale, nothing below writes to stdout // want "unused //flexvet:stdout justification"
	return 0
}
