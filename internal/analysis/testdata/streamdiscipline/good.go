package fixture

import (
	"fmt"
	"os"
)

// table mimics a report table with a Render result path.
type table struct{}

// Render writes the deterministic table to w.
func (table) Render(w *os.File) { fmt.Fprintln(w, "row") }

// Result renders to stdout through the designated Render path.
func Result() {
	table{}.Render(os.Stdout)
}

// Commentary goes to stderr: always legal.
func Commentary(wall string) {
	fmt.Fprintln(os.Stderr, "wall", wall)
}

// PrintResult is a designated result printer: the function-scope
// justification covers every stdout write in it.
//
//flexvet:stdout this function is the command's result block
func PrintResult(line string) {
	fmt.Println(line)
	fmt.Fprintln(os.Stdout, line)
}

// InlineJustified justifies a single result line in place.
func InlineJustified(verdict string) {
	fmt.Printf("verdict: %s\n", verdict) //flexvet:stdout the verdict is the result
}
