package fixture

import (
	"fmt"
	"os"
	"time"
)

// ReportWall is allowed: the function-scope justification on this
// declaration covers both clock reads below.
//
//flexvet:walltime progress line on stderr only, never stdout
func ReportWall() {
	start := time.Now()
	fmt.Fprintln(os.Stderr, "wall", time.Since(start))
}

// InlineJustified carries the justification on the flagged line.
func InlineJustified() time.Time {
	return time.Now() //flexvet:walltime deadline arithmetic for the scheduler
}

// AboveJustified carries the justification on the line above.
func AboveJustified() time.Time {
	//flexvet:walltime deadline arithmetic for the scheduler
	return time.Now()
}

// ClockFree never touches the clock and needs nothing.
func ClockFree(d time.Duration) time.Duration {
	return 2 * d
}
