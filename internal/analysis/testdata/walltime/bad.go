// Package fixture exercises the walltime analyzer: wall-clock reads
// without a justification, plus a stale justification.
package fixture

import "time"

// Elapsed measures wall time with no justification anywhere.
func Elapsed() time.Duration {
	start := time.Now()      // want "time.Now reads the wall clock"
	return time.Since(start) // want "time.Since reads the wall clock"
}

// Remaining reads the clock through time.Until.
func Remaining(d time.Time) time.Duration {
	return time.Until(d) // want "time.Until reads the wall clock"
}

// Stale carries a justification with nothing to justify.
func Stale() int {
	//flexvet:walltime stale reason, nothing below reads the clock // want "unused //flexvet:walltime justification"
	return 0
}
