// Package analysis is flexvet's engine: a stdlib-only (go/ast, go/parser,
// go/types) vet-style framework plus the FLEX-specific analyzers that
// machine-enforce the repository's determinism, device-token, and
// output-discipline invariants. Every rule the analyzers encode used to be
// a review comment; see docs/ANALYSIS.md for what each analyzer enforces
// and how to add one.
//
// Intentional exceptions are written in the source as justification
// comments of the form
//
//	//flexvet:<token> <reason>
//
// attached to the flagged line (same line, the line above, or the doc
// comment of the enclosing function declaration to cover every site in
// that function). The framework verifies the grammar of every such
// comment, and each analyzer reports justifications that do not attach to
// anything it would have flagged — a stale exception is itself a
// diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named, independently switchable check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags.
	Name string
	// Doc is the one-line description shown in flag help.
	Doc string
	// JustifyToken is the //flexvet:<token> that suppresses this
	// analyzer's diagnostics at a justified site ("" = not suppressible).
	JustifyToken string
	// Run inspects one package and reports through the pass.
	Run func(*Pass)
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
	justs []*justification
}

// Package is one loaded, type-checked package.
type Package struct {
	// ImportPath is the package's import path (analyzers scoped to
	// cmd/* key off it).
	ImportPath string
	// Fset positions every file in the package.
	Fset *token.FileSet
	// Files are the parsed non-test sources, comments included.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries identifier uses and expression types.
	Info *types.Info
}

// justification is one //flexvet:<token> comment and its use state.
type justification struct {
	token  string
	reason string
	file   *ast.File
	pos    token.Position
	used   bool
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Justified reports whether node carries this analyzer's justification
// token: on the node's line, on the line above it, or on the enclosing
// function declaration (its doc comment or the line above `func`). A
// match marks the justification used.
func (p *Pass) Justified(node ast.Node) bool {
	if p.Analyzer.JustifyToken == "" {
		return false
	}
	pos := p.Pkg.Fset.Position(node.Pos())
	covered := map[int]bool{pos.Line: true, pos.Line - 1: true}
	if fd := p.enclosingFuncDecl(node.Pos()); fd != nil {
		funcLine := p.Pkg.Fset.Position(fd.Pos()).Line
		covered[funcLine-1] = true
		if fd.Doc != nil {
			for l := p.Pkg.Fset.Position(fd.Doc.Pos()).Line; l < funcLine; l++ {
				covered[l] = true
			}
		}
	}
	ok := false
	for _, j := range p.justs {
		if j.token == p.Analyzer.JustifyToken && j.pos.Filename == pos.Filename && covered[j.pos.Line] {
			j.used = true
			ok = true
		}
	}
	return ok
}

// enclosingFuncDecl finds the function declaration whose body spans pos
// (nil for package-level positions).
func (p *Pass) enclosingFuncDecl(pos token.Pos) *ast.FuncDecl {
	for _, f := range p.Pkg.Files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
				return fd
			}
		}
	}
	return nil
}

// RunAnalyzers runs every analyzer over pkg and returns the diagnostics,
// including one per justification comment that no enabled analyzer
// consumed — stale exceptions must be deleted, not accumulated.
func RunAnalyzers(analyzers []*Analyzer, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	justs := collectJustifications(pkg)
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags, justs: justs}
		a.Run(pass)
		for _, j := range justs {
			if j.token == a.JustifyToken && !j.used {
				diags = append(diags, Diagnostic{
					Analyzer: a.Name,
					Pos:      j.pos,
					File:     j.pos.Filename,
					Line:     j.pos.Line,
					Col:      j.pos.Column,
					Message: fmt.Sprintf("unused //flexvet:%s justification: nothing here needs it",
						j.token),
				})
			}
		}
	}
	diags = append(diags, CheckComments(pkg)...)
	sortDiagnostics(diags)
	return diags
}

// CheckComments validates the grammar of every //flexvet: comment in pkg:
// the token must belong to a registered analyzer (the full registry, so
// disabling an analyzer never turns its justifications into typos) and
// the reason must be non-empty. Violations are reported under the
// pseudo-analyzer "flexvet" so a typoed token can never silently grant an
// exception.
func CheckComments(pkg *Package) []Diagnostic {
	known := map[string]bool{}
	var tokens []string
	for _, a := range All() {
		if a.JustifyToken != "" {
			known[a.JustifyToken] = true
			tokens = append(tokens, a.JustifyToken)
		}
	}
	sort.Strings(tokens)
	var diags []Diagnostic
	report := func(pos token.Position, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Analyzer: "flexvet", Pos: pos, File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//flexvet:")
				if !ok {
					continue
				}
				tok, reason, _ := strings.Cut(rest, " ")
				pos := pkg.Fset.Position(c.Pos())
				switch {
				case !known[tok]:
					report(pos, "unknown flexvet justification token %q (want one of: %s)",
						tok, strings.Join(tokens, ", "))
				case strings.TrimSpace(reason) == "":
					report(pos, "//flexvet:%s needs a reason: //flexvet:%s <why this site is exempt>",
						tok, tok)
				}
			}
		}
	}
	return diags
}

// collectJustifications indexes every well-formed //flexvet:<token> <reason>
// comment in the package.
func collectJustifications(pkg *Package) []*justification {
	var out []*justification
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//flexvet:")
				if !ok {
					continue
				}
				tok, reason, _ := strings.Cut(rest, " ")
				if tok == "" || strings.TrimSpace(reason) == "" {
					continue // CheckComments reports the grammar error
				}
				out = append(out, &justification{
					token: tok, reason: strings.TrimSpace(reason),
					file: f, pos: pkg.Fset.Position(c.Pos()),
				})
			}
		}
	}
	return out
}

// sortDiagnostics orders by file, line, column, analyzer for stable output.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// isPkgCall reports whether call invokes pkgPath.name (e.g. "time".Now),
// resolving the qualifier through the type info so import renames cannot
// fool it.
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return true
		}
	}
	return false
}

// isPkgSelector reports whether expr is the selector pkgPath.name (e.g.
// "os".Stdout) resolved through the type info.
func isPkgSelector(info *types.Info, expr ast.Expr, pkgPath, name string) bool {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// inCmd reports whether the package is a command (cmd/* in this module) —
// several analyzers only police command main paths.
func inCmd(pkg *Package) bool {
	return strings.Contains(pkg.ImportPath, "/cmd/") || strings.HasPrefix(pkg.ImportPath, "cmd/")
}

// inFleet matches the fleet transport package (internal/fleet): its HTTP
// client and handlers close response bodies and request streams, the same
// dropped-error class errclose polices on the cmd mains.
func inFleet(pkg *Package) bool {
	return strings.HasSuffix(pkg.ImportPath, "internal/fleet") ||
		strings.Contains(pkg.ImportPath, "internal/fleet/")
}

// inObs matches the observability package (internal/obs): the sanctioned
// wall-clock sink, exempt from the walltime analyzer wholesale.
func inObs(pkg *Package) bool {
	return strings.HasSuffix(pkg.ImportPath, "internal/obs") ||
		strings.Contains(pkg.ImportPath, "internal/obs/")
}
