package analysis

import (
	"go/ast"
	"go/types"
)

// Devicetoken verifies that every AcquireDevice call releases its board
// token on all paths — a leaked token is a modeled board that stays busy
// forever, wedging every later accelerator job (the bug class PR 2 fixed
// by hand; this analyzer keeps it fixed).
//
// The accepted shapes, checked structurally over the enclosing block:
//
//	release, err := batch.AcquireDevice(ctx)
//	if err != nil { return ... }   // no token on the error path
//	defer release()                // or release() before every return
//
// Returns guarded by the acquire's error identifier are exempt (a failed
// acquire grants no token). Passing the release func to another function,
// storing it, or returning it transfers ownership and ends the check.
// Discarding it (`_, err :=`) or letting any return/fall-through path
// skip it is a diagnostic, suppressible with //flexvet:release <reason>.
var Devicetoken = &Analyzer{
	Name:         "devicetoken",
	Doc:          "flag AcquireDevice tokens that are not released on every path",
	JustifyToken: "release",
	Run:          runDevicetoken,
}

func runDevicetoken(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				assign, call := acquireAssign(stmt)
				if assign == nil {
					continue
				}
				if pass.Justified(call) {
					continue
				}
				rel, okIdent := assign.Lhs[0].(*ast.Ident)
				if !okIdent || rel.Name == "_" {
					pass.Reportf(call.Pos(),
						"AcquireDevice release func is discarded: the board token can never be released")
					continue
				}
				var errObj types.Object
				if errIdent, ok := assign.Lhs[1].(*ast.Ident); ok && errIdent.Name != "_" {
					errObj = pass.Pkg.Info.Defs[errIdent]
					if errObj == nil {
						errObj = pass.Pkg.Info.Uses[errIdent]
					}
				}
				relObj := pass.Pkg.Info.Defs[rel]
				if relObj == nil {
					relObj = pass.Pkg.Info.Uses[rel]
				}
				w := &releaseWalker{info: pass.Pkg.Info, rel: relObj, errObj: errObj}
				released, terminated := w.scan(block.List[i+1:], false)
				if w.leak || (!released && !terminated) {
					pass.Reportf(call.Pos(),
						"device token from AcquireDevice may leak: release it with defer or on every return path (//flexvet:release <reason> to justify)")
				}
			}
			return true
		})
	}
}

// acquireAssign matches `rel, err := AcquireDevice(...)` (any qualifier)
// and returns the assignment and call, or nils.
func acquireAssign(stmt ast.Stmt) (*ast.AssignStmt, *ast.CallExpr) {
	assign, ok := stmt.(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 2 || len(assign.Rhs) != 1 {
		return nil, nil
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, nil
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		if fn.Name == "AcquireDevice" {
			return assign, call
		}
	case *ast.SelectorExpr:
		if fn.Sel.Name == "AcquireDevice" {
			return assign, call
		}
	}
	return nil, nil
}

// releaseWalker tracks whether the release func is guaranteed to run,
// scanning statements structurally (no CFG: if/for/switch bodies are
// visited, error-guarded branches are exempt).
type releaseWalker struct {
	info   *types.Info
	rel    types.Object // the release func value
	errObj types.Object // the acquire's error (returns under its guard are exempt)
	leak   bool         // a return without release was found
}

// scan walks stmts with the given released state and reports whether the
// token is released on fall-through and whether control always terminates
// (return/exit/panic) before falling through. Leaky returns found along
// the way are recorded in w.leak.
func (w *releaseWalker) scan(stmts []ast.Stmt, released bool) (bool, bool) {
	for _, stmt := range stmts {
		if released {
			// Release funcs are idempotent: once released (or deferred,
			// or ownership moved), nothing later can leak.
			return true, false
		}
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if w.isReleaseCall(s.X) {
				released = true
				continue
			}
			if isTerminalCall(w.info, s.X) {
				// os.Exit/panic before release: the process (or stack)
				// dies holding the token; the modeled board pool dies
				// with the process, so this is not a leak.
				return released, true
			}
			if w.usesRel(s) {
				released = true // escaped into a call: ownership moved
			}
		case *ast.DeferStmt:
			if w.callsRelease(s.Call) || w.usesRel(s.Call) {
				released = true
			}
		case *ast.ReturnStmt:
			if w.usesRel(s) {
				return true, true // release func returned to the caller
			}
			w.leak = true
			return released, true
		case *ast.IfStmt:
			if w.mentionsErr(s.Cond) {
				// Error-guarded branch: acquire failed, no token held.
				continue
			}
			bRel, bTerm := w.scan(s.Body.List, released)
			eRel, eTerm := released, false
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					eRel, eTerm = w.scan(e.List, released)
				case *ast.IfStmt:
					eRel, eTerm = w.scan([]ast.Stmt{e}, released)
				}
			}
			switch {
			case bTerm && eTerm:
				return released, true
			case bTerm:
				released = eRel
			case eTerm:
				released = bRel
			default:
				released = bRel && eRel
			}
		case *ast.BlockStmt:
			rel, term := w.scan(s.List, released)
			if term {
				return rel, true
			}
			released = rel
		case *ast.ForStmt:
			// The loop may run zero times: body releases do not count,
			// but returns inside still must release.
			w.scan(s.Body.List, released)
		case *ast.RangeStmt:
			w.scan(s.Body.List, released)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// Conservative: case bodies are checked for leaky returns,
			// their releases do not propagate past the switch.
			ast.Inspect(stmt, func(n ast.Node) bool {
				switch cc := n.(type) {
				case *ast.CaseClause:
					w.scan(cc.Body, released)
					return false
				case *ast.CommClause:
					w.scan(cc.Body, released)
					return false
				}
				return true
			})
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && w.rel != nil && w.info.Uses[id] == w.rel {
					return true, false // rebound: stop tracking the old value
				}
			}
			if w.usesRel(s) {
				released = true // stored somewhere: ownership moved
			}
		case *ast.GoStmt:
			if w.usesRel(s.Call) {
				released = true
			}
		default:
			if w.usesRel(stmt) {
				released = true
			}
		}
	}
	return released, false
}

// isReleaseCall matches a direct call of the release func value.
func (w *releaseWalker) isReleaseCall(expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	return ok && w.callsRelease(call)
}

func (w *releaseWalker) callsRelease(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && w.rel != nil && w.info.Uses[id] == w.rel
}

// usesRel reports whether n references the release func value at all.
func (w *releaseWalker) usesRel(n ast.Node) bool {
	if w.rel == nil {
		return false
	}
	used := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && w.info.Uses[id] == w.rel {
			used = true
		}
		return !used
	})
	return used
}

// mentionsErr reports whether cond references the acquire's error object.
func (w *releaseWalker) mentionsErr(cond ast.Expr) bool {
	if w.errObj == nil {
		return false
	}
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && w.info.Uses[id] == w.errObj {
			found = true
		}
		return !found
	})
	return found
}

// isTerminalCall matches calls that never return: os.Exit, panic,
// log.Fatal*.
func isTerminalCall(info *types.Info, expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
		return true
	}
	return isPkgCall(info, call, "os", "Exit") ||
		isPkgCall(info, call, "log", "Fatal", "Fatalf", "Fatalln")
}
