package analysis

import (
	"go/ast"
	"go/types"
)

// Errclose requires cmd/* main paths — and the fleet transport, whose
// HTTP clients and handlers juggle response bodies — to check the error
// from Close() and Flush() calls that return one: the flexlg -out bug
// class, where a deferred or bare close silently dropped write-back
// errors and the tool reported success over a truncated file.
//
// Flagged forms (only when the method's signature returns an error):
//
//	w.Close()         // bare call, error dropped
//	defer w.Flush()   // deferred, error unobservable
//	_ = w.Close()     // explicit discard still hides write failures
//
// Methods that return nothing (http.Flusher.Flush) are not flagged.
// Read-side closes and shutdown-path closes where the error is genuinely
// inconsequential carry //flexvet:close <reason>.
var Errclose = &Analyzer{
	Name:         "errclose",
	Doc:          "flag unchecked Close/Flush errors in cmd/* and internal/fleet",
	JustifyToken: "close",
	Run:          runErrclose,
}

func runErrclose(pass *Pass) {
	if !inCmd(pass.Pkg) && !inFleet(pass.Pkg) {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call := closeCall(pass.Pkg.Info, s.X); call != nil && !pass.Justified(call) {
					pass.Reportf(call.Pos(),
						"%s error is dropped: check it (or //flexvet:close <reason>)", callName(call))
				}
			case *ast.DeferStmt:
				if call := closeCallExpr(pass.Pkg.Info, s.Call); call != nil && !pass.Justified(s) {
					pass.Reportf(s.Pos(),
						"deferred %s discards its error: close explicitly and check (or //flexvet:close <reason>)", callName(call))
				}
			case *ast.AssignStmt:
				if len(s.Lhs) == 1 && len(s.Rhs) == 1 && isBlank(s.Lhs[0]) {
					if call := closeCall(pass.Pkg.Info, s.Rhs[0]); call != nil && !pass.Justified(s) {
						pass.Reportf(s.Pos(),
							"_ = %s hides write failures: check the error (or //flexvet:close <reason>)", callName(call))
					}
				}
			}
			return true
		})
	}
}

// isBlank matches the blank identifier.
func isBlank(expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	return ok && id.Name == "_"
}

// closeCall matches expr as a call to a method named Close or Flush whose
// signature returns an error.
func closeCall(info *types.Info, expr ast.Expr) *ast.CallExpr {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return nil
	}
	return closeCallExpr(info, call)
}

func closeCallExpr(info *types.Info, call *ast.CallExpr) *ast.CallExpr {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "Flush") {
		return nil
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return nil
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if named, ok := sig.Results().At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return call
		}
	}
	return nil
}

// callName renders "recv.Close()" for a diagnostic.
func callName(call *ast.CallExpr) string {
	sel := call.Fun.(*ast.SelectorExpr)
	if id := firstIdent(sel.X); id != nil {
		return id.Name + "." + sel.Sel.Name + "()"
	}
	return sel.Sel.Name + "()"
}
