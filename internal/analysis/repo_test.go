package analysis

// The repo-wide gate: flexvet over the whole module must report zero
// diagnostics. Every intentional exception in the tree is annotated with
// a //flexvet: justification, so the moment a violation (or a stale
// justification) lands, this test — and CI — fails with the exact
// file:line and message.

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestRepoClean(t *testing.T) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Skip("not in a module")
	}
	pkgs, err := Load(filepath.Dir(gomod), "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	for _, pkg := range pkgs {
		for _, d := range RunAnalyzers(All(), pkg) {
			t.Errorf("%s", d)
		}
	}
}
