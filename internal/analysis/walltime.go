package analysis

import (
	"go/ast"
)

// Walltime forbids reading the wall clock — time.Now, time.Since,
// time.Until — outside the explicit allowlist of wall-reporting sites.
//
// The repository's determinism contract is that everything a run emits on
// stdout, serializes into a layout, models as seconds, or records into a
// BENCH_*.json file is a pure function of the inputs; wall clock may only
// feed stderr progress/scheduling lines and the pool's wall measurements.
// Each sanctioned site carries //flexvet:walltime <reason>, which doubles
// as the human-readable registry of where wall time is allowed to exist.
// internal/obs is exempt wholesale: it is the telemetry sink itself —
// span timestamps and metrics are wall time by definition and never feed
// results — so per-site annotations there would be pure noise.
var Walltime = &Analyzer{
	Name:         "walltime",
	Doc:          "flag time.Now/Since/Until outside justified wall-reporting sites",
	JustifyToken: "walltime",
	Run:          runWalltime,
}

func runWalltime(pass *Pass) {
	if inObs(pass.Pkg) {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isPkgCall(pass.Pkg.Info, call, "time", "Now", "Since", "Until") {
				return true
			}
			if pass.Justified(call) {
				return true
			}
			sel := call.Fun.(*ast.SelectorExpr)
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock: route it to stderr reporting only and justify with //flexvet:walltime <reason>",
				sel.Sel.Name)
			return true
		})
	}
}
