package analysis

// The fixture harness: each analyzer has a testdata/<name>/ package with
// a violating file whose flagged lines carry `// want "regexp"` comments
// (several per line allowed) and a clean file with none. The harness
// type-checks the fixture like a real package, runs exactly one analyzer
// through RunAnalyzers (so unused-justification and comment-grammar
// diagnostics fire too), and then requires a one-to-one match: every
// diagnostic must land on a line with a matching want, and every want
// must be consumed — asserting exact positions and messages both ways.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// fixtureFset and fixtureImporter are shared across fixture tests so the
// stdlib packages the fixtures import are type-checked from source once.
var (
	fixtureFset     = token.NewFileSet()
	fixtureImporter = sync.OnceValue(func() types.Importer {
		return importer.ForCompiler(fixtureFset, "source", nil)
	})
)

var wantRE = regexp.MustCompile(`// want (.*)$`)

// expectation is one `// want` assertion at file:line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// runFixture loads testdata/<dir> as import path importPath, runs the one
// analyzer, and matches diagnostics against want comments.
func runFixture(t *testing.T, az *Analyzer, dir, importPath string) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", dir, "*.go"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no fixtures under testdata/%s: %v", dir, err)
	}
	var files []*ast.File
	var wants []*expectation
	for _, path := range paths {
		f, err := parser.ParseFile(fixtureFset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fixtureFset.Position(c.Pos())
				for _, pat := range splitQuoted(t, pos, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	pkg, err := Check(fixtureFset, fixtureImporter(), importPath, files)
	if err != nil {
		t.Fatalf("fixture does not type-check: %v", err)
	}
	for _, d := range RunAnalyzers([]*Analyzer{az}, pkg) {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == d.File && w.line == d.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want %q, but no diagnostic matched", w.file, w.line, w.pattern)
		}
	}
}

// splitQuoted parses the quoted regexp list after `// want`.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			t.Fatalf("%s: want patterns must be double-quoted: %q", pos, s)
		}
		end := strings.Index(s[1:], `"`)
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern: %q", pos, s)
		}
		out = append(out, s[1:1+end])
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}
