package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
}

// Load resolves patterns (e.g. "./...") with the go tool from dir, then
// parses and type-checks every matched package's non-test sources using
// only the standard library: imports — including this module's internal
// packages — are type-checked from source, so the loader needs no
// pre-built export data and adds no module dependencies. Test files are
// deliberately out of scope: the invariants flexvet enforces are about
// what ships, and tests measure wall clocks by design.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	fset := token.NewFileSet()
	// One shared source importer: each dependency (stdlib or internal) is
	// type-checked once and memoized across the whole load.
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, err := Check(fset, imp, lp.ImportPath, files)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Check type-checks parsed files into a Package ready for the analyzers.
// The fixture harness uses it directly; Load wraps it for real packages.
func Check(fset *token.FileSet, imp types.Importer, importPath string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
