package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
)

// metricNameRE is the documented naming convention
// (docs/OBSERVABILITY.md): flex_<subsystem>_<name>_<unit>, all-lowercase
// snake case with at least three segments after the flex prefix, ending
// in a recognized unit.
var metricNameRE = regexp.MustCompile(
	`^flex_[a-z][a-z0-9]*(_[a-z][a-z0-9]*)+_(total|seconds|bytes|jobs|workers|state|count|info)$`)

// metricMethods are the obs.Registry registration entry points whose
// first argument is a metric name.
var metricMethods = map[string]bool{
	"Counter": true, "CounterFunc": true,
	"Gauge": true, "GaugeFunc": true,
	"Histogram": true,
}

// Metricname enforces the metric naming convention on every name
// registered with an obs.Registry: flex_<subsystem>_<name>_<unit>
// (docs/OBSERVABILITY.md). Names must be string literals — a computed
// name cannot be checked here and is flagged too — so the scrape
// vocabulary is greppable from the source.
var Metricname = &Analyzer{
	Name:         "metricname",
	Doc:          "flag metric registrations that break the flex_<subsystem>_<name>_<unit> convention",
	JustifyToken: "metricname",
	Run:          runMetricname,
}

func runMetricname(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !metricMethods[sel.Sel.Name] || !isRegistryRecv(pass.Pkg.Info, sel.X) {
				return true
			}
			if pass.Justified(call) {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok {
				pass.Reportf(call.Args[0].Pos(),
					"metric name must be a string literal so the flex_<subsystem>_<name>_<unit> convention is checkable")
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !metricNameRE.MatchString(name) {
				pass.Reportf(lit.Pos(),
					"metric name %q breaks the flex_<subsystem>_<name>_<unit> convention (unit one of total, seconds, bytes, jobs, workers, state, count, info)",
					name)
			}
			return true
		})
	}
}

// isRegistryRecv reports whether expr's static type is (a pointer to) a
// named type called Registry — the obs metrics registry, matched by name
// so the analyzer's fixtures need no real obs import.
func isRegistryRecv(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}
