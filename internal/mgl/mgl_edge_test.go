package mgl

import (
	"testing"

	"github.com/flex-eda/flex/internal/gen"
	"github.com/flex-eda/flex/internal/model"
)

// TestImpossibleDesignFailsGracefully injects an unsatisfiable workload: a
// die too small for its cells. The engine must terminate, report failures,
// and not panic.
func TestImpossibleDesignFailsGracefully(t *testing.T) {
	l := &model.Layout{Name: "overfull", NumSitesX: 20, NumRows: 4, RowHeight: 8}
	for i := 0; i < 12; i++ {
		l.Cells = append(l.Cells, model.Cell{
			ID: i, Name: "c", X: 0, Y: 0, GX: 0, GY: 0, W: 10, H: 2,
			Parity: model.ParityEven,
		})
	}
	res := Legalize(l, Config{})
	if res.Legal {
		t.Fatal("overfull design reported legal")
	}
	if res.Stats.Failed == 0 {
		t.Fatal("no failures recorded for an unsatisfiable design")
	}
}

func TestEmptyAndSingleCellLayouts(t *testing.T) {
	empty := &model.Layout{Name: "empty", NumSitesX: 10, NumRows: 4, RowHeight: 8}
	res := Legalize(empty, Config{})
	if !res.Legal || res.Stats.Placed != 0 {
		t.Fatalf("empty layout mishandled: %+v", res.Stats)
	}

	single := &model.Layout{Name: "one", NumSitesX: 40, NumRows: 4, RowHeight: 8}
	single.Cells = append(single.Cells, model.Cell{
		ID: 0, Name: "a", X: 7, Y: 1, GX: 7, GY: 1, W: 3, H: 1, Parity: model.ParityAny,
	})
	res = Legalize(single, Config{})
	if !res.Legal || res.Stats.Placed != 1 {
		t.Fatalf("single-cell layout mishandled: %+v", res.Stats)
	}
	if res.Metrics.TotalDis != 0 {
		t.Fatalf("lone cell moved: %v", res.Metrics)
	}
}

// TestFixedOnlyLayout: nothing movable, just blockages.
func TestFixedOnlyLayout(t *testing.T) {
	l := &model.Layout{Name: "fixed", NumSitesX: 20, NumRows: 4, RowHeight: 8}
	l.Cells = append(l.Cells, model.Cell{
		ID: 0, Name: "blk", X: 5, Y: 0, GX: 5, GY: 0, W: 4, H: 4, Fixed: true,
	})
	res := Legalize(l, Config{})
	if !res.Legal {
		t.Fatalf("fixed-only layout illegal: %v", res.Violations)
	}
}

// TestTallCellsAgainstLowDie: cells as tall as the die still legalize.
func TestTallCellsAgainstLowDie(t *testing.T) {
	l := &model.Layout{Name: "tall", NumSitesX: 120, NumRows: 4, RowHeight: 8}
	for i := 0; i < 12; i++ {
		l.Cells = append(l.Cells, model.Cell{
			ID: i, Name: "t", X: i * 6, Y: 0, GX: i * 6, GY: 0, W: 5, H: 4,
			Parity: model.ParityEven,
		})
	}
	// Overlap them pairwise by nudging global positions together.
	for i := range l.Cells {
		l.Cells[i].GX = (i / 2) * 11
		l.Cells[i].X = l.Cells[i].GX
	}
	res := Legalize(l, Config{})
	if !res.Legal {
		t.Fatalf("tall-cell layout illegal: %v (failed=%d)", res.Violations, res.Stats.Failed)
	}
}

// TestThreadsOneEqualsSequential: the parallel engine with one worker must
// behave like a batched sequential run and stay legal.
func TestThreadsOneBoundary(t *testing.T) {
	l, err := gen.Small(150, 0.5, 111).Generate(1.0)
	if err != nil {
		t.Fatal(err)
	}
	seq := Legalize(l, Config{Threads: 1})
	if !seq.Legal {
		t.Fatal("sequential run illegal")
	}
}

// TestWindowConfigOverride: a custom (tiny) initial window forces
// expansions but must not break legality.
func TestWindowConfigOverride(t *testing.T) {
	l, err := gen.Small(200, 0.6, 112).Generate(1.0)
	if err != nil {
		t.Fatal(err)
	}
	res := Legalize(l, Config{WindowW: 12, WindowH: 2})
	if !res.Legal {
		t.Fatalf("tiny-window run illegal: %v", res.Violations)
	}
	if res.Stats.Expansions == 0 {
		t.Fatal("tiny windows should force expansions")
	}
	// Larger windows shrink (or keep) average displacement.
	big := Legalize(l, Config{WindowW: 256, WindowH: 16})
	if big.Metrics.AveDis > res.Metrics.AveDis*1.5 {
		t.Fatalf("bigger windows much worse: %v vs %v", big.Metrics.AveDis, res.Metrics.AveDis)
	}
}

// TestMetricsConsistency: the result metrics must match an independent
// re-measurement of the returned layout.
func TestMetricsConsistency(t *testing.T) {
	l, err := gen.Small(200, 0.55, 113).Generate(1.0)
	if err != nil {
		t.Fatal(err)
	}
	res := Legalize(l, Config{})
	again := model.Measure(res.Layout)
	if again.AveDis != res.Metrics.AveDis || again.TotalDis != res.Metrics.TotalDis {
		t.Fatalf("metrics drift: %+v vs %+v", res.Metrics, again)
	}
}
