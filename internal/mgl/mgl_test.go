package mgl

import (
	"testing"

	"github.com/flex-eda/flex/internal/gen"
	"github.com/flex-eda/flex/internal/model"
)

func testLayout(t *testing.T, n int, density float64, seed int64) *model.Layout {
	t.Helper()
	l, err := gen.Small(n, density, seed).Generate(1.0)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestSequentialLegalizesSmallDesign(t *testing.T) {
	l := testLayout(t, 300, 0.55, 101)
	res := Legalize(l, Config{})
	if !res.Legal {
		t.Fatalf("not legal: failed=%d violations=%v", res.Stats.Failed, res.Violations)
	}
	if res.Stats.Placed != int64(len(l.MovableIDs())) {
		t.Fatalf("placed %d of %d", res.Stats.Placed, len(l.MovableIDs()))
	}
	if res.Metrics.AveDis <= 0 || res.Metrics.AveDis > 5 {
		t.Fatalf("AveDis %v out of plausible range", res.Metrics.AveDis)
	}
	// The input layout must not have been mutated.
	if l.OverlapArea() == 0 {
		t.Fatal("input layout was mutated")
	}
}

func TestSequentialHighDensity(t *testing.T) {
	l := testLayout(t, 250, 0.85, 102)
	res := Legalize(l, Config{})
	if !res.Legal {
		t.Fatalf("not legal at 85%% density: failed=%d violations=%v", res.Stats.Failed, res.Violations)
	}
}

func TestDeterminism(t *testing.T) {
	l := testLayout(t, 200, 0.6, 103)
	a := Legalize(l, Config{})
	b := Legalize(l, Config{})
	for i := range a.Layout.Cells {
		if a.Layout.Cells[i].X != b.Layout.Cells[i].X || a.Layout.Cells[i].Y != b.Layout.Cells[i].Y {
			t.Fatalf("cell %d differs between runs", i)
		}
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats differ between runs:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

func TestStreamedMatchesOriginalPipeline(t *testing.T) {
	l := testLayout(t, 200, 0.6, 104)
	a := Legalize(l, Config{Streamed: false})
	b := Legalize(l, Config{Streamed: true})
	for i := range a.Layout.Cells {
		if a.Layout.Cells[i].X != b.Layout.Cells[i].X || a.Layout.Cells[i].Y != b.Layout.Cells[i].Y {
			t.Fatalf("cell %d differs between curve pipelines", i)
		}
	}
}

func TestCommitOriginalMatchesSACS(t *testing.T) {
	l := testLayout(t, 150, 0.6, 105)
	a := Legalize(l, Config{CommitOriginal: false})
	b := Legalize(l, Config{CommitOriginal: true})
	for i := range a.Layout.Cells {
		if a.Layout.Cells[i].X != b.Layout.Cells[i].X || a.Layout.Cells[i].Y != b.Layout.Cells[i].Y {
			t.Fatalf("cell %d differs between commit algorithms", i)
		}
	}
	// The original algorithm must have spent at least as many passes.
	if b.Stats.Commit.Passes < a.Stats.Commit.Passes {
		t.Fatalf("original commit passes %d < SACS passes %d",
			b.Stats.Commit.Passes, a.Stats.Commit.Passes)
	}
}

func TestParallelEngineLegalizes(t *testing.T) {
	l := testLayout(t, 300, 0.55, 106)
	for _, threads := range []int{2, 4} {
		res := Legalize(l, Config{Threads: threads})
		if !res.Legal {
			t.Fatalf("threads=%d: not legal: %v", threads, res.Violations)
		}
		if res.Stats.Batches == 0 {
			t.Fatalf("threads=%d: no batches recorded", threads)
		}
		if res.Stats.WorkCritical <= 0 || res.Stats.WorkCritical > res.Stats.WorkParallel {
			t.Fatalf("threads=%d: critical path accounting broken: crit=%v total=%v",
				threads, res.Stats.WorkCritical, res.Stats.WorkParallel)
		}
	}
}

func TestParallelDeterminism(t *testing.T) {
	l := testLayout(t, 200, 0.6, 107)
	a := Legalize(l, Config{Threads: 4})
	b := Legalize(l, Config{Threads: 4})
	for i := range a.Layout.Cells {
		if a.Layout.Cells[i].X != b.Layout.Cells[i].X || a.Layout.Cells[i].Y != b.Layout.Cells[i].Y {
			t.Fatalf("cell %d differs between parallel runs", i)
		}
	}
}

func TestSlidingWindowOrderingQuality(t *testing.T) {
	l := testLayout(t, 400, 0.75, 108)
	plain := Legalize(l, Config{})
	sw := Legalize(l, Config{SlidingWindow: 8})
	if !plain.Legal || !sw.Legal {
		t.Fatalf("legality: plain=%v sw=%v", plain.Legal, sw.Legal)
	}
	// The density-aware ordering should not be dramatically worse; the
	// paper reports ~1% average improvement. Allow noise on tiny designs.
	if sw.Metrics.AveDis > plain.Metrics.AveDis*1.25 {
		t.Fatalf("sliding window much worse: %v vs %v", sw.Metrics.AveDis, plain.Metrics.AveDis)
	}
}

func TestMeasureOriginalShiftInstrumentation(t *testing.T) {
	l := testLayout(t, 80, 0.6, 109)
	res := Legalize(l, Config{MeasureOriginalShift: true})
	if res.Stats.FOP.OriginalShift.Passes == 0 {
		t.Fatal("original shifting instrumentation produced no passes")
	}
	// Multi-pass structure: the original algorithm averages more than the
	// two sweeps per insertion point that the sort-ahead form uses.
	perPoint := float64(res.Stats.FOP.OriginalShift.Passes) / float64(res.Stats.FOP.InsertionPoints)
	if perPoint < 2.0 {
		t.Fatalf("original shifting passes per insertion point = %v, want >= 2", perPoint)
	}
}

func TestSnapRow(t *testing.T) {
	cases := []struct {
		gy, h   int
		p       model.PGParity
		numRows int
		want    int
	}{
		{5, 1, model.ParityAny, 10, 5},
		{5, 2, model.ParityEven, 10, 4},
		{-3, 1, model.ParityAny, 10, 0},
		{20, 2, model.ParityEven, 10, 8},
		{1, 2, model.ParityEven, 10, 0},
		{3, 3, model.ParityOdd, 10, 3},
	}
	for _, c := range cases {
		if got := snapRow(c.gy, c.h, c.p, c.numRows); got != c.want {
			t.Errorf("snapRow(%d,%d,%v,%d) = %d, want %d", c.gy, c.h, c.p, c.numRows, got, c.want)
		}
	}
}

func TestStatsBreakdownShiftDominates(t *testing.T) {
	// Fig. 2(g): cell shifting should dominate FOP work. Verify the op
	// counters reflect that on a realistic run.
	l := testLayout(t, 300, 0.7, 110)
	res := Legalize(l, Config{})
	w := Config{}.weights()
	shiftWork := w.ShiftWork(res.Stats.FOP.Shift)
	curveWork := w.CurveWork(res.Stats.FOP.Curve)
	frac := shiftWork / (shiftWork + curveWork)
	if frac < 0.5 {
		t.Fatalf("shift fraction of FOP work = %v, want > 0.5", frac)
	}
}
