package mgl_test

import (
	"testing"

	"github.com/flex-eda/flex/internal/gen"
	"github.com/flex-eda/flex/internal/mgl"
	"github.com/flex-eda/flex/internal/model"
)

// BenchmarkLegalize runs the full sequential MGL flow in the FLEX
// configuration (streamed FOP + sliding-window order): the end-to-end
// kernel the speed pass targets. One iteration legalizes a fresh clone.
func BenchmarkLegalize(b *testing.B) {
	l, err := gen.Small(1500, 0.7, 23).Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := mgl.Config{Streamed: true, SlidingWindow: 64}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := mgl.Legalize(l, cfg)
		if !res.Legal {
			b.Fatal("not legal")
		}
	}
	b.StopTimer()
	_ = model.Measure(l)
}
