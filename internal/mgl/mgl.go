// Package mgl implements the complete Multi-row Global Legalization flow of
// Fig. 3(e) in the FLEX paper — the algorithmic substrate FLEX and both
// baselines share:
//
//	a) input & pre-move   — snap cells to parity-legal rows, keep overlaps
//	b) process ordering   — pick the next unlegalized target
//	c) define localRegion — window, segments, localCells, density
//	d) FOP                — evaluate all insertion points (internal/fop)
//	e) insert & update    — commit the winning position via cell shifting
//
// The sequential engine is the reference; the multi-threaded engine
// reproduces the TCAD'22 baseline's region-parallel batching, including the
// behaviours the paper calls out: processing order deviations (quality
// loss) and per-batch synchronization (scaling saturation, Fig. 2(a)).
package mgl

import (
	"sync"

	"github.com/flex-eda/flex/internal/fop"
	"github.com/flex-eda/flex/internal/geom"
	"github.com/flex-eda/flex/internal/model"
	"github.com/flex-eda/flex/internal/order"
	"github.com/flex-eda/flex/internal/perf"
	"github.com/flex-eda/flex/internal/region"
	"github.com/flex-eda/flex/internal/shift"
)

// Config selects engine variants.
type Config struct {
	// WindowW/WindowH: initial localRegion window extents (sites, rows).
	// Zero selects defaults scaled to the cell.
	WindowW, WindowH int
	// MaxExpand bounds window-doubling attempts before the die-wide
	// fallback (default 4).
	MaxExpand int
	// Streamed selects the restructured curve pipeline inside FOP.
	Streamed bool
	// MeasureOriginalShift instruments FOP with the original multi-pass
	// shifting algorithm (slow; for breakdown experiments).
	MeasureOriginalShift bool
	// CommitOriginal commits with the original shifting algorithm instead
	// of SACS. Results are identical; op accounting differs.
	CommitOriginal bool
	// Threads > 1 enables the region-parallel batched engine.
	Threads int
	// Lookahead bounds how far past the queue head batching may scan for
	// non-conflicting targets (default 4×Threads).
	Lookahead int
	// SlidingWindow enables the FLEX size+density ordering with the given
	// window length; zero uses plain size-descending order.
	SlidingWindow int
	// Weights price operations for the critical-path accounting; zero
	// value uses perf.DefaultWeights.
	Weights *perf.Weights
	// TraceFn, when set, is invoked after each target is placed by the
	// sequential engine with that target's isolated work trace. The FLEX
	// accelerator model consumes these traces.
	TraceFn func(TargetTrace)
}

// TargetTrace is the per-target work record handed to Config.TraceFn.
type TargetTrace struct {
	ID          int
	FOP         fop.Stats   // work of step d) for this target only
	Commit      shift.Stats // work of step e) for this target only
	CommitMoved int64       // cells whose position changed at commit
	LocalCells  int         // localCells in the final region
	Window      geom.Rect   // final (possibly expanded) window
	Placed      bool
}

func (c Config) weights() perf.Weights {
	if c.Weights != nil {
		return *c.Weights
	}
	return perf.DefaultWeights
}

// Stats aggregates the work of one legalization run, split by flow step so
// the platform models can price them.
type Stats struct {
	PreMoveCells int64
	OrderOps     int64
	RegionBuilds int64
	RegionCands  int64
	RegionRows   int64
	FOP          fop.Stats
	Commit       shift.Stats
	CommitCells  int64
	Placed       int64
	Expansions   int64
	Fallbacks    int64
	Failed       int64

	// Multi-threaded accounting (Threads > 1).
	Batches      int64
	BatchSizeSum int64
	Deferred     int64
	WorkSerial   float64 // serially executed work units
	WorkParallel float64 // total work units executed in parallel phases
	WorkCritical float64 // Σ over batches of the largest per-target work
}

// Result is a finished legalization.
type Result struct {
	Layout     *model.Layout
	Metrics    model.Metrics
	Stats      Stats
	Legal      bool
	Violations []model.Violation
}

// Legalize runs the configured engine on a clone of l.
func Legalize(l *model.Layout, cfg Config) *Result {
	e := newEngine(l, cfg)
	if cfg.Threads > 1 {
		e.runParallel()
	} else {
		e.runSequential()
	}
	return e.finish()
}

type engine struct {
	l       *model.Layout
	cfg     Config
	w       perf.Weights
	idx     *region.Index
	soa     *model.SoA // geometry mirror for the extraction hot path
	placed  []bool
	st      Stats
	candBuf []int // serial-path query scratch (placeOne/extract only)
}

func newEngine(l *model.Layout, cfg Config) *engine {
	e := &engine{
		l:   l.Clone(),
		cfg: cfg,
		w:   cfg.weights(),
	}
	if e.cfg.MaxExpand == 0 {
		e.cfg.MaxExpand = 4
	}
	if e.cfg.Lookahead == 0 {
		e.cfg.Lookahead = 4 * maxInt(1, cfg.Threads)
	}
	e.preMove()
	e.placed = make([]bool, len(e.l.Cells))
	e.idx = region.NewIndex(e.l, 32, 4, func(i int) bool { return e.l.Cells[i].Fixed })
	// Snapshot geometry after pre-move; commit keeps the mirror in sync.
	e.soa = model.NewSoA(e.l)
	return e
}

// preMove is step a): clamp into the die and snap to a parity-legal row.
func (e *engine) preMove() {
	for i := range e.l.Cells {
		c := &e.l.Cells[i]
		if c.Fixed {
			continue
		}
		c.X = clamp(c.GX, 0, e.l.NumSitesX-c.W)
		c.Y = snapRow(c.GY, c.H, c.Parity, e.l.NumRows)
		e.st.PreMoveCells++
		e.st.WorkSerial += e.w.PreMove
	}
}

// snapRow returns the parity-legal row nearest to gy for a cell of height h.
func snapRow(gy, h int, p model.PGParity, numRows int) int {
	y := clamp(gy, 0, numRows-h)
	if p.AllowsRow(y) {
		return y
	}
	for d := 1; ; d++ {
		if y-d >= 0 && p.AllowsRow(y-d) {
			return y - d
		}
		if y+d <= numRows-h && p.AllowsRow(y+d) {
			return y + d
		}
		if y-d < 0 && y+d > numRows-h {
			return y // no legal row: let the checker flag it
		}
	}
}

func (e *engine) scheduler() order.Scheduler {
	if e.cfg.SlidingWindow > 0 {
		est := order.DensityEstimator(e.l, e.idx, 96, 12)
		return order.NewSlidingWindow(e.l, e.cfg.SlidingWindow, est)
	}
	return order.NewSizeOrder(e.l)
}

func (e *engine) runSequential() {
	sched := e.scheduler()
	for {
		id, ok := sched.Next()
		if !ok {
			break
		}
		e.st.OrderOps++
		e.st.WorkSerial += e.w.OrderOp
		beforeFOP := e.st.FOP
		beforeCommit := e.st.Commit
		beforeCommitCells := e.st.CommitCells
		tr := e.placeOne(id)
		delta := fopDelta(e.st.FOP, beforeFOP)
		e.st.WorkSerial += e.w.FOPWork(delta)
		if e.cfg.TraceFn != nil {
			tr.FOP = delta
			tr.Commit = shiftDelta(e.st.Commit, beforeCommit)
			tr.CommitMoved = e.st.CommitCells - beforeCommitCells
			e.cfg.TraceFn(tr)
		}
	}
}

// window returns the FOP window for a target after n expansions.
func (e *engine) window(c *model.Cell, n int) geom.Rect {
	w := e.cfg.WindowW
	h := e.cfg.WindowH
	if w == 0 {
		w = maxInt(8*c.W, 64)
	}
	if h == 0 {
		h = maxInt(4*c.H, 6)
	}
	w <<= uint(n)
	h <<= uint(n)
	cx := c.GX + c.W/2
	cy := c.GY + c.H/2
	return geom.NewRect(cx-w/2, cy-h/2, w, h)
}

// placeOne runs steps c)–e) for one target, expanding the window as needed.
func (e *engine) placeOne(id int) TargetTrace {
	c := &e.l.Cells[id]
	tg := fop.Target{
		GX: c.GX, GY: c.GY, W: c.W, H: c.H,
		ParityOK: c.Parity.AllowsRow, RowHeight: e.l.RowHeight,
	}
	opts := fop.Options{Streamed: e.cfg.Streamed, MeasureOriginalShift: e.cfg.MeasureOriginalShift}
	tr := TargetTrace{ID: id}
	for n := 0; ; n++ {
		win := e.window(c, n)
		if n >= e.cfg.MaxExpand {
			win = e.l.Die()
			e.st.Fallbacks++
		} else if n > 0 {
			e.st.Expansions++
		}
		reg := e.extract(id, win)
		tr.Window = win.Intersect(e.l.Die())
		tr.LocalCells = len(reg.Cells)
		cand := fop.Best(reg, tg, opts, &e.st.FOP)
		if cand.Feasible && e.commit(id, reg, cand) {
			tr.Placed = true
			return tr
		}
		if n >= e.cfg.MaxExpand {
			e.st.Failed++
			return tr
		}
	}
}

func (e *engine) extract(id int, win geom.Rect) *region.Region {
	// Reusing the query scratch is safe here: extract is only reached from
	// placeOne, which runs serially (sequential engine, or the serial redo
	// phase of the batched engine). ExtractFrom copies what it keeps.
	e.candBuf = e.idx.Query(win, e.candBuf[:0])
	cands := e.candBuf
	e.st.RegionBuilds++
	e.st.RegionCands += int64(len(cands))
	e.st.RegionRows += int64(win.Intersect(e.l.Die()).H)
	e.st.WorkSerial += e.w.RegionCand*float64(len(cands)) + e.w.RegionRow*float64(win.H)
	return region.ExtractFromSoA(e.soa, e.placed, id, e.l.Die(), win, cands)
}

// commit is step e): run the committing shift on the region and write the
// new positions back into the layout and index.
func (e *engine) commit(id int, reg *region.Region, cand fop.Candidate) bool {
	p := shift.Placement{TX: cand.X, TY: cand.Y, TW: reg.TargetW, TH: reg.TargetH, Boundary2: cand.Boundary2}
	var ok bool
	if e.cfg.CommitOriginal {
		ok = shift.Original(reg, p, &e.st.Commit)
	} else {
		ok = shift.SACS(reg, p, &e.st.Commit)
	}
	if !ok {
		return false
	}
	moved := 0
	for i := range reg.Cells {
		lc := &reg.Cells[i]
		cell := &e.l.Cells[lc.ID]
		if cell.X != lc.X {
			cell.X = lc.X
			e.soa.Set(lc.ID, cell.X, cell.Y)
			e.idx.Update(lc.ID)
			moved++
		}
	}
	t := &e.l.Cells[id]
	t.X, t.Y = cand.X, cand.Y
	e.soa.Set(id, t.X, t.Y)
	e.placed[id] = true
	e.idx.Add(id)
	e.st.Placed++
	e.st.CommitCells += int64(moved) + 1
	e.st.WorkSerial += e.w.CommitCell * float64(moved+1)
	return true
}

func (e *engine) finish() *Result {
	res := &Result{
		Layout:  e.l,
		Metrics: model.Measure(e.l),
		Stats:   e.st,
	}
	res.Violations = e.l.Check(16)
	res.Legal = len(res.Violations) == 0 && e.st.Failed == 0
	return res
}

// --- multi-threaded engine (TCAD'22-style region-parallel batching) ---

type mtResult struct {
	id       int
	reg      *region.Region
	cand     fop.Candidate
	expanded geom.Rect
	fopStats fop.Stats
	work     float64
	cands    int
	rows     int
	builds   int64
}

// runParallel processes batches of targets with non-overlapping windows.
// Within a batch, extraction and FOP run concurrently against a frozen
// layout; commits are serial in batch order. A worker that expanded its
// window into a peer's committed area is deterministically redone serially.
func (e *engine) runParallel() {
	queue := order.NewSizeOrder(e.l)
	var pendingQueue []int
	for {
		id, ok := queue.Next()
		if !ok {
			break
		}
		pendingQueue = append(pendingQueue, id)
	}

	threads := e.cfg.Threads
	for len(pendingQueue) > 0 {
		// Collect a batch of targets whose initial windows do not overlap.
		var batch []int
		var wins []geom.Rect
		var rest []int
		scanned := 0
		for _, id := range pendingQueue {
			if len(batch) >= threads || scanned >= e.cfg.Lookahead {
				rest = append(rest, id)
				continue
			}
			scanned++
			win := e.window(&e.l.Cells[id], 0)
			conflict := false
			for _, w := range wins {
				if w.Overlaps(win) {
					conflict = true
					break
				}
			}
			if conflict {
				rest = append(rest, id)
				continue
			}
			batch = append(batch, id)
			wins = append(wins, win)
		}
		pendingQueue = rest
		if len(batch) == 0 {
			break
		}
		e.st.Batches++
		e.st.BatchSizeSum += int64(len(batch))
		e.st.OrderOps += int64(len(batch))
		e.st.WorkSerial += e.w.OrderOp * float64(len(batch))

		// Parallel phase: extract + FOP against the frozen layout.
		results := make([]mtResult, len(batch))
		var wg sync.WaitGroup
		sem := make(chan struct{}, threads)
		for i, id := range batch {
			wg.Add(1)
			sem <- struct{}{}
			go func(slot, id int) {
				defer wg.Done()
				defer func() { <-sem }()
				results[slot] = e.evaluateFrozen(id)
			}(i, id)
		}
		wg.Wait()

		// Account parallel work: total and per-batch critical path.
		maxWork := 0.0
		for i := range results {
			e.st.WorkParallel += results[i].work
			if results[i].work > maxWork {
				maxWork = results[i].work
			}
			e.st.FOP.Add(&results[i].fopStats)
			e.st.RegionBuilds += results[i].builds
			e.st.RegionCands += int64(results[i].cands)
			e.st.RegionRows += int64(results[i].rows)
		}
		e.st.WorkCritical += maxWork

		// Serial commit phase.
		var committed []geom.Rect
		for i := range results {
			r := &results[i]
			conflict := false
			for _, w := range committed {
				if w.Overlaps(r.expanded) {
					conflict = true
					break
				}
			}
			if conflict || !r.cand.Feasible {
				// Redo sequentially against the updated layout.
				e.st.Deferred++
				before := e.st.FOP
				e.placeOne(r.id)
				delta := fopDelta(e.st.FOP, before)
				e.st.WorkSerial += e.w.FOPWork(delta)
				committed = append(committed, e.window(&e.l.Cells[r.id], 0))
				continue
			}
			if !e.commit(r.id, r.reg, r.cand) {
				e.st.Deferred++
				before := e.st.FOP
				e.placeOne(r.id)
				delta := fopDelta(e.st.FOP, before)
				e.st.WorkSerial += e.w.FOPWork(delta)
			}
			committed = append(committed, r.expanded)
		}
	}
}

// evaluateFrozen runs steps c)+d) for one target without committing,
// expanding the window as needed. Safe to run concurrently: the layout and
// placed flags are not mutated during the parallel phase.
func (e *engine) evaluateFrozen(id int) mtResult {
	c := &e.l.Cells[id]
	tg := fop.Target{
		GX: c.GX, GY: c.GY, W: c.W, H: c.H,
		ParityOK: c.Parity.AllowsRow, RowHeight: e.l.RowHeight,
	}
	opts := fop.Options{Streamed: e.cfg.Streamed, MeasureOriginalShift: e.cfg.MeasureOriginalShift}
	out := mtResult{id: id}
	for n := 0; ; n++ {
		win := e.window(c, n)
		if n >= e.cfg.MaxExpand {
			win = e.l.Die()
		}
		cands := e.idx.Query(win, nil)
		out.builds++
		out.cands += len(cands)
		out.rows += win.Intersect(e.l.Die()).H
		out.work += e.w.RegionCand*float64(len(cands)) + e.w.RegionRow*float64(win.H)
		reg := region.ExtractFromSoA(e.soa, e.placed, id, e.l.Die(), win, cands)
		var st fop.Stats
		cand := fop.Best(reg, tg, opts, &st)
		out.fopStats.Add(&st)
		out.work += e.w.FOPWork(st)
		if cand.Feasible || n >= e.cfg.MaxExpand {
			out.reg = reg
			out.cand = cand
			out.expanded = win
			return out
		}
	}
}

func fopDelta(after, before fop.Stats) fop.Stats {
	d := fop.Stats{
		CandidateRows:   after.CandidateRows - before.CandidateRows,
		InsertionPoints: after.InsertionPoints - before.InsertionPoints,
		ChainCells:      after.ChainCells - before.ChainCells,
	}
	for i := range d.ChainVisitsByH {
		d.ChainVisitsByH[i] = after.ChainVisitsByH[i] - before.ChainVisitsByH[i]
	}
	d.Shift = shiftDelta(after.Shift, before.Shift)
	d.OriginalShift = shiftDelta(after.OriginalShift, before.OriginalShift)
	d.Curve.RawBps = after.Curve.RawBps - before.Curve.RawBps
	d.Curve.MergedBps = after.Curve.MergedBps - before.Curve.MergedBps
	d.Curve.SortOps = after.Curve.SortOps - before.Curve.SortOps
	d.Curve.Traversal = after.Curve.Traversal - before.Curve.Traversal
	return d
}

func shiftDelta(after, before shift.Stats) shift.Stats {
	return shift.Stats{
		Passes:        after.Passes - before.Passes,
		SubcellVisits: after.SubcellVisits - before.SubcellVisits,
		Moves:         after.Moves - before.Moves,
		SortedCells:   after.SortedCells - before.SortedCells,
		SortOps:       after.SortOps - before.SortOps,
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if hi < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
