package order

import (
	"testing"

	"github.com/flex-eda/flex/internal/gen"
	"github.com/flex-eda/flex/internal/model"
	"github.com/flex-eda/flex/internal/region"
)

func layout(t *testing.T) *model.Layout {
	t.Helper()
	l, err := gen.Small(200, 0.5, 55).Generate(1.0)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestSizeOrderDescending(t *testing.T) {
	l := layout(t)
	s := NewSizeOrder(l)
	if s.Remaining() != len(l.MovableIDs()) {
		t.Fatalf("Remaining = %d", s.Remaining())
	}
	prev := 1 << 60
	count := 0
	for {
		id, ok := s.Next()
		if !ok {
			break
		}
		a := l.Cells[id].Area()
		if a > prev {
			t.Fatalf("area increased: %d after %d", a, prev)
		}
		prev = a
		count++
	}
	if count != len(l.MovableIDs()) {
		t.Fatalf("yielded %d targets", count)
	}
	if _, ok := s.Peek(); ok {
		t.Fatal("Peek after exhaustion should fail")
	}
}

func TestSizeOrderPeekMatchesNext(t *testing.T) {
	l := layout(t)
	s := NewSizeOrder(l)
	for i := 0; i < 10; i++ {
		p, ok := s.Peek()
		if !ok {
			break
		}
		n, _ := s.Next()
		if p != n {
			t.Fatalf("Peek %d != Next %d", p, n)
		}
	}
}

func TestSlidingWindowReordersByDensity(t *testing.T) {
	l := layout(t)
	// Synthetic density: higher for higher cell IDs.
	density := func(id int) float64 { return float64(id) }
	sw := NewSlidingWindow(l, 6, density)
	plain := NewSizeOrder(l)

	// First target identical (C_cur of the initial window).
	a, _ := sw.Next()
	b, _ := plain.Next()
	if a != b {
		t.Fatalf("first target differs: %d vs %d", a, b)
	}
	// Second target is the fixed C_next: also identical.
	a, _ = sw.Next()
	b, _ = plain.Next()
	if a != b {
		t.Fatalf("second target (C_next) differs: %d vs %d", a, b)
	}
	// From here on the window tail is density-sorted, so the sliding
	// window must eventually diverge from the plain order.
	diverged := false
	for i := 0; i < 40; i++ {
		x, ok1 := sw.Next()
		y, ok2 := plain.Next()
		if !ok1 || !ok2 {
			break
		}
		if x != y {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("sliding window never reordered anything")
	}
}

func TestSlidingWindowYieldsAllTargets(t *testing.T) {
	l := layout(t)
	sw := NewSlidingWindow(l, 8, func(int) float64 { return 0 })
	seen := map[int]bool{}
	for {
		id, ok := sw.Next()
		if !ok {
			break
		}
		if seen[id] {
			t.Fatalf("target %d yielded twice", id)
		}
		seen[id] = true
	}
	if len(seen) != len(l.MovableIDs()) {
		t.Fatalf("yielded %d of %d targets", len(seen), len(l.MovableIDs()))
	}
}

func TestDensityEstimator(t *testing.T) {
	l := layout(t)
	idx := region.NewIndex(l, 32, 4, nil)
	est := DensityEstimator(l, idx, 64, 8)
	ids := l.MovableIDs()
	for _, id := range ids[:10] {
		d := est(id)
		if d <= 0 || d > 4 {
			t.Fatalf("density estimate %v out of range for cell %d", d, id)
		}
	}
}
