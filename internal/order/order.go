// Package order implements target-cell processing orderings (Sec. 3.1.2 of
// the FLEX paper). The order in which a heuristic legalizer places cells
// strongly affects quality: the baseline orders by cell size only, while
// FLEX refines the tail of a sliding window by localRegion density so that
// hard, high-density neighbourhoods are handled before they get crowded.
package order

import (
	"sort"

	"github.com/flex-eda/flex/internal/geom"
	"github.com/flex-eda/flex/internal/model"
	"github.com/flex-eda/flex/internal/region"
)

// Scheduler yields target cells in processing order. Implementations are
// stateful: Next pops the next target.
type Scheduler interface {
	// Next returns the next target cell ID, or ok=false when exhausted.
	Next() (id int, ok bool)
	// Peek returns the upcoming target without consuming it (the paper's
	// C_next, used for ping-pong preloading), or ok=false when exhausted.
	Peek() (id int, ok bool)
	// Remaining reports how many targets are left.
	Remaining() int
}

// bySizeDesc sorts cell IDs by descending area, breaking ties by descending
// height then ascending ID, matching the "larger cells first" heuristic.
func bySizeDesc(l *model.Layout, ids []int) {
	sort.SliceStable(ids, func(a, b int) bool {
		ca, cb := &l.Cells[ids[a]], &l.Cells[ids[b]]
		if ca.Area() != cb.Area() {
			return ca.Area() > cb.Area()
		}
		if ca.H != cb.H {
			return ca.H > cb.H
		}
		return ids[a] < ids[b]
	})
}

// SizeOrder is the static size-descending ordering used by the MGL and
// DATE'22 baselines.
type SizeOrder struct {
	queue []int
}

// NewSizeOrder builds a size-descending scheduler over the layout's movable
// cells.
func NewSizeOrder(l *model.Layout) *SizeOrder {
	ids := l.MovableIDs()
	bySizeDesc(l, ids)
	return &SizeOrder{queue: ids}
}

// Next implements Scheduler.
func (s *SizeOrder) Next() (int, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	id := s.queue[0]
	s.queue = s.queue[1:]
	return id, true
}

// Peek implements Scheduler.
func (s *SizeOrder) Peek() (int, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0], true
}

// Remaining implements Scheduler.
func (s *SizeOrder) Remaining() int { return len(s.queue) }

// SlidingWindow is the FLEX ordering: an initial size-descending sequence
// refined on the fly. The head of the window (C_cur) is processed next and
// the second element (C_next) stays fixed so its region can be preloaded,
// while the remaining window entries are re-sorted by current localRegion
// density, highest first.
type SlidingWindow struct {
	queue   []int
	w       int
	density func(id int) float64
	dens    []float64 // per-pop density scratch, parallel to the window tail
}

// NewSlidingWindow builds the FLEX scheduler. w is the window length
// (w >= 3 for the reordering to have any effect); density estimates the
// current localRegion density around a cell.
func NewSlidingWindow(l *model.Layout, w int, density func(id int) float64) *SlidingWindow {
	ids := l.MovableIDs()
	bySizeDesc(l, ids)
	if w < 1 {
		w = 1
	}
	return &SlidingWindow{queue: ids, w: w, density: density}
}

// Next implements Scheduler: pops C_cur, then re-sorts positions
// [2, w) of the remaining queue (everything in the window except the fixed
// C_next) by density, descending.
func (s *SlidingWindow) Next() (int, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	id := s.queue[0]
	s.queue = s.queue[1:]
	if s.density != nil && len(s.queue) > 2 {
		hi := geom.Min(s.w-1, len(s.queue))
		if hi > 2 {
			seg := s.queue[1:hi]
			dens := s.dens[:0]
			for _, v := range seg {
				dens = append(dens, s.density(v))
			}
			s.dens = dens
			// Stable insertion sort, density descending: same order as a
			// stable sort over a density map, without per-pop allocations.
			for i := 1; i < len(seg); i++ {
				for j := i; j > 0 && dens[j] > dens[j-1]; j-- {
					seg[j], seg[j-1] = seg[j-1], seg[j]
					dens[j], dens[j-1] = dens[j-1], dens[j]
				}
			}
		}
	}
	return id, true
}

// Peek implements Scheduler.
func (s *SlidingWindow) Peek() (int, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0], true
}

// Remaining implements Scheduler.
func (s *SlidingWindow) Remaining() int { return len(s.queue) }

// DensityEstimator returns a localRegion-density estimate function backed
// by the spatial index: occupied area of indexed cells in a window around
// the cell's global position over the window area.
func DensityEstimator(l *model.Layout, idx *region.Index, winW, winH int) func(id int) float64 {
	var buf []int // reused across estimates; estimator calls are serial
	return func(id int) float64 {
		c := &l.Cells[id]
		win := geom.NewRect(c.GX+c.W/2-winW/2, c.GY+c.H/2-winH/2, winW, winH).Intersect(l.Die())
		if win.Empty() {
			return 1
		}
		used := c.Area()
		buf = idx.Query(win, buf[:0])
		for _, other := range buf {
			if other == id {
				continue
			}
			used += l.Cells[other].Rect().Intersect(win).Area()
		}
		return float64(used) / float64(win.Area())
	}
}
