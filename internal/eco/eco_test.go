package eco

import (
	"strings"
	"testing"

	"github.com/flex-eda/flex/internal/model"
	"github.com/flex-eda/flex/internal/shard"
)

// testLayout builds a small die: 16 sites × 8 rows with two movable cells
// and one fixed blockage stripe.
func testLayout() *model.Layout {
	return &model.Layout{
		Name: "t", NumSitesX: 16, NumRows: 8, RowHeight: 8,
		Cells: []model.Cell{
			{ID: 0, Name: "a", X: 0, Y: 0, GX: 0, GY: 0, W: 2, H: 1},
			{ID: 1, Name: "b", X: 4, Y: 5, GX: 4, GY: 5, W: 3, H: 2, Parity: model.ParityOdd},
			{ID: 2, Name: "blk", X: 12, Y: 0, GX: 12, GY: 0, W: 2, H: 8, Fixed: true},
		},
	}
}

func TestApplyMove(t *testing.T) {
	base := testLayout()
	wantHash := Hash(base)
	out, err := Apply(base, []Edit{{Op: OpMove, Cell: "a", GX: 6, GY: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if Hash(base) != wantHash {
		t.Fatal("Apply mutated the base layout")
	}
	c := out.Cells[0]
	if c.GX != 6 || c.GY != 2 || c.X != 6 || c.Y != 2 {
		t.Fatalf("moved cell at %+v, want anchor and position at (6,2)", c)
	}
}

func TestApplyInsertDelete(t *testing.T) {
	base := testLayout()
	out, err := Apply(base, []Edit{
		{Op: OpInsert, Cell: "new", GX: 8, GY: 3, W: 2, H: 2, Parity: "odd"},
		{Op: OpDelete, Cell: "a"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(out.Cells))
	}
	for i, c := range out.Cells {
		if c.ID != i {
			t.Fatalf("cell %d has ID %d after delete renumbering", i, c.ID)
		}
	}
	var found bool
	for _, c := range out.Cells {
		if c.Name == "new" {
			found = true
			if c.Parity != model.ParityOdd || c.W != 2 || c.H != 2 {
				t.Fatalf("inserted cell %+v", c)
			}
		}
		if c.Name == "a" {
			t.Fatal("deleted cell survived")
		}
	}
	if !found {
		t.Fatal("inserted cell missing")
	}
}

func TestApplyRejections(t *testing.T) {
	base := testLayout()
	cases := []struct {
		name string
		edit Edit
		want string
	}{
		{"unknown move", Edit{Op: OpMove, Cell: "nope", GX: 0, GY: 0}, "unknown cell"},
		{"fixed move", Edit{Op: OpMove, Cell: "blk", GX: 0, GY: 0}, "fixed"},
		{"out of die", Edit{Op: OpMove, Cell: "a", GX: 15, GY: 0}, "outside"},
		{"negative pos", Edit{Op: OpMove, Cell: "a", GX: -1, GY: 0}, "outside"},
		{"dup insert", Edit{Op: OpInsert, Cell: "a", GX: 0, GY: 0, W: 1, H: 1}, "already exists"},
		{"unnamed insert", Edit{Op: OpInsert, GX: 0, GY: 0, W: 1, H: 1}, "needs a cell name"},
		{"zero size", Edit{Op: OpInsert, Cell: "z", GX: 0, GY: 0, W: 0, H: 1}, "non-positive"},
		{"bad parity", Edit{Op: OpInsert, Cell: "z", GX: 0, GY: 0, W: 1, H: 1, Parity: "up"}, "bad parity"},
		{"fixed delete", Edit{Op: OpDelete, Cell: "blk"}, "fixed"},
		{"unknown op", Edit{Op: "swap", Cell: "a"}, "unknown op"},
	}
	for _, tc := range cases {
		if _, err := Apply(base, []Edit{tc.edit}); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestHashTracksContent(t *testing.T) {
	base := testLayout()
	h1 := Hash(base)
	if h1 != Hash(testLayout()) {
		t.Fatal("equal layouts hash differently")
	}
	moved, err := Apply(base, []Edit{{Op: OpMove, Cell: "a", GX: 1, GY: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if Hash(moved) == h1 {
		t.Fatal("distinct layouts share a hash")
	}
	if len(h1) != 64 {
		t.Fatalf("hash %q is not hex sha256", h1)
	}
}

func TestDirtySpansHaloClassification(t *testing.T) {
	base := testLayout()
	// Cell b sits at GY=5, H=2. A move within halo rows is local.
	spans, inHalo, err := DirtySpans(base, []Edit{{Op: OpMove, Cell: "b", GX: 0, GY: 6}}, 1)
	if err != nil || !inHalo {
		t.Fatalf("in-halo move: spans=%v inHalo=%t err=%v", spans, inHalo, err)
	}
	// Old span [5,7) and new span [6,8), each widened by 1.
	want := []Span{{Lo: 4, Hi: 8}, {Lo: 5, Hi: 9}}
	if len(spans) != 2 || spans[0] != want[0] || spans[1] != want[1] {
		t.Fatalf("spans = %v, want %v", spans, want)
	}
	// A jump beyond halo rows is classified out of halo but still spanned.
	_, inHalo, err = DirtySpans(base, []Edit{{Op: OpMove, Cell: "b", GX: 0, GY: 1}}, 1)
	if err != nil || inHalo {
		t.Fatalf("far move classified in halo (err=%v)", err)
	}
	// Inserts and deletes are always local to their own span.
	spans, inHalo, err = DirtySpans(base, []Edit{
		{Op: OpInsert, Cell: "n", GX: 0, GY: 3, W: 1, H: 2},
		{Op: OpDelete, Cell: "a"},
	}, 0)
	if err != nil || !inHalo {
		t.Fatalf("insert+delete: inHalo=%t err=%v", inHalo, err)
	}
	if len(spans) != 2 || spans[0] != (Span{Lo: 3, Hi: 5}) || spans[1] != (Span{Lo: 0, Hi: 1}) {
		t.Fatalf("spans = %v", spans)
	}
	if _, _, err := DirtySpans(base, []Edit{{Op: OpMove, Cell: "ghost"}}, 0); err == nil {
		t.Fatal("unknown cell accepted")
	}
}

func TestMarkDirtyCoversExactlyIntersectedBands(t *testing.T) {
	base := testLayout()
	plan, err := shard.PlanBands(base, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Bands) != 4 {
		t.Fatalf("got %d bands, want 4 (rows=%d)", len(plan.Bands), base.NumRows)
	}
	dirty := MarkDirty(plan, []Span{{Lo: 2, Hi: 4}})
	want := []bool{false, true, false, false} // bands are [0,2) [2,4) [4,6) [6,8)
	for i := range want {
		if dirty[i] != want[i] {
			t.Fatalf("dirty = %v, want %v", dirty, want)
		}
	}
	// A span touching a single row at a seam dirties only the band owning it.
	dirty = MarkDirty(plan, []Span{{Lo: 4, Hi: 5}})
	if dirty[1] || !dirty[2] {
		t.Fatalf("seam span dirty = %v", dirty)
	}
	// An empty span dirties nothing.
	for _, d := range MarkDirty(plan, []Span{{Lo: 3, Hi: 3}}) {
		if d {
			t.Fatal("empty span marked a band dirty")
		}
	}
}

func TestCodecRoundTripLayout(t *testing.T) {
	l := testLayout()
	key := LayoutKey(Hash(l))
	data, err := EncodeValue(key, l)
	if err != nil {
		t.Fatal(err)
	}
	v, size, err := DecodeValue(key, data)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := v.(*model.Layout)
	if !ok || Hash(got) != Hash(l) {
		t.Fatalf("round trip changed the layout (ok=%t)", ok)
	}
	if size <= 0 {
		t.Fatalf("size = %d", size)
	}
	// A layout payload under a mismatched content address is rejected:
	// that is the disk cache's defense against renamed or grafted files.
	if _, _, err := DecodeValue(LayoutKey("0000"), data); err == nil {
		t.Fatal("hash-mismatched layout decoded")
	}
	if _, _, err := DecodeValue("outcome|x", data); err == nil {
		t.Fatal("layout payload accepted under an outcome key")
	}
}

func TestCodecRoundTripEntry(t *testing.T) {
	l := testLayout()
	e := &Entry{
		Engine: "flex", Options: "t=8", Halo: 2,
		Bands: []BandOutcome{
			{InHash: "h0", Layout: l, Legal: true, ModeledSeconds: 0.5},
			{InHash: "h1", Layout: l, Legal: false, ModeledSeconds: 0.25},
		},
		Result: l, Legal: false, ModeledSeconds: 0.5,
	}
	key := Key(Hash(l), e.Engine, e.Options, len(e.Bands), e.Halo)
	data, err := EncodeValue(key, e)
	if err != nil {
		t.Fatal(err)
	}
	v, size, err := DecodeValue(key, data)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := v.(*Entry)
	if !ok {
		t.Fatalf("decoded %T", v)
	}
	if got.Engine != e.Engine || got.Options != e.Options || got.Halo != e.Halo ||
		got.Legal != e.Legal || got.ModeledSeconds != e.ModeledSeconds {
		t.Fatalf("entry fields %+v", got)
	}
	if len(got.Bands) != 2 || got.Bands[0].InHash != "h0" || got.Bands[1].Legal ||
		got.Bands[1].ModeledSeconds != 0.25 || Hash(got.Bands[0].Layout) != Hash(l) {
		t.Fatalf("bands %+v", got.Bands)
	}
	if size < e.ApproxBytes()/2 {
		t.Fatalf("size %d implausible for entry of %d approx bytes", size, e.ApproxBytes())
	}
	// A band missing its input hash is corrupt: reuse would be unsound.
	bad := strings.Replace(string(data), `"inHash":"h0"`, `"inHash":""`, 1)
	if _, _, err := DecodeValue(key, []byte(bad)); err == nil {
		t.Fatal("entry with hashless band decoded")
	}
	if _, err := EncodeValue("k", 42); err == nil {
		t.Fatal("alien value encoded")
	}
	if _, _, err := DecodeValue(key, []byte(`{"kind":"woods"}`)); err == nil {
		t.Fatal("unknown payload kind decoded")
	}
}

func TestKeyShapes(t *testing.T) {
	k := Key("abc", "flex", "t=8", 4, 2)
	if k != "outcome|abc|flex|t=8|bands=4|halo=2" {
		t.Fatalf("Key = %q", k)
	}
	if LayoutKey("abc") != "layout|abc" {
		t.Fatalf("LayoutKey = %q", LayoutKey("abc"))
	}
	// Distinct decompositions must never alias.
	if Key("h", "e", "o", 4, 2) == Key("h", "e", "o", 8, 2) ||
		Key("h", "e", "o", 4, 2) == Key("h", "e", "o", 4, 1) {
		t.Fatal("keys alias across decompositions")
	}
}
