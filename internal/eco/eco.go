// Package eco is the substrate of the incremental (ECO) legalization path:
// content hashing of canonical layout bytes, the edit vocabulary that
// perturbs a placed design (move / insert / delete), the halo rule that
// decides whether an edit batch is local enough for a banded re-solve, and
// the cached-outcome entry format the service persists between requests.
//
// The correctness contract is hash-verification, not prediction: a band of
// the edited layout may reuse a cached band outcome only when its canonical
// input bytes hash-match the bytes the cached outcome was computed from.
// Engines are pure functions of their input layout, so equal input bytes
// imply equal output bytes; the halo-based dirty prediction merely decides
// *which* bands to re-solve, and any disagreement between prediction and
// hashes degrades to a full re-run, never to wrong bytes.
package eco

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"github.com/flex-eda/flex/internal/model"
	"github.com/flex-eda/flex/internal/shard"
)

// Op names one kind of layout perturbation.
type Op string

// The edit vocabulary: reposition a movable cell, add a new movable cell,
// or remove a movable cell. Fixed cells (blockages, terminals) are part of
// the die contract and cannot be edited.
const (
	OpMove   Op = "move"
	OpInsert Op = "insert"
	OpDelete Op = "delete"
)

// Edit is one perturbation of a base layout. Move repositions the named
// cell's global-placement anchor to (GX, GY) — the current position follows
// the anchor, as for a freshly placed cell. Insert adds a movable cell named
// Cell of W×H sites/rows and the given parity at (GX, GY). Delete removes
// the named movable cell.
type Edit struct {
	// Op selects the perturbation kind (move, insert, delete).
	Op Op `json:"op"`
	// Cell names the target cell; insert requires a name unused by the
	// base layout.
	Cell string `json:"cell"`
	// GX, GY is the new global-placement position (move, insert).
	GX int `json:"gx,omitempty"`
	GY int `json:"gy,omitempty"`
	// W, H is the inserted cell's size in sites × rows (insert only).
	W int `json:"w,omitempty"`
	H int `json:"h,omitempty"`
	// Parity is the inserted cell's power-rail requirement (insert only;
	// empty means any).
	Parity string `json:"parity,omitempty"`
}

// parseParity maps the flexpl parity token to the model constant.
func parseParity(s string) (model.PGParity, error) {
	switch s {
	case "", "any":
		return model.ParityAny, nil
	case "even":
		return model.ParityEven, nil
	case "odd":
		return model.ParityOdd, nil
	}
	return model.ParityAny, fmt.Errorf("eco: bad parity %q (want any, even, odd)", s)
}

// Apply returns a copy of base with the edits applied in order. The base
// layout is never mutated. It is an error to touch a fixed or unknown cell,
// to insert a duplicate or unnamed cell, or to place a cell outside the die.
func Apply(base *model.Layout, edits []Edit) (*model.Layout, error) {
	l := base.Clone()
	byName := make(map[string]int, len(l.Cells))
	for i := range l.Cells {
		byName[l.Cells[i].Name] = i
	}
	for ei, e := range edits {
		errf := func(format string, args ...any) error {
			return fmt.Errorf("eco: edit %d (%s %s): %s", ei, e.Op, e.Cell, fmt.Sprintf(format, args...))
		}
		switch e.Op {
		case OpMove:
			i, ok := byName[e.Cell]
			if !ok {
				return nil, errf("unknown cell")
			}
			c := &l.Cells[i]
			if c.Fixed {
				return nil, errf("cell is fixed")
			}
			if err := inDie(l, e.GX, e.GY, c.W, c.H); err != nil {
				return nil, errf("%v", err)
			}
			c.GX, c.GY = e.GX, e.GY
			c.X, c.Y = e.GX, e.GY
		case OpInsert:
			if e.Cell == "" {
				return nil, errf("insert needs a cell name")
			}
			if _, ok := byName[e.Cell]; ok {
				return nil, errf("cell already exists")
			}
			if e.W <= 0 || e.H <= 0 {
				return nil, errf("non-positive size %dx%d", e.W, e.H)
			}
			p, err := parseParity(e.Parity)
			if err != nil {
				return nil, errf("%v", err)
			}
			if err := inDie(l, e.GX, e.GY, e.W, e.H); err != nil {
				return nil, errf("%v", err)
			}
			byName[e.Cell] = len(l.Cells)
			l.Cells = append(l.Cells, model.Cell{
				ID: len(l.Cells), Name: e.Cell,
				X: e.GX, Y: e.GY, GX: e.GX, GY: e.GY,
				W: e.W, H: e.H, Parity: p,
			})
		case OpDelete:
			i, ok := byName[e.Cell]
			if !ok {
				return nil, errf("unknown cell")
			}
			if l.Cells[i].Fixed {
				return nil, errf("cell is fixed")
			}
			l.Cells = append(l.Cells[:i], l.Cells[i+1:]...)
			// Renumber: cell IDs are indices into Cells.
			delete(byName, e.Cell)
			for j := i; j < len(l.Cells); j++ {
				l.Cells[j].ID = j
				byName[l.Cells[j].Name] = j
			}
		default:
			return nil, errf("unknown op (want move, insert, delete)")
		}
	}
	return l, nil
}

// inDie checks that a W×H cell at (gx, gy) fits the die.
func inDie(l *model.Layout, gx, gy, w, h int) error {
	if gx < 0 || gy < 0 || gx+w > l.NumSitesX || gy+h > l.NumRows {
		return fmt.Errorf("position (%d,%d) size %dx%d outside %dx%d die", gx, gy, w, h, l.NumSitesX, l.NumRows)
	}
	return nil
}

// Hash returns the hex SHA-256 of the layout's canonical flexpl bytes — the
// content address every outcome-cache key and base handle is built from.
func Hash(l *model.Layout) string {
	h := sha256.New()
	// Encode to an in-memory hash never fails; a buffered writer over a
	// hash.Hash cannot return a write error.
	_ = model.Encode(h, l)
	return hex.EncodeToString(h.Sum(nil))
}

// Key builds the outcome-cache key for legalizing the layout with the given
// content hash under one engine/options configuration. The band count and
// halo are part of the key because the banded decomposition changes result
// bytes (seam displacement), so outcomes from different decompositions must
// never alias.
func Key(hash, engine, options string, bands, halo int) string {
	return fmt.Sprintf("outcome|%s|%s|%s|bands=%d|halo=%d", hash, engine, options, bands, halo)
}

// LayoutKey is the cache key an input layout is stored under, addressed by
// its own content hash; resolving a request's "base" handle is a lookup of
// this key.
func LayoutKey(hash string) string { return "layout|" + hash }

// BandOutcome is one band's legalization result inside an Entry.
type BandOutcome struct {
	// InHash is the content hash of the band's input layout; a future
	// request may reuse Layout only when its band input hash-matches.
	InHash string
	// Layout is the legalized band.
	Layout *model.Layout
	// Legal and ModeledSeconds are the engine's verdict and modeled
	// runtime for this band (Legal is not derivable from the layout
	// alone: engines also track placement failures).
	Legal          bool
	ModeledSeconds float64
}

// Entry is one memoized legalization outcome: the stitched result plus the
// per-band decomposition it was computed from, so a later edited request
// can splice fresh dirty bands into the cached clean ones. Bands is nil for
// unsharded runs (whole-outcome reuse only).
type Entry struct {
	// Engine and Options are the configuration component of the key,
	// echoed for integrity checks on disk load.
	Engine  string
	Options string
	// Halo is the seam halo the decomposition used.
	Halo int
	// Bands is the per-band decomposition in band order.
	Bands []BandOutcome
	// Result is the stitched (or whole-die) legalized layout.
	Result *model.Layout
	// Legal and ModeledSeconds summarize the run (ModeledSeconds is the
	// max over bands for sharded runs, matching the stitched outcome).
	Legal          bool
	ModeledSeconds float64
}

// ApproxBytes estimates the entry's resident footprint for cache accounting.
func (e *Entry) ApproxBytes() int64 {
	var n int64 = 256
	if e.Result != nil {
		n += e.Result.ApproxBytes()
	}
	for i := range e.Bands {
		n += 128 + int64(len(e.Bands[i].InHash))
		if e.Bands[i].Layout != nil {
			n += e.Bands[i].Layout.ApproxBytes()
		}
	}
	return n
}

// Span is an inclusive-exclusive row interval [Lo, Hi).
type Span struct {
	Lo, Hi int
}

// DirtySpans returns the halo-widened row spans an edit batch touches on
// base, and whether the batch is halo-local. A move is halo-local when its
// new row span stays within halo rows of its old span; inserts and deletes
// are always local to their own span. The spans cover both the old and new
// global-placement rows of every edited cell, each widened by halo rows, so
// every band whose ownership could have changed intersects a span.
func DirtySpans(base *model.Layout, edits []Edit, halo int) (spans []Span, inHalo bool, err error) {
	byName := make(map[string]int, len(base.Cells))
	for i := range base.Cells {
		byName[base.Cells[i].Name] = i
	}
	inHalo = true
	add := func(lo, hi int) {
		spans = append(spans, Span{Lo: lo - halo, Hi: hi + halo})
	}
	for ei, e := range edits {
		switch e.Op {
		case OpMove:
			i, ok := byName[e.Cell]
			if !ok {
				return nil, false, fmt.Errorf("eco: edit %d: unknown cell %q", ei, e.Cell)
			}
			c := &base.Cells[i]
			add(c.GY, c.GY+c.H)
			add(e.GY, e.GY+c.H)
			if e.GY < c.GY-halo || e.GY > c.GY+halo {
				inHalo = false
			}
		case OpInsert:
			add(e.GY, e.GY+max(e.H, 1))
		case OpDelete:
			i, ok := byName[e.Cell]
			if !ok {
				return nil, false, fmt.Errorf("eco: edit %d: unknown cell %q", ei, e.Cell)
			}
			c := &base.Cells[i]
			add(c.GY, c.GY+c.H)
		default:
			return nil, false, fmt.Errorf("eco: edit %d: unknown op %q", ei, e.Op)
		}
	}
	return spans, inHalo, nil
}

// MarkDirty flags every band of the plan that intersects a dirty span.
func MarkDirty(p *shard.Plan, spans []Span) []bool {
	dirty := make([]bool, len(p.Bands))
	for _, s := range spans {
		if s.Hi <= s.Lo { // empty interval intersects nothing
			continue
		}
		for i, b := range p.Bands {
			if s.Lo < b.HiRow && s.Hi > b.LoRow {
				dirty[i] = true
			}
		}
	}
	return dirty
}

// --- disk codec -----------------------------------------------------------
//
// The persistent outcome cache stores two value kinds: *Entry under
// outcome|… keys and *model.Layout under layout|… keys. Layouts embed as
// canonical flexpl text, so a file's bytes are decodable by any tool that
// speaks the exchange format and hash-verifiable against its own key.

type entryWire struct {
	Kind           string     `json:"kind"` // "outcome" or "layout"
	Engine         string     `json:"engine,omitempty"`
	Options        string     `json:"options,omitempty"`
	Halo           int        `json:"halo,omitempty"`
	Bands          []bandWire `json:"bands,omitempty"`
	Result         string     `json:"result,omitempty"`
	Layout         string     `json:"layout,omitempty"`
	Legal          bool       `json:"legal,omitempty"`
	ModeledSeconds float64    `json:"modeledSeconds,omitempty"`
}

type bandWire struct {
	InHash         string  `json:"inHash"`
	Layout         string  `json:"layout"`
	Legal          bool    `json:"legal"`
	ModeledSeconds float64 `json:"modeledSeconds"`
}

func layoutText(l *model.Layout) (string, error) {
	var buf bytes.Buffer
	if err := model.Encode(&buf, l); err != nil {
		return "", err
	}
	return buf.String(), nil
}

func layoutFromText(s string) (*model.Layout, error) {
	return model.Decode(strings.NewReader(s))
}

// EncodeValue serializes an outcome-cache value (an *Entry or a
// *model.Layout, selected by the key's prefix) for the disk layer.
func EncodeValue(key string, v any) ([]byte, error) {
	switch val := v.(type) {
	case *model.Layout:
		text, err := layoutText(val)
		if err != nil {
			return nil, err
		}
		return json.Marshal(entryWire{Kind: "layout", Layout: text})
	case *Entry:
		w := entryWire{
			Kind:           "outcome",
			Engine:         val.Engine,
			Options:        val.Options,
			Halo:           val.Halo,
			Legal:          val.Legal,
			ModeledSeconds: val.ModeledSeconds,
		}
		var err error
		if w.Result, err = layoutText(val.Result); err != nil {
			return nil, err
		}
		for i := range val.Bands {
			b := &val.Bands[i]
			text, err := layoutText(b.Layout)
			if err != nil {
				return nil, err
			}
			w.Bands = append(w.Bands, bandWire{
				InHash: b.InHash, Layout: text,
				Legal: b.Legal, ModeledSeconds: b.ModeledSeconds,
			})
		}
		return json.Marshal(w)
	}
	return nil, fmt.Errorf("eco: cannot encode %T under key %q", v, key)
}

// DecodeValue parses bytes written by EncodeValue back into the cached
// value and its resident size, validating the payload kind against the
// key's prefix so a corrupted or mislabeled file is rejected, never served.
func DecodeValue(key string, data []byte) (any, int64, error) {
	var w entryWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, 0, err
	}
	if w.Kind == "layout" {
		if len(key) < len("layout|") || key[:len("layout|")] != "layout|" {
			return nil, 0, fmt.Errorf("eco: layout payload under key %q", key)
		}
		l, err := layoutFromText(w.Layout)
		if err != nil {
			return nil, 0, err
		}
		if h := Hash(l); LayoutKey(h) != key {
			return nil, 0, fmt.Errorf("eco: layout content hash %s does not match key %q", h, key)
		}
		return l, l.ApproxBytes(), nil
	}
	if w.Kind != "outcome" {
		return nil, 0, fmt.Errorf("eco: unknown payload kind %q", w.Kind)
	}
	e := &Entry{
		Engine:         w.Engine,
		Options:        w.Options,
		Halo:           w.Halo,
		Legal:          w.Legal,
		ModeledSeconds: w.ModeledSeconds,
	}
	var err error
	if e.Result, err = layoutFromText(w.Result); err != nil {
		return nil, 0, fmt.Errorf("eco: bad result layout: %w", err)
	}
	for i := range w.Bands {
		b := &w.Bands[i]
		l, err := layoutFromText(b.Layout)
		if err != nil {
			return nil, 0, fmt.Errorf("eco: bad band %d layout: %w", i, err)
		}
		if b.InHash == "" {
			return nil, 0, fmt.Errorf("eco: band %d missing input hash", i)
		}
		e.Bands = append(e.Bands, BandOutcome{
			InHash: b.InHash, Layout: l,
			Legal: b.Legal, ModeledSeconds: b.ModeledSeconds,
		})
	}
	return e, e.ApproxBytes(), nil
}
