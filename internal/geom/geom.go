// Package geom provides the small integer-geometry vocabulary used by the
// legalizer: half-open intervals and rectangles on the site/row grid.
//
// All placement coordinates in this repository are integers: x positions are
// measured in placement sites, y positions in standard-cell rows. Intervals
// and rectangles are half-open ([Lo, Hi)), which makes abutting cells
// non-overlapping by construction.
package geom

import "fmt"

// Interval is a half-open integer interval [Lo, Hi).
type Interval struct {
	Lo, Hi int
}

// NewInterval returns the interval [lo, hi). It does not require lo <= hi;
// an inverted interval is empty.
func NewInterval(lo, hi int) Interval { return Interval{Lo: lo, Hi: hi} }

// Len returns the length of the interval, or 0 if it is empty/inverted.
func (iv Interval) Len() int {
	if iv.Hi <= iv.Lo {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Empty reports whether the interval contains no integers.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// Contains reports whether x lies in [Lo, Hi).
func (iv Interval) Contains(x int) bool { return x >= iv.Lo && x < iv.Hi }

// ContainsInterval reports whether o is entirely inside iv.
func (iv Interval) ContainsInterval(o Interval) bool {
	if o.Empty() {
		return true
	}
	return o.Lo >= iv.Lo && o.Hi <= iv.Hi
}

// Overlaps reports whether the two intervals share at least one integer.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Lo < o.Hi && o.Lo < iv.Hi
}

// Intersect returns the intersection of the two intervals (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	lo, hi := iv.Lo, iv.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	return Interval{Lo: lo, Hi: hi}
}

// Union returns the smallest interval covering both intervals.
func (iv Interval) Union(o Interval) Interval {
	if iv.Empty() {
		return o
	}
	if o.Empty() {
		return iv
	}
	lo, hi := iv.Lo, iv.Hi
	if o.Lo < lo {
		lo = o.Lo
	}
	if o.Hi > hi {
		hi = o.Hi
	}
	return Interval{Lo: lo, Hi: hi}
}

// Clamp returns x clamped into [Lo, Hi-1]. Clamp panics on an empty interval
// because there is no representable answer.
func (iv Interval) Clamp(x int) int {
	if iv.Empty() {
		panic(fmt.Sprintf("geom: Clamp on empty interval %v", iv))
	}
	if x < iv.Lo {
		return iv.Lo
	}
	if x >= iv.Hi {
		return iv.Hi - 1
	}
	return x
}

func (iv Interval) String() string { return fmt.Sprintf("[%d,%d)", iv.Lo, iv.Hi) }

// Rect is an axis-aligned half-open rectangle on the site/row grid:
// x in [X, X+W), y in [Y, Y+H).
type Rect struct {
	X, Y, W, H int
}

// NewRect returns the rectangle with bottom-left corner (x, y), width w and
// height h.
func NewRect(x, y, w, h int) Rect { return Rect{X: x, Y: y, W: w, H: h} }

// XSpan returns the x interval [X, X+W).
func (r Rect) XSpan() Interval { return Interval{Lo: r.X, Hi: r.X + r.W} }

// YSpan returns the y interval [Y, Y+H).
func (r Rect) YSpan() Interval { return Interval{Lo: r.Y, Hi: r.Y + r.H} }

// Area returns the area of the rectangle, or 0 if it is empty.
func (r Rect) Area() int {
	if r.W <= 0 || r.H <= 0 {
		return 0
	}
	return r.W * r.H
}

// Empty reports whether the rectangle covers no grid cells.
func (r Rect) Empty() bool { return r.W <= 0 || r.H <= 0 }

// Overlaps reports whether the two rectangles share interior area.
func (r Rect) Overlaps(o Rect) bool {
	return r.XSpan().Overlaps(o.XSpan()) && r.YSpan().Overlaps(o.YSpan())
}

// Intersect returns the intersection of the two rectangles (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	xs := r.XSpan().Intersect(o.XSpan())
	ys := r.YSpan().Intersect(o.YSpan())
	if xs.Empty() || ys.Empty() {
		return Rect{}
	}
	return Rect{X: xs.Lo, Y: ys.Lo, W: xs.Len(), H: ys.Len()}
}

// Union returns the bounding box of the two rectangles.
func (r Rect) Union(o Rect) Rect {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	xs := r.XSpan().Union(o.XSpan())
	ys := r.YSpan().Union(o.YSpan())
	return Rect{X: xs.Lo, Y: ys.Lo, W: xs.Len(), H: ys.Len()}
}

// Contains reports whether o lies entirely inside r.
func (r Rect) Contains(o Rect) bool {
	return r.XSpan().ContainsInterval(o.XSpan()) && r.YSpan().ContainsInterval(o.YSpan())
}

// ContainsPoint reports whether the grid cell at (x, y) is inside r.
func (r Rect) ContainsPoint(x, y int) bool {
	return r.XSpan().Contains(x) && r.YSpan().Contains(y)
}

func (r Rect) String() string {
	return fmt.Sprintf("(%d,%d)+%dx%d", r.X, r.Y, r.W, r.H)
}

// Abs returns the absolute value of an int.
func Abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Manhattan returns the Manhattan (L1) distance between (x1, y1) and (x2, y2).
func Manhattan(x1, y1, x2, y2 int) int {
	return Abs(x1-x2) + Abs(y1-y2)
}

// Min returns the smaller of a and b.
func Min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
