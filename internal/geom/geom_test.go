package geom

import (
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := NewInterval(2, 5)
	if iv.Len() != 3 {
		t.Fatalf("Len = %d, want 3", iv.Len())
	}
	if iv.Empty() {
		t.Fatal("interval should not be empty")
	}
	if !iv.Contains(2) || !iv.Contains(4) || iv.Contains(5) || iv.Contains(1) {
		t.Fatal("Contains is wrong at the interval boundaries")
	}
	if NewInterval(5, 2).Len() != 0 || !NewInterval(5, 2).Empty() {
		t.Fatal("inverted interval must be empty with zero length")
	}
}

func TestIntervalOverlapsIsHalfOpen(t *testing.T) {
	a := NewInterval(0, 4)
	b := NewInterval(4, 8) // abutting: shares no integer
	if a.Overlaps(b) || b.Overlaps(a) {
		t.Fatal("abutting half-open intervals must not overlap")
	}
	c := NewInterval(3, 5)
	if !a.Overlaps(c) || !c.Overlaps(a) {
		t.Fatal("intervals sharing [3,4) must overlap")
	}
}

func TestIntervalIntersectUnion(t *testing.T) {
	a, b := NewInterval(0, 10), NewInterval(5, 15)
	if got := a.Intersect(b); got != NewInterval(5, 10) {
		t.Fatalf("Intersect = %v, want [5,10)", got)
	}
	if got := a.Union(b); got != NewInterval(0, 15) {
		t.Fatalf("Union = %v, want [0,15)", got)
	}
	empty := NewInterval(7, 7)
	if got := a.Union(empty); got != a {
		t.Fatalf("union with empty = %v, want %v", got, a)
	}
	if got := empty.Union(b); got != b {
		t.Fatalf("empty union b = %v, want %v", got, b)
	}
}

func TestIntervalClamp(t *testing.T) {
	iv := NewInterval(3, 8)
	cases := [][2]int{{0, 3}, {3, 3}, {7, 7}, {8, 7}, {100, 7}}
	for _, c := range cases {
		if got := iv.Clamp(c[0]); got != c[1] {
			t.Errorf("Clamp(%d) = %d, want %d", c[0], got, c[1])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Clamp on empty interval must panic")
		}
	}()
	NewInterval(5, 5).Clamp(1)
}

func TestIntervalContainsInterval(t *testing.T) {
	outer := NewInterval(0, 10)
	if !outer.ContainsInterval(NewInterval(0, 10)) {
		t.Fatal("interval must contain itself")
	}
	if !outer.ContainsInterval(NewInterval(3, 3)) {
		t.Fatal("any interval contains the empty interval")
	}
	if outer.ContainsInterval(NewInterval(5, 11)) {
		t.Fatal("[0,10) must not contain [5,11)")
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(1, 2, 3, 4)
	if r.Area() != 12 {
		t.Fatalf("Area = %d, want 12", r.Area())
	}
	if r.XSpan() != NewInterval(1, 4) || r.YSpan() != NewInterval(2, 6) {
		t.Fatal("spans are wrong")
	}
	if NewRect(0, 0, 0, 5).Area() != 0 || !NewRect(0, 0, 0, 5).Empty() {
		t.Fatal("zero-width rect must be empty with zero area")
	}
}

func TestRectOverlapAbutting(t *testing.T) {
	a := NewRect(0, 0, 4, 2)
	b := NewRect(4, 0, 4, 2) // abuts on the right
	c := NewRect(0, 2, 4, 2) // abuts on top
	if a.Overlaps(b) || a.Overlaps(c) {
		t.Fatal("abutting rects must not overlap")
	}
	d := NewRect(3, 1, 2, 2)
	if !a.Overlaps(d) || !d.Overlaps(a) {
		t.Fatal("rects sharing area must overlap")
	}
}

func TestRectIntersectUnionContains(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	b := NewRect(5, 5, 10, 10)
	want := NewRect(5, 5, 5, 5)
	if got := a.Intersect(b); got != want {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	if got := a.Union(b); got != NewRect(0, 0, 15, 15) {
		t.Fatalf("Union = %v, want (0,0)+15x15", got)
	}
	if !a.Contains(NewRect(2, 3, 4, 5)) {
		t.Fatal("containment failed")
	}
	if a.Contains(NewRect(8, 8, 4, 4)) {
		t.Fatal("partially outside rect reported as contained")
	}
	if !a.ContainsPoint(0, 0) || a.ContainsPoint(10, 0) {
		t.Fatal("ContainsPoint boundary behaviour wrong")
	}
	disjoint := NewRect(20, 20, 2, 2)
	if got := a.Intersect(disjoint); !got.Empty() {
		t.Fatalf("disjoint intersection = %v, want empty", got)
	}
}

func TestScalarHelpers(t *testing.T) {
	if Abs(-5) != 5 || Abs(5) != 5 || Abs(0) != 0 {
		t.Fatal("Abs wrong")
	}
	if Manhattan(0, 0, 3, -4) != 7 {
		t.Fatal("Manhattan wrong")
	}
	if Min(2, 3) != 2 || Max(2, 3) != 3 {
		t.Fatal("Min/Max wrong")
	}
}

// Property: intersection is commutative and contained in both operands;
// union contains both operands.
func TestRectIntersectUnionProperties(t *testing.T) {
	f := func(ax, ay int8, aw, ah uint8, bx, by int8, bw, bh uint8) bool {
		a := NewRect(int(ax), int(ay), int(aw)%32+1, int(ah)%32+1)
		b := NewRect(int(bx), int(by), int(bw)%32+1, int(bh)%32+1)
		inter1, inter2 := a.Intersect(b), b.Intersect(a)
		if inter1 != inter2 {
			return false
		}
		if !inter1.Empty() && (!a.Contains(inter1) || !b.Contains(inter1)) {
			return false
		}
		u := a.Union(b)
		return u.Contains(a) && u.Contains(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Overlaps(a, b) iff the intersection has positive area.
func TestRectOverlapMatchesIntersection(t *testing.T) {
	f := func(ax, ay int8, aw, ah uint8, bx, by int8, bw, bh uint8) bool {
		a := NewRect(int(ax), int(ay), int(aw)%16+1, int(ah)%16+1)
		b := NewRect(int(bx), int(by), int(bw)%16+1, int(bh)%16+1)
		return a.Overlaps(b) == (a.Intersect(b).Area() > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
