// Package gen synthesizes mixed-cell-height legalization benchmarks shaped
// like the IC/CAD 2017 contest suite the FLEX paper evaluates on (Table 1).
//
// The real contest files are not redistributable, so each design is rebuilt
// from its published statistics: cell count, design density, and a
// mixed-height distribution chosen to match the paper's per-design
// observations (e.g. Fig. 9 notes that des_perf_1, des_perf_a_md1 and
// des_perf_b_md1 contain no cells taller than three rows, while
// pci_b_a_md2 has the highest share of such cells).
//
// Generation is a two-phase process: first a *legal* layout is packed onto
// the row grid at the requested density (so a legal solution is known to
// exist), then every cell's global-placement position is perturbed by
// Gaussian noise, producing the overlapping "global placement" input a
// legalizer must repair. The distance to the hidden legal solution bounds
// the achievable displacement, which keeps AveDis in the same regime as the
// paper's Table 1.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/flex-eda/flex/internal/model"
)

// Spec describes one synthetic benchmark.
type Spec struct {
	Name          string
	NumCells      int        // movable cells at scale 1.0
	TargetDensity float64    // movable area / free area (Table 1 "Den.")
	HeightMix     [4]float64 // fraction of cells with height 1..4 rows
	Seed          int64      // RNG seed; same seed → identical layout
	BlockageFrac  float64    // fraction of die area covered by fixed stripes
	PerturbX      float64    // global-placement noise sigma, in sites
	PerturbY      float64    // global-placement noise sigma, in rows
	ToughFrac     float64    // fraction of extra-wide "tough" cells
}

// TallFraction returns the configured fraction of cells taller than three
// rows (the gray series in the paper's Fig. 9).
func (s Spec) TallFraction() float64 { return s.HeightMix[3] }

// Generate builds the global-placement layout for the spec at the given
// scale factor (1.0 = the paper's cell count). The returned layout generally
// contains overlaps; the hidden legal packing it was derived from guarantees
// a legal solution exists within the perturbation distance.
func (s Spec) Generate(scale float64) (*model.Layout, error) {
	l, err := s.GenerateLegal(scale)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(s.Seed ^ 0x5eed))
	for i := range l.Cells {
		c := &l.Cells[i]
		if c.Fixed {
			continue
		}
		dx := int(math.Round(r.NormFloat64() * s.PerturbX))
		dy := int(math.Round(r.NormFloat64() * s.PerturbY))
		gx := clamp(c.X+dx, 0, l.NumSitesX-c.W)
		gy := clamp(c.Y+dy, 0, l.NumRows-c.H)
		c.GX, c.GY = gx, gy
		c.X, c.Y = gx, gy
	}
	return l, nil
}

// GenerateLegal builds the hidden legal packing for the spec (no overlaps,
// parity-aligned). It is exported because tests and baselines need a known
// legal layout.
func (s Spec) GenerateLegal(scale float64) (*model.Layout, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("gen: scale must be positive, got %v", scale)
	}
	n := int(math.Round(float64(s.NumCells) * scale))
	if n < 16 {
		n = 16
	}
	r := rand.New(rand.NewSource(s.Seed))

	heights := sampleHeights(r, n, s.HeightMix)
	widths := make([]int, n)
	var area int
	for i, h := range heights {
		w := cellWidth(r, h)
		if s.ToughFrac > 0 && r.Float64() < s.ToughFrac {
			w += 8 + r.Intn(16) // extra-wide "tough" cell
		}
		widths[i] = w
		area += w * h
	}

	density := s.TargetDensity
	if density <= 0 || density >= 0.97 {
		return nil, fmt.Errorf("gen: density %v out of range (0, 0.97)", density)
	}
	free := float64(area) / density
	dieArea := free / (1 - s.BlockageFrac)
	// Physically roughly square die: a row is about 8 sites tall.
	numRows := int(math.Ceil(math.Sqrt(dieArea / 8.0)))
	if numRows%2 != 0 {
		numRows++
	}
	if numRows < 8 {
		numRows = 8
	}
	numSites := int(math.Ceil(dieArea / float64(numRows)))

	for attempt := 0; ; attempt++ {
		l, ok := pack(r, s, n, heights, widths, numSites, numRows)
		if ok {
			l.Name = s.Name
			return l, nil
		}
		if attempt >= 4 {
			return nil, fmt.Errorf("gen: could not pack %s at density %.2f", s.Name, density)
		}
		numSites = numSites + numSites/10 + 1 // widen and retry
	}
}

// pack lays the cells out legally on a die of the given size. Fixed
// full-height blockage stripes split every row into identical segments; the
// cells are skyline-packed into those segments with exponential gaps tuned
// to the target density.
func pack(r *rand.Rand, s Spec, n int, heights, widths []int, numSites, numRows int) (*model.Layout, bool) {
	l := &model.Layout{
		Name:      s.Name,
		NumSitesX: numSites,
		NumRows:   numRows,
		RowHeight: 8,
	}

	segs := blockageSegments(r, s, l)

	// Sort cell indices by descending height so multi-row cells pack while
	// per-row cursors are still aligned, keeping waste low at high density.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return heights[order[a]] > heights[order[b]] })

	// Per-segment, per-row skyline cursors.
	cursors := make([][]int, len(segs))
	for i := range cursors {
		cursors[i] = make([]int, numRows)
		for y := range cursors[i] {
			cursors[i][y] = segs[i].lo
		}
	}
	segWeight := make([]float64, len(segs))
	total := 0.0
	for i, sg := range segs {
		total += float64(sg.hi - sg.lo)
		segWeight[i] = total
	}

	meanGap := (1/s.TargetDensity - 1) * 4.0 // 4 ≈ mean cell width in sites
	movable := make([]model.Cell, 0, n)

	for _, idx := range order {
		w, h := widths[idx], heights[idx]
		placed := false
		// Pick a segment weighted by width, then a parity-legal row whose
		// skyline base is lowest among a handful of random tries.
		for segTry := 0; segTry < len(segs)*2 && !placed; segTry++ {
			si := pickSegment(r, segWeight, total)
			sg := segs[si]
			if sg.hi-sg.lo < w {
				continue
			}
			bestY, bestBase := -1, math.MaxInt
			tries := 12
			for t := 0; t < tries; t++ {
				y := randomLegalRow(r, h, numRows)
				if y < 0 {
					continue
				}
				base := maxCursor(cursors[si], y, h)
				if base < bestBase {
					bestBase, bestY = base, y
				}
			}
			if bestY < 0 {
				continue
			}
			gap := int(r.ExpFloat64() * meanGap)
			if lim := int(3 * meanGap); gap > lim {
				gap = lim
			}
			x := bestBase + gap
			if x+w > sg.hi {
				x = bestBase // drop the gap under pressure
			}
			if x+w > sg.hi {
				continue
			}
			movable = append(movable, model.Cell{
				Name: fmt.Sprintf("c%d", idx), X: x, Y: bestY, GX: x, GY: bestY,
				W: w, H: h, Parity: parityFor(h),
			})
			setCursor(cursors[si], bestY, h, x+w)
			placed = true
		}
		if !placed {
			// Exhaustive fallback: scan every segment and row.
			for si, sg := range segs {
				if placed || sg.hi-sg.lo < w {
					continue
				}
				for y := 0; y+h <= numRows && !placed; y++ {
					if !parityFor(h).AllowsRow(y) {
						continue
					}
					base := maxCursor(cursors[si], y, h)
					if base+w <= sg.hi {
						movable = append(movable, model.Cell{
							Name: fmt.Sprintf("c%d", idx), X: base, Y: y, GX: base, GY: y,
							W: w, H: h, Parity: parityFor(h),
						})
						setCursor(cursors[si], y, h, base+w)
						placed = true
					}
				}
			}
		}
		if !placed {
			return nil, false
		}
	}
	l.Cells = append(l.Cells, movable...)
	for i := range l.Cells {
		l.Cells[i].ID = i
	}
	return l, true
}

type segment struct{ lo, hi int }

// blockageSegments places full-height fixed stripes and returns the free
// x segments between them (identical for every row).
func blockageSegments(r *rand.Rand, s Spec, l *model.Layout) []segment {
	if s.BlockageFrac <= 0 {
		return []segment{{0, l.NumSitesX}}
	}
	blockArea := s.BlockageFrac * float64(l.NumSitesX) * float64(l.NumRows)
	stripeW := l.NumSitesX / 40
	if stripeW < 2 {
		stripeW = 2
	}
	nStripes := int(blockArea / float64(stripeW*l.NumRows))
	if nStripes < 1 {
		nStripes = 1
	}
	if nStripes > 6 {
		nStripes = 6
		stripeW = int(blockArea / float64(nStripes*l.NumRows))
	}
	// Spread stripes at jittered, non-overlapping x positions.
	var xs []int
	step := l.NumSitesX / (nStripes + 1)
	for i := 1; i <= nStripes; i++ {
		x := i*step + r.Intn(step/4+1) - step/8
		x = clamp(x, stripeW, l.NumSitesX-2*stripeW)
		xs = append(xs, x)
	}
	sort.Ints(xs)
	var segs []segment
	prev := 0
	for i, x := range xs {
		if x < prev { // jitter collision: skip stripe
			continue
		}
		l.Cells = append(l.Cells, model.Cell{
			ID: len(l.Cells), Name: fmt.Sprintf("blk%d", i),
			X: x, Y: 0, GX: x, GY: 0, W: stripeW, H: l.NumRows,
			Parity: model.ParityAny, Fixed: true,
		})
		if x > prev {
			segs = append(segs, segment{prev, x})
		}
		prev = x + stripeW
	}
	if prev < l.NumSitesX {
		segs = append(segs, segment{prev, l.NumSitesX})
	}
	if len(segs) == 0 {
		segs = []segment{{0, l.NumSitesX}}
	}
	return segs
}

func sampleHeights(r *rand.Rand, n int, mix [4]float64) []int {
	// Normalize the mix defensively.
	sum := 0.0
	for _, f := range mix {
		sum += f
	}
	if sum <= 0 {
		mix = [4]float64{1, 0, 0, 0}
		sum = 1
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		u := r.Float64() * sum
		h := 4
		acc := 0.0
		for k := 0; k < 4; k++ {
			acc += mix[k]
			if u < acc {
				h = k + 1
				break
			}
		}
		out[i] = h
	}
	return out
}

func cellWidth(r *rand.Rand, h int) int {
	if h == 1 {
		return 1 + r.Intn(7) // 1..7 sites
	}
	return 2 + r.Intn(6) // taller cells: 2..7 sites
}

func parityFor(h int) model.PGParity {
	if h%2 == 0 {
		return model.ParityEven
	}
	return model.ParityAny
}

func randomLegalRow(r *rand.Rand, h, numRows int) int {
	span := numRows - h
	if span < 0 {
		return -1
	}
	y := r.Intn(span + 1)
	if h%2 == 0 && y%2 != 0 {
		y--
		if y < 0 {
			y = 0
		}
	}
	return y
}

func pickSegment(r *rand.Rand, cum []float64, total float64) int {
	u := r.Float64() * total
	for i, c := range cum {
		if u < c {
			return i
		}
	}
	return len(cum) - 1
}

func maxCursor(cur []int, y, h int) int {
	m := cur[y]
	for i := y + 1; i < y+h; i++ {
		if cur[i] > m {
			m = cur[i]
		}
	}
	return m
}

func setCursor(cur []int, y, h, v int) {
	for i := y; i < y+h; i++ {
		cur[i] = v
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
