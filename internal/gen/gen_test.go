package gen

import (
	"testing"

	"github.com/flex-eda/flex/internal/model"
)

func TestGenerateLegalIsLegal(t *testing.T) {
	for _, spec := range []Spec{
		Small(400, 0.55, 7),
		Small(400, 0.85, 8),
		Small(150, 0.25, 9),
	} {
		l, err := spec.GenerateLegal(1.0)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if vs := l.Check(5); len(vs) != 0 {
			t.Fatalf("%s: legal packing has violations: %v", spec.Name, vs)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	spec := Small(300, 0.6, 42)
	a, err := spec.Generate(1.0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Fatalf("cell %d differs: %+v vs %+v", i, a.Cells[i], b.Cells[i])
		}
	}
}

func TestGenerateDensityNearTarget(t *testing.T) {
	spec := Small(2000, 0.6, 3)
	l, err := spec.GenerateLegal(1.0)
	if err != nil {
		t.Fatal(err)
	}
	d := l.Density()
	if d < 0.40 || d > 0.75 {
		t.Fatalf("density %v too far from target 0.6", d)
	}
}

func TestGenerateHeightMix(t *testing.T) {
	spec := Small(4000, 0.5, 11)
	l, err := spec.Generate(1.0)
	if err != nil {
		t.Fatal(err)
	}
	hist := model.HeightHistogram(l)
	total := 0
	for _, c := range hist {
		total += c
	}
	for h := 1; h <= 4; h++ {
		got := float64(hist[h]) / float64(total)
		want := spec.HeightMix[h-1]
		if got < want-0.05 || got > want+0.05 {
			t.Errorf("height %d fraction = %.3f, want ~%.3f", h, got, want)
		}
	}
}

func TestGeneratePerturbationCreatesOverlap(t *testing.T) {
	spec := Small(800, 0.7, 5)
	l, err := spec.Generate(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if l.OverlapArea() == 0 {
		t.Fatal("global placement should contain overlaps at density 0.7")
	}
	// Every cell must still be inside the die and X==GX (pre-legalization).
	die := l.Die()
	for i := range l.Cells {
		c := &l.Cells[i]
		if !die.Contains(c.Rect()) {
			t.Fatalf("cell %d out of die after perturbation", i)
		}
		if c.X != c.GX || c.Y != c.GY {
			t.Fatalf("cell %d current position differs from GP before legalization", i)
		}
	}
}

func TestNoTallCellsInMd1Designs(t *testing.T) {
	for _, name := range []string{"des_perf_1", "des_perf_a_md1", "des_perf_b_md1"} {
		spec, ok := ByName(name)
		if !ok {
			t.Fatalf("%s missing from suite", name)
		}
		if spec.TallFraction() != 0 {
			t.Errorf("%s should have no cells taller than 3 rows", name)
		}
		l, err := spec.Generate(0.01)
		if err != nil {
			t.Fatal(err)
		}
		if f := model.TallCellFraction(l, 3); f != 0 {
			t.Errorf("%s: generated tall fraction %v, want 0", name, f)
		}
	}
	spec, _ := ByName("pci_b_a_md2")
	if spec.TallFraction() < 0.05 {
		t.Errorf("pci_b_a_md2 should have the largest tall-cell share, got %v", spec.TallFraction())
	}
}

func TestSuiteCompleteness(t *testing.T) {
	suite := ICCAD2017()
	if len(suite) != 16 {
		t.Fatalf("ICCAD2017 suite has %d designs, want 16", len(suite))
	}
	seen := map[string]bool{}
	for _, s := range suite {
		if seen[s.Name] {
			t.Fatalf("duplicate design %s", s.Name)
		}
		seen[s.Name] = true
		if s.NumCells < 20000 {
			t.Errorf("%s: cell count %d suspiciously small", s.Name, s.NumCells)
		}
		if s.TargetDensity <= 0 || s.TargetDensity >= 1 {
			t.Errorf("%s: bad density %v", s.Name, s.TargetDensity)
		}
	}
	sb := Superblue()
	if len(sb) != 2 {
		t.Fatalf("Superblue suite has %d designs, want 2", len(sb))
	}
	if _, ok := ByName("superblue19"); !ok {
		t.Fatal("superblue19 not found by name")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("ByName found a nonexistent design")
	}
}

func TestGenerateScale(t *testing.T) {
	spec := Small(10000, 0.5, 13)
	l, err := spec.Generate(0.05)
	if err != nil {
		t.Fatal(err)
	}
	movable := len(l.MovableIDs())
	if movable < 400 || movable > 600 {
		t.Fatalf("scaled cell count %d, want ~500", movable)
	}
	if _, err := spec.Generate(0); err == nil {
		t.Fatal("scale 0 must be rejected")
	}
}

func TestGenerateRejectsBadDensity(t *testing.T) {
	spec := Small(100, 0.5, 1)
	spec.TargetDensity = 0.99
	if _, err := spec.Generate(1); err == nil {
		t.Fatal("density 0.99 must be rejected")
	}
	spec.TargetDensity = 0
	if _, err := spec.Generate(1); err == nil {
		t.Fatal("density 0 must be rejected")
	}
}
