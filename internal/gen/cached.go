package gen

import (
	"github.com/flex-eda/flex/internal/cache"
	"github.com/flex-eda/flex/internal/model"
)

// Cached builds the layout for spec at scale through c, memoizing by
// CacheKey with ApproxBytes residency accounting — the one memoization
// recipe shared by flex.Service and the experiment drivers, so key, sizing
// and single-flight semantics cannot drift between them. A nil cache
// generates directly.
func Cached(c *cache.LRU, spec Spec, scale float64) (*model.Layout, error) {
	if c == nil {
		return spec.Generate(scale)
	}
	v, err := c.Do(spec.CacheKey(scale), func() (any, int64, error) {
		l, err := spec.Generate(scale)
		if err != nil {
			return nil, 0, err
		}
		return l, l.ApproxBytes(), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*model.Layout), nil
}
