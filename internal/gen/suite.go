package gen

import (
	"fmt"
	"math"

	"github.com/flex-eda/flex/internal/model"
)

// ICCAD2017 returns the 16 Table-1 designs of the paper, rebuilt from their
// published cell counts and densities. Height mixes follow the paper's
// per-design notes: the *_md1 variants (and des_perf_1) have no cells taller
// than three rows, the *_md2/_md3 variants have progressively more, and
// pci_b_a_md2 has the largest share (the Fig. 9 bandwidth-optimization
// highlight).
func ICCAD2017() []Spec {
	mk := func(name string, cells int, den float64, mix [4]float64, seed int64) Spec {
		return Spec{
			Name:          name,
			NumCells:      cells,
			TargetDensity: den,
			HeightMix:     mix,
			Seed:          seed,
			BlockageFrac:  0.04,
			PerturbX:      6.0,
			PerturbY:      0.7,
			ToughFrac:     0.002,
		}
	}
	noTall := [4]float64{0.72, 0.21, 0.07, 0}      // md1-style: no >3-row cells
	someTall := [4]float64{0.64, 0.22, 0.10, 0.04} // md2-style
	moreTall := [4]float64{0.56, 0.24, 0.13, 0.07} // md3-style
	return []Spec{
		mk("des_perf_1", 112644, 0.906, [4]float64{0.84, 0.13, 0.03, 0}, 1701),
		mk("des_perf_a_md1", 108288, 0.551, noTall, 1702),
		mk("des_perf_a_md2", 108288, 0.559, someTall, 1703),
		mk("des_perf_b_md1", 112644, 0.550, noTall, 1704),
		mk("des_perf_b_md2", 112644, 0.647, someTall, 1705),
		mk("edit_dist_1_md1", 130661, 0.674, [4]float64{0.74, 0.18, 0.06, 0.02}, 1706),
		mk("edit_dist_a_md2", 127413, 0.594, someTall, 1707),
		mk("edit_dist_a_md3", 127413, 0.572, moreTall, 1708),
		mk("fft_2_md2", 32281, 0.827, someTall, 1709),
		mk("fft_a_md2", 30625, 0.323, someTall, 1710),
		mk("fft_a_md3", 30625, 0.312, moreTall, 1711),
		mk("pci_b_a_md1", 29517, 0.495, noTall, 1712),
		mk("pci_b_a_md2", 29517, 0.577, [4]float64{0.48, 0.25, 0.18, 0.09}, 1713),
		mk("pci_b_b_md1", 28914, 0.266, [4]float64{0.70, 0.21, 0.08, 0.01}, 1714),
		mk("pci_b_b_md2", 28914, 0.183, someTall, 1715),
		mk("pci_b_b_md3", 28914, 0.222, moreTall, 1716),
	}
}

// Superblue returns the two superblue-scale designs the paper uses in
// Fig. 2(b) to measure the GPU legalizer's synchronization overhead.
func Superblue() []Spec {
	mk := func(name string, cells int, seed int64) Spec {
		return Spec{
			Name:          name,
			NumCells:      cells,
			TargetDensity: 0.55,
			HeightMix:     [4]float64{0.66, 0.22, 0.09, 0.03},
			Seed:          seed,
			BlockageFrac:  0.05,
			PerturbX:      6.0,
			PerturbY:      0.7,
			ToughFrac:     0.003,
		}
	}
	return []Spec{
		mk("superblue11_a", 926000, 1801),
		mk("superblue19", 506000, 1802),
	}
}

// ApproxBytes estimates the resident footprint of the layout Generate(scale)
// would produce, without generating it — the sizing hint auto-sharding uses
// to split (design, scale) jobs before their layouts exist. It mirrors
// GenerateLegal's cell-count rounding and model.ApproxBytesForCells'
// per-cell accounting (blockage stripes, at most six, are noise).
func (s Spec) ApproxBytes(scale float64) int64 {
	n := int(math.Round(float64(s.NumCells) * scale))
	if n < 16 {
		n = 16
	}
	return model.ApproxBytesForCells(n)
}

// CacheKey identifies the layout Generate(scale) would produce. Generation
// is a pure function of (name, seed, scale), so the key is exactly that
// triple — the memoization contract of the layout cache.
func (s Spec) CacheKey(scale float64) string {
	return fmt.Sprintf("%s|%g|%d", s.Name, scale, s.Seed)
}

// ByName looks a spec up across all suites.
func ByName(name string) (Spec, bool) {
	for _, s := range ICCAD2017() {
		if s.Name == name {
			return s, true
		}
	}
	for _, s := range Superblue() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Small returns a fast, small benchmark for unit tests and examples:
// roughly n cells at the given density with a representative height mix.
func Small(n int, density float64, seed int64) Spec {
	return Spec{
		Name:          fmt.Sprintf("small_n%d_d%02.0f_s%d", n, density*100, seed),
		NumCells:      n,
		TargetDensity: density,
		HeightMix:     [4]float64{0.62, 0.22, 0.11, 0.05},
		Seed:          seed,
		BlockageFrac:  0.04,
		PerturbX:      6.0,
		PerturbY:      0.7,
		ToughFrac:     0.002,
	}
}
