// Command flexvet is the repository's custom static-analysis gate: a
// vet-style multichecker that machine-enforces the determinism,
// device-token, and output-discipline invariants every PR used to defend
// by review (see docs/ANALYSIS.md for the rules and the justification
// grammar).
//
// Usage:
//
//	flexvet [-json] [-walltime=false] [-maporder=false] [-devicetoken=false]
//	        [-streamdiscipline=false] [-errclose=false] [packages...]
//
// Packages default to ./... resolved from the current directory. Each
// analyzer has an enable/disable flag named after it; the //flexvet:
// comment-grammar check always runs. Diagnostics — the tool's result —
// print to stdout, one "file:line:col: analyzer: message" line each (or a
// JSON array under -json); load errors go to stderr.
//
// Exit status: 0 when the tree is clean, 1 when any diagnostic fired,
// 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/flex-eda/flex/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	enabled := map[string]*bool{}
	for _, a := range analysis.All() {
		enabled[a.Name] = flag.Bool(a.Name, true, a.Doc)
	}
	flag.Parse()

	var active []*analysis.Analyzer
	for _, a := range analysis.All() {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	pkgs, err := analysis.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flexvet: %v\n", err)
		os.Exit(2)
	}
	diags := []analysis.Diagnostic{}
	for _, pkg := range pkgs {
		diags = append(diags, analysis.RunAnalyzers(active, pkg)...)
	}
	report(diags, *jsonOut)
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// report prints the diagnostics to stdout — they are flexvet's result;
// everything else the tool says goes to stderr.
//
//flexvet:stdout diagnostics are the tool's result, and CI greps them
func report(diags []analysis.Diagnostic, jsonOut bool) {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "flexvet: %v\n", err)
			os.Exit(2)
		}
		return
	}
	for _, d := range diags {
		fmt.Println(d)
	}
}
