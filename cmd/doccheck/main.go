// Command doccheck is the documentation gate CI runs next to go vet and
// gofmt: it fails when the public API or a package is missing godoc.
//
// Usage:
//
//	doccheck [-root .]
//
// Two rules, both over non-test files:
//
//  1. Every package in the module (the public flex root, internal/*, cmd/*,
//     examples/*) must carry a package doc comment ("// Package ..." or a
//     command comment on package main), so `go doc` output is
//     self-explanatory.
//  2. Every exported top-level identifier in the public flex package — types,
//     functions, methods, and each exported const/var (its declaration group
//     counts) — must have a doc comment.
//
// Violations print one "path: identifier" line each and the exit status is
// non-zero, so the CI log names exactly what to document.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := flag.String("root", ".", "module root to check")
	flag.Parse()

	var problems []string
	pkgs, err := parseAll(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	for _, p := range pkgs {
		if !p.hasPackageDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package doc comment", p.dir, p.name))
		}
		if p.dir == "." { // the public flex package
			problems = append(problems, checkExported(p)...)
		}
	}
	sort.Strings(problems)
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented identifiers/packages\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("doccheck: ok")
}

// pkg is one parsed directory.
type pkg struct {
	dir           string
	name          string
	files         map[string]*ast.File // path -> file
	hasPackageDoc bool
}

// parseAll walks the module and parses every non-test Go file, grouped by
// directory.
func parseAll(root string) ([]*pkg, error) {
	byDir := map[string]*pkg{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == ".git" || name == "testdata" || (name != "." && strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		dir, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		p := byDir[dir]
		if p == nil {
			p = &pkg{dir: dir, name: f.Name.Name, files: map[string]*ast.File{}}
			byDir[dir] = p
		}
		p.files[path] = f
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			p.hasPackageDoc = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]*pkg, 0, len(byDir))
	for _, p := range byDir {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].dir < out[j].dir })
	return out, nil
}

// checkExported reports every exported top-level identifier of the package
// that lacks a doc comment.
func checkExported(p *pkg) []string {
	var problems []string
	report := func(path, what string) {
		problems = append(problems, fmt.Sprintf("%s: %s is undocumented", path, what))
	}
	for path, f := range p.files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if recv := receiverType(d); recv != "" && !ast.IsExported(recv) {
					continue // method on an unexported type
				}
				if d.Doc == nil {
					report(path, funcName(d))
				}
			case *ast.GenDecl:
				groupDoc := d.Doc != nil
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && !groupDoc && s.Doc == nil {
							report(path, "type "+s.Name.Name)
						}
					case *ast.ValueSpec:
						// A doc on the const/var group documents its members;
						// otherwise each exported spec needs its own.
						if groupDoc || s.Doc != nil {
							continue
						}
						for _, n := range s.Names {
							if n.IsExported() {
								report(path, "const/var "+n.Name)
							}
						}
					}
				}
			}
		}
	}
	return problems
}

// receiverType names a method's receiver type ("" for plain functions).
func receiverType(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// funcName renders "func Name" or "method (T) Name" for a report line.
func funcName(d *ast.FuncDecl) string {
	if r := receiverType(d); r != "" {
		return fmt.Sprintf("method (%s) %s", r, d.Name.Name)
	}
	return "func " + d.Name.Name
}
