// Command doccheck is the documentation gate CI runs next to go vet and
// gofmt: it fails when the public API or a package is missing godoc, or
// when the prose documentation drifts from the tree it describes.
//
// Usage:
//
//	doccheck [-root .]
//
// Four rules:
//
//  1. Every package in the module (the public flex root, internal/*, cmd/*,
//     examples/*) must carry a package doc comment ("// Package ..." or a
//     command comment on package main), so `go doc` output is
//     self-explanatory. Non-test files only.
//  2. Every exported top-level identifier in the public flex package — types,
//     functions, methods, and each exported const/var (its declaration group
//     counts) — must have a doc comment.
//  3. Every file or directory referenced from README.md or docs/*.md must
//     exist: markdown link targets (relative, non-URL, fragment stripped)
//     resolve against the document's directory; inline-code path tokens —
//     space-free, starting with internal/, cmd/, docs/ or examples/, or
//     ending in .go or .md — resolve against the repo root (or the
//     document's directory). Globs and placeholders are skipped.
//  4. The package map table in docs/ARCHITECTURE.md and the tree must agree
//     both ways: every `internal/...` or `cmd/...` token in the table's
//     first column is a real directory, and every internal/* package in the
//     tree has a row naming it.
//
// Violations print one "path: problem" line each and the exit status is
// non-zero, so the CI log names exactly what to fix.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	root := flag.String("root", ".", "module root to check")
	flag.Parse()

	var problems []string
	pkgs, err := parseAll(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	for _, p := range pkgs {
		if !p.hasPackageDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package doc comment", p.dir, p.name))
		}
		if p.dir == "." { // the public flex package
			problems = append(problems, checkExported(p)...)
		}
	}
	docProblems, err := checkDocs(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	problems = append(problems, docProblems...)
	mapProblems, err := checkPackageMap(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	problems = append(problems, mapProblems...)
	sort.Strings(problems)
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "doccheck: ok")
}

// pkg is one parsed directory.
type pkg struct {
	dir           string
	name          string
	files         map[string]*ast.File // path -> file
	hasPackageDoc bool
}

// parseAll walks the module and parses every non-test Go file, grouped by
// directory.
func parseAll(root string) ([]*pkg, error) {
	byDir := map[string]*pkg{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == ".git" || name == "testdata" || (name != "." && strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		dir, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		p := byDir[dir]
		if p == nil {
			p = &pkg{dir: dir, name: f.Name.Name, files: map[string]*ast.File{}}
			byDir[dir] = p
		}
		p.files[path] = f
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			p.hasPackageDoc = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]*pkg, 0, len(byDir))
	for _, p := range byDir {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].dir < out[j].dir })
	return out, nil
}

// checkExported reports every exported top-level identifier of the package
// that lacks a doc comment.
func checkExported(p *pkg) []string {
	var problems []string
	report := func(path, what string) {
		problems = append(problems, fmt.Sprintf("%s: %s is undocumented", path, what))
	}
	//flexvet:sorted problem lines are sorted by the caller before printing, so file order cannot leak
	for path, f := range p.files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if recv := receiverType(d); recv != "" && !ast.IsExported(recv) {
					continue // method on an unexported type
				}
				if d.Doc == nil {
					report(path, funcName(d))
				}
			case *ast.GenDecl:
				groupDoc := d.Doc != nil
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && !groupDoc && s.Doc == nil {
							report(path, "type "+s.Name.Name)
						}
					case *ast.ValueSpec:
						// A doc on the const/var group documents its members;
						// otherwise each exported spec needs its own.
						if groupDoc || s.Doc != nil {
							continue
						}
						for _, n := range s.Names {
							if n.IsExported() {
								report(path, "const/var "+n.Name)
							}
						}
					}
				}
			}
		}
	}
	return problems
}

// receiverType names a method's receiver type ("" for plain functions).
func receiverType(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// funcName renders "func Name" or "method (T) Name" for a report line.
func funcName(d *ast.FuncDecl) string {
	if r := receiverType(d); r != "" {
		return fmt.Sprintf("method (%s) %s", r, d.Name.Name)
	}
	return "func " + d.Name.Name
}

var (
	mdLink     = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	inlineCode = regexp.MustCompile("`([^`\n]+)`")
	pathPrefix = regexp.MustCompile(`^(internal|cmd|docs|examples)/`)
)

// docFiles lists the prose documents rule 3 scans: README.md plus docs/*.md.
func docFiles(root string) ([]string, error) {
	files, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		return nil, err
	}
	if readme := filepath.Join(root, "README.md"); exists(readme) {
		files = append(files, readme)
	}
	sort.Strings(files)
	return files, nil
}

// checkDocs verifies that every file or directory referenced from the prose
// documentation exists, so the docs cannot silently drift from the tree.
func checkDocs(root string) ([]string, error) {
	files, err := docFiles(root)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, path := range files {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		rel, _ := filepath.Rel(root, path)
		text := stripFenced(string(b))
		dir := filepath.Dir(path)
		for _, m := range mdLink.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" || !exists(filepath.Join(dir, target)) {
				problems = append(problems, fmt.Sprintf("%s: link target %q does not exist", rel, m[1]))
			}
		}
		for _, m := range inlineCode.FindAllStringSubmatch(text, -1) {
			tok := strings.TrimRight(m[1], ".,:;")
			if strings.ContainsAny(tok, " *|…") {
				continue // not a single path, or a glob/placeholder
			}
			if !pathPrefix.MatchString(tok) && !strings.HasSuffix(tok, ".go") && !strings.HasSuffix(tok, ".md") {
				continue
			}
			if !exists(filepath.Join(root, tok)) && !exists(filepath.Join(dir, tok)) {
				problems = append(problems, fmt.Sprintf("%s: referenced path `%s` does not exist", rel, tok))
			}
		}
	}
	return problems, nil
}

// checkPackageMap verifies docs/ARCHITECTURE.md's package-map table against
// the tree, both ways: every internal/cmd token in the table's first column
// is a real directory, and every internal/* package has a row.
func checkPackageMap(root string) ([]string, error) {
	path := filepath.Join(root, "docs", "ARCHITECTURE.md")
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return []string{"docs/ARCHITECTURE.md: missing (the package map lives here)"}, nil
		}
		return nil, err
	}
	mapped := map[string]bool{}
	var problems []string
	inMap := false
	for _, line := range strings.Split(string(b), "\n") {
		if strings.HasPrefix(line, "#") {
			inMap = strings.Contains(line, "Package map")
			continue
		}
		if !inMap || !strings.HasPrefix(line, "|") {
			continue
		}
		cells := strings.SplitN(line, "|", 3)
		if len(cells) < 3 {
			continue
		}
		for _, m := range inlineCode.FindAllStringSubmatch(cells[1], -1) {
			tok := m[1]
			if !strings.Contains(tok, "/") {
				continue // `flex` (root)
			}
			mapped[tok] = true
			if !exists(filepath.Join(root, tok)) {
				problems = append(problems, fmt.Sprintf("docs/ARCHITECTURE.md: package map names `%s`, which is not a directory", tok))
			}
		}
	}
	dirs, err := os.ReadDir(filepath.Join(root, "internal"))
	if err != nil {
		return nil, err
	}
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		if name := "internal/" + d.Name(); !mapped[name] {
			problems = append(problems, fmt.Sprintf("docs/ARCHITECTURE.md: package map has no row for `%s`", name))
		}
	}
	return problems, nil
}

// stripFenced blanks ``` fenced code blocks so shell examples and their
// placeholder paths are not treated as references.
func stripFenced(text string) string {
	var out strings.Builder
	fenced := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			fenced = !fenced
			out.WriteString("\n")
			continue
		}
		if fenced {
			out.WriteString("\n")
			continue
		}
		out.WriteString(line)
		out.WriteString("\n")
	}
	return out.String()
}

// exists reports whether path names an existing file or directory.
func exists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
