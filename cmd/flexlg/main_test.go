package main

import (
	"fmt"
	"strings"
	"testing"

	flex "github.com/flex-eda/flex"
)

// TestParseEnginesGolden pins parseEngines' behaviour as rendered strings:
// empty entries (trailing or doubled commas) are skipped, duplicates run
// once, "all" expands with FLEX first, and an unknown name is rejected with
// its position in the list.
func TestParseEnginesGolden(t *testing.T) {
	render := func(input string) string {
		engines, names, err := parseEngines(input)
		if err != nil {
			return "error: " + err.Error()
		}
		parts := make([]string, len(engines))
		for i, e := range engines {
			parts[i] = fmt.Sprintf("%s=%d", names[i], int(e))
		}
		return strings.Join(parts, " ")
	}
	golden := []struct {
		input string
		want  string
	}{
		{"flex", "flex=0"},
		{"all", "flex=0 mgl=1 mgl-mt=2 gpu=3 analytical=4"},
		{" all ", "flex=0 mgl=1 mgl-mt=2 gpu=3 analytical=4"},
		{"flex,mgl", "flex=0 mgl=1"},
		{"mgl, flex", "mgl=1 flex=0"},
		// The trailing comma that used to die with `unknown engine ""`.
		{"flex,", "flex=0"},
		{",flex", "flex=0"},
		{"flex,,mgl", "flex=0 mgl=1"},
		// Duplicates used to run the same engine twice; now deduped.
		{"flex,flex", "flex=0"},
		{"flex,mgl,flex,mgl-mt", "flex=0 mgl=1 mgl-mt=2"},
		// Unknown names name the offending position.
		{"flex,bogus", `error: unknown engine "bogus" at position 2 (want flex, mgl, mgl-mt, gpu, analytical or all)`},
		{"bogus", `error: unknown engine "bogus" at position 1 (want flex, mgl, mgl-mt, gpu, analytical or all)`},
		{"flex,,mgl,nope,", `error: unknown engine "nope" at position 4 (want flex, mgl, mgl-mt, gpu, analytical or all)`},
		// "all" only expands as the whole argument, not as a list entry.
		{"flex,all", `error: unknown engine "all" at position 2 (want flex, mgl, mgl-mt, gpu, analytical or all)`},
		// Nothing selected at all.
		{"", `error: no engine selected in ""`},
		{",", `error: no engine selected in ","`},
		{" , ", `error: no engine selected in " , "`},
	}
	for _, g := range golden {
		if got := render(g.input); got != g.want {
			t.Errorf("parseEngines(%q):\n got  %s\n want %s", g.input, got, g.want)
		}
	}
}

// TestParseEnginesAllLeadsWithFLEX guards the -out contract: the "all"
// expansion keeps FLEX first so -out writes the headline engine's layout.
func TestParseEnginesAllLeadsWithFLEX(t *testing.T) {
	engines, names, err := parseEngines("all")
	if err != nil {
		t.Fatal(err)
	}
	if registry := flex.EngineNames(); len(engines) != len(registry) {
		t.Fatalf("all expands to %d engines, registry has %d", len(engines), len(registry))
	}
	if names[0] != "flex" {
		t.Fatalf("all leads with %q, want flex", names[0])
	}
}
