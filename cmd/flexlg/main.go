// Command flexlg legalizes a placement in flexpl format with a selectable
// engine and writes the legalized layout plus a quality/time report.
//
// Usage:
//
//	flexlg -engine flex|mgl|mgl-mt|gpu|analytical|all [-threads 8]
//	       [-workers N] [-in design.flexpl] [-out legal.flexpl]
//
// -engine accepts a comma-separated list (or "all"); multiple engines run
// concurrently through flex.LegalizeBatch with -workers goroutines and are
// reported side by side. With no -in, a small built-in demo design is
// generated.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	flex "github.com/flex-eda/flex"
)

var engineNames = map[string]flex.Engine{
	"flex":       flex.EngineFLEX,
	"mgl":        flex.EngineMGL,
	"mgl-mt":     flex.EngineMGLMT,
	"gpu":        flex.EngineGPU,
	"analytical": flex.EngineAnalytical,
}

// allEngines is the -engine all expansion. FLEX leads so that -out (which
// writes the first selected engine's layout) captures the headline engine's
// result, not a baseline's.
var allEngines = []string{"flex", "mgl", "mgl-mt", "gpu", "analytical"}

func parseEngines(s string) ([]flex.Engine, []string, error) {
	names := strings.Split(s, ",")
	if s == "all" {
		names = allEngines
	}
	engines := make([]flex.Engine, 0, len(names))
	clean := make([]string, 0, len(names))
	for _, n := range names {
		n = strings.TrimSpace(n)
		e, ok := engineNames[n]
		if !ok {
			return nil, nil, fmt.Errorf("unknown engine %q", n)
		}
		engines = append(engines, e)
		clean = append(clean, n)
	}
	return engines, clean, nil
}

func main() {
	engineList := flag.String("engine", "flex", "engine: flex, mgl, mgl-mt, gpu, analytical; comma-separated list or \"all\" compares engines")
	threads := flag.Int("threads", 8, "threads for mgl-mt")
	workers := flag.Int("workers", 0, "concurrent engine runs when several engines are selected (0 = GOMAXPROCS)")
	in := flag.String("in", "", "input flexpl file (default: generated demo)")
	out := flag.String("out", "", "output flexpl file, written from the first selected engine (default: stdout suppressed)")
	demoCells := flag.Int("demo-cells", 2000, "demo design cell count when no -in")
	demoDensity := flag.Float64("demo-density", 0.6, "demo design density when no -in")
	flag.Parse()

	engines, names, err := parseEngines(*engineList)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var layout *flex.Layout
	if *in != "" {
		f, err2 := os.Open(*in)
		if err2 != nil {
			fmt.Fprintln(os.Stderr, err2)
			os.Exit(1)
		}
		layout, err = flex.ReadLayout(f)
		f.Close()
	} else {
		layout, err = flex.GenerateCustom(*demoCells, *demoDensity, 1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// One job per engine over the shared input layout (engines legalize
	// clones); a single engine degenerates to one worker.
	jobs := make([]flex.BatchJob, len(engines))
	for i, e := range engines {
		jobs[i] = flex.BatchJob{
			Layout:  layout,
			Engine:  e,
			Options: flex.Options{Threads: *threads},
			Tag:     names[i],
		}
	}
	sum, err := flex.LegalizeBatch(context.Background(), jobs, flex.BatchOptions{Workers: *workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	exit := 0
	for _, r := range sum.Results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.Tag, r.Err)
			exit = 1
			continue
		}
		res := r.Outcome
		fmt.Printf("engine:          %s\n", res.Engine)
		fmt.Printf("cells:           %d movable\n", res.Metrics.Movable)
		fmt.Printf("legal:           %v\n", res.Legal)
		fmt.Printf("aveDis (rows):   %.3f\n", res.Metrics.AveDis)
		fmt.Printf("maxDis (rows):   %.3f\n", res.Metrics.MaxDis)
		fmt.Printf("modeled seconds: %.6f\n", res.ModeledSeconds)
		if !res.Legal {
			exit = 1
			for _, v := range res.Violations {
				fmt.Printf("violation: %v\n", v)
			}
		}
		fmt.Println()
	}
	if len(sum.Results) > 1 {
		fmt.Printf("batch:           %d engines, %d workers, wall %v (summed job wall %v)\n",
			len(sum.Results), sum.Workers,
			sum.Wall.Round(time.Millisecond), sum.WorkWall.Round(time.Millisecond))
	}

	if *out != "" {
		first := sum.Results[0]
		if first.Err != nil || first.Outcome == nil {
			fmt.Fprintf(os.Stderr, "cannot write -out: first engine failed\n")
			os.Exit(1)
		}
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := flex.WriteLayout(f, first.Outcome.Layout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote:           %s\n", *out)
	}
	os.Exit(exit)
}
