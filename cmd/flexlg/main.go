// Command flexlg legalizes a placement in flexpl format with a selectable
// engine and writes the legalized layout plus a quality/time report.
//
// Usage:
//
//	flexlg -engine flex|mgl|mgl-mt|gpu|analytical|all [-threads 8]
//	       [-workers N] [-fpgas N] [-cache-mb M]
//	       [-shards K] [-shard-halo R]
//	       [-sched priority|fifo] [-priority P | P1,P2,...] [-client NAME]
//	       [-deadline-ms D] [-reconfig-ms D]
//	       [-edit SPEC,SPEC,...] [-outcome-cache-mb M] [-cache-dir DIR]
//	       [-in design.flexpl | -design name [-scale 0.02]]
//	       [-out legal.flexpl]
//
// -engine accepts a comma-separated list (or "all"); multiple engines run
// concurrently on one flex.Service with -workers goroutines, print a live
// progress line per job on stderr as results stream in, and are reported
// side by side on stdout in submission order. -fpgas bounds the modeled
// accelerator boards FLEX jobs contend on (default 1).
//
// The input is -in (a flexpl file), or -design (a built-in benchmark name,
// see flex.Designs, generated at -scale on the service's workers), or —
// with neither — a small generated demo design. With -design, -cache-mb
// sizes the service's layout cache: the first engine job generates the
// benchmark, its siblings hit the cache, and the hit/miss counts land on
// stderr next to the device-wait stats.
//
// -shards K splits every job's layout into K horizontal row bands that
// legalize as independent jobs on the service and stitch back into one
// result (K = 1 runs the full shard machinery and is byte-identical to the
// unsharded path; 0, the default, skips it). Per-shard progress lands on
// stderr as each band finishes; stdout reports only the stitched result,
// so it stays comparable across shard counts' schedules.
//
// -sched picks the service's queue policy (priority, the default, or
// fifo); -priority assigns each engine job's scheduling class — one value
// for every job, or a comma-separated list matching the engine list, so a
// multi-engine run can interleave priorities. -client submits under a
// tenant identity, -deadline-ms sets a relative completion target (a job
// still queued when it expires fails fast with a deadline error), and
// -reconfig-ms charges the modeled board-programming delay between
// different jobs' device phases. Scheduling changes only when jobs run:
// stdout and -out stay byte-identical across -sched and -priority
// assignments.
//
// -edit perturbs the input before legalization with a comma-separated list
// of cell edits:
//
//	move:NAME:GX:GY          reposition a movable cell's placement anchor
//	ins:NAME:GX:GY:W:H[:P]   insert a new cell (P: any, even, odd)
//	del:NAME                 delete a movable cell
//
// With -cache-dir (or -outcome-cache-mb), the service memoizes finished
// legalizations by input-layout content hash: a repeated run serves from
// cache, and a sharded -edit run against a previously legalized base
// re-legalizes only the dirty row bands, splicing the rest from the cached
// outcome — byte-identical to the full re-run. -cache-dir persists the
// cache across invocations, which is what makes the incremental path pay
// off for a one-shot CLI:
//
//	flexlg -in base.flexpl -shards 8 -cache-dir /tmp/eco -out v0.flexpl
//	flexlg -in base.flexpl -shards 8 -cache-dir /tmp/eco \
//	       -edit move:c42:10:5 -out v1.flexpl   # dirty bands only
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	flex "github.com/flex-eda/flex"
	"github.com/flex-eda/flex/internal/obs"
)

// parseEngines expands a comma-separated engine list (or "all", which
// keeps FLEX first so -out captures the headline engine's layout). The
// name registry is flex.EngineNames/flex.ParseEngine — the same table
// flexserve serves — so the CLIs cannot drift from the library. Empty
// entries — a trailing comma, say — are skipped, duplicates run once, and
// an unknown name is reported with its position in the list.
func parseEngines(s string) ([]flex.Engine, []string, error) {
	names := strings.Split(s, ",")
	if strings.TrimSpace(s) == "all" {
		names = flex.EngineNames()
	}
	engines := make([]flex.Engine, 0, len(names))
	clean := make([]string, 0, len(names))
	seen := make(map[string]bool, len(names))
	for pos, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		e, err := flex.ParseEngine(n)
		if err != nil {
			return nil, nil, fmt.Errorf("unknown engine %q at position %d (want %s or all)",
				n, pos+1, strings.Join(flex.EngineNames(), ", "))
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		engines = append(engines, e)
		clean = append(clean, n)
	}
	if len(engines) == 0 {
		return nil, nil, fmt.Errorf("no engine selected in %q", s)
	}
	return engines, clean, nil
}

// parsePriorities expands the -priority flag for n jobs: empty = all zero,
// a single integer broadcasts, a comma-separated list must match n.
func parsePriorities(s string, n int) ([]int, error) {
	out := make([]int, n)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) == 1 {
		p, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("invalid -priority %q", s)
		}
		for i := range out {
			out[i] = p
		}
		return out, nil
	}
	if len(parts) != n {
		return nil, fmt.Errorf("-priority lists %d values for %d engine jobs", len(parts), n)
	}
	for i, part := range parts {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("invalid -priority entry %q at position %d", part, i+1)
		}
		out[i] = p
	}
	return out, nil
}

// parseEdits expands the -edit flag's comma-separated specs into the
// library's edit batch.
func parseEdits(s string) ([]flex.Edit, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var edits []flex.Edit
	for pos, spec := range strings.Split(s, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		parts := strings.Split(spec, ":")
		atoi := func(i int, what string) (int, error) {
			n, err := strconv.Atoi(parts[i])
			if err != nil {
				return 0, fmt.Errorf("edit %d (%q): bad %s %q", pos+1, spec, what, parts[i])
			}
			return n, nil
		}
		var e flex.Edit
		var err error
		switch {
		case parts[0] == "move" && len(parts) == 4:
			e.Op, e.Cell = flex.EditMove, parts[1]
			if e.GX, err = atoi(2, "gx"); err != nil {
				return nil, err
			}
			if e.GY, err = atoi(3, "gy"); err != nil {
				return nil, err
			}
		case parts[0] == "del" && len(parts) == 2:
			e.Op, e.Cell = flex.EditDelete, parts[1]
		case parts[0] == "ins" && (len(parts) == 6 || len(parts) == 7):
			e.Op, e.Cell = flex.EditInsert, parts[1]
			if e.GX, err = atoi(2, "gx"); err != nil {
				return nil, err
			}
			if e.GY, err = atoi(3, "gy"); err != nil {
				return nil, err
			}
			if e.W, err = atoi(4, "w"); err != nil {
				return nil, err
			}
			if e.H, err = atoi(5, "h"); err != nil {
				return nil, err
			}
			if len(parts) == 7 {
				e.Parity = parts[6]
			}
		default:
			return nil, fmt.Errorf("edit %d: unknown spec %q (want move:NAME:GX:GY, ins:NAME:GX:GY:W:H[:parity], del:NAME)", pos+1, spec)
		}
		if e.Cell == "" {
			return nil, fmt.Errorf("edit %d (%q): empty cell name", pos+1, spec)
		}
		edits = append(edits, e)
	}
	return edits, nil
}

func main() {
	engineList := flag.String("engine", "flex", "engine: flex, mgl, mgl-mt, gpu, analytical; comma-separated list or \"all\" compares engines")
	threads := flag.Int("threads", 8, "threads for mgl-mt")
	workers := flag.Int("workers", 0, "concurrent engine runs when several engines are selected (0 = GOMAXPROCS)")
	fpgas := flag.Int("fpgas", 1, "modeled FPGA boards shared by concurrent FLEX jobs (negative = unlimited)")
	cacheMB := flag.Int("cache-mb", 0, "service layout-cache budget in MiB for -design jobs (0 = off)")
	shards := flag.Int("shards", 0, "row bands per job, legalized independently and stitched (0 = unsharded)")
	shardHalo := flag.Int("shard-halo", 0, "seam-crossing reassignment window in rows (0 = library default)")
	schedName := flag.String("sched", "priority", "service queue policy (priority, fifo)")
	priorityList := flag.String("priority", "", "scheduling priority per job: one integer for all, or a comma list matching the engine list")
	client := flag.String("client", "", "tenant identity the jobs submit under")
	deadlineMS := flag.Int64("deadline-ms", 0, "relative completion deadline in ms; expired queued jobs fail fast (0 = none)")
	reconfigMS := flag.Int("reconfig-ms", 0, "modeled FPGA reconfiguration delay in ms between different jobs' device phases (0 = counted, free)")
	editList := flag.String("edit", "", "comma-separated cell edits applied before legalization: move:NAME:GX:GY, ins:NAME:GX:GY:W:H[:parity], del:NAME")
	outcomeCacheMB := flag.Int("outcome-cache-mb", 0, "outcome cache budget in MiB: memoize results by layout content hash so -edit runs re-legalize only dirty bands (0 = off unless -cache-dir is set)")
	cacheDir := flag.String("cache-dir", "", "persist the outcome cache as content-addressed files in this directory across invocations (enables the outcome cache)")
	in := flag.String("in", "", "input flexpl file (default: generated demo)")
	design := flag.String("design", "", "built-in benchmark name to generate instead of -in (see flexbench -designs)")
	scale := flag.Float64("scale", 0.02, "generation scale for -design (1.0 = paper size)")
	out := flag.String("out", "", "output flexpl file, written from the first selected engine (default: stdout suppressed)")
	demoCells := flag.Int("demo-cells", 2000, "demo design cell count when no -in")
	demoDensity := flag.Float64("demo-density", 0.6, "demo design density when no -in")
	traceOut := flag.String("trace-out", "", "write the run's trace spans as Chrome trace-viewer JSON (chrome://tracing / Perfetto) to this file")
	flag.Parse()

	engines, names, err := parseEngines(*engineList)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	scheduler, err := flex.ParseScheduler(*schedName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	priorities, err := parsePriorities(*priorityList, len(engines))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	edits, err := parseEdits(*editList)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var deadline time.Time
	if *deadlineMS < 0 {
		fmt.Fprintln(os.Stderr, "flexlg: -deadline-ms must be >= 0")
		os.Exit(2)
	} else if *deadlineMS > 0 {
		//flexvet:walltime -deadline-ms is wall-relative by definition; it gates scheduling, never output bytes
		deadline = time.Now().Add(time.Duration(*deadlineMS) * time.Millisecond)
	}
	if *in != "" && *design != "" {
		fmt.Fprintln(os.Stderr, "flexlg: -in and -design are mutually exclusive")
		os.Exit(2)
	}
	// Validate -scale up front for design refs on every path: the library's
	// BatchJob convention treats scale 0 as paper-size 1.0, which a CLI
	// typo must never silently trigger.
	if *design != "" && (math.IsNaN(*scale) || math.IsInf(*scale, 0) || *scale <= 0) {
		fmt.Fprintf(os.Stderr, "flexlg: -scale must be a positive finite factor, got %v\n", *scale)
		os.Exit(2)
	}

	// The input: an explicit layout (-in or the generated demo), or a
	// (design, scale) reference resolved per job on the service's workers,
	// where the layout cache collapses the duplicate generations. Without
	// a cache, design refs would regenerate once per engine — so they are
	// only passed through when -cache-mb is set; otherwise the design is
	// generated once here and shared like any other explicit layout.
	var layout *flex.Layout
	designRef := *design
	switch {
	case *in != "":
		f, err2 := os.Open(*in)
		if err2 != nil {
			fmt.Fprintln(os.Stderr, err2)
			os.Exit(1)
		}
		layout, err = flex.ReadLayout(f)
		f.Close() //flexvet:close read-side close; decode failures already surface through ReadLayout's error
	case *design != "" && *cacheMB <= 0:
		layout, err = flex.Generate(*design, *scale)
		designRef = ""
	case *design == "":
		layout, err = flex.GenerateCustom(*demoCells, *demoDensity, 1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// One job per engine over the shared input (engines legalize clones);
	// a single engine degenerates to one worker.
	jobs := make([]flex.BatchJob, len(engines))
	for i, e := range engines {
		jobs[i] = flex.BatchJob{
			Layout:    layout,
			Design:    designRef,
			Scale:     *scale,
			Engine:    e,
			Options:   flex.Options{Threads: *threads},
			Tag:       names[i],
			Shards:    *shards,
			ShardHalo: *shardHalo,
			Priority:  priorities[i],
			Deadline:  deadline,
			Client:    *client,
			Edits:     edits,
		}
	}
	// Stream a progress line per job in completion order on stderr; the
	// stdout report below stays in submission order.
	status := func(r flex.BatchResult) string {
		switch {
		case flex.IsBatchSkipped(r.Err):
			return "skipped"
		case r.Err != nil:
			return "error"
		case !r.Outcome.Legal:
			return "illegal"
		}
		return "ok"
	}
	done := 0
	progress := func(r flex.BatchResult) {
		done++
		fmt.Fprintf(os.Stderr, "[%d/%d] %-10s %-7s wall %v", done, len(jobs), r.Tag, status(r), r.Wall.Round(time.Millisecond))
		if r.DeviceWait > 0 {
			fmt.Fprintf(os.Stderr, " (fpga wait %v)", r.DeviceWait.Round(time.Microsecond))
		}
		if len(r.Shards) > 0 {
			fmt.Fprintf(os.Stderr, " [%d shards]", len(r.Shards))
		}
		fmt.Fprintln(os.Stderr)
	}
	// Per-shard progress: one line per finished band, before its job's
	// stitched line above.
	shardProgress := func(job int, r flex.BatchResult) {
		fmt.Fprintf(os.Stderr, "  %s shard %d: %-7s wall %v", jobs[job].Tag, r.Index, status(r), r.Wall.Round(time.Millisecond))
		if r.DeviceWait > 0 {
			fmt.Fprintf(os.Stderr, " (fpga wait %v)", r.DeviceWait.Round(time.Microsecond))
		}
		fmt.Fprintln(os.Stderr)
	}
	// One long-lived service per invocation: the worker pool, the modeled
	// board pool, and (with -cache-mb) the layout cache that -design jobs
	// resolve through.
	opts := []flex.ServiceOption{
		flex.WithWorkers(*workers), flex.WithFPGAs(*fpgas),
		flex.WithCacheBytes(int64(*cacheMB) << 20),
		flex.WithScheduler(scheduler),
		flex.WithReconfigCost(time.Duration(*reconfigMS) * time.Millisecond),
		flex.WithOutcomeCacheBytes(int64(*outcomeCacheMB) << 20),
		flex.WithCacheDir(*cacheDir),
	}
	// -trace-out turns on span recording; tracing is telemetry only, so
	// stdout and -out stay byte-identical with or without it (CI-gated).
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
		opts = append(opts, flex.WithTracer(tracer))
	}
	svc := flex.NewService(opts...)
	//flexvet:close shutdown close at CLI exit: the pool drained with Submit, so there is no error left to act on
	defer svc.Close()
	sum, err := svc.Submit(context.Background(), jobs, flex.SubmitOptions{OnResult: progress, OnShard: shardProgress})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *cacheMB > 0 {
		st := svc.Stats()
		fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses (rate %.2f), %d entries, %.1f MiB resident\n",
			st.CacheHits, st.CacheMisses, st.CacheHitRate(),
			st.CacheEntries, float64(st.CacheBytes)/(1<<20))
	}
	if *outcomeCacheMB > 0 || *cacheDir != "" {
		st := svc.Stats()
		fmt.Fprintf(os.Stderr, "outcomes: %d hits, %d misses, %d incremental, %d fallbacks, %d loaded from disk\n",
			st.OutcomeHits, st.OutcomeMisses, st.Incremental, st.Fallbacks, st.OutcomeLoaded)
	}

	exit := 0
	for _, r := range sum.Results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.Tag, r.Err)
			exit = 1
			continue
		}
		printOutcome(r.Outcome)
		if !r.Outcome.Legal {
			exit = 1
		}
	}
	if len(sum.Results) > 1 {
		fpgaDesc := "unlimited fpgas"
		if sum.FPGAs > 0 {
			fpgaDesc = fmt.Sprintf("%d fpgas", sum.FPGAs)
		}
		// Wall clocks, queue waits and reconfigurations are scheduling
		// observations: stderr, so stdout stays byte-identical across
		// workers × fpgas × scheduler configurations.
		fmt.Fprintf(os.Stderr, "batch: %d engines, %d workers, %s, wall %v (summed job wall %v, sched wait %v, fpga wait %v, %d reconfigs)\n",
			len(sum.Results), sum.Workers, fpgaDesc,
			sum.Wall.Round(time.Millisecond), sum.WorkWall.Round(time.Millisecond),
			sum.SchedWait.Round(time.Millisecond),
			sum.DeviceWait.Round(time.Millisecond), sum.Reconfigs)
	}

	if *out != "" {
		first := sum.Results[0]
		if first.Err != nil || first.Outcome == nil {
			fmt.Fprintf(os.Stderr, "cannot write -out: first engine failed\n")
			os.Exit(1)
		}
		// Close explicitly — a deferred close would be skipped by os.Exit
		// and silently drop write-back errors.
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = flex.WriteLayout(f, first.Outcome.Layout)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote:           %s\n", *out) //flexvet:stdout the written path is part of the result report
	}
	if tracer != nil {
		// Close explicitly — a deferred close would be skipped by os.Exit
		// and silently drop write-back errors.
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = tracer.WriteChromeTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: wrote %s (open in chrome://tracing or Perfetto)\n", *traceOut)
	}
	os.Exit(exit)
}

// printOutcome writes one engine's result block — flexlg's stdout
// payload, byte-identical across workers x fpgas x scheduler grids and
// cmp-gated in CI.
//
//flexvet:stdout the result block is the tool's output; run commentary goes to stderr
func printOutcome(res *flex.Outcome) {
	fmt.Printf("engine:          %s\n", res.Engine)
	fmt.Printf("cells:           %d movable\n", res.Metrics.Movable)
	fmt.Printf("legal:           %v\n", res.Legal)
	fmt.Printf("aveDis (rows):   %.3f\n", res.Metrics.AveDis)
	fmt.Printf("maxDis (rows):   %.3f\n", res.Metrics.MaxDis)
	fmt.Printf("modeled seconds: %.6f\n", res.ModeledSeconds)
	if !res.Legal {
		for _, v := range res.Violations {
			fmt.Printf("violation: %v\n", v)
		}
	}
	fmt.Println()
}
