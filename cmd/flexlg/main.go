// Command flexlg legalizes a placement in flexpl format with a selectable
// engine and writes the legalized layout plus a quality/time report.
//
// Usage:
//
//	flexlg -engine flex|mgl|mgl-mt|gpu|analytical [-threads 8]
//	       [-in design.flexpl] [-out legal.flexpl]
//
// With no -in, a small built-in demo design is generated.
package main

import (
	"flag"
	"fmt"
	"os"

	flex "github.com/flex-eda/flex"
)

func main() {
	engineName := flag.String("engine", "flex", "engine: flex, mgl, mgl-mt, gpu, analytical")
	threads := flag.Int("threads", 8, "threads for mgl-mt")
	in := flag.String("in", "", "input flexpl file (default: generated demo)")
	out := flag.String("out", "", "output flexpl file (default: stdout suppressed)")
	demoCells := flag.Int("demo-cells", 2000, "demo design cell count when no -in")
	demoDensity := flag.Float64("demo-density", 0.6, "demo design density when no -in")
	flag.Parse()

	var engine flex.Engine
	switch *engineName {
	case "flex":
		engine = flex.EngineFLEX
	case "mgl":
		engine = flex.EngineMGL
	case "mgl-mt":
		engine = flex.EngineMGLMT
	case "gpu":
		engine = flex.EngineGPU
	case "analytical":
		engine = flex.EngineAnalytical
	default:
		fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engineName)
		os.Exit(2)
	}

	var layout *flex.Layout
	var err error
	if *in != "" {
		f, err2 := os.Open(*in)
		if err2 != nil {
			fmt.Fprintln(os.Stderr, err2)
			os.Exit(1)
		}
		layout, err = flex.ReadLayout(f)
		f.Close()
	} else {
		layout, err = flex.GenerateCustom(*demoCells, *demoDensity, 1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	result, err := flex.LegalizeWith(layout, engine, flex.Options{Threads: *threads})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("engine:          %s\n", result.Engine)
	fmt.Printf("cells:           %d movable\n", result.Metrics.Movable)
	fmt.Printf("legal:           %v\n", result.Legal)
	fmt.Printf("aveDis (rows):   %.3f\n", result.Metrics.AveDis)
	fmt.Printf("maxDis (rows):   %.3f\n", result.Metrics.MaxDis)
	fmt.Printf("modeled seconds: %.6f\n", result.ModeledSeconds)
	if !result.Legal {
		for _, v := range result.Violations {
			fmt.Printf("violation: %v\n", v)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := flex.WriteLayout(f, result.Layout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote:           %s\n", *out)
	}
	if !result.Legal {
		os.Exit(1)
	}
}
