// Command benchgen synthesizes the IC/CAD-2017-shaped benchmark suite to
// flexpl files, so other tools (and other implementations) can consume the
// exact same inputs.
//
// Usage:
//
//	benchgen -design fft_a_md2 -scale 0.05 -out fft_a_md2.flexpl
//	benchgen -all -scale 0.02 -dir bench/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	flex "github.com/flex-eda/flex"
)

func main() {
	design := flag.String("design", "", "design name (see -list)")
	all := flag.Bool("all", false, "generate every design in the suite")
	list := flag.Bool("list", false, "list available designs")
	scale := flag.Float64("scale", 0.02, "scale factor (1.0 = paper-size)")
	out := flag.String("out", "", "output file for -design (default <name>.flexpl)")
	dir := flag.String("dir", ".", "output directory for -all")
	flag.Parse()

	if *list {
		for _, n := range flex.Designs() {
			fmt.Println(n) //flexvet:stdout the design listing is -list's result
		}
		return
	}

	write := func(name, path string) error {
		l, err := flex.Generate(name, *scale)
		if err != nil {
			return err
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		// Close explicitly and keep the first error: a deferred close
		// would silently drop write-back failures on a full disk.
		err = flex.WriteLayout(f, l)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%s: %d cells -> %s\n", name, len(l.Cells), path)
		return nil
	}

	switch {
	case *all:
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, n := range flex.Designs() {
			if err := write(n, filepath.Join(*dir, n+".flexpl")); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	case *design != "":
		path := *out
		if path == "" {
			path = *design + ".flexpl"
		}
		if err := write(*design, path); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "need -design, -all or -list")
		os.Exit(2)
	}
}
