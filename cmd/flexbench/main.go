// Command flexbench regenerates every table and figure of the FLEX paper's
// evaluation section on the synthetic IC/CAD 2017 suite.
//
// Usage:
//
//	flexbench [-exp all|table1|table2|fig2a|fig2b|fig2c|fig2g|fig6g|fig8|fig9|fig10
//	           |scalability|ordering|sharded|sched|eco|bench]
//	          [-scale 0.02] [-designs name1,name2] [-threads 8] [-measure-original]
//	          [-workers N] [-fpgas N] [-cache-mb M] [-repeat N]
//	          [-shards K] [-shard-halo R] [-eco-bands 8] [-eco-halo 1] [-eco-edits 8]
//	          [-sched priority|fifo] [-priority P] [-reconfig-ms D] [-sched-jobs J]
//	          [-bench-out BENCH_n.json]
//
// -exp sharded runs the row-band sharding extension: each selected design
// is split into -shards horizontal bands (with a -shard-halo seam window),
// every band legalized by the FLEX engine as an independent pool job, and
// the bands stitched back into one whole-die result. Designs run one after
// another so only one design's bands are ever resident — the path that
// fits paper-scale superblue runs (reach them with
// -designs superblue19 -scale 0.5 or larger). Per-band wall and device
// wait land on stderr; the table stays deterministic.
//
// -workers bounds how many (design × engine) jobs run concurrently (0 =
// GOMAXPROCS); -fpgas sets how many physical accelerator boards the host
// models (default 1, the paper's single Alveo card) — concurrent FLEX jobs
// serialize their device phase on the boards while CPU-only jobs overlap.
// Engines are deterministic, so every workers × fpgas combination prints
// byte-identical tables; -workers 1 forces the old serial behaviour.
//
// One invocation runs every selected driver on one shared service: a
// long-lived worker pool plus — with -cache-mb — a byte-bounded layout
// cache memoizing generated benchmarks by (design, scale, seed), so
// drivers that share designs skip regeneration. -repeat N re-runs the
// selected experiments N times on the same warm service, the measurement
// mode for cache effectiveness (stdout repeats the identical tables; wall
// time and cache hit/miss deltas land on stderr). Caching never changes a
// table — only where the layouts come from.
//
// -exp eco measures the incremental (ECO) legalization path: each design is
// legalized once across -eco-bands row bands, then -eco-edits single-cell
// in-halo moves are served both incrementally (only the dirty bands
// re-solve; the clean bands splice from the base run) and as full re-runs.
// The driver fails hard unless every incremental result is byte-identical
// to its full re-run; the table reports the modeled edit-stream speedup the
// dirty-band path buys (T_full / T_inc — the flex.Service outcome cache
// realizes the same reuse for served traffic).
//
// -sched selects the pool's queue policy (priority, the default:
// effective priority with aging, EDF within a level, weighted fair share;
// fifo restores strict arrival order); -priority stamps every driver job's
// class, and -reconfig-ms charges a modeled board-programming delay
// whenever consecutive holders of one FPGA come from different jobs.
// Scheduling never changes a rendered table — only wall-clock and the
// stderr wait statistics move.
//
// -exp sched is the scheduling experiment: -sched-jobs identical FLEX jobs
// per priority class (bulk 0, normal 4, urgent 8, submitted bulk-first —
// the adversarial order for FIFO) contend for the shared workers and
// boards; the table pins the deterministic class setup while per-class
// p50/p99/max queue waits land on stderr. Under contention the priority
// scheduler pulls the urgent class's p99 wait strictly below the bulk
// class's; rerun with -sched fifo to watch the classes wait alike.
//
// Scheduling behaviour (device wait vs CPU overlap, cache hits vs misses)
// is reported per driver and per repetition on stderr, leaving stdout
// comparable across configurations.
//
// -bench-out path writes the run's perf-trajectory record: one
// internal/benchjson document with the deterministic facts — op counts,
// modeled seconds, quality, cache and device counters — of every
// (design, engine, config) the table1, sharded and sched drivers measured.
// Wall clock never enters the file, so two runs of the same binary are
// byte-identical and cmd/benchdiff can gate regressions in CI. -exp bench
// is the canonical recording selection (exactly those three drivers); with
// -repeat N only the first repetition records. Record with -workers 1:
// board-reconfiguration counts are order-dependent under concurrency, and
// flexbench warns when -bench-out runs with any other worker count. See
// docs/BENCHMARKING.md for the methodology.
//
// Absolute numbers depend on the scale factor and the platform models; the
// shapes (who wins, by what factor, where the crossovers are) are the
// reproduction target. See docs/ARCHITECTURE.md for the system pipeline.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/flex-eda/flex/internal/batch"
	"github.com/flex-eda/flex/internal/benchjson"
	"github.com/flex-eda/flex/internal/cache"
	"github.com/flex-eda/flex/internal/experiments"
	"github.com/flex-eda/flex/internal/obs"
	"github.com/flex-eda/flex/internal/sched"
)

// reportStats prints one driver's pool statistics — CPU overlap achieved by
// the workers and contention on the modeled FPGA boards — to stderr so that
// stdout stays byte-identical across scheduling configurations.
func reportStats(name string, st batch.Stats) {
	if st.Jobs == 0 {
		return
	}
	// Overlap counts compute only: a job's wall clock keeps running while
	// it queues for a board, and that idle time is not CPU overlap.
	overlap := 0.0
	if compute := st.WorkWall - st.DeviceWait; st.Wall > 0 && compute > 0 {
		overlap = float64(compute) / float64(st.Wall)
	}
	fpgas := "unlimited"
	if st.FPGAs > 0 {
		fpgas = fmt.Sprint(st.FPGAs)
	}
	fmt.Fprintf(os.Stderr,
		"%s: %d jobs / %d workers: wall %v, summed job wall %v (cpu overlap %.2fx); fpgas=%s: %d device acquires (%d contended), wait %v, hold %v\n",
		name, st.Jobs, st.Workers, st.Wall, st.WorkWall, overlap,
		fpgas, st.DeviceAcquires, st.DeviceContended, st.DeviceWait, st.DeviceHold)
	if st.DeviceReconfigs > 0 && st.DeviceReconfigTime > 0 {
		fmt.Fprintf(os.Stderr, "%s: %d board reconfigurations, %v modeled programming time\n",
			name, st.DeviceReconfigs, st.DeviceReconfigTime.Round(time.Millisecond))
	}
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1, table2, fig2a, fig2b, fig2c, fig2g, fig6g, fig8, fig9, fig10, scalability, ordering, sharded, sched, eco, bench)")
	scale := flag.Float64("scale", 0.02, "benchmark scale factor (1.0 = paper-size designs)")
	designs := flag.String("designs", "", "comma-separated design filter (default: all 16)")
	threads := flag.Int("threads", 8, "CPU baseline thread count")
	measure := flag.Bool("measure-original", false, "instrument the original multi-pass shifting (slower, more faithful)")
	workers := flag.Int("workers", 0, "concurrent (design × engine) jobs per driver (0 = GOMAXPROCS, 1 = serial)")
	fpgas := flag.Int("fpgas", 1, "modeled FPGA boards shared by concurrent FLEX jobs (negative = unlimited)")
	cacheMB := flag.Int("cache-mb", 0, "layout cache budget in MiB, shared by every driver and repetition (0 = off)")
	repeat := flag.Int("repeat", 1, "run the selected experiments N times on the same warm service")
	shards := flag.Int("shards", 4, "row bands per design for -exp sharded (1 = single band through the shard machinery)")
	shardHalo := flag.Int("shard-halo", 2, "seam-crossing reassignment window in rows for -exp sharded")
	ecoBands := flag.Int("eco-bands", 8, "row bands per design for -exp eco (more bands = less dirty work per edit)")
	ecoHalo := flag.Int("eco-halo", 1, "split halo in rows for -exp eco (a single-cell move dirties one band when its halo-expanded span stays inside the band)")
	ecoEdits := flag.Int("eco-edits", 8, "in-halo cell moves per design for -exp eco")
	schedName := flag.String("sched", "priority", "queue policy for workers and boards (priority, fifo)")
	priority := flag.Int("priority", 0, "scheduling priority stamped on every driver job (higher runs earlier)")
	reconfigMS := flag.Int("reconfig-ms", 0, "modeled FPGA reconfiguration delay in ms when consecutive board holders differ (0 = counted, free)")
	schedJobs := flag.Int("sched-jobs", 8, "jobs per priority class for -exp sched")
	benchOut := flag.String("bench-out", "", "write the deterministic perf-trajectory record (BENCH_*.json) of the table1/sharded/sched/eco drivers to this path")
	traceOut := flag.String("trace-out", "", "write one span per driver run as Chrome trace-viewer JSON (chrome://tracing / Perfetto) to this path")
	flag.Parse()

	policy, err := sched.ParsePolicy(*schedName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// One shared service per invocation: every driver batch runs on this
	// pool, and (with -cache-mb) resolves generated layouts through this
	// cache — so repeated designs, within a repetition and across -repeat
	// runs, are built once.
	pool := batch.NewPool(batch.PoolConfig{
		Workers: *workers, FPGAs: *fpgas,
		Policy:       policy,
		ReconfigCost: time.Duration(*reconfigMS) * time.Millisecond,
	})
	defer pool.Close()
	var layouts *cache.LRU
	if *cacheMB > 0 {
		layouts = cache.New(int64(*cacheMB) << 20)
	}

	// -bench-out: collect the deterministic perf trajectory of this run.
	// Only op counts, modeled seconds, quality and the deterministic
	// service counters enter the file — never wall clock — so re-running
	// the same binary yields byte-identical JSON.
	var bench *benchjson.File
	if *benchOut != "" {
		bench = benchjson.New(
			benchjson.Env{Go: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH},
			benchjson.Config{
				Scale: *scale, Designs: *designs, Threads: *threads,
				Workers: *workers, FPGAs: *fpgas, CacheMB: *cacheMB,
				Shards: *shards, ShardHalo: *shardHalo,
				SchedJobs: *schedJobs, Sched: *schedName,
			})
		if *workers != 1 {
			fmt.Fprintln(os.Stderr, "bench-out: board-reconfiguration counts are order-dependent with concurrent workers; record the trajectory with -workers 1 for byte-stable files")
		}
	}

	opt := experiments.Options{
		Scale:           *scale,
		Threads:         *threads,
		MeasureOriginal: *measure,
		Workers:         *workers,
		FPGAs:           *fpgas,
		Pool:            pool,
		Layouts:         layouts,
		Priority:        *priority,
	}
	if *designs != "" {
		opt.Designs = strings.Split(*designs, ",")
	}

	// runWithStats drives one driver with a fresh stats sink and reports
	// its scheduling behaviour; run additionally applies the -exp filter
	// used by the paper experiments (the extension experiments below are
	// excluded from "all" and filter themselves). -exp bench is the
	// canonical recording selection: exactly the drivers that emit
	// benchjson records.
	benchable := map[string]bool{"table1": true, "sharded": true, "sched": true, "eco": true}
	rep := 1
	// -trace-out records one root span per driver run. Trace files carry
	// wall clock by design; the stdout tables and BENCH files never do.
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
	}
	runWithStats := func(name string, f func(experiments.Options) error) {
		var st batch.Stats
		o := opt
		o.Stats = &st
		var drec *obs.Recorder
		var dstart time.Time
		if tracer != nil {
			drec = obs.NewRecorder(name)
			//flexvet:walltime driver span timing is trace telemetry only
			dstart = time.Now()
		}
		var rec *benchjson.Experiment
		if bench != nil && rep == 1 && benchable[name] {
			rec = bench.Experiment(name)
			o.Bench = rec
		}
		var before cache.Stats
		if layouts != nil {
			before = layouts.Stats()
		}
		if err := f(o); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		reportStats(name, st)
		if layouts != nil {
			// Per-driver cache delta, every experiment alike, so the
			// stderr accounting and the BENCH record agree.
			after := layouts.Stats()
			fmt.Fprintf(os.Stderr, "%s: cache +%d hits, +%d misses\n",
				name, after.Hits-before.Hits, after.Misses-before.Misses)
			if rec != nil {
				rec.Cache = &benchjson.CacheStats{
					Hits: after.Hits - before.Hits, Misses: after.Misses - before.Misses}
			}
		}
		if rec != nil {
			rec.Device = &benchjson.DeviceStats{
				Acquires: int64(st.DeviceAcquires), Reconfigs: int64(st.DeviceReconfigs)}
		}
		if drec != nil {
			//flexvet:walltime driver span timing is trace telemetry only
			drec.Record("driver", fmt.Sprintf("repetition %d/%d", rep, *repeat), dstart, time.Now())
			tracer.Add(drec)
		}
	}
	ran := false
	run := func(name string, f func(experiments.Options) error) {
		if *exp != "all" && *exp != name && !(*exp == "bench" && name == "table1") {
			return
		}
		ran = true
		fmt.Printf("==> %s\n", name) //flexvet:stdout section headers are part of the byte-compared tables
		runWithStats(name, f)
		fmt.Println() //flexvet:stdout section separator, part of the byte-compared tables
	}

	runSelected := func() {
		run("table1", func(o experiments.Options) error {
			rows, err := experiments.Table1(o)
			if err != nil {
				return err
			}
			experiments.RenderTable1(rows).Render(os.Stdout)
			return nil
		})
		run("table2", func(o experiments.Options) error {
			experiments.Table2().Render(os.Stdout)
			return nil
		})
		run("fig2a", func(o experiments.Options) error {
			pts, err := experiments.Fig2a(o)
			if err != nil {
				return err
			}
			experiments.RenderFig2a(pts).Render(os.Stdout, 40)
			return nil
		})
		run("fig2b", func(o experiments.Options) error {
			pts, err := experiments.Fig2b(o)
			if err != nil {
				return err
			}
			experiments.RenderFig2b(pts).Render(os.Stdout, 40)
			return nil
		})
		run("fig2c", func(o experiments.Options) error {
			pts, err := experiments.Fig2c(o)
			if err != nil {
				return err
			}
			experiments.RenderFig2c(pts).Render(os.Stdout)
			return nil
		})
		run("fig2g", func(o experiments.Options) error {
			pts, err := experiments.Fig2g(o)
			if err != nil {
				return err
			}
			experiments.RenderFig2g(pts).Render(os.Stdout, 40)
			return nil
		})
		run("fig6g", func(o experiments.Options) error {
			pts, err := experiments.Fig6g(o)
			if err != nil {
				return err
			}
			experiments.RenderFig6g(pts).Render(os.Stdout)
			return nil
		})
		run("fig8", func(o experiments.Options) error {
			pts, err := experiments.Fig8(o)
			if err != nil {
				return err
			}
			experiments.RenderFig8(pts).Render(os.Stdout)
			return nil
		})
		run("fig9", func(o experiments.Options) error {
			pts, err := experiments.Fig9(o)
			if err != nil {
				return err
			}
			experiments.RenderFig9(pts).Render(os.Stdout)
			return nil
		})
		run("fig10", func(o experiments.Options) error {
			pts, err := experiments.Fig10(o)
			if err != nil {
				return err
			}
			experiments.RenderFig10(pts).Render(os.Stdout, 40)
			return nil
		})
		// Extension experiments (not paper figures).
		if *exp == "scalability" {
			ran = true
			fmt.Println("==> scalability") //flexvet:stdout section header, part of the byte-compared tables
			runWithStats("scalability", func(o experiments.Options) error {
				pts, err := experiments.Scalability(o, 5)
				if err != nil {
					return err
				}
				experiments.RenderScalability(pts).Render(os.Stdout)
				return nil
			})
		}
		if *exp == "ordering" {
			ran = true
			fmt.Println("==> ordering") //flexvet:stdout section header, part of the byte-compared tables
			runWithStats("ordering", func(o experiments.Options) error {
				pts, err := experiments.OrderingAblation(o)
				if err != nil {
					return err
				}
				experiments.RenderOrdering(pts).Render(os.Stdout)
				return nil
			})
		}
		if *exp == "sched" || *exp == "bench" {
			ran = true
			fmt.Println("==> sched") //flexvet:stdout section header, part of the byte-compared tables
			runWithStats("sched", func(o experiments.Options) error {
				pts, err := experiments.Sched(o, *schedJobs)
				if err != nil {
					return err
				}
				experiments.RenderSched(pts).Render(os.Stdout)
				// Wait distributions are wall-clock scheduling facts: they
				// belong on stderr, keeping stdout byte-comparable across
				// -sched/-workers/-fpgas configurations.
				for _, p := range pts {
					fmt.Fprintf(os.Stderr,
						"sched class %s (prio %d): %d jobs, queue wait p50 %v p99 %v max %v, fpga wait %v\n",
						p.Label, p.Priority, p.Jobs,
						p.P50Wait.Round(time.Millisecond),
						p.P99Wait.Round(time.Millisecond),
						p.MaxWait.Round(time.Millisecond),
						p.DeviceWait.Round(time.Millisecond))
				}
				return nil
			})
		}
		if *exp == "eco" || *exp == "bench" {
			ran = true
			fmt.Println("==> eco") //flexvet:stdout section header, part of the byte-compared tables
			runWithStats("eco", func(o experiments.Options) error {
				pts, err := experiments.Eco(o, *ecoBands, *ecoHalo, *ecoEdits)
				if err != nil {
					return err
				}
				experiments.RenderEco(pts).Render(os.Stdout)
				return nil
			})
		}
		if *exp == "sharded" || *exp == "bench" {
			ran = true
			fmt.Println("==> sharded") //flexvet:stdout section header, part of the byte-compared tables
			runWithStats("sharded", func(o experiments.Options) error {
				pts, err := experiments.Sharded(o, *shards, *shardHalo)
				if err != nil {
					return err
				}
				experiments.RenderSharded(pts).Render(os.Stdout)
				// Per-shard scheduling observations are wall-clock facts,
				// so they go to stderr and leave stdout byte-comparable
				// across workers × fpgas.
				for _, p := range pts {
					for b := range p.BandWall {
						fmt.Fprintf(os.Stderr, "%s band %d/%d: %d cells, wall %v, fpga wait %v\n",
							p.Name, b+1, p.Bands, p.BandCells[b],
							p.BandWall[b].Round(time.Millisecond),
							p.BandWait[b].Round(time.Millisecond))
					}
				}
				return nil
			})
		}
	} // end runSelected

	if *repeat < 1 {
		*repeat = 1
	}
	var prev cache.Stats
	for rep = 1; rep <= *repeat; rep++ {
		start := time.Now() //flexvet:walltime per-repetition wall for the stderr run line
		runSelected()
		if layouts != nil || *repeat > 1 {
			//flexvet:walltime the run line goes to stderr; stdout tables stay clock-free
			line := fmt.Sprintf("run %d/%d: wall %v", rep, *repeat, time.Since(start).Round(time.Millisecond))
			if layouts != nil {
				st := layouts.Stats()
				line += fmt.Sprintf("; cache: +%d hits, +%d misses (total %d/%d, %d entries, %.1f MiB resident)",
					st.Hits-prev.Hits, st.Misses-prev.Misses, st.Hits, st.Misses,
					st.Entries, float64(st.Bytes)/(1<<20))
				prev = st
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if !ran {
		// A typoed -exp must not succeed vacuously — it would turn the
		// CI byte-compare gate into cmp of two empty files.
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want all, table1, table2, fig2a, fig2b, fig2c, fig2g, fig6g, fig8, fig9, fig10, scalability, ordering, sharded, sched, eco, bench)\n", *exp)
		os.Exit(2)
	}
	if bench != nil {
		recorded := 0
		for _, e := range bench.Experiments {
			recorded += len(e.Records)
		}
		if recorded == 0 {
			fmt.Fprintf(os.Stderr, "bench-out: the selected experiments recorded nothing (only table1, sharded and sched record; use -exp bench)\n")
			os.Exit(2)
		}
		if err := bench.WriteFile(*benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "bench-out: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench-out: wrote %s (%d experiments, %d records)\n",
			*benchOut, len(bench.Experiments), recorded)
	}
	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			os.Exit(1)
		}
		err = tracer.WriteChromeTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace-out: wrote %s (open in chrome://tracing or Perfetto)\n", *traceOut)
	}
}
