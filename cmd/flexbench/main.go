// Command flexbench regenerates every table and figure of the FLEX paper's
// evaluation section on the synthetic IC/CAD 2017 suite.
//
// Usage:
//
//	flexbench [-exp all|table1|table2|fig2a|fig2b|fig2c|fig2g|fig6g|fig8|fig9|fig10]
//	          [-scale 0.02] [-designs name1,name2] [-threads 8] [-measure-original]
//	          [-workers N]
//
// -workers bounds how many (design × engine) jobs run concurrently (0 =
// GOMAXPROCS). Engines are deterministic, so every worker count prints
// byte-identical tables; -workers 1 forces the old serial behaviour.
//
// Absolute numbers depend on the scale factor and the platform models; the
// shapes (who wins, by what factor, where the crossovers are) are the
// reproduction target. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/flex-eda/flex/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1, table2, fig2a, fig2b, fig2c, fig2g, fig6g, fig8, fig9, fig10, scalability, ordering)")
	scale := flag.Float64("scale", 0.02, "benchmark scale factor (1.0 = paper-size designs)")
	designs := flag.String("designs", "", "comma-separated design filter (default: all 16)")
	threads := flag.Int("threads", 8, "CPU baseline thread count")
	measure := flag.Bool("measure-original", false, "instrument the original multi-pass shifting (slower, more faithful)")
	workers := flag.Int("workers", 0, "concurrent (design × engine) jobs per driver (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	opt := experiments.Options{
		Scale:           *scale,
		Threads:         *threads,
		MeasureOriginal: *measure,
		Workers:         *workers,
	}
	if *designs != "" {
		opt.Designs = strings.Split(*designs, ",")
	}

	run := func(name string, f func(experiments.Options) error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("==> %s\n", name)
		if err := f(opt); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func(o experiments.Options) error {
		rows, err := experiments.Table1(o)
		if err != nil {
			return err
		}
		experiments.RenderTable1(rows).Render(os.Stdout)
		return nil
	})
	run("table2", func(o experiments.Options) error {
		experiments.Table2().Render(os.Stdout)
		return nil
	})
	run("fig2a", func(o experiments.Options) error {
		pts, err := experiments.Fig2a(o)
		if err != nil {
			return err
		}
		experiments.RenderFig2a(pts).Render(os.Stdout, 40)
		return nil
	})
	run("fig2b", func(o experiments.Options) error {
		pts, err := experiments.Fig2b(o)
		if err != nil {
			return err
		}
		experiments.RenderFig2b(pts).Render(os.Stdout, 40)
		return nil
	})
	run("fig2c", func(o experiments.Options) error {
		pts, err := experiments.Fig2c(o)
		if err != nil {
			return err
		}
		experiments.RenderFig2c(pts).Render(os.Stdout)
		return nil
	})
	run("fig2g", func(o experiments.Options) error {
		pts, err := experiments.Fig2g(o)
		if err != nil {
			return err
		}
		experiments.RenderFig2g(pts).Render(os.Stdout, 40)
		return nil
	})
	run("fig6g", func(o experiments.Options) error {
		pts, err := experiments.Fig6g(o)
		if err != nil {
			return err
		}
		experiments.RenderFig6g(pts).Render(os.Stdout)
		return nil
	})
	run("fig8", func(o experiments.Options) error {
		pts, err := experiments.Fig8(o)
		if err != nil {
			return err
		}
		experiments.RenderFig8(pts).Render(os.Stdout)
		return nil
	})
	run("fig9", func(o experiments.Options) error {
		pts, err := experiments.Fig9(o)
		if err != nil {
			return err
		}
		experiments.RenderFig9(pts).Render(os.Stdout)
		return nil
	})
	run("fig10", func(o experiments.Options) error {
		pts, err := experiments.Fig10(o)
		if err != nil {
			return err
		}
		experiments.RenderFig10(pts).Render(os.Stdout, 40)
		return nil
	})
	// Extension experiments (not paper figures; see EXPERIMENTS.md).
	if *exp == "scalability" {
		fmt.Println("==> scalability")
		pts, err := experiments.Scalability(opt, 5)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		experiments.RenderScalability(pts).Render(os.Stdout)
	}
	if *exp == "ordering" {
		fmt.Println("==> ordering")
		pts, err := experiments.OrderingAblation(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		experiments.RenderOrdering(pts).Render(os.Stdout)
	}
}
