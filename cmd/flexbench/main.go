// Command flexbench regenerates every table and figure of the FLEX paper's
// evaluation section on the synthetic IC/CAD 2017 suite.
//
// Usage:
//
//	flexbench [-exp all|table1|table2|fig2a|fig2b|fig2c|fig2g|fig6g|fig8|fig9|fig10]
//	          [-scale 0.02] [-designs name1,name2] [-threads 8] [-measure-original]
//	          [-workers N] [-fpgas N]
//
// -workers bounds how many (design × engine) jobs run concurrently (0 =
// GOMAXPROCS); -fpgas sets how many physical accelerator boards the host
// models (default 1, the paper's single Alveo card) — concurrent FLEX jobs
// serialize their device phase on the boards while CPU-only jobs overlap.
// Engines are deterministic, so every workers × fpgas combination prints
// byte-identical tables; -workers 1 forces the old serial behaviour.
// Scheduling behaviour (device wait vs CPU overlap) is reported per driver
// on stderr, leaving stdout comparable across configurations.
//
// Absolute numbers depend on the scale factor and the platform models; the
// shapes (who wins, by what factor, where the crossovers are) are the
// reproduction target. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/flex-eda/flex/internal/batch"
	"github.com/flex-eda/flex/internal/experiments"
)

// reportStats prints one driver's pool statistics — CPU overlap achieved by
// the workers and contention on the modeled FPGA boards — to stderr so that
// stdout stays byte-identical across scheduling configurations.
func reportStats(name string, st batch.Stats) {
	if st.Jobs == 0 {
		return
	}
	// Overlap counts compute only: a job's wall clock keeps running while
	// it queues for a board, and that idle time is not CPU overlap.
	overlap := 0.0
	if compute := st.WorkWall - st.DeviceWait; st.Wall > 0 && compute > 0 {
		overlap = float64(compute) / float64(st.Wall)
	}
	fpgas := "unlimited"
	if st.FPGAs > 0 {
		fpgas = fmt.Sprint(st.FPGAs)
	}
	fmt.Fprintf(os.Stderr,
		"%s: %d jobs / %d workers: wall %v, summed job wall %v (cpu overlap %.2fx); fpgas=%s: %d device acquires (%d contended), wait %v, hold %v\n",
		name, st.Jobs, st.Workers, st.Wall, st.WorkWall, overlap,
		fpgas, st.DeviceAcquires, st.DeviceContended, st.DeviceWait, st.DeviceHold)
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1, table2, fig2a, fig2b, fig2c, fig2g, fig6g, fig8, fig9, fig10, scalability, ordering)")
	scale := flag.Float64("scale", 0.02, "benchmark scale factor (1.0 = paper-size designs)")
	designs := flag.String("designs", "", "comma-separated design filter (default: all 16)")
	threads := flag.Int("threads", 8, "CPU baseline thread count")
	measure := flag.Bool("measure-original", false, "instrument the original multi-pass shifting (slower, more faithful)")
	workers := flag.Int("workers", 0, "concurrent (design × engine) jobs per driver (0 = GOMAXPROCS, 1 = serial)")
	fpgas := flag.Int("fpgas", 1, "modeled FPGA boards shared by concurrent FLEX jobs (negative = unlimited)")
	flag.Parse()

	opt := experiments.Options{
		Scale:           *scale,
		Threads:         *threads,
		MeasureOriginal: *measure,
		Workers:         *workers,
		FPGAs:           *fpgas,
	}
	if *designs != "" {
		opt.Designs = strings.Split(*designs, ",")
	}

	// runWithStats drives one driver with a fresh stats sink and reports
	// its scheduling behaviour; run additionally applies the -exp filter
	// used by the paper experiments (the extension experiments below are
	// excluded from "all" and filter themselves).
	runWithStats := func(name string, f func(experiments.Options) error) {
		var st batch.Stats
		o := opt
		o.Stats = &st
		if err := f(o); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		reportStats(name, st)
	}
	ran := false
	run := func(name string, f func(experiments.Options) error) {
		if *exp != "all" && *exp != name {
			return
		}
		ran = true
		fmt.Printf("==> %s\n", name)
		runWithStats(name, f)
		fmt.Println()
	}

	run("table1", func(o experiments.Options) error {
		rows, err := experiments.Table1(o)
		if err != nil {
			return err
		}
		experiments.RenderTable1(rows).Render(os.Stdout)
		return nil
	})
	run("table2", func(o experiments.Options) error {
		experiments.Table2().Render(os.Stdout)
		return nil
	})
	run("fig2a", func(o experiments.Options) error {
		pts, err := experiments.Fig2a(o)
		if err != nil {
			return err
		}
		experiments.RenderFig2a(pts).Render(os.Stdout, 40)
		return nil
	})
	run("fig2b", func(o experiments.Options) error {
		pts, err := experiments.Fig2b(o)
		if err != nil {
			return err
		}
		experiments.RenderFig2b(pts).Render(os.Stdout, 40)
		return nil
	})
	run("fig2c", func(o experiments.Options) error {
		pts, err := experiments.Fig2c(o)
		if err != nil {
			return err
		}
		experiments.RenderFig2c(pts).Render(os.Stdout)
		return nil
	})
	run("fig2g", func(o experiments.Options) error {
		pts, err := experiments.Fig2g(o)
		if err != nil {
			return err
		}
		experiments.RenderFig2g(pts).Render(os.Stdout, 40)
		return nil
	})
	run("fig6g", func(o experiments.Options) error {
		pts, err := experiments.Fig6g(o)
		if err != nil {
			return err
		}
		experiments.RenderFig6g(pts).Render(os.Stdout)
		return nil
	})
	run("fig8", func(o experiments.Options) error {
		pts, err := experiments.Fig8(o)
		if err != nil {
			return err
		}
		experiments.RenderFig8(pts).Render(os.Stdout)
		return nil
	})
	run("fig9", func(o experiments.Options) error {
		pts, err := experiments.Fig9(o)
		if err != nil {
			return err
		}
		experiments.RenderFig9(pts).Render(os.Stdout)
		return nil
	})
	run("fig10", func(o experiments.Options) error {
		pts, err := experiments.Fig10(o)
		if err != nil {
			return err
		}
		experiments.RenderFig10(pts).Render(os.Stdout, 40)
		return nil
	})
	// Extension experiments (not paper figures; see EXPERIMENTS.md).
	if *exp == "scalability" {
		ran = true
		fmt.Println("==> scalability")
		runWithStats("scalability", func(o experiments.Options) error {
			pts, err := experiments.Scalability(o, 5)
			if err != nil {
				return err
			}
			experiments.RenderScalability(pts).Render(os.Stdout)
			return nil
		})
	}
	if *exp == "ordering" {
		ran = true
		fmt.Println("==> ordering")
		runWithStats("ordering", func(o experiments.Options) error {
			pts, err := experiments.OrderingAblation(o)
			if err != nil {
				return err
			}
			experiments.RenderOrdering(pts).Render(os.Stdout)
			return nil
		})
	}
	if !ran {
		// A typoed -exp must not succeed vacuously — it would turn the
		// CI byte-compare gate into cmp of two empty files.
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want all, table1, table2, fig2a, fig2b, fig2c, fig2g, fig6g, fig8, fig9, fig10, scalability, ordering)\n", *exp)
		os.Exit(2)
	}
}
