// Command benchdiff compares two BENCH_*.json perf-trajectory files (see
// internal/benchjson and docs/BENCHMARKING.md) and fails when the new file
// regresses on the old one.
//
// Usage:
//
//	benchdiff [-op-tol 0] [-sec-tol 0] [-allow-missing] old.json new.json
//
// Records are matched by (experiment, design, engine, config). A
// regression is an op count or modeled-seconds value in the new file
// exceeding the old value by more than the relative tolerance
// (new > old × (1 + tol)); op counts are deterministic in this
// repository, so the CI gate runs with -op-tol 0. A record present in the
// old file but missing from the new one fails unless -allow-missing is
// set (records added by the new file are reported but never fail — the
// trajectory is allowed to grow). Legality may never regress: a record
// that was legal and no longer is fails at any tolerance.
//
// There is deliberately no wall-clock tolerance flag: BENCH files never
// contain wall-clock time (that is what keeps them byte-stable), so there
// is nothing such a flag could check. Passing the removed -wall-tol flag
// is an error that says so.
//
// Exit status: 0 when the new file is no worse, 1 on any regression,
// 2 on usage or file errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/flex-eda/flex/internal/benchjson"
)

// diffOptions configures a comparison.
type diffOptions struct {
	opTol        float64 // relative tolerance on op counts
	secTol       float64 // relative tolerance on modeled seconds
	allowMissing bool    // tolerate records that disappeared
}

// finding is one comparison outcome worth reporting.
type finding struct {
	key        string // "experiment/design|engine|config"
	metric     string // op key, "modeledSeconds", "legal", or "record"
	old, new   float64
	regression bool
	note       string
}

func (f finding) String() string {
	if f.note != "" {
		return fmt.Sprintf("%s: %s: %s", f.key, f.metric, f.note)
	}
	delta := 0.0
	if f.old != 0 {
		delta = (f.new - f.old) / f.old * 100
	}
	return fmt.Sprintf("%s: %s: %.6g -> %.6g (%+.2f%%)", f.key, f.metric, f.old, f.new, delta)
}

// exceeds reports whether next regresses past prev under the relative
// tolerance tol.
func exceeds(prev, next, tol float64) bool {
	return next > prev*(1+tol)+1e-12
}

// diff compares two files and returns the findings: every regression plus
// informational notes (improvements are silent — benchstat territory).
func diff(oldF, newF *benchjson.File, opt diffOptions) []finding {
	var out []finding
	newExp := map[string]*benchjson.Experiment{}
	for _, e := range newF.Experiments {
		newExp[e.Name] = e
	}
	for _, oe := range oldF.Experiments {
		ne, ok := newExp[oe.Name]
		if !ok {
			out = append(out, finding{key: oe.Name, metric: "experiment", regression: !opt.allowMissing,
				note: "missing from new file"})
			continue
		}
		newRec := map[string]benchjson.Record{}
		for _, r := range ne.Records {
			newRec[r.Key()] = r
		}
		oldKeys := map[string]bool{}
		for _, or := range oe.Records {
			key := oe.Name + "/" + or.Key()
			oldKeys[or.Key()] = true
			nr, ok := newRec[or.Key()]
			if !ok {
				out = append(out, finding{key: key, metric: "record", regression: !opt.allowMissing,
					note: "missing from new file"})
				continue
			}
			if or.Legal && !nr.Legal {
				out = append(out, finding{key: key, metric: "legal", regression: true,
					note: "was legal, now illegal"})
			}
			if exceeds(or.ModeledSeconds, nr.ModeledSeconds, opt.secTol) {
				out = append(out, finding{key: key, metric: "modeledSeconds",
					old: or.ModeledSeconds, new: nr.ModeledSeconds, regression: true})
			}
			for op, ov := range or.Ops {
				nv, ok := nr.Ops[op]
				if !ok {
					out = append(out, finding{key: key, metric: "ops." + op, regression: !opt.allowMissing,
						note: "op counter missing from new file"})
					continue
				}
				if exceeds(float64(ov), float64(nv), opt.opTol) {
					out = append(out, finding{key: key, metric: "ops." + op,
						old: float64(ov), new: float64(nv), regression: true})
				}
			}
		}
		for _, nr := range ne.Records {
			if !oldKeys[nr.Key()] {
				out = append(out, finding{key: oe.Name + "/" + nr.Key(), metric: "record",
					note: "added (informational)"})
			}
		}
	}
	return out
}

func main() {
	for _, arg := range os.Args[1:] {
		if arg == "--" {
			break
		}
		if t := strings.TrimLeft(arg, "-"); arg != t && (t == "wall-tol" || strings.HasPrefix(t, "wall-tol=")) {
			fmt.Fprintln(os.Stderr, "benchdiff: -wall-tol was removed: wall clock never enters BENCH files by design, so there is nothing for it to tolerate (see docs/BENCHMARKING.md)")
			os.Exit(2)
		}
	}
	opTol := flag.Float64("op-tol", 0, "relative tolerance on op-count growth (0 = byte-deterministic counts must not grow)")
	secTol := flag.Float64("sec-tol", 0, "relative tolerance on modeled-seconds growth")
	allowMissing := flag.Bool("allow-missing", false, "tolerate records present in old but absent from new")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-op-tol F] [-sec-tol F] [-allow-missing] old.json new.json")
		os.Exit(2)
	}

	oldF, err := benchjson.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newF, err := benchjson.ReadFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	findings := diff(oldF, newF, diffOptions{opTol: *opTol, secTol: *secTol, allowMissing: *allowMissing})
	regressions := 0
	for _, f := range findings {
		tag := "note"
		if f.regression {
			tag = "REGRESSION"
			regressions++
		}
		fmt.Printf("%s: %s\n", tag, f) //flexvet:stdout findings are benchdiff's result
	}
	if regressions > 0 {
		//flexvet:stdout the verdict line is benchdiff's result
		fmt.Printf("benchdiff: %d regression(s) between %s and %s\n", regressions, flag.Arg(0), flag.Arg(1))
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %s is no worse than %s\n", flag.Arg(1), flag.Arg(0)) //flexvet:stdout the verdict line is benchdiff's result
}
