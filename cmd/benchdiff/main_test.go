package main

import (
	"testing"

	"github.com/flex-eda/flex/internal/benchjson"
)

func trajectory(subcellVisits int64, legal bool) *benchjson.File {
	f := benchjson.New(benchjson.Env{Go: "go1.24.0", GOOS: "linux", GOARCH: "amd64"}, benchjson.Config{Scale: 0.01})
	e := f.Experiment("table1")
	e.Add(benchjson.Record{
		Design: "des_perf_1", Engine: "flex", Cells: 1128, Legal: legal,
		AveDis: 1.2, ModeledSeconds: float64(subcellVisits) * 1e-8,
		Ops: benchjson.Ops{"fop.shift.subcellVisits": subcellVisits, "placed": 1128},
	})
	return f
}

func regressions(fs []finding) int {
	n := 0
	for _, f := range fs {
		if f.regression {
			n++
		}
	}
	return n
}

// The acceptance criterion: an injected op-count regression must fail.
func TestInjectedOpRegressionFails(t *testing.T) {
	old, injected := trajectory(1000, true), trajectory(1100, true)
	fs := diff(old, injected, diffOptions{})
	if regressions(fs) == 0 {
		t.Fatalf("injected +10%% op regression not flagged: %+v", fs)
	}
	// The op count and the modeled seconds derived from it both moved.
	var sawOp bool
	for _, f := range fs {
		if f.regression && f.metric == "ops.fop.shift.subcellVisits" {
			sawOp = true
		}
	}
	if !sawOp {
		t.Fatalf("regression findings missing the op counter: %+v", fs)
	}
}

func TestIdenticalFilesPass(t *testing.T) {
	if fs := diff(trajectory(1000, true), trajectory(1000, true), diffOptions{}); regressions(fs) > 0 {
		t.Fatalf("identical trajectories flagged: %+v", fs)
	}
}

func TestImprovementPasses(t *testing.T) {
	if fs := diff(trajectory(1000, true), trajectory(900, true), diffOptions{}); regressions(fs) > 0 {
		t.Fatalf("improvement flagged as regression: %+v", fs)
	}
}

func TestToleranceAbsorbsGrowth(t *testing.T) {
	old, grown := trajectory(1000, true), trajectory(1050, true)
	if fs := diff(old, grown, diffOptions{opTol: 0.10, secTol: 0.10}); regressions(fs) > 0 {
		t.Fatalf("5%% growth flagged under 10%% tolerance: %+v", fs)
	}
	if fs := diff(old, grown, diffOptions{opTol: 0.01, secTol: 0.01}); regressions(fs) == 0 {
		t.Fatal("5% growth passed under 1% tolerance")
	}
}

func TestLegalityRegressionFailsAtAnyTolerance(t *testing.T) {
	fs := diff(trajectory(1000, true), trajectory(1000, false), diffOptions{opTol: 100, secTol: 100})
	if regressions(fs) == 0 {
		t.Fatal("legal -> illegal not flagged")
	}
}

func TestMissingRecordPolicies(t *testing.T) {
	old := trajectory(1000, true)
	empty := benchjson.New(old.Env, old.Config)
	empty.Experiment("table1")
	if fs := diff(old, empty, diffOptions{}); regressions(fs) == 0 {
		t.Fatal("missing record not flagged")
	}
	if fs := diff(old, empty, diffOptions{allowMissing: true}); regressions(fs) > 0 {
		t.Fatalf("-allow-missing still flagged: %+v", fs)
	}
	// Added records never fail.
	if fs := diff(empty, old, diffOptions{}); regressions(fs) > 0 {
		t.Fatalf("added record flagged: %+v", fs)
	}
}
